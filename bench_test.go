// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each prints the regenerated rows (paper-style) on its
// first iteration; EXPERIMENTS.md records these against the published
// values. Run with:
//
//	go test -bench=. -benchmem
//
// Shapes — who wins, by what factor, where crossovers fall — are the
// reproduction target; absolute numbers come from the simulated
// testbed, not the authors' hardware.
package pictor_test

import (
	"fmt"
	"sync"
	"testing"

	"pictor/internal/agent"
	"pictor/internal/app"
	"pictor/internal/core"
	"pictor/internal/exp"
	"pictor/internal/sim"
	"pictor/internal/stats"
	"pictor/internal/trace"
	"pictor/internal/vgl"
)

// benchCfg keeps bench iterations affordable; the pictor-bench CLI runs
// the same experiments with longer windows.
func benchCfg() core.ExperimentConfig {
	return core.ExperimentConfig{WarmupSeconds: 2, Seconds: 12, Seed: 1, MaxInstances: 4}
}

var printOnce sync.Map

// printHeader emits a section banner exactly once per experiment.
func printHeader(id, title string) bool {
	if _, loaded := printOnce.LoadOrStore(id, true); loaded {
		return false
	}
	fmt.Printf("\n───── %s — %s ─────\n", id, title)
	return true
}

func BenchmarkFig06RTTDistributions(b *testing.B) {
	cfg := benchCfg()
	cfg.Seconds = 30
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig06", "RTT distributions: Human / IC / DeskBench / Chen / Slow-Motion")
		for _, prof := range app.PaperSuite() {
			rs := core.RunMethodologyComparison(prof, cfg)
			if show {
				for _, r := range rs {
					fmt.Printf("%-4s %-10s mean %6.1f  p1 %6.1f  p25 %6.1f  p75 %6.1f  p99 %6.1f ms\n",
						prof.Name, r.Method, r.RTT.Mean, r.RTT.P1, r.RTT.P25, r.RTT.P75, r.RTT.P99)
				}
			}
		}
	}
}

func BenchmarkTab03MeanRTTError(b *testing.B) {
	cfg := benchCfg()
	cfg.Seconds = 30
	for i := 0; i < b.N; i++ {
		show := printHeader("Tab03", "Mean-RTT percentage error vs human")
		var rows [][]string
		avg := map[string]float64{}
		for _, prof := range app.PaperSuite() {
			rs := core.RunMethodologyComparison(prof, cfg)
			row := []string{prof.Name}
			for _, r := range rs[1:] { // skip the human reference row
				row = append(row, fmt.Sprintf("%.1f%%", r.ErrVsHuman))
				avg[r.Method] += r.ErrVsHuman / float64(len(app.PaperSuite()))
			}
			rows = append(rows, row)
		}
		if show {
			fmt.Print(core.FormatTable([]string{"bench", "Pictor-IC", "DeskBench", "Chen", "SlowMotion"}, rows))
			fmt.Printf("avg: IC %.1f%%  DB %.1f%%  CH %.1f%%  SM %.1f%%  (paper: 1.6 / 11.6 / 30.0 / 27.9)\n",
				avg["Pictor-IC"], avg["DeskBench"], avg["Chen"], avg["SlowMotion"])
		}
	}
}

func BenchmarkFig07InferenceTime(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig07", "Intelligent client CV (CNN) and input-generation (RNN) time")
		var cvAll, rnnAll stats.Sample
		for _, prof := range app.PaperSuite() {
			models, _, _ := core.TrainedModels(prof)
			cl := core.NewCluster(core.Options{Seed: cfg.Seed})
			cl.AddInstance(core.NewInstanceConfig(prof, core.ICDriver(models)))
			cl.Run(secs(cfg.WarmupSeconds), secs(cfg.Seconds))
			ic := cl.Instances[0].Driver.(*agent.IntelligentClient)
			cvAll.Add(ic.CVTimes.Mean())
			rnnAll.Add(ic.RNNTimes.Mean())
			if show {
				fmt.Printf("%-4s CV %6.1f ms   RNN %5.2f ms   APM %5.0f\n",
					prof.Name, ic.CVTimes.Mean(), ic.RNNTimes.Mean(), ic.APM())
			}
		}
		if show {
			fmt.Printf("avg: CV %.1f ms (paper 72.7), RNN %.1f ms (paper 1.9)\n", cvAll.Mean(), rnnAll.Mean())
		}
	}
}

func BenchmarkTab05FrameworkOverhead(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Tab05", "Analysis-framework overhead (FPS loss vs native; double vs single query buffers)")
		var sum, sumSB float64
		for _, prof := range app.PaperSuite() {
			r := core.RunOverhead(prof, cfg)
			sum += r.OverheadPct / float64(len(app.PaperSuite()))
			sumSB += r.OverheadSBPct / float64(len(app.PaperSuite()))
			if show {
				fmt.Printf("%-4s native %5.1f fps  traced %5.1f (%+.1f%%)  single-buffered %5.1f (%+.1f%%)\n",
					r.Benchmark, r.FPSNoTrace, r.FPSTraced, r.OverheadPct, r.FPSTracedSB, r.OverheadSBPct)
			}
		}
		if show {
			fmt.Printf("avg overhead: %.1f%% double-buffered (paper 2.7%%), %.1f%% single (paper up to 10%%)\n", sum, sumSB)
		}
	}
}

func BenchmarkFig08Utilization(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig08", "CPU and GPU utilization per benchmark (single instance)")
		for _, prof := range app.PaperSuite() {
			r := core.RunCharacterization(prof, 1, exp.DriverHuman, cfg)[0]
			if show {
				fmt.Printf("%-4s app CPU %5.0f%%  VNC CPU %5.0f%%  GPU %4.1f%%  mem %4.0fMB  gpuMem %3.0fMB\n",
					r.Benchmark, r.AppCPUUtil, r.VNCCPUUtil, r.GPUUtil, r.FootprintMB, r.GPUMemoryMB)
			}
		}
	}
}

func BenchmarkFig09Bandwidth(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig09", "Network and PCIe bandwidth per benchmark (single instance)")
		for _, prof := range app.PaperSuite() {
			r := core.RunCharacterization(prof, 1, exp.DriverHuman, cfg)[0]
			if show {
				fmt.Printf("%-4s net %4.0f Mbps down / %4.1f up   PCIe %6.1f MB/s from-GPU / %6.1f to-GPU\n",
					r.Benchmark, r.NetDownMbps, r.NetUpMbps, r.PCIeFromGPU, r.PCIeToGPU)
			}
		}
	}
}

// sweep runs 1..MaxInstances co-located copies as one batched grid and
// returns first-instance results per count.
func sweep(prof app.Profile, cfg core.ExperimentConfig) []core.InstanceResult {
	rs, _ := core.RunCharacterizationSweep(prof, cfg.MaxInstances, exp.DriverHuman, cfg)
	out := make([]core.InstanceResult, len(rs))
	for n, r := range rs {
		out[n] = r[0]
	}
	return out
}

func BenchmarkFig10FPS(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig10", "Server and client FPS, 1–4 instances")
		for _, prof := range app.PaperSuite() {
			rs := sweep(prof, cfg)
			if show {
				fmt.Printf("%-4s", prof.Name)
				for n, r := range rs {
					fmt.Printf("  [%d] srv %5.1f cli %5.1f", n+1, r.ServerFPS, r.ClientFPS)
				}
				fmt.Println()
			}
		}
	}
}

func BenchmarkFig11RTTBreakdown(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig11", "RTT breakdown (input net / server / frame net), 1–4 instances")
		for _, prof := range app.PaperSuite() {
			rs := sweep(prof, cfg)
			if show {
				fmt.Printf("%-4s", prof.Name)
				for n, r := range rs {
					fmt.Printf("  [%d] CS %4.1f srv %5.1f SS %5.1f", n+1,
						r.Stages[trace.StageCS].Mean, r.ServerTimeMs(), r.Stages[trace.StageSS].Mean)
				}
				fmt.Println()
			}
		}
	}
}

func BenchmarkFig12ServerBreakdown(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig12", "Server-time breakdown (PS / app / AS / CP), 1–4 instances")
		for _, prof := range app.PaperSuite() {
			rs := sweep(prof, cfg)
			if show {
				fmt.Printf("%-4s", prof.Name)
				for n, r := range rs {
					fmt.Printf("  [%d] PS %4.1f app %5.1f AS %4.1f CP %5.1f", n+1,
						r.Stages[trace.StagePS].Mean, r.AppTimeMs(),
						r.Stages[trace.StageAS].Mean, r.Stages[trace.StageCP].Mean)
				}
				fmt.Println()
			}
		}
	}
}

func BenchmarkFig13AppBreakdown(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig13", "Application-time breakdown (AL / FC, with RD parallel), 1–4 instances")
		for _, prof := range app.PaperSuite() {
			rs := sweep(prof, cfg)
			if show {
				fmt.Printf("%-4s", prof.Name)
				for n, r := range rs {
					fmt.Printf("  [%d] AL %5.1f FC %5.1f RD %5.1f", n+1,
						r.Stages[trace.StageAL].Mean, r.Stages[trace.StageFC].Mean,
						r.Stages[trace.StageRD].Mean)
				}
				fmt.Println()
			}
		}
	}
}

func BenchmarkFig14TopDown(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig14", "Top-down CPU cycle breakdown, 1–4 instances")
		for _, prof := range app.PaperSuite() {
			rs := sweep(prof, cfg)
			if show {
				fmt.Printf("%-4s", prof.Name)
				for n, r := range rs {
					fmt.Printf("  [%d] BE %4.1f%% ret %4.1f%% IPC %.2f", n+1,
						r.CPUTopDown.BackEnd*100, r.CPUTopDown.Retiring*100, r.CPUTopDown.IPC)
				}
				fmt.Println()
			}
		}
	}
}

func BenchmarkFig15L3Miss(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig15", "L3 cache miss rates, 1–4 instances")
		for _, prof := range app.PaperSuite() {
			rs := sweep(prof, cfg)
			if show {
				fmt.Printf("%-4s", prof.Name)
				for n, r := range rs {
					fmt.Printf("  [%d] %4.1f%%", n+1, r.L3MissRate*100)
				}
				fmt.Println()
			}
		}
	}
}

func BenchmarkFig16GPUMiss(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig16", "GPU L2 and texture cache miss rates, 1–4 instances (0AD: N/A)")
		for _, prof := range app.PaperSuite() {
			rs := sweep(prof, cfg)
			if show {
				fmt.Printf("%-4s", prof.Name)
				for n, r := range rs {
					if r.GPUL2Miss < 0 {
						fmt.Printf("  [%d] N/A", n+1)
						continue
					}
					fmt.Printf("  [%d] L2 %4.1f%% tex %4.1f%%", n+1, r.GPUL2Miss*100, r.GPUTexMiss*100)
				}
				fmt.Println()
			}
		}
	}
}

func BenchmarkFig17Power(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig17", "Per-instance power, 1–4 instances")
		for _, prof := range app.PaperSuite() {
			_, watts := core.RunCharacterizationSweep(prof, cfg.MaxInstances, exp.DriverHuman, cfg)
			perInst := make([]float64, len(watts))
			for i, w := range watts {
				perInst[i] = w / float64(i+1)
			}
			if show {
				fmt.Printf("%-4s", prof.Name)
				for n, w := range perInst {
					fmt.Printf("  [%d] %5.1fW (%+5.1f%%)", n+1, w, (w-perInst[0])/perInst[0]*100)
				}
				fmt.Println()
			}
		}
		if show {
			fmt.Println("paper: −33% / −50% / −61% at 2 / 3 / 4 instances")
		}
	}
}

func BenchmarkFig18PairFPS(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig18", "Client FPS for the 15 benchmark pairs")
		okPairs := 0
		for _, pair := range core.SortedPairNames() {
			a, _ := app.ByName(pair[0])
			bb, _ := app.ByName(pair[1])
			ra, rb := core.RunPair(a, bb, cfg)
			if ra.ClientFPS >= 25 && rb.ClientFPS >= 25 {
				okPairs++
			}
			if show {
				fmt.Printf("%-4s+%-4s  %5.1f / %5.1f fps\n", pair[0], pair[1], ra.ClientFPS, rb.ClientFPS)
			}
		}
		if show {
			fmt.Printf("%d of 15 pairs ≥ 25 fps for both (paper: 11 of 15 ≥ 25)\n", okPairs)
		}
	}
}

func BenchmarkFig19Contentiousness(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig19", "Dota2 degradation and cache-miss growth per co-runner")
		d2 := app.D2()
		solo := core.RunCharacterization(d2, 1, exp.DriverHuman, cfg)[0]
		for _, prof := range app.PaperSuite() {
			if prof.Name == d2.Name {
				continue
			}
			rd2, _ := core.RunPair(d2, prof, cfg)
			if show {
				fmt.Printf("D2 + %-4s  fps loss %5.1f%%   L3 +%4.1fpt   GPU L2 +%4.1fpt\n",
					prof.Name,
					(solo.ServerFPS-rd2.ServerFPS)/solo.ServerFPS*100,
					(rd2.L3MissRate-solo.L3MissRate)*100,
					(rd2.GPUL2Miss-solo.GPUL2Miss)*100)
			}
		}
		if show {
			fmt.Println("paper: STK the most contentious co-runner, 0AD the least; CPU/GPU contentiousness correlate")
		}
	}
}

func BenchmarkFig20ContainerOverhead(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig20", "Container FPS/RTT overheads (negative = container faster)")
		var fpsAvg, rttAvg, rdAvg float64
		for _, prof := range app.PaperSuite() {
			r := core.RunContainerOverhead(prof, cfg)
			fpsAvg += r.FPSOverheadPct / float64(len(app.PaperSuite()))
			rttAvg += r.RTTOverheadPct / float64(len(app.PaperSuite()))
			rdAvg += r.RDOverheadPct / float64(len(app.PaperSuite()))
			if show {
				fmt.Printf("%-4s FPS %+5.1f%%   RTT %+5.1f%%   RD %+5.1f%%\n",
					r.Benchmark, r.FPSOverheadPct, r.RTTOverheadPct, r.RDOverheadPct)
			}
		}
		if show {
			fmt.Printf("avg: FPS %+.1f%% (paper 1.5%%), RTT %+.1f%% (paper 1.3%%), RD %+.1f%% (paper 2.9%%)\n",
				fpsAvg, rttAvg, rdAvg)
		}
	}
}

func BenchmarkFig21TwoStepCopyTimeline(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig21", "Two-step frame copy: FC stage time, baseline vs FCStart/FCEnd")
		for _, prof := range app.PaperSuite() {
			r := core.RunOptimization(prof, cfg)
			if show {
				fmt.Printf("%-4s FC %5.1f ms → %4.1f ms (halt removed: %4.1f ms)\n",
					r.Benchmark, r.BaseFCMs, r.OptFCMs, r.BaseFCMs-r.OptFCMs)
			}
		}
	}
}

func BenchmarkFig22Optimizations(b *testing.B) {
	cfg := benchCfg()
	cfg.Seconds = 20
	for i := 0; i < b.N; i++ {
		show := printHeader("Fig22", "Improved FPS/RTT from the two frame-copy optimizations")
		var sGain, cGain, rttRed float64
		for _, prof := range app.PaperSuite() {
			r := core.RunOptimization(prof, cfg)
			sGain += r.ServerFPSGain / float64(len(app.PaperSuite()))
			cGain += r.ClientFPSGain / float64(len(app.PaperSuite()))
			rttRed += r.RTTReduction / float64(len(app.PaperSuite()))
			if show {
				fmt.Printf("%-4s server %+6.1f%%   client %+6.1f%%   RTT %+6.1f%%\n",
					r.Benchmark, r.ServerFPSGain, r.ClientFPSGain, -r.RTTReduction)
			}
		}
		if show {
			fmt.Printf("avg: server %+.1f%% (paper +57.7%%), client %+.1f%% (paper +7.4%%), RTT %+.1f%% (paper −8.5%%)\n",
				sGain, cGain, -rttRed)
		}
	}
}

func BenchmarkTab04FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show := printHeader("Tab04", "Feature comparison vs prior work")
		table := core.FeatureMatrix()
		if show {
			fmt.Print(table)
		}
	}
}

// Ablations beyond the paper's figures: each §6 optimization alone, and
// the analysis framework's query-buffer choice.
func BenchmarkAblationMemoizeOnly(b *testing.B) {
	benchAblation(b, "Ablation-Memoize", func(o *vgl.Options) { o.MemoizeAttributes = true })
}

func BenchmarkAblationAsyncCopyOnly(b *testing.B) {
	benchAblation(b, "Ablation-Async", func(o *vgl.Options) { o.AsyncCopy = true })
}

func benchAblation(b *testing.B, id string, mod func(*vgl.Options)) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		show := printHeader(id, "server FPS gain from one optimization alone")
		for _, prof := range app.PaperSuite() {
			base := runWithInterposer(prof, vgl.DefaultOptions(), cfg)
			opts := vgl.DefaultOptions()
			mod(&opts)
			one := runWithInterposer(prof, opts, cfg)
			if show {
				fmt.Printf("%-4s %5.1f → %5.1f fps (%+.1f%%)\n", prof.Name, base, one, (one-base)/base*100)
			}
		}
	}
}

func runWithInterposer(prof app.Profile, opts vgl.Options, cfg core.ExperimentConfig) float64 {
	cl := core.NewCluster(core.Options{Seed: cfg.Seed})
	icfg := core.NewInstanceConfig(prof, core.HumanDriver())
	icfg.Interposer = opts
	cl.AddInstance(icfg)
	cl.Run(secs(cfg.WarmupSeconds), secs(cfg.Seconds))
	return cl.Instances[0].Tracer.ServerFPS()
}

func secs(s float64) sim.Duration { return sim.DurationOfSeconds(s) }

// BenchmarkSuiteGridParallel runs a reduced full-suite grid (shorter
// windows, human-driven families only are still included — the grid
// itself decides) on all cores: the experiment runner's headline path.
func BenchmarkSuiteGridParallel(b *testing.B) {
	cfg := benchCfg()
	cfg.Seconds = 8
	cfg.MaxInstances = 2
	cfg.Parallel = 0 // all cores
	for i := 0; i < b.N; i++ {
		g := core.RunSuiteGrid(cfg)
		if show := printHeader("Grid", "full-suite grid on the parallel runner"); show {
			fmt.Printf("grid: %d methodology sets, %d pair cells\n",
				len(g.Methodology), len(g.Pairs))
		}
	}
}

// BenchmarkSuiteGridSequential is the same grid pinned to one worker,
// for measuring the runner's parallel speedup (compare against
// BenchmarkSuiteGridParallel).
func BenchmarkSuiteGridSequential(b *testing.B) {
	cfg := benchCfg()
	cfg.Seconds = 8
	cfg.MaxInstances = 2
	cfg.Parallel = 1
	for i := 0; i < b.N; i++ {
		core.RunSuiteGrid(cfg)
	}
}

// BenchmarkScenarioProfiles runs one human-driven trial of every
// extended scenario family (CAD, VV, CZ) plus a nine-profile fleet
// consolidation — the registry path beyond the paper's six. It rides
// the CI bench smoke (-benchtime 1x), so a new family that panics,
// stalls or stops producing frames fails the build instead of rotting.
func BenchmarkScenarioProfiles(b *testing.B) {
	cfg := benchCfg()
	cfg.Seconds = 8
	for i := 0; i < b.N; i++ {
		show := printHeader("Scenarios", "extended families: CloudCAD / VoluPlay / CasualZen")
		trials := []exp.Trial{
			exp.Single(mustProfile(b, "CAD"), exp.DriverHuman),
			exp.Single(mustProfile(b, "VV"), exp.DriverHuman),
			exp.Single(mustProfile(b, "CZ"), exp.DriverHuman),
		}
		for ti, reps := range core.RunTrials(trials, cfg) {
			r := reps[0].Results[0]
			if r.ServerFPS <= 0 {
				b.Fatalf("trial %d produced no frames", ti)
			}
			if show {
				fmt.Printf("%-4s srv %5.1f fps  cli %5.1f fps  RTT %6.1f ms  mem %4.0f MB\n",
					r.Benchmark, r.ServerFPS, r.ClientFPS, r.RTT.Mean, r.FootprintMB)
			}
		}
		shape := exp.FleetShape{Machines: 3, Mix: "suite", Requests: 9, Profiles: "all"}
		fr := core.RunFleetConsolidation(shape, cfg)
		if fr.Placed == 0 {
			b.Fatal("nine-profile fleet placed nothing")
		}
		if show {
			fmt.Printf("fleet over all profiles: placed %d, rejected %d, QoS violations %d\n",
				fr.Placed, fr.Rejected, fr.QoSViolations)
		}
	}
}

// BenchmarkFaultChurn runs the full fault-injection churn path —
// crashes on a deterministic MTBF/MTTR schedule, evictions, retry
// failover and brown-out degradation, with every epoch executed on
// simulated machines. It rides the CI bench smoke (-benchtime 1x), so a
// fault path that panics, stalls or stops recovering sessions fails the
// build instead of rotting.
func BenchmarkFaultChurn(b *testing.B) {
	cfg := benchCfg()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	shape := exp.FleetShape{
		Machines: 5, Policy: "leastdemand", Mix: "heavy", CoreClasses: "8,8,4",
		Epochs: 8, ArrivalRate: 3, MeanSessionEpochs: 4,
		MTBFEpochs: 5, MTTREpochs: 1,
		RetryAttempts: 3, RetryBackoffEpochs: 1, Degrade: true,
	}
	for i := 0; i < b.N; i++ {
		rs := core.RunFaultComparison(shape, cfg)
		drop, resilient := rs[1], rs[2]
		if drop.Crashes == 0 {
			b.Fatal("fault schedule injected no crashes")
		}
		if resilient.Recovered == 0 {
			b.Fatal("retry failover recovered no sessions")
		}
		if show := printHeader("Faults", "fault injection: drop vs retry+degrade"); show {
			fmt.Printf("crashes %d: availability %.1f%% (drop) vs %.1f%% (retry+degrade), %d recovered, %d degraded session-epochs\n",
				drop.Crashes, 100*drop.Availability, 100*resilient.Availability,
				resilient.Recovered, resilient.DegradedSessionEpochs)
		}
	}
}

// BenchmarkGlobalKernelSweep is the scale headline of the fidelity
// tiers: a 1000-machine heterogeneous fleet offered ~100k sessions
// over 20 epochs, every machine on the calibrated surrogate tier
// (SurrogateTail with a zero sampled cohort), driven through the
// global event kernel with the migration controller on. What took the
// full per-frame simulator hours runs in seconds here — the pinned
// guard keeps it that way — while the fidelity fixture in
// internal/core bounds how far the cheap tier may drift. Calibration
// is warmed outside the timed region: it is a once-per-process cost
// shared by fingerprint, not part of the sweep.
func BenchmarkGlobalKernelSweep(b *testing.B) {
	cfg := benchCfg()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	shape := exp.FleetShape{
		Machines: 1000, Policy: "roundrobin", Mix: "heavy", CoreClasses: "8,4",
		Epochs: 20, ArrivalRate: 5000, MeanSessionEpochs: 2,
		Migrate: true, SurrogateTail: true,
	}
	warm := shape
	warm.Machines, warm.Epochs, warm.ArrivalRate, warm.MeanSessionEpochs = 2, 1, 1, 1
	warm.Migrate = false
	core.RunFleetChurn(warm, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.RunFleetChurn(shape, cfg)
		if r.Arrivals < 90000 {
			b.Fatalf("sweep offered only %d sessions, want ~100k", r.Arrivals)
		}
		if r.MeanActive <= 0 || r.MeanPowerWatts <= 0 {
			b.Fatalf("sweep produced no execution: active %.1f, %.1f W", r.MeanActive, r.MeanPowerWatts)
		}
		b.ReportMetric(float64(r.Arrivals), "sessions/op")
		if show := printHeader("Kernel", "global event kernel: 100k-session surrogate-tier sweep"); show {
			fmt.Printf("1000 machines × 20 epochs: %d sessions offered, %d rejected, mean active %.0f, %.1f%% available, %.0f kW mean\n",
				r.Arrivals, r.Rejected, r.MeanActive, 100*r.Availability, r.MeanPowerWatts/1000)
		}
	}
}

// BenchmarkDiurnalMillionSweep is the streaming arrival/result API's
// scale headline: a 10,000-machine surrogate fleet offered over a
// million sessions across a 70-epoch diurnal day (10k/epoch trough,
// 20k/epoch peak), streamed through the rollup-only sink so the run
// holds per-epoch aggregates transiently and retains none — memory is
// O(machines + peak concurrent sessions), not O(machines × epochs) or
// O(total arrivals). The in-loop assertions are the sweep's acceptance
// floor: at least a million offered sessions, a non-empty execution,
// and zero retained epoch rows.
func BenchmarkDiurnalMillionSweep(b *testing.B) {
	cfg := benchCfg()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	shape := exp.FleetShape{
		Machines: 10000, Policy: "roundrobin", Mix: "heavy", CoreClasses: "8,4",
		Epochs: 70, ArrivalRate: 10000, MeanSessionEpochs: 1,
		RateSchedule: "diurnal", PeakRate: 20000, PeriodEpochs: 70,
		SurrogateTail: true, RollupOnly: true,
	}
	warm := shape
	warm.Machines, warm.Epochs, warm.ArrivalRate, warm.PeakRate, warm.PeriodEpochs = 2, 1, 1, 2, 1
	warm.MeanSessionEpochs = 1
	core.RunFleetChurn(warm, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.RunFleetChurn(shape, cfg)
		if r.Arrivals < 1_000_000 || r.OfferedSessionEpochs < 1_000_000 {
			b.Fatalf("sweep offered only %d sessions (%d session-epochs), want >= 1M", r.Arrivals, r.OfferedSessionEpochs)
		}
		if len(r.Epochs) != 0 {
			b.Fatalf("streaming sweep retained %d epoch rows, want 0", len(r.Epochs))
		}
		if r.MeanActive <= 0 || r.MeanPowerWatts <= 0 {
			b.Fatalf("sweep produced no execution: active %.1f, %.1f W", r.MeanActive, r.MeanPowerWatts)
		}
		b.ReportMetric(float64(r.Arrivals), "sessions/op")
		if show := printHeader("Diurnal", "streaming arrival API: 1M-session diurnal day on 10k machines"); show {
			fmt.Printf("10000 machines × 70 epochs (diurnal 10k→20k/epoch): %d sessions offered, %d rejected, mean active %.0f, %.1f%% available, %.0f kW mean\n",
				r.Arrivals, r.Rejected, r.MeanActive, 100*r.Availability, r.MeanPowerWatts/1000)
		}
	}
}

// mustProfile resolves a registered profile for the scenario bench.
func mustProfile(b *testing.B, name string) app.Profile {
	p, ok := app.ByName(name)
	if !ok {
		b.Fatalf("profile %s not registered", name)
	}
	return p
}
