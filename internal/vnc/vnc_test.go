package vnc

import (
	"testing"

	"pictor/internal/codec"
	"pictor/internal/hw/cpu"
	"pictor/internal/netsim"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/x11"
)

type env struct {
	k       *sim.Kernel
	tracer  *trace.Tracer
	display *x11.Display
	server  *ServerProxy
	client  *ClientProxy
}

type stubDriver struct {
	frames []*scene.Frame
	send   func(scene.Action)
}

func (d *stubDriver) Attach(send func(scene.Action)) { d.send = send }
func (d *stubDriver) OnFrame(f *scene.Frame)         { d.frames = append(d.frames, f) }

func newEnv(driver Driver) *env {
	k := sim.NewKernel()
	rng := sim.NewRNG(1)
	c := cpu.New(k, 8, rng)
	tracer := trace.New(k)
	display := x11.NewDisplay(k, rng, 1920, 1080)
	link := netsim.NewLink(k, "i0", netsim.DefaultConfig(), rng)
	server := NewServerProxy(k, c.NewProc("vnc", nil, 0), link, display, tracer, codec.Default(), DefaultCosts(), rng)
	client := NewClientProxy(k, link, tracer, server, driver)
	return &env{k: k, tracer: tracer, display: display, server: server, client: client}
}

func taggedFrame(tr *trace.Tracer, tags ...uint64) *scene.Frame {
	f := &scene.Frame{
		Width: 1920, Height: 1080, Motion: 0.3,
		Pixels: make([]float64, scene.FrameW*scene.FrameH),
		Tags:   tags,
	}
	f.PixelBackup = trace.EmbedTags(f.Pixels, tags, nil)
	return f
}

func TestInputPathReachesXQueue(t *testing.T) {
	e := newEnv(nil)
	e.client.SendInput(scene.ActPrimary)
	e.k.Run()
	events := e.display.Drain()
	if len(events) != 1 {
		t.Fatalf("X queue has %d events, want 1", len(events))
	}
	if events[0].Action != scene.ActPrimary || events[0].Tag == 0 {
		t.Fatalf("event corrupted: %+v", events[0])
	}
	// CS, SP and PS stages were measured.
	for _, s := range []trace.Stage{trace.StageCS, trace.StageSP, trace.StagePS} {
		if e.tracer.StageSample(s).N() == 0 {
			t.Fatalf("stage %s unmeasured", s)
		}
	}
}

func TestFramePathDeliversAndMeasures(t *testing.T) {
	d := &stubDriver{}
	e := newEnv(d)
	e.client.SendInput(scene.ActForward)
	e.k.Run()
	ev := e.display.Drain()[0]

	e.server.HandleFrame(taggedFrame(e.tracer, ev.Tag))
	e.k.Run()
	if len(d.frames) != 1 {
		t.Fatalf("driver saw %d frames, want 1", len(d.frames))
	}
	if e.tracer.CompletedRTTCount() != 1 {
		t.Fatal("round trip never completed")
	}
	if e.tracer.ServerFPS() <= 0 || e.tracer.ClientFPS() <= 0 {
		t.Fatal("FPS counters empty")
	}
	for _, s := range []trace.Stage{trace.StageCP, trace.StageSS} {
		if e.tracer.StageSample(s).N() == 0 {
			t.Fatalf("stage %s unmeasured", s)
		}
	}
	if d.frames[0].CompressedBytes <= 0 {
		t.Fatal("frame not compressed")
	}
}

func TestTagRecoveryFromPixels(t *testing.T) {
	d := &stubDriver{}
	e := newEnv(d)
	f := taggedFrame(e.tracer, 77, 78)
	f.Tags = nil // the proxy must recover them from pixels alone
	e.server.HandleFrame(f)
	e.k.Run()
	if len(d.frames) != 1 {
		t.Fatal("frame lost")
	}
	got := d.frames[0].Tags
	if len(got) != 2 || got[0] != 77 || got[1] != 78 {
		t.Fatalf("recovered tags = %v, want [77 78]", got)
	}
	// And the embedded region was restored.
	for i := 0; i < 17; i++ {
		if d.frames[0].Pixels[i] != 0 {
			t.Fatalf("pixel %d not restored: %v", i, d.frames[0].Pixels[i])
		}
	}
}

func TestCoalescingKeepsTags(t *testing.T) {
	d := &stubDriver{}
	e := newEnv(d)
	// Three frames land faster than the encoder can ship them.
	e.server.HandleFrame(taggedFrame(e.tracer, 1))
	e.server.HandleFrame(taggedFrame(e.tracer, 2))
	e.server.HandleFrame(taggedFrame(e.tracer, 3))
	e.k.Run()
	if e.tracer.DroppedFrames() == 0 {
		t.Fatal("no coalescing despite encoder backlog")
	}
	// Every tag must still reach the client (on whichever frame).
	seen := map[uint64]bool{}
	for _, f := range d.frames {
		for _, tag := range f.Tags {
			seen[tag] = true
		}
	}
	for tag := uint64(1); tag <= 3; tag++ {
		if !seen[tag] {
			t.Fatalf("tag %d lost in coalescing", tag)
		}
	}
}

func TestServerFPSCountsArrivals(t *testing.T) {
	e := newEnv(nil)
	for i := 0; i < 5; i++ {
		e.server.HandleFrame(taggedFrame(e.tracer, uint64(100+i)))
	}
	e.k.Run()
	e.k.RunUntil(sim.Time(sim.Second))
	if got := e.tracer.ServerFrameCount(); got != 5 {
		t.Fatalf("server frames = %d, want 5", got)
	}
}
