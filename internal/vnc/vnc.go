// Package vnc models the remote-display proxies of the cloud rendering
// system (TurboVNC in the paper's testbed): the server proxy that
// receives user inputs and compresses/ships frames, and the client
// proxy that sends inputs and displays received frames.
package vnc

import (
	"pictor/internal/codec"
	"pictor/internal/hw/cpu"
	"pictor/internal/netsim"
	"pictor/internal/proto"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/x11"
)

// Costs parameterizes the proxy's per-message CPU work.
type Costs struct {
	// SPMs is server-proxy input handling (stage SP, sub-millisecond).
	SPMs float64
	// PSMs is the IPC injection of an input into the app (stage PS).
	PSMs float64
	// ReceiveMs is per-frame intake work at hook8 (shared-memory map,
	// damage tracking). It shares the encoder thread with CP, so a
	// faster application eats into encode throughput.
	ReceiveMs float64
	// IPCTax multiplies IPC-stage work (containers raise it).
	IPCTax float64
}

// DefaultCosts returns typical TurboVNC input-path costs.
func DefaultCosts() Costs {
	return Costs{SPMs: 0.35, PSMs: 1.6, ReceiveMs: 0.7}
}

// ServerProxy is the cloud-side media proxy of one instance. Frame
// intake and encoding share one serial worker (the RFB update thread);
// network sends overlap with intake but only one update is in flight.
type ServerProxy struct {
	k       *sim.Kernel
	proc    *cpu.Proc
	link    *netsim.Link
	display *x11.Display
	tracer  *trace.Tracer
	cod     codec.Codec
	rng     *sim.RNG
	costs   Costs

	deliver func(f *scene.Frame)

	tasks   []func(done func())
	busy    bool
	pending *scene.Frame
	sending bool

	// tagMerge is scratch for coalescing tag lists without allocating.
	tagMerge []uint64
}

// NewServerProxy creates the server proxy. Wire frame delivery to the
// client proxy with SetDeliver before running.
func NewServerProxy(k *sim.Kernel, proc *cpu.Proc, link *netsim.Link, display *x11.Display,
	tracer *trace.Tracer, cod codec.Codec, costs Costs, rng *sim.RNG) *ServerProxy {
	if costs.ReceiveMs <= 0 {
		costs.ReceiveMs = 0.7
	}
	return &ServerProxy{
		k: k, proc: proc, link: link, display: display,
		tracer: tracer, cod: cod, costs: costs, rng: rng.Fork("vnc-server"),
	}
}

// SetDeliver wires the frame delivery callback (client proxy).
func (s *ServerProxy) SetDeliver(fn func(f *scene.Frame)) { s.deliver = fn }

// Proc exposes the proxy's CPU process (for utilization reports).
func (s *ServerProxy) Proc() *cpu.Proc { return s.proc }

// Codec exposes the proxy's codec (the Chen-et-al. estimator needs it).
func (s *ServerProxy) Codec() codec.Codec { return s.cod }

// HandleInput processes one input arriving from the network: hook2, the
// SP stage, hook3, then the PS IPC injection into the application's X
// event queue. The input path runs on its own proxy thread and does not
// queue behind frame encoding.
func (s *ServerProxy) HandleInput(in proto.Input) {
	now := s.k.Now()
	s.tracer.RecordHook(trace.Hook2, in.Tag)
	if in.Tag != 0 {
		s.tracer.AddStage(trace.StageCS, now.Sub(in.Issued), in.Tag)
	}
	spWork := msToDur(s.costs.SPMs) + 2*s.tracer.HookCost()
	spStart := now
	s.proc.Run(spWork, func() {
		s.tracer.AddStage(trace.StageSP, s.k.Now().Sub(spStart), in.Tag)
		s.tracer.RecordHook(trace.Hook3, in.Tag)
		psStart := s.k.Now()
		psWork := msToDur(s.costs.PSMs * (1 + s.costs.IPCTax))
		s.proc.Run(psWork, func() {
			s.tracer.AddStage(trace.StagePS, s.k.Now().Sub(psStart), in.Tag)
			s.display.Push(in)
		})
	})
}

// HandleFrame receives a rendered frame from the application's AS path.
// Intake work is serialized with encoding on the update thread; frames
// arriving while the encoder is behind coalesce onto the newest frame
// (TurboVNC ships the latest framebuffer state, not a backlog).
func (s *ServerProxy) HandleFrame(f *scene.Frame) {
	s.exec(func(done func()) {
		s.proc.Run(msToDur(s.costs.ReceiveMs)+s.tracer.HookCost(), func() {
			// hook8: recover tags embedded in the pixels, restore the
			// displaced values. The pixel-borne tags are authoritative
			// across the IPC boundary; they land in the frame's own
			// (recycled) tag storage.
			f.Tags = trace.ExtractTagsAppend(f.Pixels, f.Tags[:0])
			trace.RestorePixels(f.Pixels, f.PixelBackup)
			f.PixelBackup = f.PixelBackup[:0]
			s.tracer.RecordHookMulti(trace.Hook8, f.Tags)
			s.tracer.ServerFrameTick()
			if old := s.pending; old != nil {
				// Newest frame wins, but answered inputs keep their tags
				// (in arrival order — RTT accumulation order is part of
				// the determinism contract). The superseded frame goes
				// back to the scene's free list.
				s.tagMerge = append(append(s.tagMerge[:0], old.Tags...), f.Tags...)
				f.Tags = append(f.Tags[:0], s.tagMerge...)
				s.tracer.FrameDropped()
				old.Release()
			}
			s.pending = f
			done()
			s.pump()
		})
	})
}

// exec runs tasks one at a time on the update thread.
func (s *ServerProxy) exec(t func(done func())) {
	s.tasks = append(s.tasks, t)
	s.drain()
}

func (s *ServerProxy) drain() {
	if s.busy || len(s.tasks) == 0 {
		return
	}
	s.busy = true
	t := s.tasks[0]
	s.tasks = s.tasks[1:]
	t(func() {
		s.busy = false
		s.drain()
	})
}

// pump starts compressing the pending frame if no update is in flight.
func (s *ServerProxy) pump() {
	if s.sending || s.pending == nil {
		return
	}
	f := s.pending
	s.pending = nil
	s.sending = true
	s.exec(func(done func()) {
		bytes, cpCost := s.cod.Compress(f, s.rng)
		f.CompressedBytes = bytes
		cpStart := s.k.Now()
		s.proc.Run(cpCost+s.tracer.HookCost(), func() {
			s.tracer.AddStage(trace.StageCP, s.k.Now().Sub(cpStart), f.Tags...)
			s.tracer.RecordHookMulti(trace.Hook9, f.Tags)
			done() // encoder thread freed; the send overlaps intake
			ssStart := s.k.Now()
			s.link.SendToClient(bytes, func() {
				s.tracer.AddStage(trace.StageSS, s.k.Now().Sub(ssStart), f.Tags...)
				if s.deliver != nil {
					s.deliver(f)
				}
				s.sending = false
				s.pump()
			})
		})
	})
}

func msToDur(ms float64) sim.Duration {
	return sim.DurationOfSeconds(ms / 1e3)
}

// Driver consumes displayed frames and produces inputs. Implementations
// live in internal/agent (human reference, intelligent client) and
// internal/baselines (DeskBench, Slow-Motion pacing).
type Driver interface {
	// Attach hands the driver its input-sending function before the run
	// starts.
	Attach(send func(scene.Action))
	// OnFrame delivers one displayed frame. The driver takes ownership:
	// it calls Frame.Release once done with the frame (drivers that
	// don't recycle simply let the release be the frame's last use).
	OnFrame(f *scene.Frame)
}

// ClientProxy is the user-side proxy of one instance.
type ClientProxy struct {
	k      *sim.Kernel
	link   *netsim.Link
	tracer *trace.Tracer
	server *ServerProxy
	driver Driver
}

// NewClientProxy creates the client proxy and wires the delivery path
// from the server proxy.
func NewClientProxy(k *sim.Kernel, link *netsim.Link, tracer *trace.Tracer, server *ServerProxy, driver Driver) *ClientProxy {
	c := &ClientProxy{k: k, link: link, tracer: tracer, server: server, driver: driver}
	server.SetDeliver(c.handleFrame)
	if driver != nil {
		driver.Attach(c.SendInput)
	}
	return c
}

// SendInput tags (hook1) and ships one input to the server.
func (c *ClientProxy) SendInput(a scene.Action) {
	tag := c.tracer.NextTag()
	c.tracer.RecordHook(trace.Hook1, tag)
	in := proto.Input{Tag: tag, Action: a, Issued: c.k.Now()}
	c.link.SendToServer(proto.InputBytes, func() {
		c.server.HandleInput(in)
	})
}

// handleFrame completes the round trip (hook10), counts the client
// frame, and hands the decompressed frame to the driver. Ownership of
// the frame passes to the driver, which releases it (immediately or,
// for the intelligent client, once analyzed); with no driver it goes
// straight back to the scene's free list.
func (c *ClientProxy) handleFrame(f *scene.Frame) {
	c.tracer.RecordHookMulti(trace.Hook10, f.Tags)
	c.tracer.ClientFrameTick()
	if c.driver == nil {
		f.Release()
		return
	}
	c.k.After(codec.DecompressTime(f.CompressedBytes), func() {
		c.driver.OnFrame(f)
	})
}
