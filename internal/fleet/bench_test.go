package fleet

import "testing"

// BenchmarkFaultChurnBookkeeping measures the pure fault-tolerance
// bookkeeping path — departures, crash evictions, retry-queue drains,
// offers and brown-out pressure over a full churn horizon — with no
// machine execution attached. This is the per-epoch overhead the fault
// subsystem adds to every churn trial, so it is pinned in benchguard.
func BenchmarkFaultChurnBookkeeping(b *testing.B) {
	const epochs = 16
	stream, err := ChurnStream(MixHeavy, 3.0, 2.5, epochs, 1)
	if err != nil {
		b.Fatal(err)
	}
	timeline, err := FaultStream(4, 3.0, 1.0, epochs, 1)
	if err != nil {
		b.Fatal(err)
	}
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Sessions are reused across iterations: reset the mutable
		// lifecycle state so every iteration does identical work.
		for _, arr := range stream {
			for _, s := range arr {
				s.Machine, s.Tier = -1, 0
			}
		}
		f := NewHetero(4, []float64{8, 4})
		c := NewChurn(f, pol)
		c.Retry = RetryPolicy{MaxAttempts: 3, BackoffEpochs: 1}
		for e := 0; e < epochs; e++ {
			c.DepartDue(e)
			for mi, m := range f.Machines {
				st := timeline[mi][e]
				if st == MachineDown && m.State != MachineDown {
					m.State = st
					c.EvictAll(mi, e)
					continue
				}
				m.State = st
			}
			c.RetryDue(e)
			for _, s := range stream[e] {
				c.Offer(s, e)
			}
			for mi := range f.Machines {
				if c.DegradeToFit(mi) == 0 {
					c.UpgradeOne(mi)
				}
			}
		}
	}
}
