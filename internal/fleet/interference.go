package fleet

// Interference is a symmetric pair-compatibility table: Score(a, b) is
// the predicted performance penalty of co-locating benchmarks a and b,
// as a fraction (0 = fully compatible, 0.3 = ~30% FPS loss each). The
// co-location experiment (§5.3, Figure 18/19) produces exactly this
// data — core.PairInterference measures it once per process from solo
// vs paired runs — but any source works; the type is plain data so the
// leaf stays free of the assembly layer.
type Interference struct {
	scores map[[2]string]float64
}

// NewInterference returns an empty table (every pair scores 0).
func NewInterference() *Interference {
	return &Interference{scores: make(map[[2]string]float64)}
}

// pairKey canonicalizes the unordered pair.
func pairKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Set records the penalty for co-locating a with b (symmetric; a == b
// records the homogeneous-pair penalty).
func (it *Interference) Set(a, b string, score float64) {
	it.scores[pairKey(a, b)] = score
}

// Score reports the penalty for co-locating a with b; unknown pairs
// (and a nil table) score 0.
func (it *Interference) Score(a, b string) float64 {
	if it == nil {
		return 0
	}
	return it.scores[pairKey(a, b)]
}

// Len reports how many pairs have recorded scores.
func (it *Interference) Len() int {
	if it == nil {
		return 0
	}
	return len(it.scores)
}
