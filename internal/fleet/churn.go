package fleet

import (
	"fmt"
	"sort"

	"pictor/internal/app"
)

// Churn bookkeeping: the fleet admitted a fixed-length stream once and
// never looked back, but real cloud-gaming fleets face tenants that
// arrive (Poisson), stay (exponential session lengths) and leave — and
// must be re-placed when a machine's measured interactivity degrades.
// This file owns the deterministic arrival schedule and the placement
// bookkeeping over time; it deliberately knows nothing about executing
// a machine — the assembly layer (internal/core.RunFleetChurn) drives
// the epoch loop and feeds measured RTTs back into MigrateOff.

// Session is one churn tenant: a benchmark instance that arrives in
// some epoch, runs on one machine, and departs when its exponential
// session length elapses.
type Session struct {
	// ID is the arrival sequence number (stable identity; migration
	// victims tie-break toward the lower ID).
	ID int
	// Profile is the benchmark the tenant runs.
	Profile app.Profile
	// Arrive is the epoch the session arrives in.
	Arrive int
	// Departs is the first epoch the session is gone (Arrive + its
	// sampled duration, always >= Arrive + 1).
	Departs int
	// Machine is the session's current machine index; -1 while
	// unplaced or after a rejection.
	Machine int
	// Tier is the session's brown-out quality tier: 0 is full
	// fidelity, higher tiers serve a reduced resolution (see
	// DegradedProfile). Evictions reset the tier — a re-admitted
	// session starts at full fidelity again.
	Tier int
}

// Served returns the profile the session currently runs at: its
// declared Profile scaled down by its brown-out tier. At tier 0 this
// is the Profile itself, bit-identical.
func (s *Session) Served() app.Profile { return DegradedProfile(s.Profile, s.Tier) }

// ValidateChurnParams checks the churn-shape vocabulary with actionable
// messages. It is shared by ChurnStream and the shape validators, so a
// typo fails identically whether it arrives via the CLI or the API.
func ValidateChurnParams(rate, meanEpochs float64, epochs int) error {
	if epochs < 1 {
		return fmt.Errorf("fleet: churn needs at least 1 epoch, got %d", epochs)
	}
	if rate <= 0 {
		return fmt.Errorf("fleet: churn arrival rate must be > 0 sessions/epoch, got %g", rate)
	}
	if meanEpochs <= 0 {
		return fmt.Errorf("fleet: churn mean session length must be > 0 epochs, got %g", meanEpochs)
	}
	return nil
}

// ChurnStream generates the deterministic arrival schedule over the
// paper's six-benchmark suite (the historical default). See
// ChurnStreamFrom for an explicit workload set.
func ChurnStream(mix Mix, rate, meanEpochs float64, epochs int, seed int64) ([][]*Session, error) {
	return ChurnStreamFrom(nil, mix, rate, meanEpochs, epochs, seed)
}

// ChurnStreamFrom generates the deterministic arrival schedule: for
// each of the epochs, the sessions arriving in it, with profiles drawn
// from the given workload set (nil means the paper's six, keeping every
// pre-registry schedule byte-identical). Arrival counts are
// Poisson(rate) per epoch, profiles are drawn from the named mix, and
// session lengths are exponential with mean meanEpochs (rounded up, so
// every session runs at least one epoch). The schedule is a pure
// function of (suite, mix, rate, meanEpochs, epochs, seed): arrivals,
// durations and profiles draw from independent sim.RNG forks, so the
// same shape always churns identically on the parallel runner.
func ChurnStreamFrom(suite []app.Profile, mix Mix, rate, meanEpochs float64, epochs int, seed int64) ([][]*Session, error) {
	src, err := NewChurnSource(ArrivalConfig{
		Suite: suite, Mix: mix,
		Rate: rate, MeanSessionEpochs: meanEpochs, Epochs: epochs, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	out := make([][]*Session, epochs)
	for e := range out {
		// Next reuses its batch slice; a materialized stream owns its
		// sessions, so copy. Empty epochs stay nil, as they always have.
		if batch := src.Next(e); len(batch) > 0 {
			out[e] = append([]*Session(nil), batch...)
		}
	}
	return out, nil
}

// Churn drives a fleet through arrivals, departures and migrations. It
// maintains the invariant that sessions[mi] is index-aligned with
// Fleet.Machines[mi].Placed (same order), so every release maps a
// session to exactly the placement slot it occupies.
type Churn struct {
	Fleet  *Fleet
	Policy Placement
	// sessions holds each machine's resident sessions in placement
	// order, index-aligned with Fleet.Machines.
	sessions [][]*Session
	// Active counts the sessions currently placed fleet-wide.
	Active int
	// Rejected, Departed and Migrations count lifecycle events since
	// construction.
	Rejected   int
	Departed   int
	Migrations int
	// Retry configures failover for evicted and admission-rejected
	// sessions; the zero value keeps the historical drop-on-failure
	// behaviour (see faults.go).
	Retry RetryPolicy
	// Evicted, Retried, Recovered and Lost count failover lifecycle
	// events since construction (see faults.go).
	Evicted   int
	Retried   int
	Recovered int
	Lost      int
	// retryQ holds sessions waiting for a failover attempt, in enqueue
	// order (deterministic: the epoch loop drains it front to back).
	retryQ []retryEntry
	// Pool, when set, receives every session whose lifecycle has
	// terminally ended — departed, rejected with no retry pending, or
	// lost — so a streaming source can reuse the allocation. Nil keeps
	// the historical leave-it-to-the-GC behaviour.
	Pool SessionPool
}

// recycle hands a terminally-finished session back to the pool. Every
// call site is a point where no queue, machine or caller may reference
// the session again.
func (c *Churn) recycle(s *Session) {
	if c.Pool != nil {
		c.Pool.Recycle(s)
	}
}

// NewChurn wraps a fleet and a placement policy for churn-driven
// admission. The policy persists across epochs (stateful policies like
// round-robin keep their cursor).
func NewChurn(f *Fleet, p Placement) *Churn {
	return &Churn{Fleet: f, Policy: p, sessions: make([][]*Session, len(f.Machines))}
}

// Arrive offers a session to the policy. A placed session joins its
// machine's resident list; a rejected one keeps Machine == -1 and is
// never retried (the tenant went elsewhere). Offer is the failover-
// aware variant that enqueues rejections for retry.
func (c *Churn) Arrive(s *Session) bool {
	if c.admit(s) {
		return true
	}
	s.Machine = -1
	c.Rejected++
	c.recycle(s)
	return false
}

// admit offers a session to the policy at its current served fidelity
// and records the placement. It is the single admission path shared by
// Arrive, Offer and RetryDue, so every outcome reverses identically.
func (c *Churn) admit(s *Session) bool {
	mi := c.Fleet.placeOne(s.Served(), c.Policy)
	if mi < 0 {
		return false
	}
	s.Machine = mi
	c.sessions[mi] = append(c.sessions[mi], s)
	c.Active++
	return true
}

// DepartDue releases every resident session whose Departs epoch has
// been reached, returning how many left. Releases recompute machine
// demand over the survivors (see Machine.release), so a departure
// reverses the session's place bookkeeping exactly.
func (c *Churn) DepartDue(epoch int) int {
	departed := 0
	for mi := range c.sessions {
		for slot := len(c.sessions[mi]) - 1; slot >= 0; slot-- {
			s := c.sessions[mi][slot]
			if s.Departs > epoch {
				continue
			}
			c.releaseSlot(mi, slot)
			s.Machine = -1
			departed++
			c.recycle(s)
		}
	}
	c.Departed += departed
	c.Active -= departed
	return departed
}

// releaseSlot removes slot i from machine mi on both sides of the
// session↔placement alignment.
func (c *Churn) releaseSlot(mi, i int) {
	c.Fleet.Machines[mi].release(i)
	c.sessions[mi] = append(c.sessions[mi][:i], c.sessions[mi][i+1:]...)
}

// MigrateOff moves one session off machine mi, targeting by *measured*
// interactivity: rttMs holds each machine's mean RTT from the previous
// epoch's execution (0 for idle machines), and the destination is the
// feasible machine with the lowest measured RTT (ties toward the lower
// index). Placement policies rank by predicted demand, but prediction
// missing an interference effect is exactly why a machine degrades —
// the controller must trust the measurement on both ends, or it would
// happily "relieve" a hot machine by heating up another.
//
// Victim candidates are tried in decreasing predicted-CPU-demand order
// (ties toward the earlier slot, i.e. the lower session ID), falling
// back to lighter sessions: the heaviest tenant is exactly the one
// hardest to re-place, and an overloaded machine is still relieved by
// shedding its heaviest *movable* tenant. It reports whether a
// migration happened; when the rest of the fleet has no room (or is
// measuring no better than the source), nothing moves — migration must
// never turn into an eviction or a swap of one hot machine for another.
func (c *Churn) MigrateOff(mi int, rttMs []float64) bool {
	order := make([]int, len(c.sessions[mi]))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return PredictedCPUDemand(c.sessions[mi][order[a]].Served()) >
			PredictedCPUDemand(c.sessions[mi][order[b]].Served())
	})
	for _, victim := range order {
		s := c.sessions[mi][victim]
		d := PredictedCPUDemand(s.Served())
		target := -1
		for _, m := range c.Fleet.Machines {
			// Targets must be up and must hold the session *without*
			// overcommit: admission overcommits (×Overcommit) for
			// density, but a QoS-restoring move that lands the tenant
			// on a machine already past its un-overcommitted capacity
			// just recreates the violation somewhere else.
			if m.Index == mi || m.State != MachineUp || !m.Fits(d, 1) {
				continue
			}
			// A target must measure both better than the source *and*
			// within the QoS ceiling itself: "merely less hot" is not
			// good enough — dumping load on a machine that is already
			// violating worsens its violation and invites ping-ponging
			// sessions between hot machines.
			if rttMs[m.Index] >= rttMs[mi] || rttMs[m.Index] > QoSMaxRTTMs {
				continue
			}
			if target < 0 || rttMs[m.Index] < rttMs[target] {
				target = m.Index
			}
		}
		if target < 0 {
			continue
		}
		c.releaseSlot(mi, victim)
		c.Fleet.Machines[target].place(s.Served())
		c.sessions[target] = append(c.sessions[target], s)
		s.Machine = target
		c.Migrations++
		return true
	}
	return false
}

// Resident returns machine mi's sessions in placement order (aliases
// internal state; callers must not mutate).
func (c *Churn) Resident(mi int) []*Session { return c.sessions[mi] }
