// Package fleet models a multi-server consolidation scenario: N
// independent server machines, a stream of instance requests, and a
// placement policy that decides which machine each request lands on.
//
// The paper characterizes consolidation on one server (§5.2: how many
// instances a machine sustains before interactive RTT degrades); this
// package asks the next question — *where* to place workloads across a
// fleet for maximum performance. Like internal/exp, it is deliberately
// a leaf: it knows demand prediction, interference scoring and
// placement, but not how to build or run a simulated server. The
// assembly layer (internal/core.RunFleetConsolidation) lowers each
// machine's placed requests onto a core.Cluster and executes them, so
// fleet trials run on the same deterministic parallel runner as every
// other experiment.
package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"pictor/internal/app"
	"pictor/internal/sim"
)

// DefaultMachineCores matches the paper's testbed server (8-core
// i7-7820X); a fleet is N such machines unless the shape overrides it.
const DefaultMachineCores = 8

// DefaultOvercommit is the admission-control cap: a machine accepts
// requests until its predicted CPU demand exceeds Overcommit × cores.
// Cores timeshare, so moderate overcommit trades RTT for density —
// exactly the degradation the consolidation experiments measure. 1.5
// admits roughly the instance counts where §5.2 shows QoS starts to
// slip, so fleets exercise the interesting operating region.
const DefaultOvercommit = 1.5

// QoSMinFPS is the interactivity floor used for violation counts: the
// paper's co-location analysis (Figure 18) treats a benchmark below 25
// client FPS as no longer playable.
const QoSMinFPS = 25.0

// QoSMaxRTTMs is the migration controller's trigger: a machine whose
// measured (pooled) mean RTT from the previous epoch exceeds this is
// treated as violating the 25-FPS interactivity floor and becomes a
// migration source. Calibrated against the consolidation fixtures:
// machines hosting a sub-QoSMinFPS instance measure pooled mean RTTs
// of ~144 ms and above, while machines meeting QoS stay below ~120 ms.
const QoSMaxRTTMs = 140.0

// Machine is the placement-time view of one server: bookkeeping the
// policies read (what is placed, predicted demand), not the simulated
// hardware itself. The assembly layer pairs each Machine with a
// core.Cluster when the fleet is executed.
type Machine struct {
	// Index is the machine's position in the fleet (stable identity;
	// ties between equally-good machines break toward lower index).
	Index int
	// Cores is the machine's CPU capacity.
	Cores float64
	// Placed holds the profiles placed on this machine, in admission
	// order.
	Placed []app.Profile
	// Demand is the summed predicted CPU demand of the placed profiles.
	Demand float64
	// State is the machine's availability (fault injection): the
	// zero value MachineUp keeps every fault-free fleet byte-identical
	// to the pre-fault implementation.
	State MachineState
}

// Fits reports whether adding demand d keeps the machine within its
// overcommitted capacity.
func (m *Machine) Fits(d, overcommit float64) bool {
	return m.Demand+d <= m.Cores*overcommit
}

// place records a request on the machine. Demand is recomputed as the
// left-to-right sum over the placed list (identical to incremental
// accumulation for append-only admission), so release can reverse the
// bookkeeping exactly.
func (m *Machine) place(p app.Profile) {
	m.Placed = append(m.Placed, p)
	m.Demand = sumDemand(m.Placed)
}

// release removes the placed instance at slot i (reversing place).
// Demand is recomputed over the survivors in order, so releasing a
// session leaves Demand bit-identical to a history in which it was
// never placed — float subtraction would instead accumulate error and
// could drift negative on an empty machine.
func (m *Machine) release(i int) {
	m.Placed = append(m.Placed[:i], m.Placed[i+1:]...)
	m.Demand = sumDemand(m.Placed)
}

// replace swaps the profile at slot i for p (a brown-out tier change:
// same tenant, different served fidelity) and recomputes demand the
// same left-to-right way place/release do, so a degrade followed by an
// upgrade restores Demand bit-identically.
func (m *Machine) replace(i int, p app.Profile) {
	m.Placed[i] = p
	m.Demand = sumDemand(m.Placed)
}

// sumDemand is the left-to-right predicted-demand sum of a placement.
func sumDemand(ps []app.Profile) float64 {
	d := 0.0
	for _, p := range ps {
		d += PredictedCPUDemand(p)
	}
	return d
}

// Fleet is a set of machines plus the admission-control knobs.
type Fleet struct {
	Machines []*Machine
	// Overcommit caps each machine's predicted demand at Overcommit ×
	// cores; requests that fit nowhere are rejected.
	Overcommit float64
	// Rejected holds the request indices admission turned away.
	Rejected []int
	// scratch backs feasible's result between placements. At churn-sweep
	// arrival rates the feasibility list is the placement path's only
	// allocation, and it is discarded the moment the policy picks —
	// reusing one buffer keeps a million-arrival sweep off the garbage
	// collector. Placement is sequential per fleet (the kernel runs each
	// trial single-threaded), so one buffer is safe.
	scratch []*Machine
}

// New builds a fleet of n identical machines with the given core count
// (<= 0 selects DefaultMachineCores).
func New(n int, cores float64) *Fleet {
	if cores <= 0 {
		cores = DefaultMachineCores
	}
	return NewHetero(n, []float64{cores})
}

// NewHetero builds a fleet of n machines whose core counts cycle
// through the given classes (machine i gets classes[i % len]); an empty
// class list selects DefaultMachineCores for every machine. This is the
// heterogeneous-fleet constructor: a class list like {8, 4} models a
// fleet of alternating big and small servers.
func NewHetero(n int, classes []float64) *Fleet {
	if n < 1 {
		n = 1
	}
	if len(classes) == 0 {
		classes = []float64{DefaultMachineCores}
	}
	f := &Fleet{Machines: make([]*Machine, n), Overcommit: DefaultOvercommit}
	for i := range f.Machines {
		f.Machines[i] = &Machine{Index: i, Cores: classes[i%len(classes)]}
	}
	return f
}

// ParseCoreClasses parses a comma-separated core-class list ("8,4,16")
// into per-machine core counts for NewHetero. Empty input is valid and
// means "every machine gets DefaultMachineCores".
func ParseCoreClasses(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: core classes %q: entry %d is not a number (want e.g. \"8,4\")", s, i+1)
		}
		// Core counts below 1 are rejected, not just non-positives: the
		// assembly layer rounds a machine's class to whole cluster cores,
		// and a fraction rounding to 0 would silently execute as the
		// 8-core default while placement believes the machine is tiny.
		if v < 1 {
			return nil, fmt.Errorf("fleet: core classes %q: entry %d must be a core count >= 1, got %g", s, i+1, v)
		}
		out[i] = v
	}
	return out, nil
}

// Admit runs the admission loop: each request in turn is offered to the
// policy, restricted to machines with remaining overcommitted capacity.
// Requests no machine can hold are recorded in f.Rejected. The loop is
// fully deterministic: same fleet, stream and policy always produce the
// same placement.
func (f *Fleet) Admit(reqs []app.Profile, p Placement) {
	for i, req := range reqs {
		if f.placeOne(req, p) < 0 {
			f.Rejected = append(f.Rejected, i)
		}
	}
}

// placeOne offers one request to the policy over the feasible machines
// and records the placement, returning the chosen machine's fleet index
// or -1 when no machine can (or the policy will) hold it. Policies
// whose choice short-circuits (cursorPicker) skip materializing the
// feasibility list entirely — the scan stops at the machine the full
// list would have selected anyway.
func (f *Fleet) placeOne(req app.Profile, p Placement) int {
	d := PredictedCPUDemand(req)
	if cp, ok := p.(cursorPicker); ok {
		mi := cp.pickDirect(f, d)
		if mi < 0 {
			return -1
		}
		f.Machines[mi].place(req)
		return mi
	}
	feasible := f.feasible(d)
	if len(feasible) == 0 {
		return -1
	}
	pick := p.Pick(feasible, req)
	if pick < 0 || pick >= len(feasible) {
		return -1
	}
	feasible[pick].place(req)
	return feasible[pick].Index
}

// feasible lists the machines that can hold one more request of demand
// d, in index order. Machines that are down or cold-starting (fault
// injection) take no placements. The returned slice is valid until the
// next call (it reuses the fleet's scratch buffer).
func (f *Fleet) feasible(d float64) []*Machine {
	out := f.scratch[:0]
	for _, m := range f.Machines {
		if m.State != MachineUp {
			continue
		}
		if m.Fits(d, f.Overcommit) {
			out = append(out, m)
		}
	}
	f.scratch = out
	return out
}

// Placements returns each machine's placed profiles (index-aligned with
// Machines).
func (f *Fleet) Placements() [][]app.Profile {
	out := make([][]app.Profile, len(f.Machines))
	for i, m := range f.Machines {
		out[i] = m.Placed
	}
	return out
}

// PredictedCPUDemand estimates the cores one instance of a profile will
// demand: the steady background threads of the engine and its VNC proxy
// plus the per-frame logic, IPC and encode work at the pipeline's
// nominal 60 FPS target. It is a placement heuristic — the simulation
// measures the truth — but it orders the suite correctly (D2's worker
// threads and STK's encode volume are the heavyweights, RE is the
// lightest), which is all a least-loaded or bin-packing policy needs.
func PredictedCPUDemand(p app.Profile) float64 {
	const targetFPS = 60
	frameMB := float64(p.Width*p.Height) * 4 / 1e6 // raw RGBA readback
	perFrameMs := p.ALBaseMs + p.ASBaseMs + p.ASPerMBMs*frameMB + p.Codec.MsPerMB*frameMB
	return p.AppBackgroundCores + p.VNCBackgroundCores + targetFPS*perFrameMs/1000
}

// ---------------------------------------------------------------------------
// Request streams (arrival mixes)

// Mix names a deterministic arrival-stream generator.
type Mix string

const (
	// MixSuite cycles the Table-2 suite in paper order (seed-independent).
	MixSuite Mix = "suite"
	// MixShuffled draws uniformly from the suite with a seeded RNG.
	MixShuffled Mix = "shuffled"
	// MixHeavy draws from the suite weighted toward the heavy profiles
	// (Dota2's worker threads, SuperTuxKart's encode volume, InMind's
	// footprint), modelling a fleet dominated by demanding tenants.
	MixHeavy Mix = "heavy"
)

// Mixes lists the supported arrival mixes.
func Mixes() []Mix { return []Mix{MixSuite, MixShuffled, MixHeavy} }

// RequestStream generates n instance requests for the named mix, drawn
// from the paper's six-benchmark suite (the historical default). See
// RequestStreamFrom for an explicit workload set.
func RequestStream(mix Mix, n int, seed int64) ([]app.Profile, error) {
	return RequestStreamFrom(nil, mix, n, seed)
}

// RequestStreamFrom generates n instance requests for the named mix,
// drawn from the given workload set (nil means the paper's six, keeping
// every pre-registry stream byte-identical). The stream is a pure
// function of (suite, mix, n, seed), so fleet trials stay deterministic
// on the parallel runner. A non-positive n is an error — silently
// clamping it to 1 (the old behaviour) made "-requests 0" quietly run
// one request instead of failing loudly.
func RequestStreamFrom(suite []app.Profile, mix Mix, n int, seed int64) ([]app.Profile, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: request stream needs at least 1 request, got %d", n)
	}
	draw, err := profileDrawer(suite, mix, seed)
	if err != nil {
		return nil, err
	}
	out := make([]app.Profile, n)
	for i := range out {
		out[i] = draw()
	}
	return out, nil
}

// profileDrawer returns a deterministic profile generator for the named
// mix over the given workload set — the single source of arrival
// randomness shared by the one-shot RequestStream and the churn model's
// per-epoch arrivals. A nil suite draws from the paper's six; the fork
// labels (and, over the default set, the random streams) match the
// original fixed-suite implementation exactly. The heavy mix weights
// each profile by its declared HeavyWeight (unset weights count as 1),
// so extended families slot into the mix without a baked-in table.
func profileDrawer(suite []app.Profile, mix Mix, seed int64) (func() app.Profile, error) {
	if len(suite) == 0 {
		suite = app.PaperSuite()
	}
	switch mix {
	case MixSuite, "":
		i := 0
		return func() app.Profile {
			p := suite[i%len(suite)]
			i++
			return p
		}, nil
	case MixShuffled:
		rng := sim.NewRNG(seed).Fork("fleet/mix/shuffled")
		return func() app.Profile {
			return suite[rng.Intn(len(suite))]
		}, nil
	case MixHeavy:
		weights := make([]int, len(suite))
		total := 0
		for i, p := range suite {
			w := p.HeavyWeight
			if w < 1 {
				w = 1
			}
			weights[i] = w
			total += w
		}
		rng := sim.NewRNG(seed).Fork("fleet/mix/heavy")
		return func() app.Profile {
			r := rng.Intn(total)
			for j, w := range weights {
				if r < w {
					return suite[j]
				}
				r -= w
			}
			return suite[len(suite)-1] // unreachable: weights cover [0, total)
		}, nil
	}
	return nil, fmt.Errorf("fleet: unknown mix %q (have %v)", mix, Mixes())
}
