package fleet

import (
	"fmt"

	"pictor/internal/app"
)

// Placement decides where an admitted request lands. Pick receives the
// feasible machines (those with remaining overcommitted capacity, in
// index order, never empty) and returns the index *into that slice* of
// the chosen machine, or -1 to reject the request anyway. Policies must
// be deterministic: placement feeds the deterministic experiment
// runner, so equal inputs must always produce equal choices.
type Placement interface {
	Name() string
	Pick(feasible []*Machine, req app.Profile) int
}

// Policy names, as accepted by NewPolicy and the CLI's -policy flag.
const (
	PolicyRoundRobin  = "roundrobin"
	PolicyLeastCount  = "leastcount"
	PolicyLeastDemand = "leastdemand"
	PolicyBinPack     = "binpack"
)

// PolicyNames lists every placement policy in comparison order.
func PolicyNames() []string {
	return []string{PolicyRoundRobin, PolicyLeastCount, PolicyLeastDemand, PolicyBinPack}
}

// NewPolicy builds a policy by name. The bin-packing policy needs the
// pair-interference table the co-location experiment produces; the
// other policies ignore it (nil is fine for them).
func NewPolicy(name string, it *Interference) (Placement, error) {
	switch name {
	case PolicyRoundRobin, "":
		return &RoundRobin{}, nil
	case PolicyLeastCount:
		return LeastLoadedCount{}, nil
	case PolicyLeastDemand:
		return LeastLoadedDemand{}, nil
	case PolicyBinPack:
		return &BinPack{Interference: it}, nil
	}
	return nil, fmt.Errorf("fleet: unknown policy %q (have %v)", name, PolicyNames())
}

// RoundRobin cycles machines in index order, skipping full ones (the
// feasibility filter already removed those). It balances instance
// counts without looking at the workload at all — the baseline every
// load balancer starts from.
type RoundRobin struct {
	next int
}

func (*RoundRobin) Name() string { return PolicyRoundRobin }

func (p *RoundRobin) Pick(feasible []*Machine, _ app.Profile) int {
	// The cursor advances over machine indices, not the feasible slice,
	// so a temporarily-full machine does not shift everyone else's turn.
	best, bestKey := 0, -1
	for i, m := range feasible {
		// Key orders machines by distance from the cursor, wrapping.
		key := m.Index - p.next
		if key < 0 {
			key += 1 << 30
		}
		if bestKey == -1 || key < bestKey {
			best, bestKey = i, key
		}
	}
	p.next = feasible[best].Index + 1
	return best
}

// cursorPicker is the streaming fast path for policies whose choice is
// "the first fitting machine in my own probe order": placeOne offers
// machines directly and the policy stops at the first fit, instead of
// materializing the whole feasibility list only to discard all but one
// entry — the difference between O(first fit) and O(fleet) per arrival
// on a 10k-machine sweep. An implementation must select exactly the
// machine its Pick would select from the full feasible list, or
// schedule goldens diverge by policy dispatch path.
type cursorPicker interface {
	// pickDirect returns the chosen machine's fleet index (without
	// placing on it), or -1 when no up machine fits demand d.
	pickDirect(f *Fleet, d float64) int
}

// pickDirect: Pick minimizes wrapping cursor distance over the feasible
// list, which is exactly "the first fitting index at or after the
// cursor, wrapping once" — so probe in that order and stop at the
// first fit. The cursor only advances on a successful placement,
// matching the slow path (an empty feasibility list never reaches
// Pick).
func (p *RoundRobin) pickDirect(f *Fleet, d float64) int {
	n := len(f.Machines)
	if n == 0 {
		return -1
	}
	start := p.next % n
	for i := 0; i < n; i++ {
		idx := start + i
		if idx >= n {
			idx -= n
		}
		m := f.Machines[idx]
		if m.State != MachineUp || !m.Fits(d, f.Overcommit) {
			continue
		}
		p.next = idx + 1
		return idx
	}
	return -1
}

// LeastLoadedCount places on the feasible machine hosting the fewest
// instances (ties break toward the lower index). Blind to what those
// instances are — the classic "least connections" balancer.
type LeastLoadedCount struct{}

func (LeastLoadedCount) Name() string { return PolicyLeastCount }

func (LeastLoadedCount) Pick(feasible []*Machine, _ app.Profile) int {
	best := 0
	for i, m := range feasible {
		if len(m.Placed) < len(feasible[best].Placed) {
			best = i
		}
	}
	return best
}

// LeastLoadedDemand places on the feasible machine with the lowest
// predicted CPU demand (PredictedCPUDemand over its placed profiles,
// ties toward the lower index). Unlike LeastLoadedCount it knows a
// Dota2 costs more than a Red Eclipse, so heterogeneous mixes spread by
// weight rather than by headcount.
type LeastLoadedDemand struct{}

func (LeastLoadedDemand) Name() string { return PolicyLeastDemand }

func (LeastLoadedDemand) Pick(feasible []*Machine, _ app.Profile) int {
	best := 0
	for i, m := range feasible {
		if m.Demand < feasible[best].Demand {
			best = i
		}
	}
	return best
}

// BinPack is profile-affinity bin-packing: among the machines where the
// request causes the least predicted interference with what is already
// placed (scored by the pair-interference table the co-location
// experiment produces), it prefers the fullest — packing compatible
// workloads tightly so the fleet keeps whole machines free (and near
// idle power) for as long as possible.
type BinPack struct {
	// Interference scores co-location penalties; nil falls back to pure
	// demand-based packing (every pair scores zero).
	Interference *Interference
}

func (*BinPack) Name() string { return PolicyBinPack }

// binPackEps tolerates float accumulation error in BinPack's scores:
// interference cost and demand are both sums over a machine's placed
// instances, so two machines holding the same multiset of profiles in
// different placement orders (which churn migration produces routinely)
// can disagree in the last few ulps. Exact == comparison would make the
// documented "then lower index" tie-break accumulation-order fragile;
// anything within the tolerance counts as the tie it morally is.
const binPackEps = 1e-9

func (p *BinPack) Pick(feasible []*Machine, req app.Profile) int {
	best, bestCost, bestDemand := -1, 0.0, 0.0
	for i, m := range feasible {
		cost := 0.0
		for _, placed := range m.Placed {
			cost += p.Interference.Score(req.Name, placed.Name)
		}
		// Lexicographic (cost, -demand, index) with tolerance: minimal
		// interference first; among equal costs, pack the fullest
		// machine; remaining ties keep the first (lowest-index) winner.
		switch {
		case best < 0 || cost < bestCost-binPackEps:
			// Strictly lower interference.
		case cost <= bestCost+binPackEps && m.Demand > bestDemand+binPackEps:
			// Tied interference, strictly fuller machine.
		default:
			continue
		}
		best, bestCost, bestDemand = i, cost, m.Demand
	}
	return best
}
