package fleet

import (
	"testing"

	"pictor/internal/app"
	"pictor/internal/sim"
)

func TestFaultStreamDeterministicAndShaped(t *testing.T) {
	a, err := FaultStream(3, 3.0, 1.5, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FaultStream(3, 3.0, 1.5, 12, 7)
	if len(a) != 3 {
		t.Fatalf("got %d machine rows, want 3", len(a))
	}
	downs := 0
	for mi := range a {
		if len(a[mi]) != 12 {
			t.Fatalf("machine %d has %d epochs, want 12", mi, len(a[mi]))
		}
		for e := range a[mi] {
			if a[mi][e] != b[mi][e] {
				t.Fatalf("machine %d epoch %d not deterministic: %v vs %v", mi, e, a[mi][e], b[mi][e])
			}
			if a[mi][e] == MachineDown {
				downs++
			}
			// Repair discipline: leaving Down always passes through
			// Cold before Up.
			if e > 0 && a[mi][e-1] == MachineDown && a[mi][e] == MachineUp {
				t.Fatalf("machine %d epoch %d: Down must repair through a cold-start epoch", mi, e)
			}
		}
	}
	if downs == 0 {
		t.Fatal("MTBF 3 over 12 epochs × 3 machines should crash someone")
	}
	// Adding a machine must not perturb the existing machines' schedules
	// (per-machine forks).
	wider, _ := FaultStream(4, 3.0, 1.5, 12, 7)
	for mi := 0; mi < 3; mi++ {
		for e := range a[mi] {
			if wider[mi][e] != a[mi][e] {
				t.Fatalf("machine %d epoch %d schedule changed when a machine was added", mi, e)
			}
		}
	}
	// MTBF 0 disables faults: all-up timeline.
	quiet, err := FaultStream(2, 0, 0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for mi := range quiet {
		for e := range quiet[mi] {
			if quiet[mi][e] != MachineUp {
				t.Fatal("MTBF 0 must yield an all-up timeline")
			}
		}
	}
}

func TestFaultStreamRejectsBadParams(t *testing.T) {
	cases := []struct {
		name       string
		machines   int
		mtbf, mttr float64
		epochs     int
	}{
		{"negative mtbf", 2, -1, 1, 4},
		{"faulty without mttr", 2, 3, 0, 4},
		{"negative mttr", 2, 3, -2, 4},
		{"zero machines", 0, 3, 1, 4},
		{"zero epochs", 2, 3, 1, 0},
	}
	for _, c := range cases {
		if _, err := FaultStream(c.machines, c.mtbf, c.mttr, c.epochs, 1); err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
	}
	if err := ValidateFaultParams(0, 0); err != nil {
		t.Fatalf("MTBF 0 (faults off) must validate: %v", err)
	}
}

func TestDegradedProfile(t *testing.T) {
	d2, _ := app.ByName("D2")
	if got := DegradedProfile(d2, 0); got.Width != d2.Width || got.Height != d2.Height || got.UploadMBPerFrame != d2.UploadMBPerFrame {
		t.Fatal("tier 0 must return the profile unchanged")
	}
	prev := PredictedCPUDemand(d2)
	for tier := 1; tier <= MaxDegradeTier; tier++ {
		p := DegradedProfile(d2, tier)
		if p.Name != d2.Name {
			t.Fatalf("tier %d renamed the profile: %q", tier, p.Name)
		}
		if p.Width >= DegradedProfile(d2, tier-1).Width {
			t.Fatalf("tier %d must shrink resolution: %d", tier, p.Width)
		}
		if p.UploadMBPerFrame >= DegradedProfile(d2, tier-1).UploadMBPerFrame {
			t.Fatalf("tier %d must shrink upload volume", tier)
		}
		d := PredictedCPUDemand(p)
		if d >= prev {
			t.Fatalf("tier %d demand %g must shed load vs %g", tier, d, prev)
		}
		prev = d
	}
	// Clamps: beyond the deepest tier serves the deepest tier.
	deep, deepest := DegradedProfile(d2, MaxDegradeTier+5), DegradedProfile(d2, MaxDegradeTier)
	if deep.Width != deepest.Width || deep.Height != deepest.Height || deep.UploadMBPerFrame != deepest.UploadMBPerFrame {
		t.Fatal("tiers beyond MaxDegradeTier must clamp")
	}
	// A degenerate 1×1 profile must not collapse to zero pixels.
	tiny := d2
	tiny.Width, tiny.Height = 1, 1
	if p := DegradedProfile(tiny, MaxDegradeTier); p.Width < 1 || p.Height < 1 {
		t.Fatalf("degraded resolution must stay >= 1×1, got %d×%d", p.Width, p.Height)
	}
}

func TestOfferRetryBackoffAndRecovery(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	f := New(1, 8)
	c := NewChurn(f, pol)
	c.Retry = RetryPolicy{MaxAttempts: 2, BackoffEpochs: 1}
	re, _ := app.ByName("RE")

	blocker := &Session{ID: 0, Profile: re, Departs: 100}
	if !c.Arrive(blocker) {
		t.Fatal("blocker must place on an empty 8-core machine")
	}
	// Choke the machine so nothing else fits, then offer.
	f.Machines[0].Cores = 0.01
	s := &Session{ID: 1, Profile: re, Departs: 100}
	if c.Offer(s, 0) {
		t.Fatal("a choked machine must reject the offer")
	}
	if c.Rejected != 1 || c.QueuedRetries() != 1 {
		t.Fatalf("rejection must enqueue a retry: rejected=%d queued=%d", c.Rejected, c.QueuedRetries())
	}
	// Attempt 1 matures one backoff epoch later, not immediately.
	if r, _ := c.RetryDue(0); r != 0 {
		t.Fatal("no attempt may run before its backoff matures")
	}
	if r, rec := c.RetryDue(1); r != 1 || rec != 0 {
		t.Fatalf("attempt 1 must run at epoch 1 and fail: retried=%d recovered=%d", r, rec)
	}
	// Attempt 2 backs off exponentially: 1<<1 = 2 epochs after epoch 1.
	if r, _ := c.RetryDue(2); r != 0 {
		t.Fatal("attempt 2 matures at epoch 3, not 2")
	}
	f.Machines[0].Cores = 8
	if r, rec := c.RetryDue(3); r != 1 || rec != 1 {
		t.Fatalf("attempt 2 must recover once the machine has room: retried=%d recovered=%d", r, rec)
	}
	if s.Machine != 0 || c.Active != 2 || c.QueuedRetries() != 0 {
		t.Fatalf("recovered session not placed: machine=%d active=%d queued=%d", s.Machine, c.Active, c.QueuedRetries())
	}
	if c.Retried != 2 || c.Recovered != 1 || c.Lost != 0 {
		t.Fatalf("counters: retried=%d recovered=%d lost=%d", c.Retried, c.Recovered, c.Lost)
	}
}

func TestRetryExhaustionAndDepartedPurge(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	f := New(1, 8)
	c := NewChurn(f, pol)
	c.Retry = RetryPolicy{MaxAttempts: 2, BackoffEpochs: 1}
	re, _ := app.ByName("RE")
	if !c.Arrive(&Session{ID: 0, Profile: re, Departs: 100}) {
		t.Fatal("blocker must place")
	}
	f.Machines[0].Cores = 0.01

	// Exhaustion: both attempts fail, the third never runs.
	s := &Session{ID: 1, Profile: re, Departs: 100}
	c.Offer(s, 0)
	c.RetryDue(1) // attempt 1 fails, re-enqueues for epoch 3
	c.RetryDue(3) // attempt 2 fails, attempts exhausted
	if c.QueuedRetries() != 0 || c.Lost != 1 {
		t.Fatalf("exhausted session must be lost: queued=%d lost=%d", c.QueuedRetries(), c.Lost)
	}

	// Departure purge: a queued session whose tenant leaves is dropped
	// without burning an attempt.
	gone := &Session{ID: 2, Profile: re, Departs: 2}
	c.Offer(gone, 0)
	if c.QueuedRetries() != 1 {
		t.Fatal("offer must enqueue")
	}
	retriedBefore := c.Retried
	if r, _ := c.RetryDue(2); r != 0 {
		t.Fatal("a departed tenant must not burn a retry attempt")
	}
	if c.QueuedRetries() != 0 || c.Lost != 2 || c.Retried != retriedBefore {
		t.Fatalf("departed tenant must purge as lost: queued=%d lost=%d", c.QueuedRetries(), c.Lost)
	}

	// A session that would depart before its first attempt matures is
	// lost at offer time, not queued.
	eager := &Session{ID: 3, Profile: re, Departs: 1}
	c.Offer(eager, 0)
	if c.QueuedRetries() != 0 || c.Lost != 3 {
		t.Fatalf("hopeless retry must not enqueue: queued=%d lost=%d", c.QueuedRetries(), c.Lost)
	}

	// With retries disabled, Offer behaves like Arrive plus loss
	// accounting.
	c.Retry = RetryPolicy{}
	c.Offer(&Session{ID: 4, Profile: re, Departs: 100}, 0)
	if c.QueuedRetries() != 0 || c.Lost != 4 {
		t.Fatalf("retry-disabled rejection must drop: queued=%d lost=%d", c.QueuedRetries(), c.Lost)
	}
}

func TestEvictAllReversesPlacementAndEnqueues(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	f := New(2, 8)
	c := NewChurn(f, pol)
	c.Retry = RetryPolicy{MaxAttempts: 2, BackoffEpochs: 1}
	d2, _ := app.ByName("D2")
	re, _ := app.ByName("RE")
	// Choke machine 1 so both sessions land on machine 0.
	f.Machines[1].Cores = 0.01
	s1 := &Session{ID: 0, Profile: d2, Departs: 100}
	s2 := &Session{ID: 1, Profile: re, Departs: 100}
	if !c.Arrive(s1) || !c.Arrive(s2) {
		t.Fatal("both sessions must place on machine 0")
	}
	c.DegradeOne(0) // give one session a tier to verify the reset
	if n := c.EvictAll(0, 0); n != 2 {
		t.Fatalf("evicted %d, want 2", n)
	}
	m := f.Machines[0]
	if len(m.Placed) != 0 || m.Demand != 0 {
		t.Fatalf("crashed machine not bit-exactly empty: placed=%d demand=%g", len(m.Placed), m.Demand)
	}
	if c.Active != 0 || c.Evicted != 2 || c.QueuedRetries() != 2 {
		t.Fatalf("eviction bookkeeping: active=%d evicted=%d queued=%d", c.Active, c.Evicted, c.QueuedRetries())
	}
	if s1.Machine != -1 || s2.Machine != -1 || s1.Tier != 0 || s2.Tier != 0 {
		t.Fatalf("evicted sessions must be unplaced at full fidelity: %+v %+v", s1, s2)
	}
	// Recovery after repair: both re-admit and the machine's demand is
	// recomputed identically to a fresh placement.
	if _, rec := c.RetryDue(1); rec != 2 {
		t.Fatalf("recovered %d, want 2", rec)
	}
	if want := sumProfiles(m.Placed); m.Demand != want || c.Active != 2 {
		t.Fatalf("recovered demand %g != recomputed %g (active %d)", m.Demand, want, c.Active)
	}
}

func TestDegradeUpgradeRoundTripRestoresDemand(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	f := New(1, 8)
	c := NewChurn(f, pol)
	d2, _ := app.ByName("D2")
	re, _ := app.ByName("RE")
	sHeavy := &Session{ID: 0, Profile: d2, Departs: 100}
	sLight := &Session{ID: 1, Profile: re, Departs: 100}
	if !c.Arrive(sHeavy) || !c.Arrive(sLight) {
		t.Fatal("both sessions must place")
	}
	m := f.Machines[0]
	orig := m.Demand

	// The heaviest resident degrades first.
	if !c.DegradeOne(0) || sHeavy.Tier != 1 || sLight.Tier != 0 {
		t.Fatalf("heaviest session must degrade first: heavy=%d light=%d", sHeavy.Tier, sLight.Tier)
	}
	if m.Demand >= orig {
		t.Fatalf("degrading must shed demand: %g >= %g", m.Demand, orig)
	}
	if m.Placed[0].Width >= d2.Width {
		t.Fatal("the machine must serve the degraded resolution")
	}
	if got := c.DegradedResidents(0); got != 1 {
		t.Fatalf("degraded gauge = %d, want 1", got)
	}
	// Degrade to the floor: every call succeeds until everyone is at
	// the deepest tier, then refuses.
	for c.DegradeOne(0) {
	}
	if sHeavy.Tier != MaxDegradeTier || sLight.Tier != MaxDegradeTier {
		t.Fatalf("degrade floor: heavy=%d light=%d", sHeavy.Tier, sLight.Tier)
	}
	// Upgrade back up: demand must restore bit-identically.
	for c.UpgradeOne(0) {
	}
	if sHeavy.Tier != 0 || sLight.Tier != 0 {
		t.Fatalf("upgrades must restore full fidelity: heavy=%d light=%d", sHeavy.Tier, sLight.Tier)
	}
	if m.Demand != orig {
		t.Fatalf("degrade→upgrade round trip must restore demand bit-identically: %g != %g", m.Demand, orig)
	}
	if c.DegradedResidents(0) != 0 {
		t.Fatal("no degraded residents after the round trip")
	}
}

func TestUpgradeOneRespectsNominalCapacity(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	f := New(1, 8)
	c := NewChurn(f, pol)
	d2, _ := app.ByName("D2")
	s := &Session{ID: 0, Profile: d2, Departs: 100}
	if !c.Arrive(s) {
		t.Fatal("session must place")
	}
	if !c.DegradeOne(0) {
		t.Fatal("degrade must succeed")
	}
	// Shrink the machine so restoring full fidelity would not fit
	// un-overcommitted: the upgrade must refuse rather than push the
	// machine back over its nominal capacity.
	f.Machines[0].Cores = f.Machines[0].Demand + 0.001
	if c.UpgradeOne(0) {
		t.Fatal("upgrade must refuse when the restored demand does not fit nominal capacity")
	}
	if s.Tier != 1 {
		t.Fatalf("refused upgrade must not change the tier: %d", s.Tier)
	}
}

func TestDegradeToFitShedsTowardNominal(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	f := New(1, 8)
	f.Overcommit = 3 // admit far past nominal capacity
	c := NewChurn(f, pol)
	d2, _ := app.ByName("D2")
	for i := 0; c.Arrive(&Session{ID: i, Profile: d2, Departs: 100}); i++ {
	}
	m := f.Machines[0]
	if m.Demand <= m.Cores {
		t.Fatalf("setup must overcommit the machine: demand %g cores %g", m.Demand, m.Cores)
	}
	steps := c.DegradeToFit(0)
	if steps == 0 {
		t.Fatal("an overcommitted machine must degrade someone")
	}
	if m.Demand > m.Cores && c.DegradeToFit(0) != 0 {
		t.Fatal("DegradeToFit must stop only at nominal fit or the tier floor")
	}
	// Every resident is still aligned and served at its recorded tier.
	for slot, s := range c.Resident(0) {
		if m.Placed[slot].Width != DegradedProfile(s.Profile, s.Tier).Width {
			t.Fatalf("slot %d serves width %d, tier %d says %d",
				slot, m.Placed[slot].Width, s.Tier, DegradedProfile(s.Profile, s.Tier).Width)
		}
	}
}

// TestFaultRecoveryBookkeepingProperty is the satellite property test,
// mirroring TestChurnBookkeepingProperty over randomized *failure*
// schedules: across ≥30 seeds of crash→evict→retry→re-admit (with
// brown-out and migration pressure mixed in), every machine's demand
// always equals the left-to-right recomputation over its placed
// profiles — i.e. recovery reverses bookkeeping exactly, leaving state
// identical to a history in which the crash never happened — and the
// fleet drains bit-exactly empty, with every session accounted for as
// departed or lost.
func TestFaultRecoveryBookkeepingProperty(t *testing.T) {
	const epochs = 8
	for seed := int64(1); seed <= 30; seed++ {
		stream, err := ChurnStream(MixHeavy, 3.0, 2.5, epochs, seed)
		if err != nil {
			t.Fatal(err)
		}
		timeline, err := FaultStream(3, 2.5, 1.0, epochs, seed)
		if err != nil {
			t.Fatal(err)
		}
		pol, _ := NewPolicy(PolicyLeastCount, nil)
		f := NewHetero(3, []float64{8, 4})
		c := NewChurn(f, pol)
		c.Retry = RetryPolicy{MaxAttempts: 3, BackoffEpochs: 1}
		rng := sim.NewRNG(seed).Fork("test/fault-pressure")
		rtts := []float64{150, 120, 100}

		check := func(when string, epoch int) {
			t.Helper()
			for mi, m := range f.Machines {
				if m.Demand < 0 {
					t.Fatalf("seed %d epoch %d (%s): machine %d demand negative: %g", seed, epoch, when, mi, m.Demand)
				}
				if want := sumProfiles(m.Placed); m.Demand != want {
					t.Fatalf("seed %d epoch %d (%s): machine %d demand %g != placed sum %g",
						seed, epoch, when, mi, m.Demand, want)
				}
				if m.State != MachineUp && len(m.Placed) != 0 {
					t.Fatalf("seed %d epoch %d (%s): unavailable machine %d holds %d placements",
						seed, epoch, when, mi, len(m.Placed))
				}
				if len(c.Resident(mi)) != len(m.Placed) {
					t.Fatalf("seed %d epoch %d (%s): machine %d session/placement misalignment: %d vs %d",
						seed, epoch, when, mi, len(c.Resident(mi)), len(m.Placed))
				}
				for slot, s := range c.Resident(mi) {
					if s.Profile.Name != m.Placed[slot].Name {
						t.Fatalf("seed %d epoch %d (%s): machine %d slot %d holds %s, session says %s",
							seed, epoch, when, mi, slot, m.Placed[slot].Name, s.Profile.Name)
					}
					if m.Placed[slot].Width != DegradedProfile(s.Profile, s.Tier).Width {
						t.Fatalf("seed %d epoch %d (%s): machine %d slot %d serves width %d, tier %d says %d",
							seed, epoch, when, mi, slot, m.Placed[slot].Width, s.Tier,
							DegradedProfile(s.Profile, s.Tier).Width)
					}
					if s.Machine != mi {
						t.Fatalf("seed %d epoch %d (%s): session %d thinks it is on %d, found on %d",
							seed, epoch, when, s.ID, s.Machine, mi)
					}
				}
			}
		}

		for e := 0; e < epochs; e++ {
			c.DepartDue(e)
			check("after departures", e)
			for mi, m := range f.Machines {
				st := timeline[mi][e]
				if st == MachineDown && m.State != MachineDown {
					m.State = st
					c.EvictAll(mi, e)
					check("after crash", e)
					continue
				}
				m.State = st
			}
			c.RetryDue(e)
			check("after retries", e)
			for _, s := range stream[e] {
				c.Offer(s, e)
				check("after offer", e)
			}
			// Random brown-out and migration pressure on arbitrary
			// machines: the bookkeeping must hold regardless of why
			// the controllers fire.
			for i := 0; i < 2; i++ {
				mi := rng.Intn(len(f.Machines))
				switch rng.Intn(3) {
				case 0:
					c.DegradeToFit(mi)
				case 1:
					c.UpgradeOne(mi)
				default:
					c.MigrateOff(mi, rtts)
				}
				check("after pressure", e)
			}
		}
		// Run the horizon out: everything departs or drains as lost.
		last := 0
		total := 0
		for _, arr := range stream {
			total += len(arr)
			for _, s := range arr {
				if s.Departs > last {
					last = s.Departs
				}
			}
		}
		c.DepartDue(last)
		c.RetryDue(last) // purges every queued tenant as departed
		if c.Active != 0 || c.QueuedRetries() != 0 {
			t.Fatalf("seed %d: %d active, %d queued after the last departure epoch", seed, c.Active, c.QueuedRetries())
		}
		for mi, m := range f.Machines {
			if len(m.Placed) != 0 || m.Demand != 0 {
				t.Fatalf("seed %d: machine %d not bit-exactly empty after full churn: placed=%d demand=%g",
					seed, mi, len(m.Placed), m.Demand)
			}
		}
		if c.Departed+c.Lost != total {
			t.Fatalf("seed %d: session conservation broken: departed %d + lost %d != %d arrivals",
				seed, c.Departed, c.Lost, total)
		}
	}
}
