package fleet

import (
	"math"
	"testing"

	"pictor/internal/app"
	"pictor/internal/sim"
)

func TestChurnStreamDeterministicAndShaped(t *testing.T) {
	for _, mix := range Mixes() {
		a, err := ChurnStream(mix, 2.0, 3.0, 10, 7)
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		b, _ := ChurnStream(mix, 2.0, 3.0, 10, 7)
		if len(a) != 10 {
			t.Fatalf("%s: got %d epochs, want 10", mix, len(a))
		}
		total := 0
		id := 0
		for e := range a {
			if len(a[e]) != len(b[e]) {
				t.Fatalf("%s: epoch %d arrival counts differ across identical calls", mix, e)
			}
			for i, s := range a[e] {
				o := b[e][i]
				if s.ID != o.ID || s.Profile.Name != o.Profile.Name || s.Departs != o.Departs {
					t.Fatalf("%s: epoch %d session %d not deterministic: %+v vs %+v", mix, e, i, s, o)
				}
				if s.ID != id {
					t.Fatalf("%s: session IDs must be the arrival sequence: got %d want %d", mix, s.ID, id)
				}
				id++
				if s.Arrive != e {
					t.Fatalf("%s: session %d reports arrival epoch %d, generated in %d", mix, s.ID, s.Arrive, e)
				}
				if s.Departs <= s.Arrive {
					t.Fatalf("%s: session %d departs at %d, arrives at %d — must run >= 1 epoch", mix, s.ID, s.Departs, s.Arrive)
				}
				if s.Machine != -1 {
					t.Fatalf("%s: generated sessions must be unplaced", mix)
				}
			}
			total += len(a[e])
		}
		if total == 0 {
			t.Fatalf("%s: rate 2.0 over 10 epochs produced no arrivals", mix)
		}
	}
}

func TestChurnStreamRejectsBadParams(t *testing.T) {
	cases := []struct {
		name       string
		rate, mean float64
		epochs     int
	}{
		{"zero epochs", 1, 1, 0},
		{"negative epochs", 1, 1, -3},
		{"zero rate", 0, 1, 4},
		{"negative rate", -1, 1, 4},
		{"zero duration", 1, 0, 4},
	}
	for _, c := range cases {
		if _, err := ChurnStream(MixSuite, c.rate, c.mean, c.epochs, 1); err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
	}
	if _, err := ChurnStream("diurnal", 1, 1, 4, 1); err == nil {
		t.Fatal("unknown mix must error")
	}
}

func TestPoissonMeanAndDeterminism(t *testing.T) {
	g := sim.NewRNG(3)
	const n, lambda = 20000, 2.5
	sum := 0
	for i := 0; i < n; i++ {
		sum += g.Poisson(lambda)
	}
	if mean := float64(sum) / n; math.Abs(mean-lambda) > 0.1 {
		t.Fatalf("Poisson(%g) sample mean %g too far off", lambda, mean)
	}
	a, b := sim.NewRNG(9), sim.NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.Poisson(1.7) != b.Poisson(1.7) {
			t.Fatal("Poisson must be deterministic for equal seeds")
		}
	}
	if sim.NewRNG(1).Poisson(0) != 0 || sim.NewRNG(1).Poisson(-2) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
	// Means past ~745 would underflow exp(-mean) to 0 and silently cap
	// samples there; the chunked implementation must track the mean.
	big := sim.NewRNG(5)
	sum = 0
	const bigN, bigLambda = 200, 2000.0
	for i := 0; i < bigN; i++ {
		sum += big.Poisson(bigLambda)
	}
	if mean := float64(sum) / bigN; math.Abs(mean-bigLambda) > 20 {
		t.Fatalf("Poisson(%g) sample mean %g — large means must not cap near 745", bigLambda, mean)
	}
}

// TestChurnBookkeepingProperty is the satellite property test: over
// randomized arrival/departure/migration sequences, (a) no machine's
// demand ever goes negative, (b) a machine's demand always equals the
// sum over its placed profiles (departures exactly reverse place
// bookkeeping), and (c) once every session has departed the fleet is
// bit-exactly empty.
func TestChurnBookkeepingProperty(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		stream, err := ChurnStream(MixHeavy, 3.0, 2.5, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		pol, _ := NewPolicy(PolicyLeastCount, nil)
		f := NewHetero(3, []float64{8, 4})
		c := NewChurn(f, pol)
		rng := sim.NewRNG(seed).Fork("test/migrations")
		rtts := []float64{150, 120, 100}

		check := func(when string, epoch int) {
			t.Helper()
			for mi, m := range f.Machines {
				if m.Demand < 0 {
					t.Fatalf("seed %d epoch %d (%s): machine %d demand negative: %g", seed, epoch, when, mi, m.Demand)
				}
				if want := sumProfiles(m.Placed); m.Demand != want {
					t.Fatalf("seed %d epoch %d (%s): machine %d demand %g != placed sum %g",
						seed, epoch, when, mi, m.Demand, want)
				}
				if len(c.Resident(mi)) != len(m.Placed) {
					t.Fatalf("seed %d epoch %d (%s): machine %d session/placement misalignment: %d vs %d",
						seed, epoch, when, mi, len(c.Resident(mi)), len(m.Placed))
				}
				for slot, s := range c.Resident(mi) {
					if s.Profile.Name != m.Placed[slot].Name {
						t.Fatalf("seed %d epoch %d (%s): machine %d slot %d holds %s, session says %s",
							seed, epoch, when, mi, slot, m.Placed[slot].Name, s.Profile.Name)
					}
					if s.Machine != mi {
						t.Fatalf("seed %d epoch %d (%s): session %d thinks it is on %d, found on %d",
							seed, epoch, when, s.ID, s.Machine, mi)
					}
				}
			}
		}

		for e := 0; e < len(stream); e++ {
			c.DepartDue(e)
			check("after departures", e)
			for _, s := range stream[e] {
				c.Arrive(s)
				check("after arrival", e)
			}
			// Random migration pressure: poke arbitrary machines, not
			// just RTT violators — the bookkeeping must hold regardless
			// of why the controller fires.
			for i := 0; i < 2; i++ {
				c.MigrateOff(rng.Intn(len(f.Machines)), rtts)
				check("after migration", e)
			}
		}
		// Run the horizon out: everything departs eventually.
		last := 0
		for _, arr := range stream {
			for _, s := range arr {
				if s.Departs > last {
					last = s.Departs
				}
			}
		}
		c.DepartDue(last)
		if c.Active != 0 {
			t.Fatalf("seed %d: %d sessions still active after the last departure epoch", seed, c.Active)
		}
		for mi, m := range f.Machines {
			if len(m.Placed) != 0 || m.Demand != 0 {
				t.Fatalf("seed %d: machine %d not bit-exactly empty after full churn: placed=%d demand=%g",
					seed, mi, len(m.Placed), m.Demand)
			}
		}
	}
}

func sumProfiles(ps []app.Profile) float64 {
	d := 0.0
	for _, p := range ps {
		d += PredictedCPUDemand(p)
	}
	return d
}

func TestChurnArriveRejectsWhenFull(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	f := New(1, 1)
	f.Overcommit = 1
	c := NewChurn(f, pol)
	d2, _ := app.ByName("D2")
	placedAny := false
	for i := 0; i < 5; i++ {
		if c.Arrive(&Session{ID: i, Profile: d2, Departs: 100}) {
			placedAny = true
		}
	}
	if c.Active+c.Rejected != 5 {
		t.Fatalf("active %d + rejected %d must account for 5 arrivals", c.Active, c.Rejected)
	}
	if c.Rejected == 0 {
		t.Fatal("a 1-core machine cannot hold five D2s")
	}
	_ = placedAny
}

func TestChurnMigrateOffMovesHeaviestAndKeepsWhenNowhere(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastDemand, nil)
	f := New(2, 8)
	c := NewChurn(f, pol)
	d2, _ := app.ByName("D2")
	re, _ := app.ByName("RE")
	// Force both sessions onto machine 0 via a pinned policy: use
	// Arrive with machine 1 full.
	f.Machines[1].Cores = 0.1 // nothing fits
	s1 := &Session{ID: 0, Profile: re, Departs: 10}
	s2 := &Session{ID: 1, Profile: d2, Departs: 10}
	if !c.Arrive(s1) || !c.Arrive(s2) {
		t.Fatal("both sessions must land on machine 0")
	}
	// Nowhere to go: machine 1 cannot hold anything.
	rtts := []float64{200, 50}
	if c.MigrateOff(0, rtts) {
		t.Fatal("migration must not fire when no other machine is feasible")
	}
	// Open machine 1 back up: the heavier D2 must move, not the RE.
	f.Machines[1].Cores = 8
	if !c.MigrateOff(0, rtts) {
		t.Fatal("migration must fire once a target is feasible")
	}
	if s2.Machine != 1 || s1.Machine != 0 {
		t.Fatalf("the highest-demand session must move: RE on %d, D2 on %d", s1.Machine, s2.Machine)
	}
	if c.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", c.Migrations)
	}
	if got := len(f.Machines[1].Placed); got != 1 || f.Machines[1].Placed[0].Name != "D2" {
		t.Fatalf("machine 1 placement wrong after migration: %v", names(f.Machines[1].Placed))
	}
}

// TestChurnMigrateOffRejectsHotTargets: a machine measuring above the
// QoS ceiling must never be a migration target, even when it measures
// cooler than the source — dumping load on an already-violating machine
// just moves (and worsens) the violation.
func TestChurnMigrateOffRejectsHotTargets(t *testing.T) {
	pol, _ := NewPolicy(PolicyLeastCount, nil)
	f := New(2, 8)
	c := NewChurn(f, pol)
	re, _ := app.ByName("RE")
	s := &Session{ID: 0, Profile: re, Departs: 10}
	if !c.Arrive(s) {
		t.Fatal("arrival must place")
	}
	// Machine 1 is empty (plenty of headroom) but measures above the
	// ceiling: no migration.
	if c.MigrateOff(0, []float64{QoSMaxRTTMs + 40, QoSMaxRTTMs + 10}) {
		t.Fatal("must not migrate onto a machine already past the QoS ceiling")
	}
	// Same headroom, target within the ceiling: migrate.
	if !c.MigrateOff(0, []float64{QoSMaxRTTMs + 40, QoSMaxRTTMs - 30}) {
		t.Fatal("must migrate once the target measures within the ceiling")
	}
	if s.Machine != 1 {
		t.Fatalf("session on machine %d, want 1", s.Machine)
	}
}

func TestNewHeteroCyclesClasses(t *testing.T) {
	f := NewHetero(5, []float64{8, 4})
	want := []float64{8, 4, 8, 4, 8}
	for i, m := range f.Machines {
		if m.Cores != want[i] {
			t.Fatalf("machine %d has %g cores, want %g", i, m.Cores, want[i])
		}
	}
	if f := NewHetero(2, nil); f.Machines[0].Cores != DefaultMachineCores {
		t.Fatal("empty class list must select the default core count")
	}
}

func TestParseCoreClasses(t *testing.T) {
	got, err := ParseCoreClasses("8, 4,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 8 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("ParseCoreClasses = %v", got)
	}
	if out, err := ParseCoreClasses(""); err != nil || out != nil {
		t.Fatal("empty input must parse to nil without error")
	}
	for _, bad := range []string{"8,zero", "8,,4", "0", "-4", "8;4", "0.4"} {
		if _, err := ParseCoreClasses(bad); err == nil {
			t.Fatalf("%q must fail to parse", bad)
		}
	}
}
