package fleet

import (
	"reflect"
	"testing"

	"pictor/internal/app"
)

func names(ps []app.Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func TestPredictedCPUDemandOrdersSuite(t *testing.T) {
	d := map[string]float64{}
	for _, p := range app.Suite() {
		d[p.Name] = PredictedCPUDemand(p)
		if d[p.Name] <= 0 {
			t.Fatalf("%s: demand must be positive, got %g", p.Name, d[p.Name])
		}
	}
	// The known heavyweight (Dota2's worker threads) must outrank the
	// known lightweight (Red Eclipse's thin engine); the ordering is
	// what placement policies rely on.
	if d["D2"] <= d["RE"] {
		t.Fatalf("demand heuristic misorders the suite: D2=%g RE=%g", d["D2"], d["RE"])
	}
}

func TestRequestStreamDeterministicAndSized(t *testing.T) {
	for _, mix := range Mixes() {
		a, err := RequestStream(mix, 24, 7)
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		b, _ := RequestStream(mix, 24, 7)
		if !reflect.DeepEqual(names(a), names(b)) {
			t.Fatalf("%s: stream not deterministic", mix)
		}
		if len(a) != 24 {
			t.Fatalf("%s: got %d requests, want 24", mix, len(a))
		}
	}
	if _, err := RequestStream("nope", 4, 1); err == nil {
		t.Fatal("unknown mix must error")
	}
}

// TestRequestStreamRejectsNonPositiveLength: the old behaviour silently
// clamped n < 1 to one request, so "-requests 0" quietly ran a
// single-instance fleet; it must fail loudly like an unknown mix does.
func TestRequestStreamRejectsNonPositiveLength(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := RequestStream(MixSuite, n, 1); err == nil {
			t.Fatalf("n = %d must error, not clamp to 1", n)
		}
	}
}

func TestRequestStreamSuiteCycles(t *testing.T) {
	reqs, err := RequestStream(MixSuite, 13, 99)
	if err != nil {
		t.Fatal(err)
	}
	// The default stream draws from the paper's six, not the full
	// registry — pre-registry streams must stay byte-identical.
	suite := app.PaperSuite()
	for i, r := range reqs {
		if r.Name != suite[i%len(suite)].Name {
			t.Fatalf("request %d = %s, want %s", i, r.Name, suite[i%len(suite)].Name)
		}
	}
}

// TestRequestStreamFromDrawsActiveSuite: streams over an explicit
// workload set draw only from it, for every mix, and the heavy mix
// honors the profiles' declared HeavyWeight.
func TestRequestStreamFromDrawsActiveSuite(t *testing.T) {
	suite, err := app.Resolve("all")
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, p := range suite {
		allowed[p.Name] = true
	}
	for _, mix := range Mixes() {
		reqs, err := RequestStreamFrom(suite, mix, 200, 11)
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		seen := map[string]bool{}
		for _, r := range reqs {
			if !allowed[r.Name] {
				t.Fatalf("%s: drew %s, not in the active suite", mix, r.Name)
			}
			seen[r.Name] = true
		}
		for _, name := range []string{"CAD", "VV", "CZ"} {
			if !seen[name] {
				t.Fatalf("%s: 200 draws over the full registry never produced %s", mix, name)
			}
		}
	}
	// Heavy mix over the full registry: VV (weight 3) must outdraw CZ
	// (weight 1).
	reqs, err := RequestStreamFrom(suite, MixHeavy, 900, 5)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, r := range reqs {
		count[r.Name]++
	}
	if count["VV"] <= count["CZ"] {
		t.Fatalf("heavy mix must favor VV over CZ by declared weight: VV=%d CZ=%d", count["VV"], count["CZ"])
	}
}

// TestChurnStreamFromDrawsActiveSuite: churn schedules honor the
// explicit workload set too.
func TestChurnStreamFromDrawsActiveSuite(t *testing.T) {
	suite, err := app.Resolve("CAD,VV,CZ")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := ChurnStreamFrom(suite, MixShuffled, 3, 2, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{"CAD": true, "VV": true, "CZ": true}
	arrivals := 0
	for _, epoch := range stream {
		for _, s := range epoch {
			arrivals++
			if !allowed[s.Profile.Name] {
				t.Fatalf("churn drew %s, not in the active suite", s.Profile.Name)
			}
		}
	}
	if arrivals == 0 {
		t.Fatal("12 epochs at rate 3 produced no arrivals")
	}
}

func TestRequestStreamHeavyIsHeavy(t *testing.T) {
	reqs, err := RequestStream(MixHeavy, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, r := range reqs {
		count[r.Name]++
	}
	if count["D2"] <= count["RE"] {
		t.Fatalf("heavy mix must favor D2 over RE: D2=%d RE=%d", count["D2"], count["RE"])
	}
}

func TestRoundRobinCycles(t *testing.T) {
	f := New(3, 8)
	reqs, _ := RequestStream(MixSuite, 6, 1)
	f.Admit(reqs, &RoundRobin{})
	for i, m := range f.Machines {
		if len(m.Placed) != 2 {
			t.Fatalf("machine %d got %d instances, want 2", i, len(m.Placed))
		}
	}
	if len(f.Rejected) != 0 {
		t.Fatalf("nothing should be rejected, got %v", f.Rejected)
	}
}

func TestLeastLoadedCountBalances(t *testing.T) {
	f := New(4, 8)
	reqs, _ := RequestStream(MixShuffled, 8, 5)
	f.Admit(reqs, LeastLoadedCount{})
	for i, m := range f.Machines {
		if len(m.Placed) != 2 {
			t.Fatalf("machine %d got %d instances, want 2", i, len(m.Placed))
		}
	}
}

func TestLeastLoadedDemandPicksLightestMachine(t *testing.T) {
	f := New(2, 8)
	d2, _ := app.ByName("D2")
	re, _ := app.ByName("RE")
	// D2 on machine 0, then two REs: the first RE goes to the empty
	// machine 1, the second must also go to 1 (D2 outweighs one RE).
	f.Admit([]app.Profile{d2, re, re}, LeastLoadedDemand{})
	if got := len(f.Machines[1].Placed); got != 2 {
		t.Fatalf("machine 1 got %d instances, want 2 (demand-aware spread)", got)
	}
}

func TestAdmissionRejectsWhenFull(t *testing.T) {
	f := New(1, 1) // one tiny machine
	f.Overcommit = 1
	reqs, _ := RequestStream(MixSuite, 5, 1)
	f.Admit(reqs, LeastLoadedCount{})
	placed := len(f.Machines[0].Placed)
	if placed+len(f.Rejected) != 5 {
		t.Fatalf("placed %d + rejected %d must account for all 5 requests", placed, len(f.Rejected))
	}
	if len(f.Rejected) == 0 {
		t.Fatal("a 1-core machine cannot hold the whole stream")
	}
}

func TestBinPackSeparatesHostileProfiles(t *testing.T) {
	stk, _ := app.ByName("STK")
	re, _ := app.ByName("RE")
	it := NewInterference()
	it.Set("STK", "STK", 0.5) // STK is hostile to itself
	it.Set("STK", "RE", 0.0)  // but compatible with RE

	f := New(2, 8)
	pol := &BinPack{Interference: it}
	f.Admit([]app.Profile{stk, stk, re, re}, pol)
	stks := make([]int, len(f.Machines))
	for i, m := range f.Machines {
		for _, p := range m.Placed {
			if p.Name == "STK" {
				stks[i]++
			}
		}
	}
	// The self-hostile STKs must land on different machines; the
	// compatible REs then pack wherever is fullest.
	if stks[0] != 1 || stks[1] != 1 {
		t.Fatalf("STK spread = %v; binpack must split the hostile pair across machines", stks)
	}
}

func TestBinPackPacksCompatibleProfilesTightly(t *testing.T) {
	re, _ := app.ByName("RE")
	f := New(3, 8)
	// No interference data: everything is compatible, so binpack must
	// fill machine 0 before touching the others (keeping machines free).
	f.Admit([]app.Profile{re, re, re}, &BinPack{})
	if got := len(f.Machines[0].Placed); got != 3 {
		t.Fatalf("machine 0 got %d of 3 compatible instances; binpack must pack, not spread", got)
	}
}

// TestBinPackTieBreakRobustToAccumulationOrder: interference cost is a
// float sum over a machine's placed instances, so two machines holding
// the same profiles in different orders can disagree in the last ulp
// ((0.1+0.2)+0.3 != 0.3+(0.2+0.1)). The documented tie-break — equal
// cost, equal demand → lower index — must still treat that as a tie.
func TestBinPackTieBreakRobustToAccumulationOrder(t *testing.T) {
	stk, _ := app.ByName("STK")
	re, _ := app.ByName("RE")
	d2, _ := app.ByName("D2")
	im, _ := app.ByName("IM")
	it := NewInterference()
	it.Set("IM", "STK", 0.1)
	it.Set("IM", "RE", 0.2)
	it.Set("IM", "D2", 0.3)

	mk := func(index int, order []app.Profile) *Machine {
		m := &Machine{Index: index, Cores: 64}
		for _, p := range order {
			m.place(p)
		}
		return m
	}
	// Same multiset, opposite accumulation orders: costs differ by one
	// ulp, demands are the same sum reordered.
	a := mk(0, []app.Profile{stk, re, d2})
	b := mk(1, []app.Profile{d2, re, stk})
	costOf := func(m *Machine) float64 {
		c := 0.0
		for _, p := range m.Placed {
			c += it.Score("IM", p.Name)
		}
		return c
	}
	if costOf(a) == costOf(b) {
		t.Skip("float accumulation happens to agree on this platform; tie-break not exercised")
	}
	pol := &BinPack{Interference: it}
	if got := pol.Pick([]*Machine{a, b}, im); got != 0 {
		t.Fatalf("ulp-level cost difference broke the lower-index tie-break: picked %d", got)
	}
	// Order mustn't matter: with b first, b (the new lower index) wins.
	b.Index, a.Index = 0, 1
	if got := pol.Pick([]*Machine{b, a}, im); got != 0 {
		t.Fatalf("tie-break must pick the first (lowest-index) machine, picked %d", got)
	}
}

// TestBinPackPrefersFullerOnCostTie pins the documented second key:
// among cost-tied machines, the fuller one wins even when it appears
// later in the feasible slice.
func TestBinPackPrefersFullerOnCostTie(t *testing.T) {
	re, _ := app.ByName("RE")
	d2, _ := app.ByName("D2")
	empty := &Machine{Index: 0, Cores: 64}
	fuller := &Machine{Index: 1, Cores: 64}
	fuller.place(d2)
	// No interference table: every cost is 0 — a pure tie.
	pol := &BinPack{}
	if got := pol.Pick([]*Machine{empty, fuller}, re); got != 1 {
		t.Fatalf("cost tie must prefer the fuller machine, picked %d", got)
	}
}

func TestRoundRobinSkipsFullMachines(t *testing.T) {
	f := New(2, 8)
	f.Overcommit = 1
	d2, _ := app.ByName("D2")
	// More D2s than two 8-core machines can hold at overcommit 1: the
	// cursor must keep cycling over whatever still fits, and the excess
	// is rejected — never misplaced.
	reqs := []app.Profile{d2, d2, d2, d2, d2, d2}
	f.Admit(reqs, &RoundRobin{})
	total := len(f.Machines[0].Placed) + len(f.Machines[1].Placed)
	if total+len(f.Rejected) != len(reqs) {
		t.Fatalf("accounting broken: %d placed + %d rejected != %d", total, len(f.Rejected), len(reqs))
	}
	if diff := len(f.Machines[0].Placed) - len(f.Machines[1].Placed); diff < -1 || diff > 1 {
		t.Fatalf("round-robin must keep counts within 1: %d vs %d",
			len(f.Machines[0].Placed), len(f.Machines[1].Placed))
	}
}

func TestInterferenceSymmetricAndNilSafe(t *testing.T) {
	it := NewInterference()
	it.Set("A", "B", 0.3)
	if it.Score("B", "A") != 0.3 {
		t.Fatal("interference must be symmetric")
	}
	if it.Score("A", "C") != 0 {
		t.Fatal("unknown pairs must score 0")
	}
	var nilTable *Interference
	if nilTable.Score("A", "B") != 0 || nilTable.Len() != 0 {
		t.Fatal("nil table must be usable and score 0")
	}
	if it.Len() != 1 {
		t.Fatalf("Len = %d, want 1", it.Len())
	}
}

func TestNewPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if p, err := NewPolicy("", nil); err != nil || p.Name() != PolicyRoundRobin {
		t.Fatal("empty name must default to round-robin")
	}
	if _, err := NewPolicy("bogus", nil); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestAdmitDeterministic(t *testing.T) {
	run := func() [][]string {
		f := New(4, 8)
		reqs, _ := RequestStream(MixHeavy, 20, 11)
		pol, _ := NewPolicy(PolicyBinPack, nil)
		f.Admit(reqs, pol)
		out := make([][]string, len(f.Machines))
		for i, ps := range f.Placements() {
			out[i] = names(ps)
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("admission must be deterministic")
	}
}
