package fleet

import (
	"fmt"
	"math"

	"pictor/internal/app"
	"pictor/internal/sim"
)

// Fault injection: per-machine crash/repair processes, session failover
// with bounded retry/backoff, and brown-out quality tiers. Like the
// churn schedule, every random draw happens up front (FaultStream) from
// a seeded sim.RNG fork, so a faulty fleet is byte-identical at any
// -parallel level. This file owns the placement-time mechanics; the
// assembly layer (internal/core) drives the epoch loop, applies the
// schedule, and decides when to degrade or upgrade from measured RTT.

// MachineState is a machine's availability under fault injection.
type MachineState uint8

const (
	// MachineUp is the zero value: the machine serves placements
	// normally. Fault-free fleets never leave this state.
	MachineUp MachineState = iota
	// MachineDown is a crashed machine: residents are evicted, no
	// placements or migrations target it, and it burns no power.
	MachineDown
	// MachineCold is the post-repair cold start: the machine is
	// powered (idle watts) but not yet placement-feasible — caches,
	// trained models and GPU state are still warming.
	MachineCold
)

// ColdStartEpochs is how many epochs a repaired machine spends in
// MachineCold before taking placements again.
const ColdStartEpochs = 1

// ValidateFaultParams checks the fault-injection vocabulary with
// actionable messages, shared by FaultStream and the shape validators.
func ValidateFaultParams(mtbfEpochs, mttrEpochs float64) error {
	if mtbfEpochs < 0 {
		return fmt.Errorf("fleet: MTBF must be >= 0 epochs (0 disables faults), got %g", mtbfEpochs)
	}
	if mtbfEpochs > 0 && mttrEpochs <= 0 {
		return fmt.Errorf("fleet: fault injection (MTBF %g) needs MTTR > 0 epochs, got %g", mtbfEpochs, mttrEpochs)
	}
	return nil
}

// FaultStream materializes the per-machine crash/repair schedule:
// timeline[mi][e] is machine mi's state in epoch e. Each machine
// alternates exponential up intervals (mean mtbfEpochs) and exponential
// down intervals (mean mttrEpochs, rounded up so every outage costs at
// least one epoch), followed by ColdStartEpochs of cold start. All
// machines start up. Each machine draws from its own sim.RNG fork
// ("fleet/faults/m<i>"), so adding machines never perturbs the others'
// schedules and the timeline is a pure function of
// (machines, mtbf, mttr, epochs, seed).
func FaultStream(machines int, mtbfEpochs, mttrEpochs float64, epochs int, seed int64) ([][]MachineState, error) {
	if err := ValidateFaultParams(mtbfEpochs, mttrEpochs); err != nil {
		return nil, err
	}
	if machines < 1 || epochs < 1 {
		return nil, fmt.Errorf("fleet: fault stream needs machines >= 1 and epochs >= 1, got %d, %d", machines, epochs)
	}
	root := sim.NewRNG(seed)
	timeline := make([][]MachineState, machines)
	for mi := range timeline {
		row := make([]MachineState, epochs)
		timeline[mi] = row
		if mtbfEpochs == 0 {
			continue // faults disabled: all-up row
		}
		rng := root.Fork(fmt.Sprintf("fleet/faults/m%d", mi))
		e := 0
		for e < epochs {
			// Up interval (may round to 0: a machine can crash in the
			// very epoch it finished cold start).
			up := int(math.Floor(rng.Exponential(mtbfEpochs)))
			for i := 0; i < up && e < epochs; i++ {
				row[e] = MachineUp
				e++
			}
			// Down interval: at least one epoch.
			down := int(math.Ceil(rng.Exponential(mttrEpochs)))
			if down < 1 {
				down = 1
			}
			for i := 0; i < down && e < epochs; i++ {
				row[e] = MachineDown
				e++
			}
			for i := 0; i < ColdStartEpochs && e < epochs; i++ {
				row[e] = MachineCold
				e++
			}
		}
	}
	return timeline, nil
}

// ---------------------------------------------------------------------------
// Brown-out quality tiers

// QoSClearRTTMs is the brown-out controller's all-clear threshold: a
// machine measuring below this (pooled mean RTT) upgrades one degraded
// resident per epoch back toward full fidelity. It sits a hysteresis
// band below QoSMaxRTTMs (140 ms) so a machine hovering at the ceiling
// does not flap between degrading and upgrading every epoch; healthy
// machines in the committed fixtures measure below ~120 ms.
const QoSClearRTTMs = 120.0

// MaxDegradeTier is the deepest brown-out tier. Tiers scale the served
// resolution per side: tier 1 is 3/4 scale (~56% of the pixels), tier 2
// is 1/2 scale (25%). Resolution drives the demand model's frame-volume
// terms (encode, IPC, upload), so each tier sheds real predicted load.
const MaxDegradeTier = 2

// tierScale is the per-side resolution multiplier for each tier.
var tierScale = [MaxDegradeTier + 1]float64{1, 0.75, 0.5}

// DegradedProfile returns profile p served at the given brown-out tier:
// width and height scale by the tier's factor, and the per-frame upload
// volume scales with the pixel count. Tier 0 (and anything below)
// returns p unchanged, bit-identical; tiers above MaxDegradeTier clamp.
func DegradedProfile(p app.Profile, tier int) app.Profile {
	if tier <= 0 {
		return p
	}
	if tier > MaxDegradeTier {
		tier = MaxDegradeTier
	}
	s := tierScale[tier]
	w := int(math.Round(float64(p.Width) * s))
	h := int(math.Round(float64(p.Height) * s))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	pixelRatio := float64(w*h) / float64(p.Width*p.Height)
	p.Width, p.Height = w, h
	p.UploadMBPerFrame *= pixelRatio
	return p
}

// ---------------------------------------------------------------------------
// Failover: bounded retry queue with epoch-granularity backoff

// RetryPolicy bounds session failover. The zero value disables retries
// (evictions and rejections drop, the historical behaviour).
type RetryPolicy struct {
	// MaxAttempts is how many re-admission attempts a session gets
	// after a rejection or eviction; <= 0 disables failover.
	MaxAttempts int
	// BackoffEpochs is the base backoff: attempt k matures
	// BackoffEpochs × 2^(k-1) epochs after the failure. Values <= 0
	// execute as 1 (retry next epoch).
	BackoffEpochs int
}

// retryEntry is one queued failover attempt.
type retryEntry struct {
	s *Session
	// attempt is the upcoming attempt number (1-based).
	attempt int
	// next is the first epoch the attempt may run in.
	next int
}

// retrySlot computes the queue entry for a session's next failover
// attempt, or ok=false when the session is out of attempts or would
// depart before the attempt matures (the tenant gave up either way).
func (c *Churn) retrySlot(s *Session, epoch, attempt int) (retryEntry, bool) {
	if c.Retry.MaxAttempts <= 0 || attempt > c.Retry.MaxAttempts {
		return retryEntry{}, false
	}
	backoff := c.Retry.BackoffEpochs
	if backoff < 1 {
		backoff = 1
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16 // cap the exponent; beyond this the wait exceeds any real horizon
	}
	next := epoch + backoff<<shift
	if next >= s.Departs {
		return retryEntry{}, false
	}
	return retryEntry{s: s, attempt: attempt, next: next}, true
}

// Offer is the failover-aware arrival path: like Arrive, but a rejected
// session enters the retry queue (first attempt matures after the base
// backoff) instead of being dropped. With retries disabled it behaves
// exactly like Arrive. Sessions that exhaust the policy — or would
// depart before their next attempt matures — count as Lost.
func (c *Churn) Offer(s *Session, epoch int) bool {
	if c.admit(s) {
		return true
	}
	s.Machine = -1
	c.Rejected++
	if e, ok := c.retrySlot(s, epoch, 1); ok {
		c.retryQ = append(c.retryQ, e)
	} else {
		c.Lost++
		c.recycle(s)
	}
	return false
}

// EvictAll force-releases every resident of machine mi (a crash),
// reversing each placement exactly like a departure and enqueueing the
// evicted sessions for failover. Tiers reset: a re-admitted session
// starts back at full fidelity. Returns how many sessions were evicted.
func (c *Churn) EvictAll(mi, epoch int) int {
	n := len(c.sessions[mi])
	for slot := n - 1; slot >= 0; slot-- {
		s := c.sessions[mi][slot]
		c.releaseSlot(mi, slot)
		s.Machine = -1
		s.Tier = 0
		c.Active--
		c.Evicted++
		if e, ok := c.retrySlot(s, epoch, 1); ok {
			c.retryQ = append(c.retryQ, e)
		} else {
			c.Lost++
			c.recycle(s)
		}
	}
	return n
}

// RetryDue runs every matured failover attempt for the epoch, in
// enqueue order. Re-admission goes through the same admit path as
// arrivals; a still-rejected session re-enqueues with doubled backoff
// until its attempts run out. Queued sessions whose departure epoch
// passed are silently dropped from the queue as Lost (the tenant left).
// Returns how many attempts ran and how many sessions were re-admitted.
func (c *Churn) RetryDue(epoch int) (retried, recovered int) {
	if len(c.retryQ) == 0 {
		return 0, 0
	}
	q := c.retryQ
	keep := c.retryQ[:0]
	for i := 0; i < len(q); i++ {
		e := q[i]
		if e.s.Departs <= epoch {
			c.Lost++
			c.recycle(e.s)
			continue
		}
		if e.next > epoch {
			keep = append(keep, e)
			continue
		}
		retried++
		c.Retried++
		if c.admit(e.s) {
			recovered++
			c.Recovered++
			continue
		}
		c.Rejected++
		if ne, ok := c.retrySlot(e.s, epoch, e.attempt+1); ok {
			keep = append(keep, ne)
		} else {
			c.Lost++
			c.recycle(e.s)
		}
	}
	c.retryQ = keep
	return retried, recovered
}

// QueuedRetries reports how many sessions are waiting in the failover
// queue.
func (c *Churn) QueuedRetries() int { return len(c.retryQ) }

// ---------------------------------------------------------------------------
// Brown-out controller primitives

// DegradeOne pushes machine mi's heaviest degradable resident one tier
// down (ties toward the earlier slot, i.e. the lower session ID), and
// reports whether anyone was degraded. The heaviest tenant sheds the
// most demand per tier step — the point of a brown-out is maximum
// relief for minimum fidelity loss across the machine.
func (c *Churn) DegradeOne(mi int) bool {
	best, bestDemand := -1, 0.0
	for i, s := range c.sessions[mi] {
		if s.Tier >= MaxDegradeTier {
			continue
		}
		d := PredictedCPUDemand(s.Served())
		if best < 0 || d > bestDemand {
			best, bestDemand = i, d
		}
	}
	if best < 0 {
		return false
	}
	s := c.sessions[mi][best]
	s.Tier++
	c.Fleet.Machines[mi].replace(best, s.Served())
	return true
}

// DegradeToFit brown-outs machine mi: residents degrade (heaviest
// first, one tier per step) until the machine's predicted demand fits
// its *un-overcommitted* capacity or nothing degradable remains. A
// measured QoS violation always costs at least one step — admission
// overcommits on purpose, so a violating machine may well predict
// under its overcommitted cap while drowning in interference; shedding
// toward nominal capacity is what relieves it. Returns the steps taken.
func (c *Churn) DegradeToFit(mi int) int {
	steps := 0
	m := c.Fleet.Machines[mi]
	for {
		if !c.DegradeOne(mi) {
			return steps
		}
		steps++
		if m.Demand <= m.Cores {
			return steps
		}
	}
}

// UpgradeOne restores machine mi's most-degraded resident one tier
// (ties toward the earlier slot) — but only when the machine holds the
// added demand without overcommit, so an upgrade can never push a
// recovering machine straight back over the ceiling. Reports whether
// anyone was upgraded.
func (c *Churn) UpgradeOne(mi int) bool {
	best := -1
	for i, s := range c.sessions[mi] {
		if s.Tier <= 0 {
			continue
		}
		if best < 0 || s.Tier > c.sessions[mi][best].Tier {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	s := c.sessions[mi][best]
	restored := DegradedProfile(s.Profile, s.Tier-1)
	added := PredictedCPUDemand(restored) - PredictedCPUDemand(s.Served())
	if !c.Fleet.Machines[mi].Fits(added, 1) {
		return false
	}
	s.Tier--
	c.Fleet.Machines[mi].replace(best, restored)
	return true
}

// DegradedResidents counts machine mi's residents currently served
// below full fidelity.
func (c *Churn) DegradedResidents(mi int) int {
	n := 0
	for _, s := range c.sessions[mi] {
		if s.Tier > 0 {
			n++
		}
	}
	return n
}
