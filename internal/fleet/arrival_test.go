package fleet

import (
	"math"
	"testing"
)

// TestChurnSourceMatchesMaterializedStream pins the streaming API's
// founding contract: consuming a constant-rate source epoch-by-epoch
// yields exactly the sessions ChurnStreamFrom materializes — same IDs,
// profiles, arrival epochs and departure epochs — including the
// horizon-clipped offered session-epoch sum the availability
// denominator is built from.
func TestChurnSourceMatchesMaterializedStream(t *testing.T) {
	const (
		rate   = 2.5
		dur    = 3.0
		epochs = 12
		seed   = int64(42)
	)
	want, err := ChurnStreamFrom(nil, MixShuffled, rate, dur, epochs, seed)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewChurnSource(ArrivalConfig{
		Mix: MixShuffled, Rate: rate, MeanSessionEpochs: dur, Epochs: epochs, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOffered, gotOffered := 0, 0
	for e := 0; e < epochs; e++ {
		batch := src.Next(e)
		if len(batch) != len(want[e]) {
			t.Fatalf("epoch %d: source yields %d arrivals, stream has %d", e, len(batch), len(want[e]))
		}
		for i, s := range batch {
			w := want[e][i]
			if s.ID != w.ID || s.Profile.Name != w.Profile.Name || s.Arrive != w.Arrive || s.Departs != w.Departs {
				t.Fatalf("epoch %d arrival %d: source %+v != stream %+v", e, i, *s, *w)
			}
			end := s.Departs
			if end > epochs {
				end = epochs
			}
			gotOffered += end - s.Arrive
			end = w.Departs
			if end > epochs {
				end = epochs
			}
			wantOffered += end - w.Arrive
		}
	}
	if wantOffered == 0 || gotOffered != wantOffered {
		t.Fatalf("offered session-epochs diverge: source %d, stream %d", gotOffered, wantOffered)
	}
	if got := src.Next(epochs); got != nil {
		t.Fatalf("past the horizon Next must return nil, got %d sessions", len(got))
	}
}

// TestChurnSourceOutOfOrderPanics: serving an out-of-order epoch would
// silently change the schedule, so it must refuse loudly instead.
func TestChurnSourceOutOfOrderPanics(t *testing.T) {
	src, err := NewChurnSource(ArrivalConfig{
		Mix: MixSuite, Rate: 1, MeanSessionEpochs: 1, Epochs: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.Next(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Next(3) after Next(0) must panic")
		}
	}()
	src.Next(3)
}

// TestChurnSourceRecyclesSessions pins the free list: a recycled
// session's storage is handed back out by a later Next with every field
// overwritten — no tier, placement or identity leaks from the previous
// tenant.
func TestChurnSourceRecyclesSessions(t *testing.T) {
	src, err := NewChurnSource(ArrivalConfig{
		Mix: MixHeavy, Rate: 4, MeanSessionEpochs: 2, Epochs: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := src.Next(0)
	if len(first) == 0 {
		t.Skip("seed produced an empty first epoch")
	}
	recycled := first[0]
	recycled.Machine = 7
	recycled.Tier = 2
	src.Recycle(recycled)
	for e := 1; e < 8; e++ {
		for _, s := range src.Next(e) {
			if s != recycled {
				continue
			}
			if s.Arrive != e || s.Machine != -1 || s.Tier != 0 {
				t.Fatalf("recycled session not fully overwritten: %+v", *s)
			}
			return
		}
	}
	t.Fatal("free list never handed the recycled session back out")
}

// TestScheduleRateShapes pins the rate curves as documented: diurnal
// troughs at each period boundary and peaks half way through; flash
// holds the baseline except the [period, 2·period) spike window; the
// constant schedule ignores peak and period entirely.
func TestScheduleRateShapes(t *testing.T) {
	const (
		base   = 100.0
		peak   = 400.0
		period = 10
	)
	if r := scheduleRate(ScheduleDiurnal, base, peak, period, 0); r != base {
		t.Fatalf("diurnal trough = %g, want %g", r, base)
	}
	if r := scheduleRate(ScheduleDiurnal, base, peak, period, period/2); math.Abs(r-peak) > 1e-9 {
		t.Fatalf("diurnal peak = %g, want %g", r, peak)
	}
	if a, b := scheduleRate(ScheduleDiurnal, base, peak, period, 3), scheduleRate(ScheduleDiurnal, base, peak, period, period+3); a != b {
		t.Fatalf("diurnal must repeat every period: epoch 3 = %g, epoch %d = %g", a, period+3, b)
	}
	for _, c := range []struct {
		epoch int
		want  float64
	}{
		{0, base}, {period - 1, base}, {period, peak}, {2*period - 1, peak}, {2 * period, base},
	} {
		if r := scheduleRate(ScheduleFlash, base, peak, period, c.epoch); r != c.want {
			t.Fatalf("flash epoch %d = %g, want %g", c.epoch, r, c.want)
		}
	}
	for _, sched := range []string{"", ScheduleConstant} {
		if r := scheduleRate(sched, base, peak, period, 5); r != base {
			t.Fatalf("%q schedule must ignore peak/period, got %g", sched, r)
		}
	}
}

// TestValidateSchedule: the shared validation every entry point (CLI,
// server, library) routes through.
func TestValidateSchedule(t *testing.T) {
	if err := ValidateSchedule("", 2, 0, 0); err != nil {
		t.Fatalf("implicit constant: %v", err)
	}
	if err := ValidateSchedule(ScheduleConstant, 2, 0, 0); err != nil {
		t.Fatalf("explicit constant: %v", err)
	}
	if err := ValidateSchedule(ScheduleDiurnal, 2, 6, 10); err != nil {
		t.Fatalf("valid diurnal: %v", err)
	}
	for name, err := range map[string]error{
		"unknown":        ValidateSchedule("wat", 2, 6, 10),
		"peak below":     ValidateSchedule(ScheduleDiurnal, 5, 2, 10),
		"missing period": ValidateSchedule(ScheduleFlash, 2, 6, 0),
	} {
		if err == nil {
			t.Fatalf("%s schedule must be rejected", name)
		}
	}
}

// TestChurnSourceScheduledVolume: over a long horizon a diurnal source
// must actually deliver more sessions than its constant-rate trough —
// the schedule bends the Poisson rate, not just a label.
func TestChurnSourceScheduledVolume(t *testing.T) {
	const epochs = 40
	count := func(schedule string) int {
		src, err := NewChurnSource(ArrivalConfig{
			Mix: MixSuite, Schedule: schedule,
			Rate: 5, PeakRate: 25, PeriodEpochs: 10,
			MeanSessionEpochs: 2, Epochs: epochs, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for e := 0; e < epochs; e++ {
			n += len(src.Next(e))
		}
		return n
	}
	flat := count(ScheduleConstant)
	diurnal := count(ScheduleDiurnal)
	flash := count(ScheduleFlash)
	if diurnal <= flat || flash <= flat {
		t.Fatalf("scheduled sources must out-arrive the trough: constant %d, diurnal %d, flash %d", flat, diurnal, flash)
	}
}
