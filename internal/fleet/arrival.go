package fleet

import (
	"fmt"
	"math"

	"pictor/internal/app"
	"pictor/internal/sim"
)

// Streaming arrival API: the churn layer historically materialized the
// whole [][]*Session horizon up front (ChurnStream), which is fine at
// thousands of sessions and fatal at a million — the 10k-machine
// diurnal sweep would hold every tenant of a 200-epoch day in memory
// before the first epoch executes. ArrivalSource inverts that: the
// epoch loop pulls each epoch's arrivals on demand, the source draws
// them from exactly the same RNG discipline the materialized stream
// used (so constant-rate schedules stay byte-identical), and finished
// sessions flow back into a free list owned by the source instead of
// the garbage collector.

// ArrivalSource produces each epoch's arriving sessions on demand.
// Epochs must be requested strictly in order starting at 0 — the
// schedule is drawn from sequential RNG state, so random access would
// change it. The returned slice is valid until the next call to Next
// (sources may reuse the backing array); callers that retain it must
// copy. Past the source's horizon, Next returns nil forever.
type ArrivalSource interface {
	SessionPool
	// Next returns the sessions arriving in the given epoch.
	Next(epoch int) []*Session
}

// SessionPool recycles sessions whose lifecycle has terminally ended
// (departed, or lost with no retry pending). Implementations may hand
// the same *Session back out from a later Next; callers must not touch
// a session after recycling it.
type SessionPool interface {
	Recycle(s *Session)
}

// Rate-schedule names for ArrivalConfig.Schedule (and the
// exp.FleetShape.RateSchedule knob). The empty string means constant.
const (
	// ScheduleConstant is the historical behaviour: a flat Poisson
	// rate every epoch, byte-identical to the pre-schedule streams.
	ScheduleConstant = "constant"
	// ScheduleDiurnal is a sinusoidal day curve: the rate starts at
	// the trough (Rate), peaks at PeakRate half a period in, and
	// returns to the trough every PeriodEpochs epochs.
	ScheduleDiurnal = "diurnal"
	// ScheduleFlash is a flash crowd: the baseline Rate everywhere
	// except a spike window of PeriodEpochs epochs at PeakRate,
	// starting at epoch PeriodEpochs (one quiet lead-in period).
	ScheduleFlash = "flash"
)

// Schedules lists the arrival rate schedules in documentation order.
func Schedules() []string {
	return []string{ScheduleConstant, ScheduleDiurnal, ScheduleFlash}
}

// ValidateSchedule checks a rate-schedule selection with actionable
// messages, shared by the arrival source and the shape validators so a
// typo fails identically from the CLI, the server and the library.
// rate is the constant/trough/baseline arrival rate (validated
// separately via ValidateChurnParams).
func ValidateSchedule(schedule string, rate, peak float64, period int) error {
	switch schedule {
	case "", ScheduleConstant:
		return nil
	case ScheduleDiurnal, ScheduleFlash:
		if peak < rate {
			return fmt.Errorf("fleet: %s schedule needs a peak rate >= the base rate %g sessions/epoch, got %g", schedule, rate, peak)
		}
		if period < 1 {
			return fmt.Errorf("fleet: %s schedule needs a period >= 1 epoch, got %d", schedule, period)
		}
		return nil
	}
	return fmt.Errorf("fleet: unknown rate schedule %q (schedules: %v)", schedule, Schedules())
}

// scheduleRate is the arrival rate for one epoch under a schedule. The
// constant schedule ignores peak and period entirely, so it cannot
// perturb the historical Poisson draws.
func scheduleRate(schedule string, rate, peak float64, period, epoch int) float64 {
	switch schedule {
	case ScheduleDiurnal:
		// Trough at the start of each period, peak half way through:
		// rate + (peak-rate) · (1-cos(2πt/T))/2.
		t := float64(epoch%period) / float64(period)
		return rate + (peak-rate)*0.5*(1-math.Cos(2*math.Pi*t))
	case ScheduleFlash:
		if epoch >= period && epoch < 2*period {
			return peak
		}
		return rate
	}
	return rate
}

// ArrivalConfig describes a churn arrival process for NewChurnSource.
type ArrivalConfig struct {
	// Suite is the workload set profiles draw from (nil = the paper's
	// six, keeping pre-registry schedules byte-identical).
	Suite []app.Profile
	// Mix names the arrival mix (suite/shuffled/heavy).
	Mix Mix
	// Schedule selects the rate schedule; "" and ScheduleConstant are
	// the historical flat-rate behaviour.
	Schedule string
	// Rate is the mean Poisson arrivals per epoch: the whole story for
	// constant schedules, the trough for diurnal, the baseline for
	// flash.
	Rate float64
	// PeakRate is the diurnal peak / flash spike rate (ignored for
	// constant schedules).
	PeakRate float64
	// PeriodEpochs is the diurnal period / flash spike width in epochs
	// (ignored for constant schedules).
	PeriodEpochs int
	// MeanSessionEpochs is the exponential mean session length.
	MeanSessionEpochs float64
	// Epochs is the horizon; Next returns nil past it.
	Epochs int
	// Seed pins the whole schedule (same discipline as ChurnStream).
	Seed int64
}

// ChurnSource is the streaming Poisson arrival source: the lazy,
// schedule-aware equivalent of ChurnStreamFrom. It draws arrivals,
// durations and profiles from the identical RNG forks and in the
// identical order as the materialized stream, one epoch at a time, so
// a constant-schedule source reproduces ChurnStream byte for byte.
// Recycled sessions come back out of Next with every field
// overwritten; the free list makes a million-session sweep allocate
// O(peak concurrent sessions), not O(total arrivals).
type ChurnSource struct {
	cfg       ArrivalConfig
	draw      func() app.Profile
	arrivals  *sim.RNG
	durations *sim.RNG
	cursor    int // next epoch Next must be asked for
	id        int // arrival sequence number
	batch     []*Session
	free      []*Session
	slab      []Session
}

// sessionSlab is the allocation granule for fresh sessions: big enough
// to amortize allocator round-trips at 10k-machine sweep rates, small
// enough that a toy demo does not notice.
const sessionSlab = 1024

// NewChurnSource validates the config and builds the source. The
// schedule is a pure function of the config: two sources with equal
// configs produce identical sessions in identical order.
func NewChurnSource(cfg ArrivalConfig) (*ChurnSource, error) {
	if err := ValidateChurnParams(cfg.Rate, cfg.MeanSessionEpochs, cfg.Epochs); err != nil {
		return nil, err
	}
	if err := ValidateSchedule(cfg.Schedule, cfg.Rate, cfg.PeakRate, cfg.PeriodEpochs); err != nil {
		return nil, err
	}
	draw, err := profileDrawer(cfg.Suite, cfg.Mix, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &ChurnSource{
		cfg:       cfg,
		draw:      draw,
		arrivals:  sim.NewRNG(cfg.Seed).Fork("fleet/churn/arrivals"),
		durations: sim.NewRNG(cfg.Seed).Fork("fleet/churn/durations"),
	}, nil
}

// Next returns the sessions arriving in the given epoch. Epochs must
// be consumed strictly in order from 0 (the kernel's dispatch order
// guarantees this); anything else panics, because serving it would
// silently change the schedule. The returned slice is reused by the
// following call.
func (src *ChurnSource) Next(epoch int) []*Session {
	if epoch != src.cursor {
		panic(fmt.Sprintf("fleet: ChurnSource.Next(%d) out of order, want epoch %d", epoch, src.cursor))
	}
	src.cursor++
	if epoch >= src.cfg.Epochs {
		return nil
	}
	src.batch = src.batch[:0]
	rate := scheduleRate(src.cfg.Schedule, src.cfg.Rate, src.cfg.PeakRate, src.cfg.PeriodEpochs, epoch)
	for i := src.arrivals.Poisson(rate); i > 0; i-- {
		d := int(math.Ceil(src.durations.Exponential(src.cfg.MeanSessionEpochs)))
		if d < 1 {
			d = 1
		}
		s := src.take()
		// Full overwrite: a recycled session must not leak its previous
		// tenant's brown-out tier or placement.
		*s = Session{
			ID:      src.id,
			Profile: src.draw(),
			Arrive:  epoch,
			Departs: epoch + d,
			Machine: -1,
		}
		src.batch = append(src.batch, s)
		src.id++
	}
	if len(src.batch) == 0 {
		return nil
	}
	return src.batch
}

// take pops the free list, falling back to slab allocation.
func (src *ChurnSource) take() *Session {
	if n := len(src.free); n > 0 {
		s := src.free[n-1]
		src.free = src.free[:n-1]
		return s
	}
	if len(src.slab) == 0 {
		src.slab = make([]Session, sessionSlab)
	}
	s := &src.slab[0]
	src.slab = src.slab[1:]
	return s
}

// Recycle returns a terminally-finished session to the free list. The
// caller must hold no further references: Next hands it back out with
// every field overwritten.
func (src *ChurnSource) Recycle(s *Session) {
	if s == nil {
		return
	}
	src.free = append(src.free, s)
}
