// Package codec models the server proxy's frame compressor (TurboVNC's
// tight/JPEG encoders): compression ratio and CPU cost both depend on
// frame content — high-motion, high-entropy frames compress worse and
// cost more to encode.
package codec

import (
	"pictor/internal/scene"
	"pictor/internal/sim"
)

// Codec parameterizes a benchmark's compressibility.
type Codec struct {
	// BaseRatio is the compression ratio of a static frame.
	BaseRatio float64
	// MotionPenalty scales how much motion hurts the ratio:
	// ratio = BaseRatio / (1 + MotionPenalty·motion).
	MotionPenalty float64
	// MsPerMB is encode CPU time per raw megabyte at motion 0.
	MsPerMB float64
	// Jitter is the per-frame lognormal sigma on CPU time.
	Jitter float64
}

// Default returns a mid-range codec.
func Default() Codec {
	return Codec{BaseRatio: 6, MotionPenalty: 1.2, MsPerMB: 0.9, Jitter: 0.08}
}

// Ratio reports the compression ratio for the given motion level.
func (c Codec) Ratio(motion float64) float64 {
	if motion < 0 {
		motion = 0
	}
	r := c.BaseRatio / (1 + c.MotionPenalty*motion)
	if r < 1 {
		r = 1
	}
	return r
}

// Compress sizes and prices the encoding of a frame: it returns the
// compressed byte count and the CPU time the CP stage must charge.
func (c Codec) Compress(f *scene.Frame, rng *sim.RNG) (compressedBytes float64, cpuTime sim.Duration) {
	raw := f.RawBytes()
	compressedBytes = raw / c.Ratio(f.Motion)
	ms := raw / 1e6 * c.MsPerMB * (0.75 + 0.5*f.Motion)
	cpuTime = sim.DurationOfSeconds(ms / 1e3)
	if rng != nil && c.Jitter > 0 {
		cpuTime = rng.Jitter(cpuTime, c.Jitter)
	}
	return compressedBytes, cpuTime
}

// DecompressTime reports the client-side decode cost for a compressed
// frame. Client machines are dedicated (uncontended), so this is a
// fixed-rate cost.
func DecompressTime(compressedBytes float64) sim.Duration {
	const msPerMB = 0.35
	return sim.DurationOfSeconds(compressedBytes / 1e6 * msPerMB / 1e3)
}
