package codec

import (
	"testing"
	"testing/quick"

	"pictor/internal/scene"
	"pictor/internal/sim"
)

func frame(motion float64) *scene.Frame {
	return &scene.Frame{Width: 1920, Height: 1080, Motion: motion}
}

func TestRatioFallsWithMotion(t *testing.T) {
	c := Default()
	still := c.Ratio(0)
	busy := c.Ratio(0.8)
	if busy >= still {
		t.Fatalf("ratio should fall with motion: %v -> %v", still, busy)
	}
	if got := c.Ratio(-1); got != still {
		t.Fatalf("negative motion should clamp: %v vs %v", got, still)
	}
}

func TestRatioNeverBelowOne(t *testing.T) {
	c := Codec{BaseRatio: 1.2, MotionPenalty: 10}
	if got := c.Ratio(1); got < 1 {
		t.Fatalf("compression ratio below 1: %v", got)
	}
}

func TestCompressSizesAndCost(t *testing.T) {
	c := Default()
	bytes, cost := c.Compress(frame(0.4), nil)
	if bytes <= 0 || bytes >= frame(0.4).RawBytes() {
		t.Fatalf("compressed size implausible: %v of %v", bytes, frame(0.4).RawBytes())
	}
	if cost <= 0 || cost > 100*sim.Millisecond {
		t.Fatalf("encode cost implausible: %v", cost)
	}
	// Higher motion: larger output, more CPU.
	bytes2, cost2 := c.Compress(frame(0.9), nil)
	if bytes2 <= bytes || cost2 <= cost {
		t.Fatalf("motion should cost more: (%v,%v) -> (%v,%v)", bytes, cost, bytes2, cost2)
	}
}

func TestCompressJitterVaries(t *testing.T) {
	c := Default()
	rng := sim.NewRNG(1)
	seen := map[sim.Duration]bool{}
	for i := 0; i < 20; i++ {
		_, cost := c.Compress(frame(0.4), rng)
		seen[cost] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jittered costs collapsed to %d values", len(seen))
	}
}

func TestDecompressTimeScales(t *testing.T) {
	small := DecompressTime(1e5)
	big := DecompressTime(5e6)
	if big <= small || small < 0 {
		t.Fatalf("decode time should scale with size: %v vs %v", small, big)
	}
}

// Property: compressed size is positive and at most the raw size for
// every motion level.
func TestCompressBoundsProperty(t *testing.T) {
	c := Default()
	f := func(m uint8) bool {
		fr := frame(float64(m) / 255)
		bytes, cost := c.Compress(fr, nil)
		return bytes > 0 && bytes <= fr.RawBytes() && cost >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
