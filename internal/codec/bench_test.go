package codec

import (
	"testing"

	"pictor/internal/scene"
	"pictor/internal/sim"
)

// BenchmarkCompress prices the CP stage model itself (it must stay
// allocation-free: it runs once per shipped frame).
func BenchmarkCompress(b *testing.B) {
	c := Default()
	rng := sim.NewRNG(1)
	f := &scene.Frame{Width: 1920, Height: 1080, Motion: 0.4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(f, rng)
	}
}

func BenchmarkDecompressTime(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecompressTime(1.2e6)
	}
}
