package app

import (
	"fmt"
	"strings"

	"pictor/internal/scene"
)

// The profile registry. The paper's suite is fixed at six applications
// (Table 2); the registry turns "add a workload" from a refactor into a
// registration: a new scenario family is one calibrated Profile plus a
// Register call, and every experiment entry point, arrival mix and
// placement policy picks it up through Suite/ByName/Resolve.
//
// Registration happens at init time (the built-in families below) or
// before any experiment runs; the registry is not safe for concurrent
// mutation, matching the package's init-then-read usage.

var (
	// regNames holds the registered short keys in registration order —
	// the stable iteration order Suite() and Names() expose.
	regNames []string
	// regByName is the lookup table behind ByName (a map lookup, not a
	// rebuild of the whole suite per call).
	regByName = map[string]Profile{}
)

// DefaultALComplexityCoupling is the documented ALComplexityCoupling
// default, stamped at registration so the stored profile carries the
// value every consumer sees (the runtime no longer coerces silently).
const DefaultALComplexityCoupling = 0.25

// normalize makes the documented field defaults explicit on the stored
// profile: a zero ALComplexityCoupling becomes the 0.25 default and a
// zero HeavyWeight becomes weight 1, so demand models, serializers and
// the pipeline all read the same numbers. A profile that genuinely
// wants "no coupling" registers a negligible positive value.
func normalize(p Profile) Profile {
	if p.ALComplexityCoupling == 0 {
		p.ALComplexityCoupling = DefaultALComplexityCoupling
	}
	if p.HeavyWeight == 0 {
		p.HeavyWeight = 1
	}
	return p
}

// Register adds a profile to the registry. It panics on an invalid or
// duplicate registration: profiles register at init time, where a loud
// failure beats a miscalibrated benchmark silently joining every sweep.
func Register(p Profile) {
	if p.Name == "" {
		panic("app: Register needs a non-empty short Name")
	}
	// Names are CLI and trial-key vocabulary: "," separates -profiles
	// lists, and "|", ":", "=" delimit Trial.Key() / stream-key fields —
	// a name containing them could make two distinct trials serialize
	// to colliding keys (and therefore share seeds and dedupe).
	if strings.EqualFold(p.Name, "all") || strings.ContainsAny(p.Name, ", \t|:=") {
		panic(fmt.Sprintf("app: profile name %q is reserved or contains separator characters (names are CLI/key vocabulary)", p.Name))
	}
	if _, dup := regByName[p.Name]; dup {
		panic(fmt.Sprintf("app: profile %q registered twice", p.Name))
	}
	if p.Width <= 0 || p.Height <= 0 {
		panic(fmt.Sprintf("app: profile %q needs positive display dimensions", p.Name))
	}
	if p.ALBaseMs <= 0 || p.GPU.BaseRenderMs <= 0 {
		panic(fmt.Sprintf("app: profile %q has implausible timing (ALBaseMs and GPU.BaseRenderMs must be > 0)", p.Name))
	}
	if p.Codec.BaseRatio <= 1 {
		panic(fmt.Sprintf("app: profile %q codec must compress (BaseRatio > 1)", p.Name))
	}
	if len(p.Dynamics.Kinds) == 0 {
		panic(fmt.Sprintf("app: profile %q has no scene object kinds", p.Name))
	}
	if p.HeavyWeight < 0 {
		panic(fmt.Sprintf("app: profile %q HeavyWeight must be >= 0 (0 defaults to 1)", p.Name))
	}
	p = normalize(p)
	// Detach the Kinds slice so later mutation of the caller's value
	// cannot reach the registry.
	p.Dynamics.Kinds = append([]scene.Type(nil), p.Dynamics.Kinds...)
	regByName[p.Name] = p
	regNames = append(regNames, p.Name)
}

// cloneProfile hands out a value whose slice fields are detached from
// the registry's copy.
func cloneProfile(p Profile) Profile {
	p.Dynamics.Kinds = append([]scene.Type(nil), p.Dynamics.Kinds...)
	return p
}

// Names lists every registered profile's short key in registration
// order (the paper's six first, then the extended families).
func Names() []string { return append([]string(nil), regNames...) }

// ByName finds a registered profile by its short key via the registry
// map (it used to rebuild the entire suite per call).
func ByName(name string) (Profile, bool) {
	p, ok := regByName[name]
	if !ok {
		return Profile{}, false
	}
	return cloneProfile(p), true
}

// Suite returns every registered profile in stable registration order.
// The paper's original six come first; see PaperSuite for exactly them.
func Suite() []Profile {
	out := make([]Profile, len(regNames))
	for i, n := range regNames {
		out[i] = cloneProfile(regByName[n])
	}
	return out
}

// paperNames are the Table-2 suite keys in paper order.
var paperNames = []string{"STK", "0AD", "RE", "D2", "IM", "ITP"}

// PaperNames lists the paper's six benchmark keys in Table-2 order.
func PaperNames() []string { return append([]string(nil), paperNames...) }

// PaperSuite returns the paper's six-benchmark suite (Table 2) in paper
// order: SuperTuxKart, 0 A.D., Red Eclipse, Dota2, InMind, IMHOTEP. It
// is the default workload set of every experiment entry point, so
// pre-registry keys, seeds and fixtures stay byte-identical.
func PaperSuite() []Profile {
	out := make([]Profile, len(paperNames))
	for i, n := range paperNames {
		p, ok := ByName(n)
		if !ok {
			panic("app: paper suite profile " + n + " not registered")
		}
		out[i] = p
	}
	return out
}

// Resolve turns a profile-subset spec into concrete profiles: "" means
// the paper's six (the historical default), "all" means every
// registered profile, anything else is a comma-separated list of
// registered short keys ("STK,CAD,VV"). Unknown or duplicate names
// error with the registered vocabulary.
func Resolve(spec string) ([]Profile, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "":
		return PaperSuite(), nil
	case "all":
		return Suite(), nil
	}
	parts := strings.Split(spec, ",")
	out := make([]Profile, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, raw := range parts {
		name := strings.TrimSpace(raw)
		if name == "" {
			return nil, fmt.Errorf("app: profile spec %q has an empty entry", spec)
		}
		p, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("app: unknown profile %q (registered: %s; or \"all\")",
				name, strings.Join(regNames, ","))
		}
		if seen[name] {
			return nil, fmt.Errorf("app: profile %q listed twice in %q", name, spec)
		}
		seen[name] = true
		out = append(out, p)
	}
	return out, nil
}

// The built-in families register at init: the paper's Table-2 six in
// paper order, then the extended scenario families.
func init() {
	Register(STK())
	Register(ZeroAD())
	Register(RE())
	Register(D2())
	Register(IM())
	Register(ITP())
	Register(CAD())
	Register(VV())
	Register(CZ())
}
