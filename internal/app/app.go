// Package app models a cloud-rendered interactive 3D application: the
// software pipeline of Figure 5, where the main thread alternates
// application logic (AL) with the copy of the previous frame (FC), the
// GPU renders (RD) in parallel, and a second thread ships finished
// frames to the server proxy (AS).
package app

import (
	"pictor/internal/gl"
	"pictor/internal/hw/cpu"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/vgl"
	"pictor/internal/x11"
)

// Mode selects the pipeline discipline.
type Mode int

const (
	// ModeNormal is the full software pipeline of Figure 5.
	ModeNormal Mode = iota
	// ModeSlowMotion serializes the system the way the Slow-Motion
	// methodology does: one input is admitted, fully processed
	// (AL → RD → FC → AS → CP → SS), displayed, and only then may the
	// next input be processed. Pipeline parallelism — and its resource
	// contention — disappears, which is exactly the behaviour change
	// the paper criticizes.
	ModeSlowMotion
)

// App is one running 3D application.
type App struct {
	k       *sim.Kernel
	rng     *sim.RNG
	prof    Profile
	proc    *cpu.Proc
	sc      *scene.Scene
	glctx   *gl.Context
	ip      *vgl.Interposer
	display *x11.Display
	tracer  *trace.Tracer
	mode    Mode

	// sendFrame is the AS destination (the server proxy's HandleFrame).
	sendFrame func(*scene.Frame)

	running  bool
	frameSeq int64
	prev     *gl.RenderHandle

	// tagsBuf is the drain scratch: tags live here from drainInputs
	// until swap copies them into the frame, within the same pass.
	tagsBuf []uint64

	// Slow-motion bookkeeping.
	smPollEvery sim.Duration
}

// Config assembles an App.
type Config struct {
	Kernel     *sim.Kernel
	RNG        *sim.RNG
	Profile    Profile
	Proc       *cpu.Proc
	GL         *gl.Context
	Interposer *vgl.Interposer
	Display    *x11.Display
	Tracer     *trace.Tracer
	Mode       Mode
	SendFrame  func(*scene.Frame)
}

// New creates an application instance (stopped; call Start).
func New(cfg Config) *App {
	a := &App{
		k:           cfg.Kernel,
		rng:         cfg.RNG.Fork("app-" + cfg.Profile.Name),
		prof:        cfg.Profile,
		proc:        cfg.Proc,
		glctx:       cfg.GL,
		ip:          cfg.Interposer,
		display:     cfg.Display,
		tracer:      cfg.Tracer,
		mode:        cfg.Mode,
		sendFrame:   cfg.SendFrame,
		smPollEvery: 4 * sim.Millisecond,
	}
	a.sc = scene.New(cfg.Profile.Dynamics, a.rng)
	return a
}

// Scene exposes the application's scene (examples and tests peek at it).
func (a *App) Scene() *scene.Scene { return a.sc }

// Frames reports how many frames the app has produced.
func (a *App) Frames() int64 { return a.frameSeq }

// Start launches the pipeline loop.
func (a *App) Start() {
	if a.running {
		return
	}
	a.running = true
	a.proc.Start()
	if a.mode == ModeSlowMotion {
		a.k.After(0, a.slowMotionLoop)
		return
	}
	a.k.After(0, a.loop)
}

// Stop halts the pipeline after the current pass.
func (a *App) Stop() {
	a.running = false
	a.proc.Stop()
}

// drainInputs empties the X queue (hook4) and reduces it to the frame's
// tag list and the dominant action. The returned tag slice is the app's
// reused scratch: it is valid until the next drainInputs (swap copies
// it into the frame within the same pipeline pass).
func (a *App) drainInputs() (tags []uint64, act scene.Action) {
	act = scene.ActNone
	tags = a.tagsBuf[:0]
	for _, in := range a.display.Drain() {
		a.tracer.RecordHook(trace.Hook4, in.Tag)
		if in.Tag != 0 {
			tags = append(tags, in.Tag)
		}
		if in.Action != scene.ActNone {
			act = in.Action
		}
	}
	a.tagsBuf = tags
	return tags, act
}

// alWork prices one application-logic pass. The coupling says how much
// of the logic cost tracks scene complexity (an RTS simulating armies
// is far more scene-bound than a racer's fixed physics loop). The
// profile's value is honored as-is: Register stamps the documented
// 0.25 default onto unset profiles, so there is no hidden runtime
// coercion — an explicitly tiny (or zero, for hand-built profiles)
// coupling really runs that way.
func (a *App) alWork(nInputs int) sim.Duration {
	c := a.prof.ALComplexityCoupling
	ms := a.prof.ALBaseMs*((1-c)+c*a.sc.Complexity()) + a.prof.ALPerInputMs*float64(nInputs)
	d := sim.DurationOfSeconds(ms / 1e3)
	return a.rng.Jitter(d, a.prof.ALJitter) + a.tracer.HookCost()
}

// loop is one pass of the normal pipeline: AL_i, swap (RD_i starts),
// then FC_{i-1}, then the next pass.
func (a *App) loop() {
	if !a.running {
		return
	}
	tags, act := a.drainInputs()
	a.sc.Step(act)
	alStart := a.k.Now()
	a.proc.Run(a.alWork(len(tags)), func() {
		a.tracer.AddStage(trace.StageAL, a.k.Now().Sub(alStart), tags...)
		h := a.swap(tags)
		prev := a.prev
		a.prev = h
		if prev == nil {
			a.k.After(0, a.loop)
			return
		}
		a.ip.CopyFrame(prev,
			func() { a.k.After(0, a.loop) },
			func(f *scene.Frame) { a.dispatchAS(f) })
	})
}

// swap renders the current scene into a frame and submits it (hook5).
func (a *App) swap(tags []uint64) *gl.RenderHandle {
	a.frameSeq++
	f := a.sc.Render(a.frameSeq, a.prof.Width, a.prof.Height)
	// tags is the drain scratch; the frame owns (recycled) tag storage.
	f.Tags = append(f.Tags[:0], tags...)
	a.tracer.RecordHookMulti(trace.Hook5, tags)
	upload := a.prof.UploadMBPerFrame * (0.3 + a.sc.Motion()) * 1e6
	h := a.glctx.SwapBuffers(f, upload)
	h.OnRenderDone(func() {
		a.tracer.AddStage(trace.StageRD, h.RenderLatency(), f.Tags...)
	})
	a.ip.OnSwap(h)
	return h
}

// dispatchAS ships a copied frame to the server proxy on the AS thread
// (XShmPutImage — hook7). It does not block the pipeline loop.
func (a *App) dispatchAS(f *scene.Frame) {
	asStart := a.k.Now()
	ms := (a.prof.ASBaseMs + a.prof.ASPerMBMs*f.RawBytes()/1e6) * (1 + a.prof.IPCTax)
	work := sim.DurationOfSeconds(ms/1e3) + a.tracer.HookCost()
	a.proc.Run(work, func() {
		a.tracer.RecordHookMulti(trace.Hook7, f.Tags)
		a.tracer.AddStage(trace.StageAS, a.k.Now().Sub(asStart), f.Tags...)
		if a.sendFrame != nil {
			a.sendFrame(f)
		}
	})
}

// slowMotionLoop admits one input at a time and fully serializes its
// processing; with no queued input it idles (no frames are produced),
// drastically altering the system's behaviour — the methodology's flaw.
func (a *App) slowMotionLoop() {
	if !a.running {
		return
	}
	if a.display.Pending() == 0 {
		a.k.After(a.smPollEvery, a.slowMotionLoop)
		return
	}
	tags, act := a.drainInputs()
	a.sc.Step(act)
	alStart := a.k.Now()
	a.proc.Run(a.alWork(len(tags)), func() {
		a.tracer.AddStage(trace.StageAL, a.k.Now().Sub(alStart), tags...)
		h := a.swap(tags)
		// Fully sequential: wait for the render, then copy this very
		// frame, then ship it, then look for the next input.
		h.OnRenderDone(func() {
			a.ip.CopyFrame(h,
				func() {},
				func(f *scene.Frame) {
					asStart := a.k.Now()
					ms := (a.prof.ASBaseMs + a.prof.ASPerMBMs*f.RawBytes()/1e6) * (1 + a.prof.IPCTax)
					a.proc.Run(sim.DurationOfSeconds(ms/1e3), func() {
						a.tracer.RecordHookMulti(trace.Hook7, f.Tags)
						a.tracer.AddStage(trace.StageAS, a.k.Now().Sub(asStart), f.Tags...)
						if a.sendFrame != nil {
							a.sendFrame(f)
						}
						a.k.After(0, a.slowMotionLoop)
					})
				})
		})
	})
}
