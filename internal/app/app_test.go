package app

import (
	"testing"

	"pictor/internal/gl"
	"pictor/internal/hw/cpu"
	"pictor/internal/hw/gpu"
	"pictor/internal/hw/pcie"
	"pictor/internal/proto"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/vgl"
	"pictor/internal/x11"
)

type rig struct {
	k       *sim.Kernel
	app     *App
	display *x11.Display
	tracer  *trace.Tracer
	frames  []*scene.Frame
}

func newRig(prof Profile, mode Mode) *rig {
	k := sim.NewKernel()
	rng := sim.NewRNG(1)
	c := cpu.New(k, 8, rng)
	g := gpu.New(k, rng)
	gctx := g.NewContext("app", prof.GPU)
	gctx.SetActive(true)
	bus := pcie.New(k, 15.75e9)
	glctx := gl.NewContext(k, gctx, bus.NewClient("app"))
	display := x11.NewDisplay(k, rng, prof.Width, prof.Height)
	tracer := trace.New(k)
	proc := c.NewProc("app", nil, prof.AppBackgroundCores)
	ip := vgl.New(k, proc, display, tracer, vgl.DefaultOptions())
	r := &rig{k: k, display: display, tracer: tracer}
	r.app = New(Config{
		Kernel: k, RNG: rng, Profile: prof, Proc: proc, GL: glctx,
		Interposer: ip, Display: display, Tracer: tracer, Mode: mode,
		SendFrame: func(f *scene.Frame) { r.frames = append(r.frames, f) },
	})
	return r
}

func TestSuiteProfilesComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 6 {
		t.Fatalf("suite size = %d, want 6", len(suite))
	}
	names := map[string]bool{}
	for _, p := range suite {
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		if p.ALBaseMs <= 0 || p.GPU.BaseRenderMs <= 0 || p.Codec.BaseRatio <= 1 {
			t.Fatalf("%s profile has implausible timing", p.Name)
		}
		if p.Mem.BaseMissRate < 0.5 {
			t.Fatalf("%s L3 base miss %v — 3D apps are >70%% in the paper", p.Name, p.Mem.BaseMissRate)
		}
		if len(p.Dynamics.Kinds) == 0 {
			t.Fatalf("%s has no scene object kinds", p.Name)
		}
	}
	for _, want := range []string{"STK", "0AD", "RE", "D2", "IM", "ITP"} {
		if !names[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
	if _, ok := ByName("STK"); !ok {
		t.Fatal("ByName(STK) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted garbage")
	}
}

func TestPipelineProducesFramesWithoutInputs(t *testing.T) {
	r := newRig(RE(), ModeNormal)
	r.app.Start()
	r.k.RunUntil(sim.Time(2 * sim.Second))
	r.app.Stop()
	if len(r.frames) < 20 {
		t.Fatalf("only %d frames in 2s of free-running pipeline", len(r.frames))
	}
	if r.app.Frames() <= int64(len(r.frames)) {
		t.Fatal("frame sequencing inconsistent")
	}
}

func TestInputsFlowIntoFrames(t *testing.T) {
	r := newRig(RE(), ModeNormal)
	r.app.Start()
	r.display.Push(proto.Input{Tag: 9, Action: scene.ActPrimary})
	r.k.RunUntil(sim.Time(sim.Second))
	r.app.Stop()
	found := false
	for _, f := range r.frames {
		for _, tag := range trace.ExtractTags(f.Pixels) {
			if tag == 9 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("input tag never reached a frame")
	}
}

func TestStagesRecorded(t *testing.T) {
	r := newRig(D2(), ModeNormal)
	r.app.Start()
	r.k.RunUntil(sim.Time(sim.Second))
	r.app.Stop()
	for _, s := range []trace.Stage{trace.StageAL, trace.StageRD, trace.StageFC, trace.StageAS} {
		if r.tracer.StageSample(s).N() == 0 {
			t.Fatalf("stage %s never recorded", s)
		}
	}
}

func TestSlowMotionIdlesWithoutInput(t *testing.T) {
	r := newRig(RE(), ModeSlowMotion)
	r.app.Start()
	r.k.RunUntil(sim.Time(sim.Second))
	if len(r.frames) != 0 {
		t.Fatalf("slow-motion rendered %d frames with no input", len(r.frames))
	}
	// One input → exactly one frame.
	r.display.Push(proto.Input{Tag: 5, Action: scene.ActPrimary})
	r.k.RunUntil(sim.Time(2 * sim.Second))
	r.app.Stop()
	if len(r.frames) != 1 {
		t.Fatalf("slow-motion produced %d frames for one input, want 1", len(r.frames))
	}
}

func TestStopHaltsPipeline(t *testing.T) {
	r := newRig(IM(), ModeNormal)
	r.app.Start()
	r.k.RunUntil(sim.Time(sim.Second))
	r.app.Stop()
	n := len(r.frames)
	r.k.RunUntil(sim.Time(3 * sim.Second))
	// The in-flight pass may finish; no sustained production afterwards.
	if len(r.frames) > n+3 {
		t.Fatalf("pipeline kept producing after Stop: %d -> %d", n, len(r.frames))
	}
}

func TestALComplexityCouplingDefaults(t *testing.T) {
	prof := RE()
	prof.ALComplexityCoupling = 0 // must default to 0.25, not zero out AL
	r := newRig(prof, ModeNormal)
	r.app.Start()
	r.k.RunUntil(sim.Time(sim.Second))
	r.app.Stop()
	if m := r.tracer.StageSample(trace.StageAL).Mean(); m < 1 {
		t.Fatalf("AL mean = %vms with default coupling, implausible", m)
	}
}
