package app

import (
	"testing"

	"pictor/internal/gl"
	"pictor/internal/hw/cpu"
	"pictor/internal/hw/gpu"
	"pictor/internal/hw/pcie"
	"pictor/internal/proto"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/vgl"
	"pictor/internal/x11"
)

type rig struct {
	k       *sim.Kernel
	app     *App
	display *x11.Display
	tracer  *trace.Tracer
	frames  []*scene.Frame
}

func newRig(prof Profile, mode Mode) *rig {
	k := sim.NewKernel()
	rng := sim.NewRNG(1)
	c := cpu.New(k, 8, rng)
	g := gpu.New(k, rng)
	gctx := g.NewContext("app", prof.GPU)
	gctx.SetActive(true)
	bus := pcie.New(k, 15.75e9)
	glctx := gl.NewContext(k, gctx, bus.NewClient("app"))
	display := x11.NewDisplay(k, rng, prof.Width, prof.Height)
	tracer := trace.New(k)
	proc := c.NewProc("app", nil, prof.AppBackgroundCores)
	ip := vgl.New(k, proc, display, tracer, vgl.DefaultOptions())
	r := &rig{k: k, display: display, tracer: tracer}
	r.app = New(Config{
		Kernel: k, RNG: rng, Profile: prof, Proc: proc, GL: glctx,
		Interposer: ip, Display: display, Tracer: tracer, Mode: mode,
		SendFrame: func(f *scene.Frame) { r.frames = append(r.frames, f) },
	})
	return r
}

func TestSuiteProfilesComplete(t *testing.T) {
	paper := PaperSuite()
	if len(paper) != 6 {
		t.Fatalf("paper suite size = %d, want 6", len(paper))
	}
	for i, want := range []string{"STK", "0AD", "RE", "D2", "IM", "ITP"} {
		if paper[i].Name != want {
			t.Fatalf("paper suite [%d] = %s, want %s (Table-2 order)", i, paper[i].Name, want)
		}
		if paper[i].Mem.BaseMissRate < 0.5 {
			t.Fatalf("%s L3 base miss %v — 3D apps are >70%% in the paper", want, paper[i].Mem.BaseMissRate)
		}
	}
	suite := Suite()
	if len(suite) < 9 {
		t.Fatalf("registry holds %d profiles, want >= 9 (paper six + CAD, VV, CZ)", len(suite))
	}
	names := map[string]bool{}
	for _, p := range suite {
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"CAD", "VV", "CZ"} {
		if !names[want] {
			t.Fatalf("registry missing extended family %s", want)
		}
	}
	if _, ok := ByName("STK"); !ok {
		t.Fatal("ByName(STK) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted garbage")
	}
}

func TestPipelineProducesFramesWithoutInputs(t *testing.T) {
	r := newRig(RE(), ModeNormal)
	r.app.Start()
	r.k.RunUntil(sim.Time(2 * sim.Second))
	r.app.Stop()
	if len(r.frames) < 20 {
		t.Fatalf("only %d frames in 2s of free-running pipeline", len(r.frames))
	}
	if r.app.Frames() <= int64(len(r.frames)) {
		t.Fatal("frame sequencing inconsistent")
	}
}

func TestInputsFlowIntoFrames(t *testing.T) {
	r := newRig(RE(), ModeNormal)
	r.app.Start()
	r.display.Push(proto.Input{Tag: 9, Action: scene.ActPrimary})
	r.k.RunUntil(sim.Time(sim.Second))
	r.app.Stop()
	found := false
	for _, f := range r.frames {
		for _, tag := range trace.ExtractTags(f.Pixels) {
			if tag == 9 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("input tag never reached a frame")
	}
}

func TestStagesRecorded(t *testing.T) {
	r := newRig(D2(), ModeNormal)
	r.app.Start()
	r.k.RunUntil(sim.Time(sim.Second))
	r.app.Stop()
	for _, s := range []trace.Stage{trace.StageAL, trace.StageRD, trace.StageFC, trace.StageAS} {
		if r.tracer.StageSample(s).N() == 0 {
			t.Fatalf("stage %s never recorded", s)
		}
	}
}

func TestSlowMotionIdlesWithoutInput(t *testing.T) {
	r := newRig(RE(), ModeSlowMotion)
	r.app.Start()
	r.k.RunUntil(sim.Time(sim.Second))
	if len(r.frames) != 0 {
		t.Fatalf("slow-motion rendered %d frames with no input", len(r.frames))
	}
	// One input → exactly one frame.
	r.display.Push(proto.Input{Tag: 5, Action: scene.ActPrimary})
	r.k.RunUntil(sim.Time(2 * sim.Second))
	r.app.Stop()
	if len(r.frames) != 1 {
		t.Fatalf("slow-motion produced %d frames for one input, want 1", len(r.frames))
	}
}

func TestStopHaltsPipeline(t *testing.T) {
	r := newRig(IM(), ModeNormal)
	r.app.Start()
	r.k.RunUntil(sim.Time(sim.Second))
	r.app.Stop()
	n := len(r.frames)
	r.k.RunUntil(sim.Time(3 * sim.Second))
	// The in-flight pass may finish; no sustained production afterwards.
	if len(r.frames) > n+3 {
		t.Fatalf("pipeline kept producing after Stop: %d -> %d", n, len(r.frames))
	}
}

func TestALComplexityCouplingDefaults(t *testing.T) {
	// The documented default is stamped at registration, not coerced at
	// runtime: every registered profile carries an explicit coupling.
	for _, p := range Suite() {
		if p.ALComplexityCoupling <= 0 || p.ALComplexityCoupling > 1 {
			t.Fatalf("%s: registered coupling %v outside (0,1] — registration must make the default explicit",
				p.Name, p.ALComplexityCoupling)
		}
	}
	if re, _ := ByName("RE"); re.ALComplexityCoupling != DefaultALComplexityCoupling {
		t.Fatalf("RE coupling = %v, want the stamped default %v", re.ALComplexityCoupling, DefaultALComplexityCoupling)
	}
	if cz, _ := ByName("CZ"); cz.ALComplexityCoupling == DefaultALComplexityCoupling {
		t.Fatal("CZ sets an explicit coupling; registration must not overwrite it with the default")
	}
	// A hand-built zero-coupling profile now genuinely runs uncoupled —
	// AL cost collapses to the base term instead of silently becoming
	// the 0.25 default — and the pipeline still produces sane stages.
	prof := RE()
	prof.ALComplexityCoupling = 0
	r := newRig(prof, ModeNormal)
	r.app.Start()
	r.k.RunUntil(sim.Time(sim.Second))
	r.app.Stop()
	if m := r.tracer.StageSample(trace.StageAL).Mean(); m < 1 {
		t.Fatalf("AL mean = %vms with zero coupling, implausible", m)
	}
}
