package app

import (
	"strings"
	"testing"

	"pictor/internal/scene"
)

// TestProfileSanity is the table-driven calibration gate: every
// registered profile — present and future — must satisfy the invariants
// the simulation relies on, so a miscalibrated registration fails fast
// instead of producing quietly absurd measurements.
func TestProfileSanity(t *testing.T) {
	suite := Suite()
	if len(suite) == 0 {
		t.Fatal("registry is empty")
	}
	for _, p := range suite {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			probs := []struct {
				name string
				v    float64
			}{
				{"Dynamics.SpawnProb", p.Dynamics.SpawnProb},
				{"Dynamics.DespawnProb", p.Dynamics.DespawnProb},
				{"Dynamics.MoveProb", p.Dynamics.MoveProb},
				{"HumanActProb", p.HumanActProb},
			}
			for _, pr := range probs {
				if pr.v < 0 || pr.v > 1 {
					t.Errorf("%s = %v outside [0,1]", pr.name, pr.v)
				}
			}
			positives := []struct {
				name string
				v    float64
			}{
				{"Width", float64(p.Width)},
				{"Height", float64(p.Height)},
				{"ALBaseMs", p.ALBaseMs},
				{"GPU.BaseRenderMs", p.GPU.BaseRenderMs},
				{"GPU.MemoryMB", p.GPU.MemoryMB},
				{"Mem.FootprintMB", p.Mem.FootprintMB},
				{"Mem.AccessesPerMs", p.Mem.AccessesPerMs},
				{"VNCMem.FootprintMB", p.VNCMem.FootprintMB},
				{"Codec.MsPerMB", p.Codec.MsPerMB},
				{"HumanReactionMs", p.HumanReactionMs},
				{"CVLatencyMs", p.CVLatencyMs},
				{"RNNLatencyMs", p.RNNLatencyMs},
			}
			for _, ps := range positives {
				if ps.v <= 0 {
					t.Errorf("%s = %v, must be positive", ps.name, ps.v)
				}
			}
			if p.Codec.BaseRatio <= 1 {
				t.Errorf("Codec.BaseRatio = %v, must compress (> 1)", p.Codec.BaseRatio)
			}
			if p.ALComplexityCoupling <= 0 || p.ALComplexityCoupling > 1 {
				t.Errorf("ALComplexityCoupling = %v outside (0,1] after registration", p.ALComplexityCoupling)
			}
			if p.HeavyWeight < 1 {
				t.Errorf("HeavyWeight = %d, registration must default it to >= 1", p.HeavyWeight)
			}
			if len(p.Dynamics.Kinds) == 0 {
				t.Error("Dynamics.Kinds is empty")
			}
			for _, k := range p.Dynamics.Kinds {
				if k == scene.Empty || k >= scene.NumTypes {
					t.Errorf("Dynamics.Kinds contains invalid type %d", k)
				}
			}
			if p.Dynamics.BaseComplexity <= 0 {
				t.Errorf("Dynamics.BaseComplexity = %v, must be positive", p.Dynamics.BaseComplexity)
			}
		})
	}
}

func TestRegistryOrderAndLookup(t *testing.T) {
	names := Names()
	suite := Suite()
	if len(names) != len(suite) {
		t.Fatalf("Names (%d) and Suite (%d) disagree", len(names), len(suite))
	}
	for i, n := range names {
		if suite[i].Name != n {
			t.Fatalf("Suite[%d] = %s, Names[%d] = %s — orders must match", i, suite[i].Name, i, n)
		}
		p, ok := ByName(n)
		if !ok || p.Name != n {
			t.Fatalf("ByName(%s) failed", n)
		}
	}
	// The paper's six lead the registration order.
	for i, n := range PaperNames() {
		if names[i] != n {
			t.Fatalf("Names[%d] = %s, want paper profile %s first", i, names[i], n)
		}
	}
}

func TestRegisterRejectsBadProfiles(t *testing.T) {
	mustPanic := func(name string, p Profile) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register accepted an invalid profile", name)
			}
		}()
		Register(p)
	}
	valid := CZ()
	mustPanic("duplicate", STK())
	empty := valid
	empty.Name = ""
	mustPanic("empty name", empty)
	reserved := valid
	reserved.Name = "all"
	mustPanic("reserved name", reserved)
	comma := valid
	comma.Name = "A,B"
	mustPanic("separator in name", comma)
	// Key-delimiter characters could make two distinct trials serialize
	// to colliding keys.
	for _, name := range []string{"A:B", "A=B", "A|B"} {
		bad := valid
		bad.Name = name
		mustPanic("key delimiter in name "+name, bad)
	}
	noKinds := valid
	noKinds.Name = "XX1"
	noKinds.Dynamics.Kinds = nil
	mustPanic("no kinds", noKinds)
	badCodec := valid
	badCodec.Name = "XX2"
	badCodec.Codec.BaseRatio = 1
	mustPanic("non-compressing codec", badCodec)
	badDims := valid
	badDims.Name = "XX3"
	badDims.Width = 0
	mustPanic("zero width", badDims)
}

func TestRegistryIsolation(t *testing.T) {
	a, _ := ByName("STK")
	if len(a.Dynamics.Kinds) == 0 {
		t.Fatal("STK has no kinds")
	}
	a.Dynamics.Kinds[0] = scene.Empty
	b, _ := ByName("STK")
	if b.Dynamics.Kinds[0] == scene.Empty {
		t.Fatal("mutating a returned profile leaked into the registry")
	}
}

func TestResolve(t *testing.T) {
	paper, err := Resolve("")
	if err != nil || len(paper) != 6 {
		t.Fatalf("Resolve(\"\") = %d profiles, err %v; want the paper six", len(paper), err)
	}
	all, err := Resolve("all")
	if err != nil || len(all) != len(Names()) {
		t.Fatalf("Resolve(all) = %d profiles, err %v; want the full registry", len(all), err)
	}
	subset, err := Resolve(" STK , CAD ")
	if err != nil || len(subset) != 2 || subset[0].Name != "STK" || subset[1].Name != "CAD" {
		t.Fatalf("Resolve(subset) = %+v, err %v", names(subset), err)
	}
	for _, bad := range []string{"NOPE", "STK,STK", "STK,,RE", "STK,NOPE"} {
		if _, err := Resolve(bad); err == nil {
			t.Fatalf("Resolve(%q) accepted an invalid spec", bad)
		} else if !strings.Contains(err.Error(), "profile") {
			t.Fatalf("Resolve(%q) error not actionable: %v", bad, err)
		}
	}
}

func names(ps []Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
