package app

import (
	"fmt"

	"pictor/internal/codec"
	"pictor/internal/hw/gpu"
	"pictor/internal/hw/mem"
	"pictor/internal/scene"
)

// Profile is the complete behavioural description of one benchmark:
// its timing, scene dynamics, hardware appetite, compressibility, and
// the input behaviour of a human player. The first six profiles below
// are the paper's Table 2 suite, calibrated to the single-instance
// characterization in §5.1 (utilization, FPS, stage-latency and
// bandwidth ranges); see EXPERIMENTS.md for paper-vs-measured values.
// CAD, VV and CZ extend the suite along axes the paper's six do not
// stress. Profiles join the experiment vocabulary via Register.
type Profile struct {
	// Identity (Table 2).
	Name         string // short key: STK, 0AD, RE, D2, IM, ITP, CAD, VV, CZ
	FullName     string
	Genre        string
	IsVR         bool
	ClosedSource bool

	// Display.
	Width, Height int

	// Application-logic timing.
	ALBaseMs     float64
	ALPerInputMs float64
	ALJitter     float64
	// ALComplexityCoupling in (0,1] is the scene-complexity share of
	// the logic cost. Register stamps the documented 0.25 default onto
	// profiles that leave it zero, so the stored profile always carries
	// the value the pipeline runs with (profiles wanting effectively no
	// coupling register a negligible positive value).
	ALComplexityCoupling float64

	// AS (frame hand-off IPC) timing.
	ASBaseMs  float64
	ASPerMBMs float64
	// IPCTax multiplies IPC work (set when containerized).
	IPCTax float64

	// UploadMBPerFrame scales CPU→GPU PCIe traffic (scene data uploads;
	// SuperTuxKart's drastic frame changes make this large).
	UploadMBPerFrame float64

	// Scene dynamics.
	Dynamics scene.Dynamics

	// Hardware appetites.
	GPU gpu.Profile
	Mem mem.Profile
	// AppBackgroundCores is steady engine-thread demand (workers,
	// audio, physics).
	AppBackgroundCores float64
	// VNCBackgroundCores is the proxy's steady demand (encoder helper
	// threads, damage polling).
	VNCBackgroundCores float64
	// VNCMem is the proxy process's memory profile (it contends with
	// the application — §5.2.3 notes proxy/benchmark contention).
	VNCMem mem.Profile

	// Codec behaviour.
	Codec codec.Codec

	// Human reference behaviour.
	HumanReactionMs float64 // mean perception→action latency
	HumanActProb    float64 // probability of acting on a given frame
	// CVLatencyMs / RNNLatencyMs are the intelligent client's inference
	// times on the client machine (Figure 7; MobileNets-class CNN ≈
	// 60–85 ms, LSTM ≈ 2 ms).
	CVLatencyMs  float64
	RNNLatencyMs float64

	// HeavyWeight is the profile's relative draw weight in the "heavy"
	// arrival mix (fleet.MixHeavy). Register stamps weight 1 onto
	// profiles that leave it zero; demanding tenants declare more.
	HeavyWeight int
}

func (p Profile) String() string {
	return fmt.Sprintf("%s (%s, %s)", p.Name, p.FullName, p.Genre)
}

// STK is SuperTuxKart: open-source kart racing. Constant high motion,
// drastic frame-to-frame changes (the paper's CPU→GPU PCIe outlier),
// the most contentious co-runner of Figure 19.
func STK() Profile {
	return Profile{
		Name: "STK", FullName: "SuperTuxKart", Genre: "Racing",
		Width: 1920, Height: 1080,
		ALBaseMs: 9, ALPerInputMs: 0.25, ALJitter: 0.10,
		ALComplexityCoupling: DefaultALComplexityCoupling,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 2.8,
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.Track, scene.Vehicle, scene.Item},
			SpawnProb:      0.06,
			DespawnProb:    0.05,
			MoveProb:       0.28,
			PoseDrift:      0.12,
			InputStir:      0.35,
			BaseComplexity: 1.0,
			ComplexityVar:  0.4,
			MotionFloor:    0.38,
		},
		GPU: gpu.Profile{
			BaseRenderMs: 7.5, RenderJitter: 0.08,
			BaseL2Miss: 0.34, TexMiss: 0.26, L2Sensitivity: 0.9,
			MemoryMB: 640, SupportsPMU: true,
		},
		Mem: mem.Profile{
			BaseMissRate: 0.75, Intensity: 0.95, Sensitivity: 0.80,
			AccessesPerMs: 1100, FootprintMB: 1500,
		},
		AppBackgroundCores: 0.85,
		VNCBackgroundCores: 1.45,
		VNCMem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.30, Sensitivity: 0.45,
			AccessesPerMs: 500, FootprintMB: 350,
		},
		Codec:           codec.Codec{BaseRatio: 6.4, MotionPenalty: 1.3, MsPerMB: 1.00, Jitter: 0.07},
		HumanReactionMs: 210, HumanActProb: 0.22,
		CVLatencyMs: 78, RNNLatencyMs: 1.9,
		HeavyWeight: 3,
	}
}

// ZeroAD is 0 A.D.: open-source real-time strategy. Heavy simulation
// logic, strongly input-driven scene activity (DeskBench's worst case),
// OpenGL 1.3 (no GPU PMU), the least contentious co-runner.
func ZeroAD() Profile {
	return Profile{
		Name: "0AD", FullName: "0 A.D.", Genre: "Real-time Strategy",
		Width: 1920, Height: 1080,
		ALBaseMs: 15, ALPerInputMs: 2.6, ALJitter: 0.13,
		ALComplexityCoupling: 0.75,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 0.5,
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.Building, scene.Vehicle, scene.Item, scene.Enemy},
			SpawnProb:      0.010,
			DespawnProb:    0.022,
			MoveProb:       0.05,
			PoseDrift:      0.04,
			InputStir:      1.5,
			BaseComplexity: 1.05,
			ComplexityVar:  0.95,
			MotionFloor:    0.05,
		},
		GPU: gpu.Profile{
			BaseRenderMs: 9.0, RenderJitter: 0.09,
			BaseL2Miss: 0.30, TexMiss: 0.22, L2Sensitivity: 0.5,
			MemoryMB: 420, SupportsPMU: false, // OpenGL 1.3: tools can't read PMUs
		},
		Mem: mem.Profile{
			BaseMissRate: 0.72, Intensity: 0.35, Sensitivity: 0.55,
			AccessesPerMs: 900, FootprintMB: 1900,
		},
		AppBackgroundCores: 0.65,
		VNCBackgroundCores: 1.65,
		VNCMem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.28, Sensitivity: 0.45,
			AccessesPerMs: 500, FootprintMB: 350,
		},
		Codec:           codec.Codec{BaseRatio: 7.0, MotionPenalty: 1.0, MsPerMB: 1.55, Jitter: 0.07},
		HumanReactionMs: 270, HumanActProb: 0.2,
		CVLatencyMs: 82, RNNLatencyMs: 2.1,
		HeavyWeight: 1,
	}
}

// RE is Red Eclipse: open-source arena first-person shooter. Light
// engine (the suite's lowest CPU utilization), quick render passes.
func RE() Profile {
	return Profile{
		Name: "RE", FullName: "Red Eclipse", Genre: "First-person Shooter",
		Width: 1920, Height: 1080,
		ALBaseMs: 4.5, ALPerInputMs: 0.2, ALJitter: 0.09,
		ALComplexityCoupling: DefaultALComplexityCoupling,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 0.9,
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.Enemy, scene.Item, scene.Track},
			SpawnProb:      0.05,
			DespawnProb:    0.06,
			MoveProb:       0.22,
			PoseDrift:      0.10,
			InputStir:      0.30,
			BaseComplexity: 0.95,
			ComplexityVar:  0.35,
			MotionFloor:    0.26,
		},
		GPU: gpu.Profile{
			BaseRenderMs: 6.0, RenderJitter: 0.08,
			BaseL2Miss: 0.28, TexMiss: 0.24, L2Sensitivity: 0.6,
			MemoryMB: 380, SupportsPMU: true,
		},
		Mem: mem.Profile{
			BaseMissRate: 0.71, Intensity: 0.60, Sensitivity: 0.60,
			AccessesPerMs: 850, FootprintMB: 900,
		},
		AppBackgroundCores: 0.18,
		VNCBackgroundCores: 1.40,
		VNCMem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.28, Sensitivity: 0.45,
			AccessesPerMs: 500, FootprintMB: 350,
		},
		Codec:           codec.Codec{BaseRatio: 7.9, MotionPenalty: 1.15, MsPerMB: 0.95, Jitter: 0.07},
		HumanReactionMs: 190, HumanActProb: 0.26,
		CVLatencyMs: 66, RNNLatencyMs: 1.7,
		HeavyWeight: 1,
	}
}

// D2 is Dota2: closed-source multiplayer online battle arena. The
// suite's CPU hog (many engine worker threads) with a small memory
// footprint; the contention victim studied in Figure 19.
func D2() Profile {
	return Profile{
		Name: "D2", FullName: "Dota2", Genre: "Online Battle Arena",
		ClosedSource: true,
		Width:        1920, Height: 1080,
		ALBaseMs: 11.5, ALPerInputMs: 0.6, ALJitter: 0.11,
		ALComplexityCoupling: DefaultALComplexityCoupling,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 0.8,
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.Vehicle, scene.Enemy, scene.Building, scene.Item},
			SpawnProb:      0.04,
			DespawnProb:    0.04,
			MoveProb:       0.16,
			PoseDrift:      0.08,
			InputStir:      0.55,
			BaseComplexity: 1.0,
			ComplexityVar:  0.45,
			MotionFloor:    0.2,
		},
		GPU: gpu.Profile{
			BaseRenderMs: 8.0, RenderJitter: 0.09,
			BaseL2Miss: 0.31, TexMiss: 0.23, L2Sensitivity: 0.7,
			MemoryMB: 700, SupportsPMU: true,
		},
		Mem: mem.Profile{
			BaseMissRate: 0.73, Intensity: 0.75, Sensitivity: 0.75,
			AccessesPerMs: 1000, FootprintMB: 600,
		},
		AppBackgroundCores: 1.95,
		VNCBackgroundCores: 1.60,
		VNCMem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.30, Sensitivity: 0.45,
			AccessesPerMs: 500, FootprintMB: 350,
		},
		Codec:           codec.Codec{BaseRatio: 6.5, MotionPenalty: 1.1, MsPerMB: 1.05, Jitter: 0.07},
		HumanReactionMs: 240, HumanActProb: 0.2,
		CVLatencyMs: 74, RNNLatencyMs: 2.0,
		HeavyWeight: 3,
	}
}

// IM is InMind: closed-source VR education/game title. Smooth
// head-tracked scenes, the suite's biggest memory footprint and the
// GPU-cache-miss outlier of Figure 16.
func IM() Profile {
	return Profile{
		Name: "IM", FullName: "InMind", Genre: "VR Education/Game",
		IsVR: true, ClosedSource: true,
		Width: 1920, Height: 1080,
		ALBaseMs: 7.5, ALPerInputMs: 0.15, ALJitter: 0.08,
		ALComplexityCoupling: DefaultALComplexityCoupling,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 1.1,
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.Target, scene.Item, scene.Panel},
			SpawnProb:      0.025,
			DespawnProb:    0.02,
			MoveProb:       0.10,
			PoseDrift:      0.025, // smooth head tracking
			InputStir:      0.15,
			BaseComplexity: 1.1,
			ComplexityVar:  0.3,
			MotionFloor:    0.22,
		},
		GPU: gpu.Profile{
			BaseRenderMs: 10.0, RenderJitter: 0.08,
			BaseL2Miss: 0.56, TexMiss: 0.30, L2Sensitivity: 0.65,
			MemoryMB: 760, SupportsPMU: true,
		},
		Mem: mem.Profile{
			BaseMissRate: 0.74, Intensity: 0.65, Sensitivity: 0.65,
			AccessesPerMs: 1050, FootprintMB: 3900,
		},
		AppBackgroundCores: 0.95,
		VNCBackgroundCores: 1.45,
		VNCMem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.28, Sensitivity: 0.45,
			AccessesPerMs: 500, FootprintMB: 350,
		},
		Codec:           codec.Codec{BaseRatio: 8.0, MotionPenalty: 0.9, MsPerMB: 0.85, Jitter: 0.07},
		HumanReactionMs: 160, HumanActProb: 0.34, // continuous head motion
		CVLatencyMs: 68, RNNLatencyMs: 1.8,
		HeavyWeight: 2,
	}
}

// ITP is IMHOTEP: open-source VR surgical-planning framework. Static
// anatomy scenes with deliberate interactions; a heavyweight encoder
// path (the client-FPS regression case of Figure 22).
func ITP() Profile {
	return Profile{
		Name: "ITP", FullName: "IMHOTEP", Genre: "VR Health",
		IsVR:  true,
		Width: 1920, Height: 1080,
		ALBaseMs: 10, ALPerInputMs: 0.3, ALJitter: 0.09,
		ALComplexityCoupling: DefaultALComplexityCoupling,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 0.6,
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.Target, scene.Panel, scene.Item},
			SpawnProb:      0.012,
			DespawnProb:    0.01,
			MoveProb:       0.05,
			PoseDrift:      0.02,
			InputStir:      0.4,
			BaseComplexity: 1.0,
			ComplexityVar:  0.35,
			MotionFloor:    0.12,
		},
		GPU: gpu.Profile{
			BaseRenderMs: 9.0, RenderJitter: 0.08,
			BaseL2Miss: 0.33, TexMiss: 0.21, L2Sensitivity: 0.5,
			MemoryMB: 520, SupportsPMU: true,
		},
		Mem: mem.Profile{
			BaseMissRate: 0.72, Intensity: 0.50, Sensitivity: 0.60,
			AccessesPerMs: 900, FootprintMB: 2400,
		},
		AppBackgroundCores: 0.90,
		VNCBackgroundCores: 1.85,
		VNCMem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.32, Sensitivity: 0.50,
			AccessesPerMs: 550, FootprintMB: 400,
		},
		Codec:           codec.Codec{BaseRatio: 7.5, MotionPenalty: 0.95, MsPerMB: 1.45, Jitter: 0.07},
		HumanReactionMs: 260, HumanActProb: 0.27, // head motion + tool use
		CVLatencyMs: 70, RNNLatencyMs: 1.9,
		HeavyWeight: 1,
	}
}

// ---------------------------------------------------------------------------
// Extended scenario families (beyond the paper's Table 2)

// CAD is CloudCAD, a cloud CAD/BIM viewer: a huge static assembly the
// user orbits and inspects. It stresses axes the paper's games do not —
// extreme scene complexity and memory footprint with near-zero motion,
// so frames compress superbly while every render pass is expensive.
func CAD() Profile {
	return Profile{
		Name: "CAD", FullName: "CloudCAD", Genre: "CAD Viewer",
		Width: 1920, Height: 1080,
		ALBaseMs: 6, ALPerInputMs: 1.8, ALJitter: 0.08,
		// Traversal and occlusion logic scale with the assembly.
		ALComplexityCoupling: 0.6,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 0.4, // geometry is resident; uploads are deltas
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.PointCloud, scene.Building, scene.Panel},
			SpawnProb:      0.004,
			DespawnProb:    0.004,
			MoveProb:       0.01,
			PoseDrift:      0.015, // slow deliberate orbiting
			InputStir:      0.9,   // a view manipulation redraws a lot
			BaseComplexity: 1.6,   // the suite's complexity outlier
			ComplexityVar:  0.2,
			MotionFloor:    0.03,
		},
		GPU: gpu.Profile{
			BaseRenderMs: 12.0, RenderJitter: 0.07,
			BaseL2Miss: 0.50, TexMiss: 0.18, L2Sensitivity: 0.75,
			MemoryMB: 1400, SupportsPMU: true,
		},
		Mem: mem.Profile{
			BaseMissRate: 0.78, Intensity: 0.55, Sensitivity: 0.70,
			AccessesPerMs: 950, FootprintMB: 5200, // the footprint outlier
		},
		AppBackgroundCores: 0.55,
		VNCBackgroundCores: 1.35,
		VNCMem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.28, Sensitivity: 0.45,
			AccessesPerMs: 500, FootprintMB: 350,
		},
		Codec:           codec.Codec{BaseRatio: 9.5, MotionPenalty: 0.8, MsPerMB: 1.10, Jitter: 0.07},
		HumanReactionMs: 320, HumanActProb: 0.16, // deliberate inspection
		CVLatencyMs: 84, RNNLatencyMs: 2.0,
		HeavyWeight: 2,
	}
}

// VV is VoluPlay, a volumetric-video player: captured performances
// replayed as deforming point-cloud/mesh surfaces. Relentless
// full-frame change makes it the suite's codec-hostile bandwidth
// outlier — the lowest compression ratio and the heaviest CPU→GPU
// upload stream, beyond even SuperTuxKart.
func VV() Profile {
	return Profile{
		Name: "VV", FullName: "VoluPlay", Genre: "Volumetric Video",
		Width: 1920, Height: 1080,
		ALBaseMs: 5, ALPerInputMs: 0.2, ALJitter: 0.09,
		ALComplexityCoupling: DefaultALComplexityCoupling,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 3.6, // per-frame geometry: the new PCIe outlier
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.PointCloud, scene.Cloth, scene.Target},
			SpawnProb:      0.10,
			DespawnProb:    0.10,
			MoveProb:       0.45,
			PoseDrift:      0.30, // every surface deforms every frame
			InputStir:      0.10, // playback-driven, barely input-coupled
			BaseComplexity: 1.2,
			ComplexityVar:  0.25,
			MotionFloor:    0.55, // never still — above STK's 0.38
		},
		GPU: gpu.Profile{
			BaseRenderMs: 8.5, RenderJitter: 0.09,
			BaseL2Miss: 0.45, TexMiss: 0.32, L2Sensitivity: 0.8,
			MemoryMB: 900, SupportsPMU: true,
		},
		Mem: mem.Profile{
			BaseMissRate: 0.80, Intensity: 0.85, Sensitivity: 0.70,
			AccessesPerMs: 1200, FootprintMB: 2600,
		},
		AppBackgroundCores: 0.75,
		VNCBackgroundCores: 1.70, // the encoder earns its keep here
		VNCMem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.32, Sensitivity: 0.45,
			AccessesPerMs: 520, FootprintMB: 380,
		},
		Codec:           codec.Codec{BaseRatio: 3.2, MotionPenalty: 1.5, MsPerMB: 1.25, Jitter: 0.07},
		HumanReactionMs: 230, HumanActProb: 0.18,
		CVLatencyMs: 72, RNNLatencyMs: 1.9,
		HeavyWeight: 3,
	}
}

// CZ is CasualZen, casual 2D/UI streaming (card games, dashboards,
// remote desktops): low everything — tiny frames, static panels, an
// idle-happy player. It is the consolidation-friendly filler tenant
// that makes bin-packing interesting: many CZs fit where one Dota2
// does not.
func CZ() Profile {
	return Profile{
		Name: "CZ", FullName: "CasualZen", Genre: "Casual 2D/UI",
		Width: 1280, Height: 720,
		ALBaseMs: 2.5, ALPerInputMs: 0.3, ALJitter: 0.07,
		// UI logic is nearly fixed-cost; a token coupling keeps the
		// explicit (non-defaulted) value honest.
		ALComplexityCoupling: 0.1,
		ASBaseMs:             0.5, ASPerMBMs: 0.13,
		UploadMBPerFrame: 0.15,
		Dynamics: scene.Dynamics{
			Kinds:          []scene.Type{scene.Panel, scene.Item, scene.Target},
			SpawnProb:      0.015,
			DespawnProb:    0.015,
			MoveProb:       0.04,
			PoseDrift:      0, // flat 2D widgets have no viewing angle
			InputStir:      0.5,
			BaseComplexity: 0.5,
			ComplexityVar:  0.15,
			MotionFloor:    0.04,
		},
		GPU: gpu.Profile{
			BaseRenderMs: 2.5, RenderJitter: 0.06,
			BaseL2Miss: 0.20, TexMiss: 0.15, L2Sensitivity: 0.3,
			MemoryMB: 160, SupportsPMU: true,
		},
		Mem: mem.Profile{
			BaseMissRate: 0.55, Intensity: 0.20, Sensitivity: 0.30,
			AccessesPerMs: 400, FootprintMB: 380,
		},
		AppBackgroundCores: 0.12,
		VNCBackgroundCores: 0.90,
		VNCMem: mem.Profile{
			BaseMissRate: 0.50, Intensity: 0.20, Sensitivity: 0.40,
			AccessesPerMs: 420, FootprintMB: 280,
		},
		Codec:           codec.Codec{BaseRatio: 12.0, MotionPenalty: 0.7, MsPerMB: 0.60, Jitter: 0.06},
		HumanReactionMs: 350, HumanActProb: 0.12,
		CVLatencyMs: 55, RNNLatencyMs: 1.5,
		HeavyWeight: 1,
	}
}
