// Package nn is a from-scratch neural-network library (pure Go, stdlib
// only) providing the layers Pictor's intelligent client needs: dense,
// 2-D convolution, pooling, ReLU, softmax classification, and an LSTM
// with backpropagation-through-time. It stands in for the paper's
// TensorFlow MobileNets/LSTM stack.
package nn

import (
	"math"
	"math/rand"

	"pictor/internal/tensor"
)

// Param is one learnable weight array with its gradient accumulator.
type Param struct {
	W []float64
	G []float64
	// Adam moments.
	m, v []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

func (p *Param) zeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// initUniform fills weights with the fan-in-scaled uniform init.
func (p *Param) initUniform(rng *rand.Rand, fanIn int) {
	scale := math.Sqrt(2.0 / float64(fanIn))
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Layer is one differentiable stage of a feed-forward network.
//
// Ownership: Forward and Backward return layer-owned scratch buffers
// that are overwritten by the next call on the same layer. Callers that
// need a result to survive a subsequent call must copy it. This is what
// keeps steady-state inference allocation-free (the intelligent client
// runs the CNN 24 times per displayed frame).
type Layer interface {
	// Forward maps input to output, caching what Backward needs.
	Forward(x []float64) []float64
	// Backward receives dLoss/dOutput, accumulates parameter gradients,
	// and returns dLoss/dInput.
	Backward(grad []float64) []float64
	// Params lists the layer's learnable parameters (may be empty).
	Params() []*Param
}

// grow returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growZero returns buf resized to n elements with every element zeroed.
func growZero(buf []float64, n int) []float64 {
	buf = grow(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	In, Out int
	w, b    *Param
	lastX   []float64
	out, dx []float64 // owned scratch, reused across calls
}

// NewDense creates a dense layer with fan-in initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, w: newParam(in * out), b: newParam(out)}
	d.w.initUniform(rng, in)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic("nn: Dense input size mismatch")
	}
	d.lastX = append(d.lastX[:0], x...)
	out := grow(d.out, d.Out)
	d.out = out
	for o := 0; o < d.Out; o++ {
		row := d.w.W[o*d.In : (o+1)*d.In]
		out[o] = d.b.W[o] + tensor.Dot(row, x)
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	dx := growZero(d.dx, d.In)
	d.dx = dx
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		if g == 0 {
			continue
		}
		d.b.G[o] += g
		row := d.w.W[o*d.In : (o+1)*d.In]
		grow := d.w.G[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.lastX[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// ReLU is the rectified-linear activation.
type ReLU struct {
	lastX   []float64
	out, dx []float64 // owned scratch, reused across calls
}

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	r.lastX = append(r.lastX[:0], x...)
	out := grow(r.out, len(x))
	r.out = out
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad []float64) []float64 {
	dx := grow(r.dx, len(grad))
	r.dx = dx
	for i, g := range grad {
		if r.lastX[i] > 0 {
			dx[i] = g
		} else {
			dx[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Conv2D is a valid-padding, stride-1 convolution over an (H, W, C)
// input producing (H-k+1, W-k+1, OutC). Implemented with im2col.
type Conv2D struct {
	H, W, InC, OutC, K int
	w, b               *Param
	lastCols           *tensor.Tensor
	out, dcols, dx     []float64      // owned scratch, reused across calls
	inT, kmat          *tensor.Tensor // cached headers (no per-call FromSlice)
}

// NewConv2D creates a convolution layer.
func NewConv2D(h, w, inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{H: h, W: w, InC: inC, OutC: outC, K: k,
		w: newParam(k * k * inC * outC), b: newParam(outC)}
	c.w.initUniform(rng, k*k*inC)
	return c
}

// OutH reports the output height.
func (c *Conv2D) OutH() int { return c.H - c.K + 1 }

// OutW reports the output width.
func (c *Conv2D) OutW() int { return c.W - c.K + 1 }

// OutLen reports the flattened output length.
func (c *Conv2D) OutLen() int { return c.OutH() * c.OutW() * c.OutC }

// Forward implements Layer. Input is flattened (H, W, C); output is
// flattened (OutH, OutW, OutC).
func (c *Conv2D) Forward(x []float64) []float64 {
	if len(x) != c.H*c.W*c.InC {
		panic("nn: Conv2D input size mismatch")
	}
	if c.lastCols == nil {
		c.lastCols = tensor.New(c.OutH()*c.OutW(), c.K*c.K*c.InC)
		c.inT = tensor.FromSlice(x, c.H, c.W, c.InC)
		c.kmat = tensor.FromSlice(c.w.W, c.OutC, c.K*c.K*c.InC)
	}
	in := c.inT // cached header; rebind the data to this call's input
	in.Data = x
	cols := c.lastCols // (outH*outW, K*K*InC), reused across frames
	tensor.Im2ColInto(cols, in, c.K, c.K)
	kmat := c.kmat
	rows, depth := cols.Shape[0], cols.Shape[1]
	out := grow(c.out, rows*c.OutC)
	c.out = out
	for r := 0; r < rows; r++ {
		patch := cols.Data[r*depth : (r+1)*depth]
		for o := 0; o < c.OutC; o++ {
			out[r*c.OutC+o] = c.b.W[o] + tensor.Dot(kmat.Data[o*depth:(o+1)*depth], patch)
		}
	}
	return out
}

// Backward implements Layer. For compactness it propagates gradients to
// parameters and to the input via the im2col mapping.
func (c *Conv2D) Backward(grad []float64) []float64 {
	depth := c.K * c.K * c.InC
	rows := c.OutH() * c.OutW()
	dcols := growZero(c.dcols, rows*depth)
	c.dcols = dcols
	for r := 0; r < rows; r++ {
		patch := c.lastCols.Data[r*depth : (r+1)*depth]
		for o := 0; o < c.OutC; o++ {
			g := grad[r*c.OutC+o]
			if g == 0 {
				continue
			}
			c.b.G[o] += g
			wrow := c.w.W[o*depth : (o+1)*depth]
			growW := c.w.G[o*depth : (o+1)*depth]
			drow := dcols[r*depth : (r+1)*depth]
			for i := 0; i < depth; i++ {
				growW[i] += g * patch[i]
				drow[i] += g * wrow[i]
			}
		}
	}
	// Scatter column gradients back to input positions.
	dx := growZero(c.dx, c.H*c.W*c.InC)
	c.dx = dx
	ow := c.OutW()
	r := 0
	for oy := 0; oy < c.OutH(); oy++ {
		for ox := 0; ox < ow; ox++ {
			col := 0
			for ky := 0; ky < c.K; ky++ {
				for kx := 0; kx < c.K; kx++ {
					base := ((oy+ky)*c.W + ox + kx) * c.InC
					for ch := 0; ch < c.InC; ch++ {
						dx[base+ch] += dcols[r*depth+col]
						col++
					}
				}
			}
			r++
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// MaxPool2 is 2×2 max pooling with stride 2 over an (H, W, C) input.
type MaxPool2 struct {
	H, W, C int
	argmax  []int
	out, dx []float64 // owned scratch, reused across calls
}

// NewMaxPool2 creates the pooling layer; H and W must be even.
func NewMaxPool2(h, w, c int) *MaxPool2 {
	if h%2 != 0 || w%2 != 0 {
		panic("nn: MaxPool2 needs even dimensions")
	}
	return &MaxPool2{H: h, W: w, C: c}
}

// OutLen reports the flattened output length.
func (p *MaxPool2) OutLen() int { return p.H / 2 * p.W / 2 * p.C }

// Forward implements Layer.
func (p *MaxPool2) Forward(x []float64) []float64 {
	oh, ow := p.H/2, p.W/2
	out := grow(p.out, oh*ow*p.C)
	p.out = out
	if cap(p.argmax) < len(out) {
		p.argmax = make([]int, len(out))
	}
	p.argmax = p.argmax[:len(out)]
	// The 2×2 window is unrolled with direct index arithmetic; the
	// first-strictly-greater tie-breaking matches the original loop
	// (scan order (0,0), (0,1), (1,0), (1,1)), so outputs and argmax
	// indices are identical.
	for oy := 0; oy < oh; oy++ {
		rowTop := oy * 2 * p.W * p.C
		rowBot := rowTop + p.W*p.C
		for ox := 0; ox < ow; ox++ {
			i00 := rowTop + ox*2*p.C
			o := (oy*ow + ox) * p.C
			for ch := 0; ch < p.C; ch++ {
				a := i00 + ch
				b := a + p.C
				c := rowBot + ox*2*p.C + ch
				d := c + p.C
				best, bestIdx := x[a], a
				if x[b] > best {
					best, bestIdx = x[b], b
				}
				if x[c] > best {
					best, bestIdx = x[c], c
				}
				if x[d] > best {
					best, bestIdx = x[d], d
				}
				out[o+ch] = best
				p.argmax[o+ch] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad []float64) []float64 {
	dx := growZero(p.dx, p.H*p.W*p.C)
	p.dx = dx
	for o, g := range grad {
		dx[p.argmax[o]] += g
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// Sequential chains layers into one network.
type Sequential struct {
	Layers []Layer
}

// Forward runs the full stack.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the full reverse pass.
func (s *Sequential) Backward(grad []float64) []float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params gathers every layer's parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SoftmaxCrossEntropy computes loss and dLoss/dLogits for one example.
func SoftmaxCrossEntropy(logits []float64, label int) (loss float64, grad []float64) {
	probs := tensor.Softmax(logits)
	grad = make([]float64, len(logits))
	copy(grad, probs)
	grad[label] -= 1
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p), grad
}
