// Package nn is a from-scratch neural-network library (pure Go, stdlib
// only) providing the layers Pictor's intelligent client needs: dense,
// 2-D convolution, pooling, ReLU, softmax classification, and an LSTM
// with backpropagation-through-time. It stands in for the paper's
// TensorFlow MobileNets/LSTM stack.
package nn

import (
	"math"
	"math/rand"

	"pictor/internal/tensor"
)

// Param is one learnable weight array with its gradient accumulator.
type Param struct {
	W []float64
	G []float64
	// Adam moments.
	m, v []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

func (p *Param) zeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// initUniform fills weights with the fan-in-scaled uniform init.
func (p *Param) initUniform(rng *rand.Rand, fanIn int) {
	scale := math.Sqrt(2.0 / float64(fanIn))
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Layer is one differentiable stage of a feed-forward network.
//
// Ownership: Forward and Backward return layer-owned scratch buffers
// that are overwritten by the next call on the same layer. Callers that
// need a result to survive a subsequent call must copy it. This is what
// keeps steady-state inference allocation-free (the intelligent client
// runs the CNN 24 times per displayed frame).
type Layer interface {
	// Forward maps input to output, caching what Backward needs.
	Forward(x []float64) []float64
	// Backward receives dLoss/dOutput, accumulates parameter gradients,
	// and returns dLoss/dInput.
	Backward(grad []float64) []float64
	// Params lists the layer's learnable parameters (may be empty).
	Params() []*Param
}

// grow returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growZero returns buf resized to n elements with every element zeroed.
func growZero(buf []float64, n int) []float64 {
	buf = grow(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// ensureTensor reshapes t to the given shape, reusing its storage when
// the capacity allows (batch sizes fluctuate tick to tick; the scratch
// must not reallocate every time the batch shrinks). Contents are
// unspecified — callers fully overwrite.
func ensureTensor(t *tensor.Tensor, shape ...int) *tensor.Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if t == nil || cap(t.Data) < n {
		return tensor.New(shape...)
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	In, Out  int
	w, b     *Param
	lastX    []float64
	out, dx  []float64      // owned scratch, reused across calls
	wT       *tensor.Tensor // cached (Out, In) header over w.W
	batchOut *tensor.Tensor // owned batch scratch
}

// NewDense creates a dense layer with fan-in initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, w: newParam(in * out), b: newParam(out)}
	d.w.initUniform(rng, in)
	return d
}

// weightT returns the cached (Out, In) tensor view of the weights —
// already the transposed-B layout MatMulTransBInto wants.
func (d *Dense) weightT() *tensor.Tensor {
	if d.wT == nil {
		d.wT = tensor.FromSlice(d.w.W, d.Out, d.In)
	}
	return d.wT
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic("nn: Dense input size mismatch")
	}
	d.lastX = append(d.lastX[:0], x...)
	out := grow(d.out, d.Out)
	d.out = out
	tensor.MatVecInto(out, d.weightT(), x)
	for o, bv := range d.b.W {
		out[o] += bv
	}
	return out
}

// ForwardBatch maps a (B, In) batch to the layer-owned (B, Out) output
// in one transposed matmul. Row r equals Forward(x row r) bit-for-bit:
// the per-element summation order is Dot's, and the bias add commutes.
// Inference only (no Backward cache); the result is overwritten by the
// next ForwardBatch call.
func (d *Dense) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 2 || x.Shape[1] != d.In {
		panic("nn: Dense batch input shape mismatch")
	}
	bn := x.Shape[0]
	out := ensureTensor(d.batchOut, bn, d.Out)
	d.batchOut = out
	tensor.MatMulTransBInto(out, x, d.weightT())
	for r := 0; r < bn; r++ {
		row := out.Data[r*d.Out : (r+1)*d.Out]
		for o, bv := range d.b.W {
			row[o] += bv
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	dx := growZero(d.dx, d.In)
	d.dx = dx
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		if g == 0 {
			continue
		}
		d.b.G[o] += g
		row := d.w.W[o*d.In : (o+1)*d.In]
		grow := d.w.G[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.lastX[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// ReLU is the rectified-linear activation.
type ReLU struct {
	lastX   []float64
	out, dx []float64 // owned scratch, reused across calls
}

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	r.lastX = append(r.lastX[:0], x...)
	out := grow(r.out, len(x))
	r.out = out
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
	return out
}

// ForwardBatch applies the activation elementwise in place and returns
// x (ReLU needs no scratch; max(0, v) is exact). Inference only — no
// Backward cache is recorded.
func (r *ReLU) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	for i, v := range x.Data {
		if !(v > 0) { // matches Forward exactly, including NaN → 0
			x.Data[i] = 0
		}
	}
	return x
}

// Backward implements Layer.
func (r *ReLU) Backward(grad []float64) []float64 {
	dx := grow(r.dx, len(grad))
	r.dx = dx
	for i, g := range grad {
		if r.lastX[i] > 0 {
			dx[i] = g
		} else {
			dx[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Conv2D is a valid-padding, stride-1 convolution over an (H, W, C)
// input producing (H-k+1, W-k+1, OutC). Implemented with im2col.
type Conv2D struct {
	H, W, InC, OutC, K int
	w, b               *Param
	lastCols           *tensor.Tensor
	out, dcols, dx     []float64      // owned scratch, reused across calls
	inT, kmat, outT    *tensor.Tensor // cached headers (no per-call FromSlice)
	batchOut           *tensor.Tensor // owned batch scratch
}

// NewConv2D creates a convolution layer.
func NewConv2D(h, w, inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{H: h, W: w, InC: inC, OutC: outC, K: k,
		w: newParam(k * k * inC * outC), b: newParam(outC)}
	c.w.initUniform(rng, k*k*inC)
	return c
}

// OutH reports the output height.
func (c *Conv2D) OutH() int { return c.H - c.K + 1 }

// OutW reports the output width.
func (c *Conv2D) OutW() int { return c.W - c.K + 1 }

// OutLen reports the flattened output length.
func (c *Conv2D) OutLen() int { return c.OutH() * c.OutW() * c.OutC }

// kernelMat returns the cached (OutC, K·K·InC) tensor view of the
// kernel weights — the transposed-B operand of the im2col matmul.
func (c *Conv2D) kernelMat() *tensor.Tensor {
	if c.kmat == nil {
		c.kmat = tensor.FromSlice(c.w.W, c.OutC, c.K*c.K*c.InC)
	}
	return c.kmat
}

// addBias adds the per-channel bias to every row of a (rows, OutC)
// output block.
func (c *Conv2D) addBias(out []float64, rows int) {
	for r := 0; r < rows; r++ {
		row := out[r*c.OutC : (r+1)*c.OutC]
		for o, bv := range c.b.W {
			row[o] += bv
		}
	}
}

// Forward implements Layer. Input is flattened (H, W, C); output is
// flattened (OutH, OutW, OutC).
func (c *Conv2D) Forward(x []float64) []float64 {
	if len(x) != c.H*c.W*c.InC {
		panic("nn: Conv2D input size mismatch")
	}
	if c.lastCols == nil {
		c.lastCols = tensor.New(c.OutH()*c.OutW(), c.K*c.K*c.InC)
		c.inT = tensor.FromSlice(x, c.H, c.W, c.InC)
	}
	in := c.inT // cached header; rebind the data to this call's input
	in.Data = x
	cols := c.lastCols // (outH*outW, K*K*InC), reused across frames
	tensor.Im2ColInto(cols, in, c.K, c.K)
	rows := cols.Shape[0]
	out := grow(c.out, rows*c.OutC)
	c.out = out
	if c.outT == nil {
		c.outT = tensor.FromSlice(out, rows, c.OutC)
	}
	c.outT.Data = out // rebind in case grow reallocated
	tensor.MatMulTransBInto(c.outT, cols, c.kernelMat())
	c.addBias(out, rows)
	return out
}

// ForwardBatch convolves a (B, H, W, C) batch directly (no column
// matrix is materialized), returning the layer-owned (B·OutH·OutW,
// OutC) output: frame b's rows occupy the contiguous block starting at
// b·OutH·OutW, equal bit-for-bit to Forward on that frame alone.
// Inference only; the result is overwritten by the next ForwardBatch
// call.
func (c *Conv2D) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	return c.forwardBatch(x, false)
}

// ForwardBatchReLU is ForwardBatch with the ReLU activation fused into
// the output store — one pass instead of a convolve pass plus an
// elementwise rewrite of the whole block. Identical bits to
// ForwardBatch followed by ReLU.ForwardBatch.
func (c *Conv2D) ForwardBatchReLU(x *tensor.Tensor) *tensor.Tensor {
	return c.forwardBatch(x, true)
}

func (c *Conv2D) forwardBatch(x *tensor.Tensor, relu bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Shape[1] != c.H || x.Shape[2] != c.W || x.Shape[3] != c.InC {
		panic("nn: Conv2D batch input shape mismatch")
	}
	bn := x.Shape[0]
	rows := bn * c.OutH() * c.OutW()
	out := ensureTensor(c.batchOut, rows, c.OutC)
	c.batchOut = out
	c.convDirect(out.Data, x.Data, bn, relu)
	return out
}

// convDirect convolves `frames` stacked (H, W, C) frames in src into
// dst ((frames·OutH·OutW, OutC) row-major). Per output element it
// accumulates the K·K·InC products in exactly im2col row order (ky-
// major, then kx·c), then adds the channel bias, then optionally
// applies ReLU — bit-identical to the im2col → MatMulTransBInto →
// addBias → ReLU pipeline it replaces, without writing and re-reading
// the (rows, K·K·InC) column matrix.
func (c *Conv2D) convDirect(dst, src []float64, frames int, relu bool) {
	oh, ow := c.OutH(), c.OutW()
	kw := c.K * c.InC // receptive-field row-segment width
	kmat := c.w.W     // (OutC, K·K·InC) row-major
	bias := c.b.W
	frameLen := c.H * c.W * c.InC
	rowStride := c.W * c.InC
	di := 0
	if c.K == 3 && c.InC == 1 {
		// The detect geometry (3×3 kernel over one channel): the nine
		// receptive-field taps are loaded once per position and the
		// nine-term dot is fully unrolled in im2col row order.
		for f := 0; f < frames; f++ {
			fr := src[f*frameLen : (f+1)*frameLen]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					base := oy*rowStride + ox
					r0 := fr[base : base+3]
					r1 := fr[base+rowStride : base+rowStride+3]
					r2 := fr[base+2*rowStride : base+2*rowStride+3]
					p0, p1, p2 := r0[0], r0[1], r0[2]
					p3, p4, p5 := r1[0], r1[1], r1[2]
					p6, p7, p8 := r2[0], r2[1], r2[2]
					for oc := 0; oc < c.OutC; oc++ {
						k := kmat[oc*9 : oc*9+9]
						// Nine sequential += terms, matching Dot's
						// accumulation (including its 0 start) exactly.
						var s float64
						s += p0 * k[0]
						s += p1 * k[1]
						s += p2 * k[2]
						s += p3 * k[3]
						s += p4 * k[4]
						s += p5 * k[5]
						s += p6 * k[6]
						s += p7 * k[7]
						s += p8 * k[8]
						s += bias[oc]
						if relu && !(s > 0) {
							s = 0
						}
						dst[di+oc] = s
					}
					di += c.OutC
				}
			}
		}
		return
	}
	for f := 0; f < frames; f++ {
		fr := src[f*frameLen : (f+1)*frameLen]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				base := oy*rowStride + ox*c.InC
				for oc := 0; oc < c.OutC; oc++ {
					krow := kmat[oc*c.K*kw : (oc+1)*c.K*kw]
					var s float64
					for ky := 0; ky < c.K; ky++ {
						seg := fr[base+ky*rowStride : base+ky*rowStride+kw]
						kk := krow[ky*kw : ky*kw+kw]
						for i, v := range seg {
							s += v * kk[i]
						}
					}
					s += bias[oc]
					if relu && !(s > 0) {
						s = 0
					}
					dst[di+oc] = s
				}
				di += c.OutC
			}
		}
	}
}

// Backward implements Layer. For compactness it propagates gradients to
// parameters and to the input via the im2col mapping.
func (c *Conv2D) Backward(grad []float64) []float64 {
	depth := c.K * c.K * c.InC
	rows := c.OutH() * c.OutW()
	dcols := growZero(c.dcols, rows*depth)
	c.dcols = dcols
	for r := 0; r < rows; r++ {
		patch := c.lastCols.Data[r*depth : (r+1)*depth]
		for o := 0; o < c.OutC; o++ {
			g := grad[r*c.OutC+o]
			if g == 0 {
				continue
			}
			c.b.G[o] += g
			wrow := c.w.W[o*depth : (o+1)*depth]
			growW := c.w.G[o*depth : (o+1)*depth]
			drow := dcols[r*depth : (r+1)*depth]
			for i := 0; i < depth; i++ {
				growW[i] += g * patch[i]
				drow[i] += g * wrow[i]
			}
		}
	}
	// Scatter column gradients back to input positions.
	dx := growZero(c.dx, c.H*c.W*c.InC)
	c.dx = dx
	ow := c.OutW()
	r := 0
	for oy := 0; oy < c.OutH(); oy++ {
		for ox := 0; ox < ow; ox++ {
			col := 0
			for ky := 0; ky < c.K; ky++ {
				for kx := 0; kx < c.K; kx++ {
					base := ((oy+ky)*c.W + ox + kx) * c.InC
					for ch := 0; ch < c.InC; ch++ {
						dx[base+ch] += dcols[r*depth+col]
						col++
					}
				}
			}
			r++
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// MaxPool2 is 2×2 max pooling with stride 2 over an (H, W, C) input.
type MaxPool2 struct {
	H, W, C  int
	argmax   []int
	out, dx  []float64      // owned scratch, reused across calls
	batchOut *tensor.Tensor // owned batch scratch
}

// NewMaxPool2 creates the pooling layer; H and W must be even.
func NewMaxPool2(h, w, c int) *MaxPool2 {
	if h%2 != 0 || w%2 != 0 {
		panic("nn: MaxPool2 needs even dimensions")
	}
	return &MaxPool2{H: h, W: w, C: c}
}

// OutLen reports the flattened output length.
func (p *MaxPool2) OutLen() int { return p.H / 2 * p.W / 2 * p.C }

// Forward implements Layer.
func (p *MaxPool2) Forward(x []float64) []float64 {
	oh, ow := p.H/2, p.W/2
	out := grow(p.out, oh*ow*p.C)
	p.out = out
	if cap(p.argmax) < len(out) {
		p.argmax = make([]int, len(out))
	}
	p.argmax = p.argmax[:len(out)]
	// The 2×2 window is unrolled with direct index arithmetic; the
	// first-strictly-greater tie-breaking matches the original loop
	// (scan order (0,0), (0,1), (1,0), (1,1)), so outputs and argmax
	// indices are identical.
	for oy := 0; oy < oh; oy++ {
		rowTop := oy * 2 * p.W * p.C
		rowBot := rowTop + p.W*p.C
		for ox := 0; ox < ow; ox++ {
			i00 := rowTop + ox*2*p.C
			o := (oy*ow + ox) * p.C
			for ch := 0; ch < p.C; ch++ {
				a := i00 + ch
				b := a + p.C
				c := rowBot + ox*2*p.C + ch
				d := c + p.C
				best, bestIdx := x[a], a
				if x[b] > best {
					best, bestIdx = x[b], b
				}
				if x[c] > best {
					best, bestIdx = x[c], c
				}
				if x[d] > best {
					best, bestIdx = x[d], d
				}
				out[o+ch] = best
				p.argmax[o+ch] = bestIdx
			}
		}
	}
	return out
}

// ForwardBatch pools B frames packed contiguously in x (any tensor
// whose flat length is a multiple of H·W·C), returning the layer-owned
// (B, OutLen) output. Max selection is exact, so each row equals
// Forward on that frame bit-for-bit. Inference only: no argmax is
// recorded, and the result is overwritten by the next call.
func (p *MaxPool2) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	frameLen := p.H * p.W * p.C
	if x.Len()%frameLen != 0 {
		panic("nn: MaxPool2 batch input not a whole number of frames")
	}
	bn := x.Len() / frameLen
	outLen := p.OutLen()
	outT := ensureTensor(p.batchOut, bn, outLen)
	p.batchOut = outT
	oh, ow := p.H/2, p.W/2
	for b := 0; b < bn; b++ {
		in := x.Data[b*frameLen : (b+1)*frameLen]
		out := outT.Data[b*outLen : (b+1)*outLen]
		for oy := 0; oy < oh; oy++ {
			rowTop := oy * 2 * p.W * p.C
			rowBot := rowTop + p.W*p.C
			for ox := 0; ox < ow; ox++ {
				i00 := rowTop + ox*2*p.C
				o := (oy*ow + ox) * p.C
				for ch := 0; ch < p.C; ch++ {
					a := i00 + ch
					best := in[a]
					if v := in[a+p.C]; v > best {
						best = v
					}
					c := rowBot + ox*2*p.C + ch
					if v := in[c]; v > best {
						best = v
					}
					if v := in[c+p.C]; v > best {
						best = v
					}
					out[o+ch] = best
				}
			}
		}
	}
	return outT
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad []float64) []float64 {
	dx := growZero(p.dx, p.H*p.W*p.C)
	p.dx = dx
	for o, g := range grad {
		dx[p.argmax[o]] += g
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// Sequential chains layers into one network.
type Sequential struct {
	Layers []Layer
}

// Forward runs the full stack.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the full reverse pass.
func (s *Sequential) Backward(grad []float64) []float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params gathers every layer's parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SoftmaxCrossEntropy computes loss and dLoss/dLogits for one example.
func SoftmaxCrossEntropy(logits []float64, label int) (loss float64, grad []float64) {
	probs := tensor.Softmax(logits)
	grad = make([]float64, len(logits))
	copy(grad, probs)
	grad[label] -= 1
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p), grad
}
