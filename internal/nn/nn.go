// Package nn is a from-scratch neural-network library (pure Go, stdlib
// only) providing the layers Pictor's intelligent client needs: dense,
// 2-D convolution, pooling, ReLU, softmax classification, and an LSTM
// with backpropagation-through-time. It stands in for the paper's
// TensorFlow MobileNets/LSTM stack.
package nn

import (
	"math"
	"math/rand"

	"pictor/internal/tensor"
)

// Param is one learnable weight array with its gradient accumulator.
type Param struct {
	W []float64
	G []float64
	// Adam moments.
	m, v []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

func (p *Param) zeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// initUniform fills weights with the fan-in-scaled uniform init.
func (p *Param) initUniform(rng *rand.Rand, fanIn int) {
	scale := math.Sqrt(2.0 / float64(fanIn))
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Layer is one differentiable stage of a feed-forward network.
type Layer interface {
	// Forward maps input to output, caching what Backward needs.
	Forward(x []float64) []float64
	// Backward receives dLoss/dOutput, accumulates parameter gradients,
	// and returns dLoss/dInput.
	Backward(grad []float64) []float64
	// Params lists the layer's learnable parameters (may be empty).
	Params() []*Param
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	In, Out int
	w, b    *Param
	lastX   []float64
}

// NewDense creates a dense layer with fan-in initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, w: newParam(in * out), b: newParam(out)}
	d.w.initUniform(rng, in)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic("nn: Dense input size mismatch")
	}
	d.lastX = append(d.lastX[:0], x...)
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.w.W[o*d.In : (o+1)*d.In]
		out[o] = d.b.W[o] + tensor.Dot(row, x)
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		if g == 0 {
			continue
		}
		d.b.G[o] += g
		row := d.w.W[o*d.In : (o+1)*d.In]
		grow := d.w.G[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.lastX[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// ReLU is the rectified-linear activation.
type ReLU struct{ lastX []float64 }

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	r.lastX = append(r.lastX[:0], x...)
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad []float64) []float64 {
	dx := make([]float64, len(grad))
	for i, g := range grad {
		if r.lastX[i] > 0 {
			dx[i] = g
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Conv2D is a valid-padding, stride-1 convolution over an (H, W, C)
// input producing (H-k+1, W-k+1, OutC). Implemented with im2col.
type Conv2D struct {
	H, W, InC, OutC, K int
	w, b               *Param
	lastCols           *tensor.Tensor
}

// NewConv2D creates a convolution layer.
func NewConv2D(h, w, inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{H: h, W: w, InC: inC, OutC: outC, K: k,
		w: newParam(k * k * inC * outC), b: newParam(outC)}
	c.w.initUniform(rng, k*k*inC)
	return c
}

// OutH reports the output height.
func (c *Conv2D) OutH() int { return c.H - c.K + 1 }

// OutW reports the output width.
func (c *Conv2D) OutW() int { return c.W - c.K + 1 }

// OutLen reports the flattened output length.
func (c *Conv2D) OutLen() int { return c.OutH() * c.OutW() * c.OutC }

// Forward implements Layer. Input is flattened (H, W, C); output is
// flattened (OutH, OutW, OutC).
func (c *Conv2D) Forward(x []float64) []float64 {
	in := tensor.FromSlice(x, c.H, c.W, c.InC)
	cols := tensor.Im2Col(in, c.K, c.K) // (outH*outW, K*K*InC)
	c.lastCols = cols
	kmat := tensor.FromSlice(c.w.W, c.OutC, c.K*c.K*c.InC)
	rows, depth := cols.Shape[0], cols.Shape[1]
	out := make([]float64, rows*c.OutC)
	for r := 0; r < rows; r++ {
		patch := cols.Data[r*depth : (r+1)*depth]
		for o := 0; o < c.OutC; o++ {
			out[r*c.OutC+o] = c.b.W[o] + tensor.Dot(kmat.Data[o*depth:(o+1)*depth], patch)
		}
	}
	return out
}

// Backward implements Layer. For compactness it propagates gradients to
// parameters and to the input via the im2col mapping.
func (c *Conv2D) Backward(grad []float64) []float64 {
	depth := c.K * c.K * c.InC
	rows := c.OutH() * c.OutW()
	dcols := make([]float64, rows*depth)
	for r := 0; r < rows; r++ {
		patch := c.lastCols.Data[r*depth : (r+1)*depth]
		for o := 0; o < c.OutC; o++ {
			g := grad[r*c.OutC+o]
			if g == 0 {
				continue
			}
			c.b.G[o] += g
			wrow := c.w.W[o*depth : (o+1)*depth]
			growW := c.w.G[o*depth : (o+1)*depth]
			drow := dcols[r*depth : (r+1)*depth]
			for i := 0; i < depth; i++ {
				growW[i] += g * patch[i]
				drow[i] += g * wrow[i]
			}
		}
	}
	// Scatter column gradients back to input positions.
	dx := make([]float64, c.H*c.W*c.InC)
	ow := c.OutW()
	r := 0
	for oy := 0; oy < c.OutH(); oy++ {
		for ox := 0; ox < ow; ox++ {
			col := 0
			for ky := 0; ky < c.K; ky++ {
				for kx := 0; kx < c.K; kx++ {
					base := ((oy+ky)*c.W + ox + kx) * c.InC
					for ch := 0; ch < c.InC; ch++ {
						dx[base+ch] += dcols[r*depth+col]
						col++
					}
				}
			}
			r++
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// MaxPool2 is 2×2 max pooling with stride 2 over an (H, W, C) input.
type MaxPool2 struct {
	H, W, C int
	argmax  []int
}

// NewMaxPool2 creates the pooling layer; H and W must be even.
func NewMaxPool2(h, w, c int) *MaxPool2 {
	if h%2 != 0 || w%2 != 0 {
		panic("nn: MaxPool2 needs even dimensions")
	}
	return &MaxPool2{H: h, W: w, C: c}
}

// OutLen reports the flattened output length.
func (p *MaxPool2) OutLen() int { return p.H / 2 * p.W / 2 * p.C }

// Forward implements Layer.
func (p *MaxPool2) Forward(x []float64) []float64 {
	oh, ow := p.H/2, p.W/2
	out := make([]float64, oh*ow*p.C)
	p.argmax = make([]int, len(out))
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ch := 0; ch < p.C; ch++ {
				best := math.Inf(-1)
				bestIdx := -1
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := ((oy*2+dy)*p.W+ox*2+dx)*p.C + ch
						if x[idx] > best {
							best = x[idx]
							bestIdx = idx
						}
					}
				}
				o := (oy*ow+ox)*p.C + ch
				out[o] = best
				p.argmax[o] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad []float64) []float64 {
	dx := make([]float64, p.H*p.W*p.C)
	for o, g := range grad {
		dx[p.argmax[o]] += g
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// Sequential chains layers into one network.
type Sequential struct {
	Layers []Layer
}

// Forward runs the full stack.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the full reverse pass.
func (s *Sequential) Backward(grad []float64) []float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params gathers every layer's parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SoftmaxCrossEntropy computes loss and dLoss/dLogits for one example.
func SoftmaxCrossEntropy(logits []float64, label int) (loss float64, grad []float64) {
	probs := tensor.Softmax(logits)
	grad = make([]float64, len(logits))
	copy(grad, probs)
	grad[label] -= 1
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p), grad
}
