package nn

import (
	"bytes"
	"encoding/gob"
	"math"
)

// Adam is the Adam optimizer (Kingma & Ba) over a parameter set.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	Clip   float64 // max gradient L2 norm per step; 0 disables clipping
	t      int
	params []*Param
}

// NewAdam creates an optimizer with standard hyperparameters.
func NewAdam(params []*Param, lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5, params: params}
}

// Step applies one update from the accumulated gradients, then zeroes
// them.
func (a *Adam) Step() {
	a.t++
	if a.Clip > 0 {
		var norm float64
		for _, p := range a.params {
			for _, g := range p.G {
				norm += g * g
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.Clip {
			scale := a.Clip / norm
			for _, p := range a.params {
				for i := range p.G {
					p.G[i] *= scale
				}
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range a.params {
		if p.m == nil {
			p.m = make([]float64, len(p.W))
			p.v = make([]float64, len(p.W))
		}
		for i, g := range p.G {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mHat := p.m[i] / bc1
			vHat := p.v[i] / bc2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		p.zeroGrad()
	}
}

// ZeroGrad clears all gradients without updating.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.zeroGrad()
	}
}

// SaveWeights serializes a parameter set (gob encoding).
func SaveWeights(params []*Param) ([]byte, error) {
	var ws [][]float64
	for _, p := range params {
		ws = append(ws, p.W)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ws); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadWeights restores a parameter set saved with SaveWeights. The
// parameter shapes must match.
func LoadWeights(params []*Param, data []byte) error {
	var ws [][]float64
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ws); err != nil {
		return err
	}
	if len(ws) != len(params) {
		return errShape
	}
	for i, p := range params {
		if len(ws[i]) != len(p.W) {
			return errShape
		}
		copy(p.W, ws[i])
	}
	return nil
}

type shapeError struct{}

func (shapeError) Error() string { return "nn: weight shape mismatch" }

var errShape = shapeError{}
