package nn

import (
	"math"
	"math/rand"
)

// LSTM is a single-layer Long Short-Term Memory network (Hochreiter &
// Schmidhuber 1997 — the paper's action-generation model), trained with
// backpropagation through time.
type LSTM struct {
	InSize, Hidden int
	// Gate weights, stacked [input; forget; cell; output] × (in+hidden+1).
	w *Param

	// Inference state.
	h, c []float64

	// BPTT caches (one entry per timestep of the current sequence).
	xs, hs, cs      [][]float64
	gi, gf, gg, go_ [][]float64
	training        bool

	// Inference scratch (reused across Steps outside training; BPTT
	// needs per-step copies, so training allocates as before).
	sPrevH, sPrevC, sZi, sZf, sZg, sZo []float64
}

// NewLSTM creates an LSTM with forget-gate bias initialized positive
// (standard trick for gradient flow early in training).
func NewLSTM(inSize, hidden int, rng *rand.Rand) *LSTM {
	cols := inSize + hidden + 1 // +1: bias column
	l := &LSTM{InSize: inSize, Hidden: hidden, w: newParam(4 * hidden * cols)}
	l.w.initUniform(rng, inSize+hidden)
	for j := 0; j < hidden; j++ {
		l.w.W[l.widx(1, j, cols-1)] = 1.0 // forget bias
	}
	l.Reset()
	return l
}

// widx indexes weight (gate g ∈ 0..3, unit j, column k).
func (l *LSTM) widx(g, j, k int) int {
	cols := l.InSize + l.Hidden + 1
	return (g*l.Hidden+j)*cols + k
}

// Reset clears the recurrent state and BPTT caches. The state buffers
// are zeroed in place when already allocated (a new session must not
// cost a new allocation in a long-running client).
func (l *LSTM) Reset() {
	if len(l.h) != l.Hidden {
		l.h = make([]float64, l.Hidden)
		l.c = make([]float64, l.Hidden)
	} else {
		for i := range l.h {
			l.h[i] = 0
			l.c[i] = 0
		}
	}
	l.xs, l.hs, l.cs = nil, nil, nil
	l.gi, l.gf, l.gg, l.go_ = nil, nil, nil, nil
}

// SetTraining switches BPTT caching on or off.
func (l *LSTM) SetTraining(t bool) { l.training = t }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Step consumes one input vector and returns the new hidden state. The
// returned slice aliases the LSTM's own state buffer and is overwritten
// by the next Step; copy it to retain it across steps.
func (l *LSTM) Step(x []float64) []float64 {
	if len(x) != l.InSize {
		panic("nn: LSTM input size mismatch")
	}
	cols := l.InSize + l.Hidden + 1
	var prevH, prevC, zi, zf, zg, zo []float64
	if l.training {
		// BPTT retains these per step; they must be fresh allocations.
		prevH = append([]float64(nil), l.h...)
		prevC = append([]float64(nil), l.c...)
		zi = make([]float64, l.Hidden)
		zf = make([]float64, l.Hidden)
		zg = make([]float64, l.Hidden)
		zo = make([]float64, l.Hidden)
	} else {
		l.sPrevH = append(l.sPrevH[:0], l.h...)
		l.sPrevC = append(l.sPrevC[:0], l.c...)
		prevH, prevC = l.sPrevH, l.sPrevC
		l.sZi = grow(l.sZi, l.Hidden)
		l.sZf = grow(l.sZf, l.Hidden)
		l.sZg = grow(l.sZg, l.Hidden)
		l.sZo = grow(l.sZo, l.Hidden)
		zi, zf, zg, zo = l.sZi, l.sZf, l.sZg, l.sZo
	}
	for j := 0; j < l.Hidden; j++ {
		// Row slices per gate (the widx arithmetic hoisted out of the
		// inner loops; accumulation order is unchanged).
		rowI := l.w.W[(0*l.Hidden+j)*cols : (0*l.Hidden+j+1)*cols]
		rowF := l.w.W[(1*l.Hidden+j)*cols : (1*l.Hidden+j+1)*cols]
		rowG := l.w.W[(2*l.Hidden+j)*cols : (2*l.Hidden+j+1)*cols]
		rowO := l.w.W[(3*l.Hidden+j)*cols : (3*l.Hidden+j+1)*cols]
		var si, sf, sg, so float64
		for k := 0; k < l.InSize; k++ {
			xv := x[k]
			if xv == 0 {
				continue
			}
			si += rowI[k] * xv
			sf += rowF[k] * xv
			sg += rowG[k] * xv
			so += rowO[k] * xv
		}
		for k := 0; k < l.Hidden; k++ {
			hv := prevH[k]
			if hv == 0 {
				continue
			}
			si += rowI[l.InSize+k] * hv
			sf += rowF[l.InSize+k] * hv
			sg += rowG[l.InSize+k] * hv
			so += rowO[l.InSize+k] * hv
		}
		si += rowI[cols-1]
		sf += rowF[cols-1]
		sg += rowG[cols-1]
		so += rowO[cols-1]
		zi[j] = sigmoid(si)
		zf[j] = sigmoid(sf)
		zg[j] = math.Tanh(sg)
		zo[j] = sigmoid(so)
		l.c[j] = zf[j]*prevC[j] + zi[j]*zg[j]
		l.h[j] = zo[j] * math.Tanh(l.c[j])
	}

	if l.training {
		l.xs = append(l.xs, append([]float64(nil), x...))
		l.hs = append(l.hs, prevH)
		l.cs = append(l.cs, prevC)
		l.gi = append(l.gi, zi)
		l.gf = append(l.gf, zf)
		l.gg = append(l.gg, zg)
		l.go_ = append(l.go_, zo)
	}
	return l.h
}

// Backward runs BPTT over the cached sequence. dHs[t] is dLoss/dh at
// step t (same length as the number of Steps taken since Reset).
// Gradients accumulate into the weight parameter.
func (l *LSTM) Backward(dHs [][]float64) {
	T := len(l.xs)
	if len(dHs) != T {
		panic("nn: BPTT gradient count mismatch")
	}
	cols := l.InSize + l.Hidden + 1
	dhNext := make([]float64, l.Hidden)
	dcNext := make([]float64, l.Hidden)
	for t := T - 1; t >= 0; t-- {
		dh := make([]float64, l.Hidden)
		copy(dh, dHs[t])
		for j := range dh {
			dh[j] += dhNext[j]
		}
		// Recompute c_t from the caches.
		ct := make([]float64, l.Hidden)
		for j := 0; j < l.Hidden; j++ {
			ct[j] = l.gf[t][j]*l.cs[t][j] + l.gi[t][j]*l.gg[t][j]
		}
		dhPrev := make([]float64, l.Hidden)
		dcPrev := make([]float64, l.Hidden)
		for j := 0; j < l.Hidden; j++ {
			tanhC := math.Tanh(ct[j])
			do := dh[j] * tanhC
			dc := dh[j]*l.go_[t][j]*(1-tanhC*tanhC) + dcNext[j]
			di := dc * l.gg[t][j]
			dg := dc * l.gi[t][j]
			df := dc * l.cs[t][j]
			dcPrev[j] = dc * l.gf[t][j]
			// Pre-activation gradients.
			pi := di * l.gi[t][j] * (1 - l.gi[t][j])
			pf := df * l.gf[t][j] * (1 - l.gf[t][j])
			pg := dg * (1 - l.gg[t][j]*l.gg[t][j])
			po := do * l.go_[t][j] * (1 - l.go_[t][j])
			for k := 0; k < l.InSize; k++ {
				xv := l.xs[t][k]
				l.w.G[l.widx(0, j, k)] += pi * xv
				l.w.G[l.widx(1, j, k)] += pf * xv
				l.w.G[l.widx(2, j, k)] += pg * xv
				l.w.G[l.widx(3, j, k)] += po * xv
			}
			for k := 0; k < l.Hidden; k++ {
				hv := l.hs[t][k]
				l.w.G[l.widx(0, j, l.InSize+k)] += pi * hv
				l.w.G[l.widx(1, j, l.InSize+k)] += pf * hv
				l.w.G[l.widx(2, j, l.InSize+k)] += pg * hv
				l.w.G[l.widx(3, j, l.InSize+k)] += po * hv
				dhPrev[k] += pi*l.w.W[l.widx(0, j, l.InSize+k)] +
					pf*l.w.W[l.widx(1, j, l.InSize+k)] +
					pg*l.w.W[l.widx(2, j, l.InSize+k)] +
					po*l.w.W[l.widx(3, j, l.InSize+k)]
			}
			l.w.G[l.widx(0, j, cols-1)] += pi
			l.w.G[l.widx(1, j, cols-1)] += pf
			l.w.G[l.widx(2, j, cols-1)] += pg
			l.w.G[l.widx(3, j, cols-1)] += po
			// Gradient into x_t is not needed by Pictor (features are
			// not learned upstream of the LSTM), so it is not computed.
			_ = pi
		}
		dhNext = dhPrev
		dcNext = dcPrev
	}
}

// Params implements the optimizer interface.
func (l *LSTM) Params() []*Param { return []*Param{l.w} }
