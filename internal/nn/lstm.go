package nn

import (
	"math"
	"math/rand"
)

// LSTM is a single-layer Long Short-Term Memory network (Hochreiter &
// Schmidhuber 1997 — the paper's action-generation model), trained with
// backpropagation through time.
type LSTM struct {
	InSize, Hidden int
	// Gate weights, stacked [input; forget; cell; output] × (in+hidden+1).
	w *Param

	// Inference state.
	h, c []float64

	// BPTT caches (one entry per timestep of the current sequence).
	xs, hs, cs      [][]float64
	gi, gf, gg, go_ [][]float64
	training        bool

	// Inference scratch (reused across Steps outside training; BPTT
	// needs per-step copies, so training allocates as before).
	sPrevH, sPrevC, sZi, sZf, sZg, sZo []float64

	// freeSteps recycles the per-step BPTT cache slices between
	// sequences: Reset moves the previous sequence's caches here and
	// Step pops from it before allocating. Every recycled slice is
	// fully overwritten before use, so training is unaffected.
	freeSteps [][]float64
}

// NewLSTM creates an LSTM with forget-gate bias initialized positive
// (standard trick for gradient flow early in training).
func NewLSTM(inSize, hidden int, rng *rand.Rand) *LSTM {
	cols := inSize + hidden + 1 // +1: bias column
	l := &LSTM{InSize: inSize, Hidden: hidden, w: newParam(4 * hidden * cols)}
	l.w.initUniform(rng, inSize+hidden)
	for j := 0; j < hidden; j++ {
		l.w.W[l.widx(1, j, cols-1)] = 1.0 // forget bias
	}
	l.Reset()
	return l
}

// widx indexes weight (gate g ∈ 0..3, unit j, column k).
func (l *LSTM) widx(g, j, k int) int {
	cols := l.InSize + l.Hidden + 1
	return (g*l.Hidden+j)*cols + k
}

// Reset clears the recurrent state and BPTT caches. The state buffers
// are zeroed in place when already allocated (a new session must not
// cost a new allocation in a long-running client).
func (l *LSTM) Reset() {
	if len(l.h) != l.Hidden {
		l.h = make([]float64, l.Hidden)
		l.c = make([]float64, l.Hidden)
	} else {
		for i := range l.h {
			l.h[i] = 0
			l.c[i] = 0
		}
	}
	for _, seq := range [][][]float64{l.xs, l.hs, l.cs, l.gi, l.gf, l.gg, l.go_} {
		l.freeSteps = append(l.freeSteps, seq...)
	}
	l.xs, l.hs, l.cs = l.xs[:0], l.hs[:0], l.cs[:0]
	l.gi, l.gf, l.gg, l.go_ = l.gi[:0], l.gf[:0], l.gg[:0], l.go_[:0]
}

// takeStep pops a recycled BPTT cache slice of length n (or allocates
// one). The caller fully overwrites it.
func (l *LSTM) takeStep(n int) []float64 {
	for i := len(l.freeSteps) - 1; i >= 0; i-- {
		s := l.freeSteps[i]
		if cap(s) >= n {
			last := len(l.freeSteps) - 1
			l.freeSteps[i] = l.freeSteps[last]
			l.freeSteps[last] = nil
			l.freeSteps = l.freeSteps[:last]
			return s[:n]
		}
	}
	return make([]float64, n)
}

// SetTraining switches BPTT caching on or off.
func (l *LSTM) SetTraining(t bool) { l.training = t }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Step consumes one input vector and returns the new hidden state. The
// returned slice aliases the LSTM's own state buffer and is overwritten
// by the next Step; copy it to retain it across steps.
func (l *LSTM) Step(x []float64) []float64 {
	if len(x) != l.InSize {
		panic("nn: LSTM input size mismatch")
	}
	if l.training {
		// BPTT retains these per step; each is private to the step
		// (freshly allocated or recycled from a finished sequence).
		prevH := l.takeStep(l.Hidden)
		copy(prevH, l.h)
		prevC := l.takeStep(l.Hidden)
		copy(prevC, l.c)
		zi := l.takeStep(l.Hidden)
		zf := l.takeStep(l.Hidden)
		zg := l.takeStep(l.Hidden)
		zo := l.takeStep(l.Hidden)
		l.stepCore(l.h, l.c, x, prevH, prevC, zi, zf, zg, zo)
		xc := l.takeStep(l.InSize)
		copy(xc, x)
		l.xs = append(l.xs, xc)
		l.hs = append(l.hs, prevH)
		l.cs = append(l.cs, prevC)
		l.gi = append(l.gi, zi)
		l.gf = append(l.gf, zf)
		l.gg = append(l.gg, zg)
		l.go_ = append(l.go_, zo)
	} else {
		l.StepState(l.h, l.c, x)
	}
	return l.h
}

// StepState advances one inference step over caller-provided state rows
// h and c (each Hidden long), updating them in place. This is the
// batched entry point: many sessions can share one weight-holding LSTM,
// each owning only its two state rows, and the gate math is the exact
// code Step runs — batched and per-session results are bit-identical by
// construction. Uses the layer's owned scratch; not valid while
// training (no BPTT caches are recorded).
func (l *LSTM) StepState(h, c, x []float64) {
	if len(x) != l.InSize {
		panic("nn: LSTM input size mismatch")
	}
	if len(h) != l.Hidden || len(c) != l.Hidden {
		panic("nn: LSTM state size mismatch")
	}
	l.sPrevH = append(l.sPrevH[:0], h...)
	l.sPrevC = append(l.sPrevC[:0], c...)
	l.sZi = grow(l.sZi, l.Hidden)
	l.sZf = grow(l.sZf, l.Hidden)
	l.sZg = grow(l.sZg, l.Hidden)
	l.sZo = grow(l.sZo, l.Hidden)
	l.stepCore(h, c, x, l.sPrevH, l.sPrevC, l.sZi, l.sZf, l.sZg, l.sZo)
}

// stepCore is the shared gate math: reads prevH/prevC (copies of the
// pre-step state), writes the new state into h and c, and records gate
// activations into zi/zf/zg/zo.
func (l *LSTM) stepCore(h, c, x, prevH, prevC, zi, zf, zg, zo []float64) {
	cols := l.InSize + l.Hidden + 1
	for j := 0; j < l.Hidden; j++ {
		// Row slices per gate (the widx arithmetic hoisted out of the
		// inner loops; accumulation order is unchanged).
		rowI := l.w.W[(0*l.Hidden+j)*cols : (0*l.Hidden+j+1)*cols]
		rowF := l.w.W[(1*l.Hidden+j)*cols : (1*l.Hidden+j+1)*cols]
		rowG := l.w.W[(2*l.Hidden+j)*cols : (2*l.Hidden+j+1)*cols]
		rowO := l.w.W[(3*l.Hidden+j)*cols : (3*l.Hidden+j+1)*cols]
		var si, sf, sg, so float64
		for k := 0; k < l.InSize; k++ {
			xv := x[k]
			if xv == 0 {
				continue
			}
			si += rowI[k] * xv
			sf += rowF[k] * xv
			sg += rowG[k] * xv
			so += rowO[k] * xv
		}
		for k := 0; k < l.Hidden; k++ {
			hv := prevH[k]
			if hv == 0 {
				continue
			}
			si += rowI[l.InSize+k] * hv
			sf += rowF[l.InSize+k] * hv
			sg += rowG[l.InSize+k] * hv
			so += rowO[l.InSize+k] * hv
		}
		si += rowI[cols-1]
		sf += rowF[cols-1]
		sg += rowG[cols-1]
		so += rowO[cols-1]
		zi[j] = sigmoid(si)
		zf[j] = sigmoid(sf)
		zg[j] = math.Tanh(sg)
		zo[j] = sigmoid(so)
		c[j] = zf[j]*prevC[j] + zi[j]*zg[j]
		h[j] = zo[j] * math.Tanh(c[j])
	}
}

// Backward runs BPTT over the cached sequence. dHs[t] is dLoss/dh at
// step t (same length as the number of Steps taken since Reset).
// Gradients accumulate into the weight parameter.
func (l *LSTM) Backward(dHs [][]float64) {
	T := len(l.xs)
	if len(dHs) != T {
		panic("nn: BPTT gradient count mismatch")
	}
	cols := l.InSize + l.Hidden + 1
	// Two pairs of state-gradient buffers, swapped each step (the values
	// written as dhPrev/dcPrev at step t are read as dhNext/dcNext at
	// t−1; no other step touches them, so reuse is safe).
	dhNext := make([]float64, l.Hidden)
	dcNext := make([]float64, l.Hidden)
	dhPrev := make([]float64, l.Hidden)
	dcPrev := make([]float64, l.Hidden)
	dh := make([]float64, l.Hidden)
	ct := make([]float64, l.Hidden)
	for t := T - 1; t >= 0; t-- {
		xs, hs, cs := l.xs[t], l.hs[t], l.cs[t]
		gi, gf, gg, go_ := l.gi[t], l.gf[t], l.gg[t], l.go_[t]
		copy(dh, dHs[t])
		for j := range dh {
			dh[j] += dhNext[j]
		}
		// Recompute c_t from the caches.
		for j := 0; j < l.Hidden; j++ {
			ct[j] = gf[j]*cs[j] + gi[j]*gg[j]
			dhPrev[j] = 0
		}
		for j := 0; j < l.Hidden; j++ {
			tanhC := math.Tanh(ct[j])
			do := dh[j] * tanhC
			dc := dh[j]*go_[j]*(1-tanhC*tanhC) + dcNext[j]
			di := dc * gg[j]
			dg := dc * gi[j]
			df := dc * cs[j]
			dcPrev[j] = dc * gf[j]
			// Pre-activation gradients.
			pi := di * gi[j] * (1 - gi[j])
			pf := df * gf[j] * (1 - gf[j])
			pg := dg * (1 - gg[j]*gg[j])
			po := do * go_[j] * (1 - go_[j])
			// Per-gate weight/gradient rows (the widx arithmetic hoisted
			// out of the inner loops; every += lands on the same element
			// in the same order as before).
			gI := l.w.G[(0*l.Hidden+j)*cols : (0*l.Hidden+j+1)*cols]
			gF := l.w.G[(1*l.Hidden+j)*cols : (1*l.Hidden+j+1)*cols]
			gG := l.w.G[(2*l.Hidden+j)*cols : (2*l.Hidden+j+1)*cols]
			gO := l.w.G[(3*l.Hidden+j)*cols : (3*l.Hidden+j+1)*cols]
			wI := l.w.W[(0*l.Hidden+j)*cols : (0*l.Hidden+j+1)*cols]
			wF := l.w.W[(1*l.Hidden+j)*cols : (1*l.Hidden+j+1)*cols]
			wG := l.w.W[(2*l.Hidden+j)*cols : (2*l.Hidden+j+1)*cols]
			wO := l.w.W[(3*l.Hidden+j)*cols : (3*l.Hidden+j+1)*cols]
			for k := 0; k < l.InSize; k++ {
				xv := xs[k]
				gI[k] += pi * xv
				gF[k] += pf * xv
				gG[k] += pg * xv
				gO[k] += po * xv
			}
			for k := 0; k < l.Hidden; k++ {
				hv := hs[k]
				kk := l.InSize + k
				gI[kk] += pi * hv
				gF[kk] += pf * hv
				gG[kk] += pg * hv
				gO[kk] += po * hv
				dhPrev[k] += pi*wI[kk] + pf*wF[kk] + pg*wG[kk] + po*wO[kk]
			}
			gI[cols-1] += pi
			gF[cols-1] += pf
			gG[cols-1] += pg
			gO[cols-1] += po
			// Gradient into x_t is not needed by Pictor (features are
			// not learned upstream of the LSTM), so it is not computed.
		}
		dhNext, dhPrev = dhPrev, dhNext
		dcNext, dcPrev = dcPrev, dcNext
	}
}

// Params implements the optimizer interface.
func (l *LSTM) Params() []*Param { return []*Param{l.w} }
