package nn

import (
	"math"
	"math/rand"
	"testing"

	"pictor/internal/tensor"
)

func TestLSTMStepShapeAndState(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM(3, 5, rng)
	// Step returns model-owned scratch; copy to compare across steps.
	h1 := append([]float64(nil), l.Step([]float64{1, 0, 0})...)
	if len(h1) != 5 {
		t.Fatalf("hidden size = %d, want 5", len(h1))
	}
	h2 := append([]float64(nil), l.Step([]float64{1, 0, 0})...)
	same := true
	for i := range h1 {
		if h1[i] != h2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("recurrent state had no effect: identical inputs gave identical outputs")
	}
	l.Reset()
	h3 := l.Step([]float64{1, 0, 0})
	for i := range h1 {
		if h1[i] != h3[i] {
			t.Fatal("Reset did not restore initial state")
		}
	}
}

func TestLSTMInputMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("input size mismatch did not panic")
		}
	}()
	NewLSTM(3, 4, rand.New(rand.NewSource(1))).Step([]float64{1})
}

func TestLSTMHiddenBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM(2, 4, rng)
	for i := 0; i < 200; i++ {
		h := l.Step([]float64{5, -5})
		for _, v := range h {
			if math.Abs(v) > 1 {
				t.Fatalf("hidden value %v outside tanh×sigmoid bound", v)
			}
		}
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(2, 3, rng)
	seq := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	// Loss: sum of hidden[0] over all steps (simple linear functional).
	run := func() float64 {
		l.Reset()
		l.SetTraining(true)
		var loss float64
		for _, x := range seq {
			h := l.Step(x)
			loss += h[0]
		}
		return loss
	}
	run()
	dHs := make([][]float64, len(seq))
	for i := range dHs {
		dHs[i] = make([]float64, 3)
		dHs[i][0] = 1
	}
	l.Backward(dHs)
	p := l.Params()[0]
	// Spot-check a spread of weight indices.
	for _, idx := range []int{0, 5, 11, 17, 23, len(p.W) - 1} {
		analytic := p.G[idx]
		want := numGrad(run, &p.W[idx])
		if math.Abs(analytic-want) > 1e-4 {
			t.Fatalf("lstm grad[%d] = %v, numeric %v", idx, analytic, want)
		}
	}
}

func TestLSTMLearnsSequencePattern(t *testing.T) {
	// Task: output class 1 exactly when the previous input was [1,0]
	// (requires memory — a memoryless model cannot do it).
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(2, 8, rng)
	head := NewDense(8, 2, rng)
	params := append(l.Params(), head.Params()...)
	opt := NewAdam(params, 0.02)

	seqLen := 12
	makeSeq := func(r *rand.Rand) ([][]float64, []int) {
		xs := make([][]float64, seqLen)
		labels := make([]int, seqLen)
		prevWasA := false
		for i := range xs {
			if r.Intn(2) == 0 {
				xs[i] = []float64{1, 0}
			} else {
				xs[i] = []float64{0, 1}
			}
			if prevWasA {
				labels[i] = 1
			}
			prevWasA = xs[i][0] == 1
		}
		return xs, labels
	}

	dataRng := rand.New(rand.NewSource(5))
	for epoch := 0; epoch < 120; epoch++ {
		xs, labels := makeSeq(dataRng)
		l.Reset()
		l.SetTraining(true)
		dHs := make([][]float64, seqLen)
		for i, x := range xs {
			h := l.Step(x)
			logits := head.Forward(h)
			_, g := SoftmaxCrossEntropy(logits, labels[i])
			// Backward returns layer-owned scratch; BPTT retains per step.
			dHs[i] = append([]float64(nil), head.Backward(g)...)
		}
		l.Backward(dHs)
		opt.Step()
	}

	// Evaluate on fresh sequences.
	evalRng := rand.New(rand.NewSource(99))
	correct, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		xs, labels := makeSeq(evalRng)
		l.Reset()
		l.SetTraining(false)
		for i, x := range xs {
			h := l.Step(x)
			if tensor.ArgMax(head.Forward(h)) == labels[i] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("LSTM accuracy on memory task = %.2f, want ≥ 0.9", acc)
	}
}

func TestLSTMBackwardCountMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLSTM(2, 3, rng)
	l.SetTraining(true)
	l.Step([]float64{1, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched BPTT grads did not panic")
		}
	}()
	l.Backward(make([][]float64, 5))
}
