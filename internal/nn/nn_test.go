package nn

import (
	"math"
	"math/rand"
	"testing"

	"pictor/internal/tensor"
)

// numGrad estimates dLoss/dW numerically for gradient checking.
func numGrad(f func() float64, w *float64) float64 {
	const eps = 1e-5
	orig := *w
	*w = orig + eps
	up := f()
	*w = orig - eps
	down := f()
	*w = orig
	return (up - down) / (2 * eps)
}

func TestDenseForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	out := d.Forward([]float64{1, 2, 3})
	if len(out) != 2 {
		t.Fatalf("output size = %d, want 2", len(out))
	}
}

func TestDenseInputMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	NewDense(3, 2, rand.New(rand.NewSource(1))).Forward([]float64{1})
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(4, 3, rng)
	x := []float64{0.5, -0.3, 0.8, 0.1}
	label := 1
	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(d.Forward(x), label)
		return l
	}
	// Analytic gradients.
	_, g := SoftmaxCrossEntropy(d.Forward(x), label)
	d.Backward(g)
	for _, p := range d.Params() {
		for i := range p.W {
			want := numGrad(loss, &p.W[i])
			if math.Abs(p.G[i]-want) > 1e-4 {
				t.Fatalf("dense grad[%d] = %v, numeric %v", i, p.G[i], want)
			}
		}
	}
}

func TestDenseBackwardInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(3, 2, rng)
	x := []float64{0.2, -0.4, 0.9}
	label := 0
	loss := func(xv []float64) float64 {
		l, _ := SoftmaxCrossEntropy(d.Forward(xv), label)
		return l
	}
	_, g := SoftmaxCrossEntropy(d.Forward(x), label)
	dx := d.Backward(g)
	for i := range x {
		want := numGrad(func() float64 { return loss(x) }, &x[i])
		if math.Abs(dx[i]-want) > 1e-4 {
			t.Fatalf("input grad[%d] = %v, numeric %v", i, dx[i], want)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	out := r.Forward([]float64{-1, 0, 2})
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("relu forward = %v", out)
	}
	dx := r.Backward([]float64{1, 1, 1})
	if dx[0] != 0 || dx[1] != 0 || dx[2] != 1 {
		t.Fatalf("relu backward = %v", dx)
	}
}

func TestConv2DOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv2D(8, 8, 1, 4, 3, rng)
	if c.OutH() != 6 || c.OutW() != 6 || c.OutLen() != 6*6*4 {
		t.Fatalf("conv out dims wrong: %d×%d×%d", c.OutH(), c.OutW(), c.OutC)
	}
	out := c.Forward(make([]float64, 64))
	if len(out) != c.OutLen() {
		t.Fatalf("conv out len = %d, want %d", len(out), c.OutLen())
	}
}

func TestConv2DGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D(4, 4, 1, 2, 3, rng)
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	label := 3
	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(c.Forward(x), label)
		return l
	}
	_, g := SoftmaxCrossEntropy(c.Forward(x), label)
	c.Backward(g)
	for _, p := range c.Params() {
		for i := range p.W {
			want := numGrad(loss, &p.W[i])
			if math.Abs(p.G[i]-want) > 1e-4 {
				t.Fatalf("conv grad[%d] = %v, numeric %v", i, p.G[i], want)
			}
		}
	}
}

func TestMaxPool2(t *testing.T) {
	p := NewMaxPool2(2, 2, 1)
	out := p.Forward([]float64{1, 3, 2, 0})
	if len(out) != 1 || out[0] != 3 {
		t.Fatalf("pool forward = %v, want [3]", out)
	}
	dx := p.Backward([]float64{1})
	if dx[1] != 1 || dx[0] != 0 {
		t.Fatalf("pool backward = %v, want grad at argmax only", dx)
	}
}

func TestMaxPool2OddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd pool dims did not panic")
		}
	}()
	NewMaxPool2(3, 2, 1)
}

func TestSequentialLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := &Sequential{Layers: []Layer{
		NewDense(2, 8, rng),
		&ReLU{},
		NewDense(8, 2, rng),
	}}
	opt := NewAdam(net.Params(), 0.01)
	data := [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	for epoch := 0; epoch < 400; epoch++ {
		for i, d := range data {
			logits := net.Forward(d[:])
			_, g := SoftmaxCrossEntropy(logits, labels[i])
			net.Backward(g)
			opt.Step()
		}
	}
	for i, d := range data {
		logits := net.Forward(d[:])
		if tensor.ArgMax(logits) != labels[i] {
			t.Fatalf("XOR not learned: input %v → %v, want class %d", d, logits, labels[i])
		}
	}
}

func TestCNNLearnsPatterns(t *testing.T) {
	// A conv+pool+dense stack must separate two 4×4 patterns.
	rng := rand.New(rand.NewSource(7))
	conv := NewConv2D(4, 4, 1, 4, 3, rng)
	pool := NewMaxPool2(2, 2, 4)
	net := &Sequential{Layers: []Layer{
		conv,
		&ReLU{},
		pool,
		NewDense(pool.OutLen(), 2, rng),
	}}
	opt := NewAdam(net.Params(), 0.01)
	cross := []float64{1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1, 0, 0, 1}
	box := []float64{1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 1, 1, 1}
	for epoch := 0; epoch < 150; epoch++ {
		for i, x := range [][]float64{cross, box} {
			logits := net.Forward(x)
			_, g := SoftmaxCrossEntropy(logits, i)
			net.Backward(g)
			opt.Step()
		}
	}
	if tensor.ArgMax(net.Forward(cross)) != 0 || tensor.ArgMax(net.Forward(box)) != 1 {
		t.Fatal("CNN failed to separate two trivially different patterns")
	}
}

func TestSoftmaxCrossEntropyGradSumsToZero(t *testing.T) {
	_, g := SoftmaxCrossEntropy([]float64{0.3, -0.2, 1.4}, 2)
	var sum float64
	for _, v := range g {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("CE gradient sums to %v, want 0", sum)
	}
}

func TestSaveLoadWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewDense(3, 2, rng)
	b := NewDense(3, 2, rng)
	blob, err := SaveWeights(a.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(b.Params(), blob); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	ya, yb := a.Forward(x), b.Forward(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("loaded weights produce different output")
		}
	}
	// Shape mismatch must fail cleanly.
	c := NewDense(4, 2, rng)
	if err := LoadWeights(c.Params(), blob); err == nil {
		t.Fatal("shape mismatch load should error")
	}
}

func TestAdamClipBoundsGradient(t *testing.T) {
	p := newParam(2)
	p.G[0], p.G[1] = 1e6, 1e6
	opt := NewAdam([]*Param{p}, 0.1)
	opt.Step()
	if math.Abs(p.W[0]) > 1 {
		t.Fatalf("clipped Adam step moved weight to %v", p.W[0])
	}
	if p.G[0] != 0 {
		t.Fatal("gradients not zeroed after step")
	}
}
