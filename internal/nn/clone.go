package nn

// Layer cloning: deep-copies of the learnable weights with fresh
// forward/backward caches. Clones exist so one trained network can
// drive many concurrent simulations — Forward and Step write scratch
// state (lastX, im2col columns, LSTM recurrent state), so a shared
// network is neither goroutine-safe nor deterministic across runs.

func cloneParam(p *Param) *Param {
	if p == nil {
		return nil
	}
	c := newParam(len(p.W))
	copy(c.W, p.W)
	return c
}

// Clone returns an independent layer with the same weights.
func (d *Dense) Clone() *Dense {
	return &Dense{In: d.In, Out: d.Out, w: cloneParam(d.w), b: cloneParam(d.b)}
}

// Clone returns an independent activation (stateless but for caches).
func (r *ReLU) Clone() *ReLU { return &ReLU{} }

// Clone returns an independent layer with the same weights.
func (c *Conv2D) Clone() *Conv2D {
	return &Conv2D{H: c.H, W: c.W, InC: c.InC, OutC: c.OutC, K: c.K,
		w: cloneParam(c.w), b: cloneParam(c.b)}
}

// Clone returns an independent pooling layer.
func (p *MaxPool2) Clone() *MaxPool2 { return &MaxPool2{H: p.H, W: p.W, C: p.C} }

// Clone returns an independent LSTM with the same weights and cleared
// recurrent state.
func (l *LSTM) Clone() *LSTM {
	c := &LSTM{InSize: l.InSize, Hidden: l.Hidden, w: cloneParam(l.w)}
	c.Reset()
	return c
}

// CloneLayer clones any of the built-in feed-forward layer types.
func CloneLayer(l Layer) Layer {
	switch v := l.(type) {
	case *Dense:
		return v.Clone()
	case *ReLU:
		return v.Clone()
	case *Conv2D:
		return v.Clone()
	case *MaxPool2:
		return v.Clone()
	}
	panic("nn: CloneLayer: unknown layer type")
}

// Clone returns an independent network with the same weights.
func (s *Sequential) Clone() *Sequential {
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		out.Layers[i] = CloneLayer(l)
	}
	return out
}
