package nn

import (
	"math/rand"
	"testing"
)

func sliceEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSequentialCloneMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := &Sequential{Layers: []Layer{
		NewDense(16, 8, rng),
		&ReLU{},
		NewDense(8, 4, rng),
	}}
	clone := net.Clone()

	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()
	}
	if !sliceEq(net.Forward(x), clone.Forward(x)) {
		t.Fatal("cloned network diverges from original")
	}
}

func TestConv2DCloneMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConv2D(6, 6, 1, 2, 3, rng)
	x := make([]float64, 36)
	for i := range x {
		x[i] = rng.Float64()
	}
	if !sliceEq(c.Forward(x), c.Clone().Forward(x)) {
		t.Fatal("cloned conv diverges from original")
	}
}

func TestLSTMCloneIndependentState(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLSTM(4, 6, rng)
	x := []float64{0.1, -0.2, 0.3, 1}

	// Pollute the original's recurrent state, then clone: the clone
	// must start from cleared state.
	l.Step(x)
	l.Step(x)
	clone := l.Clone()
	l.Reset()

	for i := 0; i < 5; i++ {
		if !sliceEq(l.Step(x), clone.Step(x)) {
			t.Fatalf("clone diverges at step %d", i)
		}
	}

	// Advancing the clone must not move the original.
	before := append([]float64(nil), l.h...)
	clone.Step(x)
	if !sliceEq(before, l.h) {
		t.Fatal("stepping the clone mutated the original's state")
	}
}
