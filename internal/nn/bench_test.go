package nn

import (
	"math/rand"
	"testing"
)

// Per-call hot leaves of the intelligent client's inference path (the
// CNN runs once per grid cell per frame, the LSTM once per frame). Run
// with -benchmem; allocs/op here multiply by thousands of frames per
// simulated trial.

func benchInput(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

func BenchmarkDenseForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(54, 8, rng)
	x := benchInput(54, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x)
	}
}

func BenchmarkReLUForward(b *testing.B) {
	r := &ReLU{}
	x := benchInput(216, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Forward(x)
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(8, 8, 1, 6, 3, rng)
	x := benchInput(64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(8, 8, 1, 6, 3, rng)
	x := benchInput(64, 2)
	grad := benchInput(c.OutLen(), 3)
	c.Forward(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Backward(grad)
	}
}

func BenchmarkMaxPool2Forward(b *testing.B) {
	p := NewMaxPool2(6, 6, 6)
	x := benchInput(6*6*6, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

// BenchmarkCNNForward is the full per-cell recognition stack the
// intelligent client runs 24 times per frame.
func BenchmarkCNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(8, 8, 1, 6, 3, rng)
	pool := NewMaxPool2(conv.OutH(), conv.OutW(), 6)
	cnn := &Sequential{Layers: []Layer{
		conv,
		&ReLU{},
		pool,
		NewDense(pool.OutLen(), 8, rng),
	}}
	x := benchInput(64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnn.Forward(x)
	}
}

func BenchmarkLSTMStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM(9, 14, rng)
	x := benchInput(9, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step(x)
	}
}
