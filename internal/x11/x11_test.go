package x11

import (
	"testing"

	"pictor/internal/hw/cpu"
	"pictor/internal/proto"
	"pictor/internal/scene"
	"pictor/internal/sim"
)

func newDisplay(k *sim.Kernel) *Display {
	return NewDisplay(k, sim.NewRNG(1), 1920, 1080)
}

func TestEventQueueFIFO(t *testing.T) {
	k := sim.NewKernel()
	d := newDisplay(k)
	for i := 1; i <= 3; i++ {
		d.Push(proto.Input{Tag: uint64(i), Action: scene.ActPrimary})
	}
	if d.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", d.Pending())
	}
	got := d.Drain()
	if len(got) != 3 || got[0].Tag != 1 || got[2].Tag != 3 {
		t.Fatalf("drain order wrong: %+v", got)
	}
	if d.Pending() != 0 || len(d.Drain()) != 0 {
		t.Fatal("queue not emptied")
	}
}

func TestGetWindowAttributesSlowness(t *testing.T) {
	k := sim.NewKernel()
	d := newDisplay(k)
	c := cpu.New(k, 8, sim.NewRNG(2))
	proc := c.NewProc("app", nil, 0)
	var at sim.Time
	var w, h int
	d.GetWindowAttributes(proc, func(gw, gh int) {
		at = k.Now()
		w, h = gw, gh
	})
	k.Run()
	// The paper measures 6–9 ms for this call.
	if ms := at.Millis(); ms < 5.5 || ms > 10 {
		t.Fatalf("XGetWindowAttributes took %vms, want 6–9ms", ms)
	}
	if w != 1920 || h != 1080 {
		t.Fatalf("attributes = %dx%d, want 1920x1080", w, h)
	}
}

func TestResolutionEpoch(t *testing.T) {
	k := sim.NewKernel()
	d := newDisplay(k)
	e0 := d.ResolutionEpoch()
	d.SetResolution(1920, 1080) // unchanged: no epoch bump
	if d.ResolutionEpoch() != e0 {
		t.Fatal("same-size SetResolution bumped the epoch")
	}
	d.SetResolution(1280, 720)
	if d.ResolutionEpoch() != e0+1 {
		t.Fatal("resize did not bump the epoch")
	}
	if w, h := d.Resolution(); w != 1280 || h != 720 {
		t.Fatalf("resolution = %dx%d", w, h)
	}
}
