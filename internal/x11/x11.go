// Package x11 models the X Window System pieces the cloud rendering
// stack touches: the per-application event queue (XNextEvent — hook4's
// interception point), event injection by the server proxy (the PS
// stage), and XGetWindowAttributes — the notoriously slow round trip to
// the X server that §6's first optimization memoizes away.
package x11

import (
	"pictor/internal/hw/cpu"
	"pictor/internal/proto"
	"pictor/internal/sim"
)

// Display is one application's connection to the (virtual) X server.
type Display struct {
	k   *sim.Kernel
	rng *sim.RNG

	queue []proto.Input

	width, height int
	// attrBaseMs is the mean XGetWindowAttributes round-trip time.
	// The paper measures 6–9 ms.
	attrBaseMs float64

	resolutionChanges int64
}

// NewDisplay creates a display with the given window resolution.
func NewDisplay(k *sim.Kernel, rng *sim.RNG, width, height int) *Display {
	return &Display{
		k:          k,
		rng:        rng.Fork("x11"),
		width:      width,
		height:     height,
		attrBaseMs: 7.5,
	}
}

// Push injects an input event into the application's queue (the tail
// end of the PS stage; the server proxy charges the CPU work).
func (d *Display) Push(in proto.Input) {
	d.queue = append(d.queue, in)
}

// Drain removes and returns all queued events (the application calling
// XNextEvent until empty at the top of its logic loop). The returned
// slice is the queue's own storage, valid until the next Push: the
// caller consumes it synchronously (as XNextEvent semantics imply), and
// reusing the backing array keeps the per-tick event path
// allocation-free.
func (d *Display) Drain() []proto.Input {
	out := d.queue
	d.queue = d.queue[:0]
	return out
}

// Pending reports queued events without removing them.
func (d *Display) Pending() int { return len(d.queue) }

// Resolution reports the window size.
func (d *Display) Resolution() (w, h int) { return d.width, d.height }

// SetResolution changes the window size, which invalidates any memoized
// attributes (callers watch ResolutionEpoch).
func (d *Display) SetResolution(w, h int) {
	if w == d.width && h == d.height {
		return
	}
	d.width, d.height = w, h
	d.resolutionChanges++
}

// ResolutionEpoch increments whenever the resolution changes; the
// interposer's memoization uses it as a cache-invalidation key.
func (d *Display) ResolutionEpoch() int64 { return d.resolutionChanges }

// GetWindowAttributes performs the real X round trip: a small CPU cost
// on the calling process plus a long wall-clock wait on the X server
// (6–9 ms, worse when the machine is loaded). done receives the window
// size.
func (d *Display) GetWindowAttributes(proc *cpu.Proc, done func(w, h int)) {
	ms := 6 + d.rng.Float64()*3 // uniform 6–9 ms, per the paper
	wait := sim.DurationOfSeconds(ms / 1e3)
	proc.Run(150*sim.Microsecond, func() {
		d.k.After(wait, func() {
			done(d.width, d.height)
		})
	})
}
