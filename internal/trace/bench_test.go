package trace

import (
	"testing"

	"pictor/internal/sim"
)

// BenchmarkTracerFramePath exercises the tracer work one tagged input
// causes across a full round trip: tag allocation, all ten hook
// timestamps, the nine stage samples, and the pixel embed/extract
// crossing of the IPC boundary. This is the trace cost of one frame in
// a driven trial.
func BenchmarkTracerFramePath(b *testing.B) {
	k := sim.NewKernel()
	tr := New(k)
	px := make([]float64, 48*32)
	tags := make([]uint64, 1)
	var backup []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := tr.NextTag()
		tags[0] = tag
		tr.RecordHook(Hook1, tag)
		tr.AddStage(StageCS, sim.Millisecond, tag)
		tr.RecordHook(Hook2, tag)
		tr.AddStage(StageSP, sim.Millisecond, tag)
		tr.RecordHook(Hook3, tag)
		tr.AddStage(StagePS, sim.Millisecond, tag)
		tr.RecordHook(Hook4, tag)
		tr.AddStage(StageAL, sim.Millisecond, tag)
		tr.RecordHookMulti(Hook5, tags)
		tr.AddStage(StageRD, sim.Millisecond, tag)
		tr.RecordHookMulti(Hook6, tags)
		backup = EmbedTags(px, tags, backup[:0])
		tr.AddStage(StageFC, sim.Millisecond, tag)
		tr.RecordHookMulti(Hook7, tags)
		tr.AddStage(StageAS, sim.Millisecond, tag)
		got := ExtractTagsAppend(px, nil)
		RestorePixels(px, backup)
		tr.RecordHookMulti(Hook8, got)
		tr.ServerFrameTick()
		tr.AddStage(StageCP, sim.Millisecond, tag)
		tr.RecordHookMulti(Hook9, got)
		tr.AddStage(StageSS, sim.Millisecond, tag)
		tr.RecordHookMulti(Hook10, got)
		tr.ClientFrameTick()
		if i%4096 == 4095 {
			tr.Reset() // bound record growth like a warmup reset would
		}
	}
}

// BenchmarkStageSampleMiss hits the missing-stage query path, which
// must not allocate (it used to build a fresh Sample per call).
func BenchmarkStageSampleMiss(b *testing.B) {
	tr := New(sim.NewKernel())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.StageSample(StageRD)
	}
}

func BenchmarkEmbedExtractTags(b *testing.B) {
	px := make([]float64, 48*32)
	tags := []uint64{7, 11, 13}
	var backup []float64
	var out []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backup = EmbedTags(px, tags, backup[:0])
		out = ExtractTagsAppend(px, out[:0])
		RestorePixels(px, backup)
	}
	_ = out
}
