package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"pictor/internal/sim"
)

// FuzzEmbedTagsRoundTrip drives the hook6→hook8 pixel-embedding channel
// with arbitrary tag sets and frame sizes: whenever EmbedTags commits a
// payload, ExtractTagsAppend must read back exactly the embedded tags
// and RestorePixels must return the frame to its original bytes — for
// any tag values (all 64 bits), any frame size (including too-small
// frames, which must leave pixels untouched), and recycled buffers.
func FuzzEmbedTagsRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(32))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0}, uint16(200))
	f.Add(bytes.Repeat([]byte{0xAB}, 8*20), uint16(4)) // more tags than fit
	f.Add(bytes.Repeat([]byte{7}, 8*(MaxEmbeddedTags+3)), uint16(1024))

	f.Fuzz(func(t *testing.T, raw []byte, pixCount uint16) {
		var tags []uint64
		for i := 0; i+8 <= len(raw); i += 8 {
			tags = append(tags, binary.LittleEndian.Uint64(raw[i:i+8]))
		}
		pixels := make([]float64, pixCount)
		for i := range pixels {
			// Arbitrary but exactly-representable original values; the
			// restore check is bit-exact.
			pixels[i] = float64(i%257) / 256
		}
		original := append([]float64(nil), pixels...)

		reuse := make([]float64, 0, 8)
		saved := EmbedTags(pixels, tags, reuse)

		want := tags
		if len(want) > MaxEmbeddedTags {
			want = want[:MaxEmbeddedTags]
		}
		embedded := len(tags) > 0 && len(pixels) >= 1+8*len(want)

		if !embedded {
			// Declined embeds must leave the frame untouched and return
			// the reuse buffer unmodified.
			if len(saved) != 0 {
				t.Fatalf("no payload committed but %d pixels saved", len(saved))
			}
			for i := range pixels {
				if pixels[i] != original[i] {
					t.Fatalf("pixel %d mutated by a declined embed", i)
				}
			}
			return
		}

		got := ExtractTagsAppend(pixels, make([]uint64, 0, len(want)))
		if len(got) != len(want) {
			t.Fatalf("embedded %d tags, extracted %d", len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tag %d: embedded %#x, extracted %#x", i, want[i], got[i])
			}
		}

		RestorePixels(pixels, saved)
		for i := range pixels {
			if pixels[i] != original[i] {
				t.Fatalf("pixel %d not restored: %v != %v", i, pixels[i], original[i])
			}
		}
	})
}

// TestResetClearsTagRecordState is the regression test for the
// fixed-array TagRecord storage: after Reset, a re-observed tag id must
// start from a blank record — no hook timestamps, no stage latencies,
// no completed-RTT carryover from before the reset. (A leaked hookSet
// or stageSet bit would let a warmup observation complete a
// measurement-window RTT.)
func TestResetClearsTagRecordState(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)

	tag := tr.NextTag()
	tr.RecordHook(Hook1, tag)
	tr.AddStage(StageAL, 3*sim.Millisecond, tag)
	tr.AddStage(StageRD, 2*sim.Millisecond, tag)
	tr.RecordHook(Hook10, tag)
	tr.ServerFrameTick()
	tr.ClientFrameTick()
	tr.FrameDropped()
	if tr.CompletedRTTCount() != 1 {
		t.Fatalf("precondition: RTT should have completed, n=%d", tr.CompletedRTTCount())
	}

	tr.Reset()

	if n := len(tr.Records()); n != 0 {
		t.Fatalf("%d records survive Reset", n)
	}
	if tr.CompletedRTTCount() != 0 || tr.RTTs().N() != 0 {
		t.Fatal("RTT sample survives Reset")
	}
	for _, s := range Stages {
		if n := tr.StageSample(s).N(); n != 0 {
			t.Fatalf("stage %s keeps %d observations after Reset", s, n)
		}
	}
	if tr.ServerFrameCount() != 0 || tr.ClientFrameCount() != 0 || tr.DroppedFrames() != 0 {
		t.Fatal("frame counters survive Reset")
	}

	// Re-observe the same tag id: its record must be blank, so a lone
	// Hook10 must not complete an RTT against the pre-reset Hook1.
	tr.RecordHook(Hook10, tag)
	if tr.CompletedRTTCount() != 0 {
		t.Fatal("pre-reset Hook1 leaked into a post-reset round trip")
	}
	rec := tr.Records()[0]
	if _, ok := rec.Hook(Hook1); ok {
		t.Fatal("pre-reset hook timestamp visible after Reset")
	}
	for _, s := range Stages {
		if _, ok := rec.Stage(s); ok {
			t.Fatalf("pre-reset stage %s latency visible after Reset", s)
		}
	}

	// And a full round trip after Reset works from scratch.
	tag2 := tr.NextTag()
	if tag2 == tag {
		t.Fatal("tag allocation must not restart after Reset (tags must stay unique)")
	}
	tr.RecordHook(Hook1, tag2)
	tr.RecordHook(Hook10, tag2)
	if tr.CompletedRTTCount() != 1 {
		t.Fatal("post-reset round trip failed to record")
	}
}
