// Package trace implements Pictor's performance analysis framework:
// unique input tags, the ten API hooks of Figure 4, per-stage latency
// accounting, FPS counters, and the embed-tag-in-pixels mechanism that
// carries a tag across the application↔proxy IPC boundary (hook6→hook8).
//
// The framework is designed for low overhead: each hook charges a small
// fixed CPU cost to its caller when tracing is enabled and nothing when
// disabled, mirroring the paper's 2.7%-average FPS overhead result.
package trace

import (
	"fmt"
	"sort"

	"pictor/internal/sim"
	"pictor/internal/stats"
)

// Hook identifies one of the ten instrumentation points of Figure 4.
type Hook int

// The hooks, in input-processing order: 1 tags the input at the client
// proxy, 2–3 bracket the server proxy's input handling, 4 is the
// application receiving the input (XNextEvent), 5 is render start
// (glXSwapBuffers), 6 is frame readback (glReadPixels) where the tag is
// embedded in pixels, 7 is the IPC hand-off (XShmPutImage), 8 is the
// server proxy receiving the frame, 9 is send start, 10 matches the tag
// back at the client proxy.
const (
	Hook1 Hook = iota + 1
	Hook2
	Hook3
	Hook4
	Hook5
	Hook6
	Hook7
	Hook8
	Hook9
	Hook10
)

// Stage identifies one pipeline stage of Figure 5.
type Stage string

// The pipeline stages. CS: client sends input; SP: server proxy input
// processing; PS: proxy sends input to app (IPC); AL: application logic;
// RD: GPU render; FC: frame copy (GPU→CPU); AS: app sends frame to proxy
// (IPC); CP: proxy compresses; SS: server sends frame to client.
const (
	StageCS Stage = "CS"
	StageSP Stage = "SP"
	StagePS Stage = "PS"
	StageAL Stage = "AL"
	StageRD Stage = "RD"
	StageFC Stage = "FC"
	StageAS Stage = "AS"
	StageCP Stage = "CP"
	StageSS Stage = "SS"
)

// Stages lists all stages in pipeline order.
var Stages = []Stage{StageCS, StageSP, StagePS, StageAL, StageRD, StageFC, StageAS, StageCP, StageSS}

// HookCPUCost is the CPU time one enabled hook charges its caller.
const HookCPUCost = 18 * sim.Microsecond

// TagRecord accumulates everything observed about one tagged input.
type TagRecord struct {
	Tag      uint64
	Hooks    map[Hook]sim.Time
	Stages   map[Stage]sim.Duration
	Complete bool
}

// Tracer is one instance's measurement context.
type Tracer struct {
	k       *sim.Kernel
	enabled bool
	nextTag uint64

	records map[uint64]*TagRecord
	order   []uint64

	stageSamples map[Stage]*stats.Sample
	rttSample    stats.Sample

	serverFrames stats.Counter
	clientFrames stats.Counter
	droppedAtCoalesce int64

	started sim.Time
}

// New creates an enabled tracer.
func New(k *sim.Kernel) *Tracer {
	t := &Tracer{
		k:            k,
		enabled:      true,
		records:      make(map[uint64]*TagRecord),
		stageSamples: make(map[Stage]*stats.Sample),
		started:      k.Now(),
	}
	return t
}

// SetEnabled switches the analysis framework on or off (the paper's
// overhead experiment runs the suite both ways).
func (t *Tracer) SetEnabled(e bool) { t.enabled = e }

// Enabled reports whether tracing is active.
func (t *Tracer) Enabled() bool { return t.enabled }

// HookCost reports the CPU cost callers must charge per hook crossing.
func (t *Tracer) HookCost() sim.Duration {
	if !t.enabled {
		return 0
	}
	return HookCPUCost
}

// NextTag allocates a fresh input tag (hook1). Returns 0 when disabled.
func (t *Tracer) NextTag() uint64 {
	if !t.enabled {
		return 0
	}
	t.nextTag++
	return t.nextTag
}

func (t *Tracer) record(tag uint64) *TagRecord {
	r, ok := t.records[tag]
	if !ok {
		r = &TagRecord{Tag: tag, Hooks: make(map[Hook]sim.Time), Stages: make(map[Stage]sim.Duration)}
		t.records[tag] = r
		t.order = append(t.order, tag)
	}
	return r
}

// RecordHook timestamps a hook crossing for a tag. Hook10 completes the
// input's round trip and records its RTT.
func (t *Tracer) RecordHook(h Hook, tag uint64) {
	if !t.enabled || tag == 0 {
		return
	}
	r := t.record(tag)
	if _, dup := r.Hooks[h]; dup {
		return // e.g. a retransmitted frame; first observation wins
	}
	r.Hooks[h] = t.k.Now()
	if h == Hook10 {
		if t1, ok := r.Hooks[Hook1]; ok && !r.Complete {
			r.Complete = true
			t.rttSample.Add(t.k.Now().Sub(t1).Seconds() * 1e3) // ms
		}
	}
}

// RecordHookMulti timestamps a hook crossing for every tag in the list
// (frame-path hooks apply to all tags the frame answers).
func (t *Tracer) RecordHookMulti(h Hook, tags []uint64) {
	for _, tag := range tags {
		t.RecordHook(h, tag)
	}
}

// AddStage records a stage latency, attributed to the given tags (frame
// stages list every tag the frame answers) and to the aggregate stage
// distribution.
func (t *Tracer) AddStage(s Stage, d sim.Duration, tags ...uint64) {
	if !t.enabled {
		return
	}
	sm, ok := t.stageSamples[s]
	if !ok {
		sm = &stats.Sample{}
		t.stageSamples[s] = sm
	}
	sm.Add(float64(d) / float64(sim.Millisecond))
	for _, tag := range tags {
		if tag == 0 {
			continue
		}
		r := t.record(tag)
		if _, dup := r.Stages[s]; !dup {
			r.Stages[s] = d
		}
	}
}

// ServerFrameTick counts one frame produced at the server proxy.
func (t *Tracer) ServerFrameTick() { t.serverFrames.Tick(t.k.Now().Seconds()) }

// ClientFrameTick counts one frame displayed at the client proxy.
func (t *Tracer) ClientFrameTick() { t.clientFrames.Tick(t.k.Now().Seconds()) }

// FrameDropped counts a frame coalesced away at the server proxy.
func (t *Tracer) FrameDropped() { t.droppedAtCoalesce++ }

// ServerFPS reports frames/second generated at the server.
func (t *Tracer) ServerFPS() float64 { return t.serverFrames.Rate(t.k.Now().Seconds()) }

// ClientFPS reports frames/second received at the client.
func (t *Tracer) ClientFPS() float64 { return t.clientFrames.Rate(t.k.Now().Seconds()) }

// DroppedFrames reports frames coalesced at the proxy.
func (t *Tracer) DroppedFrames() int64 { return t.droppedAtCoalesce }

// ServerFrameCount reports total frames counted at the server proxy.
func (t *Tracer) ServerFrameCount() int64 { return t.serverFrames.Count() }

// ClientFrameCount reports total frames counted at the client proxy.
func (t *Tracer) ClientFrameCount() int64 { return t.clientFrames.Count() }

// RTTs returns the RTT sample (milliseconds).
func (t *Tracer) RTTs() *stats.Sample { return &t.rttSample }

// StageSample returns the aggregate latency sample for a stage
// (milliseconds); empty sample if never recorded.
func (t *Tracer) StageSample(s Stage) *stats.Sample {
	if sm, ok := t.stageSamples[s]; ok {
		return sm
	}
	return &stats.Sample{}
}

// Records returns all tag records in tag order.
func (t *Tracer) Records() []*TagRecord {
	out := make([]*TagRecord, 0, len(t.order))
	for _, tag := range t.order {
		out = append(out, t.records[tag])
	}
	return out
}

// CompletedRTTCount reports how many inputs completed a round trip.
func (t *Tracer) CompletedRTTCount() int { return t.rttSample.N() }

// Reset clears all measurements, restarting at the current sim time
// (used to discard warmup).
func (t *Tracer) Reset() {
	t.records = make(map[uint64]*TagRecord)
	t.order = nil
	t.stageSamples = make(map[Stage]*stats.Sample)
	t.rttSample = stats.Sample{}
	t.serverFrames = stats.Counter{}
	t.clientFrames = stats.Counter{}
	t.droppedAtCoalesce = 0
	t.started = t.k.Now()
}

// Summary formats the stage table for reports.
func (t *Tracer) Summary() string {
	out := fmt.Sprintf("RTT: %s\n", t.rttSample.Summarize())
	keys := make([]string, 0, len(t.stageSamples))
	for s := range t.stageSamples {
		keys = append(keys, string(s))
	}
	sort.Strings(keys)
	for _, k := range keys {
		out += fmt.Sprintf("%-3s: %s\n", k, t.stageSamples[Stage(k)].Summarize())
	}
	return out
}
