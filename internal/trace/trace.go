// Package trace implements Pictor's performance analysis framework:
// unique input tags, the ten API hooks of Figure 4, per-stage latency
// accounting, FPS counters, and the embed-tag-in-pixels mechanism that
// carries a tag across the application↔proxy IPC boundary (hook6→hook8).
//
// The framework is designed for low overhead: each hook charges a small
// fixed CPU cost to its caller when tracing is enabled and nothing when
// disabled, mirroring the paper's 2.7%-average FPS overhead result.
package trace

import (
	"fmt"
	"sort"

	"pictor/internal/sim"
	"pictor/internal/stats"
)

// Hook identifies one of the ten instrumentation points of Figure 4.
type Hook int

// The hooks, in input-processing order: 1 tags the input at the client
// proxy, 2–3 bracket the server proxy's input handling, 4 is the
// application receiving the input (XNextEvent), 5 is render start
// (glXSwapBuffers), 6 is frame readback (glReadPixels) where the tag is
// embedded in pixels, 7 is the IPC hand-off (XShmPutImage), 8 is the
// server proxy receiving the frame, 9 is send start, 10 matches the tag
// back at the client proxy.
const (
	Hook1 Hook = iota + 1
	Hook2
	Hook3
	Hook4
	Hook5
	Hook6
	Hook7
	Hook8
	Hook9
	Hook10
)

// Stage identifies one pipeline stage of Figure 5.
type Stage string

// The pipeline stages. CS: client sends input; SP: server proxy input
// processing; PS: proxy sends input to app (IPC); AL: application logic;
// RD: GPU render; FC: frame copy (GPU→CPU); AS: app sends frame to proxy
// (IPC); CP: proxy compresses; SS: server sends frame to client.
const (
	StageCS Stage = "CS"
	StageSP Stage = "SP"
	StagePS Stage = "PS"
	StageAL Stage = "AL"
	StageRD Stage = "RD"
	StageFC Stage = "FC"
	StageAS Stage = "AS"
	StageCP Stage = "CP"
	StageSS Stage = "SS"
)

// Stages lists all stages in pipeline order.
var Stages = []Stage{StageCS, StageSP, StagePS, StageAL, StageRD, StageFC, StageAS, StageCP, StageSS}

// The fixed-size stage storage in TagRecord and the stageIndex switch
// must stay in lockstep with Stages; drift would silently drop per-tag
// records, so it fails loudly at init instead.
func init() {
	if len(Stages) != numStages {
		panic("trace: Stages and TagRecord stage storage out of sync")
	}
	for i, s := range Stages {
		if stageIndex(s) != i {
			panic("trace: stageIndex out of sync with Stages for " + string(s))
		}
	}
}

// numStages is the size of TagRecord's per-stage storage.
const numStages = 9

// stageIndex maps a stage to its ordinal in Stages (-1 if unknown).
func stageIndex(s Stage) int {
	switch s {
	case StageCS:
		return 0
	case StageSP:
		return 1
	case StagePS:
		return 2
	case StageAL:
		return 3
	case StageRD:
		return 4
	case StageFC:
		return 5
	case StageAS:
		return 6
	case StageCP:
		return 7
	case StageSS:
		return 8
	}
	return -1
}

// HookCPUCost is the CPU time one enabled hook charges its caller.
const HookCPUCost = 18 * sim.Microsecond

// TagRecord accumulates everything observed about one tagged input.
// Hook timestamps and stage latencies live in fixed arrays with
// presence bits — the hook set and the stage set are static — so
// creating a record costs one allocation, not three (records are made
// per input on the measurement path).
type TagRecord struct {
	Tag      uint64
	Complete bool

	hooks   [Hook10 + 1]sim.Time
	hookSet uint16 // bit h set ⇔ hook h recorded

	stages   [numStages]sim.Duration
	stageSet uint16 // bit stageIndex(s) set ⇔ stage s recorded
}

// Hook reports the timestamp recorded for a hook crossing.
func (r *TagRecord) Hook(h Hook) (sim.Time, bool) {
	if h < Hook1 || h > Hook10 || r.hookSet&(1<<uint(h)) == 0 {
		return 0, false
	}
	return r.hooks[h], true
}

// Stage reports the latency recorded for a pipeline stage.
func (r *TagRecord) Stage(s Stage) (sim.Duration, bool) {
	i := stageIndex(s)
	if i < 0 || r.stageSet&(1<<uint(i)) == 0 {
		return 0, false
	}
	return r.stages[i], true
}

// Tracer is one instance's measurement context.
type Tracer struct {
	k       *sim.Kernel
	enabled bool
	nextTag uint64

	records map[uint64]*TagRecord
	order   []uint64

	stageSamples map[Stage]*stats.Sample
	rttSample    stats.Sample

	serverFrames      stats.Counter
	clientFrames      stats.Counter
	droppedAtCoalesce int64

	started  sim.Time
	sizeHint int
}

// New creates an enabled tracer.
func New(k *sim.Kernel) *Tracer {
	t := &Tracer{
		k:            k,
		enabled:      true,
		records:      make(map[uint64]*TagRecord),
		stageSamples: make(map[Stage]*stats.Sample),
		started:      k.Now(),
	}
	return t
}

// SetEnabled switches the analysis framework on or off (the paper's
// overhead experiment runs the suite both ways).
func (t *Tracer) SetEnabled(e bool) { t.enabled = e }

// SizeHint pre-sizes the RTT and stage samples for an expected number
// of observations (derived from the configured measurement window), so
// steady-state sampling never re-grows its backing arrays.
func (t *Tracer) SizeHint(n int) {
	if n <= 0 {
		return
	}
	t.sizeHint = n
	t.rttSample.Grow(n)
	for _, sm := range t.stageSamples {
		sm.Grow(n)
	}
}

// Enabled reports whether tracing is active.
func (t *Tracer) Enabled() bool { return t.enabled }

// HookCost reports the CPU cost callers must charge per hook crossing.
func (t *Tracer) HookCost() sim.Duration {
	if !t.enabled {
		return 0
	}
	return HookCPUCost
}

// NextTag allocates a fresh input tag (hook1). Returns 0 when disabled.
func (t *Tracer) NextTag() uint64 {
	if !t.enabled {
		return 0
	}
	t.nextTag++
	return t.nextTag
}

func (t *Tracer) record(tag uint64) *TagRecord {
	r, ok := t.records[tag]
	if !ok {
		r = &TagRecord{Tag: tag}
		t.records[tag] = r
		t.order = append(t.order, tag)
	}
	return r
}

// RecordHook timestamps a hook crossing for a tag. Hook10 completes the
// input's round trip and records its RTT.
func (t *Tracer) RecordHook(h Hook, tag uint64) {
	if !t.enabled || tag == 0 || h < Hook1 || h > Hook10 {
		return
	}
	r := t.record(tag)
	if r.hookSet&(1<<uint(h)) != 0 {
		return // e.g. a retransmitted frame; first observation wins
	}
	r.hookSet |= 1 << uint(h)
	r.hooks[h] = t.k.Now()
	if h == Hook10 {
		if t1, ok := r.Hook(Hook1); ok && !r.Complete {
			r.Complete = true
			t.rttSample.Add(t.k.Now().Sub(t1).Seconds() * 1e3) // ms
		}
	}
}

// RecordHookMulti timestamps a hook crossing for every tag in the list
// (frame-path hooks apply to all tags the frame answers).
func (t *Tracer) RecordHookMulti(h Hook, tags []uint64) {
	for _, tag := range tags {
		t.RecordHook(h, tag)
	}
}

// AddStage records a stage latency, attributed to the given tags (frame
// stages list every tag the frame answers) and to the aggregate stage
// distribution.
func (t *Tracer) AddStage(s Stage, d sim.Duration, tags ...uint64) {
	if !t.enabled {
		return
	}
	sm, ok := t.stageSamples[s]
	if !ok {
		sm = &stats.Sample{}
		sm.Grow(t.sizeHint)
		t.stageSamples[s] = sm
	}
	sm.Add(float64(d) / float64(sim.Millisecond))
	si := stageIndex(s)
	if si < 0 {
		return
	}
	for _, tag := range tags {
		if tag == 0 {
			continue
		}
		r := t.record(tag)
		if r.stageSet&(1<<uint(si)) == 0 {
			r.stageSet |= 1 << uint(si)
			r.stages[si] = d
		}
	}
}

// ServerFrameTick counts one frame produced at the server proxy.
func (t *Tracer) ServerFrameTick() { t.serverFrames.Tick(t.k.Now().Seconds()) }

// ClientFrameTick counts one frame displayed at the client proxy.
func (t *Tracer) ClientFrameTick() { t.clientFrames.Tick(t.k.Now().Seconds()) }

// FrameDropped counts a frame coalesced away at the server proxy.
func (t *Tracer) FrameDropped() { t.droppedAtCoalesce++ }

// ServerFPS reports frames/second generated at the server.
func (t *Tracer) ServerFPS() float64 { return t.serverFrames.Rate(t.k.Now().Seconds()) }

// ClientFPS reports frames/second received at the client.
func (t *Tracer) ClientFPS() float64 { return t.clientFrames.Rate(t.k.Now().Seconds()) }

// DroppedFrames reports frames coalesced at the proxy.
func (t *Tracer) DroppedFrames() int64 { return t.droppedAtCoalesce }

// ServerFrameCount reports total frames counted at the server proxy.
func (t *Tracer) ServerFrameCount() int64 { return t.serverFrames.Count() }

// ClientFrameCount reports total frames counted at the client proxy.
func (t *Tracer) ClientFrameCount() int64 { return t.clientFrames.Count() }

// RTTs returns the RTT sample (milliseconds).
func (t *Tracer) RTTs() *stats.Sample { return &t.rttSample }

// emptySample is the canonical empty sample returned for never-recorded
// stages. Shared and read-only by contract: StageSample callers only
// query. Returning it instead of allocating matters because result
// collection queries every stage of every instance, traced or not.
var emptySample = &stats.Sample{}

// StageSample returns the aggregate latency sample for a stage
// (milliseconds); a shared canonical empty sample if never recorded
// (read-only — do not Add to the returned sample).
func (t *Tracer) StageSample(s Stage) *stats.Sample {
	if sm, ok := t.stageSamples[s]; ok {
		return sm
	}
	return emptySample
}

// Records returns all tag records in tag order.
func (t *Tracer) Records() []*TagRecord {
	out := make([]*TagRecord, 0, len(t.order))
	for _, tag := range t.order {
		out = append(out, t.records[tag])
	}
	return out
}

// CompletedRTTCount reports how many inputs completed a round trip.
func (t *Tracer) CompletedRTTCount() int { return t.rttSample.N() }

// Reset clears all measurements, restarting at the current sim time
// (used to discard warmup). Maps and sample arrays are retained and
// cleared in place: the end-of-warmup reset must not hand the hot
// measurement window freshly shrunken buffers.
func (t *Tracer) Reset() {
	clear(t.records)
	t.order = t.order[:0]
	for _, sm := range t.stageSamples {
		sm.Reset()
	}
	t.rttSample.Reset()
	t.serverFrames = stats.Counter{}
	t.clientFrames = stats.Counter{}
	t.droppedAtCoalesce = 0
	t.started = t.k.Now()
}

// Summary formats the stage table for reports.
func (t *Tracer) Summary() string {
	out := fmt.Sprintf("RTT: %s\n", t.rttSample.Summarize())
	keys := make([]string, 0, len(t.stageSamples))
	for s := range t.stageSamples {
		keys = append(keys, string(s))
	}
	sort.Strings(keys)
	for _, k := range keys {
		out += fmt.Sprintf("%-3s: %s\n", k, t.stageSamples[Stage(k)].Summarize())
	}
	return out
}
