package trace

// Tag embedding (hook6 → hook8). The application cannot hand metadata to
// the server proxy directly — frames cross the process boundary as raw
// pixels — so, exactly as the paper does, the tags are written into the
// first pixels of the frame at hook6 and extracted (and the original
// pixels restored) at hook8.
//
// Layout, one value per pixel slot (values are bytes scaled into [0,1]):
//
//	pixel[0]          tag count n (≤ MaxEmbeddedTags)
//	pixel[1..8n]      n little-endian uint64 tags, one byte per pixel

// MaxEmbeddedTags bounds how many tags one frame can carry.
const MaxEmbeddedTags = 15

// embeddedLen reports the number of pixels the encoding occupies.
func embeddedLen(n int) int { return 1 + 8*n }

// EmbedTags writes the tags into the frame's leading pixels, returning
// the displaced original values so hook8 can restore them. The backup
// is appended to reuse (pass a recycled buffer sliced to length 0 to
// avoid the per-frame allocation; nil also works). Frames too small for
// the payload (or empty tag lists) return reuse unmodified and leave
// the pixels untouched.
func EmbedTags(pixels []float64, tags []uint64, reuse []float64) (saved []float64) {
	if len(tags) == 0 {
		return reuse
	}
	if len(tags) > MaxEmbeddedTags {
		tags = tags[:MaxEmbeddedTags]
	}
	n := embeddedLen(len(tags))
	if len(pixels) < n {
		return reuse
	}
	saved = append(reuse, pixels[:n]...)
	pixels[0] = float64(len(tags)) / 255
	for i, tag := range tags {
		for b := 0; b < 8; b++ {
			pixels[1+i*8+b] = float64((tag>>(8*b))&0xFF) / 255
		}
	}
	return saved
}

// ExtractTags reads tags embedded by EmbedTags. It returns nil when the
// header is implausible (count 0 or too large for the buffer).
func ExtractTags(pixels []float64) []uint64 {
	out := ExtractTagsAppend(pixels, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// ExtractTagsAppend reads tags embedded by EmbedTags, appending them to
// dst (pass a recycled buffer sliced to length 0 to avoid the per-frame
// allocation). An implausible header (count 0 or too large for the
// buffer) appends nothing.
func ExtractTagsAppend(pixels []float64, dst []uint64) []uint64 {
	if len(pixels) == 0 {
		return dst
	}
	count := int(pixels[0]*255 + 0.5)
	if count <= 0 || count > MaxEmbeddedTags || len(pixels) < embeddedLen(count) {
		return dst
	}
	for i := 0; i < count; i++ {
		var tag uint64
		for b := 0; b < 8; b++ {
			byteVal := uint64(pixels[1+i*8+b]*255 + 0.5)
			tag |= byteVal << (8 * b)
		}
		dst = append(dst, tag)
	}
	return dst
}

// RestorePixels writes the saved original values back over the embedded
// region. A nil or empty saved slice is a no-op.
func RestorePixels(pixels []float64, saved []float64) {
	copy(pixels, saved)
}
