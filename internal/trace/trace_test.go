package trace

import (
	"testing"
	"testing/quick"

	"pictor/internal/sim"
)

func TestTagAllocationSequential(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	if a, b := tr.NextTag(), tr.NextTag(); a == 0 || b != a+1 {
		t.Fatalf("tags not sequential: %d, %d", a, b)
	}
}

func TestDisabledTracerIsFree(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	tr.SetEnabled(false)
	if tr.NextTag() != 0 {
		t.Fatal("disabled tracer handed out a tag")
	}
	if tr.HookCost() != 0 {
		t.Fatal("disabled tracer charges hook cost")
	}
	tr.RecordHook(Hook1, 5)
	tr.AddStage(StageAL, sim.Millisecond, 5)
	if len(tr.Records()) != 0 || tr.StageSample(StageAL).N() != 0 {
		t.Fatal("disabled tracer recorded data")
	}
}

func TestRTTViaHooks(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	tag := tr.NextTag()
	tr.RecordHook(Hook1, tag)
	k.After(83*sim.Millisecond, func() { tr.RecordHook(Hook10, tag) })
	k.Run()
	if n := tr.CompletedRTTCount(); n != 1 {
		t.Fatalf("completed RTTs = %d, want 1", n)
	}
	if got := tr.RTTs().Mean(); got != 83 {
		t.Fatalf("RTT = %vms, want 83", got)
	}
}

func TestDuplicateHookIgnored(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	tag := tr.NextTag()
	tr.RecordHook(Hook1, tag)
	k.After(10*sim.Millisecond, func() { tr.RecordHook(Hook10, tag) })
	k.After(90*sim.Millisecond, func() { tr.RecordHook(Hook10, tag) })
	k.Run()
	if n := tr.CompletedRTTCount(); n != 1 {
		t.Fatalf("completed RTTs = %d, want 1", n)
	}
	if got := tr.RTTs().Mean(); got != 10 {
		t.Fatalf("RTT = %vms, want first observation (10)", got)
	}
}

func TestUntaggedHookIgnored(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	tr.RecordHook(Hook1, 0)
	if len(tr.Records()) != 0 {
		t.Fatal("tag 0 should never be recorded")
	}
}

func TestStageAccounting(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	tag := tr.NextTag()
	tr.AddStage(StageAL, 12*sim.Millisecond, tag)
	tr.AddStage(StageAL, 14*sim.Millisecond) // aggregate-only
	s := tr.StageSample(StageAL)
	if s.N() != 2 || s.Mean() != 13 {
		t.Fatalf("AL sample = n%d mean%v, want n2 mean13", s.N(), s.Mean())
	}
	recs := tr.Records()
	al, ok := recs[0].Stage(StageAL)
	if len(recs) != 1 || !ok || al != 12*sim.Millisecond {
		t.Fatal("per-tag stage not recorded")
	}
}

func TestPerTagStageFirstObservationWins(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	tag := tr.NextTag()
	tr.AddStage(StageCP, 5*sim.Millisecond, tag)
	tr.AddStage(StageCP, 50*sim.Millisecond, tag)
	if got, ok := tr.Records()[0].Stage(StageCP); !ok || got != 5*sim.Millisecond {
		t.Fatalf("per-tag CP = %v, want first observation 5ms", got)
	}
}

func TestFPSCounters(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	for i := 0; i < 30; i++ {
		k.After(sim.Duration(i)*33*sim.Millisecond, tr.ServerFrameTick)
		if i%2 == 0 {
			k.After(sim.Duration(i)*33*sim.Millisecond, tr.ClientFrameTick)
		}
	}
	k.Run()
	k.RunUntil(sim.Time(sim.Second))
	if fps := tr.ServerFPS(); fps < 25 || fps > 35 {
		t.Fatalf("server FPS = %v, want ~30", fps)
	}
	if fps := tr.ClientFPS(); fps < 12 || fps > 18 {
		t.Fatalf("client FPS = %v, want ~15", fps)
	}
}

func TestReset(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	tag := tr.NextTag()
	tr.RecordHook(Hook1, tag)
	tr.RecordHook(Hook10, tag)
	tr.ServerFrameTick()
	tr.FrameDropped()
	tr.Reset()
	if tr.CompletedRTTCount() != 0 || len(tr.Records()) != 0 || tr.DroppedFrames() != 0 {
		t.Fatal("reset did not clear measurements")
	}
	// Tag counter must NOT reset: tags stay unique across the session.
	if next := tr.NextTag(); next != tag+1 {
		t.Fatalf("tag after reset = %d, want %d", next, tag+1)
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k)
	tr.AddStage(StageFC, 15*sim.Millisecond)
	if s := tr.Summary(); len(s) == 0 {
		t.Fatal("empty summary")
	}
}

func TestEmbedExtractRoundTrip(t *testing.T) {
	px := make([]float64, 100)
	for i := range px {
		px[i] = 0.5
	}
	tags := []uint64{1, 0xDEADBEEF, 1 << 62}
	saved := EmbedTags(px, tags, nil)
	if saved == nil {
		t.Fatal("embed failed")
	}
	got := ExtractTags(px)
	if len(got) != 3 || got[0] != 1 || got[1] != 0xDEADBEEF || got[2] != 1<<62 {
		t.Fatalf("extracted %v, want %v", got, tags)
	}
	RestorePixels(px, saved)
	for i := range px {
		if px[i] != 0.5 {
			t.Fatalf("pixel %d not restored: %v", i, px[i])
		}
	}
}

func TestEmbedEmptyAndTooSmall(t *testing.T) {
	if EmbedTags(make([]float64, 100), nil, nil) != nil {
		t.Fatal("embedding no tags should be a no-op")
	}
	if EmbedTags(make([]float64, 3), []uint64{1}, nil) != nil {
		t.Fatal("embedding into a tiny frame should fail")
	}
	if ExtractTags(nil) != nil {
		t.Fatal("extracting from nothing should fail")
	}
}

func TestEmbedCapsTagCount(t *testing.T) {
	px := make([]float64, 4096)
	tags := make([]uint64, 50)
	for i := range tags {
		tags[i] = uint64(i + 1)
	}
	EmbedTags(px, tags, nil)
	got := ExtractTags(px)
	if len(got) != MaxEmbeddedTags {
		t.Fatalf("extracted %d tags, want cap %d", len(got), MaxEmbeddedTags)
	}
}

func TestExtractRejectsGarbage(t *testing.T) {
	px := make([]float64, 100)
	// All-zero pixels: count 0 → reject.
	if ExtractTags(px) != nil {
		t.Fatal("garbage pixels decoded as tags")
	}
	px[0] = 1.0 // count 255 > cap → reject
	if ExtractTags(px) != nil {
		t.Fatal("oversized count decoded as tags")
	}
}

// Property: embed → extract is the identity and restore is exact, for
// any tag set and background pixel pattern.
func TestEmbedRoundTripProperty(t *testing.T) {
	f := func(rawTags []uint64, seed uint8) bool {
		tags := rawTags
		if len(tags) > MaxEmbeddedTags {
			tags = tags[:MaxEmbeddedTags]
		}
		valid := make([]uint64, 0, len(tags))
		for _, tg := range tags {
			if tg != 0 {
				valid = append(valid, tg)
			}
		}
		if len(valid) == 0 {
			return true
		}
		px := make([]float64, 256)
		v := float64(seed) / 255
		for i := range px {
			px[i] = v
		}
		orig := append([]float64(nil), px...)
		saved := EmbedTags(px, valid, nil)
		got := ExtractTags(px)
		if len(got) != len(valid) {
			return false
		}
		for i := range got {
			if got[i] != valid[i] {
				return false
			}
		}
		RestorePixels(px, saved)
		for i := range px {
			if px[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
