// Package vgl models the graphics interposer (VirtualGL in the paper's
// testbed): the library that intercepts the application's buffer swaps,
// copies rendered frames from the GPU to host memory (the FC stage —
// the bottleneck §5.1.2 uncovers), and hands them to the server proxy
// (the AS stage via XShmPutImage).
//
// It implements both §6 optimizations:
//
//  1. XGetWindowAttributes memoization — the baseline interposer calls
//     this 6–9 ms round trip before *every* frame copy just to learn the
//     (rarely changing) resolution; the optimization caches it and
//     invalidates on X resize events.
//  2. Two-step asynchronous frame copy — the baseline halts the
//     application thread waiting for the GPU to deliver the frame;
//     the optimization splits the copy into FCStart (queue the DMA right
//     after the swap) and FCEnd (collect the already-landed buffer one
//     pass later), removing the halt.
package vgl

import (
	"pictor/internal/gl"
	"pictor/internal/hw/cpu"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/x11"
)

// Options selects interposer behaviour.
type Options struct {
	// MemoizeAttributes enables §6 optimization 1.
	MemoizeAttributes bool
	// AsyncCopy enables §6 optimization 2.
	AsyncCopy bool
	// QueryDoubleBuffer enables the analysis framework's double-buffered
	// GPU time queries (on in the default framework; the overhead
	// ablation turns it off).
	QueryDoubleBuffer bool
	// MemcpyMsPerMB is host-side copy cost into the shared segment.
	MemcpyMsPerMB float64
	// ReadDriverMs is fixed glReadPixels driver overhead per frame.
	ReadDriverMs float64
}

// DefaultOptions is the unoptimized TurboVNC/VirtualGL baseline with
// the analysis framework's recommended double-buffered queries.
func DefaultOptions() Options {
	return Options{
		MemoizeAttributes: false,
		AsyncCopy:         false,
		QueryDoubleBuffer: true,
		MemcpyMsPerMB:     0.42,
		ReadDriverMs:      1.15,
	}
}

// Optimized returns DefaultOptions with both §6 optimizations on.
func Optimized() Options {
	o := DefaultOptions()
	o.MemoizeAttributes = true
	o.AsyncCopy = true
	return o
}

// Interposer performs frame copies for one application.
type Interposer struct {
	k       *sim.Kernel
	proc    *cpu.Proc // application process (FC runs on the app thread)
	display *x11.Display
	tracer  *trace.Tracer
	opts    Options

	cachedW, cachedH int
	cachedEpoch      int64
	attrsCached      bool

	attrCalls int64 // actual XGetWindowAttributes round trips
	copies    int64
}

// New creates an interposer.
func New(k *sim.Kernel, proc *cpu.Proc, display *x11.Display, tracer *trace.Tracer, opts Options) *Interposer {
	if opts.MemcpyMsPerMB <= 0 {
		opts.MemcpyMsPerMB = 0.20
	}
	if opts.ReadDriverMs <= 0 {
		opts.ReadDriverMs = 0.45
	}
	return &Interposer{k: k, proc: proc, display: display, tracer: tracer, opts: opts}
}

// Options reports the interposer's configuration.
func (ip *Interposer) Options() Options { return ip.opts }

// AttrCalls reports how many real XGetWindowAttributes round trips were
// made (the memoization ablation checks this collapses to ~1).
func (ip *Interposer) AttrCalls() int64 { return ip.attrCalls }

// Copies reports completed frame copies.
func (ip *Interposer) Copies() int64 { return ip.copies }

// OnSwap is the SwapBuffers intercept. The application calls it right
// after submitting frame h; with AsyncCopy the interposer immediately
// queues h's readback (FCStart).
func (ip *Interposer) OnSwap(h *gl.RenderHandle) {
	if ip.opts.AsyncCopy {
		h.StartAsyncRead()
	}
}

// CopyFrame executes the FC stage for the given (previous) frame handle
// on the application thread: when finished() fires the app may proceed
// to its next AL pass, and delivered(frame) fires on the AS path with
// the host-memory copy of the frame, tags embedded in its pixels.
//
// Baseline sequence: XGetWindowAttributes → wait GPU → DMA → memcpy.
// Optimized: (cached attributes) → collect already-landed DMA → memcpy.
func (ip *Interposer) CopyFrame(h *gl.RenderHandle, finished func(), delivered func(f *scene.Frame)) {
	start := ip.k.Now()
	ip.getAttributes(func(w, hgt int) {
		// The frame is copied at the *current* window size.
		_ = w
		_ = hgt
		afterRead := func() {
			// Query-result read for the GPU time measurement.
			stall := sim.Duration(0)
			if ip.tracer.Enabled() {
				stall = h.QueryStall(ip.opts.QueryDoubleBuffer)
			}
			// hook6: embed the frame's tags into its pixels. The saved
			// pixels ride along so hook8 can restore them.
			memcpy := sim.DurationOfSeconds(h.Frame.RawBytes()/1e6*ip.opts.MemcpyMsPerMB/1e3) +
				sim.DurationOfSeconds(ip.opts.ReadDriverMs/1e3) + ip.tracer.HookCost()
			ip.k.After(stall, func() {
				ip.proc.Run(memcpy, func() {
					frame := h.Frame
					ip.tracer.RecordHookMulti(trace.Hook6, frame.Tags)
					frame.PixelBackup = trace.EmbedTags(frame.Pixels, frame.Tags, frame.PixelBackup[:0])
					ip.copies++
					ip.tracer.AddStage(trace.StageFC, ip.k.Now().Sub(start), frame.Tags...)
					finished()
					delivered(frame)
				})
			})
		}
		if ip.opts.AsyncCopy {
			h.FinishAsyncRead(afterRead)
		} else {
			h.ReadPixels(afterRead)
		}
	})
}

// getAttributes resolves the window size, through the cache when
// memoization is enabled and the resolution epoch is unchanged.
func (ip *Interposer) getAttributes(done func(w, h int)) {
	if ip.opts.MemoizeAttributes && ip.attrsCached && ip.cachedEpoch == ip.display.ResolutionEpoch() {
		// Served from cache: just the intercept's own cost.
		ip.proc.Run(30*sim.Microsecond, func() { done(ip.cachedW, ip.cachedH) })
		return
	}
	ip.attrCalls++
	ip.display.GetWindowAttributes(ip.proc, func(w, h int) {
		ip.cachedW, ip.cachedH = w, h
		ip.cachedEpoch = ip.display.ResolutionEpoch()
		ip.attrsCached = true
		done(w, h)
	})
}
