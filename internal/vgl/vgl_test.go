package vgl

import (
	"testing"

	"pictor/internal/gl"
	"pictor/internal/hw/cpu"
	"pictor/internal/hw/gpu"
	"pictor/internal/hw/pcie"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/x11"
)

type env struct {
	k       *sim.Kernel
	ctx     *gl.Context
	display *x11.Display
	proc    *cpu.Proc
	tracer  *trace.Tracer
}

func newEnv() *env {
	k := sim.NewKernel()
	g := gpu.New(k, sim.NewRNG(1))
	gctx := g.NewContext("app", gpu.Profile{BaseRenderMs: 8, SupportsPMU: true})
	gctx.SetActive(true)
	bus := pcie.New(k, 15.75e9)
	c := cpu.New(k, 8, sim.NewRNG(2))
	return &env{
		k:       k,
		ctx:     gl.NewContext(k, gctx, bus.NewClient("app")),
		display: x11.NewDisplay(k, sim.NewRNG(3), 1920, 1080),
		proc:    c.NewProc("app", nil, 0),
		tracer:  trace.New(k),
	}
}

func frame(tags ...uint64) *scene.Frame {
	return &scene.Frame{
		Width: 1920, Height: 1080, Complexity: 1,
		Pixels: make([]float64, scene.FrameW*scene.FrameH),
		Tags:   tags,
	}
}

// copyOnce renders a frame and copies it, returning the FC wall time.
func copyOnce(e *env, ip *Interposer, f *scene.Frame) sim.Duration {
	h := e.ctx.SwapBuffers(f, 0)
	ip.OnSwap(h)
	start := e.k.Now()
	var fcEnd sim.Time
	ip.CopyFrame(h, func() { fcEnd = e.k.Now() }, func(*scene.Frame) {})
	e.k.Run()
	return fcEnd.Sub(start)
}

func TestBaselineCopyIncludesAttrRoundTrip(t *testing.T) {
	e := newEnv()
	ip := New(e.k, e.proc, e.display, e.tracer, DefaultOptions())
	fc := copyOnce(e, ip, frame())
	// XGWA 6–9ms + render wait 8ms + DMA + memcpy ≈ ≥ 14ms.
	if fc < 13*sim.Millisecond {
		t.Fatalf("baseline FC = %v, expected the full halting path", fc)
	}
	if ip.AttrCalls() != 1 {
		t.Fatalf("AttrCalls = %d, want 1", ip.AttrCalls())
	}
}

func TestMemoizationSkipsAttrCalls(t *testing.T) {
	e := newEnv()
	opts := DefaultOptions()
	opts.MemoizeAttributes = true
	ip := New(e.k, e.proc, e.display, e.tracer, opts)
	for i := 0; i < 5; i++ {
		copyOnce(e, ip, frame())
	}
	if ip.AttrCalls() != 1 {
		t.Fatalf("memoized AttrCalls = %d over 5 copies, want 1", ip.AttrCalls())
	}
	// A resolution change invalidates the cache.
	e.display.SetResolution(1280, 720)
	copyOnce(e, ip, frame())
	if ip.AttrCalls() != 2 {
		t.Fatalf("AttrCalls after resize = %d, want 2", ip.AttrCalls())
	}
}

func TestOptimizedCopyFasterThanBaseline(t *testing.T) {
	eBase := newEnv()
	base := New(eBase.k, eBase.proc, eBase.display, eBase.tracer, DefaultOptions())
	baseFC := copyOnce(eBase, base, frame())

	eOpt := newEnv()
	opt := New(eOpt.k, eOpt.proc, eOpt.display, eOpt.tracer, Optimized())
	// Warm the attribute cache once.
	copyOnce(eOpt, opt, frame())
	// In the pipeline, FC of a frame runs one AL pass after its swap —
	// by then the async readback has landed. Model that gap.
	h := eOpt.ctx.SwapBuffers(frame(), 0)
	opt.OnSwap(h)
	eOpt.k.RunUntil(eOpt.k.Now().Add(12 * sim.Millisecond))
	start := eOpt.k.Now()
	var fcEnd sim.Time
	opt.CopyFrame(h, func() { fcEnd = eOpt.k.Now() }, func(*scene.Frame) {})
	eOpt.k.Run()
	optFC := fcEnd.Sub(start)

	if optFC >= baseFC {
		t.Fatalf("optimized FC (%v) not faster than baseline (%v)", optFC, baseFC)
	}
	if optFC > 8*sim.Millisecond {
		t.Fatalf("optimized FC = %v, the GPU halt should be gone", optFC)
	}
}

func TestCopyEmbedsTagsInPixels(t *testing.T) {
	e := newEnv()
	ip := New(e.k, e.proc, e.display, e.tracer, DefaultOptions())
	f := frame(41, 42)
	h := e.ctx.SwapBuffers(f, 0)
	var delivered *scene.Frame
	ip.CopyFrame(h, func() {}, func(out *scene.Frame) { delivered = out })
	e.k.Run()
	if delivered == nil {
		t.Fatal("frame never delivered")
	}
	got := trace.ExtractTags(delivered.Pixels)
	if len(got) != 2 || got[0] != 41 || got[1] != 42 {
		t.Fatalf("tags in pixels = %v, want [41 42]", got)
	}
	if delivered.PixelBackup == nil {
		t.Fatal("displaced pixels not preserved for hook8 restore")
	}
}

func TestCopyRecordsFCStage(t *testing.T) {
	e := newEnv()
	ip := New(e.k, e.proc, e.display, e.tracer, DefaultOptions())
	copyOnce(e, ip, frame(7))
	if e.tracer.StageSample(trace.StageFC).N() == 0 {
		t.Fatal("FC stage not recorded")
	}
	if ip.Copies() != 1 {
		t.Fatalf("Copies = %d, want 1", ip.Copies())
	}
}

func TestDisabledTracerStillCopies(t *testing.T) {
	e := newEnv()
	e.tracer.SetEnabled(false)
	ip := New(e.k, e.proc, e.display, e.tracer, DefaultOptions())
	fc := copyOnce(e, ip, frame())
	if fc <= 0 {
		t.Fatal("untraced copy did not run")
	}
	if e.tracer.StageSample(trace.StageFC).N() != 0 {
		t.Fatal("disabled tracer recorded stages")
	}
}
