package serve

import (
	"encoding/csv"
	"net/http"
	"strconv"

	"pictor/internal/core"
)

// exportJSON is the /jobs/{id}/results payload: the job's status, the
// normalized spec it ran, and every completed trial with its
// per-repetition results. Served while running too — the records list
// is simply what has finished so far.
type exportJSON struct {
	Job    JobStatus           `json:"job"`
	Spec   core.ExperimentSpec `json:"spec"`
	Trials []TrialRecord       `json:"trials"`
}

func (s *Server) handleResultsJSON(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, exportJSON{
		Job:    j.Status(),
		Spec:   j.Spec,
		Trials: j.snapshotRecords(),
	})
}

// csvHeader is the fixed column union across all result shapes. Every
// row carries the trial identity and rep; scope says which shape the
// row describes — "instance" (one placed/co-located instance, with a
// machine index for fleet trials), "fleet" (one-shot fleet rollup),
// "churn" (horizon rollup) or "epoch" (one churn epoch). Inapplicable
// cells are empty, so the file loads into any dataframe tool without
// per-kind schemas.
var csvHeader = []string{
	"trial", "key", "cached", "rep", "seed", "scope",
	"machine", "epoch", "instance", "benchmark",
	"server_fps", "client_fps", "rtt_mean_ms", "rtt_p99_ms",
	"qos_violations", "power_watts",
	"placed", "rejected", "arrivals", "departures", "migrations",
	"crashes", "evicted", "retried", "recovered", "lost",
	"degraded", "active", "availability",
}

// csvRow builds one row with empty defaults; set fills named cells.
type csvRow struct {
	cells map[string]string
}

func newCSVRow(rec TrialRecord, rep int, seed int64, scope string) *csvRow {
	return &csvRow{cells: map[string]string{
		"trial":  rec.Trial,
		"key":    rec.Key,
		"cached": strconv.FormatBool(rec.Cached),
		"rep":    strconv.Itoa(rep),
		"seed":   strconv.FormatInt(seed, 10),
		"scope":  scope,
	}}
}

func (r *csvRow) set(col string, v string) *csvRow {
	r.cells[col] = v
	return r
}

func (r *csvRow) setInt(col string, v int) *csvRow { return r.set(col, strconv.Itoa(v)) }

func (r *csvRow) setFloat(col string, v float64) *csvRow {
	return r.set(col, strconv.FormatFloat(v, 'g', -1, 64))
}

func (r *csvRow) strings() []string {
	out := make([]string, len(csvHeader))
	for i, col := range csvHeader {
		out[i] = r.cells[col]
	}
	return out
}

// csvRows flattens one repetition of one trial into rows, by shape.
func csvRows(rec TrialRecord, rep core.TrialResult) [][]string {
	var out [][]string
	switch {
	case rep.Churn != nil:
		c := rep.Churn
		row := newCSVRow(rec, rep.Rep, rep.Seed, "churn").
			setFloat("rtt_mean_ms", c.RTT.Mean).setFloat("rtt_p99_ms", c.RTT.P99).
			setInt("qos_violations", c.QoSViolations).setFloat("power_watts", c.MeanPowerWatts).
			setInt("rejected", c.Rejected).setInt("arrivals", c.Arrivals).
			setInt("departures", c.Departures).setInt("migrations", c.Migrations).
			setInt("crashes", c.Crashes).setInt("evicted", c.Evicted).
			setInt("retried", c.Retried).setInt("recovered", c.Recovered).
			setInt("lost", c.Lost).setInt("degraded", c.DegradedSessionEpochs).
			setFloat("active", c.MeanActive).setFloat("availability", c.Availability)
		out = append(out, row.strings())
		for _, e := range c.Epochs {
			out = append(out, epochCSVRow(rec, rep.Rep, rep.Seed, e))
		}
	case rep.Fleet != nil:
		f := rep.Fleet
		row := newCSVRow(rec, rep.Rep, rep.Seed, "fleet").
			setFloat("rtt_mean_ms", f.RTT.Mean).setFloat("rtt_p99_ms", f.RTT.P99).
			setInt("qos_violations", f.QoSViolations).setFloat("power_watts", f.TotalPowerWatts).
			setInt("placed", f.Placed).setInt("rejected", f.Rejected)
		out = append(out, row.strings())
		for _, m := range f.Machines {
			for ii, ir := range m.Results {
				row := newCSVRow(rec, rep.Rep, rep.Seed, "instance").
					setInt("machine", m.Machine).setInt("instance", ii).
					set("benchmark", ir.Benchmark).
					setFloat("server_fps", ir.ServerFPS).setFloat("client_fps", ir.ClientFPS).
					setFloat("rtt_mean_ms", ir.RTT.Mean).setFloat("rtt_p99_ms", ir.RTT.P99)
				out = append(out, row.strings())
			}
		}
	default:
		for ii, ir := range rep.Results {
			row := newCSVRow(rec, rep.Rep, rep.Seed, "instance").
				setInt("instance", ii).set("benchmark", ir.Benchmark).
				setFloat("server_fps", ir.ServerFPS).setFloat("client_fps", ir.ClientFPS).
				setFloat("rtt_mean_ms", ir.RTT.Mean).setFloat("rtt_p99_ms", ir.RTT.P99).
				setFloat("power_watts", rep.PowerWatts)
			out = append(out, row.strings())
		}
	}
	return out
}

// epochCSVRow renders one churn epoch as a CSV row. Shared between the
// in-memory path (ChurnResult.Epochs) and the streaming spill sink, so
// the two cannot drift column-wise.
func epochCSVRow(rec TrialRecord, rep int, seed int64, e core.EpochResult) []string {
	return newCSVRow(rec, rep, seed, "epoch").
		setInt("epoch", e.Epoch).
		setFloat("rtt_mean_ms", e.RTT.Mean).setFloat("rtt_p99_ms", e.RTT.P99).
		setInt("qos_violations", e.QoSViolations).setFloat("power_watts", e.PowerWatts).
		setInt("rejected", e.Rejected).setInt("arrivals", e.Arrivals).
		setInt("departures", e.Departures).setInt("migrations", e.Migrations).
		setInt("crashes", e.Crashes).setInt("evicted", e.Evicted).
		setInt("retried", e.Retried).setInt("recovered", e.Recovered).
		setInt("degraded", e.Degraded).setInt("active", e.Active).
		strings()
}

func (s *Server) handleResultsCSV(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	cw := csv.NewWriter(w)
	_ = cw.Write(csvHeader)
	for _, rec := range j.snapshotRecords() {
		for _, rep := range rec.Reps {
			for _, row := range csvRows(rec, rep) {
				_ = cw.Write(row)
			}
		}
	}
	// Streamed churn trials carry no Epochs in their results — their
	// per-epoch rows were spilled by the sink as they happened.
	for _, spill := range j.snapshotSpills() {
		for _, row := range spill.snapshot() {
			_ = cw.Write(row)
		}
	}
	cw.Flush()
}
