package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"pictor/internal/core"
	"pictor/internal/exp"
)

// ErrQueueFull is returned by submit when the pending queue is at
// capacity — the HTTP layer maps it to 503 so clients back off instead
// of piling unbounded work onto the box.
var ErrQueueFull = errors.New("serve: job queue full")

var errClosed = errors.New("serve: server closed")

// RunnerFunc executes a trial batch and returns per-trial repetitions
// plus any per-unit panics. The default wraps core.RunTrialsChecked;
// tests substitute stubs to pin queue behaviour (cancellation, panic
// warnings) without simulating. The ctx is the job's: the queue already
// checks it between trial units — a runner may additionally honor it
// mid-batch, the production one does not (cancellation is
// between-units by design, matching the runner's unit granularity).
type RunnerFunc func(ctx context.Context, trials []exp.Trial, cfg core.ExperimentConfig) ([][]core.TrialResult, []*exp.PanicError)

func defaultRunner(_ context.Context, trials []exp.Trial, cfg core.ExperimentConfig) ([][]core.TrialResult, []*exp.PanicError) {
	return core.RunTrialsChecked(trials, cfg)
}

// queue owns job registration, the pending channel, and the worker
// pool. Workers is the concurrent-job cap: each worker runs one job at
// a time, trial by trial, so at most Workers simulations batches are in
// flight regardless of how much is queued.
type queue struct {
	store    *store
	runner   RunnerFunc
	parallel int

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	closed bool

	pending chan *Job
	wg      sync.WaitGroup
}

func newQueue(workers, depth int, st *store, runner RunnerFunc, parallel int) *queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 64
	}
	q := &queue{
		store:    st,
		runner:   runner,
		parallel: parallel,
		jobs:     map[string]*Job{},
		pending:  make(chan *Job, depth),
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// submit registers a job for the spec and enqueues it.
func (q *queue) submit(spec core.ExperimentSpec, trials []exp.Trial) (*Job, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, errClosed
	}
	q.nextID++
	j := newJob(fmt.Sprintf("j%d", q.nextID), spec, trials)
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.mu.Unlock()

	select {
	case q.pending <- j:
		return j, nil
	default:
		q.mu.Lock()
		delete(q.jobs, j.ID)
		q.order = q.order[:len(q.order)-1]
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// job looks a job up by ID (nil when unknown).
func (q *queue) job(id string) *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.jobs[id]
}

// statuses snapshots every job in submission order.
func (q *queue) statuses() []JobStatus {
	q.mu.Lock()
	ids := append([]string(nil), q.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = q.jobs[id]
	}
	q.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

func (q *queue) worker() {
	defer q.wg.Done()
	for j := range q.pending {
		q.run(j)
	}
}

// run executes one job trial-by-trial. Per trial: answer from the
// result store when the canonical key hits, otherwise execute through
// the runner and record. The job's ctx is checked between units — a
// cancelled job stops there, keeping every already-completed unit. A
// panicking unit becomes a job warning naming the poisoned trial (and
// is not cached), never a worker crash: the server outlives any spec.
func (q *queue) run(j *Job) {
	if !j.start() {
		return // cancelled while queued
	}
	cfg := j.Spec.Config()
	cfg.Parallel = q.parallel
	for _, t := range j.Trials {
		if j.ctx.Err() != nil {
			j.finish(StateCancelled)
			return
		}
		rec := TrialRecord{Trial: t.ID, Key: t.Key(), CanonicalKey: t.CanonicalKey()}
		sk := storeKey(t, cfg)
		if reps, ok := q.store.get(sk); ok {
			rec.Cached = true
			rec.Reps = reps
		} else {
			if j.Spec.Stream {
				// Streamed churn trials route epoch rows through a spill
				// sink instead of retaining them in the result. The
				// rollup-only result is still cached (its Key carries the
				// rollup marker, so it can never answer a non-streamed
				// spec); a later cache hit serves the rollup without
				// epoch rows, matching what the streaming contract keeps.
				spill := newChurnSpill(t.ID, rec.Key)
				t.Sink = spill
				j.addSpill(spill)
			}
			res, panics := q.runner(j.ctx, []exp.Trial{t}, cfg)
			if len(res) > 0 {
				rec.Reps = res[0]
			}
			for _, pe := range panics {
				j.warn(t.ID, pe)
			}
			if len(panics) == 0 && len(rec.Reps) > 0 {
				q.store.put(sk, rec.Reps)
			}
		}
		j.complete(rec)
	}
	// A cancel that lands during the final unit changes nothing: every
	// unit completed, so the job did its work.
	j.finish(StateDone)
}

// health reports the pending channel's occupancy and whether any
// in-flight (queued or running) job streams its churn results — the
// signals the health endpoint surfaces so an operator can see both
// backlog and which sink memory mode the box is currently paying for.
func (q *queue) health() (depth, capacity int, streaming bool) {
	q.mu.Lock()
	jobs := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		jobs = append(jobs, j)
	}
	depth, capacity = len(q.pending), cap(q.pending)
	q.mu.Unlock()
	for _, j := range jobs {
		if j.Spec.Stream && !j.Status().State.terminal() {
			streaming = true
			break
		}
	}
	return depth, capacity, streaming
}

// close cancels every job, stops accepting submissions, and waits for
// the workers to drain (cancelled queued jobs are skipped, running ones
// stop at the next unit boundary).
func (q *queue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	jobs := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		jobs = append(jobs, j)
	}
	q.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	close(q.pending)
	q.wg.Wait()
}
