package serve

import (
	"fmt"
	"testing"

	"pictor/internal/core"
)

// rep builds a distinguishable single-repetition result for key
// identity checks.
func rep(i int) []core.TrialResult {
	return []core.TrialResult{{Seed: int64(i)}}
}

// TestStoreLRUEviction pins the cache's garbage collection: the store
// holds at most its bound, inserting past it evicts the
// least-recently-used entry, and both gets and puts refresh recency —
// so the working set survives and cold sweeps age out.
func TestStoreLRUEviction(t *testing.T) {
	s := newStore(3)
	for i := 0; i < 3; i++ {
		s.put(fmt.Sprintf("k%d", i), rep(i))
	}

	// Touch k0: it becomes most-recent, so the next insert must evict
	// k1 (the oldest untouched entry), not k0.
	if _, ok := s.get("k0"); !ok {
		t.Fatal("k0 must be cached")
	}
	s.put("k3", rep(3))
	if _, ok := s.get("k1"); ok {
		t.Fatal("k1 should have been evicted as least-recently-used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := s.get(k); !ok {
			t.Fatalf("%s should have survived the eviction", k)
		}
	}

	// Re-putting an existing key updates in place — no eviction, and
	// the new value is served.
	s.put("k2", rep(42))
	got, ok := s.get("k2")
	if !ok || got[0].Seed != 42 {
		t.Fatalf("k2 re-put must update in place: ok=%t got=%+v", ok, got)
	}

	// k2 is now most-recent; inserting two fresh keys evicts k0 then
	// k3 (recency order), leaving {k2, k4, k5}.
	s.put("k4", rep(4))
	s.put("k5", rep(5))
	for _, k := range []string{"k0", "k3"} {
		if _, ok := s.get(k); ok {
			t.Fatalf("%s should have aged out", k)
		}
	}
	for _, k := range []string{"k2", "k4", "k5"} {
		if _, ok := s.get(k); !ok {
			t.Fatalf("%s should still be cached", k)
		}
	}

	entries, _, _, evictions := s.stats()
	if entries != 3 {
		t.Fatalf("store grew past its bound: %d entries", entries)
	}
	if evictions != 3 {
		t.Fatalf("want 3 evictions (k1, k0, k3), got %d", evictions)
	}
}

// TestStoreDefaultBound pins the default: an unconfigured store is
// still bounded.
func TestStoreDefaultBound(t *testing.T) {
	s := newStore(0)
	if s.max != defaultStoreEntries {
		t.Fatalf("default bound = %d, want %d", s.max, defaultStoreEntries)
	}
	for i := 0; i < defaultStoreEntries+10; i++ {
		s.put(fmt.Sprintf("k%d", i), rep(i))
	}
	entries, _, _, evictions := s.stats()
	if entries != defaultStoreEntries {
		t.Fatalf("unconfigured store grew to %d entries", entries)
	}
	if evictions != 10 {
		t.Fatalf("want 10 evictions, got %d", evictions)
	}
}

// TestStoreStatsCountLookups pins the hit/miss accounting the health
// endpoint reports.
func TestStoreStatsCountLookups(t *testing.T) {
	s := newStore(2)
	if _, ok := s.get("absent"); ok {
		t.Fatal("empty store cannot hit")
	}
	s.put("present", rep(1))
	if _, ok := s.get("present"); !ok {
		t.Fatal("stored key must hit")
	}
	entries, hits, misses, evictions := s.stats()
	if entries != 1 || hits != 1 || misses != 1 || evictions != 0 {
		t.Fatalf("stats = (%d, %d, %d, %d), want (1, 1, 1, 0)", entries, hits, misses, evictions)
	}
}
