package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pictor/internal/core"
	"pictor/internal/exp"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec string) JobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit decode: %v (%s)", err, body)
	}
	return st
}

type sseFrame struct {
	Type string
	Data json.RawMessage
}

// readSSE consumes the job's event stream, invoking onFrame per frame,
// until the terminal "done" frame (returned) or the stream ends.
func readSSE(t *testing.T, ts *httptest.Server, jobID string, onFrame func(sseFrame)) doneEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		case line == "" && cur.Type != "":
			if onFrame != nil {
				onFrame(cur)
			}
			if cur.Type == "done" {
				var d doneEvent
				if err := json.Unmarshal(cur.Data, &d); err != nil {
					t.Fatalf("done frame: %v (%s)", err, cur.Data)
				}
				return d
			}
			cur = sseFrame{}
		}
	}
	t.Fatalf("event stream ended without a done frame (scan err %v)", sc.Err())
	return doneEvent{}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d: %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s decode: %v", path, err)
	}
}

// TestServerGridEndToEnd is the tentpole's contract in one flow: submit
// a small real grid over HTTP, follow SSE to completion, export JSON
// and CSV, then re-submit the identical spec and assert the canonical
// result cache answers every trial without re-execution, byte-identical
// to the first run.
func TestServerGridEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) simulation grid")
	}
	_, ts := newTestServer(t, Config{Parallel: 2})
	const spec = `{"kind":"grid","profiles":"STK","seconds":2,"warmup":1,"maxInstances":1,"reps":1}`

	st := submit(t, ts, spec)
	if st.State != StateQueued || st.Total == 0 {
		t.Fatalf("fresh job status = %+v", st)
	}
	progress := 0
	done := readSSE(t, ts, st.ID, func(f sseFrame) {
		if f.Type == "progress" {
			progress++
		}
	})
	if done.State != StateDone || done.Done != st.Total || done.Warnings != 0 {
		t.Fatalf("done frame = %+v (total %d)", done, st.Total)
	}
	if progress != st.Total {
		t.Fatalf("saw %d progress frames, want %d", progress, st.Total)
	}
	if done.Executed != st.Total || done.Cached != 0 {
		t.Fatalf("first run must execute everything: %+v", done)
	}

	var ex1 exportJSON
	getJSON(t, ts, "/jobs/"+st.ID+"/results", &ex1)
	if len(ex1.Trials) != st.Total {
		t.Fatalf("export has %d trials, want %d", len(ex1.Trials), st.Total)
	}
	for _, rec := range ex1.Trials {
		if len(rec.Reps) != 1 || rec.Cached {
			t.Fatalf("first-run record %q: cached=%t reps=%d", rec.Trial, rec.Cached, len(rec.Reps))
		}
	}

	csvResp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/results.csv")
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	defer csvResp.Body.Close()
	rows, err := csv.NewReader(csvResp.Body).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if len(rows) < 2 || len(rows[0]) != len(csvHeader) {
		t.Fatalf("csv shape: %d rows, %d cols", len(rows), len(rows[0]))
	}

	// Identical spec again: the cache must answer everything, fast.
	start := time.Now()
	st2 := submit(t, ts, spec)
	done2 := readSSE(t, ts, st2.ID, nil)
	if done2.State != StateDone || done2.Cached != st.Total || done2.Executed != 0 {
		t.Fatalf("re-run must be fully cached: %+v", done2)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cached re-run took %s", elapsed)
	}
	var ex2 exportJSON
	getJSON(t, ts, "/jobs/"+st2.ID+"/results", &ex2)
	for i, rec := range ex2.Trials {
		if !rec.Cached {
			t.Fatalf("re-run record %q not served from cache", rec.Trial)
		}
		a, _ := json.Marshal(ex1.Trials[i].Reps)
		b, _ := json.Marshal(rec.Reps)
		if !bytes.Equal(a, b) {
			t.Fatalf("cached results for %q differ from the executed run", rec.Trial)
		}
	}
}

// stubResult fabricates one zero-ish repetition per trial.
func stubResult(trials []exp.Trial) [][]core.TrialResult {
	out := make([][]core.TrialResult, len(trials))
	for i := range out {
		out[i] = []core.TrialResult{{Seed: 1}}
	}
	return out
}

// TestServerCancelStopsBetweenUnits pins the cancellation contract: a
// cancel issued mid-job stops the sweep at the next trial-unit
// boundary — completed units stay, pending ones never run.
func TestServerCancelStopsBetweenUnits(t *testing.T) {
	var calls int32
	runner := func(ctx context.Context, trials []exp.Trial, _ core.ExperimentConfig) ([][]core.TrialResult, []*exp.PanicError) {
		if atomic.AddInt32(&calls, 1) > 1 {
			// Trials after the first block until the job is cancelled,
			// so the test fully controls where the cancel lands.
			<-ctx.Done()
		}
		return stubResult(trials), nil
	}
	_, ts := newTestServer(t, Config{Runner: runner})

	st := submit(t, ts, `{"kind":"fleet","machines":2,"requests":4}`)
	if st.Total != 4 {
		t.Fatalf("fleet spec must lower to 4 policy trials, got %d", st.Total)
	}
	cancelled := false
	done := readSSE(t, ts, st.ID, func(f sseFrame) {
		if f.Type == "progress" && !cancelled {
			cancelled = true
			resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/cancel", "application/json", nil)
			if err != nil {
				t.Errorf("cancel: %v", err)
				return
			}
			resp.Body.Close()
		}
	})
	if done.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", done.State)
	}
	if done.Done == 0 || done.Done >= st.Total {
		t.Fatalf("cancelled between units: done = %d of %d", done.Done, st.Total)
	}
	var status JobStatus
	getJSON(t, ts, "/jobs/"+st.ID, &status)
	if status.State != StateCancelled || status.Done != done.Done {
		t.Fatalf("status after cancel = %+v", status)
	}
}

// TestServerPanicBecomesJobWarning pins panic isolation end to end: a
// trial that panics in execution surfaces as a job-level warning
// carrying the unit's Trial.Key(), the job still completes, the
// poisoned result is not cached, and the server keeps serving.
func TestServerPanicBecomesJobWarning(t *testing.T) {
	runner := func(_ context.Context, trials []exp.Trial, cfg core.ExperimentConfig) ([][]core.TrialResult, []*exp.PanicError) {
		// Route through the real checked runner so the PanicError (and
		// its TrialKey) is produced by the production recovery path.
		return exp.RunChecked(trials, func(exp.Trial, exp.Unit) core.TrialResult {
			panic("poisoned unit")
		}, exp.RunOptions{Parallel: 1, Reps: cfg.Reps, BaseSeed: cfg.Seed})
	}
	_, ts := newTestServer(t, Config{Runner: runner})

	st := submit(t, ts, `{"kind":"churn","machines":2,"epochs":3}`)
	warnings := 0
	done := readSSE(t, ts, st.ID, func(f sseFrame) {
		if f.Type == "warning" {
			warnings++
			var wv warningEvent
			if err := json.Unmarshal(f.Data, &wv); err != nil {
				t.Errorf("warning frame: %v", err)
			} else if wv.Key == "" || !strings.Contains(wv.Message, wv.Key) {
				t.Errorf("warning must carry the unit's Trial.Key(): %+v", wv)
			}
		}
	})
	if done.State != StateDone || done.Done != st.Total {
		t.Fatalf("poisoned job must still complete: %+v", done)
	}
	if warnings != st.Total || done.Warnings != st.Total {
		t.Fatalf("want %d warnings, saw %d (done frame says %d)", st.Total, warnings, done.Warnings)
	}
	var status JobStatus
	getJSON(t, ts, "/jobs/"+st.ID, &status)
	if len(status.Warnings) != st.Total {
		t.Fatalf("status warnings = %d, want %d", len(status.Warnings), st.Total)
	}
	for i, msg := range status.Warnings {
		if !strings.Contains(msg, "fleet:") {
			t.Fatalf("warning %d does not name a trial key: %q", i, msg)
		}
	}

	// Poisoned results must not be cached: the identical spec executes
	// again (and the server is still alive to take it).
	st2 := submit(t, ts, `{"kind":"churn","machines":2,"epochs":3}`)
	done2 := readSSE(t, ts, st2.ID, nil)
	if done2.Cached != 0 || done2.Executed != st.Total {
		t.Fatalf("poisoned trials must re-execute on resubmission: %+v", done2)
	}
}

// TestServerStreamedChurnSpillsEpochs pins the server half of the
// streaming result API: a spec with "stream": true runs rollup-only
// (no per-epoch structs in the JSON export or the result cache), yet
// /results.csv still carries every epoch row — spilled by the sink as
// the kernel produced them — and /healthz reports the queue's occupancy
// plus the in-flight sink memory mode.
func TestServerStreamedChurnSpillsEpochs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) churn simulation")
	}
	_, ts := newTestServer(t, Config{Parallel: 2})

	var health struct {
		Status string `json:"status"`
		Queue  struct {
			Depth    int `json:"depth"`
			Capacity int `json:"capacity"`
		} `json:"queue"`
		Sink string `json:"sink"`
	}
	getJSON(t, ts, "/healthz", &health)
	if health.Status != "ok" || health.Sink != "in-memory" {
		t.Fatalf("idle health = %+v, want ok/in-memory", health)
	}
	if health.Queue.Depth != 0 || health.Queue.Capacity < 1 {
		t.Fatalf("idle queue = %+v, want empty with positive capacity", health.Queue)
	}

	const spec = `{"kind":"churn","machines":2,"epochs":3,"seconds":2,"warmup":1,"reps":1,"stream":true}`
	st := submit(t, ts, spec)
	done := readSSE(t, ts, st.ID, nil)
	if done.State != StateDone || done.Warnings != 0 {
		t.Fatalf("done frame = %+v", done)
	}

	// JSON export: rollup results only — the streaming contract is that
	// per-epoch detail never lives in the retained result.
	var ex exportJSON
	getJSON(t, ts, "/jobs/"+st.ID+"/results", &ex)
	if len(ex.Trials) != st.Total {
		t.Fatalf("export has %d trials, want %d", len(ex.Trials), st.Total)
	}
	for _, rec := range ex.Trials {
		for _, rep := range rec.Reps {
			if rep.Churn == nil {
				t.Fatalf("trial %q rep %d: no churn result", rec.Trial, rep.Rep)
			}
			if len(rep.Churn.Epochs) != 0 {
				t.Fatalf("trial %q retained %d epoch rows despite streaming", rec.Trial, len(rep.Churn.Epochs))
			}
			if rep.Churn.Arrivals == 0 || rep.Churn.OfferedSessionEpochs == 0 {
				t.Fatalf("trial %q rollup looks empty: %+v", rec.Trial, rep.Churn)
			}
		}
	}

	// CSV export: the spilled epoch rows are stitched back in — one per
	// (trial, rep, epoch).
	epochRows := countCSVEpochRows(t, ts, st.ID)
	if want := st.Total * 1 * 3; epochRows != want {
		t.Fatalf("csv has %d epoch rows, want %d", epochRows, want)
	}

	getJSON(t, ts, "/healthz", &health)
	if health.Sink != "in-memory" {
		t.Fatalf("sink mode after completion = %q, want in-memory", health.Sink)
	}

	// Resubmission answers from the cache: the rollup is served without
	// re-execution, and — since nothing executed — without epoch rows.
	st2 := submit(t, ts, spec)
	done2 := readSSE(t, ts, st2.ID, nil)
	if done2.Cached != st.Total || done2.Executed != 0 {
		t.Fatalf("streamed re-run must be fully cached: %+v", done2)
	}
	if rows := countCSVEpochRows(t, ts, st2.ID); rows != 0 {
		t.Fatalf("cached streamed job has %d epoch rows, want 0", rows)
	}
}

// countCSVEpochRows fetches a job's CSV export and counts scope=="epoch"
// rows.
func countCSVEpochRows(t *testing.T, ts *httptest.Server, jobID string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + jobID + "/results.csv")
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	defer resp.Body.Close()
	rows, err := csv.NewReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	scopeCol := -1
	for i, col := range rows[0] {
		if col == "scope" {
			scopeCol = i
		}
	}
	if scopeCol < 0 {
		t.Fatalf("csv header lacks scope column: %v", rows[0])
	}
	n := 0
	for _, row := range rows[1:] {
		if row[scopeCol] == "epoch" {
			n++
		}
	}
	return n
}

// TestServerRejectsBadSpecs: validation errors come back as 400 with
// the normalizer's message; unknown JSON fields are rejected.
func TestServerRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: func(_ context.Context, trials []exp.Trial, _ core.ExperimentConfig) ([][]core.TrialResult, []*exp.PanicError) {
		return stubResult(trials), nil
	}})
	for _, bad := range []string{
		`{"kind":"figs"}`,
		`{"kind":"faults","mttr":3}`,
		`{"kind":"fleet","epochs":5}`,
		`{"kind":"fleet","machenes":3}`, // unknown field
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %s: status %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/nope")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestStoreCanonicalKeySharing: two as-executed-identical trial
// spellings share one cache line — the property that makes the store a
// cache instead of a lookup table of spellings.
func TestStoreCanonicalKeySharing(t *testing.T) {
	cfg := core.ExperimentConfig{Seed: 1, Reps: 1}
	a := exp.FleetTrial(exp.FleetShape{Machines: 3, Policy: "binpack", Requests: 6, MachineCores: 0})
	b := exp.FleetTrial(exp.FleetShape{Machines: 3, Policy: "binpack", Requests: 6, MachineCores: 8})
	a.Warmup, a.Measure, b.Warmup, b.Measure = 1, 5, 1, 5
	if storeKey(a, cfg) != storeKey(b, cfg) {
		t.Fatalf("as-executed-identical spellings must share a store key:\n %q\n %q",
			storeKey(a, cfg), storeKey(b, cfg))
	}
	reps2 := cfg
	reps2.Reps = 2
	if storeKey(a, cfg) == storeKey(a, reps2) {
		t.Fatal("rep count must be part of the cache identity")
	}
	st := newStore(0)
	st.put(storeKey(a, cfg), []core.TrialResult{{Seed: 7}})
	got, ok := st.get(storeKey(b, cfg))
	if !ok || got[0].Seed != 7 {
		t.Fatalf("spelling b must hit spelling a's entry: ok=%t got=%+v", ok, got)
	}
	if _, ok := st.get("missing"); ok {
		t.Fatal("unexpected hit")
	}
	if entries, hits, misses, _ := st.stats(); entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", entries, hits, misses)
	}
}

// TestQueueFullReturns503: submissions beyond the queue depth are
// rejected with 503, not silently dropped or unboundedly buffered.
func TestQueueFullReturns503(t *testing.T) {
	block := make(chan struct{})
	runner := func(ctx context.Context, trials []exp.Trial, _ core.ExperimentConfig) ([][]core.TrialResult, []*exp.PanicError) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return stubResult(trials), nil
	}
	_, ts := newTestServer(t, Config{Runner: runner, QueueDepth: 1})
	defer close(block)

	// First job occupies the single worker, second fills the queue (the
	// worker may or may not have picked the first up yet, so accept one
	// extra in-flight submission before demanding a 503).
	got503 := false
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"kind":"fleet","machines":2,"requests":%d}`, i+2)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			got503 = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
	}
	if !got503 {
		t.Fatal("overfilling the queue never returned 503")
	}
}
