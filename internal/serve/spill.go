package serve

import (
	"sort"
	"sync"

	"pictor/internal/core"
)

// churnSpill is the server's streaming result sink. Attached as the
// Trial.Sink of an executed churn trial whose spec streams, it receives
// every epoch the kernel produces and spills it straight into
// pre-rendered CSV cells. The trial's in-memory result keeps only the
// horizon rollup (O(1) per repetition — that is what the JSON export
// and the result cache hold), occupancy detail is dropped at the sink,
// and /results.csv stitches the spilled "epoch" rows back in: per-epoch
// visibility at O(epochs) cells instead of O(machines x epochs)
// result structs living in the job for the server's lifetime.
type churnSpill struct {
	rec TrialRecord // identity cells (trial ID + key); spilled rows are never cached

	mu   sync.Mutex
	rows map[int][][]string // rep -> epoch rows, in epoch order within a rep
}

func newChurnSpill(trialID, key string) *churnSpill {
	return &churnSpill{
		rec:  TrialRecord{Trial: trialID, Key: key},
		rows: map[int][][]string{},
	}
}

// ChurnSinkFor implements core.ChurnSinkFactory: one sink per
// repetition, so concurrently-executing reps never interleave rows
// within a rep and every row carries its repetition's seed.
func (cs *churnSpill) ChurnSinkFor(rep int, seed int64) core.ChurnSink {
	return &spillSink{spill: cs, rep: rep, seed: seed}
}

// snapshot returns the spilled rows in (rep, epoch) order. Safe while
// the trial is still executing — the export simply sees the epochs
// recorded so far, matching the partial-while-running export contract.
func (cs *churnSpill) snapshot() [][]string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	reps := make([]int, 0, len(cs.rows))
	for rep := range cs.rows {
		reps = append(reps, rep)
	}
	sort.Ints(reps)
	var out [][]string
	for _, rep := range reps {
		out = append(out, cs.rows[rep]...)
	}
	return out
}

// spillSink is one repetition's view of the spill. Epoch results render
// to CSV cells immediately and append under the spill's lock; the lock
// is per-epoch, far coarser than the simulation's inner loops.
type spillSink struct {
	spill *churnSpill
	rep   int
	seed  int64
}

func (s *spillSink) ObserveEpoch(e core.EpochResult) {
	row := epochCSVRow(s.spill.rec, s.rep, s.seed, e)
	s.spill.mu.Lock()
	s.spill.rows[s.rep] = append(s.spill.rows[s.rep], row)
	s.spill.mu.Unlock()
}

// ObserveOccupancy drops per-machine detail: the spill exists to keep
// streamed sweeps bounded, and occupancy is the one O(machines) row set
// per epoch. Callers wanting occupancy run without streaming.
func (s *spillSink) ObserveOccupancy(int, []core.MachineOccupancy) {}
