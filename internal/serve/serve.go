// Package serve is Pictor's benchmark-as-a-service control plane: a
// long-running HTTP/JSON API over the same experiment vocabulary the
// pictor-bench CLI runs in batch.
//
// Clients POST a core.ExperimentSpec to /jobs; the server normalizes it
// through the exact validation the CLI uses (the two cannot drift),
// lowers it onto the matching comparison trial batch, and runs it on a
// bounded worker pool. Progress streams over Server-Sent Events; jobs
// cancel between trial units; per-unit panics surface as job warnings
// naming the poisoned trial, never a server crash. Executed trials land
// in a result store keyed by canonical (as-executed) Trial.Key(), so
// re-submitting an identical spec — same reps, same seed — answers from
// recorded results in milliseconds: the grid's dedup machinery, turned
// into a cross-run cache.
//
// Endpoints:
//
//	GET  /healthz                  liveness + cache, queue and sink stats
//	POST /jobs                     submit a spec → 202 {"id": ...}
//	GET  /jobs                     all jobs, submission order
//	GET  /jobs/{id}                one job's status
//	POST /jobs/{id}/cancel         request cancellation
//	GET  /jobs/{id}/events         SSE progress stream
//	GET  /jobs/{id}/results        JSON export (partial while running)
//	GET  /jobs/{id}/results.csv    CSV export, one row per measurement
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"pictor/internal/core"
)

// Config sizes the server.
type Config struct {
	// Parallel is each job's experiment-runner worker count (<= 0 uses
	// every core).
	Parallel int
	// Jobs caps concurrently running jobs (default 1: one simulation
	// batch owns the box; queued jobs wait).
	Jobs int
	// QueueDepth bounds the pending queue (default 64); submissions
	// beyond it get 503.
	QueueDepth int
	// StoreEntries bounds the cross-run result cache (default 256
	// cached trials); inserting past the bound evicts the
	// least-recently-used entry.
	StoreEntries int
	// Runner substitutes the trial executor (tests); nil runs
	// core.RunTrialsChecked.
	Runner RunnerFunc
}

// Server wires the store, queue and HTTP mux. Create with New, expose
// Handler() over any listener, and Close() on shutdown.
type Server struct {
	store *store
	queue *queue
	mux   *http.ServeMux
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	runner := cfg.Runner
	if runner == nil {
		runner = defaultRunner
	}
	s := &Server{store: newStore(cfg.StoreEntries)}
	s.queue = newQueue(cfg.Jobs, cfg.QueueDepth, s.store, runner, cfg.Parallel)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/results", s.handleResultsJSON)
	s.mux.HandleFunc("GET /jobs/{id}/results.csv", s.handleResultsCSV)
	return s
}

// Handler is the server's HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels every job and drains the worker pool. The HTTP handler
// stays safe to call (submissions get 503-style errors) but the typical
// caller shuts the listener down first.
func (s *Server) Close() { s.queue.close() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	entries, hits, misses, evictions := s.store.stats()
	depth, capacity, streaming := s.queue.health()
	// "sink" is the in-flight result memory mode: "streaming" while any
	// live job spills epoch rows through the streaming sink, "in-memory"
	// otherwise — the O(epochs)-vs-rollup distinction an operator sizing
	// a million-session sweep wants visible before submitting more.
	sink := "in-memory"
	if streaming {
		sink = "streaming"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"cache":  map[string]int{"entries": entries, "hits": hits, "misses": misses, "evictions": evictions},
		"queue":  map[string]int{"depth": depth, "capacity": capacity},
		"sink":   sink,
	})
}

// handleSubmit validates a spec and queues it. Unknown JSON fields are
// rejected — a typoed knob silently ignored would run a different
// experiment than the author believes, the exact failure mode the spec
// vocabulary exists to prevent.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec core.ExperimentSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	trials := norm.Trials()
	for i := range trials {
		// The server stores measurements, not simulated machines:
		// retained clusters (KeepSystem) exist for in-process estimators
		// the HTTP surface does not expose, and would pin every machine
		// of every cached grid in memory for the server's lifetime.
		trials[i].KeepSystem = false
	}
	job, err := s.queue.submit(norm, trials)
	if err != nil {
		// Both overflow and shutdown are "try again elsewhere/later".
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	j := s.queue.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.statuses())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's event log as SSE: full replay first
// (late subscribers see every frame), then live follow until the
// terminal "done" frame or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	// A disconnecting client must wake its reader out of cond.Wait —
	// conds know nothing about contexts, so bridge with AfterFunc.
	defer context.AfterFunc(ctx, j.wake)()
	idx := 0
	for {
		events, terminal := j.eventsSince(ctx, idx)
		for _, e := range events {
			data, err := json.Marshal(e.Data)
			if err != nil {
				data = []byte(`{"error":"marshal failure"}`)
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
		}
		if len(events) > 0 {
			fl.Flush()
			idx += len(events)
		}
		if terminal || ctx.Err() != nil {
			return
		}
	}
}
