package serve

import (
	"fmt"
	"sync"

	"pictor/internal/core"
	"pictor/internal/exp"
)

// store is the cross-run result cache: executed trial repetitions keyed
// by as-executed identity. The grid's in-plan dedup collapses duplicate
// trials within one batch; the store extends that across jobs, so
// re-submitting an identical spec (same reps, same base seed) answers
// from recorded results in milliseconds instead of re-simulating.
type store struct {
	mu      sync.Mutex
	entries map[string][]core.TrialResult
	hits    int
	misses  int
}

func newStore() *store {
	return &store{entries: map[string][]core.TrialResult{}}
}

// storeKey is the cache identity of one trial under one run
// configuration: the trial's canonical (as-executed) key — so two
// spellings the executor runs identically share a cache line — plus
// the repetition count and base seed, which select which executions
// the repetitions actually are. Parallelism is deliberately absent:
// results are byte-identical at any worker count.
func storeKey(t exp.Trial, cfg core.ExperimentConfig) string {
	return fmt.Sprintf("%s|reps=%d|base=%d", t.CanonicalKey(), exp.EffectiveReps(cfg.Reps), cfg.Seed)
}

// get returns the recorded repetitions for a key, counting the lookup.
func (s *store) get(key string) ([]core.TrialResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reps, ok := s.entries[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return reps, ok
}

// put records a trial's executed repetitions. Callers must not store
// poisoned results (a panicked unit leaves a zero-value repetition):
// a failed trial should re-execute on resubmission, not serve zeros
// forever.
func (s *store) put(key string, reps []core.TrialResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[key] = reps
}

// stats reports (entries, hits, misses) for the health endpoint.
func (s *store) stats() (entries, hits, misses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.hits, s.misses
}
