package serve

import (
	"container/list"
	"fmt"
	"sync"

	"pictor/internal/core"
	"pictor/internal/exp"
)

// defaultStoreEntries bounds the result cache when the server config
// does not say otherwise: 256 cached trials is plenty for a working
// set of sweeps while keeping the worst case — wide grids of
// many-epoch churn results — bounded regardless of uptime.
const defaultStoreEntries = 256

// store is the cross-run result cache: executed trial repetitions keyed
// by as-executed identity. The grid's in-plan dedup collapses duplicate
// trials within one batch; the store extends that across jobs, so
// re-submitting an identical spec (same reps, same base seed) answers
// from recorded results in milliseconds instead of re-simulating.
//
// The cache is bounded: at most max entries live at once, and inserting
// past the bound evicts the least-recently-used entry (both gets and
// puts refresh recency). A long-running server sweeping disjoint specs
// therefore plateaus instead of growing without limit; an evicted trial
// simply re-executes on resubmission.
type store struct {
	mu        sync.Mutex
	max       int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      int
	misses    int
	evictions int
}

// storeEntry is one cache line: the key rides along so eviction of the
// list tail can delete its map entry.
type storeEntry struct {
	key  string
	reps []core.TrialResult
}

// newStore builds a bounded result cache; max <= 0 selects the default
// bound.
func newStore(max int) *store {
	if max <= 0 {
		max = defaultStoreEntries
	}
	return &store{
		max:     max,
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

// storeKey is the cache identity of one trial under one run
// configuration: the trial's canonical (as-executed) key — so two
// spellings the executor runs identically share a cache line — plus
// the repetition count and base seed, which select which executions
// the repetitions actually are. Parallelism is deliberately absent:
// results are byte-identical at any worker count.
func storeKey(t exp.Trial, cfg core.ExperimentConfig) string {
	return fmt.Sprintf("%s|reps=%d|base=%d", t.CanonicalKey(), exp.EffectiveReps(cfg.Reps), cfg.Seed)
}

// get returns the recorded repetitions for a key, counting the lookup
// and refreshing the entry's recency on a hit.
func (s *store) get(key string) ([]core.TrialResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).reps, true
}

// put records a trial's executed repetitions, evicting the
// least-recently-used entry when the bound is exceeded. Callers must
// not store poisoned results (a panicked unit leaves a zero-value
// repetition): a failed trial should re-execute on resubmission, not
// serve zeros forever.
func (s *store) put(key string, reps []core.TrialResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*storeEntry).reps = reps
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&storeEntry{key: key, reps: reps})
	for s.order.Len() > s.max {
		tail := s.order.Back()
		s.order.Remove(tail)
		delete(s.entries, tail.Value.(*storeEntry).key)
		s.evictions++
	}
}

// stats reports (entries, hits, misses, evictions) for the health
// endpoint.
func (s *store) stats() (entries, hits, misses, evictions int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.hits, s.misses, s.evictions
}
