package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pictor/internal/core"
	"pictor/internal/exp"
)

// JobState is a job's lifecycle position. Transitions are
// queued → running → {done, cancelled}; a queued job cancelled before a
// worker picks it up goes terminal directly.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateCancelled JobState = "cancelled"
)

func (s JobState) terminal() bool { return s == StateDone || s == StateCancelled }

// TrialRecord is one trial's outcome inside a job: its identity (human
// ID, raw key, canonical cache key), whether the result cache answered
// it, and the recorded repetitions.
type TrialRecord struct {
	Trial        string `json:"trial"`
	Key          string `json:"key"`
	CanonicalKey string `json:"canonicalKey"`
	Cached       bool   `json:"cached"`
	// Reps holds the per-repetition results ([rep] order). A repetition
	// poisoned by a panic is the zero value — the matching warning on
	// the job names it.
	Reps []core.TrialResult `json:"reps"`
}

// Event is one SSE frame: the event name plus its JSON payload.
type Event struct {
	Type string
	Data any
}

// progressEvent reports one completed trial unit.
type progressEvent struct {
	State     JobState `json:"state"`
	Done      int      `json:"done"`
	Total     int      `json:"total"`
	Cached    int      `json:"cached"`
	Trial     string   `json:"trial"`
	Key       string   `json:"key"`
	FromCache bool     `json:"fromCache"`
}

// warningEvent reports a poisoned unit: the panic was contained to its
// (trial, rep) and the job keeps running.
type warningEvent struct {
	Trial   string `json:"trial"`
	Key     string `json:"key"`
	Rep     int    `json:"rep"`
	Message string `json:"message"`
}

// doneEvent is the terminal frame of every job's stream.
type doneEvent struct {
	State    JobState `json:"state"`
	Done     int      `json:"done"`
	Total    int      `json:"total"`
	Cached   int      `json:"cached"`
	Executed int      `json:"executed"`
	Warnings int      `json:"warnings"`
}

// JobStatus is a job's JSON snapshot (list/status endpoints and the
// export header).
type JobStatus struct {
	ID       string     `json:"id"`
	Kind     string     `json:"kind"`
	State    JobState   `json:"state"`
	Total    int        `json:"total"`
	Done     int        `json:"done"`
	Cached   int        `json:"cached"`
	Executed int        `json:"executed"`
	Warnings []string   `json:"warnings,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Job is one submitted experiment: a normalized spec lowered onto a
// trial batch, executed by a queue worker unit-by-unit. All mutable
// state sits behind mu; the cond broadcasts on every appended event so
// SSE readers (one goroutine per subscriber) replay history and then
// follow live.
type Job struct {
	ID     string
	Spec   core.ExperimentSpec
	Trials []exp.Trial

	// ctx is cancelled by Cancel (and at finish, to release the
	// AfterFunc); the worker checks it between trial units.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	state    JobState
	done     int
	cached   int
	executed int
	warnings []string
	records  []TrialRecord
	spills   []*churnSpill
	events   []Event
	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id string, spec core.ExperimentSpec, trials []exp.Trial) *Job {
	j := &Job{
		ID:      id,
		Spec:    spec,
		Trials:  trials,
		state:   StateQueued,
		created: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	j.ctx, j.cancel = context.WithCancel(context.Background())
	return j
}

// start marks the job running (called by the worker that picked it up).
// It reports false when the job went terminal while queued — a
// cancelled-before-start job must not run.
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// complete records one finished trial unit and emits its progress frame.
func (j *Job) complete(rec TrialRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = append(j.records, rec)
	j.done++
	if rec.Cached {
		j.cached++
	} else {
		j.executed++
	}
	j.events = append(j.events, Event{Type: "progress", Data: progressEvent{
		State: j.state, Done: j.done, Total: len(j.Trials), Cached: j.cached,
		Trial: rec.Trial, Key: rec.Key, FromCache: rec.Cached,
	}})
	j.cond.Broadcast()
}

// warn records a poisoned unit as a job-level warning.
func (j *Job) warn(trialID string, pe *exp.PanicError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	msg := warningMessage(trialID, pe)
	j.warnings = append(j.warnings, msg)
	j.events = append(j.events, Event{Type: "warning", Data: warningEvent{
		Trial: trialID, Key: pe.TrialKey, Rep: pe.Rep, Message: msg,
	}})
	j.cond.Broadcast()
}

// warningMessage names a poisoned unit with its full identity — trial
// ID, repetition, panic value and the trial's Key() — so the author of
// a large sweep can find the one bad spec without re-running anything.
func warningMessage(trialID string, pe *exp.PanicError) string {
	return fmt.Sprintf("trial %q rep %d panicked: %v (key %s)", trialID, pe.Rep, pe.Value, pe.TrialKey)
}

// finish moves the job to a terminal state and appends the done frame
// in the same critical section, so a reader observing a terminal state
// is guaranteed the done event is already in the log (the SSE loop's
// exit condition). Nothing may emit after finish.
func (j *Job) finish(state JobState) {
	j.mu.Lock()
	j.state = state
	j.finished = time.Now()
	j.events = append(j.events, Event{Type: "done", Data: doneEvent{
		State: state, Done: j.done, Total: len(j.Trials),
		Cached: j.cached, Executed: j.executed, Warnings: len(j.warnings),
	}})
	j.cond.Broadcast()
	j.mu.Unlock()
	j.cancel()
}

// Cancel requests cancellation: a still-queued job goes terminal
// immediately (the worker will skip it), a running one stops between
// trial units, and a terminal one is untouched.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.finished = time.Now()
		j.events = append(j.events, Event{Type: "done", Data: doneEvent{
			State: StateCancelled, Total: len(j.Trials),
		}})
		j.cond.Broadcast()
		j.mu.Unlock()
		j.cancel()
		return
	}
	j.mu.Unlock()
	j.cancel()
}

// wake kicks every waiting SSE reader (used by context.AfterFunc when a
// subscriber disconnects, so its reader goroutine re-checks its ctx).
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// Status snapshots the job for JSON.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.ID,
		Kind:     j.Spec.Kind,
		State:    j.state,
		Total:    len(j.Trials),
		Done:     j.done,
		Cached:   j.cached,
		Executed: j.executed,
		Warnings: append([]string(nil), j.warnings...),
		Created:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// addSpill registers a streaming sink attached to one of the job's
// executing trials, in attach (= trial) order.
func (j *Job) addSpill(cs *churnSpill) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.spills = append(j.spills, cs)
}

// snapshotSpills copies the attached streaming sinks so far.
func (j *Job) snapshotSpills() []*churnSpill {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]*churnSpill(nil), j.spills...)
}

// snapshotRecords copies the completed trial records so far.
func (j *Job) snapshotRecords() []TrialRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]TrialRecord(nil), j.records...)
}

// eventsSince blocks until the log grows past idx, the job goes
// terminal, or the subscriber's ctx ends, then returns the new events
// and whether the job is terminal. With finish appending the done frame
// atomically with the state change, (terminal && all events returned)
// means the stream is complete.
func (j *Job) eventsSince(ctx context.Context, idx int) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for idx >= len(j.events) && !j.state.terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	return append([]Event(nil), j.events[idx:]...), j.state.terminal()
}
