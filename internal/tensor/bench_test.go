package tensor

import (
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float64()
	}
	return t
}

func BenchmarkMatMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 36, 9)
	c := randTensor(rng, 9, 6)
	out := New(36, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, c)
	}
}

// The Conv2D hot shape: one cell's im2col rows against the transposed
// kernel matrix (36×9 · (6×9)ᵀ).
func BenchmarkMatMulTransB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 36, 9)
	c := randTensor(rng, 6, 9)
	out := New(36, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(out, a, c)
	}
}

// The batched Conv2D shape: 32 sessions' cells in one matmul.
func BenchmarkMatMulTransBBatch32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 32*36, 9)
	c := randTensor(rng, 6, 9)
	out := New(32*36, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(out, a, c)
	}
}

func BenchmarkIm2ColInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randTensor(rng, 8, 8, 1)
	out := New(36, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(out, in, 3, 3)
	}
}

func BenchmarkSoftmaxInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.Float64()
	}
	out := make([]float64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxInto(out, x)
	}
}
