package tensor

import (
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float64()
	}
	return t
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 36, 9)
	c := randTensor(rng, 9, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

func BenchmarkMatMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 36, 9)
	c := randTensor(rng, 9, 6)
	out := New(36, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, c)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randTensor(rng, 8, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(in, 3, 3)
	}
}

func BenchmarkIm2ColInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randTensor(rng, 8, 8, 1)
	out := New(36, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(out, in, 3, 3)
	}
}

func BenchmarkSoftmaxInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.Float64()
	}
	out := make([]float64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxInto(out, x)
	}
}
