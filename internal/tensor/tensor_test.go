package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	m := New(2, 3)
	if m.Len() != 6 || m.Dims() != 2 {
		t.Fatalf("shape wrong: len=%d dims=%d", m.Len(), m.Dims())
	}
	m.Set(5, 1, 2)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("fresh tensor not zeroed")
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dimension did not panic")
		}
	}()
	New(2, 0)
}

func TestIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(data, 2, 3)
	if m.At(1, 0) != 4 {
		t.Fatalf("row-major layout wrong: At(1,0) = %v", m.At(1, 0))
	}
	// No copy: mutations are visible both ways.
	data[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("FromSlice should wrap, not copy")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Set(1, 0, 0)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestFillScaleAdd(t *testing.T) {
	a := New(3)
	a.Fill(2)
	a.Scale(3)
	b := New(3)
	b.Fill(1)
	a.AddInPlace(b)
	for i := 0; i < 3; i++ {
		if a.Data[i] != 7 {
			t.Fatalf("fill/scale/add = %v, want 7", a.Data[i])
		}
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inner-dim mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatVecInto(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := make([]float64, 2)
	MatVecInto(got, a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MatVecInto = %v, want [-2 -2]", got)
	}
}

func TestMatVecIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dst length mismatch did not panic")
		}
	}()
	MatVecInto(make([]float64, 3), New(2, 3), make([]float64, 3))
}

// MatMulTransBInto must match per-row Dot calls bit-for-bit across all
// tile paths: 2×4 body, leftover row, leftover columns. Shapes are
// chosen so every remainder branch executes.
func TestMatMulTransBBitIdenticalToDot(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 4, 9}, {3, 5, 7}, {36, 6, 9}, {5, 9, 3}, {4, 4, 1}} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(n, k)
		seed := 1.0
		for i := range a.Data {
			seed = math.Mod(seed*997+13, 1009)
			a.Data[i] = seed/100 - 5
		}
		for i := range b.Data {
			seed = math.Mod(seed*991+7, 1013)
			b.Data[i] = seed/100 - 5
		}
		out := New(m, n)
		MatMulTransBInto(out, a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want := Dot(a.Data[i*k:(i+1)*k], b.Data[j*k:(j+1)*k])
				if out.At(i, j) != want {
					t.Fatalf("m=%d n=%d k=%d: out[%d][%d] = %v, want Dot = %v", m, n, k, i, j, out.At(i, j), want)
				}
			}
		}
	}
}

func TestMatMulTransBMatchesMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	// b transposed to (2, 3) row-major.
	bt := FromSlice([]float64{7, 9, 11, 8, 10, 12}, 2, 3)
	want := MatMul(a, b)
	got := New(2, 2)
	MatMulTransBInto(got, a, bt)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("MatMulTransBInto = %v, want %v", got.Data, want.Data)
		}
	}
}

func TestMatMulTransBShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inner-dim mismatch did not panic")
		}
	}()
	MatMulTransBInto(New(2, 2), New(2, 3), New(2, 4))
}

func TestIm2Col(t *testing.T) {
	// 3×3 single-channel input, 2×2 kernel → 4 patches of 4 values.
	in := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 3, 3, 1)
	cols := Im2Col(in, 2, 2)
	if cols.Shape[0] != 4 || cols.Shape[1] != 4 {
		t.Fatalf("Im2Col shape = %v, want [4 4]", cols.Shape)
	}
	want := [][]float64{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for r, row := range want {
		for c, v := range row {
			if cols.At(r, c) != v {
				t.Fatalf("patch %d = %v, want %v", r, cols.Data[r*4:(r+1)*4], row)
			}
		}
	}
}

func TestIm2ColMultiChannel(t *testing.T) {
	in := New(2, 2, 2)
	in.Set(1, 0, 0, 0)
	in.Set(2, 0, 0, 1)
	cols := Im2Col(in, 2, 2)
	if cols.Shape[0] != 1 || cols.Shape[1] != 8 {
		t.Fatalf("multi-channel shape = %v, want [1 8]", cols.Shape)
	}
	if cols.At(0, 0) != 1 || cols.At(0, 1) != 2 {
		t.Fatal("channel interleave wrong")
	}
}

// A batched im2col over B frames must produce, per frame, exactly the
// rows Im2ColInto produces for that frame alone.
func TestIm2ColBatchMatchesSingle(t *testing.T) {
	const bn, h, w, c, kh, kw = 3, 4, 5, 2, 2, 3
	oh, ow := h-kh+1, w-kw+1
	batch := New(bn, h, w, c)
	for i := range batch.Data {
		batch.Data[i] = float64(i)*0.5 - 7
	}
	out := New(bn*oh*ow, kh*kw*c)
	Im2ColBatchInto(out, batch, kh, kw)

	frameLen := h * w * c
	single := New(oh*ow, kh*kw*c)
	for b := 0; b < bn; b++ {
		frame := FromSlice(batch.Data[b*frameLen:(b+1)*frameLen], h, w, c)
		Im2ColInto(single, frame, kh, kw)
		for r := 0; r < oh*ow; r++ {
			for col := 0; col < kh*kw*c; col++ {
				if out.At(b*oh*ow+r, col) != single.At(r, col) {
					t.Fatalf("frame %d row %d col %d: batch %v != single %v",
						b, r, col, out.At(b*oh*ow+r, col), single.At(r, col))
				}
			}
		}
	}
}

func TestIm2ColBatchShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong out shape did not panic")
		}
	}()
	Im2ColBatchInto(New(2, 2), New(2, 3, 3, 1), 2, 2)
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 1, 1})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 0})
	if math.IsNaN(p[0]) || p[0] < 0.999 {
		t.Fatalf("softmax unstable: %v", p)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax of empty should be -1")
	}
}

// Property: softmax output sums to 1 and every entry is in (0, 1].
func TestSoftmaxNormalizedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 50))
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := Softmax(xs)
		var sum float64
		for _, v := range p {
			if v <= 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul with identity returns the original.
func TestMatMulIdentityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := 3
		if len(raw) < n*n {
			return true
		}
		data := make([]float64, n*n)
		for i := range data {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			data[i] = v
		}
		a := FromSlice(data, n, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		c := MatMul(a, id)
		for i := range c.Data {
			if c.Data[i] != a.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
