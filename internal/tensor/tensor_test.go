package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	m := New(2, 3)
	if m.Len() != 6 || m.Dims() != 2 {
		t.Fatalf("shape wrong: len=%d dims=%d", m.Len(), m.Dims())
	}
	m.Set(5, 1, 2)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("fresh tensor not zeroed")
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dimension did not panic")
		}
	}()
	New(2, 0)
}

func TestIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(data, 2, 3)
	if m.At(1, 0) != 4 {
		t.Fatalf("row-major layout wrong: At(1,0) = %v", m.At(1, 0))
	}
	// No copy: mutations are visible both ways.
	data[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("FromSlice should wrap, not copy")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Set(1, 0, 0)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestFillScaleAdd(t *testing.T) {
	a := New(3)
	a.Fill(2)
	a.Scale(3)
	b := New(3)
	b.Fill(1)
	a.AddInPlace(b)
	for i := 0; i < 3; i++ {
		if a.Data[i] != 7 {
			t.Fatalf("fill/scale/add = %v, want 7", a.Data[i])
		}
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inner-dim mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := MatVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", got)
	}
}

func TestIm2Col(t *testing.T) {
	// 3×3 single-channel input, 2×2 kernel → 4 patches of 4 values.
	in := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 3, 3, 1)
	cols := Im2Col(in, 2, 2)
	if cols.Shape[0] != 4 || cols.Shape[1] != 4 {
		t.Fatalf("Im2Col shape = %v, want [4 4]", cols.Shape)
	}
	want := [][]float64{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for r, row := range want {
		for c, v := range row {
			if cols.At(r, c) != v {
				t.Fatalf("patch %d = %v, want %v", r, cols.Data[r*4:(r+1)*4], row)
			}
		}
	}
}

func TestIm2ColMultiChannel(t *testing.T) {
	in := New(2, 2, 2)
	in.Set(1, 0, 0, 0)
	in.Set(2, 0, 0, 1)
	cols := Im2Col(in, 2, 2)
	if cols.Shape[0] != 1 || cols.Shape[1] != 8 {
		t.Fatalf("multi-channel shape = %v, want [1 8]", cols.Shape)
	}
	if cols.At(0, 0) != 1 || cols.At(0, 1) != 2 {
		t.Fatal("channel interleave wrong")
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 1, 1})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 0})
	if math.IsNaN(p[0]) || p[0] < 0.999 {
		t.Fatalf("softmax unstable: %v", p)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax of empty should be -1")
	}
}

// Property: softmax output sums to 1 and every entry is in (0, 1].
func TestSoftmaxNormalizedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 50))
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := Softmax(xs)
		var sum float64
		for _, v := range p {
			if v <= 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul with identity returns the original.
func TestMatMulIdentityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := 3
		if len(raw) < n*n {
			return true
		}
		data := make([]float64, n*n)
		for i := range data {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			data[i] = v
		}
		a := FromSlice(data, n, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		c := MatMul(a, id)
		for i := range c.Data {
			if c.Data[i] != a.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
