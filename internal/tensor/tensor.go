// Package tensor provides the small dense-tensor math underlying
// Pictor's neural networks: shaped float64 arrays, matrix multiply, and
// the im2col transform used by convolution layers.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 array with a shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data with a shape (no copy). len(data) must match.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len reports the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims reports the shape length.
func (t *Tensor) Dims() int { return len(t.Shape) }

// index computes the flat offset for multi-dimensional indices.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= t.Shape[d] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", i, d, t.Shape[d]))
		}
		off = off*t.Shape[d] + i
	}
	return off
}

// At reads an element.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.index(idx...)] }

// Set writes an element.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.index(idx...)] = v }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddInPlace accumulates u into t elementwise.
func (t *Tensor) AddInPlace(u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// MatMul computes the 2-D product a(m×k) · b(k×n) → (m×n).
//
// Allocating convenience wrapper for tests and one-off call sites; hot
// code uses MatMulInto / MatMulTransBInto with caller-owned output.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul needs 2-D operands")
	}
	m, n := a.Shape[0], b.Shape[1]
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a(m×k) · b(k×n) into out(m×n), reusing out's
// storage. out is fully overwritten; it must not alias a or b.
func MatMulInto(out, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul needs 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	if out.Dims() != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want [%d %d]", out.Shape, m, n))
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransBInto computes a(m×k) · bᵀ into out(m×n), where b is
// stored pre-transposed as (n×k) so both operands stream row-major.
// Each output element is an independent sequential dot product over k —
// the same summation order as Dot — so results are bit-identical to
// per-row Dot calls regardless of tiling.
//
// The inner loops are register-tiled 2 rows × 4 columns: eight scalar
// accumulators live across the k-loop, which the Go compiler keeps in
// registers, amortizing each a-element load over four b-rows. out is
// fully overwritten and must not alias a or b.
func MatMulTransBInto(out, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulTransBInto needs 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransBInto inner dims %d vs %d", k, k2))
	}
	if out.Dims() != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto out shape %v, want [%d %d]", out.Shape, m, n))
	}
	ad, bd, od := a.Data, b.Data, out.Data
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := ad[i*k : i*k+k]
		a1 := ad[(i+1)*k : (i+1)*k+k]
		o0 := od[i*n : i*n+n]
		o1 := od[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := bd[j*k : j*k+k]
			b1 := bd[(j+1)*k : (j+1)*k+k]
			b2 := bd[(j+2)*k : (j+2)*k+k]
			b3 := bd[(j+3)*k : (j+3)*k+k]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for p := 0; p < k; p++ {
				av0, av1 := a0[p], a1[p]
				bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			o0[j], o0[j+1], o0[j+2], o0[j+3] = s00, s01, s02, s03
			o1[j], o1[j+1], o1[j+2], o1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			brow := bd[j*k : j*k+k]
			var s0, s1 float64
			for p := 0; p < k; p++ {
				bv := brow[p]
				s0 += a0[p] * bv
				s1 += a1[p] * bv
			}
			o0[j], o1[j] = s0, s1
		}
	}
	for ; i < m; i++ {
		arow := ad[i*k : i*k+k]
		orow := od[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := bd[j*k : j*k+k]
			b1 := bd[(j+1)*k : (j+1)*k+k]
			b2 := bd[(j+2)*k : (j+2)*k+k]
			b3 := bd[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float64
			for p := 0; p < k; p++ {
				av := arow[p]
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			orow[j] = Dot(arow, bd[j*k:j*k+k])
		}
	}
}

// MatVecInto computes a(m×k) · x(k) into dst(m), reusing dst's storage.
// dst is fully overwritten and must not alias a or x.
func MatVecInto(dst []float64, a *Tensor, x []float64) {
	if a.Dims() != 2 || a.Shape[1] != len(x) {
		panic("tensor: MatVecInto shape mismatch")
	}
	m, k := a.Shape[0], a.Shape[1]
	if len(dst) != m {
		panic(fmt.Sprintf("tensor: MatVecInto dst length %d, want %d", len(dst), m))
	}
	for i := 0; i < m; i++ {
		dst[i] = Dot(a.Data[i*k:(i+1)*k], x)
	}
}

// Im2Col unrolls an (H, W, C) input into a matrix whose rows are the
// kh×kw×C receptive fields of each valid output position, in row-major
// output order. Convolution then reduces to one MatMul.
//
// Allocating convenience wrapper for tests and one-off call sites; hot
// code uses Im2ColInto / Im2ColBatchInto with caller-owned output.
func Im2Col(input *Tensor, kh, kw int) *Tensor {
	if input.Dims() != 3 {
		panic("tensor: Im2Col needs an (H, W, C) input")
	}
	h, w, c := input.Shape[0], input.Shape[1], input.Shape[2]
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		panic("tensor: kernel larger than input")
	}
	out := New(oh*ow, kh*kw*c)
	Im2ColInto(out, input, kh, kw)
	return out
}

// Im2ColInto performs the Im2Col transform into a preallocated
// (oh*ow, kh*kw*C) matrix, reusing its storage across frames. Every
// element of out is overwritten.
func Im2ColInto(out, input *Tensor, kh, kw int) {
	if input.Dims() != 3 {
		panic("tensor: Im2Col needs an (H, W, C) input")
	}
	h, w, c := input.Shape[0], input.Shape[1], input.Shape[2]
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		panic("tensor: kernel larger than input")
	}
	if out.Dims() != 2 || out.Shape[0] != oh*ow || out.Shape[1] != kh*kw*c {
		panic(fmt.Sprintf("tensor: Im2ColInto out shape %v, want [%d %d]", out.Shape, oh*ow, kh*kw*c))
	}
	im2colRows(out.Data, input.Data, 0, h, w, c, kh, kw)
}

// im2colRows writes one frame's receptive-field rows into dst starting
// at row `row` (each row kh·kw·c wide). The kw·c-wide row segments are
// hand-copied when narrow: at the common kernel widths a memmove call
// costs more than the move itself, and this loop runs for every cell of
// every frame of every trial (and every training patch).
func im2colRows(dst, src []float64, row, h, w, c, kh, kw int) {
	oh, ow := h-kh+1, w-kw+1
	n := kw * c
	depth := kh * n
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			col := row * depth
			for ky := 0; ky < kh; ky++ {
				srcOff := ((oy+ky)*w + ox) * c
				if n == 3 {
					dst[col] = src[srcOff]
					dst[col+1] = src[srcOff+1]
					dst[col+2] = src[srcOff+2]
				} else {
					copy(dst[col:col+n], src[srcOff:srcOff+n])
				}
				col += n
			}
			row++
		}
	}
}

// Im2ColBatchInto unrolls a (B, H, W, C) batch into one
// (B·oh·ow, kh·kw·C) matrix: frame b's receptive-field rows occupy the
// contiguous block starting at row b·oh·ow, each laid out exactly as
// Im2ColInto would lay them for that frame alone. One downstream matmul
// then convolves the whole batch. Every element of out is overwritten.
func Im2ColBatchInto(out, input *Tensor, kh, kw int) {
	if input.Dims() != 4 {
		panic("tensor: Im2ColBatchInto needs a (B, H, W, C) input")
	}
	bn, h, w, c := input.Shape[0], input.Shape[1], input.Shape[2], input.Shape[3]
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		panic("tensor: kernel larger than input")
	}
	depth := kh * kw * c
	if out.Dims() != 2 || out.Shape[0] != bn*oh*ow || out.Shape[1] != depth {
		panic(fmt.Sprintf("tensor: Im2ColBatchInto out shape %v, want [%d %d]", out.Shape, bn*oh*ow, depth))
	}
	frameLen := h * w * c
	for b := 0; b < bn; b++ {
		frame := input.Data[b*frameLen : (b+1)*frameLen]
		im2colRows(out.Data, frame, b*oh*ow, h, w, c, kh, kw)
	}
}

// Dot computes the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Softmax returns the softmax of x (numerically stabilized).
func Softmax(x []float64) []float64 {
	out := make([]float64, len(x))
	SoftmaxInto(out, x)
	return out
}

// SoftmaxInto writes the softmax of x into out (same length, fully
// overwritten). out may not alias x.
func SoftmaxInto(out, x []float64) {
	if len(out) != len(x) {
		panic("tensor: SoftmaxInto length mismatch")
	}
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// ArgMax reports the index of the largest element (-1 for empty input).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}
