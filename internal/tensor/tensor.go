// Package tensor provides the small dense-tensor math underlying
// Pictor's neural networks: shaped float64 arrays, matrix multiply, and
// the im2col transform used by convolution layers.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 array with a shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data with a shape (no copy). len(data) must match.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len reports the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims reports the shape length.
func (t *Tensor) Dims() int { return len(t.Shape) }

// index computes the flat offset for multi-dimensional indices.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= t.Shape[d] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", i, d, t.Shape[d]))
		}
		off = off*t.Shape[d] + i
	}
	return off
}

// At reads an element.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.index(idx...)] }

// Set writes an element.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.index(idx...)] = v }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddInPlace accumulates u into t elementwise.
func (t *Tensor) AddInPlace(u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// MatMul computes the 2-D product a(m×k) · b(k×n) → (m×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul needs 2-D operands")
	}
	m, n := a.Shape[0], b.Shape[1]
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a(m×k) · b(k×n) into out(m×n), reusing out's
// storage. out is fully overwritten; it must not alias a or b.
func MatMulInto(out, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul needs 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	if out.Dims() != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want [%d %d]", out.Shape, m, n))
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatVec computes the product a(m×k) · x(k) → (m).
func MatVec(a *Tensor, x []float64) []float64 {
	if a.Dims() != 2 || a.Shape[1] != len(x) {
		panic("tensor: MatVec shape mismatch")
	}
	m, k := a.Shape[0], a.Shape[1]
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		var s float64
		for p, v := range row {
			s += v * x[p]
		}
		out[i] = s
	}
	return out
}

// Im2Col unrolls an (H, W, C) input into a matrix whose rows are the
// kh×kw×C receptive fields of each valid output position, in row-major
// output order. Convolution then reduces to one MatMul.
func Im2Col(input *Tensor, kh, kw int) *Tensor {
	if input.Dims() != 3 {
		panic("tensor: Im2Col needs an (H, W, C) input")
	}
	h, w, c := input.Shape[0], input.Shape[1], input.Shape[2]
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		panic("tensor: kernel larger than input")
	}
	out := New(oh*ow, kh*kw*c)
	Im2ColInto(out, input, kh, kw)
	return out
}

// Im2ColInto performs the Im2Col transform into a preallocated
// (oh*ow, kh*kw*C) matrix, reusing its storage across frames. Every
// element of out is overwritten.
func Im2ColInto(out, input *Tensor, kh, kw int) {
	if input.Dims() != 3 {
		panic("tensor: Im2Col needs an (H, W, C) input")
	}
	h, w, c := input.Shape[0], input.Shape[1], input.Shape[2]
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		panic("tensor: kernel larger than input")
	}
	if out.Dims() != 2 || out.Shape[0] != oh*ow || out.Shape[1] != kh*kw*c {
		panic(fmt.Sprintf("tensor: Im2ColInto out shape %v, want [%d %d]", out.Shape, oh*ow, kh*kw*c))
	}
	row := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			col := 0
			for ky := 0; ky < kh; ky++ {
				srcOff := ((oy+ky)*w + ox) * c
				n := kw * c
				copy(out.Data[row*out.Shape[1]+col:row*out.Shape[1]+col+n], input.Data[srcOff:srcOff+n])
				col += n
			}
			row++
		}
	}
}

// Dot computes the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Softmax returns the softmax of x (numerically stabilized).
func Softmax(x []float64) []float64 {
	out := make([]float64, len(x))
	SoftmaxInto(out, x)
	return out
}

// SoftmaxInto writes the softmax of x into out (same length, fully
// overwritten). out may not alias x.
func SoftmaxInto(out, x []float64) {
	if len(out) != len(x) {
		panic("tensor: SoftmaxInto length mismatch")
	}
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// ArgMax reports the index of the largest element (-1 for empty input).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}
