package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pictor/internal/app"
)

// updateGolden rewrites the pinned determinism fixture. It must only be
// used deliberately, when a change is *supposed* to alter simulation
// results; the whole point of the fixture is that performance work does
// not get to touch it.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/methodology_golden.txt")

const goldenPath = "testdata/methodology_golden.txt"

// renderMethodology produces a byte-stable rendering of the Figure-6 /
// Table-3 rows: %v on float64 prints the shortest representation that
// round-trips, so two renderings are equal iff every float is
// bit-identical.
func renderMethodology(prof app.Profile, rs []MethodologyResult) string {
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&sb, "%s %s rtt=%+v err=%v\n", prof.Name, r.Method, r.RTT, r.ErrVsHuman)
	}
	return sb.String()
}

// TestGoldenMethodologyComparison is the regression oracle for the
// allocation-free hot-path work: a fixed-seed RunMethodologyComparison
// (with repetitions, so derived seeds are exercised) must stay
// byte-identical to the output recorded before the optimization pass,
// at -parallel 1 and at -parallel 8. Any buffer-reuse bug that lets one
// frame, layer activation, or sample alias another shows up here as a
// diff long before it would be diagnosable elsewhere.
func TestGoldenMethodologyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("records a session and trains models")
	}
	prof := app.STK()
	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 5
	base.Reps = 2

	render := func(parallel int) string {
		cfg := base
		cfg.Parallel = parallel
		return renderMethodology(prof, RunMethodologyComparison(prof, cfg))
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("methodology output diverges across parallelism:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", seq, par)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to record): %v", err)
	}
	if string(want) != seq {
		t.Fatalf("output diverged from the pre-optimization golden:\n--- golden ---\n%s--- got ---\n%s", want, seq)
	}
}
