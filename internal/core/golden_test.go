package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pictor/internal/app"
	"pictor/internal/exp"
	"pictor/internal/fleet"
)

// updateGolden rewrites the pinned determinism fixtures. It must only be
// used deliberately, when a change is *supposed* to alter simulation
// results; the whole point of the fixtures is that performance work does
// not get to touch them.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden fixtures")

const (
	goldenPath          = "testdata/methodology_golden.txt"
	fleetGoldenPath     = "testdata/fleet_golden.txt"
	churnGoldenPath     = "testdata/churn_golden.txt"
	scenariosGoldenPath = "testdata/scenarios_golden.txt"
	faultsGoldenPath    = "testdata/faults_golden.txt"
)

// checkGolden compares got against the pinned fixture at path, or
// rewrites the fixture under -update-golden.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to record): %v", err)
	}
	if string(want) != got {
		t.Fatalf("output diverged from the golden fixture %s:\n--- golden ---\n%s--- got ---\n%s", path, want, got)
	}
}

// renderMethodology produces a byte-stable rendering of the Figure-6 /
// Table-3 rows: %v on float64 prints the shortest representation that
// round-trips, so two renderings are equal iff every float is
// bit-identical.
func renderMethodology(prof app.Profile, rs []MethodologyResult) string {
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&sb, "%s %s rtt=%+v err=%v\n", prof.Name, r.Method, r.RTT, r.ErrVsHuman)
	}
	return sb.String()
}

// TestGoldenMethodologyComparison is the regression oracle for the
// allocation-free hot-path work: a fixed-seed RunMethodologyComparison
// (with repetitions, so derived seeds are exercised) must stay
// byte-identical to the output recorded before the optimization pass,
// at -parallel 1 and at -parallel 8. Any buffer-reuse bug that lets one
// frame, layer activation, or sample alias another shows up here as a
// diff long before it would be diagnosable elsewhere.
func TestGoldenMethodologyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("records a session and trains models")
	}
	prof := app.STK()
	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 5
	base.Reps = 2

	render := func(parallel int) string {
		cfg := base
		cfg.Parallel = parallel
		return renderMethodology(prof, RunMethodologyComparison(prof, cfg))
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("methodology output diverges across parallelism:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", seq, par)
	}
	checkGolden(t, goldenPath, seq)
}

// renderFleet produces a byte-stable rendering of a policy comparison:
// every float prints via %v (shortest round-trip representation), so
// two renderings are equal iff every result is bit-identical.
func renderFleet(rs []FleetResult) string {
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&sb, "%s/%s stream=%v placed=%d rejected=%d qos=%d watts=%v rtt=%+v\n",
			r.Policy, r.Mix, r.Requests, r.Placed, r.Rejected, r.QoSViolations, r.TotalPowerWatts, r.RTT)
		for _, m := range r.Machines {
			fmt.Fprintf(&sb, "  m%d demand=%v watts=%v rtt=%+v qos=%d\n",
				m.Machine, m.PredictedDemand, m.PowerWatts, m.RTT, m.QoSViolations)
			for _, ir := range m.Results {
				fmt.Fprintf(&sb, "    %s srv=%v cli=%v rtt=%+v\n", ir.Name, ir.ServerFPS, ir.ClientFPS, ir.RTT)
			}
		}
	}
	return sb.String()
}

// TestGoldenFleetConsolidation pins the fleet experiment the same way
// the methodology fixture pins the single-server path: a fixed-seed
// RunFleetComparison — all four placement policies over a randomized
// arrival mix, with repetitions so derived per-rep and per-machine
// seeds are exercised — must be byte-identical at -parallel 1 and 8 and
// must match the recorded fixture. The bin-packing policy pulls in the
// pair-interference measurement, so its determinism is pinned here too.
func TestGoldenFleetConsolidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pair-interference measurement and 4 fleet trials")
	}
	shape := exp.FleetShape{
		Machines: 3,
		Mix:      string(fleet.MixShuffled),
		Requests: 8,
	}
	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 5
	base.Reps = 2

	render := func(parallel int) string {
		cfg := base
		cfg.Parallel = parallel
		return renderFleet(RunFleetComparison(shape, cfg))
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("fleet output diverges across parallelism:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", seq, par)
	}
	checkGolden(t, fleetGoldenPath, seq)
}

// TestGoldenFleetScenarios pins the registry-wide workload path: a
// fixed-seed RunFleetComparison over the full nine-profile registry
// (shape.Profiles = "all", the CLI's `-exp fleet -profiles all`) — all
// four placement policies, which pulls in the 9-solo + 45-pair
// interference measurement — must be byte-identical at -parallel 1 and
// 8 and must match the recorded fixture. Together with the unchanged
// pre-registry fixtures above, this proves the subset selector extends
// the key space without perturbing it.
func TestGoldenFleetScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the nine-profile pair-interference measurement and 4 fleet trials")
	}
	shape := exp.FleetShape{
		Machines: 4,
		Mix:      string(fleet.MixSuite),
		Requests: 12,
		Profiles: "all",
	}
	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 5
	base.Reps = 2

	render := func(parallel int) string {
		cfg := base
		cfg.Parallel = parallel
		return renderFleet(RunFleetComparison(shape, cfg))
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("nine-profile fleet output diverges across parallelism:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", seq, par)
	}
	// Every family beyond the paper's six must actually appear in the
	// consolidated stream — a sweep that never draws CAD/VV/CZ pins
	// nothing new.
	for _, name := range []string{"CAD", "VV", "CZ"} {
		if !strings.Contains(seq, name) {
			t.Fatalf("nine-profile sweep never placed %s:\n%s", name, seq)
		}
	}
	checkGolden(t, scenariosGoldenPath, seq)
}

// renderChurn produces a byte-stable rendering of a churn comparison:
// every float prints via %v, so two renderings are equal iff every
// epoch of every result is bit-identical.
func renderChurn(rs []ChurnResult) string {
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&sb, "%s/%s migrate=%t arr=%d dep=%d mig=%d rej=%d qos=%d active=%v watts=%v rtt=%+v\n",
			r.Policy, r.Mix, r.Migrate, r.Arrivals, r.Departures, r.Migrations, r.Rejected,
			r.QoSViolations, r.MeanActive, r.MeanPowerWatts, r.RTT)
		for _, e := range r.Epochs {
			fmt.Fprintf(&sb, "  e%d active=%d arr=%d dep=%d mig=%d rej=%d qos=%d watts=%v rtt=%+v\n",
				e.Epoch, e.Active, e.Arrivals, e.Departures, e.Migrations, e.Rejected,
				e.QoSViolations, e.PowerWatts, e.RTT)
		}
	}
	return sb.String()
}

// TestGoldenFleetChurn pins the epoch-based churn simulation the way
// the fleet fixture pins one-shot admission: a fixed-seed
// RunChurnComparison — Poisson arrivals with departures over a
// heterogeneous (8,4-core) fleet, migration off and on, with
// repetitions so derived per-rep, per-epoch and per-machine seeds are
// all exercised — must be byte-identical at -parallel 1 and 8 and must
// match the recorded fixture.
func TestGoldenFleetChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 churn trials × 2 reps × 2 parallelism levels")
	}
	shape := exp.FleetShape{
		Machines:          3,
		Policy:            fleet.PolicyRoundRobin,
		Mix:               string(fleet.MixHeavy),
		CoreClasses:       "8,4",
		Epochs:            6,
		ArrivalRate:       2,
		MeanSessionEpochs: 3,
	}
	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 5
	base.Reps = 2

	render := func(parallel int) string {
		cfg := base
		cfg.Parallel = parallel
		return renderChurn(RunChurnComparison(shape, cfg))
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("churn output diverges across parallelism:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", seq, par)
	}
	checkGolden(t, churnGoldenPath, seq)
}

// renderFaults produces a byte-stable rendering of a fault comparison:
// the churn fields plus the fault/failover/degradation counters and the
// availability metric, every float via %v.
func renderFaults(rs []ChurnResult) string {
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&sb, "%s/%s faulty=%t retry=%t degrade=%t arr=%d dep=%d mig=%d rej=%d crash=%d evict=%d retried=%d rec=%d lost=%d degr=%d qos=%d avail=%v(%d/%d) active=%v watts=%v rtt=%+v\n",
			r.Policy, r.Mix, r.Faulty, r.Retry, r.Degrade, r.Arrivals, r.Departures,
			r.Migrations, r.Rejected, r.Crashes, r.Evicted, r.Retried, r.Recovered,
			r.Lost, r.DegradedSessionEpochs, r.QoSViolations,
			r.Availability, r.CompliantSessionEpochs, r.OfferedSessionEpochs,
			r.MeanActive, r.MeanPowerWatts, r.RTT)
		for _, e := range r.Epochs {
			fmt.Fprintf(&sb, "  e%d active=%d arr=%d dep=%d mig=%d rej=%d crash=%d evict=%d retry=%d rec=%d degr=%d qos=%d watts=%v rtt=%+v\n",
				e.Epoch, e.Active, e.Arrivals, e.Departures, e.Migrations, e.Rejected,
				e.Crashes, e.Evicted, e.Retried, e.Recovered, e.Degraded,
				e.QoSViolations, e.PowerWatts, e.RTT)
		}
	}
	return sb.String()
}

// TestGoldenFleetFaults pins the fault-injection path the way the churn
// fixture pins fault-free churn: a fixed-seed RunFaultComparison —
// healthy baseline, drop-on-failure, and retry+degrade recovery over a
// heterogeneous heavy-mix fleet, with repetitions so the derived fault
// schedule, retry queue and brown-out tiers are all exercised across
// seeds — must be byte-identical at -parallel 1 and 8 and must match
// the recorded fixture. The test also asserts the robustness claims the
// subsystem exists for: both faulty variants share the healthy run's
// tenant population and crash identically, and recovery never reports
// worse availability than dropping.
func TestGoldenFleetFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 3 churn trials × 2 reps × 2 parallelism levels")
	}
	shape := exp.FleetShape{
		Machines:           5,
		Policy:             fleet.PolicyLeastDemand,
		Mix:                string(fleet.MixHeavy),
		CoreClasses:        "8,8,4",
		Epochs:             8,
		ArrivalRate:        3,
		MeanSessionEpochs:  4,
		MTBFEpochs:         5,
		MTTREpochs:         1,
		RetryAttempts:      3,
		RetryBackoffEpochs: 1,
		Degrade:            true,
	}
	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 5
	base.Reps = 2

	run := func(parallel int) []ChurnResult {
		cfg := base
		cfg.Parallel = parallel
		return RunFaultComparison(shape, cfg)
	}
	rsSeq := run(1)
	seq, par := renderFaults(rsSeq), renderFaults(run(8))
	if seq != par {
		t.Fatalf("fault output diverges across parallelism:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", seq, par)
	}
	healthy, drop, resilient := rsSeq[0], rsSeq[1], rsSeq[2]
	if healthy.Faulty || !drop.Faulty || !resilient.Faulty {
		t.Fatalf("order must be {healthy, drop, resilient}: %+v", rsSeq)
	}
	if healthy.Arrivals != drop.Arrivals || drop.Arrivals != resilient.Arrivals {
		t.Fatalf("variants must churn the identical tenant population: %d/%d/%d arrivals",
			healthy.Arrivals, drop.Arrivals, resilient.Arrivals)
	}
	if drop.Crashes == 0 {
		t.Fatal("MTBF 4 over 6 epochs × 3 machines × 2 reps should crash someone")
	}
	if drop.Crashes != resilient.Crashes {
		t.Fatalf("both faulty variants must run the identical failure schedule: %d vs %d crashes",
			drop.Crashes, resilient.Crashes)
	}
	for e := range drop.Epochs {
		if drop.Epochs[e].Crashes != resilient.Epochs[e].Crashes {
			t.Fatalf("epoch %d crash counts differ across recovery settings", e)
		}
	}
	if resilient.Availability <= drop.Availability {
		t.Fatalf("retry+degrade must improve availability over drop-on-failure at this operating point: %v <= %v",
			resilient.Availability, drop.Availability)
	}
	if resilient.Recovered == 0 {
		t.Fatal("the resilient variant never recovered a session — failover is not exercised")
	}
	if resilient.DegradedSessionEpochs == 0 {
		t.Fatal("the resilient variant never served a degraded session-epoch — brown-out is not exercised")
	}
	checkGolden(t, faultsGoldenPath, seq)
}
