package core

import (
	"fmt"
	"sync"

	"pictor/internal/app"
	"pictor/internal/engine"
	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/hw/power"
	"pictor/internal/sim"
	"pictor/internal/stats"
)

// The surrogate session engine: instead of running a per-frame
// simulated cluster for every machine-epoch, it evaluates per-profile
// response curves calibrated once per process from short full-fidelity
// runs — the cheap-proxy-tracks-expensive-run pattern. A curve maps a
// machine's relative load (predicted CPU demand / cores) to the RTT
// distribution, client FPS and utilization one resident of the profile
// measures at that load, interpolating between calibration points and
// extrapolating linearly beyond the deepest co-location measured.
// Per-session determinism comes from the same splitmix64 derivation
// the full engine uses: a session's epoch jitter is seeded from
// (stream base, session ID, epoch, rep), so surrogate results are
// byte-identical at any parallelism level and across reruns —
// and independent of which machines happen to share the epoch.

// surrogateSeed fixes the calibration runs (like interferenceSeed), so
// the curves — and everything predicted from them — are identical in
// every process regardless of caller configuration.
const surrogateSeed = 0x5EEDFACE

// surrogateColoDepth is how many homogeneous co-location levels are
// calibrated per profile (n = 1..depth on the paper's 8-core testbed).
// Four covers the paper's consolidation sweep; loads beyond it
// extrapolate.
const surrogateColoDepth = 4

// surrogateJitterSigma is the per-(session, epoch) lognormal spread
// applied to the interpolated curves, approximating the run-to-run
// noise of the full simulator.
const surrogateJitterSigma = 0.05

// surrogateCurve is one profile's calibrated response: parallel slices
// indexed by calibration point, load ascending.
type surrogateCurve struct {
	load []float64       // machine load fraction (demand / cores)
	rtt  []stats.Summary // pooled per-instance RTT at that load
	fps  []float64       // mean client FPS
	cpu  []float64       // mean per-instance CPU util (app+vnc), top-style %
	gpu  []float64       // mean per-instance GPU util, %
}

// surrogateTable maps profile name → calibrated curve.
type surrogateTable map[string]surrogateCurve

// surrogateCache memoizes calibrated tables per suite fingerprint,
// exactly like interferenceCache: entries hold a sync.Once so
// concurrent trials over the same workload set calibrate once.
type surrogateEntry struct {
	once  sync.Once
	table surrogateTable
}

var surrogateCache sync.Map // fingerprint string → *surrogateEntry

// surrogateTableFor calibrates (or returns the cached) response curves
// for the workload set: for each profile, n = 1..surrogateColoDepth
// identical human-driven instances on one default machine with short
// fixed-seed windows — the §5.2 consolidation sweep, reduced to a
// response curve. Trial keys depend only on the profile and n, so a
// profile shared by two fingerprints calibrates identically in both.
func surrogateTableFor(suite []app.Profile) surrogateTable {
	e, _ := surrogateCache.LoadOrStore(suiteFingerprint(suite), &surrogateEntry{})
	entry := e.(*surrogateEntry)
	entry.once.Do(func() {
		cfg := ExperimentConfig{WarmupSeconds: 1, Seconds: 5, Seed: surrogateSeed, Parallel: 1}
		trials := make([]exp.Trial, 0, len(suite)*surrogateColoDepth)
		for _, p := range suite {
			for n := 1; n <= surrogateColoDepth; n++ {
				trials = append(trials, characterizationTrial(p, n, exp.DriverHuman, cfg))
			}
		}
		res := RunTrials(trials, cfg)
		table := make(surrogateTable, len(suite))
		ti := 0
		for _, p := range suite {
			demand := fleet.PredictedCPUDemand(p)
			cv := surrogateCurve{}
			for n := 1; n <= surrogateColoDepth; n++ {
				rs := res[ti][0].Results
				ti++
				var rtts []stats.Summary
				var fps, cpu, gpu float64
				for _, r := range rs {
					if r.RTT.N > 0 {
						rtts = append(rtts, r.RTT)
					}
					fps += r.ClientFPS
					cpu += r.AppCPUUtil + r.VNCCPUUtil
					gpu += r.GPUUtil
				}
				inv := 1 / float64(len(rs))
				cv.load = append(cv.load, float64(n)*demand/fleet.DefaultMachineCores)
				cv.rtt = append(cv.rtt, exp.PoolSummaries(rtts))
				cv.fps = append(cv.fps, fps*inv)
				cv.cpu = append(cv.cpu, cpu*inv)
				cv.gpu = append(cv.gpu, gpu*inv)
			}
			table[p.Name] = cv
		}
		entry.table = table
	})
	return entry.table
}

// at evaluates the curve at machine load L: clamped to the first
// calibration point below it (an underloaded machine serves at least
// as well as the lightest measured), interpolated between bracketing
// points, and extrapolated linearly beyond the deepest one (RTT keeps
// growing with load; FPS keeps falling, floored at 1).
func (cv surrogateCurve) at(L float64) (rtt stats.Summary, fps, cpu, gpu float64) {
	pts := cv.load
	i := len(pts) - 1
	for j := 1; j < len(pts); j++ {
		if L <= pts[j] {
			i = j
			break
		}
	}
	if L < pts[0] {
		L = pts[0]
	}
	f := (L - pts[i-1]) / (pts[i] - pts[i-1])
	lerp := func(a, b float64) float64 { return a + f*(b-a) }
	a, b := cv.rtt[i-1], cv.rtt[i]
	rtt = stats.Summary{
		Mean: lerp(a.Mean, b.Mean),
		P1:   lerp(a.P1, b.P1),
		P25:  lerp(a.P25, b.P25),
		P75:  lerp(a.P75, b.P75),
		P99:  lerp(a.P99, b.P99),
	}
	fps = lerp(cv.fps[i-1], cv.fps[i])
	cpu = lerp(cv.cpu[i-1], cv.cpu[i])
	gpu = lerp(cv.gpu[i-1], cv.gpu[i])
	// Extrapolation guards: far beyond the calibrated range the linear
	// trend could cross zero — a saturated machine serves slowly, it
	// does not serve negative frames.
	if fps < 1 {
		fps = 1
	}
	if cpu < 0 {
		cpu = 0
	}
	if gpu < 0 {
		gpu = 0
	}
	for _, q := range []*float64{&rtt.Mean, &rtt.P1, &rtt.P25, &rtt.P75, &rtt.P99} {
		if *q < 0.1 {
			*q = 0.1
		}
	}
	return rtt, fps, cpu, gpu
}

// surrogateEngine is the cheap fidelity tier: engine.SessionEngine
// backed by the calibrated curves. Degraded (brown-out) residents are
// served through their full-resolution curve at the machine's reduced
// load — the tier's demand relief is modelled, the per-session
// resolution change is approximated; the fidelity-error fixture pins
// how closely the whole tier tracks full simulation.
type surrogateEngine struct {
	p     *churnPortal
	table surrogateTable
	model power.Model
	// batch caches one curve evaluation per profile within a single
	// AdvanceEpoch call: the machine's load is fixed for the epoch, so
	// every resident of a profile shares the same interpolated point
	// and only the per-session jitter differs. The kernel executes one
	// trial's machines sequentially, so the scratch map never races.
	batch map[string]surrogateEval
}

// surrogateEval is one interpolated curve point — the (profile,
// machine-load) evaluation shared by every resident of the profile on
// the machine this epoch, before per-session jitter.
type surrogateEval struct {
	rtt           stats.Summary
	fps, cpu, gpu float64
}

// newSurrogateEngine calibrates (or reuses) the response curves for
// the trial's workload set.
func newSurrogateEngine(p *churnPortal, suite []app.Profile) *surrogateEngine {
	return &surrogateEngine{p: p, table: surrogateTableFor(suite), model: power.Default()}
}

// AdvanceEpoch predicts machine mi's epoch from the curves: every
// resident is evaluated at the machine's relative load (computed once
// per profile — residents of a profile share the interpolated point
// bit-for-bit, so batching cannot move a result), perturbed by
// its deterministic per-(session, epoch, rep) lognormal jitter, and
// the machine's power is modelled from the summed predicted
// utilizations (capped at physical capacity, like the full engine's
// wall meter) — idle machines burn exactly the idle floor.
func (se *surrogateEngine) AdvanceEpoch(e, mi int) engine.MachineEpoch {
	p := se.p
	m := p.f.Machines[mi]
	residents := p.c.Resident(mi)
	L := 0.0
	if m.Cores > 0 {
		L = m.Demand / m.Cores
	}
	me := engine.MachineEpoch{
		Demand:   m.Demand,
		Sessions: make([]engine.SessionObs, 0, len(residents)),
	}
	if se.batch == nil {
		se.batch = make(map[string]surrogateEval, 8)
	} else {
		clear(se.batch)
	}
	var cpu, gpu float64
	for _, s := range residents {
		ev, ok := se.batch[s.Profile.Name]
		if !ok {
			cv, cok := se.table[s.Profile.Name]
			if !cok {
				panic(fmt.Sprintf("core: surrogate has no calibrated curve for profile %q (trial %q)", s.Profile.Name, p.t.ID))
			}
			ev.rtt, ev.fps, ev.cpu, ev.gpu = cv.at(L)
			se.batch[s.Profile.Name] = ev
		}
		rtt, fps, c1, g1 := ev.rtt, ev.fps, ev.cpu, ev.gpu
		// One lognormal draw per (session, epoch, rep) seed; FirstLogNormal
		// yields the seeded RNG's exact value without the O(607) seeding
		// cost that dominated million-session sweeps.
		j := sim.FirstLogNormal(exp.DeriveSeed(p.streamBase, fmt.Sprintf("fleet/surrogate/s%d/e%d", s.ID, e), p.u.Rep), 1, surrogateJitterSigma)
		rtt.Mean *= j
		rtt.P1 *= j
		rtt.P25 *= j
		rtt.P75 *= j
		rtt.P99 *= j
		fps /= j
		// One observation per served frame over the measurement window,
		// matching the full engine's sample counts so pooled summaries
		// weight surrogate sessions comparably.
		rtt.N = int(fps*p.t.Measure + 0.5)
		if rtt.N < 1 {
			rtt.N = 1
		}
		me.Sessions = append(me.Sessions, engine.SessionObs{
			RTT:          rtt,
			QoSViolation: fps < fleet.QoSMinFPS,
		})
		cpu += c1
		gpu += g1
	}
	if maxUtil := m.Cores * 100; cpu > maxUtil {
		cpu = maxUtil
	}
	me.PowerWatts = se.model.TotalWatts(cpu, gpu, len(residents))
	return me
}
