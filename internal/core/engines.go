package core

import (
	"fmt"
	"sort"

	"pictor/internal/engine"
	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/sim"
	"pictor/internal/stats"
)

// churnPortal lowers one churn-shaped trial onto the global event
// kernel: it implements engine.FleetPortal (the fleet lifecycle —
// departures, faults, failover, arrivals, gauges, measurement
// collection and the QoS controllers) and engine.EnginePicker (the
// fidelity dispatch — full per-frame simulation for the sampled
// cohort, the calibrated surrogate for the tail, nil for crashed
// machines). The kernel dispatches its methods in the exact order the
// historical nested loop ran, so a full-fidelity run through the
// portal is byte-identical to the pre-kernel implementation.
type churnPortal struct {
	t          exp.Trial
	sh         exp.FleetShape
	u          exp.Unit
	streamBase int64

	c        *fleet.Churn
	f        *fleet.Fleet
	src      fleet.ArrivalSource
	timeline [][]fleet.MachineState

	// sink observes each finished epoch; streaming marks that rows are
	// not retained in out, so the horizon-wide per-observation RTT list
	// (allRTTs, growing with executed session-epochs) must not be kept
	// either — rollupRTTs pools per epoch instead, O(epochs).
	sink      ChurnSink
	streaming bool

	// full runs the per-frame simulator; surrogate (nil without
	// SurrogateTail) evaluates the calibrated predictors; machines
	// [0, sampled) stay on full fidelity.
	full      *fullEngine
	surrogate *surrogateEngine
	sampled   int

	out *ChurnResult
	// Per-epoch scratch, reset at Gauge and folded into out at React.
	er         EpochResult
	machineRTT []stats.Summary
	epochRTTs  []stats.Summary
	allRTTs    []stats.Summary
	rollupRTTs []stats.Summary
}

// Machines and Epochs size the kernel's event schedule.
func (p *churnPortal) Machines() int { return len(p.f.Machines) }
func (p *churnPortal) Epochs() int   { return p.sh.Epochs }

// Depart opens the epoch: reset the epoch scratch and release every
// session whose horizon elapsed.
func (p *churnPortal) Depart(e int) {
	p.er = EpochResult{Epoch: e}
	p.er.Departures = p.c.DepartDue(e)
}

// Fault applies this epoch's fault states. A machine entering Down
// crashes: its residents are force-released into the failover queue
// (or lost, with retries off). Repaired machines pass through a
// cold-start epoch before taking placements again.
func (p *churnPortal) Fault(e int) {
	if p.timeline == nil {
		return
	}
	for mi, m := range p.f.Machines {
		st := p.timeline[mi][e]
		if st == fleet.MachineDown && m.State != fleet.MachineDown {
			p.er.Crashes++
			m.State = st
			p.er.Evicted += p.c.EvictAll(mi, e)
			continue
		}
		m.State = st
	}
}

// Retry runs the failover attempts that matured this epoch.
func (p *churnPortal) Retry(e int) {
	p.er.Retried, p.er.Recovered = p.c.RetryDue(e)
}

// Arrive pulls the epoch's arrivals from the streaming source and
// offers them to the placement policy. Each arrival's horizon-clipped
// wanted epochs fold into the offered gauge before the offer — the
// availability denominator counts rejected tenants too.
func (p *churnPortal) Arrive(e int) {
	for _, s := range p.src.Next(e) {
		p.er.Arrivals++
		end := s.Departs
		if end > p.sh.Epochs {
			end = p.sh.Epochs
		}
		p.er.OfferedSessionEpochs += end - s.Arrive
		if !p.c.Offer(s, e) {
			p.er.Rejected++
		}
	}
}

// Gauge snapshots post-admission state: the active-session and
// brown-out gauges, the per-machine measurement scratch, and (opt-in)
// the epoch's occupancy rows. Measurement fields of the rows are
// filled as Collect drains.
func (p *churnPortal) Gauge(e int) {
	p.er.Active = p.c.Active
	for mi := range p.f.Machines {
		p.er.Degraded += p.c.DegradedResidents(mi)
	}
	p.machineRTT = make([]stats.Summary, len(p.f.Machines))
	p.epochRTTs = p.epochRTTs[:0]
	if !p.sh.OccupancyDetail {
		return
	}
	rows := make([]MachineOccupancy, len(p.f.Machines))
	for mi, m := range p.f.Machines {
		rows[mi] = MachineOccupancy{
			Machine:   mi,
			State:     m.State,
			Residents: len(m.Placed),
			Degraded:  p.c.DegradedResidents(mi),
			Demand:    m.Demand,
			Surrogate: p.surrogate != nil && mi >= p.sampled && m.State != fleet.MachineDown,
		}
	}
	p.er.Occupancy = rows
}

// EngineFor is the fidelity dispatch: crashed machines are powered off
// (nil — they execute nothing, measure nothing and burn nothing), the
// sampled cohort runs the per-frame simulator, and the tail runs the
// surrogate when the shape enables it.
func (p *churnPortal) EngineFor(_, mi int) engine.SessionEngine {
	if p.f.Machines[mi].State == fleet.MachineDown {
		return nil
	}
	if p.surrogate != nil && mi >= p.sampled {
		return p.surrogate
	}
	return p.full
}

// Collect folds one machine's epoch measurements into the epoch
// scratch. The kernel delivers machines in index order, so the pooled
// aggregates are byte-stable.
func (p *churnPortal) Collect(_, mi int, me engine.MachineEpoch) {
	p.er.PowerWatts += me.PowerWatts
	var rtts []stats.Summary
	for _, s := range me.Sessions {
		if s.QoSViolation {
			p.er.QoSViolations++
		}
		if s.RTT.N > 0 {
			rtts = append(rtts, s.RTT)
		}
	}
	p.machineRTT[mi] = exp.PoolSummaries(rtts)
	p.epochRTTs = append(p.epochRTTs, rtts...)
	if p.sh.OccupancyDetail {
		p.er.Occupancy[mi].RTTMean = p.machineRTT[mi].Mean
		p.er.Occupancy[mi].PowerWatts = me.PowerWatts
	}
}

// React closes the epoch: pool the epoch's measurements, hand machines
// over the QoS ceiling (worst measured RTT first) to the brown-out and
// migration controllers, and fold the epoch into the horizon rollups.
// With brown-out tiers enabled a violator first degrades its heaviest
// resident — quality sheds before anyone is moved or dropped — and
// only falls back to the migration controller when every resident is
// already at the deepest tier. Machines measuring below the all-clear
// threshold restore one degraded resident per epoch. The moves and
// tier changes land before the next epoch executes; the final epoch
// skips the controllers — there is no next epoch for them to help.
func (p *churnPortal) React(e int) {
	p.er.RTT = exp.PoolSummaries(p.epochRTTs)
	if p.streaming {
		if p.er.RTT.N > 0 {
			p.rollupRTTs = append(p.rollupRTTs, p.er.RTT)
		}
	} else {
		p.allRTTs = append(p.allRTTs, p.epochRTTs...)
	}

	sh := p.sh
	if (sh.Migrate || sh.Degrade) && e < sh.Epochs-1 {
		rtt := make([]float64, len(p.f.Machines))
		violators := make([]int, 0, len(p.f.Machines))
		for mi := range p.f.Machines {
			if p.machineRTT[mi].N > 0 {
				rtt[mi] = p.machineRTT[mi].Mean
				if rtt[mi] > fleet.QoSMaxRTTMs {
					violators = append(violators, mi)
				}
			}
		}
		sort.SliceStable(violators, func(a, b int) bool {
			return rtt[violators[a]] > rtt[violators[b]]
		})
		for _, mi := range violators {
			if sh.Degrade && p.c.DegradeToFit(mi) > 0 {
				continue
			}
			if sh.Migrate && p.c.MigrateOff(mi, rtt) {
				p.er.Migrations++
			}
		}
		if sh.Degrade {
			for mi := range p.f.Machines {
				if p.machineRTT[mi].N > 0 && rtt[mi] < fleet.QoSClearRTTMs {
					p.c.UpgradeOne(mi)
				}
			}
		}
	}

	if p.er.Occupancy != nil {
		p.sink.ObserveOccupancy(e, p.er.Occupancy)
	}
	p.sink.ObserveEpoch(p.er)

	out := p.out
	out.Arrivals += p.er.Arrivals
	out.OfferedSessionEpochs += p.er.OfferedSessionEpochs
	out.Departures += p.er.Departures
	out.Migrations += p.er.Migrations
	out.Rejected += p.er.Rejected
	out.QoSViolations += p.er.QoSViolations
	out.Crashes += p.er.Crashes
	out.Evicted += p.er.Evicted
	out.Retried += p.er.Retried
	out.Recovered += p.er.Recovered
	out.DegradedSessionEpochs += p.er.Degraded
	out.CompliantSessionEpochs += p.er.Active - p.er.QoSViolations
	out.MeanActive += float64(p.er.Active) / float64(sh.Epochs)
	out.MeanPowerWatts += p.er.PowerWatts / float64(sh.Epochs)
}

// fullEngine is the full-fidelity session engine: one per-frame
// simulated cluster per machine-epoch, exactly the execution the
// historical nested loop ran.
type fullEngine struct {
	p *churnPortal
}

// AdvanceEpoch builds and runs machine mi's cluster for epoch e.
// Per-(machine, epoch) seeds derive from the stream base — not the
// unit seed, which encodes policy and Migrate — so a migration-vs-
// static (or policy) comparison runs matched execution noise and the
// delta is the placement's doing. Mixing in u.Rep keeps repetitions
// independent. Idle machines still run (an empty cluster burns idle
// watts — consolidation's whole power argument rests on that).
func (fe *fullEngine) AdvanceEpoch(e, mi int) engine.MachineEpoch {
	p := fe.p
	m := p.f.Machines[mi]
	cl := NewCluster(Options{
		Seed:  exp.DeriveSeed(p.streamBase, fmt.Sprintf("fleet/churn/m%d/e%d", mi, e), p.u.Rep),
		Cores: int(m.Cores + 0.5),
	})
	for _, prof := range m.Placed {
		cl.AddInstance(NewInstanceConfig(prof, HumanDriver()))
	}
	cl.Run(sim.DurationOfSeconds(p.t.Warmup), sim.DurationOfSeconds(p.t.Measure))
	me := engine.MachineEpoch{
		PowerWatts: cl.TotalPowerWatts(),
		Demand:     m.Demand,
		Sessions:   make([]engine.SessionObs, 0, len(cl.Instances)),
	}
	for _, inst := range cl.Instances {
		r := inst.Result()
		me.Sessions = append(me.Sessions, engine.SessionObs{
			RTT:          r.RTT,
			QoSViolation: r.ClientFPS < fleet.QoSMinFPS,
		})
	}
	return me
}
