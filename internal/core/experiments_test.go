package core

import (
	"strings"
	"testing"

	"pictor/internal/app"
	"pictor/internal/exp"
)

func TestRunPairProducesBothResults(t *testing.T) {
	cfg := QuickExperimentConfig()
	ra, rb := RunPair(app.STK(), app.ZeroAD(), cfg)
	if ra.Benchmark != "STK" || rb.Benchmark != "0AD" {
		t.Fatalf("pair results mislabeled: %s, %s", ra.Benchmark, rb.Benchmark)
	}
	if ra.ServerFPS <= 0 || rb.ServerFPS <= 0 {
		t.Fatal("pair produced no frames")
	}
}

func TestRunOptimizationShape(t *testing.T) {
	cfg := QuickExperimentConfig()
	r := RunOptimization(app.RE(), cfg)
	if r.ServerFPSGain <= 0 {
		t.Fatalf("optimizations lost server FPS: %+.1f%%", r.ServerFPSGain)
	}
	if r.OptFCMs >= r.BaseFCMs {
		t.Fatalf("FC did not shrink: %.1f -> %.1f ms", r.BaseFCMs, r.OptFCMs)
	}
	if r.RTTReduction <= 0 {
		t.Fatalf("RTT did not improve: %+.1f%%", -r.RTTReduction)
	}
}

func TestRunContainerOverheadBounded(t *testing.T) {
	cfg := QuickExperimentConfig()
	r := RunContainerOverhead(app.D2(), cfg)
	if r.RTTOverheadPct > 30 || r.RTTOverheadPct < -30 {
		t.Fatalf("container RTT overhead implausible: %+.1f%%", r.RTTOverheadPct)
	}
	if r.RDOverheadPct < -5 {
		t.Fatalf("GPU virtualization should not speed rendering: %+.1f%%", r.RDOverheadPct)
	}
}

func TestRunCharacterizationCounts(t *testing.T) {
	cfg := QuickExperimentConfig()
	rs := RunCharacterization(app.IM(), 2, exp.DriverHuman, cfg)
	if len(rs) != 2 {
		t.Fatalf("got %d results for 2 instances", len(rs))
	}
	_, watts := RunCharacterizationWithPower(app.IM(), 2, exp.DriverHuman, cfg)
	if watts <= 0 {
		t.Fatal("no power measured")
	}
}

func TestSortedPairNames(t *testing.T) {
	pairs := SortedPairNames()
	if len(pairs) != 15 {
		t.Fatalf("got %d pairs, want 15 (6 choose 2)", len(pairs))
	}
	seen := map[string]bool{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("self-pair %v", p)
		}
		key := p[0] + "+" + p[1]
		if seen[key] {
			t.Fatalf("duplicate pair %s", key)
		}
		seen[key] = true
	}
}

func TestFeatureMatrixShape(t *testing.T) {
	m := FeatureMatrix()
	if !strings.Contains(m, "Pictor") || !strings.Contains(m, "GPU perf. measurement") {
		t.Fatal("feature matrix missing expected rows/columns")
	}
	lines := strings.Count(m, "\n")
	if lines != 9 { // header + 8 feature rows
		t.Fatalf("feature matrix has %d lines, want 9", lines)
	}
}

func TestFormatTableAligns(t *testing.T) {
	out := FormatTable([]string{"a", "long-header"}, [][]string{{"xxxx", "y"}})
	linesOut := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(linesOut) != 2 {
		t.Fatalf("got %d lines", len(linesOut))
	}
	if len(linesOut[0]) != len(linesOut[1]) {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}

func TestOverheadExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := QuickExperimentConfig()
	r := RunOverhead(app.STK(), cfg)
	if r.FPSNoTrace <= 0 || r.FPSTraced <= 0 {
		t.Fatal("overhead runs produced no frames")
	}
	// The framework must be cheap: within a few percent of native.
	if r.OverheadPct > 12 {
		t.Fatalf("analysis framework costs %.1f%% FPS", r.OverheadPct)
	}
}

func TestMethodologyComparisonSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := QuickExperimentConfig()
	cfg.Seconds = 20
	rs := RunMethodologyComparison(app.RE(), cfg)
	if len(rs) != 5 {
		t.Fatalf("got %d methodology rows, want 5", len(rs))
	}
	byName := map[string]MethodologyResult{}
	for _, r := range rs {
		byName[r.Method] = r
	}
	if byName["Human"].RTT.N == 0 || byName["Pictor-IC"].RTT.N == 0 {
		t.Fatal("human or IC run produced no RTTs")
	}
	// The intelligent client must track the human far better than the
	// stage-sum and serialization methodologies (Table 3's shape).
	if byName["Pictor-IC"].ErrVsHuman > 15 {
		t.Fatalf("IC error %.1f%% — not mimicking", byName["Pictor-IC"].ErrVsHuman)
	}
	if byName["Chen"].ErrVsHuman < byName["Pictor-IC"].ErrVsHuman {
		t.Fatal("Chen estimate beat the IC — Table 3 shape lost")
	}
	if byName["SlowMotion"].ErrVsHuman < 10 {
		t.Fatalf("Slow-Motion error %.1f%% — serialization effect lost", byName["SlowMotion"].ErrVsHuman)
	}
	// Both flawed methodologies underestimate (the paper's direction).
	if byName["Chen"].RTT.Mean >= byName["Human"].RTT.Mean {
		t.Fatal("Chen should underestimate RTT")
	}
	if byName["SlowMotion"].RTT.Mean >= byName["Human"].RTT.Mean {
		t.Fatal("Slow-Motion should underestimate RTT")
	}
}
