package core

import (
	"sync"

	"pictor/internal/agent"
	"pictor/internal/app"
	"pictor/internal/baselines"
	"pictor/internal/sim"
	"pictor/internal/vnc"
)

// HumanDriver returns the reference human player factory.
func HumanDriver() DriverFactory {
	return func(c *Cluster, rng *sim.RNG, prof app.Profile) vnc.Driver {
		return agent.NewHuman(c.K, rng, prof)
	}
}

// ICDriver returns the intelligent-client factory around trained
// models. Clients on the same cluster share one machine-scoped
// BatchModels (weights cloned once per cluster, a state row per
// client), so concurrent sessions' CNN passes run as one batch instead
// of N sequential per-clone calls.
func ICDriver(models *agent.Models) DriverFactory {
	return func(c *Cluster, rng *sim.RNG, prof app.Profile) vnc.Driver {
		return agent.NewIntelligentClientInBatch(c.K, rng, prof, c.BatcherFor(models).NewSession())
	}
}

// DeskBenchDriver returns the record-replay factory over a recording.
func DeskBenchDriver(rec *agent.Recording, frameGap sim.Duration, threshold float64) DriverFactory {
	return func(c *Cluster, rng *sim.RNG, prof app.Profile) vnc.Driver {
		d := baselines.NewDeskBench(c.K, rng, rec, frameGap)
		if threshold > 0 {
			d.Threshold = threshold
		}
		return d
	}
}

// SlowMotionDriver returns an IC paced one-input-at-a-time (use with
// app.ModeSlowMotion). Like ICDriver, clients join the cluster's
// shared batch.
func SlowMotionDriver(models *agent.Models) DriverFactory {
	return func(c *Cluster, rng *sim.RNG, prof app.Profile) vnc.Driver {
		ic := agent.NewIntelligentClientInBatch(c.K, rng, prof, c.BatcherFor(models).NewSession())
		return baselines.NewSlowMotionPacer(c.K, ic)
	}
}

// RecordSession runs a single-instance, human-driven session and
// returns the recording plus the mean client frame gap (DeskBench's
// replay clock).
func RecordSession(prof app.Profile, seconds float64, seed int64) (*agent.Recording, sim.Duration) {
	cl := NewCluster(Options{Seed: seed, Cores: 8})
	var rec *agent.Recording
	cfg := NewInstanceConfig(prof, func(c *Cluster, rng *sim.RNG, p app.Profile) vnc.Driver {
		h := agent.NewHuman(c.K, rng, p)
		rec = agent.NewRecorder(h, p.Name)
		return h
	})
	cl.AddInstance(cfg)
	cl.Run(sim.DurationOfSeconds(2), sim.DurationOfSeconds(seconds))
	fps := cl.Instances[0].Tracer.ClientFPS()
	gap := 33 * sim.Millisecond
	if fps > 1 {
		gap = sim.DurationOfSeconds(1 / fps)
	}
	return rec, gap
}

// trained caches per-benchmark models: recording a session and training
// the CNN/LSTM takes real compute, and every experiment that uses the
// IC wants the same models the paper would reuse.
var trained sync.Map // benchmark name → *trainedEntry

type trainedEntry struct {
	once   sync.Once
	models *agent.Models
	rec    *agent.Recording
	gap    sim.Duration
}

// TrainedModels records a human session for the benchmark (once per
// process) and trains the intelligent client's models from it.
func TrainedModels(prof app.Profile) (*agent.Models, *agent.Recording, sim.Duration) {
	v, _ := trained.LoadOrStore(prof.Name, &trainedEntry{})
	e := v.(*trainedEntry)
	e.once.Do(func() {
		rec, gap := RecordSession(prof, 45, 0xC0FFEE+int64(len(prof.Name)))
		e.rec = rec
		e.gap = gap
		e.models = agent.Train(rec, agent.DefaultTrainConfig(), 77)
	})
	return e.models, e.rec, e.gap
}
