package core

import (
	"fmt"
	"strings"
	"testing"

	"pictor/internal/app"
	"pictor/internal/exp"
)

// TestExperimentsDeterministicAcrossParallelism: the same experiments
// at -parallel 1 and -parallel 8 with the same seed must produce
// byte-identical results — the runner's central guarantee. Table-driven
// over two suite profiles, with repetitions on so derived seeds are
// exercised too. Outside -short mode the methodology family also runs,
// covering the riskiest path: concurrent trials driving per-client
// clones of the shared trained models.
func TestExperimentsDeterministicAcrossParallelism(t *testing.T) {
	for _, prof := range []app.Profile{app.STK(), app.RE()} {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			base := QuickExperimentConfig()
			base.WarmupSeconds, base.Seconds = 1, 5
			base.Reps = 2

			render := func(parallel int) string {
				cfg := base
				cfg.Parallel = parallel
				var sb strings.Builder
				fmt.Fprintf(&sb, "char=%+v\n", RunCharacterization(prof, 2, exp.DriverHuman, cfg))
				ra, rb := RunPair(prof, app.ZeroAD(), cfg)
				fmt.Fprintf(&sb, "pair=%+v|%+v\n", ra, rb)
				fmt.Fprintf(&sb, "opt=%+v\n", RunOptimization(prof, cfg))
				fmt.Fprintf(&sb, "cont=%+v\n", RunContainerOverhead(prof, cfg))
				if !testing.Short() {
					fmt.Fprintf(&sb, "method=%+v\n", RunMethodologyComparison(prof, cfg))
				}
				return sb.String()
			}

			seq := render(1)
			par := render(8)
			if seq != par {
				t.Fatalf("parallel run diverged from sequential run:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", seq, par)
			}
		})
	}
}

// TestRunTrialsRepsDeriveDistinctSeeds: repetitions of one trial must
// run under different seeds (and therefore measure different noise),
// while rep 0 keeps the pinned legacy seed.
func TestRunTrialsRepsDeriveDistinctSeeds(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 4
	cfg.Reps = 3
	tr := cfg.trial(exp.InstanceSpec{Profile: app.IM(), Driver: exp.DriverHuman})
	reps := RunTrials([]exp.Trial{tr}, cfg)[0]
	if len(reps) != 3 {
		t.Fatalf("got %d reps, want 3", len(reps))
	}
	if reps[0].Seed != cfg.Seed {
		t.Fatalf("rep 0 seed = %d, want pinned %d", reps[0].Seed, cfg.Seed)
	}
	seen := map[int64]bool{}
	for _, r := range reps {
		if seen[r.Seed] {
			t.Fatalf("duplicate rep seed %d", r.Seed)
		}
		seen[r.Seed] = true
		if r.Results[0].ServerFPS <= 0 {
			t.Fatal("repetition produced no frames")
		}
	}
}

// TestRunSuiteGridShape executes a reduced full grid and checks that
// every experiment family is populated and that trials shared between
// families (the single-instance human baseline) were deduplicated —
// observable as exactly equal numbers.
func TestRunSuiteGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models for all six benchmarks")
	}
	cfg := QuickExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	cfg.MaxInstances = 2
	g := RunSuiteGrid(cfg)

	suite := app.PaperSuite()
	if len(g.Methodology) != len(suite) || len(g.Overhead) != len(suite) ||
		len(g.Container) != len(suite) || len(g.Optimization) != len(suite) {
		t.Fatalf("grid families incomplete: %d/%d/%d/%d of %d",
			len(g.Methodology), len(g.Overhead), len(g.Container), len(g.Optimization), len(suite))
	}
	if want := len(suite) * (len(suite) - 1) / 2; len(g.Pairs) != want {
		t.Fatalf("got %d pairs, want %d", len(g.Pairs), want)
	}
	for _, prof := range suite {
		char := g.Characterization[prof.Name]
		if len(char) != cfg.MaxInstances {
			t.Fatalf("%s: %d characterization counts, want %d", prof.Name, len(char), cfg.MaxInstances)
		}
		for n, rs := range char {
			if len(rs) != n+1 {
				t.Fatalf("%s: %d results for %d instances", prof.Name, len(rs), n+1)
			}
		}
		if len(g.Methodology[prof.Name]) != 5 {
			t.Fatalf("%s: %d methodology rows, want 5", prof.Name, len(g.Methodology[prof.Name]))
		}
		// The n=1 human characterization, the optimization baseline and
		// the bare-metal container run are the same trial; key-based
		// dedup must make them literally identical.
		solo := char[0][0].ServerFPS
		if got := g.Optimization[prof.Name].BaseServerFPS; got != solo {
			t.Fatalf("%s: optimization baseline %.6f != characterization solo %.6f — shared trial not deduplicated",
				prof.Name, got, solo)
		}
		if got := g.Container[prof.Name].BareServerFPS; got != solo {
			t.Fatalf("%s: container bare %.6f != characterization solo %.6f — shared trial not deduplicated",
				prof.Name, got, solo)
		}
	}
}

// TestRunSuiteGridProfileSubset: the grid's workload selector sweeps
// exactly the named subset through every experiment family — and an
// invalid selection panics before any trial runs.
func TestRunSuiteGridProfileSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the STK models")
	}
	cfg := QuickExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	cfg.MaxInstances = 1
	cfg.Profiles = "STK"
	g := RunSuiteGrid(cfg)
	if len(g.Methodology) != 1 || len(g.Characterization) != 1 ||
		len(g.Container) != 1 || len(g.Optimization) != 1 || len(g.Overhead) != 1 {
		t.Fatalf("subset grid swept the wrong families: %d/%d/%d/%d/%d, want all 1",
			len(g.Methodology), len(g.Characterization), len(g.Container),
			len(g.Optimization), len(g.Overhead))
	}
	if _, ok := g.Methodology["STK"]; !ok {
		t.Fatal("subset grid missing the selected profile")
	}
	if len(g.Pairs) != 0 {
		t.Fatalf("a one-profile subset has no pairs, got %d", len(g.Pairs))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("an invalid profile selection must panic before running")
		}
	}()
	cfg.Profiles = "NOPE"
	RunSuiteGrid(cfg)
}
