package core

import (
	"strings"
	"testing"
)

func normOK(t *testing.T, s ExperimentSpec) ExperimentSpec {
	t.Helper()
	n, err := s.Normalize()
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", s, err)
	}
	return n
}

func normErr(t *testing.T, s ExperimentSpec, wantSub string) {
	t.Helper()
	if _, err := s.Normalize(); err == nil || !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("Normalize(%+v) error = %v, want containing %q", s, err, wantSub)
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	n := normOK(t, ExperimentSpec{Kind: "grid"})
	if n.Seconds != 45 || n.Warmup != 3 || n.Reps != 1 || n.MaxInstances != 4 {
		t.Fatalf("grid defaults wrong: %+v", n)
	}
	if n.Seed == nil || *n.Seed != 1 {
		t.Fatalf("seed must default to 1, got %v", n.Seed)
	}
	// An explicit seed 0 means "derive" and must survive normalization.
	zero := int64(0)
	n = normOK(t, ExperimentSpec{Kind: "grid", Seed: &zero})
	if n.Seed == nil || *n.Seed != 0 {
		t.Fatalf("explicit seed 0 must survive, got %v", n.Seed)
	}

	n = normOK(t, ExperimentSpec{Kind: "fleet"})
	if n.Machines != 4 || n.Requests != 12 {
		t.Fatalf("fleet defaults wrong: machines %d requests %d", n.Machines, n.Requests)
	}

	n = normOK(t, ExperimentSpec{Kind: "churn"})
	if n.Rate != 1.6 || n.Duration != 5 || n.Epochs != 10 || n.Backoff != 1 {
		t.Fatalf("churn defaults wrong: %+v", n)
	}
	if n.Migrate == nil || !*n.Migrate {
		t.Fatal("churn must default migrate on")
	}
	if n.MTBF != 0 || n.MTTR != 0 {
		t.Fatalf("churn must not default fault knobs on, got mtbf %g mttr %g", n.MTBF, n.MTTR)
	}
}

// TestSpecFaultKnobsDefaultIndependently pins the -mttr clobbering fix:
// an explicit repair time must survive the mtbf default, each knob
// defaults on its own, and a repair time without a failure process is
// an error, not silently ignored.
func TestSpecFaultKnobsDefaultIndependently(t *testing.T) {
	n := normOK(t, ExperimentSpec{Kind: "faults"})
	if n.MTBF != 5 || n.MTTR != 1 {
		t.Fatalf("unset fault knobs must default to 5/1, got %g/%g", n.MTBF, n.MTTR)
	}
	n = normOK(t, ExperimentSpec{Kind: "faults", MTTR: 3, MTBF: 5})
	if n.MTTR != 3 {
		t.Fatalf("explicit mttr must survive, got %g", n.MTTR)
	}
	n = normOK(t, ExperimentSpec{Kind: "faults", MTBF: 7})
	if n.MTBF != 7 || n.MTTR != 1 {
		t.Fatalf("mtbf alone must keep 7 and default mttr to 1, got %g/%g", n.MTBF, n.MTTR)
	}
	normErr(t, ExperimentSpec{Kind: "faults", MTTR: 3}, "mttr")
	normErr(t, ExperimentSpec{Kind: "churn", MTTR: 3}, "mttr")
}

func TestSpecNormalizeRejects(t *testing.T) {
	normErr(t, ExperimentSpec{}, "kind is required")
	normErr(t, ExperimentSpec{Kind: "figs"}, "unknown kind")
	normErr(t, ExperimentSpec{Kind: "grid", Profiles: "NOPE"}, "profiles")
	normErr(t, ExperimentSpec{Kind: "grid", Machines: 3}, `"machines" does not apply`)
	normErr(t, ExperimentSpec{Kind: "fleet", Epochs: 5}, `"epochs" does not apply`)
	normErr(t, ExperimentSpec{Kind: "churn", Requests: 9}, `"requests" does not apply`)
	normErr(t, ExperimentSpec{Kind: "fleet", Policy: "wat"}, "policy")
	normErr(t, ExperimentSpec{Kind: "fleet", Requests: -1}, "requests")
	normErr(t, ExperimentSpec{Kind: "churn", Retries: -1}, "retries")
	normErr(t, ExperimentSpec{Kind: "grid", Seconds: -1}, "seconds")
}

// TestSpecScheduleKnobs pins the traffic-schedule vocabulary: the knobs
// lower onto the fleet shape, stream selects the rollup-only sink, and
// every misuse — out-of-scope kind, peak without a bending schedule, an
// unknown schedule, a peak below the base rate — fails normalization
// with the shared fleet validation messages.
func TestSpecScheduleKnobs(t *testing.T) {
	n := normOK(t, ExperimentSpec{Kind: "churn", Schedule: "diurnal", Peak: 4, Period: 6})
	sh := n.Shape()
	if sh.RateSchedule != "diurnal" || sh.PeakRate != 4 || sh.PeriodEpochs != 6 || sh.RollupOnly {
		t.Fatalf("schedule knobs must lower onto the shape: %+v", sh)
	}
	n = normOK(t, ExperimentSpec{Kind: "faults", Schedule: "flash", Peak: 9, Period: 3, Stream: true})
	if sh := n.Shape(); !sh.RollupOnly || sh.RateSchedule != "flash" {
		t.Fatalf("stream must lower to a rollup-only shape: %+v", sh)
	}
	// A plain constant schedule is valid and changes nothing.
	normOK(t, ExperimentSpec{Kind: "churn", Schedule: "constant"})

	normErr(t, ExperimentSpec{Kind: "grid", Schedule: "diurnal"}, `"schedule" does not apply`)
	normErr(t, ExperimentSpec{Kind: "fleet", Stream: true}, `"stream" does not apply`)
	normErr(t, ExperimentSpec{Kind: "fleet", Peak: 4}, `"peak" does not apply`)
	normErr(t, ExperimentSpec{Kind: "churn", Peak: 4}, "without a non-constant schedule")
	normErr(t, ExperimentSpec{Kind: "churn", Schedule: "constant", Period: 6}, "without a non-constant schedule")
	normErr(t, ExperimentSpec{Kind: "churn", Schedule: "wat"}, "unknown rate schedule")
	normErr(t, ExperimentSpec{Kind: "churn", Rate: 5, Schedule: "diurnal", Peak: 2, Period: 6}, "peak rate")
	normErr(t, ExperimentSpec{Kind: "churn", Schedule: "flash", Peak: 9}, "period")
}

func TestSpecTrialsMatchComparisonBatches(t *testing.T) {
	fleetSpec := normOK(t, ExperimentSpec{Kind: "fleet", Machines: 2, Requests: 4})
	if n := len(fleetSpec.Trials()); n != 4 {
		t.Fatalf("fleet spec must lower to one trial per policy, got %d", n)
	}
	churnSpec := normOK(t, ExperimentSpec{Kind: "churn", Machines: 2, Epochs: 3})
	ct := churnSpec.Trials()
	if len(ct) != 2 || ct[0].Fleet.Migrate || !ct[1].Fleet.Migrate {
		t.Fatalf("churn spec must lower to {static, migrated}, got %+v", ct)
	}
	faultSpec := normOK(t, ExperimentSpec{Kind: "faults", Machines: 2, Epochs: 3})
	ft := faultSpec.Trials()
	if len(ft) != 3 || ft[0].Fleet.Faulty() || !ft[1].Fleet.Faulty() || ft[2].Fleet.RetryAttempts == 0 {
		t.Fatalf("faults spec must lower to {healthy, drop, resilient}, got %+v", ft)
	}
}

// TestSuiteGridTrialsDedupCanonically: the exported grid trial list is
// deduplicated on canonical keys, so no two entries can share an
// as-executed identity — the property the server's result cache keys on.
func TestSuiteGridTrialsDedupCanonically(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.Profiles = "STK"
	trials := SuiteGridTrials(cfg)
	if len(trials) == 0 {
		t.Fatal("grid plan produced no trials")
	}
	seen := map[string]string{}
	for _, tr := range trials {
		k := tr.CanonicalKey()
		if prev, dup := seen[k]; dup {
			t.Fatalf("trials %q and %q share canonical key %q", prev, tr.ID, k)
		}
		seen[k] = tr.ID
	}
}
