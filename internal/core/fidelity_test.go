package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"pictor/internal/exp"
	"pictor/internal/fleet"
)

const fidelityGoldenPath = "testdata/fidelity_golden.txt"

// The pinned accuracy contract of the surrogate tier on the fixture
// shape below: every surrogate machine-epoch's mean RTT and modelled
// power must stay within fidelityMachineTolerance of the full
// per-frame simulation, and the horizon rollups within the tighter
// fidelityHorizonTolerance (single machine-epochs see the full
// simulator's run-to-run noise undiluted; the rollup pools it away).
// The values are deliberately pinned, not derived: if the surrogate
// drifts (a calibration change, a curve-evaluation bug), this is the
// test that says so.
const (
	fidelityMachineTolerance = 0.40
	fidelityHorizonTolerance = 0.25
)

// fidelityShape is the churn shape both fidelity tests run: the golden
// churn fixture's heterogeneous fleet, migration off so placement is a
// pure function of the arrival stream and the fidelity split cannot
// feed back into who lands where.
func fidelityShape() exp.FleetShape {
	return exp.FleetShape{
		Machines:          3,
		Policy:            fleet.PolicyRoundRobin,
		Mix:               string(fleet.MixHeavy),
		CoreClasses:       "8,4",
		Epochs:            6,
		ArrivalRate:       2,
		MeanSessionEpochs: 3,
	}
}

// renderFidelity extends renderChurn with the per-(machine, epoch)
// occupancy rows, every float via %v, so two renderings are equal iff
// every measurement — tier flags included — is bit-identical.
func renderFidelity(r ChurnResult) string {
	var sb strings.Builder
	sb.WriteString(renderChurn([]ChurnResult{r}))
	for _, e := range r.Epochs {
		for _, o := range e.Occupancy {
			fmt.Fprintf(&sb, "  occ e%d m%d state=%d res=%d degr=%d demand=%v surrogate=%t rtt=%v watts=%v\n",
				e.Epoch, o.Machine, o.State, o.Residents, o.Degraded,
				o.Demand, o.Surrogate, o.RTTMean, o.PowerWatts)
		}
	}
	return sb.String()
}

// TestFidelityFullCohortMatchesBaseline is the kernel-refactor property
// test: lowering churn onto the global event kernel with every fidelity
// knob at its expensive setting must reproduce the plain path
// byte-for-byte. SurrogateTail with the full cohort sampled changes the
// trial key (and therefore the key-derived unit seed) but no execution
// seed — everything derives from the stream base — so the rollups must
// not move by a single bit; likewise OccupancyDetail is pure recording
// and must not perturb the simulation it observes.
func TestFidelityFullCohortMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 3 churn trials × 2 reps")
	}
	shape := fidelityShape()
	cfg := QuickExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	cfg.Reps = 2

	baseline := renderChurn([]ChurnResult{RunFleetChurn(shape, cfg)})

	full := shape
	full.SurrogateTail = true
	full.FidelitySampled = full.Machines
	if got := renderChurn([]ChurnResult{RunFleetChurn(full, cfg)}); got != baseline {
		t.Fatalf("full-cohort SurrogateTail diverges from the plain path:\n--- baseline ---\n%s--- full cohort ---\n%s", baseline, got)
	}

	occ := shape
	occ.OccupancyDetail = true
	r := RunFleetChurn(occ, cfg)
	if got := renderChurn([]ChurnResult{r}); got != baseline {
		t.Fatalf("occupancy recording perturbed the simulation:\n--- baseline ---\n%s--- occupancy on ---\n%s", baseline, got)
	}
	for _, e := range r.Epochs {
		if len(e.Occupancy) != shape.Machines {
			t.Fatalf("epoch %d recorded %d occupancy rows, want %d", e.Epoch, len(e.Occupancy), shape.Machines)
		}
	}
}

// relErr is the relative error of got against a full-fidelity want.
func relErr(want, got float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestGoldenFidelityTiers is the fidelity-error fixture: the fixture
// shape with machine 0 on full simulation and the tail on the
// calibrated surrogate must (1) stay byte-identical at -parallel 1 and
// 8 and match the pinned golden — surrogate determinism is per-session,
// not per-schedule; (2) reproduce the full run's machine-0 rows
// byte-for-byte — the sampled cohort really runs the real simulator,
// and the split cannot leak into it; and (3) track the full run's
// surrogate-tier machines and horizon rollups within the pinned
// relative tolerance — the accuracy contract the cheap tier is sold on.
func TestGoldenFidelityTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 3 churn trials × 2 reps × 2 parallelism levels plus calibration")
	}
	full := fidelityShape()
	full.OccupancyDetail = true
	mixed := full
	mixed.SurrogateTail = true
	mixed.FidelitySampled = 1

	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 5
	base.Reps = 2
	run := func(sh exp.FleetShape, parallel int) ChurnResult {
		cfg := base
		cfg.Parallel = parallel
		return RunFleetChurn(sh, cfg)
	}

	fullR := run(full, 1)
	mixSeq := run(mixed, 1)
	seq, par := renderFidelity(mixSeq), renderFidelity(run(mixed, 8))
	if seq != par {
		t.Fatalf("fidelity-tier output diverges across parallelism:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", seq, par)
	}

	if len(fullR.Epochs) != len(mixSeq.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(fullR.Epochs), len(mixSeq.Epochs))
	}
	worst := 0.0
	for ei := range fullR.Epochs {
		fo, mo := fullR.Epochs[ei].Occupancy, mixSeq.Epochs[ei].Occupancy
		for mi := range fo {
			w, g := fo[mi], mo[mi]
			if mi == 0 {
				// The sampled cohort: identical placement, identical derived
				// cluster seed, identical engine — the row must not move a bit
				// (the tier flag is the one field the split is allowed to own,
				// and machine 0 is inside the cohort in both runs).
				if fmt.Sprintf("%+v", w) != fmt.Sprintf("%+v", g) {
					t.Fatalf("epoch %d machine 0 diverged between full and mixed fidelity:\nfull:  %+v\nmixed: %+v", ei, w, g)
				}
				continue
			}
			// The surrogate tail: same residents (placement is
			// fidelity-independent with migration off), measurements within
			// tolerance.
			if !g.Surrogate {
				t.Fatalf("epoch %d machine %d should run the surrogate tier: %+v", ei, mi, g)
			}
			if w.Residents != g.Residents || w.Demand != g.Demand {
				t.Fatalf("epoch %d machine %d placement diverged across fidelity tiers:\nfull:  %+v\nmixed: %+v", ei, mi, w, g)
			}
			if e := relErr(w.PowerWatts, g.PowerWatts); e > fidelityMachineTolerance {
				t.Fatalf("epoch %d machine %d surrogate power off by %.1f%% (full %v, surrogate %v; tolerance %.0f%%)",
					ei, mi, 100*e, w.PowerWatts, g.PowerWatts, 100*fidelityMachineTolerance)
			} else if e > worst {
				worst = e
			}
			if w.RTTMean > 0 {
				if e := relErr(w.RTTMean, g.RTTMean); e > fidelityMachineTolerance {
					t.Fatalf("epoch %d machine %d surrogate RTT off by %.1f%% (full %v ms, surrogate %v ms; tolerance %.0f%%)",
						ei, mi, 100*e, w.RTTMean, g.RTTMean, 100*fidelityMachineTolerance)
				} else if e > worst {
					worst = e
				}
			}
		}
	}
	for _, c := range []struct {
		name      string
		want, got float64
	}{
		{"RTT mean", fullR.RTT.Mean, mixSeq.RTT.Mean},
		{"RTT p99", fullR.RTT.P99, mixSeq.RTT.P99},
		{"mean fleet power", fullR.MeanPowerWatts, mixSeq.MeanPowerWatts},
	} {
		if e := relErr(c.want, c.got); e > fidelityHorizonTolerance {
			t.Fatalf("horizon %s off by %.1f%% (full %v, mixed %v; tolerance %.0f%%)",
				c.name, 100*e, c.want, c.got, 100*fidelityHorizonTolerance)
		} else if e > worst {
			worst = e
		}
	}
	t.Logf("worst surrogate relative error on the fixture: %.1f%%", 100*worst)

	checkGolden(t, fidelityGoldenPath, seq)
}
