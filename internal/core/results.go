package core

import (
	"pictor/internal/stats"
	"pictor/internal/trace"
)

// InstanceResult is the measurement bundle for one instance after a
// run — everything the paper's figures draw from.
type InstanceResult struct {
	Name      string
	Benchmark string

	ServerFPS float64
	ClientFPS float64
	Dropped   int64

	RTT    stats.Summary
	Stages map[trace.Stage]stats.Summary

	AppCPUUtil float64 // top-style %, 100 = one core
	VNCCPUUtil float64
	GPUUtil    float64

	L3MissRate  float64
	GPUL2Miss   float64 // -1 when PMU-unreadable (0 A.D.)
	GPUTexMiss  float64
	CPUTopDown  TopDown
	FootprintMB float64
	GPUMemoryMB float64

	NetUpMbps   float64
	NetDownMbps float64
	PCIeToGPU   float64 // MB/s
	PCIeFromGPU float64 // MB/s

	AttrCalls int64
	Copies    int64
}

// TopDown is the Figure-14 cycle breakdown.
type TopDown struct {
	Retiring float64
	FrontEnd float64
	BadSpec  float64
	BackEnd  float64
	IPC      float64
}

// Result snapshots an instance's measurements.
func (inst *Instance) Result() InstanceResult {
	r := InstanceResult{
		Name:      inst.Name,
		Benchmark: inst.Profile.Name,

		ServerFPS: inst.Tracer.ServerFPS(),
		ClientFPS: inst.Tracer.ClientFPS(),
		Dropped:   inst.Tracer.DroppedFrames(),

		RTT:    inst.Tracer.RTTs().Summarize(),
		Stages: make(map[trace.Stage]stats.Summary),

		AppCPUUtil: inst.appProc.Utilization(),
		VNCCPUUtil: inst.vncProc.Utilization(),
		GPUUtil:    inst.gpuCtx.Utilization(),

		L3MissRate:  inst.memApp.ObservedMissRate(),
		GPUL2Miss:   inst.gpuCtx.ObservedL2MissRate(),
		GPUTexMiss:  inst.gpuCtx.ObservedTexMissRate(),
		FootprintMB: inst.Profile.Mem.FootprintMB,
		GPUMemoryMB: inst.Profile.GPU.MemoryMB,

		AttrCalls: inst.ip.AttrCalls(),
		Copies:    inst.ip.Copies(),
	}
	for _, s := range trace.Stages {
		r.Stages[s] = inst.Tracer.StageSample(s).Summarize()
	}
	pmu := inst.appProc.PMU()
	ret, fe, bad, be := pmu.Fractions()
	r.CPUTopDown = TopDown{Retiring: ret, FrontEnd: fe, BadSpec: bad, BackEnd: be, IPC: pmu.IPC()}
	r.NetUpMbps, r.NetDownMbps = inst.link.BandwidthMbps()
	r.PCIeToGPU, r.PCIeFromGPU = inst.pcie.BandwidthMBs()
	return r
}

// ServerTimeMs reports the mean time the server spends on an input —
// the paper's Figure 11 "server" component: everything in the RTT that
// is not network time. This is measured (RTT − CS − SS), so it includes
// the pipeline's queueing and alignment waits that per-stage sums miss
// (the very gap that breaks the Chen et al. methodology).
func (r InstanceResult) ServerTimeMs() float64 {
	t := r.RTT.Mean - r.Stages[trace.StageCS].Mean - r.Stages[trace.StageSS].Mean
	if t < 0 {
		t = 0
	}
	return t
}

// AppTimeMs reports the application component of the server time
// (Figure 12): server time minus the proxy stages PS, AS and CP.
func (r InstanceResult) AppTimeMs() float64 {
	t := r.ServerTimeMs() - r.Stages[trace.StagePS].Mean -
		r.Stages[trace.StageAS].Mean - r.Stages[trace.StageCP].Mean
	if t < 0 {
		t = 0
	}
	return t
}

// NetworkTimeMs reports the mean network component of RTT (CS + SS).
func (r InstanceResult) NetworkTimeMs() float64 {
	return r.Stages[trace.StageCS].Mean + r.Stages[trace.StageSS].Mean
}
