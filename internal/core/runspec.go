package core

import "fmt"

// SpecOutcome is RunSpec's result envelope: the as-executed spec plus
// exactly one populated payload, selected by the spec's kind. The
// typed Run* entry points remain thin sugar over the same lowering —
// RunSpec exists so callers holding a declarative spec (a config file,
// a service request, a sweep generator) can execute it without
// switching on the kind themselves.
type SpecOutcome struct {
	// Spec is the normalized, as-executed spec.
	Spec ExperimentSpec
	// Grid holds the "grid" kind's outcome; nil otherwise.
	Grid *SuiteGridResult
	// Fleet holds the "fleet" kind's per-policy results (in
	// fleet.PolicyNames order); nil otherwise.
	Fleet []FleetResult
	// Churn holds the "churn" kind's {static, migrated} pair or the
	// "faults" kind's {healthy, drop, resilient} triple; nil otherwise.
	Churn []ChurnResult
}

// RunSpec normalizes and executes a declarative experiment spec — the
// one entry point over the whole experiment vocabulary. It runs
// exactly the comparison batch the typed entry points run (RunSuiteGrid,
// RunFleetComparison, RunChurnComparison, RunFaultComparison — each a
// thin wrapper over the same trial lowering), with cfg's Parallel
// carried through as execution policy. A spec that fails validation
// returns the error instead of panicking: specs arrive from config
// files and network requests, not fixed vocabulary.
func RunSpec(spec ExperimentSpec, parallel int) (SpecOutcome, error) {
	s, err := spec.Normalize()
	if err != nil {
		return SpecOutcome{}, err
	}
	cfg := s.Config()
	cfg.Parallel = parallel
	out := SpecOutcome{Spec: s}
	switch s.Kind {
	case SpecGrid:
		g := RunSuiteGrid(cfg)
		out.Grid = &g
	case SpecFleet:
		// RunFleetComparison sweeps every policy itself.
		out.Fleet = RunFleetComparison(s.Shape(), cfg)
	case SpecChurn:
		out.Churn = RunChurnComparison(s.Shape(), cfg)
	case SpecFaults:
		out.Churn = RunFaultComparison(s.Shape(), cfg)
	default:
		return SpecOutcome{}, fmt.Errorf("core: unknown spec kind %q", s.Kind)
	}
	return out, nil
}
