package core

import (
	"pictor/internal/container"
	"pictor/internal/vgl"
)

// optimizedInterposer returns the §6-optimized interposer options.
func optimizedInterposer() vgl.Options { return vgl.Optimized() }

// dockerOverheads returns the calibrated Docker overhead model.
func dockerOverheads() container.Overheads { return container.Docker() }
