package core

import (
	"pictor/internal/container"
)

// dockerOverheads returns the calibrated Docker overhead model.
func dockerOverheads() container.Overheads { return container.Docker() }
