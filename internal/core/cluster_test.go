package core

import (
	"testing"

	"pictor/internal/app"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/vgl"
)

// runSingle runs one human-driven instance for a short window.
func runSingle(t *testing.T, prof app.Profile, seconds float64) InstanceResult {
	t.Helper()
	cl := NewCluster(Options{Seed: 7})
	cl.AddInstance(NewInstanceConfig(prof, HumanDriver()))
	cl.Run(sim.DurationOfSeconds(2), sim.DurationOfSeconds(seconds))
	return cl.Instances[0].Result()
}

func TestSingleInstancePipelineProducesFrames(t *testing.T) {
	r := runSingle(t, app.STK(), 10)
	if r.ServerFPS < 15 || r.ServerFPS > 120 {
		t.Fatalf("server FPS = %v, want a plausible rate", r.ServerFPS)
	}
	if r.ClientFPS < 10 || r.ClientFPS > r.ServerFPS+1 {
		t.Fatalf("client FPS = %v (server %v): client cannot beat server", r.ClientFPS, r.ServerFPS)
	}
}

func TestRoundTripsComplete(t *testing.T) {
	cl := NewCluster(Options{Seed: 8})
	cl.AddInstance(NewInstanceConfig(app.RE(), HumanDriver()))
	cl.Run(sim.DurationOfSeconds(2), sim.DurationOfSeconds(10))
	tr := cl.Instances[0].Tracer
	if tr.CompletedRTTCount() < 5 {
		t.Fatalf("only %d completed round trips in 10s of FPS play", tr.CompletedRTTCount())
	}
	rtt := tr.RTTs().Mean()
	if rtt < 20 || rtt > 400 {
		t.Fatalf("mean RTT = %vms, want a plausible interactive latency", rtt)
	}
}

func TestStageBreakdownPresent(t *testing.T) {
	r := runSingle(t, app.D2(), 10)
	for _, s := range []trace.Stage{trace.StageCS, trace.StageSP, trace.StagePS,
		trace.StageAL, trace.StageRD, trace.StageFC, trace.StageAS,
		trace.StageCP, trace.StageSS} {
		if r.Stages[s].N == 0 {
			t.Fatalf("stage %s never measured", s)
		}
		if r.Stages[s].Mean <= 0 {
			t.Fatalf("stage %s mean = %v, want > 0", s, r.Stages[s].Mean)
		}
	}
	// FC must be a major component (the paper's surprise bottleneck).
	if r.Stages[trace.StageFC].Mean < r.Stages[trace.StageAS].Mean {
		t.Fatalf("FC (%vms) should dwarf AS (%vms)",
			r.Stages[trace.StageFC].Mean, r.Stages[trace.StageAS].Mean)
	}
}

func TestUtilizationRanges(t *testing.T) {
	r := runSingle(t, app.STK(), 10)
	if r.AppCPUUtil < 30 || r.AppCPUUtil > 400 {
		t.Fatalf("app CPU util = %v%%, implausible", r.AppCPUUtil)
	}
	if r.VNCCPUUtil < 30 || r.VNCCPUUtil > 400 {
		t.Fatalf("VNC CPU util = %v%%, implausible", r.VNCCPUUtil)
	}
	if r.GPUUtil <= 0 || r.GPUUtil > 100 {
		t.Fatalf("GPU util = %v%%, implausible", r.GPUUtil)
	}
	if r.L3MissRate < 0.5 || r.L3MissRate > 1 {
		t.Fatalf("L3 miss rate = %v, 3D apps should be > 0.5", r.L3MissRate)
	}
}

func TestMoreInstancesDegradePerformance(t *testing.T) {
	fpsAt := func(n int) float64 {
		cl := NewCluster(Options{Seed: 9})
		for i := 0; i < n; i++ {
			cl.AddInstance(NewInstanceConfig(app.STK(), HumanDriver()))
		}
		cl.Run(sim.DurationOfSeconds(2), sim.DurationOfSeconds(8))
		return cl.Instances[0].Result().ServerFPS
	}
	one, four := fpsAt(1), fpsAt(4)
	if four >= one {
		t.Fatalf("server FPS did not degrade under 4-way co-location: %v -> %v", one, four)
	}
}

func TestContentionRaisesALAndMisses(t *testing.T) {
	run := func(n int) InstanceResult {
		cl := NewCluster(Options{Seed: 10})
		for i := 0; i < n; i++ {
			cl.AddInstance(NewInstanceConfig(app.D2(), HumanDriver()))
		}
		cl.Run(sim.DurationOfSeconds(2), sim.DurationOfSeconds(8))
		return cl.Instances[0].Result()
	}
	one, four := run(1), run(4)
	if four.Stages[trace.StageAL].Mean <= one.Stages[trace.StageAL].Mean {
		t.Fatalf("AL did not grow under contention: %v -> %v",
			one.Stages[trace.StageAL].Mean, four.Stages[trace.StageAL].Mean)
	}
	if four.L3MissRate <= one.L3MissRate {
		t.Fatalf("L3 miss did not grow: %v -> %v", one.L3MissRate, four.L3MissRate)
	}
	if four.GPUL2Miss <= one.GPUL2Miss {
		t.Fatalf("GPU L2 miss did not grow: %v -> %v", one.GPUL2Miss, four.GPUL2Miss)
	}
	if diff := four.GPUTexMiss - one.GPUTexMiss; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("private texture miss changed under contention: %v -> %v",
			one.GPUTexMiss, four.GPUTexMiss)
	}
}

func TestOptimizationsRaiseServerFPS(t *testing.T) {
	run := func(opt bool) InstanceResult {
		cl := NewCluster(Options{Seed: 11})
		cfg := NewInstanceConfig(app.STK(), HumanDriver())
		if opt {
			cfg.Interposer = vgl.Optimized()
		}
		cl.AddInstance(cfg)
		cl.Run(sim.DurationOfSeconds(2), sim.DurationOfSeconds(8))
		return cl.Instances[0].Result()
	}
	base, opt := run(false), run(true)
	gain := (opt.ServerFPS - base.ServerFPS) / base.ServerFPS * 100
	if gain < 15 {
		t.Fatalf("optimizations gained only %.1f%% server FPS (%.1f → %.1f)",
			gain, base.ServerFPS, opt.ServerFPS)
	}
	if opt.Stages[trace.StageFC].Mean >= base.Stages[trace.StageFC].Mean {
		t.Fatalf("FC did not shrink: %v -> %v",
			base.Stages[trace.StageFC].Mean, opt.Stages[trace.StageFC].Mean)
	}
}

func TestMemoizationCollapsesAttrCalls(t *testing.T) {
	cl := NewCluster(Options{Seed: 12})
	cfg := NewInstanceConfig(app.IM(), HumanDriver())
	cfg.Interposer = vgl.Optimized()
	cl.AddInstance(cfg)
	cl.Run(sim.DurationOfSeconds(1), sim.DurationOfSeconds(5))
	r := cl.Instances[0].Result()
	if r.Copies < 50 {
		t.Fatalf("too few copies to evaluate: %d", r.Copies)
	}
	if r.AttrCalls > 2 {
		t.Fatalf("memoized interposer made %d XGetWindowAttributes calls for %d copies",
			r.AttrCalls, r.Copies)
	}
}

func TestTagsSurviveIPCBoundary(t *testing.T) {
	cl := NewCluster(Options{Seed: 13})
	cl.AddInstance(NewInstanceConfig(app.IM(), HumanDriver()))
	cl.Run(sim.DurationOfSeconds(2), sim.DurationOfSeconds(8))
	// If tags survive the pixel-embed→extract→restore path, hook10
	// matches and RTTs complete.
	if cl.Instances[0].Tracer.CompletedRTTCount() == 0 {
		t.Fatal("no round trips completed — tag embedding path broken")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		cl := NewCluster(Options{Seed: 42})
		cl.AddInstance(NewInstanceConfig(app.RE(), HumanDriver()))
		cl.Run(sim.DurationOfSeconds(1), sim.DurationOfSeconds(5))
		r := cl.Instances[0].Result()
		return r.ServerFPS, r.RTT.Mean
	}
	fps1, rtt1 := run()
	fps2, rtt2 := run()
	if fps1 != fps2 || rtt1 != rtt2 {
		t.Fatalf("same-seed runs diverged: (%v, %v) vs (%v, %v)", fps1, rtt1, fps2, rtt2)
	}
}

func TestPowerScalesSubLinearly(t *testing.T) {
	runP := func(n int) float64 {
		cl := NewCluster(Options{Seed: 14})
		for i := 0; i < n; i++ {
			cl.AddInstance(NewInstanceConfig(app.ITP(), HumanDriver()))
		}
		cl.Run(sim.DurationOfSeconds(1), sim.DurationOfSeconds(6))
		return cl.TotalPowerWatts()
	}
	p1, p4 := runP(1), runP(4)
	if p4 <= p1 {
		t.Fatalf("power did not grow with instances: %v -> %v", p1, p4)
	}
	if p4 >= 3*p1 {
		t.Fatalf("power grew almost linearly (%vW -> %vW): consolidation economics lost", p1, p4)
	}
}

func TestContainerizedInstanceRuns(t *testing.T) {
	cl := NewCluster(Options{Seed: 15})
	cfg := NewInstanceConfig(app.D2(), HumanDriver())
	cfg.Containerized = true
	cfg.Container = dockerOverheads()
	cl.AddInstance(cfg)
	cl.Run(sim.DurationOfSeconds(1), sim.DurationOfSeconds(6))
	r := cl.Instances[0].Result()
	if r.ServerFPS <= 0 || r.RTT.N == 0 {
		t.Fatal("containerized instance produced no measurements")
	}
}
