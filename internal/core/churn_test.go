package core

import (
	"strings"
	"testing"

	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/stats"
)

func quickChurnShape() exp.FleetShape {
	return exp.FleetShape{
		Machines:          3,
		Policy:            fleet.PolicyLeastCount,
		Mix:               string(fleet.MixHeavy),
		CoreClasses:       "8,4",
		Epochs:            4,
		ArrivalRate:       2.5,
		MeanSessionEpochs: 2,
		Migrate:           true,
	}
}

func TestRunFleetChurnShape(t *testing.T) {
	r := RunFleetChurn(quickChurnShape(), quickFleetConfig())
	if len(r.Epochs) != 4 {
		t.Fatalf("got %d epoch rows, want 4", len(r.Epochs))
	}
	if r.Policy != fleet.PolicyLeastCount || r.Mix != string(fleet.MixHeavy) || !r.Migrate {
		t.Fatalf("shape echo wrong: %+v", r)
	}
	if r.RepsMerged != 1 {
		t.Fatalf("RepsMerged = %d, want 1", r.RepsMerged)
	}
	totals := ChurnResult{}
	active := 0
	for e, er := range r.Epochs {
		if er.Epoch != e {
			t.Fatalf("epoch row %d labeled %d", e, er.Epoch)
		}
		// Session conservation: this epoch's active population is last
		// epoch's, minus departures, plus the placed arrivals.
		active += er.Arrivals - er.Rejected - er.Departures
		if er.Active != active {
			t.Fatalf("epoch %d: active %d, conservation says %d", e, er.Active, active)
		}
		if er.Active < 0 || er.Rejected > er.Arrivals {
			t.Fatalf("epoch %d counters out of range: %+v", e, er)
		}
		if er.PowerWatts <= 0 {
			t.Fatalf("epoch %d: fleet power must include idle watts, got %g", e, er.PowerWatts)
		}
		if er.Active > 0 && er.RTT.N == 0 {
			t.Fatalf("epoch %d has %d active sessions but no pooled RTT", e, er.Active)
		}
		totals.Arrivals += er.Arrivals
		totals.Departures += er.Departures
		totals.Migrations += er.Migrations
		totals.Rejected += er.Rejected
		totals.QoSViolations += er.QoSViolations
	}
	if r.Arrivals != totals.Arrivals || r.Departures != totals.Departures ||
		r.Migrations != totals.Migrations || r.Rejected != totals.Rejected ||
		r.QoSViolations != totals.QoSViolations {
		t.Fatalf("rollups disagree with per-epoch sums: %+v vs %+v", r, totals)
	}
	if r.Arrivals == 0 {
		t.Fatal("rate 2.5 over 4 epochs should arrive someone")
	}
	if r.Epochs[len(r.Epochs)-1].Migrations != 0 {
		t.Fatal("the final epoch must not migrate — there is no next epoch to help")
	}
	table := ChurnTable(r)
	if !strings.Contains(table, "epoch") || !strings.Contains(table, "migrate") {
		t.Fatalf("churn table misses expected columns:\n%s", table)
	}
}

// TestChurnComparisonSharesPopulation: the static and migrated trials
// must churn the identical tenant population on every repetition — the
// unit seed encodes the Migrate flag, so the schedule must not derive
// from it.
func TestChurnComparisonSharesPopulation(t *testing.T) {
	testChurnComparisonSharesPopulation(t, quickFleetConfig())
}

// TestChurnComparisonSharesPopulationSeedZero: "-seed 0" (derive
// everything) must still hand both sides one tenant population — the
// stream base falls back to the grid's key-independent base seed, never
// to the unit seed, which encodes the Migrate flag.
func TestChurnComparisonSharesPopulationSeedZero(t *testing.T) {
	cfg := quickFleetConfig()
	cfg.Seed = 0
	testChurnComparisonSharesPopulation(t, cfg)
}

func testChurnComparisonSharesPopulation(t *testing.T, cfg ExperimentConfig) {
	t.Helper()
	cfg.Reps = 2
	rs := RunChurnComparison(quickChurnShape(), cfg)
	if len(rs) != 2 {
		t.Fatalf("got %d results, want {static, migrated}", len(rs))
	}
	static, migrated := rs[0], rs[1]
	if static.Migrate || !migrated.Migrate {
		t.Fatalf("order must be {static, migrated}: %v %v", static.Migrate, migrated.Migrate)
	}
	if static.Migrations != 0 {
		t.Fatalf("static placement reported %d migrations", static.Migrations)
	}
	if static.Arrivals != migrated.Arrivals || static.Departures != migrated.Departures {
		t.Fatalf("populations differ: static %d/%d vs migrated %d/%d arrivals/departures",
			static.Arrivals, static.Departures, migrated.Arrivals, migrated.Departures)
	}
	for e := range static.Epochs {
		if static.Epochs[e].Arrivals != migrated.Epochs[e].Arrivals {
			t.Fatalf("epoch %d arrival counts differ across migrate settings", e)
		}
	}
	table := ChurnComparisonTable(rs)
	if !strings.Contains(table, "static") || !strings.Contains(table, "migrate") {
		t.Fatalf("comparison table misses modes:\n%s", table)
	}
}

// TestMergeFleetDeepCopiesRepZero: the merged multi-rep FleetResult
// used to alias rep 0's Machines (and Requests) slices — mutating the
// merged value silently corrupted rep 0 and vice versa — and carried no
// provenance mark for its rep-0 per-machine rows.
func TestMergeFleetDeepCopiesRepZero(t *testing.T) {
	mk := func() TrialResult {
		return TrialResult{Fleet: &FleetResult{
			Policy:   "roundrobin",
			Requests: []string{"STK", "RE"},
			Machines: []MachineResult{{
				Machine: 0,
				Results: []InstanceResult{{Name: "STK#0", Benchmark: "STK"}},
				RTT:     stats.Summary{N: 4, Mean: 100},
			}},
			Placed: 2, TotalPowerWatts: 50,
			RTT: stats.Summary{N: 4, Mean: 100},
		}}
	}
	reps := []TrialResult{mk(), mk()}
	merged := mergeFleet(reps)
	if merged.RepsMerged != 2 {
		t.Fatalf("RepsMerged = %d, want 2", merged.RepsMerged)
	}
	merged.Machines[0].Machine = 99
	merged.Machines[0].Results[0].Name = "clobbered"
	merged.Requests[0] = "clobbered"
	if reps[0].Fleet.Machines[0].Machine == 99 {
		t.Fatal("merged result aliases rep 0's Machines slice")
	}
	if reps[0].Fleet.Machines[0].Results[0].Name == "clobbered" {
		t.Fatal("merged result aliases rep 0's per-machine Results slice")
	}
	if reps[0].Fleet.Requests[0] == "clobbered" {
		t.Fatal("merged result aliases rep 0's Requests slice")
	}
	if single := mergeFleet(reps[:1]); single.RepsMerged != 1 {
		t.Fatalf("single-rep RepsMerged = %d, want 1", single.RepsMerged)
	}
}

// TestChurnShapeValidationPanicsEarly extends the fleet validation
// contract to the churn vocabulary and the Requests >= 1 rule.
func TestChurnShapeValidationPanicsEarly(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected a panic", name)
			}
		}()
		f()
	}
	cfg := quickFleetConfig()
	mustPanic("non-positive requests", func() {
		RunFleetConsolidation(exp.FleetShape{Machines: 1, Requests: 0}, cfg)
	})
	mustPanic("bad core classes", func() {
		RunFleetConsolidation(exp.FleetShape{Machines: 1, Requests: 1, CoreClasses: "8,nope"}, cfg)
	})
	mustPanic("zero churn rate", func() {
		RunFleetChurn(exp.FleetShape{Machines: 1, Epochs: 2, MeanSessionEpochs: 1}, cfg)
	})
	mustPanic("zero churn duration", func() {
		RunFleetChurn(exp.FleetShape{Machines: 1, Epochs: 2, ArrivalRate: 1}, cfg)
	})
	mustPanic("bad churn mix", func() {
		RunFleetChurn(exp.FleetShape{Machines: 1, Epochs: 2, ArrivalRate: 1, MeanSessionEpochs: 1, Mix: "diurnal"}, cfg)
	})
	mustPanic("bad churn comparison", func() {
		RunChurnComparison(exp.FleetShape{Machines: 1, Epochs: 0, ArrivalRate: 1, MeanSessionEpochs: 1, Requests: 0}, cfg)
	})
	// Entry points must reject a shape of the wrong kind up front — a
	// one-shot shape reaching the churn merger (or vice versa) would
	// otherwise nil-deref mid-run with an unattributable panic.
	mustPanic("one-shot shape on RunFleetChurn", func() {
		RunFleetChurn(exp.FleetShape{Machines: 2, Requests: 6}, cfg)
	})
	mustPanic("churn shape on RunFleetConsolidation", func() {
		RunFleetConsolidation(quickChurnShape(), cfg)
	})
	mustPanic("churn shape on RunFleetComparison", func() {
		RunFleetComparison(quickChurnShape(), cfg)
	})
	// Fractional core classes below 1 would round to 0 cluster cores
	// and silently execute as the 8-core default.
	mustPanic("sub-1 core class", func() {
		RunFleetConsolidation(exp.FleetShape{Machines: 1, Requests: 1, CoreClasses: "0.4"}, cfg)
	})
}

// TestFleetShapeKeysStableAndChurnDistinct: churn and heterogeneity
// fields must key distinctly, while every pre-churn shape keeps its
// exact historical key — derived per-rep seeds (and the committed
// golden fixtures) depend on it.
func TestFleetShapeKeysStableAndChurnDistinct(t *testing.T) {
	legacy := exp.FleetTrial(exp.FleetShape{Machines: 3, Mix: "shuffled", Requests: 8})
	const want = "w=0;m=0;s=0|fleet:n=3:pol=:mix=shuffled:req=8:cores=0"
	if legacy.Key() != want {
		t.Fatalf("pre-churn fleet key changed:\n got %q\nwant %q", legacy.Key(), want)
	}
	base := quickChurnShape()
	variants := []exp.FleetShape{base}
	v := base
	v.Migrate = false
	variants = append(variants, v)
	v = base
	v.Epochs = 5
	variants = append(variants, v)
	v = base
	v.ArrivalRate = 3
	variants = append(variants, v)
	v = base
	v.MeanSessionEpochs = 4
	variants = append(variants, v)
	v = base
	v.CoreClasses = "8,16"
	variants = append(variants, v)
	keys := map[string]bool{}
	for _, s := range variants {
		keys[exp.FleetTrial(s).Key()] = true
	}
	if len(keys) != len(variants) {
		t.Fatalf("churn shape variants collide: %d distinct keys for %d shapes", len(keys), len(variants))
	}
}
