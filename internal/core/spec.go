package core

import (
	"fmt"
	"strings"

	"pictor/internal/app"
	"pictor/internal/exp"
	"pictor/internal/fleet"
)

// Experiment-spec kinds: the comparison batches a spec can request.
const (
	// SpecGrid runs the paper's complete evaluation grid.
	SpecGrid = "grid"
	// SpecFleet consolidates a request stream under every placement
	// policy (the fleet comparison).
	SpecFleet = "fleet"
	// SpecChurn runs the static-vs-migrate churn comparison.
	SpecChurn = "churn"
	// SpecFaults runs the healthy/drop/resilient fault comparison.
	SpecFaults = "faults"
)

// SpecKinds lists the valid experiment-spec kinds.
func SpecKinds() []string { return []string{SpecGrid, SpecFleet, SpecChurn, SpecFaults} }

// ExperimentSpec is the declarative experiment vocabulary shared by the
// pictor-bench CLI and the pictor-server control plane: one struct that
// names a comparison batch (Kind) plus its knobs, with one Normalize
// that defaults and validates — so the two frontends cannot drift in
// what they accept or how they lower it onto trials.
//
// Zero fields mean "default" (each kind documents its defaults in
// Normalize); Seed and Migrate are pointers because their zero values
// are meaningful (seed 0 selects per-trial derived seeds, migrate false
// disables the controller), so "unset" must be distinguishable.
type ExperimentSpec struct {
	// Kind selects the comparison batch (see SpecKinds).
	Kind string `json:"kind"`
	// Profiles is the workload selection ("" = the paper's six, "all",
	// or a comma-separated name list — see app.Resolve).
	Profiles string `json:"profiles,omitempty"`
	// Seconds and Warmup are the per-trial simulated windows.
	Seconds float64 `json:"seconds,omitempty"`
	Warmup  float64 `json:"warmup,omitempty"`
	// Seed pins the base simulation seed (nil = 1; explicit 0 switches
	// to per-trial derived seeds).
	Seed *int64 `json:"seed,omitempty"`
	// Reps repeats every trial with derived seeds (0 = 1).
	Reps int `json:"reps,omitempty"`

	// MaxInstances bounds the grid's co-location sweeps (grid only).
	MaxInstances int `json:"maxInstances,omitempty"`

	// Fleet-scope knobs (fleet, churn and faults kinds).
	Machines int    `json:"machines,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Mix      string `json:"mix,omitempty"`
	// Requests is the one-shot stream length (fleet only; 0 = 3 per
	// machine).
	Requests int `json:"requests,omitempty"`
	// CoreClasses is the per-machine core-class list ("8,4", cycled).
	CoreClasses string `json:"cores,omitempty"`

	// Churn knobs (churn and faults kinds).
	Rate     float64 `json:"rate,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Epochs   int     `json:"epochs,omitempty"`
	Migrate  *bool   `json:"migrate,omitempty"`

	// Arrival-rate schedule knobs (churn and faults kinds). Schedule
	// selects how the Poisson rate varies over the horizon ("" and
	// "constant" keep the flat historical rate; "diurnal" is a
	// sinusoidal day curve; "flash" a spike window — see
	// fleet.Schedules). Peak is the diurnal peak / flash spike rate
	// and Period the day length / spike width in epochs; both apply
	// only under a non-constant schedule.
	Schedule string  `json:"schedule,omitempty"`
	Peak     float64 `json:"peak,omitempty"`
	Period   int     `json:"period,omitempty"`
	// Stream opts the churn results into the aggregate-only streaming
	// sink: per-epoch rows are observed and dropped as epochs close, so
	// a million-session sweep's result holds the horizon rollups in
	// O(machines) memory instead of O(machines × epochs) rows.
	Stream bool `json:"stream,omitempty"`

	// Fault knobs (churn and faults kinds; MTBF/MTTR default on for
	// faults).
	MTBF    float64 `json:"mtbf,omitempty"`
	MTTR    float64 `json:"mttr,omitempty"`
	Retries int     `json:"retries,omitempty"`
	Backoff int     `json:"backoff,omitempty"`
	Degrade bool    `json:"degrade,omitempty"`

	// Fidelity knobs (churn and faults kinds). Fidelity is a pointer
	// because its zero value is meaningful: fidelity 0 runs every
	// machine on the surrogate, nil keeps full per-frame simulation
	// everywhere. A non-nil Fidelity enables the surrogate tail and
	// keeps machines [0, fidelity) on full simulation.
	Fidelity *int `json:"fidelity,omitempty"`
	// Occupancy opts into per-(machine, epoch) occupancy rows in churn
	// results (placement heatmaps; payloads grow with machines×epochs).
	Occupancy bool `json:"occupancy,omitempty"`
}

// specField marks one kind-scoped field as set or unset, so Normalize
// can reject knobs that the requested kind would silently ignore.
type specField struct {
	name string
	set  bool
}

func firstSetField(fields ...specField) string {
	for _, f := range fields {
		if f.set {
			return f.name
		}
	}
	return ""
}

// Normalize validates the spec and fills defaults, returning the
// as-executed spec. It is the one place the experiment vocabulary is
// checked: the CLI calls it before running, the server calls it before
// queueing, and both report its errors verbatim.
//
// Shared defaults: seconds 45, warmup 3, seed 1, reps 1. Fleet scope:
// machines 4, requests 3 per machine (fleet), rate 1.6, duration 5,
// epochs 10, migrate on, retry backoff 1 (churn/faults). The faults
// kind defaults its fault knobs independently — mtbf 5 when unset, mttr
// 1 when unset — and setting mttr without mtbf is an error for every
// kind, never silently ignored or clobbered.
//
// Fields outside the requested kind's scope are rejected, not ignored:
// a "fleet" spec carrying epochs, or a "grid" spec carrying machines,
// is almost certainly a typo, and the executor would run something
// other than what the author believes.
func (s ExperimentSpec) Normalize() (ExperimentSpec, error) {
	s.Kind = strings.ToLower(strings.TrimSpace(s.Kind))
	switch s.Kind {
	case SpecGrid, SpecFleet, SpecChurn, SpecFaults:
	case "":
		return s, fmt.Errorf("spec: kind is required (one of %s)", strings.Join(SpecKinds(), ", "))
	default:
		return s, fmt.Errorf("spec: unknown kind %q (one of %s)", s.Kind, strings.Join(SpecKinds(), ", "))
	}
	if _, err := app.Resolve(s.Profiles); err != nil {
		return s, fmt.Errorf("spec: profiles: %v", err)
	}
	if s.Seconds < 0 || s.Warmup < 0 {
		return s, fmt.Errorf("spec: seconds and warmup must be >= 0, got %g and %g", s.Seconds, s.Warmup)
	}
	if s.Seconds == 0 {
		s.Seconds = 45
	}
	if s.Warmup == 0 {
		s.Warmup = DefaultExperimentConfig().WarmupSeconds
	}
	if s.Seed == nil {
		one := int64(1)
		s.Seed = &one
	}
	if s.Reps < 0 {
		return s, fmt.Errorf("spec: reps must be >= 0, got %d", s.Reps)
	}
	if s.Reps == 0 {
		s.Reps = 1
	}

	// Reject knobs outside the kind's scope before defaulting them.
	fleetScope := []specField{
		{"machines", s.Machines != 0}, {"policy", s.Policy != ""},
		{"mix", s.Mix != ""}, {"requests", s.Requests != 0},
		{"cores", s.CoreClasses != ""},
	}
	churnScope := []specField{
		{"rate", s.Rate != 0}, {"duration", s.Duration != 0},
		{"epochs", s.Epochs != 0}, {"migrate", s.Migrate != nil},
		{"mtbf", s.MTBF != 0}, {"mttr", s.MTTR != 0},
		{"retries", s.Retries != 0}, {"backoff", s.Backoff != 0},
		{"degrade", s.Degrade},
		{"fidelity", s.Fidelity != nil}, {"occupancy", s.Occupancy},
		{"schedule", s.Schedule != ""}, {"peak", s.Peak != 0},
		{"period", s.Period != 0}, {"stream", s.Stream},
	}
	var outOfScope []specField
	switch s.Kind {
	case SpecGrid:
		outOfScope = append(fleetScope, churnScope...)
	case SpecFleet:
		outOfScope = append([]specField{{"maxInstances", s.MaxInstances != 0}}, churnScope...)
	case SpecChurn, SpecFaults:
		outOfScope = []specField{{"maxInstances", s.MaxInstances != 0}, {"requests", s.Requests != 0}}
	}
	if bad := firstSetField(outOfScope...); bad != "" {
		return s, fmt.Errorf("spec: %q does not apply to kind %q", bad, s.Kind)
	}

	if s.Kind == SpecGrid {
		if s.MaxInstances < 0 {
			return s, fmt.Errorf("spec: maxInstances must be >= 0, got %d", s.MaxInstances)
		}
		if s.MaxInstances == 0 {
			s.MaxInstances = DefaultExperimentConfig().MaxInstances
		}
		return s, nil
	}

	// Fleet-scope defaults and validation (fleet, churn, faults).
	if s.Machines < 0 {
		return s, fmt.Errorf("spec: machines must be >= 1, got %d", s.Machines)
	}
	if s.Machines == 0 {
		s.Machines = 4
	}
	if _, err := fleet.NewPolicy(s.Policy, nil); err != nil {
		return s, fmt.Errorf("spec: %v", err)
	}
	if _, err := fleet.RequestStream(fleet.Mix(s.Mix), 1, 1); err != nil {
		return s, fmt.Errorf("spec: %v", err)
	}
	if _, err := fleet.ParseCoreClasses(s.CoreClasses); err != nil {
		return s, fmt.Errorf("spec: cores: %v", err)
	}

	if s.Kind == SpecFleet {
		if s.Requests < 0 {
			return s, fmt.Errorf("spec: requests must be >= 1 (or 0 for the 3-per-machine default), got %d", s.Requests)
		}
		if s.Requests == 0 {
			s.Requests = 3 * s.Machines
		}
		return s, nil
	}

	// Churn defaults and validation (churn, faults).
	if s.Rate == 0 {
		s.Rate = 1.6
	}
	if s.Duration == 0 {
		s.Duration = 5
	}
	if s.Epochs == 0 {
		s.Epochs = 10
	}
	if s.Migrate == nil {
		on := true
		s.Migrate = &on
	}
	if err := fleet.ValidateChurnParams(s.Rate, s.Duration, s.Epochs); err != nil {
		return s, fmt.Errorf("spec: rate/duration/epochs: %v", err)
	}
	// Rate-schedule knobs. A peak or period under a constant schedule
	// would be silently ignored by the arrival source — reject it, like
	// mttr without mtbf, instead of letting the author believe the rate
	// bends.
	if scheduled := s.Schedule != "" && s.Schedule != fleet.ScheduleConstant; !scheduled && (s.Peak != 0 || s.Period != 0) {
		return s, fmt.Errorf("spec: peak (%g) / period (%d) set without a non-constant schedule — set schedule to %q or %q", s.Peak, s.Period, fleet.ScheduleDiurnal, fleet.ScheduleFlash)
	}
	if err := fleet.ValidateSchedule(s.Schedule, s.Rate, s.Peak, s.Period); err != nil {
		return s, fmt.Errorf("spec: %v", err)
	}
	// Fault knobs. A repair time without a failure process would be
	// silently ignored by the executor — reject it instead of letting
	// the author believe faults are on.
	if s.MTBF == 0 && s.MTTR != 0 {
		return s, fmt.Errorf("spec: mttr (%g) set without mtbf — set mtbf > 0 to enable fault injection", s.MTTR)
	}
	if s.Kind == SpecFaults {
		// The experiment is about faults: each knob defaults
		// independently, so an explicit mttr (or mtbf) survives.
		if s.MTBF == 0 {
			s.MTBF = 5
		}
		if s.MTTR == 0 {
			s.MTTR = 1
		}
	}
	if err := fleet.ValidateFaultParams(s.MTBF, s.MTTR); err != nil {
		return s, fmt.Errorf("spec: mtbf/mttr: %v", err)
	}
	if s.Retries < 0 || s.Backoff < 0 {
		return s, fmt.Errorf("spec: retries and backoff must be >= 0, got %d and %d", s.Retries, s.Backoff)
	}
	if s.Backoff == 0 {
		s.Backoff = 1
	}
	// Fidelity tiers: a set fidelity names the full-simulation cohort
	// size, so it cannot exceed the fleet.
	if s.Fidelity != nil && (*s.Fidelity < 0 || *s.Fidelity > s.Machines) {
		return s, fmt.Errorf("spec: fidelity must be in [0, machines] (= [0, %d]), got %d", s.Machines, *s.Fidelity)
	}
	return s, nil
}

// Config lowers a normalized spec onto the runner configuration.
// Parallel is execution policy, not part of the spec — the caller sets
// it (the server from its own flag, the CLI from -parallel).
func (s ExperimentSpec) Config() ExperimentConfig {
	seed := int64(1)
	if s.Seed != nil {
		seed = *s.Seed
	}
	return ExperimentConfig{
		WarmupSeconds: s.Warmup,
		Seconds:       s.Seconds,
		Seed:          seed,
		MaxInstances:  s.MaxInstances,
		Reps:          s.Reps,
		Profiles:      s.Profiles,
	}
}

// Shape lowers a normalized fleet/churn/faults spec onto the trial
// vocabulary. Zero-valued for grid specs (the grid has no fleet shape).
func (s ExperimentSpec) Shape() exp.FleetShape {
	sh := exp.FleetShape{
		Machines:    s.Machines,
		Policy:      s.Policy,
		Mix:         s.Mix,
		Profiles:    s.Profiles,
		CoreClasses: s.CoreClasses,
	}
	switch s.Kind {
	case SpecFleet:
		sh.Requests = s.Requests
	case SpecChurn, SpecFaults:
		sh.Epochs = s.Epochs
		sh.ArrivalRate = s.Rate
		sh.MeanSessionEpochs = s.Duration
		sh.Migrate = s.Migrate != nil && *s.Migrate
		sh.MTBFEpochs = s.MTBF
		sh.MTTREpochs = s.MTTR
		sh.RetryAttempts = s.Retries
		sh.RetryBackoffEpochs = s.Backoff
		sh.Degrade = s.Degrade
		if s.Fidelity != nil {
			sh.SurrogateTail = true
			sh.FidelitySampled = *s.Fidelity
		}
		sh.OccupancyDetail = s.Occupancy
		sh.RateSchedule = s.Schedule
		sh.PeakRate = s.Peak
		sh.PeriodEpochs = s.Period
		sh.RollupOnly = s.Stream
	}
	return sh
}

// Trials lowers a normalized spec onto the exact trial batch the CLI's
// comparison views run: the full evaluation grid, one trial per
// placement policy (fleet), {static, migrated} (churn), or {healthy,
// drop, resilient} (faults). Call Normalize first — Trials assumes a
// validated spec and panics on an invalid one, like the Run* entry
// points.
func (s ExperimentSpec) Trials() []exp.Trial {
	cfg := s.Config()
	switch s.Kind {
	case SpecGrid:
		return SuiteGridTrials(cfg)
	case SpecFleet:
		shape := s.Shape()
		shape.Policy = ""
		validateFleetShape(shape)
		return fleetComparisonTrials(shape, cfg)
	case SpecChurn:
		shape := s.Shape()
		validateFleetShape(shape)
		return churnComparisonTrials(shape, cfg)
	case SpecFaults:
		shape := s.Shape()
		validateFleetShape(shape)
		return faultComparisonTrials(shape, cfg)
	}
	panic(fmt.Sprintf("core: unknown spec kind %q (normalize first)", s.Kind))
}
