package core

// FeatureMatrix renders the paper's Table 4: the qualitative feature
// comparison between Pictor and prior VDI / cloud-gaming measurement
// work.
func FeatureMatrix() string {
	header := []string{"Feature", "VNCPlay", "Chen", "SlowMotion", "LoginVSI", "DeskBench", "VDBench", "Dusi", "Pictor"}
	y, n := "yes", "-"
	rows := [][]string{
		{"Random UI objects tolerant", n, y, n, n, n, n, n, y},
		{"Varying net latency tolerant", y, y, y, n, y, n, n, y},
		{"User-input tracking", n, n, y, n, n, n, n, y},
		{"CPU perf. measurement", n, y, n, y, y, y, n, y},
		{"Network perf. measurement", y, y, y, n, y, y, y, y},
		{"GPU perf. measurement", n, n, n, n, n, n, n, y},
		{"PCIe frame-copy measurement", n, n, n, n, n, n, n, y},
		{"Unaltered 3D app behaviour", y, y, n, y, n, y, y, y},
	}
	return FormatTable(header, rows)
}
