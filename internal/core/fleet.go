package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pictor/internal/app"
	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/sim"
	"pictor/internal/stats"
)

// MachineResult is one fleet machine's outcome: its placed instances'
// measurements plus machine-level rollups.
type MachineResult struct {
	// Machine is the machine's fleet index.
	Machine int
	// Results holds the placed instances' measurements, in admission
	// order.
	Results []InstanceResult
	// PredictedDemand is the placement-time CPU-demand estimate the
	// policy acted on (cores).
	PredictedDemand float64
	// PowerWatts is the machine's modelled wall power (idle machines
	// still burn idle watts — that is the point of bin-packing).
	PowerWatts float64
	// RTT pools the placed instances' RTT distributions by averaging
	// their per-instance quantiles (the historical aggregate the golden
	// fixtures pin).
	RTT stats.Summary
	// RawRTT holds the placed instances' raw RTT observations (ms,
	// sorted per instance, concatenated in admission order). Exact
	// pooled quantiles come from these — averaging per-instance
	// quantiles, as RTT does, is only an approximation of the pooled
	// distribution's quantiles.
	RawRTT []float64
	// QoSViolations counts instances below the 25-FPS interactivity
	// floor (fleet.QoSMinFPS).
	QoSViolations int
}

// FleetResult is the outcome of one multi-server consolidation trial.
type FleetResult struct {
	// Policy and Mix echo the executed shape.
	Policy string
	Mix    string
	// Requests is the arrival stream (profile names in admission
	// order). It is derived policy-independently, so every policy of a
	// comparison consolidates the identical stream.
	Requests []string
	// Machines holds per-machine results, index-aligned with the fleet.
	// Provenance caveat: when RepsMerged > 1, these rows describe
	// repetition 0 only (randomized mixes place differently under
	// different derived seeds, so machines do not align across reps),
	// while the fleet-level scalars below aggregate every repetition —
	// summing the rows will not reproduce the pooled totals.
	Machines []MachineResult
	// RepsMerged is how many repetitions the fleet-level scalars
	// aggregate (1 = a single execution; see mergeFleet).
	RepsMerged int
	// Placed and Rejected partition the request stream: admission turns
	// a request away when no machine has overcommitted capacity left.
	Placed   int
	Rejected int
	// QoSViolations counts placed instances below the 25-FPS floor,
	// fleet-wide.
	QoSViolations int
	// TotalPowerWatts sums wall power over all machines, idle included.
	TotalPowerWatts float64
	// RTT pools every placed instance's RTT distribution by averaging
	// per-instance (and, merged, per-rep) quantiles — the historical
	// aggregate the golden fixtures pin.
	RTT stats.Summary
	// ExactRTT summarizes the pooled raw RTT observations of every
	// placed instance — across every repetition when RepsMerged > 1 —
	// so its quantiles are those of the actual pooled distribution
	// rather than averages of per-rep quantiles.
	ExactRTT stats.Summary
}

// executeFleet lowers a fleet-shaped trial onto real clusters: generate
// the request stream, place it with the named policy, then build and
// run one cluster per machine. Machine clusters run sequentially inside
// the unit — the runner already shards trials across workers — with
// per-machine seeds derived from the unit seed, so results are
// byte-identical at any parallelism level.
func executeFleet(t exp.Trial, u exp.Unit) *FleetResult {
	sh := *t.Fleet
	// The stream seed must be policy-independent: u.Seed derives from
	// the trial key, which names the policy, so deriving the stream
	// from it would hand every policy of a comparison a *different*
	// random arrival stream on reps >= 1. Deriving from the trial's
	// pinned seed and the stream's own parameters keeps the streams
	// matched across policies (and still distinct per rep and mix);
	// with no pinned seed the grid's base seed — key-independent by
	// construction — fills in, never the key-derived u.Seed.
	streamBase := t.Seed
	if streamBase == 0 {
		streamBase = u.Base
	}
	suite := resolveShapeProfiles(t.ID, sh.Profiles)
	// The workload subset joins the stream key only when set, so every
	// pre-registry shape derives its exact historical stream seed.
	streamKey := fmt.Sprintf("fleet/mix|%s|%d", sh.Mix, sh.Requests)
	if sh.Profiles != "" {
		streamKey += "|profiles=" + sh.Profiles
	}
	reqs, err := fleet.RequestStreamFrom(suite, fleet.Mix(sh.Mix), sh.Requests, exp.DeriveSeed(streamBase, streamKey, u.Rep))
	if err != nil {
		panic(fmt.Sprintf("core: fleet trial %q: %v", t.ID, err))
	}
	pol := fleetPolicy(t.ID, sh.Policy, suite)
	f := buildFleet(t.ID, sh)
	f.Admit(reqs, pol)

	out := &FleetResult{
		Policy:   pol.Name(),
		Mix:      string(sh.Mix),
		Requests: make([]string, len(reqs)),
		Machines: make([]MachineResult, len(f.Machines)),
		Rejected: len(f.Rejected),
	}
	if out.Mix == "" {
		out.Mix = string(fleet.MixSuite)
	}
	for i, r := range reqs {
		out.Requests[i] = r.Name
	}
	var fleetRTTs []stats.Summary
	for mi, m := range f.Machines {
		cl := NewCluster(Options{
			Seed:  exp.DeriveSeed(u.Seed, "fleet/machine", mi),
			Cores: int(m.Cores + 0.5),
		})
		for _, prof := range m.Placed {
			cl.AddInstance(NewInstanceConfig(prof, HumanDriver()))
		}
		cl.Run(sim.DurationOfSeconds(t.Warmup), sim.DurationOfSeconds(t.Measure))

		mr := MachineResult{
			Machine:         mi,
			Results:         make([]InstanceResult, len(cl.Instances)),
			PredictedDemand: m.Demand,
			PowerWatts:      cl.TotalPowerWatts(),
		}
		var machineRTTs []stats.Summary
		for i, inst := range cl.Instances {
			r := inst.Result()
			mr.Results[i] = r
			if r.ClientFPS < fleet.QoSMinFPS {
				mr.QoSViolations++
			}
			if r.RTT.N > 0 {
				machineRTTs = append(machineRTTs, r.RTT)
				mr.RawRTT = append(mr.RawRTT, inst.Tracer.RTTs().Values()...)
			}
		}
		mr.RTT = exp.PoolSummaries(machineRTTs)
		fleetRTTs = append(fleetRTTs, machineRTTs...)

		out.Machines[mi] = mr
		out.Placed += len(mr.Results)
		out.QoSViolations += mr.QoSViolations
		out.TotalPowerWatts += mr.PowerWatts
	}
	out.RTT = exp.PoolSummaries(fleetRTTs)
	out.ExactRTT = exactPooledRTT([]*FleetResult{out})
	return out
}

// exactPooledRTT pools every machine's raw RTT observations across the
// given results into one sample and summarizes it exactly. Fed one
// result it describes a single execution; fed a trial's repetitions it
// is the cross-rep pooled distribution mergeFleet records.
func exactPooledRTT(frs []*FleetResult) stats.Summary {
	var pooled stats.Sample
	for _, fr := range frs {
		for _, m := range fr.Machines {
			pooled.AddAll(m.RawRTT)
		}
	}
	if pooled.N() == 0 {
		return stats.Summary{}
	}
	return pooled.Summarize()
}

// buildFleet constructs the placement-time fleet for a shape:
// heterogeneous when CoreClasses is set (classes cycle across
// machines), homogeneous at MachineCores (default: the paper testbed's
// 8) otherwise.
func buildFleet(id string, sh exp.FleetShape) *fleet.Fleet {
	machines := sh.Machines
	if machines < 1 {
		machines = 1
	}
	classes, err := fleet.ParseCoreClasses(sh.CoreClasses)
	if err != nil {
		panic(fmt.Sprintf("core: fleet trial %q: %v", id, err))
	}
	if len(classes) == 0 {
		cores := float64(sh.MachineCores)
		if cores <= 0 {
			cores = fleet.DefaultMachineCores
		}
		classes = []float64{cores}
	}
	return fleet.NewHetero(machines, classes)
}

// fleetPolicy resolves a placement-policy name, wiring the measured
// pair-interference table over the trial's workload set into the
// bin-packer.
func fleetPolicy(id, name string, suite []app.Profile) fleet.Placement {
	var it *fleet.Interference
	if name == fleet.PolicyBinPack {
		it = PairInterferenceAmong(suite)
	}
	pol, err := fleet.NewPolicy(name, it)
	if err != nil {
		panic(fmt.Sprintf("core: fleet trial %q: %v", id, err))
	}
	return pol
}

// resolveShapeProfiles resolves a shape's workload selection with an
// attributable panic on invalid specs (validateFleetShape catches them
// before trials reach the runner; this is the executor-side backstop).
func resolveShapeProfiles(id, spec string) []app.Profile {
	ps, err := app.Resolve(spec)
	if err != nil {
		panic(fmt.Sprintf("core: fleet trial %q: %v", id, err))
	}
	return ps
}

// ---------------------------------------------------------------------------
// Pair interference (placement input for the bin-packing policy)

// interferenceSeed and the short windows below fix the internal
// co-location measurement, so the table — and everything placed with it
// — is identical in every process regardless of caller configuration.
const interferenceSeed = 0xB1DC0DE

// interferenceCache memoizes measured tables per suite fingerprint
// (sorted profile names): the n(n+1)/2 pair measurement is expensive,
// and fleets over the same workload set must place identically. Entries
// hold a sync.Once so concurrent trials requesting the same fingerprint
// measure once while different fingerprints proceed independently.
type interferenceEntry struct {
	once  sync.Once
	table *fleet.Interference
}

var interferenceCache sync.Map // fingerprint string → *interferenceEntry

// suiteFingerprint canonicalizes a workload set for caching: the sorted
// profile names, joined. Order-independent — {STK,RE} and {RE,STK}
// measure the same table.
func suiteFingerprint(suite []app.Profile) string {
	names := make([]string, len(suite))
	for i, p := range suite {
		names[i] = p.Name
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// PairInterference measures the co-location penalty of every unordered
// pair of the paper's six-benchmark suite (6 solo + 21 pair trials) —
// the historical default table. See PairInterferenceAmong.
func PairInterference() *fleet.Interference {
	return PairInterferenceAmong(app.PaperSuite())
}

// PairInterferenceAmong measures the co-location penalty of every
// unordered pair of the given workload set (self-pairs included): the
// §5.3 experiment, reduced to one number per pair — the mean relative
// server-FPS loss of running paired vs solo. It runs n solo + n(n+1)/2
// pair trials with short fixed-seed windows, once per process per suite
// fingerprint (cached, like TrainedModels), and is the placement input
// for the profile-affinity bin-packing policy. Trial keys depend only
// on the profiles named, so a pair shared by two fingerprints measures
// the identical score in both tables.
func PairInterferenceAmong(suite []app.Profile) *fleet.Interference {
	e, _ := interferenceCache.LoadOrStore(suiteFingerprint(suite), &interferenceEntry{})
	entry := e.(*interferenceEntry)
	entry.once.Do(func() {
		cfg := ExperimentConfig{WarmupSeconds: 1, Seconds: 5, Seed: interferenceSeed, Parallel: 1}

		trials := make([]exp.Trial, 0, len(suite)+len(suite)*(len(suite)+1)/2)
		for _, p := range suite {
			trials = append(trials, characterizationTrial(p, 1, exp.DriverHuman, cfg))
		}
		type pair struct{ a, b int }
		var pairs []pair
		for i := range suite {
			for j := i; j < len(suite); j++ {
				pairs = append(pairs, pair{i, j})
				trials = append(trials, pairTrial(suite[i], suite[j], cfg))
			}
		}

		res := RunTrials(trials, cfg)
		solo := make(map[string]float64, len(suite))
		for i, p := range suite {
			solo[p.Name] = res[i][0].Results[0].ServerFPS
		}
		it := fleet.NewInterference()
		for pi, pr := range pairs {
			rs := res[len(suite)+pi][0].Results
			a, b := suite[pr.a].Name, suite[pr.b].Name
			loss := func(name string, got float64) float64 {
				if solo[name] <= 0 {
					return 0
				}
				l := (solo[name] - got) / solo[name]
				if l < 0 {
					return 0
				}
				return l
			}
			it.Set(a, b, (loss(a, rs[0].ServerFPS)+loss(b, rs[1].ServerFPS))/2)
		}
		entry.table = it
	})
	return entry.table
}

// ---------------------------------------------------------------------------
// Entry points

// fleetTrial builds the runner trial for a fleet shape with the
// config's windows and pinned seed.
func fleetTrial(shape exp.FleetShape, cfg ExperimentConfig) exp.Trial {
	t := exp.FleetTrial(shape)
	t.Warmup, t.Measure, t.Seed = cfg.WarmupSeconds, cfg.Seconds, cfg.Seed
	pol := shape.Policy
	if pol == "" {
		pol = fleet.PolicyRoundRobin
	}
	mix := shape.Mix
	if mix == "" {
		mix = string(fleet.MixSuite)
	}
	t.ID = fmt.Sprintf("fleet/%s/%s/m%d×r%d", pol, mix, shape.Machines, shape.Requests)
	if shape.Profiles != "" {
		t.ID += "/" + shape.Profiles
	}
	return t
}

// mergeFleet folds a fleet trial's repetitions: fleet-scope scalars
// average and RTT distributions pool across seeds. Per-machine detail
// comes from the first repetition — randomized mixes place differently
// under different derived seeds, so machines do not align across reps —
// and FleetResult.RepsMerged marks that provenance. The per-machine and
// request slices are deep-copied: the merged value used to alias rep
// 0's slices, so mutating one silently corrupted the other.
func mergeFleet(reps []TrialResult) FleetResult {
	out := *reps[0].Fleet
	out.RepsMerged = len(reps)
	out.Requests = append([]string(nil), out.Requests...)
	out.Machines = append([]MachineResult(nil), out.Machines...)
	for i := range out.Machines {
		out.Machines[i].Results = append([]InstanceResult(nil), out.Machines[i].Results...)
		out.Machines[i].RawRTT = append([]float64(nil), out.Machines[i].RawRTT...)
	}
	if len(reps) == 1 {
		return out
	}
	inv := 1 / float64(len(reps))
	power, placed, rejected, qos := 0.0, 0.0, 0.0, 0.0
	rtts := make([]stats.Summary, 0, len(reps))
	raws := make([]*FleetResult, 0, len(reps))
	for _, r := range reps {
		fr := r.Fleet
		power += fr.TotalPowerWatts * inv
		placed += float64(fr.Placed) * inv
		rejected += float64(fr.Rejected) * inv
		qos += float64(fr.QoSViolations) * inv
		if fr.RTT.N > 0 {
			rtts = append(rtts, fr.RTT)
		}
		raws = append(raws, fr)
	}
	out.TotalPowerWatts = power
	out.Placed = int(placed + 0.5)
	out.Rejected = int(rejected + 0.5)
	out.QoSViolations = int(qos + 0.5)
	out.RTT = exp.PoolSummaries(rtts)
	// Unlike RTT, which averages each rep's (already averaged) quantile
	// vector, ExactRTT re-summarizes the union of every rep's raw
	// observations — the quantiles of the pooled distribution itself.
	out.ExactRTT = exactPooledRTT(raws)
	return out
}

// validateFleetShape rejects unknown policy or mix names — and, for
// churn shapes, invalid churn parameters — before any trial reaches
// the parallel runner: a worker panic mid-grid is unattributable, a
// caller-goroutine panic with the valid names is actionable. (The
// experiment entry points have no error returns — like SuiteByName,
// invalid fixed vocabulary panics by contract.)
func validateFleetShape(shape exp.FleetShape) {
	if _, err := fleet.NewPolicy(shape.Policy, nil); err != nil {
		panic("core: " + err.Error())
	}
	if _, err := fleet.RequestStream(fleet.Mix(shape.Mix), 1, 1); err != nil {
		panic("core: " + err.Error())
	}
	if _, err := fleet.ParseCoreClasses(shape.CoreClasses); err != nil {
		panic("core: " + err.Error())
	}
	if _, err := app.Resolve(shape.Profiles); err != nil {
		panic("core: " + err.Error())
	}
	if shape.Churn() {
		if err := fleet.ValidateChurnParams(shape.ArrivalRate, shape.MeanSessionEpochs, shape.Epochs); err != nil {
			panic("core: " + err.Error())
		}
		if err := fleet.ValidateSchedule(shape.RateSchedule, shape.ArrivalRate, shape.PeakRate, shape.PeriodEpochs); err != nil {
			panic("core: " + err.Error())
		}
	} else if shape.Requests < 1 {
		panic(fmt.Sprintf("core: fleet shape needs Requests >= 1, got %d (churn shapes set Epochs instead)", shape.Requests))
	}
	if err := fleet.ValidateFaultParams(shape.MTBFEpochs, shape.MTTREpochs); err != nil {
		panic("core: " + err.Error())
	}
	if (shape.Faulty() || shape.RetryAttempts > 0 || shape.Degrade) && !shape.Churn() {
		panic(fmt.Sprintf("core: fault injection, failover and degradation need a churn shape (Epochs >= 1, got %d) — one-shot admission has no epochs to crash, retry or recover in", shape.Epochs))
	}
	if shape.RetryAttempts < 0 || shape.RetryBackoffEpochs < 0 {
		panic(fmt.Sprintf("core: retry attempts and backoff must be >= 0, got %d, %d", shape.RetryAttempts, shape.RetryBackoffEpochs))
	}
	if (shape.SurrogateTail || shape.OccupancyDetail) && !shape.Churn() {
		panic(fmt.Sprintf("core: fidelity tiers and occupancy detail need a churn shape (Epochs >= 1, got %d) — one-shot admission has no epochs to tier or record", shape.Epochs))
	}
	if (shape.RateSchedule != "" || shape.RollupOnly) && !shape.Churn() {
		panic(fmt.Sprintf("core: arrival-rate schedules and rollup-only results need a churn shape (Epochs >= 1, got %d) — one-shot admission has no epochs to schedule or roll up", shape.Epochs))
	}
	if shape.FidelitySampled < 0 {
		panic(fmt.Sprintf("core: FidelitySampled must be >= 0, got %d", shape.FidelitySampled))
	}
	if shape.FidelitySampled > 0 && !shape.SurrogateTail {
		panic(fmt.Sprintf("core: FidelitySampled (%d) without SurrogateTail does nothing — full fidelity everywhere is the default; set SurrogateTail to enable the tier split", shape.FidelitySampled))
	}
}

// RunFleetConsolidation places the shape's request stream across its
// machines with the shape's policy and runs every machine, reporting
// per-machine RTT distributions, QoS-violation counts and fleet-wide
// power. With cfg.Reps > 1 fleet-scope numbers aggregate across derived
// seeds (see mergeFleet). Unknown policy or mix names panic immediately
// (the vocabulary is fixed — see fleet.PolicyNames and fleet.Mixes).
func RunFleetConsolidation(shape exp.FleetShape, cfg ExperimentConfig) FleetResult {
	if shape.Churn() {
		panic(fmt.Sprintf("core: RunFleetConsolidation needs a one-shot shape (Epochs == 0, got %d); use RunFleetChurn for churn", shape.Epochs))
	}
	validateFleetShape(shape)
	return mergeFleet(RunTrials([]exp.Trial{fleetTrial(shape, cfg)}, cfg)[0])
}

// RunFleetComparison runs the shape under every placement policy as one
// batch on the parallel runner and returns the results in
// fleet.PolicyNames order — the "which policy wins" table. Every policy
// consolidates the identical arrival stream (it is derived from the
// config seed and the stream parameters only), so rankings reflect
// placement, not stream luck. Unknown mix names panic immediately.
func RunFleetComparison(shape exp.FleetShape, cfg ExperimentConfig) []FleetResult {
	if shape.Churn() {
		panic(fmt.Sprintf("core: RunFleetComparison needs a one-shot shape (Epochs == 0, got %d); use RunChurnComparison for churn", shape.Epochs))
	}
	shape.Policy = ""
	validateFleetShape(shape)
	trials := fleetComparisonTrials(shape, cfg)
	all := RunTrials(trials, cfg)
	out := make([]FleetResult, len(trials))
	for i, reps := range all {
		out[i] = mergeFleet(reps)
	}
	return out
}

// fleetComparisonTrials is the comparison's trial batch — one trial per
// placement policy in fleet.PolicyNames order, all consolidating the
// identical arrival stream. Shared with the benchmark service's spec
// lowering so a served "fleet" job runs exactly the CLI's batch.
func fleetComparisonTrials(shape exp.FleetShape, cfg ExperimentConfig) []exp.Trial {
	names := fleet.PolicyNames()
	trials := make([]exp.Trial, len(names))
	for i, name := range names {
		s := shape
		s.Policy = name
		trials[i] = fleetTrial(s, cfg)
	}
	return trials
}

// FleetComparisonTable renders policy-comparison rows: placement and
// QoS outcomes plus power, one row per policy.
func FleetComparisonTable(rs []FleetResult) string {
	t := stats.NewTable("policy", "placed", "rejected", "QoS-viol", "RTT mean", "RTT p99", "fleet W", "W/inst")
	for _, r := range rs {
		perInst := 0.0
		if r.Placed > 0 {
			perInst = r.TotalPowerWatts / float64(r.Placed)
		}
		t.Row(r.Policy,
			fmt.Sprintf("%d", r.Placed),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%d", r.QoSViolations),
			fmt.Sprintf("%.1f ms", r.RTT.Mean),
			fmt.Sprintf("%.1f ms", r.RTT.P99),
			fmt.Sprintf("%.1f", r.TotalPowerWatts),
			fmt.Sprintf("%.1f", perInst))
	}
	return t.String()
}
