package core

import (
	"fmt"
	"sort"
	"strings"

	"pictor/internal/app"
	"pictor/internal/baselines"
	"pictor/internal/sim"
	"pictor/internal/stats"
	"pictor/internal/trace"
	"pictor/internal/vgl"
)

// ExperimentConfig bounds experiment cost. The paper runs 15-minute
// sessions; the simulator reaches steady state much sooner, so the
// defaults are shorter. Raise Seconds for tighter confidence.
type ExperimentConfig struct {
	WarmupSeconds  float64
	Seconds        float64
	Seed           int64
	MaxInstances   int // Figures 10–17 sweep 1..MaxInstances
	TrainedSeconds float64
}

// DefaultExperimentConfig is used by the benchmarks and the CLI.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{WarmupSeconds: 3, Seconds: 60, Seed: 1, MaxInstances: 4}
}

// QuickExperimentConfig is for tests.
func QuickExperimentConfig() ExperimentConfig {
	return ExperimentConfig{WarmupSeconds: 2, Seconds: 12, Seed: 1, MaxInstances: 2}
}

// RunCharacterization runs n identical instances of one benchmark and
// returns per-instance results (the §5.1/§5.2 experiments).
func RunCharacterization(prof app.Profile, n int, driver DriverFactory, cfg ExperimentConfig) []InstanceResult {
	cl := NewCluster(Options{Seed: cfg.Seed})
	for i := 0; i < n; i++ {
		cl.AddInstance(NewInstanceConfig(prof, driver))
	}
	cl.Run(sim.DurationOfSeconds(cfg.WarmupSeconds), sim.DurationOfSeconds(cfg.Seconds))
	out := make([]InstanceResult, n)
	for i, inst := range cl.Instances {
		out[i] = inst.Result()
	}
	return out
}

// RunCharacterizationWithPower is RunCharacterization plus wall power.
func RunCharacterizationWithPower(prof app.Profile, n int, driver DriverFactory, cfg ExperimentConfig) ([]InstanceResult, float64) {
	cl := NewCluster(Options{Seed: cfg.Seed})
	for i := 0; i < n; i++ {
		cl.AddInstance(NewInstanceConfig(prof, driver))
	}
	cl.Run(sim.DurationOfSeconds(cfg.WarmupSeconds), sim.DurationOfSeconds(cfg.Seconds))
	out := make([]InstanceResult, n)
	for i, inst := range cl.Instances {
		out[i] = inst.Result()
	}
	return out, cl.TotalPowerWatts()
}

// RunPair co-locates two (possibly different) benchmarks (§5.3).
func RunPair(a, b app.Profile, cfg ExperimentConfig) (ra, rb InstanceResult) {
	cl := NewCluster(Options{Seed: cfg.Seed})
	cl.AddInstance(NewInstanceConfig(a, HumanDriver()))
	cl.AddInstance(NewInstanceConfig(b, HumanDriver()))
	cl.Run(sim.DurationOfSeconds(cfg.WarmupSeconds), sim.DurationOfSeconds(cfg.Seconds))
	return cl.Instances[0].Result(), cl.Instances[1].Result()
}

// MethodologyResult is one driver's RTT outcome for Figure 6 / Table 3.
type MethodologyResult struct {
	Method string
	RTT    stats.Summary
	// ErrVsHuman is the |mean error| percentage against the human run.
	ErrVsHuman float64
}

// RunMethodologyComparison reproduces Figure 6 and Table 3 for one
// benchmark: RTT distributions under the human reference, Pictor's IC,
// DeskBench replay, the Chen et al. stage-sum estimate, and
// Slow-Motion, plus each methodology's mean-RTT error vs the human.
func RunMethodologyComparison(prof app.Profile, cfg ExperimentConfig) []MethodologyResult {
	models, rec, gap := TrainedModels(prof)

	runWith := func(driver DriverFactory, mode app.Mode) (*Cluster, InstanceResult) {
		cl := NewCluster(Options{Seed: cfg.Seed})
		ic := NewInstanceConfig(prof, driver)
		ic.Mode = mode
		cl.AddInstance(ic)
		cl.Run(sim.DurationOfSeconds(cfg.WarmupSeconds), sim.DurationOfSeconds(cfg.Seconds))
		return cl, cl.Instances[0].Result()
	}

	humanCl, human := runWith(HumanDriver(), app.ModeNormal)
	_, icRes := runWith(ICDriver(models), app.ModeNormal)
	_, dbRes := runWith(DeskBenchDriver(rec, gap, 0), app.ModeNormal)
	_, smRes := runWith(SlowMotionDriver(models), app.ModeSlowMotion)

	// Chen et al. is an estimator over the human run's stage records.
	chen := baselines.ChenEstimate(humanCl.Instances[0].Tracer, prof, sim.NewRNG(cfg.Seed+99))

	errOf := func(m float64) float64 { return stats.PercentError(m, human.RTT.Mean) }
	return []MethodologyResult{
		{Method: "Human", RTT: human.RTT, ErrVsHuman: 0},
		{Method: "Pictor-IC", RTT: icRes.RTT, ErrVsHuman: errOf(icRes.RTT.Mean)},
		{Method: "DeskBench", RTT: dbRes.RTT, ErrVsHuman: errOf(dbRes.RTT.Mean)},
		{Method: "Chen", RTT: chen.Summarize(), ErrVsHuman: errOf(chen.Mean())},
		{Method: "SlowMotion", RTT: smRes.RTT, ErrVsHuman: errOf(smRes.RTT.Mean)},
	}
}

// OverheadResult is the §4 framework-overhead experiment for one
// benchmark.
type OverheadResult struct {
	Benchmark     string
	FPSNoTrace    float64
	FPSTraced     float64
	FPSTracedSB   float64 // single-buffered GPU queries
	OverheadPct   float64 // traced vs untraced server-FPS loss
	OverheadSBPct float64
}

// RunOverhead measures the analysis framework's cost: native TurboVNC
// (tracing off) vs traced, and traced with single-buffered GPU queries.
func RunOverhead(prof app.Profile, cfg ExperimentConfig) OverheadResult {
	models, _, _ := TrainedModels(prof)
	run := func(tracing, doubleBuf bool) float64 {
		cl := NewCluster(Options{Seed: cfg.Seed})
		icfg := NewInstanceConfig(prof, ICDriver(models))
		icfg.Tracing = tracing
		icfg.Interposer.QueryDoubleBuffer = doubleBuf
		cl.AddInstance(icfg)
		cl.Run(sim.DurationOfSeconds(cfg.WarmupSeconds), sim.DurationOfSeconds(cfg.Seconds))
		return cl.Instances[0].Tracer.ServerFPS()
	}
	native := run(false, true)
	traced := run(true, true)
	single := run(true, false)
	overhead := func(fps float64) float64 {
		if native == 0 {
			return 0
		}
		return (native - fps) / native * 100
	}
	return OverheadResult{
		Benchmark:     prof.Name,
		FPSNoTrace:    native,
		FPSTraced:     traced,
		FPSTracedSB:   single,
		OverheadPct:   overhead(traced),
		OverheadSBPct: overhead(single),
	}
}

// OptimizationResult is the Figure 22 outcome for one benchmark.
type OptimizationResult struct {
	Benchmark       string
	BaseServerFPS   float64
	OptServerFPS    float64
	BaseClientFPS   float64
	OptClientFPS    float64
	BaseRTT         float64
	OptRTT          float64
	ServerFPSGain   float64 // %
	ClientFPSGain   float64 // %
	RTTReduction    float64 // %, positive = faster
	BaseFCMs        float64
	OptFCMs         float64
}

// RunOptimization reproduces Figure 22 for one benchmark: baseline vs
// both §6 optimizations.
func RunOptimization(prof app.Profile, cfg ExperimentConfig) OptimizationResult {
	run := func(opts vgl.Options) InstanceResult {
		cl := NewCluster(Options{Seed: cfg.Seed})
		icfg := NewInstanceConfig(prof, HumanDriver())
		icfg.Interposer = opts
		cl.AddInstance(icfg)
		cl.Run(sim.DurationOfSeconds(cfg.WarmupSeconds), sim.DurationOfSeconds(cfg.Seconds))
		return cl.Instances[0].Result()
	}
	base := run(vgl.DefaultOptions())
	opt := run(vgl.Optimized())
	return OptimizationResult{
		Benchmark:     prof.Name,
		BaseServerFPS: base.ServerFPS, OptServerFPS: opt.ServerFPS,
		BaseClientFPS: base.ClientFPS, OptClientFPS: opt.ClientFPS,
		BaseRTT: base.RTT.Mean, OptRTT: opt.RTT.Mean,
		ServerFPSGain: stats.PercentChange(opt.ServerFPS, base.ServerFPS),
		ClientFPSGain: stats.PercentChange(opt.ClientFPS, base.ClientFPS),
		RTTReduction:  -stats.PercentChange(opt.RTT.Mean, base.RTT.Mean),
		BaseFCMs:      base.Stages[trace.StageFC].Mean,
		OptFCMs:       opt.Stages[trace.StageFC].Mean,
	}
}

// ContainerResult is the Figure 20 outcome for one benchmark.
type ContainerResult struct {
	Benchmark      string
	BareServerFPS  float64
	ContServerFPS  float64
	BareRTT        float64
	ContRTT        float64
	FPSOverheadPct float64 // positive = container slower
	RTTOverheadPct float64
	RDOverheadPct  float64
}

// RunContainerOverhead reproduces Figure 20 for one benchmark.
func RunContainerOverhead(prof app.Profile, cfg ExperimentConfig) ContainerResult {
	run := func(containerized bool) InstanceResult {
		cl := NewCluster(Options{Seed: cfg.Seed})
		icfg := NewInstanceConfig(prof, HumanDriver())
		icfg.Containerized = containerized
		icfg.Container = dockerOverheads()
		cl.AddInstance(icfg)
		cl.Run(sim.DurationOfSeconds(cfg.WarmupSeconds), sim.DurationOfSeconds(cfg.Seconds))
		return cl.Instances[0].Result()
	}
	bare := run(false)
	cont := run(true)
	return ContainerResult{
		Benchmark:     prof.Name,
		BareServerFPS: bare.ServerFPS, ContServerFPS: cont.ServerFPS,
		BareRTT: bare.RTT.Mean, ContRTT: cont.RTT.Mean,
		FPSOverheadPct: -stats.PercentChange(cont.ServerFPS, bare.ServerFPS),
		RTTOverheadPct: stats.PercentChange(cont.RTT.Mean, bare.RTT.Mean),
		RDOverheadPct:  stats.PercentChange(cont.Stages[trace.StageRD].Mean, bare.Stages[trace.StageRD].Mean),
	}
}

// FormatTable renders rows with a header as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i < len(width) {
				fmt.Fprintf(&b, "%-*s  ", width[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// SortedPairNames lists the 15 unordered benchmark pairs of Figure 18.
func SortedPairNames() [][2]string {
	suite := app.Suite()
	var out [][2]string
	for i := 0; i < len(suite); i++ {
		for j := i + 1; j < len(suite); j++ {
			out = append(out, [2]string{suite[i].Name, suite[j].Name})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}
