package core

import (
	"fmt"
	"sort"

	"pictor/internal/app"
	"pictor/internal/baselines"
	"pictor/internal/exp"
	"pictor/internal/sim"
	"pictor/internal/stats"
	"pictor/internal/trace"
	"pictor/internal/vgl"
)

// ExperimentConfig bounds experiment cost. The paper runs 15-minute
// sessions; the simulator reaches steady state much sooner, so the
// defaults are shorter. Raise Seconds for tighter confidence, Reps for
// confidence intervals across independent seeds, and Parallel to shard
// trials across cores.
type ExperimentConfig struct {
	WarmupSeconds  float64
	Seconds        float64
	Seed           int64
	MaxInstances   int // Figures 10–17 sweep 1..MaxInstances
	TrainedSeconds float64
	// Parallel is the experiment runner's worker count; <= 0 uses
	// every available core (runtime.GOMAXPROCS).
	Parallel int
	// Reps repeats every trial with independently derived seeds and
	// aggregates; <= 0 means a single run.
	Reps int
	// Profiles selects the workload set suite-scope experiments sweep:
	// a comma-separated list of registered profile names ("STK,CAD,VV"),
	// "all" for every registered profile, or "" for the paper's Table-2
	// six (see app.Resolve). Per-profile entry points ignore it — they
	// take a Profile explicitly.
	Profiles string
}

// suite resolves the config's workload selection. Like the rest of the
// experiment vocabulary, an invalid selection panics (validate with
// app.Resolve at the boundary — the CLI does).
func (cfg ExperimentConfig) suite() []app.Profile {
	ps, err := app.Resolve(cfg.Profiles)
	if err != nil {
		panic("core: " + err.Error())
	}
	return ps
}

// DefaultExperimentConfig is used by the benchmarks and the CLI.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{WarmupSeconds: 3, Seconds: 60, Seed: 1, MaxInstances: 4}
}

// QuickExperimentConfig is for tests.
func QuickExperimentConfig() ExperimentConfig {
	return ExperimentConfig{WarmupSeconds: 2, Seconds: 12, Seed: 1, MaxInstances: 2}
}

// runOptions lowers the config onto the experiment runner.
func (cfg ExperimentConfig) runOptions() exp.RunOptions {
	return exp.RunOptions{Parallel: cfg.Parallel, Reps: cfg.Reps, BaseSeed: cfg.Seed}
}

// trial builds a Trial from instance specs with the config's windows
// and pinned seed (so single-rep runs reproduce the legacy sequential
// numbers exactly).
func (cfg ExperimentConfig) trial(specs ...exp.InstanceSpec) exp.Trial {
	return exp.Trial{
		Instances: specs,
		Warmup:    cfg.WarmupSeconds,
		Measure:   cfg.Seconds,
		Seed:      cfg.Seed,
	}
}

// RunTrials executes a set of trials on the shared runner. Results are
// indexed [trial][rep]. A trial with no measurement window (the
// constructors leave Warmup/Measure zero) inherits the config's
// windows; a zero-measure trial would otherwise silently report
// all-zero results.
func RunTrials(trials []exp.Trial, cfg ExperimentConfig) [][]TrialResult {
	out, errs := RunTrialsChecked(trials, cfg)
	if len(errs) > 0 {
		// Fail with the unit's identity (trial ID, full Key(), rep)
		// rather than the raw panic value — a poisoned trial in a large
		// sweep must name itself.
		panic(errs[0])
	}
	return out
}

// RunTrialsChecked is RunTrials with per-unit panic isolation: a
// panicking trial execution fails only its own (trial, repetition) unit
// — reported as an exp.PanicError carrying the trial's ID, Key() and
// repetition — while every other unit's result lands intact. Errors
// come back sorted by (trial, rep).
func RunTrialsChecked(trials []exp.Trial, cfg ExperimentConfig) ([][]TrialResult, []*exp.PanicError) {
	defaulted := make([]exp.Trial, len(trials))
	copy(defaulted, trials)
	for i := range defaulted {
		if defaulted[i].Measure <= 0 {
			defaulted[i].Measure = cfg.Seconds
			if defaulted[i].Warmup <= 0 {
				defaulted[i].Warmup = cfg.WarmupSeconds
			}
		}
	}
	return exp.RunChecked(defaulted, ExecuteTrial, cfg.runOptions())
}

// ---------------------------------------------------------------------------
// Repetition merging

// mergeInstances folds a trial's repetitions into per-instance results:
// scalar measurements average across seeds, distribution summaries pool.
// A single repetition passes through untouched.
func mergeInstances(reps []TrialResult) []InstanceResult {
	if len(reps) == 1 {
		return reps[0].Results
	}
	n := len(reps[0].Results)
	out := make([]InstanceResult, n)
	for i := 0; i < n; i++ {
		mean := func(f func(InstanceResult) float64) float64 {
			return exp.MeanOf(reps, func(r TrialResult) float64 { return f(r.Results[i]) })
		}
		r0 := reps[0].Results[i]
		m := InstanceResult{
			Name:      r0.Name,
			Benchmark: r0.Benchmark,

			ServerFPS: mean(func(r InstanceResult) float64 { return r.ServerFPS }),
			ClientFPS: mean(func(r InstanceResult) float64 { return r.ClientFPS }),
			Dropped:   int64(mean(func(r InstanceResult) float64 { return float64(r.Dropped) })),

			Stages: make(map[trace.Stage]stats.Summary),

			AppCPUUtil: mean(func(r InstanceResult) float64 { return r.AppCPUUtil }),
			VNCCPUUtil: mean(func(r InstanceResult) float64 { return r.VNCCPUUtil }),
			GPUUtil:    mean(func(r InstanceResult) float64 { return r.GPUUtil }),

			L3MissRate:  mean(func(r InstanceResult) float64 { return r.L3MissRate }),
			GPUL2Miss:   mean(func(r InstanceResult) float64 { return r.GPUL2Miss }),
			GPUTexMiss:  mean(func(r InstanceResult) float64 { return r.GPUTexMiss }),
			FootprintMB: r0.FootprintMB,
			GPUMemoryMB: r0.GPUMemoryMB,

			NetUpMbps:   mean(func(r InstanceResult) float64 { return r.NetUpMbps }),
			NetDownMbps: mean(func(r InstanceResult) float64 { return r.NetDownMbps }),
			PCIeToGPU:   mean(func(r InstanceResult) float64 { return r.PCIeToGPU }),
			PCIeFromGPU: mean(func(r InstanceResult) float64 { return r.PCIeFromGPU }),

			AttrCalls: int64(mean(func(r InstanceResult) float64 { return float64(r.AttrCalls) })),
			Copies:    int64(mean(func(r InstanceResult) float64 { return float64(r.Copies) })),
		}
		m.CPUTopDown = TopDown{
			Retiring: mean(func(r InstanceResult) float64 { return r.CPUTopDown.Retiring }),
			FrontEnd: mean(func(r InstanceResult) float64 { return r.CPUTopDown.FrontEnd }),
			BadSpec:  mean(func(r InstanceResult) float64 { return r.CPUTopDown.BadSpec }),
			BackEnd:  mean(func(r InstanceResult) float64 { return r.CPUTopDown.BackEnd }),
			IPC:      mean(func(r InstanceResult) float64 { return r.CPUTopDown.IPC }),
		}
		rtts := make([]stats.Summary, len(reps))
		for ri, r := range reps {
			rtts[ri] = r.Results[i].RTT
		}
		m.RTT = exp.PoolSummaries(rtts)
		for _, s := range trace.Stages {
			ss := make([]stats.Summary, len(reps))
			for ri, r := range reps {
				ss[ri] = r.Results[i].Stages[s]
			}
			m.Stages[s] = exp.PoolSummaries(ss)
		}
		out[i] = m
	}
	return out
}

// ---------------------------------------------------------------------------
// Characterization (§5.1–5.2)

func characterizationTrial(prof app.Profile, n int, driver exp.DriverKind, cfg ExperimentConfig) exp.Trial {
	t := exp.Homogeneous(prof, driver, n)
	t.Warmup, t.Measure, t.Seed = cfg.WarmupSeconds, cfg.Seconds, cfg.Seed
	t.ID = fmt.Sprintf("char/%s/%s×%d", prof.Name, driver, n)
	return t
}

// RunCharacterization runs n identical instances of one benchmark and
// returns per-instance results (the §5.1/§5.2 experiments).
func RunCharacterization(prof app.Profile, n int, driver exp.DriverKind, cfg ExperimentConfig) []InstanceResult {
	rs, _ := RunCharacterizationWithPower(prof, n, driver, cfg)
	return rs
}

// RunCharacterizationWithPower is RunCharacterization plus wall power.
func RunCharacterizationWithPower(prof app.Profile, n int, driver exp.DriverKind, cfg ExperimentConfig) ([]InstanceResult, float64) {
	reps := RunTrials([]exp.Trial{characterizationTrial(prof, n, driver, cfg)}, cfg)[0]
	watts := exp.MeanOf(reps, func(r TrialResult) float64 { return r.PowerWatts })
	return mergeInstances(reps), watts
}

// RunCharacterizationSweep runs the full 1..maxN co-location sweep
// (Figures 10–17) as one batch of independent trials, so the runner
// executes every count concurrently instead of one call per count.
// Entry n-1 holds the merged per-instance results of n co-located
// copies; the second return is wall power per count.
func RunCharacterizationSweep(prof app.Profile, maxN int, driver exp.DriverKind, cfg ExperimentConfig) ([][]InstanceResult, []float64) {
	if maxN < 1 {
		maxN = 1
	}
	trials := make([]exp.Trial, maxN)
	for n := 1; n <= maxN; n++ {
		trials[n-1] = characterizationTrial(prof, n, driver, cfg)
	}
	res := RunTrials(trials, cfg)
	out := make([][]InstanceResult, maxN)
	watts := make([]float64, maxN)
	for i, reps := range res {
		out[i] = mergeInstances(reps)
		watts[i] = exp.MeanOf(reps, func(r TrialResult) float64 { return r.PowerWatts })
	}
	return out, watts
}

// ---------------------------------------------------------------------------
// Co-location pairs (§5.3)

func pairTrial(a, b app.Profile, cfg ExperimentConfig) exp.Trial {
	t := exp.Pair(a, b)
	t.Warmup, t.Measure, t.Seed = cfg.WarmupSeconds, cfg.Seconds, cfg.Seed
	t.ID = fmt.Sprintf("pair/%s+%s", a.Name, b.Name)
	return t
}

// RunPair co-locates two (possibly different) benchmarks (§5.3).
func RunPair(a, b app.Profile, cfg ExperimentConfig) (ra, rb InstanceResult) {
	merged := mergeInstances(RunTrials([]exp.Trial{pairTrial(a, b, cfg)}, cfg)[0])
	return merged[0], merged[1]
}

// ---------------------------------------------------------------------------
// Methodology comparison (Figure 6 / Table 3)

// MethodologyResult is one driver's RTT outcome for Figure 6 / Table 3.
type MethodologyResult struct {
	Method string
	RTT    stats.Summary
	// ErrVsHuman is the |mean error| percentage against the human run.
	ErrVsHuman float64
}

func methodologyTrials(prof app.Profile, cfg ExperimentConfig) []exp.Trial {
	mk := func(id string, spec exp.InstanceSpec) exp.Trial {
		t := cfg.trial(spec)
		t.ID = "method/" + prof.Name + "/" + id
		return t
	}
	human := mk("human", exp.InstanceSpec{Profile: prof, Driver: exp.DriverHuman})
	// The Chen et al. estimator re-reads the human run's raw trace, so
	// this one trial must keep its executed system.
	human.KeepSystem = true
	return []exp.Trial{
		human,
		mk("ic", exp.InstanceSpec{Profile: prof, Driver: exp.DriverIC}),
		mk("deskbench", exp.InstanceSpec{Profile: prof, Driver: exp.DriverDeskBench}),
		mk("slowmotion", exp.InstanceSpec{Profile: prof, Driver: exp.DriverSlowMotion, Mode: app.ModeSlowMotion}),
	}
}

// finishMethodology turns the four executed trials (human, IC,
// DeskBench, Slow-Motion) into Figure-6/Table-3 rows. The Chen et al.
// estimator is not a fifth trial: it re-reads each repetition's human
// trace, which is why TrialResult keeps the cluster.
func finishMethodology(prof app.Profile, res [][]TrialResult) []MethodologyResult {
	nrep := len(res[0])
	perRep := make([][]MethodologyResult, nrep)
	for r := 0; r < nrep; r++ {
		human := res[0][r].Results[0]
		icRes := res[1][r].Results[0]
		dbRes := res[2][r].Results[0]
		smRes := res[3][r].Results[0]
		humanTrial := res[0][r]
		chen := baselines.ChenEstimate(humanTrial.Cluster.Instances[0].Tracer, prof, sim.NewRNG(humanTrial.Seed+99))

		errOf := func(m float64) float64 { return stats.PercentError(m, human.RTT.Mean) }
		perRep[r] = []MethodologyResult{
			{Method: "Human", RTT: human.RTT, ErrVsHuman: 0},
			{Method: "Pictor-IC", RTT: icRes.RTT, ErrVsHuman: errOf(icRes.RTT.Mean)},
			{Method: "DeskBench", RTT: dbRes.RTT, ErrVsHuman: errOf(dbRes.RTT.Mean)},
			{Method: "Chen", RTT: chen.Summarize(), ErrVsHuman: errOf(chen.Mean())},
			{Method: "SlowMotion", RTT: smRes.RTT, ErrVsHuman: errOf(smRes.RTT.Mean)},
		}
	}
	if nrep == 1 {
		return perRep[0]
	}
	out := make([]MethodologyResult, len(perRep[0]))
	for m := range out {
		rtts := make([]stats.Summary, nrep)
		var errSum float64
		for r := 0; r < nrep; r++ {
			rtts[r] = perRep[r][m].RTT
			errSum += perRep[r][m].ErrVsHuman
		}
		out[m] = MethodologyResult{
			Method:     perRep[0][m].Method,
			RTT:        exp.PoolSummaries(rtts),
			ErrVsHuman: errSum / float64(nrep),
		}
	}
	return out
}

// RunMethodologyComparison reproduces Figure 6 and Table 3 for one
// benchmark: RTT distributions under the human reference, Pictor's IC,
// DeskBench replay, the Chen et al. stage-sum estimate, and
// Slow-Motion, plus each methodology's mean-RTT error vs the human.
func RunMethodologyComparison(prof app.Profile, cfg ExperimentConfig) []MethodologyResult {
	return finishMethodology(prof, RunTrials(methodologyTrials(prof, cfg), cfg))
}

// ---------------------------------------------------------------------------
// Analysis-framework overhead (§4)

// OverheadResult is the §4 framework-overhead experiment for one
// benchmark.
type OverheadResult struct {
	Benchmark     string
	FPSNoTrace    float64
	FPSTraced     float64
	FPSTracedSB   float64 // single-buffered GPU queries
	OverheadPct   float64 // traced vs untraced server-FPS loss
	OverheadSBPct float64
}

func overheadTrials(prof app.Profile, cfg ExperimentConfig) []exp.Trial {
	mk := func(id string, tracingOff, doubleBuf bool) exp.Trial {
		ip := vgl.DefaultOptions()
		ip.QueryDoubleBuffer = doubleBuf
		t := cfg.trial(exp.InstanceSpec{
			Profile:    prof,
			Driver:     exp.DriverIC,
			TracingOff: tracingOff,
			Interposer: ip,
		})
		t.ID = "overhead/" + prof.Name + "/" + id
		return t
	}
	return []exp.Trial{
		mk("native", true, true),
		mk("traced", false, true),
		mk("traced-sb", false, false),
	}
}

func finishOverhead(prof app.Profile, res [][]TrialResult) OverheadResult {
	fps := func(reps []TrialResult) float64 {
		return exp.MeanOf(reps, func(r TrialResult) float64 { return r.Results[0].ServerFPS })
	}
	native, traced, single := fps(res[0]), fps(res[1]), fps(res[2])
	overhead := func(v float64) float64 {
		if native == 0 {
			return 0
		}
		return (native - v) / native * 100
	}
	return OverheadResult{
		Benchmark:     prof.Name,
		FPSNoTrace:    native,
		FPSTraced:     traced,
		FPSTracedSB:   single,
		OverheadPct:   overhead(traced),
		OverheadSBPct: overhead(single),
	}
}

// RunOverhead measures the analysis framework's cost: native TurboVNC
// (tracing off) vs traced, and traced with single-buffered GPU queries.
func RunOverhead(prof app.Profile, cfg ExperimentConfig) OverheadResult {
	return finishOverhead(prof, RunTrials(overheadTrials(prof, cfg), cfg))
}

// ---------------------------------------------------------------------------
// Frame-copy optimizations (Figure 22)

// OptimizationResult is the Figure 22 outcome for one benchmark.
type OptimizationResult struct {
	Benchmark     string
	BaseServerFPS float64
	OptServerFPS  float64
	BaseClientFPS float64
	OptClientFPS  float64
	BaseRTT       float64
	OptRTT        float64
	ServerFPSGain float64 // %
	ClientFPSGain float64 // %
	RTTReduction  float64 // %, positive = faster
	BaseFCMs      float64
	OptFCMs       float64
}

func optimizationTrials(prof app.Profile, cfg ExperimentConfig) []exp.Trial {
	mk := func(id string, opts vgl.Options) exp.Trial {
		t := cfg.trial(exp.InstanceSpec{Profile: prof, Driver: exp.DriverHuman, Interposer: opts})
		t.ID = "opt/" + prof.Name + "/" + id
		return t
	}
	return []exp.Trial{
		mk("base", vgl.DefaultOptions()),
		mk("optimized", vgl.Optimized()),
	}
}

func finishOptimization(prof app.Profile, res [][]TrialResult) OptimizationResult {
	base := mergeInstances(res[0])[0]
	opt := mergeInstances(res[1])[0]
	return OptimizationResult{
		Benchmark:     prof.Name,
		BaseServerFPS: base.ServerFPS, OptServerFPS: opt.ServerFPS,
		BaseClientFPS: base.ClientFPS, OptClientFPS: opt.ClientFPS,
		BaseRTT: base.RTT.Mean, OptRTT: opt.RTT.Mean,
		ServerFPSGain: stats.PercentChange(opt.ServerFPS, base.ServerFPS),
		ClientFPSGain: stats.PercentChange(opt.ClientFPS, base.ClientFPS),
		RTTReduction:  -stats.PercentChange(opt.RTT.Mean, base.RTT.Mean),
		BaseFCMs:      base.Stages[trace.StageFC].Mean,
		OptFCMs:       opt.Stages[trace.StageFC].Mean,
	}
}

// RunOptimization reproduces Figure 22 for one benchmark: baseline vs
// both §6 optimizations.
func RunOptimization(prof app.Profile, cfg ExperimentConfig) OptimizationResult {
	return finishOptimization(prof, RunTrials(optimizationTrials(prof, cfg), cfg))
}

// ---------------------------------------------------------------------------
// Container overhead (Figure 20)

// ContainerResult is the Figure 20 outcome for one benchmark.
type ContainerResult struct {
	Benchmark      string
	BareServerFPS  float64
	ContServerFPS  float64
	BareRTT        float64
	ContRTT        float64
	FPSOverheadPct float64 // positive = container slower
	RTTOverheadPct float64
	RDOverheadPct  float64
}

func containerTrials(prof app.Profile, cfg ExperimentConfig) []exp.Trial {
	mk := func(id string, containerized bool) exp.Trial {
		t := cfg.trial(exp.InstanceSpec{Profile: prof, Driver: exp.DriverHuman, Containerized: containerized})
		t.ID = "container/" + prof.Name + "/" + id
		return t
	}
	return []exp.Trial{mk("bare", false), mk("docker", true)}
}

func finishContainer(prof app.Profile, res [][]TrialResult) ContainerResult {
	bare := mergeInstances(res[0])[0]
	cont := mergeInstances(res[1])[0]
	return ContainerResult{
		Benchmark:     prof.Name,
		BareServerFPS: bare.ServerFPS, ContServerFPS: cont.ServerFPS,
		BareRTT: bare.RTT.Mean, ContRTT: cont.RTT.Mean,
		FPSOverheadPct: -stats.PercentChange(cont.ServerFPS, bare.ServerFPS),
		RTTOverheadPct: stats.PercentChange(cont.RTT.Mean, bare.RTT.Mean),
		RDOverheadPct:  stats.PercentChange(cont.Stages[trace.StageRD].Mean, bare.Stages[trace.StageRD].Mean),
	}
}

// RunContainerOverhead reproduces Figure 20 for one benchmark.
func RunContainerOverhead(prof app.Profile, cfg ExperimentConfig) ContainerResult {
	return finishContainer(prof, RunTrials(containerTrials(prof, cfg), cfg))
}

// ---------------------------------------------------------------------------
// The full paper grid

// SuiteGridResult is every experiment of the paper's evaluation over
// the selected workload suite (cfg.Profiles; the paper's six by
// default), produced by one runner invocation.
type SuiteGridResult struct {
	// Methodology maps benchmark → Figure-6/Table-3 rows.
	Methodology map[string][]MethodologyResult
	// Characterization maps benchmark → per-count results: entry n-1
	// holds the per-instance results of n co-located copies.
	Characterization map[string][][]InstanceResult
	// PowerWatts maps benchmark → wall power per co-location count.
	PowerWatts map[string][]float64
	// Pairs maps the n(n-1)/2 unordered benchmark pairs (15 for the
	// paper suite) → both results.
	Pairs map[[2]string][2]InstanceResult
	// Container, Optimization and Overhead map benchmark → their rows.
	Container    map[string]ContainerResult
	Optimization map[string]OptimizationResult
	Overhead     map[string]OverheadResult
}

// RunSuiteGrid expands the paper's complete evaluation — methodology ×
// characterization sweeps × co-location pairs × container × frame-copy
// optimization × framework overhead, over every benchmark of the
// selected suite (cfg.Profiles; the paper's six by default) — into
// one flat trial grid and executes it on the parallel runner. Trials
// with identical canonical keys (e.g. the single-instance human
// baseline that several experiments share) run once and fan out to
// every consumer.
func RunSuiteGrid(cfg ExperimentConfig) SuiteGridResult {
	out, trials, finishers := suiteGridPlan(cfg)
	all := RunTrials(trials, cfg)
	for _, fin := range finishers {
		fin(all)
	}
	return *out
}

// SuiteGridTrials is the grid's deduplicated flat trial list without
// executing it — the benchmark service lowers "grid" specs through this
// so the server runs exactly the batch the CLI would.
func SuiteGridTrials(cfg ExperimentConfig) []exp.Trial {
	_, trials, _ := suiteGridPlan(cfg)
	return trials
}

// suiteGridPlan builds the grid: the (empty) result holder, the
// deduplicated trial list, and one finisher per constituent experiment
// that folds that experiment's rows into the holder once results exist.
// Dedup keys on exp.Trial.CanonicalKey — the as-executed identity — so
// two spellings the executor runs identically share one execution.
func suiteGridPlan(cfg ExperimentConfig) (*SuiteGridResult, []exp.Trial, []func(all [][]TrialResult)) {
	if cfg.MaxInstances < 1 {
		cfg.MaxInstances = 1
	}
	out := &SuiteGridResult{
		Methodology:      map[string][]MethodologyResult{},
		Characterization: map[string][][]InstanceResult{},
		PowerWatts:       map[string][]float64{},
		Pairs:            map[[2]string][2]InstanceResult{},
		Container:        map[string]ContainerResult{},
		Optimization:     map[string]OptimizationResult{},
		Overhead:         map[string]OverheadResult{},
	}

	var trials []exp.Trial
	index := map[string]int{}
	add := func(t exp.Trial) int {
		k := t.CanonicalKey()
		if i, ok := index[k]; ok {
			// Deduplicated trials run once for all consumers; if any
			// consumer needs the executed system, the shared run keeps it.
			trials[i].KeepSystem = trials[i].KeepSystem || t.KeepSystem
			return i
		}
		index[k] = len(trials)
		trials = append(trials, t)
		return len(trials) - 1
	}
	var finishers []func(all [][]TrialResult)
	plan := func(ts []exp.Trial, fin func(res [][]TrialResult)) {
		idxs := make([]int, len(ts))
		for i, t := range ts {
			idxs[i] = add(t)
		}
		finishers = append(finishers, func(all [][]TrialResult) {
			sel := make([][]TrialResult, len(idxs))
			for i, j := range idxs {
				sel[i] = all[j]
			}
			fin(sel)
		})
	}

	suite := cfg.suite()
	byName := make(map[string]app.Profile, len(suite))
	for _, prof := range suite {
		byName[prof.Name] = prof
	}
	for _, prof := range suite {
		prof := prof
		name := prof.Name

		plan(methodologyTrials(prof, cfg), func(res [][]TrialResult) {
			out.Methodology[name] = finishMethodology(prof, res)
		})

		out.Characterization[name] = make([][]InstanceResult, cfg.MaxInstances)
		out.PowerWatts[name] = make([]float64, cfg.MaxInstances)
		for n := 1; n <= cfg.MaxInstances; n++ {
			n := n
			plan([]exp.Trial{characterizationTrial(prof, n, exp.DriverHuman, cfg)}, func(res [][]TrialResult) {
				out.Characterization[name][n-1] = mergeInstances(res[0])
				out.PowerWatts[name][n-1] = exp.MeanOf(res[0], func(r TrialResult) float64 { return r.PowerWatts })
			})
		}

		plan(containerTrials(prof, cfg), func(res [][]TrialResult) {
			out.Container[name] = finishContainer(prof, res)
		})
		plan(optimizationTrials(prof, cfg), func(res [][]TrialResult) {
			out.Optimization[name] = finishOptimization(prof, res)
		})
		plan(overheadTrials(prof, cfg), func(res [][]TrialResult) {
			out.Overhead[name] = finishOverhead(prof, res)
		})
	}

	for _, pairNames := range SortedPairNamesOf(suite) {
		pairNames := pairNames
		a, b := byName[pairNames[0]], byName[pairNames[1]]
		plan([]exp.Trial{pairTrial(a, b, cfg)}, func(res [][]TrialResult) {
			merged := mergeInstances(res[0])
			out.Pairs[pairNames] = [2]InstanceResult{merged[0], merged[1]}
		})
	}

	return out, trials, finishers
}

// ---------------------------------------------------------------------------
// Presentation helpers

// FormatTable renders rows with a header as an aligned text table
// (thin wrapper over stats.Table, kept for the existing callers).
func FormatTable(header []string, rows [][]string) string {
	t := stats.NewTable(header...)
	for _, r := range rows {
		t.Row(r...)
	}
	return t.String()
}

// SortedPairNames lists the 15 unordered benchmark pairs of Figure 18
// (the paper suite).
func SortedPairNames() [][2]string {
	return SortedPairNamesOf(app.PaperSuite())
}

// SortedPairNamesOf lists the n(n-1)/2 unordered pairs of the given
// workload set, sorted by name.
func SortedPairNamesOf(suite []app.Profile) [][2]string {
	var out [][2]string
	for i := 0; i < len(suite); i++ {
		for j := i + 1; j < len(suite); j++ {
			out = append(out, [2]string{suite[i].Name, suite[j].Name})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}
