package core

import (
	"testing"

	"pictor/internal/app"
	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/stats"
)

func quickFleetConfig() ExperimentConfig {
	return ExperimentConfig{WarmupSeconds: 1, Seconds: 5, Seed: 1}
}

func TestRunFleetConsolidationShape(t *testing.T) {
	shape := exp.FleetShape{Machines: 2, Policy: fleet.PolicyRoundRobin, Mix: string(fleet.MixSuite), Requests: 4}
	r := RunFleetConsolidation(shape, quickFleetConfig())
	if len(r.Machines) != 2 {
		t.Fatalf("got %d machines, want 2", len(r.Machines))
	}
	if r.Placed+r.Rejected != 4 {
		t.Fatalf("placed %d + rejected %d must account for 4 requests", r.Placed, r.Rejected)
	}
	if r.Placed == 0 {
		t.Fatal("two 8-core machines must admit something from a 4-request stream")
	}
	if r.TotalPowerWatts <= 0 {
		t.Fatal("fleet power must include at least idle watts")
	}
	total := 0
	for _, m := range r.Machines {
		total += len(m.Results)
		for _, ir := range m.Results {
			if ir.ServerFPS <= 0 {
				t.Fatalf("machine %d instance %s produced no frames", m.Machine, ir.Name)
			}
		}
		if len(m.Results) > 0 && m.RTT.N == 0 {
			t.Fatalf("machine %d has instances but no pooled RTT", m.Machine)
		}
	}
	if total != r.Placed {
		t.Fatalf("machine results (%d) disagree with Placed (%d)", total, r.Placed)
	}
	if r.RTT.N == 0 || r.RTT.Mean <= 0 {
		t.Fatalf("fleet-wide RTT missing: %+v", r.RTT)
	}
}

func TestRunFleetComparisonCoversAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("binpack measures pair interference")
	}
	shape := exp.FleetShape{Machines: 2, Mix: string(fleet.MixShuffled), Requests: 5}
	rs := RunFleetComparison(shape, quickFleetConfig())
	names := fleet.PolicyNames()
	if len(rs) != len(names) {
		t.Fatalf("got %d results, want %d", len(rs), len(names))
	}
	for i, r := range rs {
		if r.Policy != names[i] {
			t.Fatalf("result %d is %q, want %q", i, r.Policy, names[i])
		}
		if r.Placed+r.Rejected != 5 {
			t.Fatalf("%s: placed %d + rejected %d != 5", r.Policy, r.Placed, r.Rejected)
		}
	}
	table := FleetComparisonTable(rs)
	for _, name := range names {
		if !contains(table, name) {
			t.Fatalf("comparison table misses policy %q:\n%s", name, table)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPairInterferenceCoversSuitePairs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pair co-location measurement")
	}
	it := PairInterference()
	paper := app.PaperSuite()
	n := len(paper)
	if want := n * (n + 1) / 2; it.Len() != want {
		t.Fatalf("interference table has %d pairs, want %d (all unordered pairs incl. self)", it.Len(), want)
	}
	for _, a := range paper {
		for _, b := range paper {
			s := it.Score(a.Name, b.Name)
			if s < 0 || s > 1 {
				t.Fatalf("score(%s,%s) = %g out of [0,1]", a.Name, b.Name, s)
			}
		}
	}
	if PairInterference() != it {
		t.Fatal("interference table must be cached per process")
	}
	// The cache is keyed by suite fingerprint, order-independently: the
	// same set requested in another order is the same (cached) table.
	reversed := []app.Profile{paper[2], paper[1], paper[0]}
	if PairInterferenceAmong(paper[:3]) != PairInterferenceAmong(reversed) {
		t.Fatal("suite fingerprint must be order-independent")
	}
	// A different subset measures its own table, and pairs shared with
	// another fingerprint score identically (trial keys depend only on
	// the profiles named).
	sub := PairInterferenceAmong(paper[:3])
	if sub == it {
		t.Fatal("distinct suites must not share a table")
	}
	if got, want := sub.Score(paper[0].Name, paper[1].Name), it.Score(paper[0].Name, paper[1].Name); got != want {
		t.Fatalf("shared pair scores differ across fingerprints: %v vs %v", got, want)
	}
}

// TestFleetComparisonStreamsMatchAcrossPolicies: the policy comparison
// must consolidate the identical arrival stream under every policy, on
// every repetition — the unit seed differs per policy (it derives from
// the trial key, which names the policy), so the stream must not be
// derived from it.
func TestFleetComparisonStreamsMatchAcrossPolicies(t *testing.T) {
	shape := exp.FleetShape{Machines: 2, Mix: string(fleet.MixShuffled), Requests: 6}
	cfg := quickFleetConfig()
	cfg.Reps = 3
	trials := []exp.Trial{}
	for _, pol := range []string{fleet.PolicyRoundRobin, fleet.PolicyLeastDemand} {
		s := shape
		s.Policy = pol
		tr := exp.FleetTrial(s)
		tr.Warmup, tr.Measure, tr.Seed = cfg.WarmupSeconds, cfg.Seconds, cfg.Seed
		trials = append(trials, tr)
	}
	out := RunTrials(trials, cfg)
	for rep := 0; rep < cfg.Reps; rep++ {
		a := out[0][rep].Fleet
		b := out[1][rep].Fleet
		if len(a.Requests) == 0 {
			t.Fatal("arrival stream not reported")
		}
		for i := range a.Requests {
			if a.Requests[i] != b.Requests[i] {
				t.Fatalf("rep %d request %d differs across policies: %s vs %s",
					rep, i, a.Requests[i], b.Requests[i])
			}
		}
		if rep > 0 && equalStrings(out[0][rep].Fleet.Requests, out[0][0].Fleet.Requests) {
			t.Fatalf("rep %d reuses rep 0's shuffled stream; reps must draw fresh streams", rep)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFleetShapeValidationPanicsEarly: a typo in the fixed policy/mix
// vocabulary must fail on the caller's goroutine with the valid names,
// not as a worker panic mid-grid.
func TestFleetShapeValidationPanicsEarly(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected a panic", name)
			}
		}()
		f()
	}
	cfg := quickFleetConfig()
	mustPanic("bad policy", func() {
		RunFleetConsolidation(exp.FleetShape{Machines: 1, Policy: "best-fit", Requests: 1}, cfg)
	})
	mustPanic("bad mix", func() {
		RunFleetConsolidation(exp.FleetShape{Machines: 1, Mix: "diurnal", Requests: 1}, cfg)
	})
	mustPanic("bad mix in comparison", func() {
		RunFleetComparison(exp.FleetShape{Machines: 1, Mix: "diurnal", Requests: 1}, cfg)
	})
}

// TestFleetTrialKeyedAndDeduplicated: fleet shapes key distinctly so
// grids can mix fleet and single-machine trials.
func TestFleetTrialKeys(t *testing.T) {
	a := exp.FleetTrial(exp.FleetShape{Machines: 2, Policy: "roundrobin", Requests: 4})
	b := exp.FleetTrial(exp.FleetShape{Machines: 3, Policy: "roundrobin", Requests: 4})
	c := exp.FleetTrial(exp.FleetShape{Machines: 2, Policy: "binpack", Requests: 4})
	plain := exp.Single(app.STK(), exp.DriverHuman)
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true, plain.Key(): true}
	if len(keys) != 4 {
		t.Fatalf("fleet trial keys collide: %v", keys)
	}
	if a.Key() != exp.FleetTrial(exp.FleetShape{Machines: 2, Policy: "roundrobin", Requests: 4}).Key() {
		t.Fatal("identical shapes must share a key")
	}
}

// TestMergeFleetExactPooledRTT pins the difference between the two
// cross-rep RTT aggregates on a known two-rep case: RTT averages each
// rep's quantile vector, so its P75 of {ten 10ms observations} and
// {ten 100ms observations} is the midpoint 55 — but the pooled
// 20-observation distribution's actual P75 is 100, which is what
// ExactRTT must report.
func TestMergeFleetExactPooledRTT(t *testing.T) {
	rep := func(value float64) TrialResult {
		var s stats.Sample
		raw := make([]float64, 10)
		for i := range raw {
			raw[i] = value
		}
		s.AddAll(raw)
		return TrialResult{Fleet: &FleetResult{
			RTT:      s.Summarize(),
			Machines: []MachineResult{{RawRTT: raw, RTT: s.Summarize()}},
		}}
	}
	merged := mergeFleet([]TrialResult{rep(10), rep(100)})
	if merged.RepsMerged != 2 {
		t.Fatalf("RepsMerged = %d, want 2", merged.RepsMerged)
	}
	if merged.RTT.P75 != 55 {
		t.Fatalf("averaged-quantile P75 = %v, want 55 (mean of the per-rep P75s)", merged.RTT.P75)
	}
	if merged.ExactRTT.P75 != 100 {
		t.Fatalf("exact pooled P75 = %v, want 100 (the pooled distribution's quantile)", merged.ExactRTT.P75)
	}
	if merged.ExactRTT.N != 20 {
		t.Fatalf("exact pooled N = %d, want all 20 observations", merged.ExactRTT.N)
	}
	if merged.ExactRTT.Mean != 55 {
		t.Fatalf("exact pooled mean = %v, want 55", merged.ExactRTT.Mean)
	}
	// Single-execution path: ExactRTT is filled by executeFleet's
	// exactPooledRTT over one result — cover the helper directly.
	one := rep(10).Fleet
	if got := exactPooledRTT([]*FleetResult{one}); got.P75 != 10 || got.N != 10 {
		t.Fatalf("single-result exact pool = %+v, want P75=10 N=10", got)
	}
}
