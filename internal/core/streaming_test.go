package core

import (
	"testing"

	"pictor/internal/exp"
	"pictor/internal/fleet"
)

const diurnalGoldenPath = "testdata/diurnal_golden.txt"

// diurnalShape is the schedule tests' fixture: the golden churn fleet
// under a one-day sinusoidal curve whose period matches the horizon, so
// the sweep sees the trough, the ramp and the peak exactly once.
func diurnalShape() exp.FleetShape {
	return exp.FleetShape{
		Machines:          3,
		Policy:            fleet.PolicyRoundRobin,
		Mix:               string(fleet.MixHeavy),
		CoreClasses:       "8,4",
		Epochs:            6,
		ArrivalRate:       2,
		RateSchedule:      fleet.ScheduleDiurnal,
		PeakRate:          6,
		PeriodEpochs:      6,
		MeanSessionEpochs: 3,
	}
}

// TestGoldenDiurnalChurn pins the scheduled-arrival path the way the
// churn fixture pins flat-rate churn: a fixed-seed RunChurnComparison
// under a diurnal curve — with repetitions, so the schedule-qualified
// stream seeds are exercised — must be byte-identical at -parallel 1
// and 8 and must match the recorded fixture. The renderer includes the
// offered-session-epoch denominator, so the portal's incremental
// accounting is pinned here too.
func TestGoldenDiurnalChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 churn trials × 2 reps × 2 parallelism levels")
	}
	shape := diurnalShape()
	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 5
	base.Reps = 2

	run := func(parallel int) []ChurnResult {
		cfg := base
		cfg.Parallel = parallel
		return RunChurnComparison(shape, cfg)
	}
	rs := run(1)
	seq, par := renderFaults(rs), renderFaults(run(8))
	if seq != par {
		t.Fatalf("diurnal output diverges across parallelism:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", seq, par)
	}
	static, migrated := rs[0], rs[1]
	if static.Arrivals != migrated.Arrivals || static.OfferedSessionEpochs != migrated.OfferedSessionEpochs {
		t.Fatalf("migration variants must share the scheduled tenant population: %d/%d arrivals, %d/%d offered",
			static.Arrivals, migrated.Arrivals, static.OfferedSessionEpochs, migrated.OfferedSessionEpochs)
	}
	if static.Arrivals == 0 || static.OfferedSessionEpochs == 0 {
		t.Fatalf("diurnal sweep produced an empty population: %+v", static)
	}
	checkGolden(t, diurnalGoldenPath, seq)
}

// TestConstantScheduleMatchesHistorical is the API redesign's
// compatibility oracle: an explicit "constant" rate schedule must
// produce results byte-identical to the historical implicit flat-rate
// path — same trial key, same derived stream seed, same simulation —
// across ten base seeds. If the schedule plumbing ever perturbs a
// constant-rate draw (a key segment joining unconditionally, an extra
// RNG consultation), this is the test that says so.
func TestConstantScheduleMatchesHistorical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 20 small churn trials")
	}
	historical := exp.FleetShape{
		Machines:          2,
		Policy:            fleet.PolicyRoundRobin,
		Mix:               string(fleet.MixHeavy),
		CoreClasses:       "8,4",
		Epochs:            4,
		ArrivalRate:       1.5,
		MeanSessionEpochs: 2,
	}
	constant := historical
	constant.RateSchedule = fleet.ScheduleConstant

	if a, b := exp.FleetTrial(historical).Key(), exp.FleetTrial(constant).Key(); a != b {
		t.Fatalf("a constant schedule must not change the trial key:\n implicit: %q\n explicit: %q", a, b)
	}

	base := QuickExperimentConfig()
	base.WarmupSeconds, base.Seconds = 1, 2
	for seed := int64(1); seed <= 10; seed++ {
		cfg := base
		cfg.Seed = seed
		want := renderFaults([]ChurnResult{RunFleetChurn(historical, cfg)})
		got := renderFaults([]ChurnResult{RunFleetChurn(constant, cfg)})
		if want != got {
			t.Fatalf("seed %d: explicit constant schedule diverges from the historical path:\n--- implicit ---\n%s--- constant ---\n%s",
				seed, want, got)
		}
	}
}

// TestRollupOnlyMatchesFullScalars pins the streaming sink's contract:
// a RollupOnly run folds exactly the same horizon scalars as the
// in-memory run — every counter, the offered/compliant availability
// pair, mean active and mean power — while retaining no per-epoch rows.
// (The horizon RTT is the documented epoch-weighted approximation and
// is asserted only to pool the same observation count.)
func TestRollupOnlyMatchesFullScalars(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 small churn trials")
	}
	full := diurnalShape()
	rollup := full
	rollup.RollupOnly = true

	cfg := QuickExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 2

	f := RunFleetChurn(full, cfg)
	r := RunFleetChurn(rollup, cfg)
	if len(f.Epochs) != full.Epochs {
		t.Fatalf("full run kept %d epoch rows, want %d", len(f.Epochs), full.Epochs)
	}
	if len(r.Epochs) != 0 {
		t.Fatalf("rollup-only run retained %d epoch rows", len(r.Epochs))
	}
	type scalars struct {
		arr, dep, mig, rej, qos, crash, evict, retried, rec, lost, degr, off, comp int
		active, watts, avail                                                       float64
	}
	of := func(c ChurnResult) scalars {
		return scalars{c.Arrivals, c.Departures, c.Migrations, c.Rejected, c.QoSViolations,
			c.Crashes, c.Evicted, c.Retried, c.Recovered, c.Lost, c.DegradedSessionEpochs,
			c.OfferedSessionEpochs, c.CompliantSessionEpochs,
			c.MeanActive, c.MeanPowerWatts, c.Availability}
	}
	if of(f) != of(r) {
		t.Fatalf("rollup-only scalars diverge from the in-memory run:\n full:   %+v\n rollup: %+v", of(f), of(r))
	}
	if f.RTT.N != r.RTT.N {
		t.Fatalf("rollup RTT pools %d observations, full pools %d", r.RTT.N, f.RTT.N)
	}
}
