// Package core assembles the full cloud 3D rendering system — server
// hardware, proxies, applications, network, clients and drivers — and
// runs the paper's experiments on it. It is the engine behind the
// public pictor API.
package core

import (
	"fmt"

	"pictor/internal/agent"
	"pictor/internal/app"
	"pictor/internal/container"
	"pictor/internal/gl"
	"pictor/internal/hw/cpu"
	"pictor/internal/hw/gpu"
	"pictor/internal/hw/mem"
	"pictor/internal/hw/pcie"
	"pictor/internal/hw/power"
	"pictor/internal/netsim"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/vgl"
	"pictor/internal/vnc"
	"pictor/internal/x11"
)

// DriverFactory builds a client driver once the instance's cluster and
// RNG exist. The cluster gives factories machine scope — intelligent
// clients use it to share one BatchModels per machine (c.BatcherFor)
// so their per-frame CNN passes run as one batch; c.K is the kernel.
// A nil factory means an undriven instance (no inputs).
type DriverFactory func(c *Cluster, rng *sim.RNG, prof app.Profile) vnc.Driver

// Options configures a cluster (one server machine + its clients).
type Options struct {
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// Cores is the server CPU core count (paper: 8-core i7-7820X).
	Cores int
	// PCIeBytesPerSec is per-direction PCIe bandwidth.
	PCIeBytesPerSec float64
	// Network is the per-instance client link.
	Network netsim.Config
	// Power is the wall-power model.
	Power power.Model
}

// DefaultOptions matches the paper's testbed.
func DefaultOptions() Options {
	return Options{
		Seed:            1,
		Cores:           8,
		PCIeBytesPerSec: 15.75e9,
		Network:         netsim.DefaultConfig(),
		Power:           power.Default(),
	}
}

// InstanceConfig configures one application instance on the cluster.
type InstanceConfig struct {
	Profile app.Profile
	Driver  DriverFactory
	// Tracing enables the performance analysis framework (default on
	// via NewInstanceConfig; the overhead experiment turns it off).
	Tracing bool
	// Interposer selects baseline vs optimized frame copy.
	Interposer vgl.Options
	// Containerized wraps the instance in a Docker-like container.
	Containerized bool
	// Container carries the overhead model when Containerized.
	Container container.Overheads
	// Mode selects the pipeline discipline (normal vs slow-motion).
	Mode app.Mode
}

// NewInstanceConfig returns the standard setup: traced, baseline
// interposer, bare metal, normal pipeline.
func NewInstanceConfig(prof app.Profile, driver DriverFactory) InstanceConfig {
	return InstanceConfig{
		Profile:    prof,
		Driver:     driver,
		Tracing:    true,
		Interposer: vgl.DefaultOptions(),
		Mode:       app.ModeNormal,
	}
}

// Instance is one running benchmark with its proxies and client.
type Instance struct {
	Name    string
	Profile app.Profile
	Tracer  *trace.Tracer
	App     *app.App
	Server  *vnc.ServerProxy
	Client  *vnc.ClientProxy
	Driver  vnc.Driver

	appProc *cpu.Proc
	vncProc *cpu.Proc
	memApp  *mem.Client
	memVNC  *mem.Client
	gpuCtx  *gpu.Context
	pcie    *pcie.Client
	link    *netsim.Link
	ip      *vgl.Interposer
}

// Cluster is one server machine plus its per-instance clients.
type Cluster struct {
	K     *sim.Kernel
	CPU   *cpu.CPU
	Mem   *mem.System
	GPU   *gpu.GPU
	PCIe  *pcie.Bus
	Power power.Model

	Instances []*Instance

	opts     Options
	rng      *sim.RNG
	measure  sim.Duration
	batchers map[*agent.Models]*agent.BatchModels
}

// BatcherFor returns the cluster's shared BatchModels for one trained
// model set, creating it on first use (the weights are cloned once per
// cluster, not once per client). All intelligent clients on this
// machine built from the same models join the same batch, so their
// per-frame CNN passes coalesce into one tick-synchronized inference.
func (c *Cluster) BatcherFor(models *agent.Models) *agent.BatchModels {
	if c.batchers == nil {
		c.batchers = make(map[*agent.Models]*agent.BatchModels)
	}
	bm, ok := c.batchers[models]
	if !ok {
		bm = agent.NewBatchModels(models)
		c.batchers[models] = bm
	}
	return bm
}

// NewCluster builds an empty server.
func NewCluster(opts Options) *Cluster {
	if opts.Cores <= 0 {
		opts.Cores = 8
	}
	if opts.PCIeBytesPerSec <= 0 {
		opts.PCIeBytesPerSec = 15.75e9
	}
	if opts.Network.BandwidthBytesPerSec <= 0 {
		opts.Network = netsim.DefaultConfig()
	}
	if opts.Power.IdleWatts <= 0 {
		opts.Power = power.Default()
	}
	k := sim.NewKernel()
	rng := sim.NewRNG(opts.Seed)
	return &Cluster{
		K:     k,
		CPU:   cpu.New(k, opts.Cores, rng),
		Mem:   mem.NewSystem(),
		GPU:   gpu.New(k, rng),
		PCIe:  pcie.New(k, opts.PCIeBytesPerSec),
		Power: opts.Power,
		opts:  opts,
		rng:   rng,
	}
}

// AddInstance assembles one benchmark instance on the server.
func (c *Cluster) AddInstance(cfg InstanceConfig) *Instance {
	idx := len(c.Instances)
	name := fmt.Sprintf("%s#%d", cfg.Profile.Name, idx)
	rng := c.rng.Fork(name)
	prof := cfg.Profile

	gpuProf := prof.GPU
	memProf := prof.Mem
	vncMemProf := prof.VNCMem
	costs := vnc.DefaultCosts()
	if cfg.Containerized {
		tax := cfg.Container.SampleIPCTax(rng)
		prof.IPCTax += tax
		costs.IPCTax += tax
		memProf.Intensity *= cfg.Container.MemIsolation
		vncMemProf.Intensity *= cfg.Container.MemIsolation
	}

	tracer := trace.New(c.K)
	tracer.SetEnabled(cfg.Tracing)

	memApp := c.Mem.Register(name, memProf)
	memVNC := c.Mem.Register(name+"-vnc", vncMemProf)
	appProc := c.CPU.NewProc(name, memApp, prof.AppBackgroundCores)
	vncProc := c.CPU.NewProc(name+"-vnc", memVNC, prof.VNCBackgroundCores)

	gctx := c.GPU.NewContext(name, gpuProf)
	if cfg.Containerized {
		gctx.SetVirtTax(cfg.Container.GPUVirtTax)
	}
	pcl := c.PCIe.NewClient(name)
	glctx := gl.NewContext(c.K, gctx, pcl)
	display := x11.NewDisplay(c.K, rng, prof.Width, prof.Height)
	ip := vgl.New(c.K, appProc, display, tracer, cfg.Interposer)
	link := netsim.NewLink(c.K, name, c.opts.Network, rng)

	server := vnc.NewServerProxy(c.K, vncProc, link, display, tracer, prof.Codec, costs, rng)
	application := app.New(app.Config{
		Kernel:     c.K,
		RNG:        rng,
		Profile:    prof,
		Proc:       appProc,
		GL:         glctx,
		Interposer: ip,
		Display:    display,
		Tracer:     tracer,
		Mode:       cfg.Mode,
		SendFrame:  server.HandleFrame,
	})
	var driver vnc.Driver
	if cfg.Driver != nil {
		driver = cfg.Driver(c, rng, prof)
	}
	client := vnc.NewClientProxy(c.K, link, tracer, server, driver)

	inst := &Instance{
		Name:    name,
		Profile: prof,
		Tracer:  tracer,
		App:     application,
		Server:  server,
		Client:  client,
		Driver:  driver,
		appProc: appProc,
		vncProc: vncProc,
		memApp:  memApp,
		memVNC:  memVNC,
		gpuCtx:  gctx,
		pcie:    pcl,
		link:    link,
		ip:      ip,
	}
	c.Instances = append(c.Instances, inst)
	return inst
}

// start activates an instance's processes and contexts.
func (inst *Instance) start() {
	inst.vncProc.Start()
	inst.memVNC.SetActive(true)
	inst.gpuCtx.SetActive(true)
	inst.memApp.SetActive(true)
	inst.App.Start() // starts appProc
}

// stop deactivates the instance.
func (inst *Instance) stop() {
	inst.App.Stop()
	inst.vncProc.Stop()
	inst.memVNC.SetActive(false)
	inst.memApp.SetActive(false)
	inst.gpuCtx.SetActive(false)
}

// resetAccounting clears all measurements (end of warmup).
func (inst *Instance) resetAccounting() {
	inst.Tracer.Reset()
	inst.appProc.ResetAccounting()
	inst.vncProc.ResetAccounting()
	inst.gpuCtx.ResetAccounting()
	inst.pcie.ResetAccounting()
	inst.link.ResetAccounting()
}

// Run executes the cluster: warmup (discarded), then the measurement
// window. Instances start together and stop at the end.
func (c *Cluster) Run(warmup, measure sim.Duration) {
	for _, inst := range c.Instances {
		inst.start()
	}
	c.K.RunUntil(c.K.Now().Add(warmup))
	// Pre-size the tracer's samples from the configured window: stage
	// samples collect at most ~one observation per frame, so a frame
	// rate bound × window length covers steady state without re-growth.
	const maxExpectedFPS = 64
	hint := int(sim.Time(measure).Seconds() * maxExpectedFPS)
	for _, inst := range c.Instances {
		inst.resetAccounting()
		inst.Tracer.SizeHint(hint)
	}
	c.K.RunUntil(c.K.Now().Add(measure))
	for _, inst := range c.Instances {
		inst.stop()
	}
	c.measure = measure
}

// MeasuredSeconds reports the measurement-window length.
func (c *Cluster) MeasuredSeconds() float64 { return sim.Time(c.measure).Seconds() }

// TotalPowerWatts reports modelled wall power over the measurement
// window.
func (c *Cluster) TotalPowerWatts() float64 {
	var cpuUtil, gpuUtil float64
	for _, inst := range c.Instances {
		cpuUtil += inst.appProc.Utilization() + inst.vncProc.Utilization()
		gpuUtil += inst.gpuCtx.Utilization()
	}
	// Accounting can exceed physical capacity under heavy memory-stall
	// inflation; the wall meter cannot.
	if maxUtil := c.CPU.Cores() * 100; cpuUtil > maxUtil {
		cpuUtil = maxUtil
	}
	return c.Power.TotalWatts(cpuUtil, gpuUtil, len(c.Instances))
}
