package core

import (
	"pictor/internal/exp"
	"pictor/internal/sim"
)

// TrialResult is the outcome of executing one (trial, repetition)
// unit: every instance's measurements plus machine-level readings.
type TrialResult struct {
	// Rep and Seed identify the execution unit.
	Rep  int
	Seed int64
	// Results holds one entry per instance, in spec order.
	Results []InstanceResult
	// PowerWatts is modelled wall power over the measurement window.
	PowerWatts float64
	// Cluster is the executed system, retained only when the trial
	// sets KeepSystem (e.g. the Chen et al. stage-sum baseline reads
	// the human run's raw trace). Nil otherwise, so grids release each
	// simulated machine as soon as its trial finishes. Excluded from
	// JSON: a simulated machine is not a measurement.
	Cluster *Cluster `json:"-"`
	// Fleet holds the multi-server outcome when the trial has a
	// one-shot fleet shape; Results is empty in that case (instances
	// live under Fleet.Machines).
	Fleet *FleetResult
	// Churn holds the epoch-based outcome when the trial's fleet shape
	// churns (Epochs > 0); Results and Fleet are empty in that case.
	Churn *ChurnResult
}

// ExecuteTrial builds a cluster for the trial, runs it, and snapshots
// every instance. It is the exp.Runner executor: a pure function of
// (Trial, Unit) — each call owns a private kernel and RNG seeded from
// the unit, so trials can run on any worker in any order and still
// produce byte-identical results.
func ExecuteTrial(t exp.Trial, u exp.Unit) TrialResult {
	if t.Fleet != nil {
		if t.Fleet.Churn() {
			cr := executeFleetChurn(t, u)
			return TrialResult{Rep: u.Rep, Seed: u.Seed, Churn: cr, PowerWatts: cr.MeanPowerWatts}
		}
		fr := executeFleet(t, u)
		return TrialResult{Rep: u.Rep, Seed: u.Seed, Fleet: fr, PowerWatts: fr.TotalPowerWatts}
	}
	cl := NewCluster(Options{Seed: u.Seed})
	for _, spec := range t.Instances {
		cl.AddInstance(instanceConfigOf(spec))
	}
	cl.Run(sim.DurationOfSeconds(t.Warmup), sim.DurationOfSeconds(t.Measure))
	out := TrialResult{
		Rep:     u.Rep,
		Seed:    u.Seed,
		Results: make([]InstanceResult, len(cl.Instances)),
	}
	if t.KeepSystem {
		out.Cluster = cl
	}
	for i, inst := range cl.Instances {
		out.Results[i] = inst.Result()
	}
	out.PowerWatts = cl.TotalPowerWatts()
	return out
}

// instanceConfigOf lowers a declarative instance spec onto the
// assembly-layer InstanceConfig.
func instanceConfigOf(spec exp.InstanceSpec) InstanceConfig {
	icfg := NewInstanceConfig(spec.Profile, driverFactoryOf(spec))
	icfg.Tracing = !spec.TracingOff
	icfg.Mode = spec.Mode
	icfg.Interposer = exp.CanonicalInterposer(spec.Interposer)
	if spec.Containerized {
		icfg.Containerized = true
		icfg.Container = dockerOverheads()
	}
	return icfg
}

// driverFactoryOf maps a declarative driver kind onto a concrete
// factory. Model-backed drivers train the benchmark's CNN+LSTM on
// first use (cached per process; the factories clone per client, so
// concurrent trials never share mutable networks).
func driverFactoryOf(spec exp.InstanceSpec) DriverFactory {
	switch spec.Driver {
	case exp.DriverHuman:
		return HumanDriver()
	case exp.DriverIC:
		models, _, _ := TrainedModels(spec.Profile)
		return ICDriver(models)
	case exp.DriverDeskBench:
		_, rec, gap := TrainedModels(spec.Profile)
		return DeskBenchDriver(rec, gap, 0)
	case exp.DriverSlowMotion:
		models, _, _ := TrainedModels(spec.Profile)
		return SlowMotionDriver(models)
	}
	return nil
}
