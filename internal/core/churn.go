package core

import (
	"fmt"

	"pictor/internal/engine"
	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/stats"
)

// EpochResult is one churn epoch's fleet-wide outcome: the lifecycle
// events that happened in the epoch plus the measurements of the
// sessions that executed in it.
type EpochResult struct {
	// Epoch is the epoch index.
	Epoch int
	// Arrivals..Rejected count the epoch's lifecycle events (Rejected
	// arrivals found no feasible machine; Migrations were triggered by
	// this epoch's measurements and take effect next epoch).
	Arrivals   int
	Departures int
	Migrations int
	Rejected   int
	// Active is how many sessions actually executed this epoch.
	Active int
	// OfferedSessionEpochs counts, for the sessions arriving this
	// epoch, every epoch they want service inside the horizon (whether
	// admitted or not) — the availability denominator, accumulated
	// incrementally as arrivals are offered so a streamed run never
	// needs the materialized schedule.
	OfferedSessionEpochs int
	// Crashes and Evicted count fault injection: machines that went
	// down this epoch and the resident sessions they force-released.
	Crashes int
	Evicted int
	// Retried and Recovered count failover: matured retry attempts
	// this epoch and how many of them were re-admitted.
	Retried   int
	Recovered int
	// Degraded is a gauge: how many of the epoch's executed sessions
	// ran below full fidelity (brown-out tiers).
	Degraded int
	// QoSViolations counts executed instances below the 25-FPS floor.
	QoSViolations int
	// PowerWatts is fleet wall power over the epoch, idle machines
	// included.
	PowerWatts float64
	// RTT pools every executed instance's RTT distribution.
	RTT stats.Summary
	// Occupancy holds one row per machine (index order) when the shape
	// opts into OccupancyDetail — the placement-heatmap feed. Nil
	// otherwise, keeping default payloads small.
	Occupancy []MachineOccupancy
}

// MachineOccupancy is one machine's epoch snapshot for placement
// heatmaps: who was up, how loaded, at what fidelity tier, and what it
// measured. Rows are recorded at the epoch's gauge point (post-
// admission, pre-execution); RTTMean and PowerWatts are filled in as
// the machine's measurements are collected (a crashed machine keeps
// them zero — powered off, nothing executed).
type MachineOccupancy struct {
	// Machine is the machine index; State its availability.
	Machine int
	State   fleet.MachineState
	// Residents counts placed sessions; Degraded how many of them run
	// below full quality; Demand is the summed predicted CPU demand.
	Residents int
	Degraded  int
	Demand    float64
	// Surrogate marks the machine as running on the surrogate engine
	// this epoch (fidelity tiers on and outside the sampled cohort).
	Surrogate bool
	// RTTMean is the machine's pooled mean RTT (ms); PowerWatts its
	// modelled wall power over the epoch.
	RTTMean    float64
	PowerWatts float64
}

// ChurnResult is the outcome of one epoch-based churn trial: per-epoch
// rows plus horizon-wide rollups.
type ChurnResult struct {
	// Policy, Mix and Migrate echo the executed shape.
	Policy  string
	Mix     string
	Migrate bool
	// Faulty, Retry and Degrade echo the shape's robustness knobs
	// (fault injection on, failover on, brown-out tiers on).
	Faulty  bool
	Retry   bool
	Degrade bool
	// Epochs holds one row per epoch, in order.
	Epochs []EpochResult
	// Totals over the horizon.
	Arrivals      int
	Departures    int
	Migrations    int
	Rejected      int
	QoSViolations int
	// Fault/failover totals over the horizon. Lost counts sessions
	// that were rejected or evicted and never came back (retries
	// exhausted, or the tenant departed first); DegradedSessionEpochs
	// sums the per-epoch Degraded gauge.
	Crashes               int
	Evicted               int
	Retried               int
	Recovered             int
	Lost                  int
	DegradedSessionEpochs int
	// Availability is the robustness headline: QoS-compliant
	// session-epochs over offered session-epochs. Offered counts every
	// epoch each scheduled arrival wanted service inside the horizon
	// (whether admitted or not); compliant counts executed
	// session-epochs that met the 25-FPS floor.
	OfferedSessionEpochs   int
	CompliantSessionEpochs int
	Availability           float64
	// MeanActive and MeanPowerWatts average the per-epoch session
	// count and fleet power over the horizon.
	MeanActive     float64
	MeanPowerWatts float64
	// RTT pools every executed instance's RTT distribution across all
	// epochs.
	RTT stats.Summary
	// RepsMerged is how many repetitions the scalars aggregate (1 = a
	// single execution; per-epoch rows average across reps — epochs
	// align, because the horizon is part of the shape).
	RepsMerged int
}

// executeFleetChurn lowers a churn-shaped trial onto the global event
// kernel: the churnPortal implements the fleet lifecycle (depart,
// fault, retry, arrive, gauge, collect, react) and the fidelity
// dispatch, and engine.RunChurn drives it through the horizon in the
// exact order the historical nested epoch loop ran — so full-fidelity
// runs are byte-identical to the pre-kernel implementation, while
// shapes with SurrogateTail execute their tail machines on calibrated
// predictors instead of per-frame simulation. The kernel runs
// sequentially inside the one execution unit — the runner already
// shards trials across workers — so churn sweeps stay byte-identical
// at any parallelism level.
func executeFleetChurn(t exp.Trial, u exp.Unit) *ChurnResult {
	sh := *t.Fleet
	// Like the one-shot stream, the arrival schedule must be derived
	// policy- and migration-independently: the unit seed encodes the
	// trial key (which names both), so a migration-vs-static comparison
	// seeded from it would churn two *different* tenant populations.
	// Deriving from the pinned trial seed and the schedule's own
	// parameters keeps the populations matched (and distinct per rep);
	// with no pinned seed ("-seed 0", derive-everything mode) the
	// grid's base seed — key-independent by construction — fills in,
	// never the key-derived u.Seed.
	streamBase := t.Seed
	if streamBase == 0 {
		streamBase = u.Base
	}
	suite := resolveShapeProfiles(t.ID, sh.Profiles)
	// Like the one-shot stream key, the workload subset joins only when
	// set, so pre-registry schedules derive their historical seeds.
	streamKey := fmt.Sprintf("fleet/churn|%s|rate=%g|dur=%g|epochs=%d",
		sh.Mix, sh.ArrivalRate, sh.MeanSessionEpochs, sh.Epochs)
	if sh.Profiles != "" {
		streamKey += "|profiles=" + sh.Profiles
	}
	// The schedule joins the stream key only when it actually bends the
	// rate, so every constant-rate shape derives its exact historical
	// stream seed (and therefore its exact historical schedule).
	if sh.Scheduled() {
		streamKey += fmt.Sprintf("|sched=%s|peak=%g|period=%d",
			sh.RateSchedule, sh.PeakRate, sh.PeriodEpochs)
	}
	src, err := fleet.NewChurnSource(fleet.ArrivalConfig{
		Suite: suite, Mix: fleet.Mix(sh.Mix),
		Schedule: sh.RateSchedule, Rate: sh.ArrivalRate,
		PeakRate: sh.PeakRate, PeriodEpochs: sh.PeriodEpochs,
		MeanSessionEpochs: sh.MeanSessionEpochs, Epochs: sh.Epochs,
		Seed: exp.DeriveSeed(streamBase, streamKey, u.Rep),
	})
	if err != nil {
		panic(fmt.Sprintf("core: churn trial %q: %v", t.ID, err))
	}

	pol := fleetPolicy(t.ID, sh.Policy, suite)
	f := buildFleet(t.ID, sh)
	c := fleet.NewChurn(f, pol)
	c.Retry = fleet.RetryPolicy{MaxAttempts: sh.RetryAttempts, BackoffEpochs: sh.RetryBackoffEpochs}
	// Terminally-finished sessions flow back into the source's free
	// list: results hold counts and measurements, never *Session, so a
	// million-arrival sweep allocates O(peak concurrent), not O(total).
	c.Pool = src

	// Fault schedule: like the arrival schedule, derived from the
	// stream base and the fault parameters only — never the key-derived
	// unit seed — so a drop-on-failure vs retry/degrade comparison (and
	// every policy/migration variant) crashes the identical machines at
	// the identical epochs, and the delta is the recovery's doing.
	var timeline [][]fleet.MachineState
	if sh.Faulty() {
		faultKey := fmt.Sprintf("fleet/faults|mtbf=%g|mttr=%g|m=%d|epochs=%d",
			sh.MTBFEpochs, sh.MTTREpochs, len(f.Machines), sh.Epochs)
		tl, ferr := fleet.FaultStream(len(f.Machines), sh.MTBFEpochs, sh.MTTREpochs,
			sh.Epochs, exp.DeriveSeed(streamBase, faultKey, u.Rep))
		if ferr != nil {
			panic(fmt.Sprintf("core: churn trial %q: %v", t.ID, ferr))
		}
		timeline = tl
	}

	out := &ChurnResult{
		Policy:     pol.Name(),
		Mix:        string(sh.Mix),
		Migrate:    sh.Migrate,
		Faulty:     sh.Faulty(),
		Retry:      sh.RetryAttempts > 0,
		Degrade:    sh.Degrade,
		Epochs:     make([]EpochResult, 0, sh.Epochs),
		RepsMerged: 1,
	}
	if out.Mix == "" {
		out.Mix = string(fleet.MixSuite)
	}
	// Offered session-epochs — the availability denominator — are
	// accumulated incrementally by the portal as each arrival is
	// offered: a pure function of the stream (horizon-clipped wanted
	// epochs, admitted or not), so every variant still shares it, and a
	// streamed run never materializes the schedule to compute it.
	sink, streaming := resolveChurnSink(t.Sink, sh.RollupOnly, u.Rep, u.Seed, out)

	// Assemble the portal and drive it on the kernel. The fidelity
	// split normalizes here: without SurrogateTail every machine runs
	// full fidelity; with it, machines [0, sampled) stay full and the
	// tail runs the calibrated surrogate (sampled clamps to the fleet).
	portal := &churnPortal{
		t: t, sh: sh, u: u, streamBase: streamBase,
		c: c, f: f, src: src, timeline: timeline,
		sink: sink, streaming: streaming,
		sampled: len(f.Machines),
		out:     out,
	}
	portal.full = &fullEngine{p: portal}
	if sh.SurrogateTail {
		portal.sampled = sh.FidelitySampled
		if portal.sampled < 0 {
			portal.sampled = 0
		}
		if portal.sampled > len(f.Machines) {
			portal.sampled = len(f.Machines)
		}
		portal.surrogate = newSurrogateEngine(portal, suite)
	}
	engine.RunChurn(portal, portal)

	out.Lost = c.Lost
	if out.OfferedSessionEpochs > 0 {
		out.Availability = float64(out.CompliantSessionEpochs) / float64(out.OfferedSessionEpochs)
	}
	if streaming {
		// Streaming runs never hold the per-observation summary list
		// (it grows with total executed session-epochs); the horizon
		// RTT pools the per-epoch pooled summaries instead — a
		// documented epoch-weighted approximation of the per-
		// observation pooling the in-memory path keeps.
		out.RTT = exp.PoolSummaries(portal.rollupRTTs)
	} else {
		out.RTT = exp.PoolSummaries(portal.allRTTs)
	}
	return out
}

// mergeChurn folds a churn trial's repetitions: scalar rollups average,
// RTT distributions pool, and — unlike mergeFleet's per-machine rows —
// the per-epoch rows aggregate too, because the horizon is part of the
// shape and epochs therefore align across repetitions.
func mergeChurn(reps []TrialResult) ChurnResult {
	out := *reps[0].Churn
	out.RepsMerged = len(reps)
	out.Epochs = append([]EpochResult(nil), out.Epochs...)
	if len(reps) == 1 {
		return out
	}
	inv := 1 / float64(len(reps))
	roundMean := func(f func(ChurnResult) int) int {
		sum := 0.0
		for _, r := range reps {
			sum += float64(f(*r.Churn)) * inv
		}
		return int(sum + 0.5)
	}
	out.Arrivals = roundMean(func(r ChurnResult) int { return r.Arrivals })
	out.Departures = roundMean(func(r ChurnResult) int { return r.Departures })
	out.Migrations = roundMean(func(r ChurnResult) int { return r.Migrations })
	out.Rejected = roundMean(func(r ChurnResult) int { return r.Rejected })
	out.QoSViolations = roundMean(func(r ChurnResult) int { return r.QoSViolations })
	out.Crashes = roundMean(func(r ChurnResult) int { return r.Crashes })
	out.Evicted = roundMean(func(r ChurnResult) int { return r.Evicted })
	out.Retried = roundMean(func(r ChurnResult) int { return r.Retried })
	out.Recovered = roundMean(func(r ChurnResult) int { return r.Recovered })
	out.Lost = roundMean(func(r ChurnResult) int { return r.Lost })
	out.DegradedSessionEpochs = roundMean(func(r ChurnResult) int { return r.DegradedSessionEpochs })
	out.OfferedSessionEpochs = roundMean(func(r ChurnResult) int { return r.OfferedSessionEpochs })
	out.CompliantSessionEpochs = roundMean(func(r ChurnResult) int { return r.CompliantSessionEpochs })
	out.MeanActive, out.MeanPowerWatts, out.Availability = 0, 0, 0
	rtts := make([]stats.Summary, 0, len(reps))
	for _, r := range reps {
		out.MeanActive += r.Churn.MeanActive * inv
		out.MeanPowerWatts += r.Churn.MeanPowerWatts * inv
		out.Availability += r.Churn.Availability * inv
		if r.Churn.RTT.N > 0 {
			rtts = append(rtts, r.Churn.RTT)
		}
	}
	out.RTT = exp.PoolSummaries(rtts)

	for ei := range out.Epochs {
		e := EpochResult{Epoch: ei}
		sums := struct{ arr, dep, mig, rej, act, off, crash, evict, retry, rec, degr, qos, watts float64 }{}
		ertts := make([]stats.Summary, 0, len(reps))
		for _, r := range reps {
			re := r.Churn.Epochs[ei]
			sums.arr += float64(re.Arrivals) * inv
			sums.off += float64(re.OfferedSessionEpochs) * inv
			sums.dep += float64(re.Departures) * inv
			sums.mig += float64(re.Migrations) * inv
			sums.rej += float64(re.Rejected) * inv
			sums.act += float64(re.Active) * inv
			sums.crash += float64(re.Crashes) * inv
			sums.evict += float64(re.Evicted) * inv
			sums.retry += float64(re.Retried) * inv
			sums.rec += float64(re.Recovered) * inv
			sums.degr += float64(re.Degraded) * inv
			sums.qos += float64(re.QoSViolations) * inv
			sums.watts += re.PowerWatts * inv
			if re.RTT.N > 0 {
				ertts = append(ertts, re.RTT)
			}
		}
		e.Arrivals = int(sums.arr + 0.5)
		e.Departures = int(sums.dep + 0.5)
		e.Migrations = int(sums.mig + 0.5)
		e.Rejected = int(sums.rej + 0.5)
		e.Active = int(sums.act + 0.5)
		e.OfferedSessionEpochs = int(sums.off + 0.5)
		e.Crashes = int(sums.crash + 0.5)
		e.Evicted = int(sums.evict + 0.5)
		e.Retried = int(sums.retry + 0.5)
		e.Recovered = int(sums.rec + 0.5)
		e.Degraded = int(sums.degr + 0.5)
		e.QoSViolations = int(sums.qos + 0.5)
		e.PowerWatts = sums.watts
		e.RTT = exp.PoolSummaries(ertts)
		// Occupancy rows keep the first repetition's snapshot: the rows
		// are a placement trace (who sat where, at what tier), and
		// averaging placements across independently-seeded repetitions
		// would blur machine identities into meaningless fractions.
		e.Occupancy = out.Epochs[ei].Occupancy
		out.Epochs[ei] = e
	}
	return out
}

// churnTrial builds the runner trial for a churn shape with the
// config's windows and pinned seed.
func churnTrial(shape exp.FleetShape, cfg ExperimentConfig) exp.Trial {
	t := exp.FleetTrial(shape)
	t.Warmup, t.Measure, t.Seed = cfg.WarmupSeconds, cfg.Seconds, cfg.Seed
	pol := shape.Policy
	if pol == "" {
		pol = fleet.PolicyRoundRobin
	}
	mix := shape.Mix
	if mix == "" {
		mix = string(fleet.MixSuite)
	}
	mode := "static"
	if shape.Migrate {
		mode = "migrate"
	}
	if shape.Faulty() {
		mode += "+faults"
	}
	if shape.RetryAttempts > 0 {
		mode += "+retry"
	}
	if shape.Degrade {
		mode += "+degrade"
	}
	t.ID = fmt.Sprintf("churn/%s/%s/m%d×e%d/%s", pol, mix, shape.Machines, shape.Epochs, mode)
	return t
}

// churnModeLabel names an executed churn variant from the result's
// echoed knobs, matching churnTrial's ID suffix: placement mode first,
// then the robustness knobs that were on.
func churnModeLabel(r ChurnResult) string {
	mode := "static"
	if r.Migrate {
		mode = "migrate"
	}
	if r.Faulty {
		mode += "+faults"
	}
	if r.Retry {
		mode += "+retry"
	}
	if r.Degrade {
		mode += "+degrade"
	}
	return mode
}

// RunFleetChurn drives the shape's fleet through its churn horizon —
// Poisson arrivals, exponential session departures and (when enabled)
// RTT-driven migration — reporting per-epoch QoS, migration and power
// rows plus horizon rollups. With cfg.Reps > 1 both the rollups and the
// per-epoch rows aggregate across derived seeds (see mergeChurn).
// Invalid policy, mix, core-class or churn parameters panic immediately
// (the vocabulary is fixed — see validateFleetShape).
func RunFleetChurn(shape exp.FleetShape, cfg ExperimentConfig) ChurnResult {
	if !shape.Churn() {
		panic(fmt.Sprintf("core: RunFleetChurn needs a churn shape (Epochs >= 1, got %d); use RunFleetConsolidation for one-shot admission", shape.Epochs))
	}
	validateFleetShape(shape)
	return mergeChurn(RunTrials([]exp.Trial{churnTrial(shape, cfg)}, cfg)[0])
}

// RunChurnComparison runs the shape twice as one batch on the parallel
// runner — static placement (no migration) and with the migration
// controller — and returns {static, migrated}. Both trials churn the
// identical tenant population (the arrival schedule is derived from the
// config seed and the schedule parameters only), so the delta is the
// controller's doing, not stream luck.
func RunChurnComparison(shape exp.FleetShape, cfg ExperimentConfig) []ChurnResult {
	if !shape.Churn() {
		panic(fmt.Sprintf("core: RunChurnComparison needs a churn shape (Epochs >= 1, got %d); use RunFleetComparison for one-shot admission", shape.Epochs))
	}
	validateFleetShape(shape)
	trials := churnComparisonTrials(shape, cfg)
	all := RunTrials(trials, cfg)
	return []ChurnResult{mergeChurn(all[0]), mergeChurn(all[1])}
}

// churnComparisonTrials is the comparison's trial batch — {static,
// migrated} over the identical tenant population. Shared with the
// benchmark service's spec lowering so a served "churn" job runs
// exactly the CLI's batch.
func churnComparisonTrials(shape exp.FleetShape, cfg ExperimentConfig) []exp.Trial {
	static, migrated := shape, shape
	static.Migrate = false
	migrated.Migrate = true
	return []exp.Trial{churnTrial(static, cfg), churnTrial(migrated, cfg)}
}

// ChurnTable renders one churn outcome as per-epoch rows — session
// lifecycle (admission loss included: rejected, crash/evict, failover
// retries and recoveries, brown-out gauge), QoS violations,
// interactivity and fleet power — followed by the horizon rollup line
// with the availability metric, so loss is visible, not write-only
// bookkeeping.
func ChurnTable(r ChurnResult) string {
	t := stats.NewTable("epoch", "active", "arrive", "depart", "migrate", "reject",
		"crash", "evict", "retry", "recover", "degraded",
		"QoS-viol", "RTT mean", "RTT p99", "fleet W")
	for _, e := range r.Epochs {
		t.Row(
			fmt.Sprintf("%d", e.Epoch),
			fmt.Sprintf("%d", e.Active),
			fmt.Sprintf("%d", e.Arrivals),
			fmt.Sprintf("%d", e.Departures),
			fmt.Sprintf("%d", e.Migrations),
			fmt.Sprintf("%d", e.Rejected),
			fmt.Sprintf("%d", e.Crashes),
			fmt.Sprintf("%d", e.Evicted),
			fmt.Sprintf("%d", e.Retried),
			fmt.Sprintf("%d", e.Recovered),
			fmt.Sprintf("%d", e.Degraded),
			fmt.Sprintf("%d", e.QoSViolations),
			fmt.Sprintf("%.1f ms", e.RTT.Mean),
			fmt.Sprintf("%.1f ms", e.RTT.P99),
			fmt.Sprintf("%.1f", e.PowerWatts))
	}
	return t.String() + fmt.Sprintf(
		"availability %.1f%% (%d/%d compliant session-epochs) · rejected %d · retried %d · recovered %d · lost %d\n",
		100*r.Availability, r.CompliantSessionEpochs, r.OfferedSessionEpochs,
		r.Rejected, r.Retried, r.Recovered, r.Lost)
}

// OccupancyTable renders the per-(machine, epoch) occupancy rows of a
// churn result recorded with OccupancyDetail — the textual form of the
// placement heatmap: one row per machine-epoch with state, residency,
// fidelity tier and measurements. Empty when the shape did not opt in.
func OccupancyTable(r ChurnResult) string {
	t := stats.NewTable("epoch", "machine", "state", "residents", "degraded",
		"demand", "tier", "RTT mean", "W")
	for _, e := range r.Epochs {
		for _, o := range e.Occupancy {
			state := "up"
			switch o.State {
			case fleet.MachineDown:
				state = "down"
			case fleet.MachineCold:
				state = "cold"
			}
			tier := "full"
			if o.Surrogate {
				tier = "surrogate"
			}
			t.Row(
				fmt.Sprintf("%d", e.Epoch),
				fmt.Sprintf("%d", o.Machine),
				state,
				fmt.Sprintf("%d", o.Residents),
				fmt.Sprintf("%d", o.Degraded),
				fmt.Sprintf("%.2f", o.Demand),
				tier,
				fmt.Sprintf("%.1f ms", o.RTTMean),
				fmt.Sprintf("%.1f", o.PowerWatts))
		}
	}
	return t.String()
}

// ChurnComparisonTable renders churn outcomes side by side (one row per
// variant: static vs migrate, drop-on-failure vs retry/degrade) — the
// "does the controller pay" table, with the availability headline.
func ChurnComparisonTable(rs []ChurnResult) string {
	t := stats.NewTable("mode", "arrivals", "rejected", "migrations", "crashes",
		"evicted", "retried", "recovered", "lost", "QoS-viol", "avail",
		"RTT mean", "RTT p99", "mean W")
	for _, r := range rs {
		t.Row(churnModeLabel(r),
			fmt.Sprintf("%d", r.Arrivals),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%d", r.Crashes),
			fmt.Sprintf("%d", r.Evicted),
			fmt.Sprintf("%d", r.Retried),
			fmt.Sprintf("%d", r.Recovered),
			fmt.Sprintf("%d", r.Lost),
			fmt.Sprintf("%d", r.QoSViolations),
			fmt.Sprintf("%.1f%%", 100*r.Availability),
			fmt.Sprintf("%.1f ms", r.RTT.Mean),
			fmt.Sprintf("%.1f ms", r.RTT.P99),
			fmt.Sprintf("%.1f", r.MeanPowerWatts))
	}
	return t.String()
}
