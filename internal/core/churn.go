package core

import (
	"fmt"
	"sort"

	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/sim"
	"pictor/internal/stats"
)

// EpochResult is one churn epoch's fleet-wide outcome: the lifecycle
// events that happened in the epoch plus the measurements of the
// sessions that executed in it.
type EpochResult struct {
	// Epoch is the epoch index.
	Epoch int
	// Arrivals..Rejected count the epoch's lifecycle events (Rejected
	// arrivals found no feasible machine; Migrations were triggered by
	// this epoch's measurements and take effect next epoch).
	Arrivals   int
	Departures int
	Migrations int
	Rejected   int
	// Active is how many sessions actually executed this epoch.
	Active int
	// Crashes and Evicted count fault injection: machines that went
	// down this epoch and the resident sessions they force-released.
	Crashes int
	Evicted int
	// Retried and Recovered count failover: matured retry attempts
	// this epoch and how many of them were re-admitted.
	Retried   int
	Recovered int
	// Degraded is a gauge: how many of the epoch's executed sessions
	// ran below full fidelity (brown-out tiers).
	Degraded int
	// QoSViolations counts executed instances below the 25-FPS floor.
	QoSViolations int
	// PowerWatts is fleet wall power over the epoch, idle machines
	// included.
	PowerWatts float64
	// RTT pools every executed instance's RTT distribution.
	RTT stats.Summary
}

// ChurnResult is the outcome of one epoch-based churn trial: per-epoch
// rows plus horizon-wide rollups.
type ChurnResult struct {
	// Policy, Mix and Migrate echo the executed shape.
	Policy  string
	Mix     string
	Migrate bool
	// Faulty, Retry and Degrade echo the shape's robustness knobs
	// (fault injection on, failover on, brown-out tiers on).
	Faulty  bool
	Retry   bool
	Degrade bool
	// Epochs holds one row per epoch, in order.
	Epochs []EpochResult
	// Totals over the horizon.
	Arrivals      int
	Departures    int
	Migrations    int
	Rejected      int
	QoSViolations int
	// Fault/failover totals over the horizon. Lost counts sessions
	// that were rejected or evicted and never came back (retries
	// exhausted, or the tenant departed first); DegradedSessionEpochs
	// sums the per-epoch Degraded gauge.
	Crashes               int
	Evicted               int
	Retried               int
	Recovered             int
	Lost                  int
	DegradedSessionEpochs int
	// Availability is the robustness headline: QoS-compliant
	// session-epochs over offered session-epochs. Offered counts every
	// epoch each scheduled arrival wanted service inside the horizon
	// (whether admitted or not); compliant counts executed
	// session-epochs that met the 25-FPS floor.
	OfferedSessionEpochs   int
	CompliantSessionEpochs int
	Availability           float64
	// MeanActive and MeanPowerWatts average the per-epoch session
	// count and fleet power over the horizon.
	MeanActive     float64
	MeanPowerWatts float64
	// RTT pools every executed instance's RTT distribution across all
	// epochs.
	RTT stats.Summary
	// RepsMerged is how many repetitions the scalars aggregate (1 = a
	// single execution; per-epoch rows average across reps — epochs
	// align, because the horizon is part of the shape).
	RepsMerged int
}

// executeFleetChurn lowers a churn-shaped trial onto an epoch loop:
// depart due sessions, place this epoch's Poisson arrivals, execute
// every machine as its own cluster with a seed derived per (machine,
// epoch), measure per-machine RTT, and hand machines that violate the
// QoS RTT ceiling to the migration controller for the next epoch. The
// loop runs sequentially inside the one execution unit — the runner
// already shards trials across workers — so churn sweeps stay
// byte-identical at any parallelism level.
func executeFleetChurn(t exp.Trial, u exp.Unit) *ChurnResult {
	sh := *t.Fleet
	// Like the one-shot stream, the arrival schedule must be derived
	// policy- and migration-independently: the unit seed encodes the
	// trial key (which names both), so a migration-vs-static comparison
	// seeded from it would churn two *different* tenant populations.
	// Deriving from the pinned trial seed and the schedule's own
	// parameters keeps the populations matched (and distinct per rep);
	// with no pinned seed ("-seed 0", derive-everything mode) the
	// grid's base seed — key-independent by construction — fills in,
	// never the key-derived u.Seed.
	streamBase := t.Seed
	if streamBase == 0 {
		streamBase = u.Base
	}
	suite := resolveShapeProfiles(t.ID, sh.Profiles)
	// Like the one-shot stream key, the workload subset joins only when
	// set, so pre-registry schedules derive their historical seeds.
	streamKey := fmt.Sprintf("fleet/churn|%s|rate=%g|dur=%g|epochs=%d",
		sh.Mix, sh.ArrivalRate, sh.MeanSessionEpochs, sh.Epochs)
	if sh.Profiles != "" {
		streamKey += "|profiles=" + sh.Profiles
	}
	stream, err := fleet.ChurnStreamFrom(suite, fleet.Mix(sh.Mix), sh.ArrivalRate, sh.MeanSessionEpochs,
		sh.Epochs, exp.DeriveSeed(streamBase, streamKey, u.Rep))
	if err != nil {
		panic(fmt.Sprintf("core: churn trial %q: %v", t.ID, err))
	}

	pol := fleetPolicy(t.ID, sh.Policy, suite)
	f := buildFleet(t.ID, sh)
	c := fleet.NewChurn(f, pol)
	c.Retry = fleet.RetryPolicy{MaxAttempts: sh.RetryAttempts, BackoffEpochs: sh.RetryBackoffEpochs}

	// Fault schedule: like the arrival schedule, derived from the
	// stream base and the fault parameters only — never the key-derived
	// unit seed — so a drop-on-failure vs retry/degrade comparison (and
	// every policy/migration variant) crashes the identical machines at
	// the identical epochs, and the delta is the recovery's doing.
	var timeline [][]fleet.MachineState
	if sh.Faulty() {
		faultKey := fmt.Sprintf("fleet/faults|mtbf=%g|mttr=%g|m=%d|epochs=%d",
			sh.MTBFEpochs, sh.MTTREpochs, len(f.Machines), sh.Epochs)
		tl, ferr := fleet.FaultStream(len(f.Machines), sh.MTBFEpochs, sh.MTTREpochs,
			sh.Epochs, exp.DeriveSeed(streamBase, faultKey, u.Rep))
		if ferr != nil {
			panic(fmt.Sprintf("core: churn trial %q: %v", t.ID, ferr))
		}
		timeline = tl
	}

	out := &ChurnResult{
		Policy:     pol.Name(),
		Mix:        string(sh.Mix),
		Migrate:    sh.Migrate,
		Faulty:     sh.Faulty(),
		Retry:      sh.RetryAttempts > 0,
		Degrade:    sh.Degrade,
		Epochs:     make([]EpochResult, 0, sh.Epochs),
		RepsMerged: 1,
	}
	if out.Mix == "" {
		out.Mix = string(fleet.MixSuite)
	}
	// Offered session-epochs: every epoch each scheduled tenant wants
	// service inside the horizon — the availability denominator, a pure
	// function of the stream so every variant shares it.
	for _, arr := range stream {
		for _, s := range arr {
			end := s.Departs
			if end > sh.Epochs {
				end = sh.Epochs
			}
			out.OfferedSessionEpochs += end - s.Arrive
		}
	}

	var allRTTs []stats.Summary
	for e := 0; e < sh.Epochs; e++ {
		er := EpochResult{Epoch: e}
		er.Departures = c.DepartDue(e)
		// Apply this epoch's fault states. A machine entering Down
		// crashes: its residents are force-released into the failover
		// queue (or lost, with retries off). Repaired machines pass
		// through a cold-start epoch before taking placements again.
		if timeline != nil {
			for mi, m := range f.Machines {
				st := timeline[mi][e]
				if st == fleet.MachineDown && m.State != fleet.MachineDown {
					er.Crashes++
					m.State = st
					er.Evicted += c.EvictAll(mi, e)
					continue
				}
				m.State = st
			}
		}
		er.Retried, er.Recovered = c.RetryDue(e)
		for _, s := range stream[e] {
			er.Arrivals++
			if !c.Offer(s, e) {
				er.Rejected++
			}
		}
		er.Active = c.Active
		for mi := range f.Machines {
			er.Degraded += c.DegradedResidents(mi)
		}

		// Execute: one cluster per machine, idle machines included (an
		// empty cluster still burns idle watts — consolidation's whole
		// power argument rests on that). Crashed machines are the one
		// exception: down means powered off, so they burn nothing and
		// measure nothing.
		machineRTT := make([]stats.Summary, len(f.Machines))
		var epochRTTs []stats.Summary
		for mi, m := range f.Machines {
			if m.State == fleet.MachineDown {
				continue
			}
			// Per-(machine, epoch) seeds derive from the stream base —
			// not the unit seed, which encodes policy and Migrate — so
			// a migration-vs-static (or policy) comparison runs matched
			// execution noise and the delta is the placement's doing.
			// Mixing in u.Rep keeps repetitions independent.
			cl := NewCluster(Options{
				Seed:  exp.DeriveSeed(streamBase, fmt.Sprintf("fleet/churn/m%d/e%d", mi, e), u.Rep),
				Cores: int(m.Cores + 0.5),
			})
			for _, prof := range m.Placed {
				cl.AddInstance(NewInstanceConfig(prof, HumanDriver()))
			}
			cl.Run(sim.DurationOfSeconds(t.Warmup), sim.DurationOfSeconds(t.Measure))
			er.PowerWatts += cl.TotalPowerWatts()

			var rtts []stats.Summary
			for _, inst := range cl.Instances {
				r := inst.Result()
				if r.ClientFPS < fleet.QoSMinFPS {
					er.QoSViolations++
				}
				if r.RTT.N > 0 {
					rtts = append(rtts, r.RTT)
				}
			}
			machineRTT[mi] = exp.PoolSummaries(rtts)
			epochRTTs = append(epochRTTs, rtts...)
		}
		er.RTT = exp.PoolSummaries(epochRTTs)
		allRTTs = append(allRTTs, epochRTTs...)

		// React: this epoch's measurements pick the machines over the
		// QoS ceiling (worst measured RTT first). With brown-out tiers
		// enabled a violator first degrades its heaviest resident —
		// quality sheds before anyone is moved or dropped — and only
		// falls back to the migration controller when every resident is
		// already at the deepest tier. Machines measuring below the
		// all-clear threshold restore one degraded resident per epoch.
		// The moves and tier changes land before the next epoch
		// executes; the final epoch skips the controllers — there is no
		// next epoch for them to help.
		if (sh.Migrate || sh.Degrade) && e < sh.Epochs-1 {
			rtt := make([]float64, len(f.Machines))
			violators := make([]int, 0, len(f.Machines))
			for mi := range f.Machines {
				if machineRTT[mi].N > 0 {
					rtt[mi] = machineRTT[mi].Mean
					if rtt[mi] > fleet.QoSMaxRTTMs {
						violators = append(violators, mi)
					}
				}
			}
			sort.SliceStable(violators, func(a, b int) bool {
				return rtt[violators[a]] > rtt[violators[b]]
			})
			for _, mi := range violators {
				if sh.Degrade && c.DegradeToFit(mi) > 0 {
					continue
				}
				if sh.Migrate && c.MigrateOff(mi, rtt) {
					er.Migrations++
				}
			}
			if sh.Degrade {
				for mi := range f.Machines {
					if machineRTT[mi].N > 0 && rtt[mi] < fleet.QoSClearRTTMs {
						c.UpgradeOne(mi)
					}
				}
			}
		}

		out.Epochs = append(out.Epochs, er)
		out.Arrivals += er.Arrivals
		out.Departures += er.Departures
		out.Migrations += er.Migrations
		out.Rejected += er.Rejected
		out.QoSViolations += er.QoSViolations
		out.Crashes += er.Crashes
		out.Evicted += er.Evicted
		out.Retried += er.Retried
		out.Recovered += er.Recovered
		out.DegradedSessionEpochs += er.Degraded
		out.CompliantSessionEpochs += er.Active - er.QoSViolations
		out.MeanActive += float64(er.Active) / float64(sh.Epochs)
		out.MeanPowerWatts += er.PowerWatts / float64(sh.Epochs)
	}
	out.Lost = c.Lost
	if out.OfferedSessionEpochs > 0 {
		out.Availability = float64(out.CompliantSessionEpochs) / float64(out.OfferedSessionEpochs)
	}
	out.RTT = exp.PoolSummaries(allRTTs)
	return out
}

// mergeChurn folds a churn trial's repetitions: scalar rollups average,
// RTT distributions pool, and — unlike mergeFleet's per-machine rows —
// the per-epoch rows aggregate too, because the horizon is part of the
// shape and epochs therefore align across repetitions.
func mergeChurn(reps []TrialResult) ChurnResult {
	out := *reps[0].Churn
	out.RepsMerged = len(reps)
	out.Epochs = append([]EpochResult(nil), out.Epochs...)
	if len(reps) == 1 {
		return out
	}
	inv := 1 / float64(len(reps))
	roundMean := func(f func(ChurnResult) int) int {
		sum := 0.0
		for _, r := range reps {
			sum += float64(f(*r.Churn)) * inv
		}
		return int(sum + 0.5)
	}
	out.Arrivals = roundMean(func(r ChurnResult) int { return r.Arrivals })
	out.Departures = roundMean(func(r ChurnResult) int { return r.Departures })
	out.Migrations = roundMean(func(r ChurnResult) int { return r.Migrations })
	out.Rejected = roundMean(func(r ChurnResult) int { return r.Rejected })
	out.QoSViolations = roundMean(func(r ChurnResult) int { return r.QoSViolations })
	out.Crashes = roundMean(func(r ChurnResult) int { return r.Crashes })
	out.Evicted = roundMean(func(r ChurnResult) int { return r.Evicted })
	out.Retried = roundMean(func(r ChurnResult) int { return r.Retried })
	out.Recovered = roundMean(func(r ChurnResult) int { return r.Recovered })
	out.Lost = roundMean(func(r ChurnResult) int { return r.Lost })
	out.DegradedSessionEpochs = roundMean(func(r ChurnResult) int { return r.DegradedSessionEpochs })
	out.OfferedSessionEpochs = roundMean(func(r ChurnResult) int { return r.OfferedSessionEpochs })
	out.CompliantSessionEpochs = roundMean(func(r ChurnResult) int { return r.CompliantSessionEpochs })
	out.MeanActive, out.MeanPowerWatts, out.Availability = 0, 0, 0
	rtts := make([]stats.Summary, 0, len(reps))
	for _, r := range reps {
		out.MeanActive += r.Churn.MeanActive * inv
		out.MeanPowerWatts += r.Churn.MeanPowerWatts * inv
		out.Availability += r.Churn.Availability * inv
		if r.Churn.RTT.N > 0 {
			rtts = append(rtts, r.Churn.RTT)
		}
	}
	out.RTT = exp.PoolSummaries(rtts)

	for ei := range out.Epochs {
		e := EpochResult{Epoch: ei}
		sums := struct{ arr, dep, mig, rej, act, crash, evict, retry, rec, degr, qos, watts float64 }{}
		ertts := make([]stats.Summary, 0, len(reps))
		for _, r := range reps {
			re := r.Churn.Epochs[ei]
			sums.arr += float64(re.Arrivals) * inv
			sums.dep += float64(re.Departures) * inv
			sums.mig += float64(re.Migrations) * inv
			sums.rej += float64(re.Rejected) * inv
			sums.act += float64(re.Active) * inv
			sums.crash += float64(re.Crashes) * inv
			sums.evict += float64(re.Evicted) * inv
			sums.retry += float64(re.Retried) * inv
			sums.rec += float64(re.Recovered) * inv
			sums.degr += float64(re.Degraded) * inv
			sums.qos += float64(re.QoSViolations) * inv
			sums.watts += re.PowerWatts * inv
			if re.RTT.N > 0 {
				ertts = append(ertts, re.RTT)
			}
		}
		e.Arrivals = int(sums.arr + 0.5)
		e.Departures = int(sums.dep + 0.5)
		e.Migrations = int(sums.mig + 0.5)
		e.Rejected = int(sums.rej + 0.5)
		e.Active = int(sums.act + 0.5)
		e.Crashes = int(sums.crash + 0.5)
		e.Evicted = int(sums.evict + 0.5)
		e.Retried = int(sums.retry + 0.5)
		e.Recovered = int(sums.rec + 0.5)
		e.Degraded = int(sums.degr + 0.5)
		e.QoSViolations = int(sums.qos + 0.5)
		e.PowerWatts = sums.watts
		e.RTT = exp.PoolSummaries(ertts)
		out.Epochs[ei] = e
	}
	return out
}

// churnTrial builds the runner trial for a churn shape with the
// config's windows and pinned seed.
func churnTrial(shape exp.FleetShape, cfg ExperimentConfig) exp.Trial {
	t := exp.FleetTrial(shape)
	t.Warmup, t.Measure, t.Seed = cfg.WarmupSeconds, cfg.Seconds, cfg.Seed
	pol := shape.Policy
	if pol == "" {
		pol = fleet.PolicyRoundRobin
	}
	mix := shape.Mix
	if mix == "" {
		mix = string(fleet.MixSuite)
	}
	mode := "static"
	if shape.Migrate {
		mode = "migrate"
	}
	if shape.Faulty() {
		mode += "+faults"
	}
	if shape.RetryAttempts > 0 {
		mode += "+retry"
	}
	if shape.Degrade {
		mode += "+degrade"
	}
	t.ID = fmt.Sprintf("churn/%s/%s/m%d×e%d/%s", pol, mix, shape.Machines, shape.Epochs, mode)
	return t
}

// churnModeLabel names an executed churn variant from the result's
// echoed knobs, matching churnTrial's ID suffix: placement mode first,
// then the robustness knobs that were on.
func churnModeLabel(r ChurnResult) string {
	mode := "static"
	if r.Migrate {
		mode = "migrate"
	}
	if r.Faulty {
		mode += "+faults"
	}
	if r.Retry {
		mode += "+retry"
	}
	if r.Degrade {
		mode += "+degrade"
	}
	return mode
}

// RunFleetChurn drives the shape's fleet through its churn horizon —
// Poisson arrivals, exponential session departures and (when enabled)
// RTT-driven migration — reporting per-epoch QoS, migration and power
// rows plus horizon rollups. With cfg.Reps > 1 both the rollups and the
// per-epoch rows aggregate across derived seeds (see mergeChurn).
// Invalid policy, mix, core-class or churn parameters panic immediately
// (the vocabulary is fixed — see validateFleetShape).
func RunFleetChurn(shape exp.FleetShape, cfg ExperimentConfig) ChurnResult {
	if !shape.Churn() {
		panic(fmt.Sprintf("core: RunFleetChurn needs a churn shape (Epochs >= 1, got %d); use RunFleetConsolidation for one-shot admission", shape.Epochs))
	}
	validateFleetShape(shape)
	return mergeChurn(RunTrials([]exp.Trial{churnTrial(shape, cfg)}, cfg)[0])
}

// RunChurnComparison runs the shape twice as one batch on the parallel
// runner — static placement (no migration) and with the migration
// controller — and returns {static, migrated}. Both trials churn the
// identical tenant population (the arrival schedule is derived from the
// config seed and the schedule parameters only), so the delta is the
// controller's doing, not stream luck.
func RunChurnComparison(shape exp.FleetShape, cfg ExperimentConfig) []ChurnResult {
	if !shape.Churn() {
		panic(fmt.Sprintf("core: RunChurnComparison needs a churn shape (Epochs >= 1, got %d); use RunFleetComparison for one-shot admission", shape.Epochs))
	}
	validateFleetShape(shape)
	trials := churnComparisonTrials(shape, cfg)
	all := RunTrials(trials, cfg)
	return []ChurnResult{mergeChurn(all[0]), mergeChurn(all[1])}
}

// churnComparisonTrials is the comparison's trial batch — {static,
// migrated} over the identical tenant population. Shared with the
// benchmark service's spec lowering so a served "churn" job runs
// exactly the CLI's batch.
func churnComparisonTrials(shape exp.FleetShape, cfg ExperimentConfig) []exp.Trial {
	static, migrated := shape, shape
	static.Migrate = false
	migrated.Migrate = true
	return []exp.Trial{churnTrial(static, cfg), churnTrial(migrated, cfg)}
}

// ChurnTable renders one churn outcome as per-epoch rows — session
// lifecycle (admission loss included: rejected, crash/evict, failover
// retries and recoveries, brown-out gauge), QoS violations,
// interactivity and fleet power — followed by the horizon rollup line
// with the availability metric, so loss is visible, not write-only
// bookkeeping.
func ChurnTable(r ChurnResult) string {
	t := stats.NewTable("epoch", "active", "arrive", "depart", "migrate", "reject",
		"crash", "evict", "retry", "recover", "degraded",
		"QoS-viol", "RTT mean", "RTT p99", "fleet W")
	for _, e := range r.Epochs {
		t.Row(
			fmt.Sprintf("%d", e.Epoch),
			fmt.Sprintf("%d", e.Active),
			fmt.Sprintf("%d", e.Arrivals),
			fmt.Sprintf("%d", e.Departures),
			fmt.Sprintf("%d", e.Migrations),
			fmt.Sprintf("%d", e.Rejected),
			fmt.Sprintf("%d", e.Crashes),
			fmt.Sprintf("%d", e.Evicted),
			fmt.Sprintf("%d", e.Retried),
			fmt.Sprintf("%d", e.Recovered),
			fmt.Sprintf("%d", e.Degraded),
			fmt.Sprintf("%d", e.QoSViolations),
			fmt.Sprintf("%.1f ms", e.RTT.Mean),
			fmt.Sprintf("%.1f ms", e.RTT.P99),
			fmt.Sprintf("%.1f", e.PowerWatts))
	}
	return t.String() + fmt.Sprintf(
		"availability %.1f%% (%d/%d compliant session-epochs) · rejected %d · retried %d · recovered %d · lost %d\n",
		100*r.Availability, r.CompliantSessionEpochs, r.OfferedSessionEpochs,
		r.Rejected, r.Retried, r.Recovered, r.Lost)
}

// ChurnComparisonTable renders churn outcomes side by side (one row per
// variant: static vs migrate, drop-on-failure vs retry/degrade) — the
// "does the controller pay" table, with the availability headline.
func ChurnComparisonTable(rs []ChurnResult) string {
	t := stats.NewTable("mode", "arrivals", "rejected", "migrations", "crashes",
		"evicted", "retried", "recovered", "lost", "QoS-viol", "avail",
		"RTT mean", "RTT p99", "mean W")
	for _, r := range rs {
		t.Row(churnModeLabel(r),
			fmt.Sprintf("%d", r.Arrivals),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%d", r.Crashes),
			fmt.Sprintf("%d", r.Evicted),
			fmt.Sprintf("%d", r.Retried),
			fmt.Sprintf("%d", r.Recovered),
			fmt.Sprintf("%d", r.Lost),
			fmt.Sprintf("%d", r.QoSViolations),
			fmt.Sprintf("%.1f%%", 100*r.Availability),
			fmt.Sprintf("%.1f ms", r.RTT.Mean),
			fmt.Sprintf("%.1f ms", r.RTT.P99),
			fmt.Sprintf("%.1f", r.MeanPowerWatts))
	}
	return t.String()
}
