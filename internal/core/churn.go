package core

import (
	"fmt"
	"sort"

	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/sim"
	"pictor/internal/stats"
)

// EpochResult is one churn epoch's fleet-wide outcome: the lifecycle
// events that happened in the epoch plus the measurements of the
// sessions that executed in it.
type EpochResult struct {
	// Epoch is the epoch index.
	Epoch int
	// Arrivals..Rejected count the epoch's lifecycle events (Rejected
	// arrivals found no feasible machine; Migrations were triggered by
	// this epoch's measurements and take effect next epoch).
	Arrivals   int
	Departures int
	Migrations int
	Rejected   int
	// Active is how many sessions actually executed this epoch.
	Active int
	// QoSViolations counts executed instances below the 25-FPS floor.
	QoSViolations int
	// PowerWatts is fleet wall power over the epoch, idle machines
	// included.
	PowerWatts float64
	// RTT pools every executed instance's RTT distribution.
	RTT stats.Summary
}

// ChurnResult is the outcome of one epoch-based churn trial: per-epoch
// rows plus horizon-wide rollups.
type ChurnResult struct {
	// Policy, Mix and Migrate echo the executed shape.
	Policy  string
	Mix     string
	Migrate bool
	// Epochs holds one row per epoch, in order.
	Epochs []EpochResult
	// Totals over the horizon.
	Arrivals      int
	Departures    int
	Migrations    int
	Rejected      int
	QoSViolations int
	// MeanActive and MeanPowerWatts average the per-epoch session
	// count and fleet power over the horizon.
	MeanActive     float64
	MeanPowerWatts float64
	// RTT pools every executed instance's RTT distribution across all
	// epochs.
	RTT stats.Summary
	// RepsMerged is how many repetitions the scalars aggregate (1 = a
	// single execution; per-epoch rows average across reps — epochs
	// align, because the horizon is part of the shape).
	RepsMerged int
}

// executeFleetChurn lowers a churn-shaped trial onto an epoch loop:
// depart due sessions, place this epoch's Poisson arrivals, execute
// every machine as its own cluster with a seed derived per (machine,
// epoch), measure per-machine RTT, and hand machines that violate the
// QoS RTT ceiling to the migration controller for the next epoch. The
// loop runs sequentially inside the one execution unit — the runner
// already shards trials across workers — so churn sweeps stay
// byte-identical at any parallelism level.
func executeFleetChurn(t exp.Trial, u exp.Unit) *ChurnResult {
	sh := *t.Fleet
	// Like the one-shot stream, the arrival schedule must be derived
	// policy- and migration-independently: the unit seed encodes the
	// trial key (which names both), so a migration-vs-static comparison
	// seeded from it would churn two *different* tenant populations.
	// Deriving from the pinned trial seed and the schedule's own
	// parameters keeps the populations matched (and distinct per rep);
	// with no pinned seed ("-seed 0", derive-everything mode) the
	// grid's base seed — key-independent by construction — fills in,
	// never the key-derived u.Seed.
	streamBase := t.Seed
	if streamBase == 0 {
		streamBase = u.Base
	}
	suite := resolveShapeProfiles(t.ID, sh.Profiles)
	// Like the one-shot stream key, the workload subset joins only when
	// set, so pre-registry schedules derive their historical seeds.
	streamKey := fmt.Sprintf("fleet/churn|%s|rate=%g|dur=%g|epochs=%d",
		sh.Mix, sh.ArrivalRate, sh.MeanSessionEpochs, sh.Epochs)
	if sh.Profiles != "" {
		streamKey += "|profiles=" + sh.Profiles
	}
	stream, err := fleet.ChurnStreamFrom(suite, fleet.Mix(sh.Mix), sh.ArrivalRate, sh.MeanSessionEpochs,
		sh.Epochs, exp.DeriveSeed(streamBase, streamKey, u.Rep))
	if err != nil {
		panic(fmt.Sprintf("core: churn trial %q: %v", t.ID, err))
	}

	pol := fleetPolicy(t.ID, sh.Policy, suite)
	f := buildFleet(t.ID, sh)
	c := fleet.NewChurn(f, pol)

	out := &ChurnResult{
		Policy:     pol.Name(),
		Mix:        string(sh.Mix),
		Migrate:    sh.Migrate,
		Epochs:     make([]EpochResult, 0, sh.Epochs),
		RepsMerged: 1,
	}
	if out.Mix == "" {
		out.Mix = string(fleet.MixSuite)
	}

	var allRTTs []stats.Summary
	for e := 0; e < sh.Epochs; e++ {
		er := EpochResult{Epoch: e}
		er.Departures = c.DepartDue(e)
		for _, s := range stream[e] {
			er.Arrivals++
			if !c.Arrive(s) {
				er.Rejected++
			}
		}
		er.Active = c.Active

		// Execute: one cluster per machine, idle machines included (an
		// empty cluster still burns idle watts — consolidation's whole
		// power argument rests on that).
		machineRTT := make([]stats.Summary, len(f.Machines))
		var epochRTTs []stats.Summary
		for mi, m := range f.Machines {
			// Per-(machine, epoch) seeds derive from the stream base —
			// not the unit seed, which encodes policy and Migrate — so
			// a migration-vs-static (or policy) comparison runs matched
			// execution noise and the delta is the placement's doing.
			// Mixing in u.Rep keeps repetitions independent.
			cl := NewCluster(Options{
				Seed:  exp.DeriveSeed(streamBase, fmt.Sprintf("fleet/churn/m%d/e%d", mi, e), u.Rep),
				Cores: int(m.Cores + 0.5),
			})
			for _, prof := range m.Placed {
				cl.AddInstance(NewInstanceConfig(prof, HumanDriver()))
			}
			cl.Run(sim.DurationOfSeconds(t.Warmup), sim.DurationOfSeconds(t.Measure))
			er.PowerWatts += cl.TotalPowerWatts()

			var rtts []stats.Summary
			for _, inst := range cl.Instances {
				r := inst.Result()
				if r.ClientFPS < fleet.QoSMinFPS {
					er.QoSViolations++
				}
				if r.RTT.N > 0 {
					rtts = append(rtts, r.RTT)
				}
			}
			machineRTT[mi] = exp.PoolSummaries(rtts)
			epochRTTs = append(epochRTTs, rtts...)
		}
		er.RTT = exp.PoolSummaries(epochRTTs)
		allRTTs = append(allRTTs, epochRTTs...)

		// Migrate: this epoch's measurements pick the sources (worst
		// measured RTT first) and the targets (lowest measured RTT that
		// fits); the moves land before the next epoch executes. The
		// final epoch skips the controller — there is no next epoch for
		// a move to help.
		if sh.Migrate && e < sh.Epochs-1 {
			rtt := make([]float64, len(f.Machines))
			violators := make([]int, 0, len(f.Machines))
			for mi := range f.Machines {
				if machineRTT[mi].N > 0 {
					rtt[mi] = machineRTT[mi].Mean
					if rtt[mi] > fleet.QoSMaxRTTMs {
						violators = append(violators, mi)
					}
				}
			}
			sort.SliceStable(violators, func(a, b int) bool {
				return rtt[violators[a]] > rtt[violators[b]]
			})
			for _, mi := range violators {
				if c.MigrateOff(mi, rtt) {
					er.Migrations++
				}
			}
		}

		out.Epochs = append(out.Epochs, er)
		out.Arrivals += er.Arrivals
		out.Departures += er.Departures
		out.Migrations += er.Migrations
		out.Rejected += er.Rejected
		out.QoSViolations += er.QoSViolations
		out.MeanActive += float64(er.Active) / float64(sh.Epochs)
		out.MeanPowerWatts += er.PowerWatts / float64(sh.Epochs)
	}
	out.RTT = exp.PoolSummaries(allRTTs)
	return out
}

// mergeChurn folds a churn trial's repetitions: scalar rollups average,
// RTT distributions pool, and — unlike mergeFleet's per-machine rows —
// the per-epoch rows aggregate too, because the horizon is part of the
// shape and epochs therefore align across repetitions.
func mergeChurn(reps []TrialResult) ChurnResult {
	out := *reps[0].Churn
	out.RepsMerged = len(reps)
	out.Epochs = append([]EpochResult(nil), out.Epochs...)
	if len(reps) == 1 {
		return out
	}
	inv := 1 / float64(len(reps))
	roundMean := func(f func(ChurnResult) int) int {
		sum := 0.0
		for _, r := range reps {
			sum += float64(f(*r.Churn)) * inv
		}
		return int(sum + 0.5)
	}
	out.Arrivals = roundMean(func(r ChurnResult) int { return r.Arrivals })
	out.Departures = roundMean(func(r ChurnResult) int { return r.Departures })
	out.Migrations = roundMean(func(r ChurnResult) int { return r.Migrations })
	out.Rejected = roundMean(func(r ChurnResult) int { return r.Rejected })
	out.QoSViolations = roundMean(func(r ChurnResult) int { return r.QoSViolations })
	out.MeanActive, out.MeanPowerWatts = 0, 0
	rtts := make([]stats.Summary, 0, len(reps))
	for _, r := range reps {
		out.MeanActive += r.Churn.MeanActive * inv
		out.MeanPowerWatts += r.Churn.MeanPowerWatts * inv
		if r.Churn.RTT.N > 0 {
			rtts = append(rtts, r.Churn.RTT)
		}
	}
	out.RTT = exp.PoolSummaries(rtts)

	for ei := range out.Epochs {
		e := EpochResult{Epoch: ei}
		sums := struct{ arr, dep, mig, rej, act, qos, watts float64 }{}
		ertts := make([]stats.Summary, 0, len(reps))
		for _, r := range reps {
			re := r.Churn.Epochs[ei]
			sums.arr += float64(re.Arrivals) * inv
			sums.dep += float64(re.Departures) * inv
			sums.mig += float64(re.Migrations) * inv
			sums.rej += float64(re.Rejected) * inv
			sums.act += float64(re.Active) * inv
			sums.qos += float64(re.QoSViolations) * inv
			sums.watts += re.PowerWatts * inv
			if re.RTT.N > 0 {
				ertts = append(ertts, re.RTT)
			}
		}
		e.Arrivals = int(sums.arr + 0.5)
		e.Departures = int(sums.dep + 0.5)
		e.Migrations = int(sums.mig + 0.5)
		e.Rejected = int(sums.rej + 0.5)
		e.Active = int(sums.act + 0.5)
		e.QoSViolations = int(sums.qos + 0.5)
		e.PowerWatts = sums.watts
		e.RTT = exp.PoolSummaries(ertts)
		out.Epochs[ei] = e
	}
	return out
}

// churnTrial builds the runner trial for a churn shape with the
// config's windows and pinned seed.
func churnTrial(shape exp.FleetShape, cfg ExperimentConfig) exp.Trial {
	t := exp.FleetTrial(shape)
	t.Warmup, t.Measure, t.Seed = cfg.WarmupSeconds, cfg.Seconds, cfg.Seed
	pol := shape.Policy
	if pol == "" {
		pol = fleet.PolicyRoundRobin
	}
	mix := shape.Mix
	if mix == "" {
		mix = string(fleet.MixSuite)
	}
	mode := "static"
	if shape.Migrate {
		mode = "migrate"
	}
	t.ID = fmt.Sprintf("churn/%s/%s/m%d×e%d/%s", pol, mix, shape.Machines, shape.Epochs, mode)
	return t
}

// RunFleetChurn drives the shape's fleet through its churn horizon —
// Poisson arrivals, exponential session departures and (when enabled)
// RTT-driven migration — reporting per-epoch QoS, migration and power
// rows plus horizon rollups. With cfg.Reps > 1 both the rollups and the
// per-epoch rows aggregate across derived seeds (see mergeChurn).
// Invalid policy, mix, core-class or churn parameters panic immediately
// (the vocabulary is fixed — see validateFleetShape).
func RunFleetChurn(shape exp.FleetShape, cfg ExperimentConfig) ChurnResult {
	if !shape.Churn() {
		panic(fmt.Sprintf("core: RunFleetChurn needs a churn shape (Epochs >= 1, got %d); use RunFleetConsolidation for one-shot admission", shape.Epochs))
	}
	validateFleetShape(shape)
	return mergeChurn(RunTrials([]exp.Trial{churnTrial(shape, cfg)}, cfg)[0])
}

// RunChurnComparison runs the shape twice as one batch on the parallel
// runner — static placement (no migration) and with the migration
// controller — and returns {static, migrated}. Both trials churn the
// identical tenant population (the arrival schedule is derived from the
// config seed and the schedule parameters only), so the delta is the
// controller's doing, not stream luck.
func RunChurnComparison(shape exp.FleetShape, cfg ExperimentConfig) []ChurnResult {
	if !shape.Churn() {
		panic(fmt.Sprintf("core: RunChurnComparison needs a churn shape (Epochs >= 1, got %d); use RunFleetComparison for one-shot admission", shape.Epochs))
	}
	validateFleetShape(shape)
	static, migrated := shape, shape
	static.Migrate = false
	migrated.Migrate = true
	trials := []exp.Trial{churnTrial(static, cfg), churnTrial(migrated, cfg)}
	all := RunTrials(trials, cfg)
	return []ChurnResult{mergeChurn(all[0]), mergeChurn(all[1])}
}

// ChurnTable renders one churn outcome as per-epoch rows: session
// lifecycle, QoS violations, interactivity and fleet power.
func ChurnTable(r ChurnResult) string {
	t := stats.NewTable("epoch", "active", "arrive", "depart", "migrate", "reject",
		"QoS-viol", "RTT mean", "RTT p99", "fleet W")
	for _, e := range r.Epochs {
		t.Row(
			fmt.Sprintf("%d", e.Epoch),
			fmt.Sprintf("%d", e.Active),
			fmt.Sprintf("%d", e.Arrivals),
			fmt.Sprintf("%d", e.Departures),
			fmt.Sprintf("%d", e.Migrations),
			fmt.Sprintf("%d", e.Rejected),
			fmt.Sprintf("%d", e.QoSViolations),
			fmt.Sprintf("%.1f ms", e.RTT.Mean),
			fmt.Sprintf("%.1f ms", e.RTT.P99),
			fmt.Sprintf("%.1f", e.PowerWatts))
	}
	return t.String()
}

// ChurnComparisonTable renders churn outcomes side by side (one row
// each, static vs migrate) — the "does migration pay" table.
func ChurnComparisonTable(rs []ChurnResult) string {
	t := stats.NewTable("mode", "arrivals", "rejected", "migrations",
		"QoS-viol", "RTT mean", "RTT p99", "mean W")
	for _, r := range rs {
		mode := "static"
		if r.Migrate {
			mode = "migrate"
		}
		t.Row(mode,
			fmt.Sprintf("%d", r.Arrivals),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%d", r.QoSViolations),
			fmt.Sprintf("%.1f ms", r.RTT.Mean),
			fmt.Sprintf("%.1f ms", r.RTT.P99),
			fmt.Sprintf("%.1f", r.MeanPowerWatts))
	}
	return t.String()
}
