package core

// Result sinks: the churn executor historically appended every epoch's
// row to ChurnResult.Epochs, which is fine at tens of epochs and fatal
// for the 10k-machine diurnal sweep — with OccupancyDetail the result
// holds O(machines × epochs) rows before anyone reads it. ChurnSink
// inverts that: the portal streams each finished epoch to an observer,
// and what the result retains is the observer's policy. The default
// in-memory sink reproduces today's ChurnResult exactly; the rollup
// sink keeps nothing but the horizon rollups (which the portal folds
// regardless); the server's CSV spill writes rows to disk as they
// close. The simulation itself never changes — a sink only decides
// where the rows land.

// ChurnSink observes one churn execution's per-epoch results as they
// close. The portal calls ObserveOccupancy (when the shape records
// occupancy rows) and then ObserveEpoch exactly once per epoch, in
// epoch order, after the epoch's controllers have reacted — the
// EpochResult is final when observed. Implementations must not retain
// the occupancy slice beyond the call unless they own a copy; the
// epoch result's embedded Occupancy field aliases it.
type ChurnSink interface {
	// ObserveEpoch receives the epoch's finished fleet-wide row.
	ObserveEpoch(e EpochResult)
	// ObserveOccupancy receives the epoch's per-machine rows when the
	// shape sets OccupancyDetail; it is never called otherwise.
	ObserveOccupancy(epoch int, rows []MachineOccupancy)
}

// ChurnSinkFactory hands out one ChurnSink per execution unit. Churn
// trials repeat under derived seeds and may run on parallel workers;
// a factory lets an observer (the server's CSV spill) keep per-rep
// streams separate without locking one shared sink across workers.
// exp.Trial.Sink may hold either a ChurnSink (shared across reps —
// the implementation synchronizes) or a ChurnSinkFactory.
type ChurnSinkFactory interface {
	ChurnSinkFor(rep int, seed int64) ChurnSink
}

// memorySink is the default: retain every epoch row in the result,
// exactly the historical ChurnResult shape. Occupancy rows ride inside
// the epoch row (EpochResult.Occupancy), so ObserveOccupancy is a
// no-op — retaining the row retains them.
type memorySink struct {
	out *ChurnResult
}

func (s *memorySink) ObserveEpoch(e EpochResult)               { s.out.Epochs = append(s.out.Epochs, e) }
func (s *memorySink) ObserveOccupancy(int, []MachineOccupancy) {}

// rollupSink is the aggregate-only sink behind FleetShape.RollupOnly:
// per-epoch rows and occupancy snapshots are dropped as they close,
// bounding the result to the horizon rollups — O(machines) transient
// state instead of O(machines × epochs) retained rows. The portal
// folds the rollup counters and pools the per-epoch RTT summaries
// itself, so dropping here loses nothing the rollups need.
type rollupSink struct{}

func (rollupSink) ObserveEpoch(EpochResult)                 {}
func (rollupSink) ObserveOccupancy(int, []MachineOccupancy) {}

// resolveChurnSink picks the execution's sink: an executor-provided
// Sink (factory or sink) wins and implies streaming — the caller asked
// to observe rows, not to retain them twice; otherwise RollupOnly
// selects the aggregate-only sink, and the default retains everything
// in memory as the result API always has.
func resolveChurnSink(sink any, rollupOnly bool, rep int, seed int64, out *ChurnResult) (ChurnSink, bool) {
	switch s := sink.(type) {
	case ChurnSinkFactory:
		return s.ChurnSinkFor(rep, seed), true
	case ChurnSink:
		return s, true
	}
	if rollupOnly {
		return rollupSink{}, true
	}
	return &memorySink{out: out}, false
}
