package core

import (
	"fmt"

	"pictor/internal/exp"
)

// RunFaultComparison answers the robustness question: under the same
// deterministic failure schedule, what do failover and graceful
// degradation buy? It runs the shape three ways as one batch on the
// parallel runner:
//
//  1. healthy — the shape with faults, failover and degradation all
//     stripped (the no-crash baseline),
//  2. faulty/drop — the failure schedule with the historical
//     drop-on-failure behaviour (no retries, no tiers),
//  3. faulty/resilient — the same failure schedule with the shape's
//     failover and degradation knobs (defaults fill in when the shape
//     enables faults but sets neither: 3 retry attempts at backoff 1,
//     brown-out tiers on).
//
// All three churn the identical tenant population and execution noise,
// and both faulty runs crash the identical machines at the identical
// epochs (the arrival and fault schedules derive from the config seed
// and their own parameters only — see executeFleetChurn), so the
// availability deltas are the recovery mechanisms' doing, not stream
// luck. Results come back in the order above.
func RunFaultComparison(shape exp.FleetShape, cfg ExperimentConfig) []ChurnResult {
	if !shape.Churn() {
		panic(fmt.Sprintf("core: RunFaultComparison needs a churn shape (Epochs >= 1, got %d)", shape.Epochs))
	}
	if !shape.Faulty() {
		panic("core: RunFaultComparison needs fault injection (MTBFEpochs > 0); use RunChurnComparison for fault-free fleets")
	}
	validateFleetShape(shape)
	trials := faultComparisonTrials(shape, cfg)
	all := RunTrials(trials, cfg)
	return []ChurnResult{mergeChurn(all[0]), mergeChurn(all[1]), mergeChurn(all[2])}
}

// faultComparisonTrials is the comparison's trial batch — {healthy,
// drop, resilient} under the identical failure schedule. Shared with
// the benchmark service's spec lowering so a served "faults" job runs
// exactly the CLI's batch.
func faultComparisonTrials(shape exp.FleetShape, cfg ExperimentConfig) []exp.Trial {
	healthy := shape
	healthy.MTBFEpochs, healthy.MTTREpochs = 0, 0
	healthy.RetryAttempts, healthy.RetryBackoffEpochs = 0, 0
	healthy.Degrade = false

	drop := shape
	drop.RetryAttempts, drop.RetryBackoffEpochs = 0, 0
	drop.Degrade = false

	resilient := shape
	if resilient.RetryAttempts <= 0 && !resilient.Degrade {
		resilient.RetryAttempts = 3
		resilient.RetryBackoffEpochs = 1
		resilient.Degrade = true
	}

	return []exp.Trial{
		churnTrial(healthy, cfg),
		churnTrial(drop, cfg),
		churnTrial(resilient, cfg),
	}
}
