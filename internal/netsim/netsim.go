// Package netsim models the client↔server network. The paper gives each
// instance its own 1 Gbps NIC (chosen because it behaves like 5G for
// frame-transmission latency), so each instance gets an independent
// duplex link: serialization at line rate shared among that instance's
// in-flight messages, plus propagation delay with jitter.
package netsim

import "pictor/internal/sim"

// Config describes one instance's network path.
type Config struct {
	// BandwidthBytesPerSec is the line rate (1 Gbps = 125e6).
	BandwidthBytesPerSec float64
	// PropagationDelay is the one-way base latency.
	PropagationDelay sim.Duration
	// Jitter is the lognormal sigma applied to propagation.
	Jitter float64
}

// DefaultConfig matches the paper's testbed: 1 Gbps, LAN-to-metro-style
// one-way delay around 2 ms.
func DefaultConfig() Config {
	return Config{
		BandwidthBytesPerSec: 125e6,
		PropagationDelay:     2 * sim.Millisecond,
		Jitter:               0.18,
	}
}

// Link is one instance's duplex network path.
type Link struct {
	k       *sim.Kernel
	rng     *sim.RNG
	cfg     Config
	up      *sim.SharedLink // client→server (inputs)
	down    *sim.SharedLink // server→client (frames)
	started sim.Time

	upBytes   float64
	downBytes float64
}

// NewLink creates a duplex link.
func NewLink(k *sim.Kernel, name string, cfg Config, rng *sim.RNG) *Link {
	if cfg.BandwidthBytesPerSec <= 0 {
		cfg = DefaultConfig()
	}
	return &Link{
		k:       k,
		rng:     rng.Fork("net-" + name),
		cfg:     cfg,
		up:      sim.NewSharedLink(k, name+"-up", cfg.BandwidthBytesPerSec),
		down:    sim.NewSharedLink(k, name+"-down", cfg.BandwidthBytesPerSec),
		started: k.Now(),
	}
}

// SendToServer ships an input message (client→server).
func (l *Link) SendToServer(size float64, done func()) {
	l.upBytes += size
	l.send(l.up, size, done)
}

// SendToClient ships a frame (server→client).
func (l *Link) SendToClient(size float64, done func()) {
	l.downBytes += size
	l.send(l.down, size, done)
}

func (l *Link) send(link *sim.SharedLink, size float64, done func()) {
	prop := l.rng.Jitter(l.cfg.PropagationDelay, l.cfg.Jitter)
	link.Transfer(size, func() {
		if done == nil {
			return
		}
		l.k.After(prop, done)
	})
}

// Bytes reports cumulative traffic (inputs up, frames down).
func (l *Link) Bytes() (up, down float64) { return l.upBytes, l.downBytes }

// BandwidthMbps reports average use in megabits/s since accounting start.
func (l *Link) BandwidthMbps() (up, down float64) {
	elapsed := l.k.Now().Sub(l.started).Seconds()
	if elapsed <= 0 {
		return 0, 0
	}
	return l.upBytes * 8 / 1e6 / elapsed, l.downBytes * 8 / 1e6 / elapsed
}

// ResetAccounting restarts the byte counters (post-warmup).
func (l *Link) ResetAccounting() {
	l.upBytes, l.downBytes = 0, 0
	l.started = l.k.Now()
}
