package netsim

import (
	"math"
	"testing"

	"pictor/internal/sim"
)

func noJitter() Config {
	return Config{
		BandwidthBytesPerSec: 125e6, // 1 Gbps
		PropagationDelay:     2 * sim.Millisecond,
		Jitter:               0,
	}
}

func TestInputLatencySmall(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "inst0", noJitter(), sim.NewRNG(1))
	var end sim.Time
	l.SendToServer(100, func() { end = k.Now() }) // 100-byte input
	k.Run()
	// Serialization of 100B at 125MB/s is negligible; ~propagation.
	if end.Millis() < 1.9 || end.Millis() > 2.5 {
		t.Fatalf("input latency = %vms, want ~2ms", end.Millis())
	}
}

func TestFrameSerializationDominates(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "inst0", noJitter(), sim.NewRNG(1))
	var end sim.Time
	l.SendToClient(2.5e6, func() { end = k.Now() }) // 2.5 MB compressed frame
	k.Run()
	want := 2.5e6/125e6*1000 + 2 // 20ms wire + 2ms prop
	if math.Abs(end.Millis()-want) > 0.5 {
		t.Fatalf("frame latency = %vms, want ~%vms", end.Millis(), want)
	}
}

func TestDuplexIndependent(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "inst0", noJitter(), sim.NewRNG(1))
	var upEnd, downEnd sim.Time
	l.SendToServer(1e6, func() { upEnd = k.Now() })
	l.SendToClient(1e6, func() { downEnd = k.Now() })
	k.Run()
	if upEnd != downEnd {
		t.Fatalf("duplex directions interfered: %v vs %v", upEnd, downEnd)
	}
}

func TestConcurrentFramesShareDownlink(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "inst0", noJitter(), sim.NewRNG(1))
	var first sim.Time
	l.SendToClient(1e6, func() { first = k.Now() })
	l.SendToClient(1e6, nil)
	k.Run()
	solo := 1e6/125e6*1000 + 2
	if first.Millis() <= solo {
		t.Fatalf("shared downlink frame at %vms, want > solo %vms", first.Millis(), solo)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "inst0", noJitter(), sim.NewRNG(1))
	l.SendToServer(1000, nil)
	l.SendToClient(5e6, nil)
	k.Run()
	up, down := l.Bytes()
	if up != 1000 || down != 5e6 {
		t.Fatalf("Bytes = (%v, %v), want (1000, 5e6)", up, down)
	}
	k.RunUntil(sim.Time(sim.Second))
	_, downMbps := l.BandwidthMbps()
	if math.Abs(downMbps-40) > 1 {
		t.Fatalf("down bandwidth = %v Mbps, want ~40", downMbps)
	}
}

func TestResetAccounting(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "inst0", noJitter(), sim.NewRNG(1))
	l.SendToClient(5e6, nil)
	k.Run()
	l.ResetAccounting()
	if _, down := l.Bytes(); down != 0 {
		t.Fatalf("down bytes after reset = %v, want 0", down)
	}
}

func TestZeroConfigFallsBackToDefault(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "inst0", Config{}, sim.NewRNG(1))
	done := false
	l.SendToServer(100, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("default-config link did not deliver")
	}
}

func TestJitterVariesLatency(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	l := NewLink(k, "inst0", cfg, sim.NewRNG(7))
	seen := map[sim.Time]bool{}
	var sendNext func(i int)
	sendNext = func(i int) {
		if i >= 20 {
			return
		}
		start := k.Now()
		l.SendToServer(100, func() {
			seen[k.Now()-start] = true
			sendNext(i + 1)
		})
	}
	sendNext(0)
	k.Run()
	if len(seen) < 10 {
		t.Fatalf("jittered latencies collapsed to %d distinct values", len(seen))
	}
}
