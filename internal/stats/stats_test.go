package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	s.AddAll([]float64{4, 1, 3, 2})
	if s.N() != 4 {
		t.Fatalf("N = %d, want 4", s.N())
	}
	approx(t, s.Mean(), 2.5, 1e-12, "mean")
	approx(t, s.Sum(), 10, 1e-12, "sum")
	approx(t, s.Min(), 1, 0, "min")
	approx(t, s.Max(), 4, 0, "max")
	approx(t, s.Variance(), 1.25, 1e-12, "variance")
	approx(t, s.StdDev(), math.Sqrt(1.25), 1e-12, "stddev")
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample must report zeros")
	}
	sum := s.Summarize()
	if sum.N != 0 || sum.Mean != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.AddAll([]float64{10, 20, 30, 40, 50})
	approx(t, s.Percentile(0), 10, 0, "p0")
	approx(t, s.Percentile(100), 50, 0, "p100")
	approx(t, s.Percentile(50), 30, 1e-12, "p50")
	approx(t, s.Percentile(25), 20, 1e-12, "p25")
	approx(t, s.Percentile(10), 14, 1e-12, "p10 interpolated")
}

func TestPercentileSingleValue(t *testing.T) {
	var s Sample
	s.Add(42)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		approx(t, s.Percentile(p), 42, 0, "single-value percentile")
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, 1})
	_ = s.Percentile(50)
	s.Add(2)
	approx(t, s.Percentile(50), 2, 1e-12, "median after late add")
}

func TestSummarizeOrdering(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	m := s.Summarize()
	if !(m.P1 <= m.P25 && m.P25 <= m.P75 && m.P75 <= m.P99) {
		t.Fatalf("percentiles out of order: %+v", m)
	}
	approx(t, m.Mean, 500.5, 1e-9, "mean of 1..1000")
}

func TestPercentError(t *testing.T) {
	approx(t, PercentError(102, 100), 2, 1e-12, "basic")
	approx(t, PercentError(98, 100), 2, 1e-12, "symmetric")
	approx(t, PercentError(0, 0), 0, 0, "zero/zero")
	if !math.IsInf(PercentError(1, 0), 1) {
		t.Fatal("nonzero/zero should be +Inf")
	}
}

func TestPercentChange(t *testing.T) {
	approx(t, PercentChange(150, 100), 50, 1e-12, "up")
	approx(t, PercentChange(80, 100), -20, 1e-12, "down")
	approx(t, PercentChange(5, 0), 0, 0, "zero base")
}

func TestCounterRate(t *testing.T) {
	var c Counter
	for i := 0; i < 60; i++ {
		c.Tick(float64(i) * 0.5) // ticks at 0, 0.5, ..., 29.5s
	}
	if c.Count() != 60 {
		t.Fatalf("Count = %d, want 60", c.Count())
	}
	approx(t, c.Rate(30), 2.0, 1e-9, "2 events/sec over 30s")
	if c.Rate(0) != 0 {
		t.Fatal("rate with horizon before first tick must be 0")
	}
}

func TestCounterEmpty(t *testing.T) {
	var c Counter
	if c.Rate(10) != 0 || c.Count() != 0 {
		t.Fatal("empty counter must be zero")
	}
}

func TestMeanGeoMean(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3}), 2, 1e-12, "mean")
	approx(t, Mean(nil), 0, 0, "mean empty")
	approx(t, GeoMean([]float64{1, 100}), 10, 1e-9, "geomean")
	approx(t, GeoMean([]float64{2, 0}), 0, 0, "geomean with zero")
	approx(t, GeoMean(nil), 0, 0, "geomean empty")
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		var s Sample
		ok := false
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
				ok = true
			}
		}
		if !ok {
			return true
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		va, vb := s.Percentile(a), s.Percentile(b)
		return va <= vb+1e-9 && va >= s.Min()-1e-9 && vb <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		cnt := 0
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				s.Add(x)
				cnt++
			}
		}
		if cnt == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-6 && s.Mean() <= s.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Values returns a sorted copy that does not alias internals.
func TestValuesSortedCopyProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			if !math.IsNaN(x) {
				s.Add(x)
			}
		}
		v := s.Values()
		if !sort.Float64sAreSorted(v) {
			return false
		}
		if len(v) > 0 {
			v[0] = math.Inf(-1)
			if len(s.Values()) > 0 && math.IsInf(s.Values()[0], -1) {
				return false // mutation leaked into the sample
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI95(t *testing.T) {
	var s Sample
	s.AddAll([]float64{10, 12, 14})
	mean, half := s.MeanCI95()
	if mean != 12 {
		t.Fatalf("mean = %v, want 12", mean)
	}
	// sd (unbiased) = 2, t(df=2) = 4.303 → half = 4.303*2/sqrt(3) ≈ 4.969
	if half < 4.9 || half > 5.0 {
		t.Fatalf("CI half-width = %v, want ≈4.97", half)
	}

	var one Sample
	one.Add(5)
	if _, h := one.MeanCI95(); h != 0 {
		t.Fatalf("single observation cannot bound the mean, got half-width %v", h)
	}
}

func TestTQuantile95(t *testing.T) {
	if got := TQuantile95(1); got != 12.706 {
		t.Fatalf("t(1) = %v", got)
	}
	if got := TQuantile95(30); got != 2.042 {
		t.Fatalf("t(30) = %v", got)
	}
	if got := TQuantile95(1000); got != 1.96 {
		t.Fatalf("t(1000) = %v, want the normal limit", got)
	}
	if got := TQuantile95(0); got != 0 {
		t.Fatalf("t(0) = %v, want 0", got)
	}
}

// TestSampleEdgeCases sweeps the degenerate inputs — empty, single
// observation, all-equal observations, and tiny-n confidence intervals
// — through every summary query, requiring finite (never NaN/Inf)
// results and no panics. These are exactly the samples a short or idle
// measurement window produces.
func TestSampleEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		mean float64 // expected mean
		pAll float64 // expected value of every percentile
	}{
		{name: "empty", xs: nil, mean: 0, pAll: 0},
		{name: "single", xs: []float64{4.2}, mean: 4.2, pAll: 4.2},
		{name: "all-equal", xs: []float64{7, 7, 7, 7}, mean: 7, pAll: 7},
		{name: "all-zero", xs: []float64{0, 0, 0}, mean: 0, pAll: 0},
		{name: "two", xs: []float64{1, 3}, mean: 2, pAll: math.NaN()}, // pAll unchecked
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Sample
			s.AddAll(tc.xs)
			if got := s.Mean(); got != tc.mean {
				t.Fatalf("Mean = %v, want %v", got, tc.mean)
			}
			for _, p := range []float64{-5, 0, 1, 25, 50, 75, 99, 100, 150} {
				q := s.Percentile(p)
				if math.IsNaN(q) || math.IsInf(q, 0) {
					t.Fatalf("Percentile(%v) = %v (not finite)", p, q)
				}
				if !math.IsNaN(tc.pAll) && q != tc.pAll {
					t.Fatalf("Percentile(%v) = %v, want %v", p, q, tc.pAll)
				}
			}
			sum := s.Summarize()
			for name, v := range map[string]float64{
				"Mean": sum.Mean, "P1": sum.P1, "P25": sum.P25, "P75": sum.P75, "P99": sum.P99,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("Summarize().%s = %v (not finite)", name, v)
				}
			}
			if sum.N != len(tc.xs) {
				t.Fatalf("Summarize().N = %d, want %d", sum.N, len(tc.xs))
			}
			mean, half := s.MeanCI95()
			if math.IsNaN(mean) || math.IsNaN(half) || math.IsInf(half, 0) {
				t.Fatalf("MeanCI95 = (%v, %v) (not finite)", mean, half)
			}
			if len(tc.xs) < 2 && half != 0 {
				t.Fatalf("n=%d must report a zero CI half-width, got %v", len(tc.xs), half)
			}
			if sd := s.StdDev(); math.IsNaN(sd) || sd < 0 {
				t.Fatalf("StdDev = %v", sd)
			}
			if mn, mx := s.Min(), s.Max(); mn > mx {
				t.Fatalf("Min %v > Max %v", mn, mx)
			}
		})
	}
}

// TestCI95AllEqual: zero spread must yield a zero interval, not NaN
// from catastrophic cancellation in the variance.
func TestCI95AllEqual(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(1e9 + 0.25) // large offset stresses the sum-of-squares path
	}
	mean, half := s.MeanCI95()
	if math.IsNaN(mean) || math.IsNaN(half) {
		t.Fatalf("MeanCI95 = (%v, %v)", mean, half)
	}
	if half != 0 {
		t.Fatalf("all-equal sample must have a zero CI, got %v", half)
	}
}

func TestTableRendersAligned(t *testing.T) {
	tab := NewTable("policy", "fps")
	tab.Row("roundrobin", "31.5")
	tab.Rowf("binpack", "%.1f", 29.25)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("columns not aligned:\n%s", out)
	}
	if !strings.Contains(lines[2], "29.2") {
		t.Fatalf("Rowf formatting lost: %q", lines[2])
	}
	// Short rows leave trailing columns empty; long rows truncate.
	uneven := NewTable("a", "b").Row("x").Row("y", "z", "extra")
	if s := uneven.String(); !strings.Contains(s, "x") || strings.Contains(s, "extra") {
		t.Fatalf("uneven rows mishandled:\n%s", s)
	}
}
