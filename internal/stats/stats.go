// Package stats provides the summary statistics Pictor reports:
// means, percentiles, distribution summaries in the style of the paper's
// Figure 6 (mean, 1%, 25%, 75%, 99% tiles), and percentage-error helpers
// for Table 3.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations and answers summary queries.
// The zero value is an empty sample ready for use.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
	sumSq  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.sum += x
	s.sumSq += x * x
}

// AddAll records a batch of observations: one append and one
// invalidation for the whole batch instead of per element.
func (s *Sample) AddAll(xs []float64) {
	if len(xs) == 0 {
		return
	}
	s.xs = append(s.xs, xs...)
	s.sorted = false
	for _, x := range xs {
		s.sum += x
		s.sumSq += x * x
	}
}

// Grow pre-sizes the sample's backing array for at least n total
// observations, so a measurement loop of known length never re-grows.
func (s *Sample) Grow(n int) {
	if n <= cap(s.xs) {
		return
	}
	xs := make([]float64, len(s.xs), n)
	copy(xs, s.xs)
	s.xs = xs
}

// Reset discards all observations but keeps the backing array, so a
// warmup reset does not re-pay the sample's growth.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
	s.sum = 0
	s.sumSq = 0
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean reports the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Sum reports the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Variance reports the population variance.
func (s *Sample) Variance() float64 {
	n := float64(len(s.xs))
	if n == 0 {
		return 0
	}
	m := s.sum / n
	v := s.sumSq/n - m*m
	if v < 0 { // numerical guard
		return 0
	}
	return v
}

// StdDev reports the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min reports the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max reports the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

func (s *Sample) ensureSorted() {
	// The empty early-out is load-bearing beyond speed: read-style
	// queries (Values, Min, Max, Percentile) must not write any field
	// of an empty sample, so a shared canonical empty sample (see
	// trace.StageSample) stays safe under concurrent readers.
	if s.sorted || len(s.xs) == 0 {
		return
	}
	sort.Float64s(s.xs)
	s.sorted = true
}

// Percentile reports the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Empty samples report 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Values returns a copy of the observations in sorted order.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Summary is the five-number description the paper plots in Figure 6.
type Summary struct {
	N    int
	Mean float64
	P1   float64
	P25  float64
	P75  float64
	P99  float64
}

// Summarize computes the Figure-6 style summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:    s.N(),
		Mean: s.Mean(),
		P1:   s.Percentile(1),
		P25:  s.Percentile(25),
		P75:  s.Percentile(75),
		P99:  s.Percentile(99),
	}
}

func (m Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p1=%.2f p25=%.2f p75=%.2f p99=%.2f",
		m.N, m.Mean, m.P1, m.P25, m.P75, m.P99)
}

// t95 holds two-sided 95% Student-t quantiles by degrees of freedom
// (1..30); beyond 30 the normal 1.96 is close enough.
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TQuantile95 reports the two-sided 95% Student-t critical value for
// the given degrees of freedom.
func TQuantile95(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}

// MeanCI95 reports the sample mean and the half-width of its 95%
// confidence interval (Student's t on the sample standard deviation).
// Samples with fewer than two observations have unbounded uncertainty;
// they report a zero half-width since no interval can be estimated.
func (s *Sample) MeanCI95() (mean, half float64) {
	n := len(s.xs)
	mean = s.Mean()
	if n < 2 {
		return mean, 0
	}
	// Unbiased (n-1) variance from the population variance.
	sd := math.Sqrt(s.Variance() * float64(n) / float64(n-1))
	return mean, TQuantile95(n-1) * sd / math.Sqrt(float64(n))
}

// PercentError reports |got-want|/want as a percentage. A zero reference
// with a zero measurement is 0%; a zero reference otherwise is +Inf.
func PercentError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want) * 100
}

// PercentChange reports (got-want)/want as a signed percentage.
func PercentChange(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got - want) / math.Abs(want) * 100
}

// Counter is a windowless event-rate counter (e.g. frames for FPS).
type Counter struct {
	n     int64
	first float64 // seconds
	last  float64
	seen  bool
}

// Tick records one event at time t (in seconds).
func (c *Counter) Tick(t float64) {
	if !c.seen {
		c.first = t
		c.seen = true
	}
	c.last = t
	c.n++
}

// Count reports the number of recorded events.
func (c *Counter) Count() int64 { return c.n }

// Rate reports events per second over the span [first, horizon]. The
// horizon is the experiment end; using it (not the last event) avoids
// inflating rates for streams that stall.
func (c *Counter) Rate(horizonSeconds float64) float64 {
	if !c.seen || horizonSeconds <= c.first {
		return 0
	}
	return float64(c.n) / (horizonSeconds - c.first)
}

// Mean of a plain slice, for quick table math.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean reports the geometric mean of strictly positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
