package stats

import (
	"fmt"
	"strings"
)

// Table builds aligned text tables — experiment reports are column
// comparisons (methodology errors per driver, FPS per policy), and
// every layer was growing its own ad-hoc alignment code. Rows are
// plain strings; callers format their own numbers.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends one row. Rows longer than the header are truncated at
// render time; shorter rows leave trailing columns empty.
func (t *Table) Row(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// Rowf appends one row where every cell is a fmt.Sprintf(format, arg)
// rendering of the corresponding argument — the common all-numeric row.
func (t *Table) Rowf(label string, format string, args ...float64) *Table {
	cells := make([]string, 0, len(args)+1)
	cells = append(cells, label)
	for _, a := range args {
		cells = append(cells, fmt.Sprintf(format, a))
	}
	return t.Row(cells...)
}

// String renders the table with every column padded to its widest cell.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i < len(width) {
				fmt.Fprintf(&b, "%-*s  ", width[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
