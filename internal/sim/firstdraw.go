package sim

import (
	"math"
	"math/rand"
	"sync"
)

// This file computes the FIRST draw of a freshly seeded RNG in O(1),
// bit-for-bit identical to NewRNG(seed) doing the same draw.
//
// The simulator's determinism discipline derives a fresh seed per
// logical event (per session-epoch jitter, for example) so results
// never depend on evaluation order. math/rand makes that discipline
// expensive: Seed() warms a 607-element lagged-Fibonacci register (~1900
// Lehmer steps, ~5KB of state) even when the caller consumes a single
// value. On a million-session sweep that seeding is the dominant cost.
//
// The shortcut: the generator's first output reads exactly two register
// elements, vec[333]+vec[606] (feed starts at rngLen-rngTap=334, tap at
// 0; both decrement before the read). Each vec[i] is built from three
// consecutive values of the seeding LCG x[n+1] = 48271·x[n] mod 2³¹-1 —
// element i uses chain positions 20+3i+1..3 (20 warmup steps precede
// element 0) — XORed with a fixed "cooked" constant. A multiplicative
// LCG jumps to position n with one modmul by 48271ⁿ, so both elements
// (chain positions 1020..1022 and 1839..1841) cost six modmuls total.
//
// The magic constants below are math/rand's: rngCooked[333] and
// rngCooked[606] from rng.go, and the ziggurat accept tables kn/wn from
// normal.go (Go stdlib, BSD license). They are frozen by the Go 1
// compatibility promise — top-level math/rand sequences can never
// change — and verifyFirstDraw cross-checks against the real generator
// on first use anyway, falling back to full seeding on any mismatch.

const (
	lehmerM = 1<<31 - 1 // modulus of math/rand's seeding LCG
	lehmerA = 48271     // its multiplier

	rngFirstMask = 1<<63 - 1 // Int63 masks the sign bit off Uint64
)

// rngCooked[333] and rngCooked[606] from math/rand/rng.go.
var (
	cooked333 = int64(-4633371852008891965)
	cooked606 = int64(4152330101494654406)
)

// Jump multipliers 48271ⁿ mod 2³¹-1 for the six chain positions feeding
// vec[333] (n=1020..1022) and vec[606] (n=1839..1841).
var firstDrawJump = [6]uint64{
	modexp(lehmerA, 1020), modexp(lehmerA, 1021), modexp(lehmerA, 1022),
	modexp(lehmerA, 1839), modexp(lehmerA, 1840), modexp(lehmerA, 1841),
}

func modexp(base, exp uint64) uint64 {
	r, b := uint64(1), base%lehmerM
	for ; exp > 0; exp >>= 1 {
		if exp&1 == 1 {
			r = r * b % lehmerM
		}
		b = b * b % lehmerM
	}
	return r
}

// firstInt63 returns NewRNG(seed).Int63()'s first value without seeding
// a source: seed normalization copies rngSource.Seed, the register
// elements come from LCG jumps, and the first output is their sum.
func firstInt63(seed int64) int64 {
	s := seed % lehmerM
	if s < 0 {
		s += lehmerM
	}
	if s == 0 {
		s = 89482311 // rngSource.Seed's replacement for the fixed point 0
	}
	x0 := uint64(s)
	at := func(j int) uint64 { return x0 * firstDrawJump[j] % lehmerM }
	v333 := (at(0)<<40 ^ at(1)<<20 ^ at(2)) ^ uint64(cooked333)
	v606 := (at(3)<<40 ^ at(4)<<20 ^ at(5)) ^ uint64(cooked606)
	return int64((v333 + v606) & rngFirstMask)
}

// fastFirstNormal is the ziggurat's first iteration over the first
// uniform draw: it resolves >99% of seeds. The rejection paths consume
// further draws, so they report !ok and the caller replays the stream
// with a real generator.
func fastFirstNormal(seed int64) (float64, bool) {
	j := int32(uint32(firstInt63(seed) >> 31)) // Rand.Uint32, possibly negative
	i := j & 0x7F
	if absInt32(j) < kn[i] {
		return float64(j) * float64(wn[i]), true
	}
	return 0, false
}

func absInt32(i int32) uint32 {
	if i < 0 {
		return uint32(-i)
	}
	return uint32(i)
}

var (
	firstDrawOnce sync.Once
	firstDrawSlow bool // set when verification fails: always fully seed
)

// verifyFirstDraw cross-checks the O(1) path against the real generator
// over a spread of seeds on first use. Any divergence — say a future
// toolchain breaking the Go 1 sequence promise — permanently routes
// every call through the slow path, trading speed for correctness.
func verifyFirstDraw() {
	seeds := []int64{0, 1, -1, lehmerM, -lehmerM, math.MaxInt64, math.MinInt64}
	for i := int64(0); i < 64; i++ {
		seeds = append(seeds, i*2654435761+12345)
	}
	for _, s := range seeds {
		v, ok := fastFirstNormal(s)
		if ok && v != rand.New(rand.NewSource(s)).NormFloat64() {
			firstDrawSlow = true
			return
		}
	}
}

// FirstNormal returns exactly what NewRNG(seed).Normal(0, 1) returns,
// in O(1) for >99% of seeds instead of O(607) seeding work. Use it for
// the derive-seed-per-event discipline where each seed yields one draw.
func FirstNormal(seed int64) float64 {
	firstDrawOnce.Do(verifyFirstDraw)
	if !firstDrawSlow {
		if v, ok := fastFirstNormal(seed); ok {
			return v
		}
	}
	// Ziggurat rejection (or verification failure): replay the identical
	// stream from position zero with the real generator.
	return rand.New(rand.NewSource(seed)).NormFloat64()
}

// FirstLogNormal returns exactly NewRNG(seed).LogNormalAround(m, sigma)
// — the one-draw lognormal jitter — at FirstNormal's O(1) cost.
func FirstLogNormal(seed int64, m, sigma float64) float64 {
	if m <= 0 {
		return 0
	}
	return m * math.Exp(sigma*FirstNormal(seed))
}

// kn and wn are the ziggurat accept tables from math/rand/normal.go:
// bucket thresholds and slice widths for the first-iteration accept test
// `absInt32(j) < kn[i] → x = j·wn[i]`. The rejection tables (fn, the
// base-strip tail) are not replicated — those paths fall back.
var kn = [128]uint32{
	0x76ad2212, 0x0, 0x600f1b53, 0x6ce447a6, 0x725b46a2,
	0x7560051d, 0x774921eb, 0x789a25bd, 0x799045c3, 0x7a4bce5d,
	0x7adf629f, 0x7b5682a6, 0x7bb8a8c6, 0x7c0ae722, 0x7c50cce7,
	0x7c8cec5b, 0x7cc12cd6, 0x7ceefed2, 0x7d177e0b, 0x7d3b8883,
	0x7d5bce6c, 0x7d78dd64, 0x7d932886, 0x7dab0e57, 0x7dc0dd30,
	0x7dd4d688, 0x7de73185, 0x7df81cea, 0x7e07c0a3, 0x7e163efa,
	0x7e23b587, 0x7e303dfd, 0x7e3beec2, 0x7e46db77, 0x7e51155d,
	0x7e5aabb3, 0x7e63abf7, 0x7e6c222c, 0x7e741906, 0x7e7b9a18,
	0x7e82adfa, 0x7e895c63, 0x7e8fac4b, 0x7e95a3fb, 0x7e9b4924,
	0x7ea0a0ef, 0x7ea5b00d, 0x7eaa7ac3, 0x7eaf04f3, 0x7eb3522a,
	0x7eb765a5, 0x7ebb4259, 0x7ebeeafd, 0x7ec2620a, 0x7ec5a9c4,
	0x7ec8c441, 0x7ecbb365, 0x7ece78ed, 0x7ed11671, 0x7ed38d62,
	0x7ed5df12, 0x7ed80cb4, 0x7eda175c, 0x7edc0005, 0x7eddc78e,
	0x7edf6ebf, 0x7ee0f647, 0x7ee25ebe, 0x7ee3a8a9, 0x7ee4d473,
	0x7ee5e276, 0x7ee6d2f5, 0x7ee7a620, 0x7ee85c10, 0x7ee8f4cd,
	0x7ee97047, 0x7ee9ce59, 0x7eea0eca, 0x7eea3147, 0x7eea3568,
	0x7eea1aab, 0x7ee9e071, 0x7ee98602, 0x7ee90a88, 0x7ee86d08,
	0x7ee7ac6a, 0x7ee6c769, 0x7ee5bc9c, 0x7ee48a67, 0x7ee32efc,
	0x7ee1a857, 0x7edff42f, 0x7ede0ffa, 0x7edbf8d9, 0x7ed9ab94,
	0x7ed7248d, 0x7ed45fae, 0x7ed1585c, 0x7ece095f, 0x7eca6ccb,
	0x7ec67be2, 0x7ec22eee, 0x7ebd7d1a, 0x7eb85c35, 0x7eb2c075,
	0x7eac9c20, 0x7ea5df27, 0x7e9e769f, 0x7e964c16, 0x7e8d44ba,
	0x7e834033, 0x7e781728, 0x7e6b9933, 0x7e5d8a1a, 0x7e4d9ded,
	0x7e3b737a, 0x7e268c2f, 0x7e0e3ff5, 0x7df1aa5d, 0x7dcf8c72,
	0x7da61a1e, 0x7d72a0fb, 0x7d30e097, 0x7cd9b4ab, 0x7c600f1a,
	0x7ba90bdc, 0x7a722176, 0x77d664e5,
}

var wn = [128]float32{
	1.7290405e-09, 1.2680929e-10, 1.6897518e-10, 1.9862688e-10,
	2.2232431e-10, 2.4244937e-10, 2.601613e-10, 2.7611988e-10,
	2.9073963e-10, 3.042997e-10, 3.1699796e-10, 3.289802e-10,
	3.4035738e-10, 3.5121603e-10, 3.616251e-10, 3.7164058e-10,
	3.8130857e-10, 3.9066758e-10, 3.9975012e-10, 4.08584e-10,
	4.1719309e-10, 4.2559822e-10, 4.338176e-10, 4.418672e-10,
	4.497613e-10, 4.5751258e-10, 4.651324e-10, 4.7263105e-10,
	4.8001775e-10, 4.87301e-10, 4.944885e-10, 5.015873e-10,
	5.0860405e-10, 5.155446e-10, 5.2241467e-10, 5.2921934e-10,
	5.359635e-10, 5.426517e-10, 5.4928817e-10, 5.5587696e-10,
	5.624219e-10, 5.6892646e-10, 5.753941e-10, 5.818282e-10,
	5.882317e-10, 5.946077e-10, 6.00959e-10, 6.072884e-10,
	6.135985e-10, 6.19892e-10, 6.2617134e-10, 6.3243905e-10,
	6.386974e-10, 6.449488e-10, 6.511956e-10, 6.5744005e-10,
	6.6368433e-10, 6.699307e-10, 6.7618144e-10, 6.824387e-10,
	6.8870465e-10, 6.949815e-10, 7.012715e-10, 7.075768e-10,
	7.1389966e-10, 7.202424e-10, 7.266073e-10, 7.329966e-10,
	7.394128e-10, 7.4585826e-10, 7.5233547e-10, 7.58847e-10,
	7.653954e-10, 7.719835e-10, 7.7861395e-10, 7.852897e-10,
	7.920138e-10, 7.987892e-10, 8.0561924e-10, 8.125073e-10,
	8.194569e-10, 8.2647167e-10, 8.3355556e-10, 8.407127e-10,
	8.479473e-10, 8.55264e-10, 8.6266755e-10, 8.7016316e-10,
	8.777562e-10, 8.8545243e-10, 8.932582e-10, 9.0117996e-10,
	9.09225e-10, 9.174008e-10, 9.2571584e-10, 9.341788e-10,
	9.427997e-10, 9.515889e-10, 9.605579e-10, 9.697193e-10,
	9.790869e-10, 9.88676e-10, 9.985036e-10, 1.0085882e-09,
	1.0189509e-09, 1.0296151e-09, 1.0406069e-09, 1.0519566e-09,
	1.063698e-09, 1.0758702e-09, 1.0885183e-09, 1.1016947e-09,
	1.1154611e-09, 1.1298902e-09, 1.1450696e-09, 1.1611052e-09,
	1.1781276e-09, 1.1962995e-09, 1.2158287e-09, 1.2369856e-09,
	1.2601323e-09, 1.2857697e-09, 1.3146202e-09, 1.347784e-09,
	1.3870636e-09, 1.4357403e-09, 1.5008659e-09, 1.6030948e-09,
}
