package sim

import "testing"

// BenchmarkKernelEventChurn measures the scheduler's per-event cost: a
// self-sustaining chain of After calls, the shape every pipeline loop
// (app, proxy, client) imposes on the kernel.
func BenchmarkKernelEventChurn(b *testing.B) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Millisecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.After(Millisecond, tick)
	k.Run()
}

// BenchmarkKernelCancelChurn measures schedule+cancel pairs (timeouts
// and superseded frames cancel heavily in long simulations).
func BenchmarkKernelCancelChurn(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := k.At(k.Now()+Time(1000), fn)
		k.Cancel(id)
	}
}
