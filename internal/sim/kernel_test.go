package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.After(30*Millisecond, func() { got = append(got, 3) })
	k.After(10*Millisecond, func() { got = append(got, 1) })
	k.After(20*Millisecond, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestKernelClockAdvances(t *testing.T) {
	k := NewKernel()
	var at Time
	k.After(7*Millisecond, func() { at = k.Now() })
	k.Run()
	if at != Time(7*Millisecond) {
		t.Fatalf("event ran at %v, want 7ms", at)
	}
	if k.Now() != Time(7*Millisecond) {
		t.Fatalf("clock = %v after run, want 7ms", k.Now())
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			k.After(Millisecond, tick)
		}
	}
	k.After(0, tick)
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if k.Now() != Time(4*Millisecond) {
		t.Fatalf("clock = %v, want 4ms", k.Now())
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.After(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(0, func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	ran := false
	k.After(-time.Second, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if k.Now() != 0 {
		t.Fatalf("clock = %v, want 0", k.Now())
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	id := k.After(Millisecond, func() { ran = true })
	if !k.Cancel(id) {
		t.Fatal("first cancel reported false")
	}
	if k.Cancel(id) {
		t.Fatal("second cancel reported true")
	}
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Duration{Millisecond, 2 * Millisecond, 5 * Millisecond} {
		k.After(d, func() { fired = append(fired, k.Now()) })
	}
	k.RunUntil(Time(3 * Millisecond))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if k.Now() != Time(3*Millisecond) {
		t.Fatalf("clock = %v, want 3ms", k.Now())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after full run, want 3", len(fired))
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	n := 0
	for i := 0; i < 10; i++ {
		k.After(Duration(i)*Millisecond, func() {
			n++
			if n == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if n != 3 {
		t.Fatalf("ran %d events before stop, want 3", n)
	}
	// The kernel must be reusable after Stop.
	k.Run()
	if n != 10 {
		t.Fatalf("ran %d events total, want 10", n)
	}
}

func TestKernelPending(t *testing.T) {
	k := NewKernel()
	id := k.After(Millisecond, func() {})
	k.After(2*Millisecond, func() {})
	if got := k.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	k.Cancel(id)
	if got := k.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

// Property: however events are scheduled, execution observes monotonically
// non-decreasing timestamps.
func TestKernelMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			k.After(Duration(d)*Microsecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(1500 * Millisecond)
	if got := tm.Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
	if got := tm.Millis(); got != 1500 {
		t.Fatalf("Millis = %v, want 1500", got)
	}
	if got := tm.Add(500 * Millisecond); got != Time(2*Second) {
		t.Fatalf("Add = %v, want 2s", got)
	}
	if got := tm.Sub(Time(Second)); got != 500*Millisecond {
		t.Fatalf("Sub = %v, want 500ms", got)
	}
}

func TestDurationOfSeconds(t *testing.T) {
	if got := DurationOfSeconds(0.001); got != Millisecond {
		t.Fatalf("DurationOfSeconds(0.001) = %v, want 1ms", got)
	}
	if got := DurationOfSeconds(-5); got != 0 {
		t.Fatalf("negative seconds = %v, want 0", got)
	}
	if got := DurationOfSeconds(1e300); got <= 0 {
		t.Fatalf("huge seconds should saturate positive, got %v", got)
	}
}

// TestKernelCompaction: cancelling most of a large schedule must shrink
// the heap (lazy compaction) while preserving the surviving events'
// order and the live count.
func TestKernelCompaction(t *testing.T) {
	k := NewKernel()
	var ids []EventID
	for i := 0; i < 10_000; i++ {
		d := Duration(i+1) * Microsecond
		if i%10 == 0 {
			k.After(d, func() {})
		} else {
			ids = append(ids, k.After(d, func() {}))
		}
	}
	for _, id := range ids {
		k.Cancel(id)
	}
	if got, want := k.Pending(), 1000; got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	// Cancelled events must not keep occupying the heap: after 9000
	// cancels against 1000 live events, compaction has to have run.
	if n := len(k.heap); n > 2000 {
		t.Fatalf("heap holds %d slots for 1000 live events — dead events not compacted", n)
	}
	k.Run()
	if got := k.Pending(); got != 0 {
		t.Fatalf("Pending after run = %d, want 0", got)
	}
}

// TestKernelCancelDuringRun: cancelling from inside callbacks keeps the
// counters exact.
func TestKernelCancelDuringRun(t *testing.T) {
	k := NewKernel()
	var victim EventID
	ran := 0
	k.After(Millisecond, func() {
		ran++
		k.Cancel(victim)
	})
	victim = k.After(2*Millisecond, func() { ran++ })
	k.After(3*Millisecond, func() { ran++ })
	k.Run()
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", k.Pending())
	}
}

// TestKernelOrderSurvivesCompaction: compaction re-heapifies; the
// surviving events must still run in (time, FIFO) order. Cancelled
// events outnumber live ones so maybeCompact genuinely fires.
func TestKernelOrderSurvivesCompaction(t *testing.T) {
	k := NewKernel()
	var got []int
	var ids []EventID
	for i := 0; i < 250; i++ {
		i := i
		k.At(Time(i)*Time(Millisecond), func() { got = append(got, i) })
		// Eight cancel-fodder events per survivor.
		for j := 0; j < 8; j++ {
			ids = append(ids, k.At(Time(i)*Time(Millisecond)+Time(j+1), func() {}))
		}
	}
	// Same-time events to exercise the FIFO tie-break post-Init.
	for i := 0; i < 100; i++ {
		i := i
		k.At(Time(Second), func() { got = append(got, 10_000+i) })
	}
	heapBefore := len(k.heap)
	for _, id := range ids {
		k.Cancel(id)
	}
	if len(k.heap) >= heapBefore {
		t.Fatalf("compaction never fired: heap still %d of %d slots", len(k.heap), heapBefore)
	}
	k.Run()
	if len(got) != 350 {
		t.Fatalf("ran %d events, want 350", len(got))
	}
	for j := 1; j < len(got); j++ {
		if got[j-1] >= got[j] {
			t.Fatalf("order violated at %d: %d then %d", j, got[j-1], got[j])
		}
	}
}

func BenchmarkKernelPendingWithManyCancelled(b *testing.B) {
	k := NewKernel()
	for i := 0; i < 100_000; i++ {
		id := k.After(Duration(i+1)*Microsecond, func() {})
		if i%2 == 0 {
			k.Cancel(id)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k.Pending() != 50_000 {
			b.Fatal("wrong pending count")
		}
	}
}
