package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFIFOSingleServerSerializes(t *testing.T) {
	k := NewKernel()
	f := NewFIFO(k, "pipe", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		f.Use(func() Duration { return 10 * Millisecond }, func() {
			ends = append(ends, k.Now())
		})
	}
	k.Run()
	want := []Time{Time(10 * Millisecond), Time(20 * Millisecond), Time(30 * Millisecond)}
	if len(ends) != 3 {
		t.Fatalf("completed %d jobs, want 3", len(ends))
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestFIFOMultiServerOverlaps(t *testing.T) {
	k := NewKernel()
	f := NewFIFO(k, "dual", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		f.Use(func() Duration { return 10 * Millisecond }, func() {
			ends = append(ends, k.Now())
		})
	}
	k.Run()
	// Two at a time: finish at 10, 10, 20, 20 ms.
	if ends[0] != Time(10*Millisecond) || ends[1] != Time(10*Millisecond) {
		t.Fatalf("first pair = %v", ends[:2])
	}
	if ends[2] != Time(20*Millisecond) || ends[3] != Time(20*Millisecond) {
		t.Fatalf("second pair = %v", ends[2:])
	}
}

func TestFIFOQueueLen(t *testing.T) {
	k := NewKernel()
	f := NewFIFO(k, "q", 1)
	for i := 0; i < 3; i++ {
		f.Use(func() Duration { return Millisecond }, nil)
	}
	// Let the grants dispatch.
	k.RunUntil(0)
	if f.InService() != 1 {
		t.Fatalf("InService = %d, want 1", f.InService())
	}
	if f.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", f.QueueLen())
	}
	k.Run()
	if f.InService() != 0 || f.QueueLen() != 0 {
		t.Fatalf("resource not drained: busy=%d q=%d", f.InService(), f.QueueLen())
	}
}

func TestFIFOReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release without acquire did not panic")
		}
	}()
	k := NewKernel()
	NewFIFO(k, "x", 1).Release()
}

func TestFIFOBusyTimeAccounting(t *testing.T) {
	k := NewKernel()
	f := NewFIFO(k, "acct", 1)
	f.Use(func() Duration { return 5 * Millisecond }, nil)
	f.Use(func() Duration { return 7 * Millisecond }, nil)
	k.Run()
	if f.BusyTime() != 12*Millisecond {
		t.Fatalf("BusyTime = %v, want 12ms", f.BusyTime())
	}
}

func TestSharedLinkSingleTransferRate(t *testing.T) {
	k := NewKernel()
	l := NewSharedLink(k, "nic", 1000) // 1000 B/s
	var done Time
	l.Transfer(500, func() { done = k.Now() })
	k.Run()
	if got := done.Seconds(); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("500B at 1000B/s finished at %vs, want 0.5s", got)
	}
}

func TestSharedLinkFairSharing(t *testing.T) {
	k := NewKernel()
	l := NewSharedLink(k, "bus", 1000)
	var aDone, bDone Time
	// Two equal transfers started together: each sees 500 B/s, both end at 1s.
	l.Transfer(500, func() { aDone = k.Now() })
	l.Transfer(500, func() { bDone = k.Now() })
	k.Run()
	if math.Abs(aDone.Seconds()-1.0) > 1e-6 || math.Abs(bDone.Seconds()-1.0) > 1e-6 {
		t.Fatalf("equal sharers finished at %v and %v, want 1s each", aDone, bDone)
	}
}

func TestSharedLinkLateJoinerSlowsFirst(t *testing.T) {
	k := NewKernel()
	l := NewSharedLink(k, "bus", 1000)
	var aDone Time
	l.Transfer(1000, func() { aDone = k.Now() })
	k.After(500*Millisecond, func() {
		l.Transfer(1000, nil)
	})
	k.Run()
	// A moves 500B alone in 0.5s, then shares: remaining 500B at 500B/s = 1s.
	// A finishes at 1.5s.
	if math.Abs(aDone.Seconds()-1.5) > 1e-3 {
		t.Fatalf("first transfer finished at %vs, want 1.5s", aDone.Seconds())
	}
}

func TestSharedLinkZeroSize(t *testing.T) {
	k := NewKernel()
	l := NewSharedLink(k, "bus", 1000)
	done := false
	l.Transfer(0, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("zero-size transfer never completed")
	}
	if k.Now() != 0 {
		t.Fatalf("zero-size transfer advanced clock to %v", k.Now())
	}
}

func TestSharedLinkBytesMoved(t *testing.T) {
	k := NewKernel()
	l := NewSharedLink(k, "bus", 1e6)
	l.Transfer(12345, nil)
	l.Transfer(55555, nil)
	k.Run()
	if got := l.BytesMoved(); math.Abs(got-67900) > 1 {
		t.Fatalf("BytesMoved = %v, want 67900", got)
	}
}

// Property: total transfer time through a shared link never beats the
// ideal capacity bound sum(bytes)/capacity, and work conservation holds
// within numerical tolerance when transfers all start at time zero.
func TestSharedLinkWorkConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := NewKernel()
		l := NewSharedLink(k, "bus", 1e6)
		var total float64
		var last Time
		any := false
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			any = true
			total += float64(s)
			l.Transfer(float64(s), func() {
				if k.Now() > last {
					last = k.Now()
				}
			})
		}
		k.Run()
		if !any {
			return true
		}
		ideal := total / 1e6
		return last.Seconds() >= ideal-1e-6 && last.Seconds() <= ideal*1.01+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGForkStability(t *testing.T) {
	a := NewRNG(1).Fork("gpu")
	b := NewRNG(1).Fork("gpu")
	if a.Float64() != b.Float64() {
		t.Fatal("same-label forks diverged")
	}
	c := NewRNG(1).Fork("cpu")
	d := NewRNG(1).Fork("gpu")
	if c.Float64() == d.Float64() {
		t.Fatal("different-label forks coincided (suspicious)")
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := g.LogNormalAround(5, 0.3); v <= 0 {
			t.Fatalf("lognormal produced %v", v)
		}
	}
	if g.LogNormalAround(0, 0.3) != 0 {
		t.Fatal("lognormal of zero median should be zero")
	}
}

func TestRNGJitterClose(t *testing.T) {
	g := NewRNG(9)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += float64(g.Jitter(10*Millisecond, 0.05))
	}
	mean := sum / n / float64(Millisecond)
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("jitter mean = %vms, want ~10ms", mean)
	}
}
