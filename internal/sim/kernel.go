// Package sim provides a deterministic discrete-event simulation kernel.
//
// All of Pictor's hardware and software models run on top of this kernel:
// time is virtual (nanosecond resolution), events execute in strict
// (time, sequence) order, and all randomness flows through explicitly
// seeded sources, so every simulation is exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration = time.Duration

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Seconds converts a simulated timestamp to float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a simulated timestamp to float milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Add offsets a timestamp by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string {
	return Duration(t).String()
}

// DurationOfSeconds converts float seconds into a Duration, saturating on
// overflow so pathological model outputs cannot wrap the clock.
func DurationOfSeconds(s float64) Duration {
	ns := s * float64(Second)
	if ns >= math.MaxInt64 {
		return Duration(math.MaxInt64)
	}
	if ns <= 0 {
		return 0
	}
	return Duration(ns)
}

// event is one scheduled callback. Event structs are pooled by the
// kernel: after firing (or after a cancelled corpse is swept) the
// struct is recycled for a future At/After, so steady-state scheduling
// does not allocate. gen distinguishes incarnations — an EventID from a
// previous life of the struct no longer matches and cannot cancel the
// current occupant.
type event struct {
	at   Time
	seq  uint64 // tie-break so same-time events run FIFO
	fn   func()
	dead bool
	idx  int
	gen  uint64
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct {
	ev  *event
	gen uint64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.idx = -1
	return ev
}

// Kernel is the simulation event loop. The zero value is ready to use.
type Kernel struct {
	now     Time
	heap    eventHeap
	seq     uint64
	live    int // scheduled events that are not cancelled
	dead    int // cancelled events still occupying heap slots
	running bool
	stopped bool
	pool    []*event // recycled event structs
}

// getEvent takes a recycled event struct or allocates one.
func (k *Kernel) getEvent() *event {
	if n := len(k.pool); n > 0 {
		ev := k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
		return ev
	}
	return &event{}
}

// putEvent recycles a spent event. Bumping gen invalidates every
// outstanding EventID pointing at the old incarnation.
func (k *Kernel) putEvent(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.dead = false
	ev.idx = -1
	k.pool = append(k.pool, ev)
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events still scheduled. O(1): the
// kernel keeps a live-event counter rather than scanning the heap.
func (k *Kernel) Pending() int { return k.live }

// compactThreshold is the minimum heap size before cancelled events are
// compacted away; below it the dead entries are cheaper than the sweep.
const compactThreshold = 64

// maybeCompact rebuilds the heap without cancelled events once they
// outnumber the live ones. Long simulations cancel heavily (timeouts,
// superseded frames); without compaction the heap bloats with corpses
// that every push/pop still has to sift past.
func (k *Kernel) maybeCompact() {
	if len(k.heap) < compactThreshold || k.dead <= k.live {
		return
	}
	kept := k.heap[:0]
	for _, ev := range k.heap {
		if ev.dead {
			k.putEvent(ev)
			continue
		}
		kept = append(kept, ev)
	}
	// Clear the tail so dropped events can be collected.
	for i := len(kept); i < len(k.heap); i++ {
		k.heap[i] = nil
	}
	k.heap = kept
	for i, ev := range k.heap {
		ev.idx = i
	}
	heap.Init(&k.heap)
	k.dead = 0
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it would silently corrupt causality.
func (k *Kernel) At(t Time, fn func()) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := k.getEvent()
	ev.at, ev.seq, ev.fn = t, k.seq, fn
	k.seq++
	heap.Push(&k.heap, ev)
	k.live++
	return EventID{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. Negative d is
// clamped to zero so model noise cannot schedule into the past.
func (k *Kernel) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false (the generation
// check keeps a stale ID from touching a recycled event struct).
func (k *Kernel) Cancel(id EventID) bool {
	if id.ev == nil || id.gen != id.ev.gen || id.ev.dead || id.ev.idx < 0 {
		return false
	}
	id.ev.dead = true
	id.ev.fn = nil // release the closure now; the slot may linger
	k.live--
	k.dead++
	k.maybeCompact()
	return true
}

// Step runs the single next event, reporting whether one existed.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		ev := heap.Pop(&k.heap).(*event)
		if ev.dead {
			k.dead--
			k.putEvent(ev)
			continue
		}
		k.live--
		k.now = ev.at
		fn := ev.fn
		k.putEvent(ev) // recycle before running: fn may schedule
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	k.running = true
	defer func() { k.running = false }()
	for !k.stopped && k.Step() {
	}
	k.stopped = false
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled after t remain pending.
func (k *Kernel) RunUntil(t Time) {
	k.running = true
	defer func() { k.running = false }()
	for !k.stopped {
		// Peek at the next live event.
		var next *event
		for len(k.heap) > 0 {
			if k.heap[0].dead {
				k.putEvent(heap.Pop(&k.heap).(*event))
				k.dead--
				continue
			}
			next = k.heap[0]
			break
		}
		if next == nil || next.at > t {
			break
		}
		k.Step()
	}
	k.stopped = false
	if k.now < t {
		k.now = t
	}
}

// Stop aborts a Run/RunUntil in progress after the current event returns.
func (k *Kernel) Stop() { k.stopped = true }
