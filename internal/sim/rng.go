package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a deterministic random source. Every model component derives
// its own RNG (via Fork) so adding a component never perturbs the random
// streams of the others.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a seeded random source.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream, keyed by a label hash so the
// child's stream is stable across code reorderings that don't change labels.
func (g *RNG) Fork(label string) *RNG {
	var h int64 = 1469598103934665603 // FNV-1a offset basis (truncated)
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a Gaussian sample with the given mean and stddev.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormalAround returns a sample whose median is m and whose spread is
// controlled by sigma (sigma ~0.1 gives ±10%-ish jitter). Latency-like
// quantities in the simulator use this: strictly positive, right-skewed.
func (g *RNG) LogNormalAround(m, sigma float64) float64 {
	if m <= 0 {
		return 0
	}
	return m * math.Exp(sigma*g.r.NormFloat64())
}

// Exponential returns an exponential sample with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Poisson returns a Poisson sample with the given mean (Knuth's
// product-of-uniforms method — exact, and plenty fast for the per-epoch
// arrival counts the churn model draws). Non-positive means yield 0.
// Large means are split into chunks (Poisson(a+b) = Poisson(a) +
// Poisson(b) for independent draws): exp(-mean) underflows to exactly 0
// near mean ≈ 745, which would otherwise make the loop terminate only
// on uniform-product underflow and silently cap every sample there.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	const chunk = 500
	k := 0
	for ; mean > chunk; mean -= chunk {
		k += g.poissonKnuth(chunk)
	}
	return k + g.poissonKnuth(mean)
}

// poissonKnuth draws one Poisson sample for a mean small enough that
// exp(-mean) is comfortably above the float64 underflow threshold.
func (g *RNG) poissonKnuth(mean float64) int {
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= g.r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Jitter returns d scaled by a lognormal factor with spread sigma.
func (g *RNG) Jitter(d Duration, sigma float64) Duration {
	return DurationOfSeconds(g.LogNormalAround(float64(d)/1e9, sigma))
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
