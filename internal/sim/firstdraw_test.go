package sim

import (
	"math"
	"testing"
)

// TestFirstNormalMatchesSeededRNG is the load-bearing guarantee for the
// O(1) first-draw path: for every seed — fast-accept or ziggurat
// fallback — FirstNormal must equal the full generator bit-for-bit,
// because the surrogate tier's jitter values are pinned by goldens.
func TestFirstNormalMatchesSeededRNG(t *testing.T) {
	seeds := []int64{
		0, 1, -1, 2, -2,
		1<<31 - 1, -(1<<31 - 1), 1 << 31, -(1 << 31),
		math.MaxInt64, math.MinInt64, math.MinInt64 + 1,
	}
	// A dense band around zero plus a multiplicative spread across the
	// seed space: enough draws to land in every ziggurat bucket many
	// times over (128 buckets, 20k+ samples).
	for i := int64(-2000); i < 2000; i++ {
		seeds = append(seeds, i)
	}
	for i := int64(0); i < 20000; i++ {
		seeds = append(seeds, i*2654435761+977)
	}
	fast := 0
	for _, s := range seeds {
		if _, ok := fastFirstNormal(s); ok {
			fast++
		}
		if got, want := FirstNormal(s), NewRNG(s).Normal(0, 1); got != want {
			t.Fatalf("FirstNormal(%d) = %v, seeded RNG draws %v", s, got, want)
		}
	}
	if firstDrawSlow {
		t.Fatal("verification demoted FirstNormal to the slow path")
	}
	// The shortcut must actually engage: the ziggurat accepts the first
	// iteration for ~99% of seeds, so anything below 90% means the
	// tables or the register reconstruction are wrong in a way that
	// happens to fall back rather than diverge.
	if ratio := float64(fast) / float64(len(seeds)); ratio < 0.9 {
		t.Fatalf("fast path accepted only %.1f%% of seeds", 100*ratio)
	}
}

// TestFirstLogNormalMatchesLogNormalAround pins the jitter-shaped
// wrapper, including the non-positive-median guard.
func TestFirstLogNormalMatchesLogNormalAround(t *testing.T) {
	for i := int64(0); i < 500; i++ {
		s := i*40503 + 7
		if got, want := FirstLogNormal(s, 1, 0.05), NewRNG(s).LogNormalAround(1, 0.05); got != want {
			t.Fatalf("FirstLogNormal(%d) = %v, LogNormalAround draws %v", s, got, want)
		}
	}
	if v := FirstLogNormal(3, 0, 0.05); v != 0 {
		t.Fatalf("non-positive median must clamp to 0, got %v", v)
	}
	if v := FirstLogNormal(3, -2, 0.05); v != 0 {
		t.Fatalf("negative median must clamp to 0, got %v", v)
	}
}
