package sim

// FIFO is a first-come-first-served resource with a fixed number of
// servers (e.g. a GPU render engine, an IPC pipe). Jobs acquire a slot,
// hold it for a caller-computed service time, and release it.
type FIFO struct {
	k        *Kernel
	name     string
	servers  int
	busy     int
	waiters  []func()
	busyTime Duration // aggregate busy time across servers, for utilization
	lastTick Time
}

// NewFIFO creates a FIFO resource with the given number of servers.
func NewFIFO(k *Kernel, name string, servers int) *FIFO {
	if servers < 1 {
		panic("sim: FIFO needs at least one server")
	}
	return &FIFO{k: k, name: name, servers: servers}
}

// Name reports the resource's label.
func (f *FIFO) Name() string { return f.name }

// Acquire requests a server slot; granted runs (as a new event) once a
// slot is free. The holder must call Release exactly once.
func (f *FIFO) Acquire(granted func()) {
	if f.busy < f.servers {
		f.busy++
		f.k.After(0, granted)
		return
	}
	f.waiters = append(f.waiters, granted)
}

// Release frees a slot, waking the oldest waiter if any.
func (f *FIFO) Release() {
	if f.busy <= 0 {
		panic("sim: FIFO release without acquire: " + f.name)
	}
	if len(f.waiters) > 0 {
		next := f.waiters[0]
		f.waiters = f.waiters[1:]
		f.k.After(0, next)
		return
	}
	f.busy--
}

// Use acquires a slot, holds it for hold(), then releases and calls done.
// hold is evaluated at grant time so it can observe contention state.
func (f *FIFO) Use(hold func() Duration, done func()) {
	f.Acquire(func() {
		start := f.k.Now()
		d := hold()
		f.k.After(d, func() {
			f.busyTime += f.k.Now().Sub(start)
			f.Release()
			if done != nil {
				done()
			}
		})
	})
}

// QueueLen reports the number of jobs waiting (not in service).
func (f *FIFO) QueueLen() int { return len(f.waiters) }

// InService reports the number of jobs currently holding slots.
func (f *FIFO) InService() int { return f.busy }

// BusyTime reports aggregate slot-busy time (for utilization accounting).
func (f *FIFO) BusyTime() Duration { return f.busyTime }

// SharedLink models a bandwidth resource shared by concurrent transfers
// using ideal processor sharing: with n active transfers each proceeds at
// capacity/n. Transfer completion times are recomputed whenever the set of
// active transfers changes. This is the standard fluid model for buses
// (PCIe) and NICs.
type SharedLink struct {
	k        *Kernel
	name     string
	capacity float64 // bytes per second
	active   map[*transfer]struct{}
	lastAt   Time
	moved    float64 // total bytes moved, for bandwidth accounting
}

type transfer struct {
	remaining float64 // bytes left
	done      func()
	ev        EventID
	link      *SharedLink
}

// NewSharedLink creates a shared link with the given capacity in bytes/sec.
func NewSharedLink(k *Kernel, name string, capacityBytesPerSec float64) *SharedLink {
	if capacityBytesPerSec <= 0 {
		panic("sim: link capacity must be positive: " + name)
	}
	return &SharedLink{
		k:        k,
		name:     name,
		capacity: capacityBytesPerSec,
		active:   make(map[*transfer]struct{}),
	}
}

// Name reports the link's label.
func (l *SharedLink) Name() string { return l.name }

// BytesMoved reports the total payload the link has carried so far.
func (l *SharedLink) BytesMoved() float64 {
	l.advance()
	return l.moved
}

// Transfer starts moving size bytes; done fires when the last byte lands.
// Zero-size transfers complete immediately (next event cycle).
func (l *SharedLink) Transfer(size float64, done func()) {
	l.advance()
	if size <= 0 {
		if done != nil {
			l.k.After(0, done)
		}
		return
	}
	t := &transfer{remaining: size, done: done, link: l}
	l.active[t] = struct{}{}
	l.reschedule()
}

// advance drains progress for all active transfers up to now.
func (l *SharedLink) advance() {
	now := l.k.Now()
	if now == l.lastAt {
		return
	}
	dt := now.Sub(l.lastAt).Seconds()
	l.lastAt = now
	n := len(l.active)
	if n == 0 || dt <= 0 {
		return
	}
	rate := l.capacity / float64(n)
	for t := range l.active {
		delta := rate * dt
		if delta > t.remaining {
			delta = t.remaining
		}
		t.remaining -= delta
		l.moved += delta
	}
}

// reschedule cancels and re-plans completion events after membership change.
func (l *SharedLink) reschedule() {
	n := len(l.active)
	if n == 0 {
		return
	}
	rate := l.capacity / float64(n)
	for t := range l.active {
		l.k.Cancel(t.ev)
		d := DurationOfSeconds(t.remaining / rate)
		if d <= 0 {
			// Sub-nanosecond completions must still advance the clock,
			// or the finish/reschedule cycle would spin at zero time.
			d = Nanosecond
		}
		tt := t
		t.ev = l.k.After(d, func() { tt.finish() })
	}
}

func (t *transfer) finish() {
	l := t.link
	l.advance()
	// Floating-point drift can leave a sliver; treat anything a 1 ns
	// tick can drain as done (the clock may not resolve smaller).
	if t.remaining > l.capacity*1e-9+1 {
		l.reschedule()
		return
	}
	l.moved += t.remaining
	t.remaining = 0
	delete(l.active, t)
	l.reschedule()
	if t.done != nil {
		t.done()
	}
}

// ActiveTransfers reports the number of in-flight transfers.
func (l *SharedLink) ActiveTransfers() int { return len(l.active) }
