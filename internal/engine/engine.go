// Package engine is Pictor's global discrete-event kernel for fleet
// execution: one scheduler that owns the epoch clock and dispatches
// every machine- and session-level event through portal interfaces.
//
// The fleet layer used to run one simulation kernel per machine inside
// nested per-machine loops, so fidelity was uniform and sweep cost
// scaled linearly with sessions. This package inverts that structure:
// the kernel orders all events on one deterministic clock — (epoch,
// phase, machine, sequence) — and the *implementations* behind the
// portals decide how much an event costs. A SessionEngine may run the
// full per-frame simulation or a cheap trained surrogate; the kernel
// neither knows nor cares, which is what lets a sweep mix fidelity
// tiers per machine and scale to hundreds of thousands of sessions.
//
// Like internal/exp and internal/fleet, the package is deliberately a
// leaf (it imports only internal/stats): the assembly layer
// (internal/core) implements the portals and injects them, so the
// simulator layers compose behind interfaces instead of importing each
// other — the pces/mrnes NetSimPortal pattern.
package engine

import (
	"container/heap"
	"fmt"

	"pictor/internal/stats"
)

// Phase orders the events inside one epoch. The values are the churn
// lifecycle in its historical execution order; events of one epoch
// always drain before any event of the next.
type Phase uint8

const (
	// PhaseDepart releases sessions whose horizon elapsed.
	PhaseDepart Phase = iota
	// PhaseFault applies the epoch's machine crash/repair states.
	PhaseFault
	// PhaseRetry runs matured failover attempts.
	PhaseRetry
	// PhaseArrive admits the epoch's scheduled arrivals.
	PhaseArrive
	// PhaseGauge snapshots post-admission state (active sessions,
	// degraded residents, occupancy detail).
	PhaseGauge
	// PhaseExecute advances one machine's resident sessions through the
	// epoch — the only per-machine phase, and the only one whose cost
	// depends on the session engine's fidelity tier.
	PhaseExecute
	// PhaseReact closes the epoch: pooled measurements feed the
	// migration and brown-out controllers and the epoch's rollups.
	PhaseReact
)

// String implements fmt.Stringer for traces and tests.
func (p Phase) String() string {
	switch p {
	case PhaseDepart:
		return "depart"
	case PhaseFault:
		return "fault"
	case PhaseRetry:
		return "retry"
	case PhaseArrive:
		return "arrive"
	case PhaseGauge:
		return "gauge"
	case PhaseExecute:
		return "execute"
	case PhaseReact:
		return "react"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Event is one scheduled dispatch on the kernel's clock. Machine is -1
// for fleet-scope phases and the machine index for PhaseExecute.
type Event struct {
	Epoch   int
	Phase   Phase
	Machine int
	seq     uint64
}

// Handler consumes one event. Handlers may schedule further events at
// or after the event's own clock position.
type Handler func(Event)

// scheduled pairs an event with its handler on the heap.
type scheduled struct {
	ev Event
	h  Handler
}

// eventHeap orders events by (Epoch, Phase, Machine, seq): the epoch
// clock first, the lifecycle phase inside it, machines in index order
// inside a phase, and FIFO among exact ties — so a run's dispatch order
// is a pure function of what was scheduled, never of heap internals.
type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i].ev, h[j].ev
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(scheduled)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Kernel is the global event scheduler. Create with New, Schedule
// events, then Run until the heap drains. A Kernel is not safe for
// concurrent use — determinism is the whole point; the experiment
// runner parallelizes across trials, never inside one.
type Kernel struct {
	heap    eventHeap
	seq     uint64
	now     Event
	running bool
}

// New returns an empty kernel at epoch 0.
func New() *Kernel { return &Kernel{} }

// Now reports the event currently being dispatched (the zero Event
// before Run starts).
func (k *Kernel) Now() Event { return k.now }

// Schedule enqueues an event for the handler. Scheduling into the past
// — strictly before the event currently dispatching — panics: a run
// whose handlers could rewind the clock would make dispatch order
// depend on heap state instead of the schedule.
func (k *Kernel) Schedule(epoch int, phase Phase, machine int, h Handler) {
	if h == nil {
		panic("engine: Schedule needs a handler")
	}
	if epoch < 0 {
		panic(fmt.Sprintf("engine: cannot schedule into negative epoch %d", epoch))
	}
	ev := Event{Epoch: epoch, Phase: phase, Machine: machine, seq: k.seq}
	if k.running && k.before(ev, k.now) {
		panic(fmt.Sprintf("engine: cannot schedule %s@e%d/m%d into the past (now %s@e%d/m%d)",
			phase, epoch, machine, k.now.Phase, k.now.Epoch, k.now.Machine))
	}
	k.seq++
	heap.Push(&k.heap, scheduled{ev: ev, h: h})
}

// before reports whether a sorts strictly before b on the clock
// (ignoring the FIFO sequence — scheduling at the current position is
// legal and dispatches after the running handler returns).
func (k *Kernel) before(a, b Event) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	return a.Machine < b.Machine
}

// Run dispatches events in clock order until none remain. Handlers may
// schedule more events (at or after the current position), so a run
// that seeds only epoch 0 can still drive an arbitrary horizon.
func (k *Kernel) Run() {
	k.running = true
	defer func() { k.running = false }()
	for k.heap.Len() > 0 {
		s := heap.Pop(&k.heap).(scheduled)
		k.now = s.ev
		s.h(s.ev)
	}
}

// Pending reports how many events remain scheduled.
func (k *Kernel) Pending() int { return k.heap.Len() }

// ---------------------------------------------------------------------------
// Portals

// SessionObs is one session's epoch measurement, whatever fidelity tier
// produced it: its RTT distribution over the epoch and whether it fell
// below the interactivity floor.
type SessionObs struct {
	// RTT is the session's round-trip-time distribution for the epoch
	// (N == 0 means the session produced no observations).
	RTT stats.Summary
	// QoSViolation marks the session below the 25-FPS floor.
	QoSViolation bool
}

// MachineEpoch is one machine's epoch outcome: the measurements of its
// resident sessions plus machine-level rollups.
type MachineEpoch struct {
	// PowerWatts is the machine's modelled wall power over the epoch.
	PowerWatts float64
	// Demand echoes the predicted CPU demand the machine executed at.
	Demand float64
	// Sessions holds one observation per resident, in placement order.
	Sessions []SessionObs
}

// SessionEngine advances one machine's resident sessions through one
// epoch and reports what they measured. It is the fidelity boundary:
// the full engine builds and runs a per-frame simulated cluster, the
// surrogate engine evaluates trained per-profile demand/RTT predictors
// — both behind the same three-quantity contract (advance one epoch,
// echo demand, sample RTT per session).
type SessionEngine interface {
	AdvanceEpoch(epoch, machine int) MachineEpoch
}

// EnginePicker selects the session engine for one machine-epoch — the
// fidelity-tier dispatch. Returning nil skips the machine entirely (a
// crashed machine is powered off: it executes nothing, measures
// nothing, and burns nothing).
type EnginePicker interface {
	EngineFor(epoch, machine int) SessionEngine
}

// FleetPortal is the fleet layer's lifecycle, one method per
// fleet-scope phase. The kernel dispatches into it in phase order;
// Collect receives each machine's measurements as its execute event
// drains (machine index order, so pooled aggregates are byte-stable).
type FleetPortal interface {
	// Machines and Epochs size the event schedule.
	Machines() int
	Epochs() int
	Depart(epoch int)
	Fault(epoch int)
	Retry(epoch int)
	Arrive(epoch int)
	Gauge(epoch int)
	Collect(epoch, machine int, me MachineEpoch)
	React(epoch int)
}

// RunChurn drives a fleet portal over its horizon on a fresh kernel:
// for every epoch, the lifecycle phases in order, one execute event per
// machine (through the picker's fidelity dispatch), then the react
// phase. Epochs schedule themselves one ahead — the react handler seeds
// epoch e+1 — so the heap stays O(machines) regardless of horizon.
func RunChurn(p FleetPortal, picker EnginePicker) {
	k := New()
	epochs := p.Epochs()
	if epochs < 1 {
		return
	}
	var seed func(epoch int)
	seed = func(epoch int) {
		k.Schedule(epoch, PhaseDepart, -1, func(ev Event) { p.Depart(ev.Epoch) })
		k.Schedule(epoch, PhaseFault, -1, func(ev Event) { p.Fault(ev.Epoch) })
		k.Schedule(epoch, PhaseRetry, -1, func(ev Event) { p.Retry(ev.Epoch) })
		k.Schedule(epoch, PhaseArrive, -1, func(ev Event) { p.Arrive(ev.Epoch) })
		k.Schedule(epoch, PhaseGauge, -1, func(ev Event) { p.Gauge(ev.Epoch) })
		for mi := 0; mi < p.Machines(); mi++ {
			k.Schedule(epoch, PhaseExecute, mi, func(ev Event) {
				if eng := picker.EngineFor(ev.Epoch, ev.Machine); eng != nil {
					p.Collect(ev.Epoch, ev.Machine, eng.AdvanceEpoch(ev.Epoch, ev.Machine))
				}
			})
		}
		k.Schedule(epoch, PhaseReact, -1, func(ev Event) {
			p.React(ev.Epoch)
			if next := ev.Epoch + 1; next < epochs {
				seed(next)
			}
		})
	}
	seed(0)
	k.Run()
}
