package engine

import (
	"fmt"
	"strings"
	"testing"

	"pictor/internal/stats"
)

// TestKernelDispatchOrder pins the clock: events drain by (epoch,
// phase, machine, seq) regardless of scheduling order.
func TestKernelDispatchOrder(t *testing.T) {
	k := New()
	var got []string
	record := func(ev Event) {
		got = append(got, fmt.Sprintf("e%d/%s/m%d", ev.Epoch, ev.Phase, ev.Machine))
	}
	// Scheduled deliberately out of order.
	k.Schedule(1, PhaseDepart, -1, record)
	k.Schedule(0, PhaseExecute, 2, record)
	k.Schedule(0, PhaseExecute, 0, record)
	k.Schedule(0, PhaseReact, -1, record)
	k.Schedule(0, PhaseDepart, -1, record)
	k.Schedule(0, PhaseExecute, 1, record)
	k.Run()
	want := []string{
		"e0/depart/m-1", "e0/execute/m0", "e0/execute/m1",
		"e0/execute/m2", "e0/react/m-1", "e1/depart/m-1",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dispatch order = %v, want %v", got, want)
	}
	if k.Pending() != 0 {
		t.Fatalf("heap not drained: %d pending", k.Pending())
	}
}

// TestKernelFIFOAmongTies pins the tie-break: events with the identical
// (epoch, phase, machine) key dispatch in scheduling order.
func TestKernelFIFOAmongTies(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		k.Schedule(3, PhaseGauge, -1, func(Event) { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie dispatch order = %v, want FIFO", got)
		}
	}
}

// TestKernelHandlersSchedule pins dynamic scheduling: a handler can
// seed future events (the epoch-ahead pattern RunChurn uses), and Now
// tracks the dispatching event.
func TestKernelHandlersSchedule(t *testing.T) {
	k := New()
	var epochs []int
	var handler Handler
	handler = func(ev Event) {
		if k.Now() != ev {
			t.Fatalf("Now() = %+v during dispatch of %+v", k.Now(), ev)
		}
		epochs = append(epochs, ev.Epoch)
		if ev.Epoch < 3 {
			k.Schedule(ev.Epoch+1, PhaseReact, -1, handler)
		}
	}
	k.Schedule(0, PhaseReact, -1, handler)
	k.Run()
	if fmt.Sprint(epochs) != fmt.Sprint([]int{0, 1, 2, 3}) {
		t.Fatalf("self-scheduling horizon = %v", epochs)
	}
}

// TestKernelRejectsPastAndBadSchedules pins the guardrails: scheduling
// into the past mid-run, negative epochs, and nil handlers all panic.
func TestKernelRejectsPastAndBadSchedules(t *testing.T) {
	mustPanic := func(name, want string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %q does not mention %q", name, msg, want)
			}
		}()
		f()
	}
	mustPanic("nil handler", "needs a handler", func() {
		New().Schedule(0, PhaseDepart, -1, nil)
	})
	mustPanic("negative epoch", "negative epoch", func() {
		New().Schedule(-1, PhaseDepart, -1, func(Event) {})
	})
	mustPanic("past schedule", "into the past", func() {
		k := New()
		k.Schedule(2, PhaseReact, -1, func(Event) {
			k.Schedule(1, PhaseDepart, -1, func(Event) {})
		})
		k.Run()
	})
}

// tracePortal records every portal dispatch in order and lets the test
// choose per-machine engines.
type tracePortal struct {
	machines, epochs int
	trace            []string
	engines          map[int]SessionEngine
}

func (p *tracePortal) Machines() int { return p.machines }
func (p *tracePortal) Epochs() int   { return p.epochs }
func (p *tracePortal) log(phase string, epoch, machine int) {
	p.trace = append(p.trace, fmt.Sprintf("%s:e%d:m%d", phase, epoch, machine))
}
func (p *tracePortal) Depart(e int) { p.log("depart", e, -1) }
func (p *tracePortal) Fault(e int)  { p.log("fault", e, -1) }
func (p *tracePortal) Retry(e int)  { p.log("retry", e, -1) }
func (p *tracePortal) Arrive(e int) { p.log("arrive", e, -1) }
func (p *tracePortal) Gauge(e int)  { p.log("gauge", e, -1) }
func (p *tracePortal) Collect(e, mi int, me MachineEpoch) {
	p.log(fmt.Sprintf("collect(%g)", me.PowerWatts), e, mi)
}
func (p *tracePortal) React(e int) { p.log("react", e, -1) }
func (p *tracePortal) EngineFor(_, machine int) SessionEngine {
	return p.engines[machine]
}

// stubEngine reports a fixed power so Collect calls are attributable.
type stubEngine struct{ watts float64 }

func (s stubEngine) AdvanceEpoch(int, int) MachineEpoch {
	return MachineEpoch{PowerWatts: s.watts, Sessions: []SessionObs{{RTT: stats.Summary{N: 1}}}}
}

// TestRunChurnLifecycle pins the full fleet cycle: every epoch runs
// depart→fault→retry→arrive→gauge→execute(machines in order)→react,
// and a nil engine (crashed machine) skips Collect entirely.
func TestRunChurnLifecycle(t *testing.T) {
	p := &tracePortal{
		machines: 3,
		epochs:   2,
		engines: map[int]SessionEngine{
			0: stubEngine{watts: 10},
			2: stubEngine{watts: 30},
			// machine 1: nil engine — powered off, never collected.
		},
	}
	RunChurn(p, p)
	want := strings.Join([]string{
		"depart:e0:m-1", "fault:e0:m-1", "retry:e0:m-1", "arrive:e0:m-1", "gauge:e0:m-1",
		"collect(10):e0:m0", "collect(30):e0:m2", "react:e0:m-1",
		"depart:e1:m-1", "fault:e1:m-1", "retry:e1:m-1", "arrive:e1:m-1", "gauge:e1:m-1",
		"collect(10):e1:m0", "collect(30):e1:m2", "react:e1:m-1",
	}, "\n")
	if got := strings.Join(p.trace, "\n"); got != want {
		t.Fatalf("lifecycle trace:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunChurnZeroEpochs pins the empty horizon: nothing dispatches.
func TestRunChurnZeroEpochs(t *testing.T) {
	p := &tracePortal{machines: 2, epochs: 0}
	RunChurn(p, p)
	if len(p.trace) != 0 {
		t.Fatalf("zero-epoch run dispatched %v", p.trace)
	}
}

// TestPhaseStrings keeps the phase labels stable for traces and panics.
func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseDepart: "depart", PhaseFault: "fault", PhaseRetry: "retry",
		PhaseArrive: "arrive", PhaseGauge: "gauge", PhaseExecute: "execute",
		PhaseReact: "react", Phase(250): "phase(250)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("Phase(%d).String() = %q, want %q", uint8(p), p.String(), s)
		}
	}
}
