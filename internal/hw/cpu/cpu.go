// Package cpu models the server's multi-core CPU: work execution with
// time-sharing dilation when the machine is oversubscribed, per-process
// utilization accounting (the top-style percentages of Figure 8), and a
// synthetic top-down PMU (Figure 14).
package cpu

import (
	"pictor/internal/hw/mem"
	"pictor/internal/sim"
)

// CPU is the machine's processor complex.
type CPU struct {
	k     *sim.Kernel
	cores float64
	rng   *sim.RNG

	running    float64 // currently-executing modelled work, in threads
	background float64 // steady background demand, in cores

	procs []*Proc
}

// New creates a CPU with the given core count.
func New(k *sim.Kernel, cores int, rng *sim.RNG) *CPU {
	if cores < 1 {
		panic("cpu: need at least one core")
	}
	return &CPU{k: k, cores: float64(cores), rng: rng.Fork("cpu")}
}

// Cores reports the configured core count.
func (c *CPU) Cores() float64 { return c.cores }

// Load reports current demand in cores (modelled threads + background).
func (c *CPU) Load() float64 { return c.running + c.background }

// Dilation reports the current time-sharing slowdown factor: 1 while the
// machine has spare cores, demand/cores when oversubscribed.
func (c *CPU) Dilation() float64 {
	load := c.running + c.background + 1 // +1: the work asking
	if load <= c.cores {
		return 1
	}
	return load / c.cores
}

// Proc is a process (or thread group) running on the CPU: one 3D app
// instance, one VNC server, etc. It owns utilization and PMU accounting.
type Proc struct {
	cpu  *CPU
	name string
	mem  *mem.Client

	// backgroundCores is steady demand from threads we don't model as
	// discrete events (engine workers, audio, physics).
	backgroundCores float64
	bgActive        bool
	bgSince         sim.Time

	cpuTime  sim.Duration // on-CPU time consumed by modelled work
	bgTime   sim.Duration // on-CPU time consumed by background demand
	started  sim.Time
	pmu      PMU
	inflight int
}

// PMU holds synthetic top-down cycle accounting (Figure 14).
type PMU struct {
	Retiring    float64
	FrontEnd    float64
	BadSpec     float64
	BackEnd     float64
	Instrs      float64
	TotalCycles float64
}

// IPC reports instructions per cycle.
func (p PMU) IPC() float64 {
	if p.TotalCycles == 0 {
		return 0
	}
	return p.Instrs / p.TotalCycles
}

// Fractions reports the four top-down category shares.
func (p PMU) Fractions() (retiring, frontend, badspec, backend float64) {
	if p.TotalCycles == 0 {
		return 0, 0, 0, 0
	}
	t := p.TotalCycles
	return p.Retiring / t, p.FrontEnd / t, p.BadSpec / t, p.BackEnd / t
}

// NewProc registers a process. memClient may be nil for processes whose
// memory behaviour we don't track (e.g. client machines).
func (c *CPU) NewProc(name string, memClient *mem.Client, backgroundCores float64) *Proc {
	p := &Proc{
		cpu:             c,
		name:            name,
		mem:             memClient,
		backgroundCores: backgroundCores,
		started:         c.k.Now(),
	}
	c.procs = append(c.procs, p)
	return p
}

// Name reports the process label.
func (p *Proc) Name() string { return p.name }

// Start activates the process's background demand.
func (p *Proc) Start() {
	if p.bgActive {
		return
	}
	p.bgActive = true
	p.bgSince = p.cpu.k.Now()
	p.cpu.background += p.backgroundCores
	if p.mem != nil {
		p.mem.SetActive(true)
	}
}

// Stop deactivates the process's background demand.
func (p *Proc) Stop() {
	if !p.bgActive {
		return
	}
	p.flushBackground()
	p.bgActive = false
	p.cpu.background -= p.backgroundCores
	if p.mem != nil {
		p.mem.SetActive(false)
	}
}

func (p *Proc) flushBackground() {
	if !p.bgActive {
		return
	}
	now := p.cpu.k.Now()
	elapsed := now.Sub(p.bgSince)
	p.bgTime += sim.Duration(float64(elapsed) * p.backgroundCores)
	p.bgSince = now
}

// Run executes nominal CPU work for this process, then calls done. The
// wall-clock (simulated) duration is nominal × scheduler dilation ×
// memory-contention CPI factor; the on-CPU time excludes scheduler
// waiting but includes memory stalls, matching what top and PMUs see.
func (p *Proc) Run(nominal sim.Duration, done func()) {
	if nominal < 0 {
		nominal = 0
	}
	cpi := 1.0
	if p.mem != nil {
		cpi = p.mem.CPIFactor()
	}
	onCPU := sim.Duration(float64(nominal) * cpi)
	wall := sim.Duration(float64(onCPU) * p.cpu.Dilation())
	p.cpu.running++
	p.inflight++
	p.cpu.k.After(wall, func() {
		p.cpu.running--
		p.inflight--
		p.cpuTime += onCPU
		ms := float64(onCPU) / float64(sim.Millisecond)
		if p.mem != nil {
			p.mem.Account(ms)
		}
		p.accountCycles(ms, cpi)
		if done != nil {
			done()
		}
	})
}

// accountCycles synthesizes top-down PMU counters for ms milliseconds of
// on-CPU time under CPI inflation cpi.
func (p *Proc) accountCycles(ms, cpi float64) {
	const cyclesPerMs = 3.6e6 // 3.6 GHz
	cycles := ms * cyclesPerMs
	missRate := 0.75
	if p.mem != nil {
		missRate = p.mem.MissRate()
	}
	// Backend stalls dominate for 3D apps (memory-bound, §5.1.3) and
	// grow with both the miss rate and contention-driven CPI inflation.
	backend := 0.30 + 0.42*missRate + 0.35*(cpi-1)
	if backend > 0.85 {
		backend = 0.85
	}
	frontend := 0.08
	badspec := 0.05
	retiring := 1 - backend - frontend - badspec
	if retiring < 0.05 {
		retiring = 0.05
	}
	p.pmu.BackEnd += cycles * backend
	p.pmu.FrontEnd += cycles * frontend
	p.pmu.BadSpec += cycles * badspec
	p.pmu.Retiring += cycles * retiring
	p.pmu.TotalCycles += cycles
	// Roughly 1.6 instructions retire per retiring-cycle on a wide core.
	p.pmu.Instrs += cycles * retiring * 1.6
}

// PMU reports the process's accumulated top-down counters.
func (p *Proc) PMU() PMU {
	p.flushBackground()
	// Background threads behave like the modelled work: account them
	// lazily so long-idle PMU reads still reflect background cycles.
	return p.pmu
}

// CPUTime reports total on-CPU time (modelled + background).
func (p *Proc) CPUTime() sim.Duration {
	p.flushBackground()
	return p.cpuTime + p.bgTime
}

// Utilization reports top-style CPU percentage (100 = one core busy)
// since the process was created.
func (p *Proc) Utilization() float64 {
	p.flushBackground()
	elapsed := p.cpu.k.Now().Sub(p.started)
	if elapsed <= 0 {
		return 0
	}
	return float64(p.cpuTime+p.bgTime) / float64(elapsed) * 100
}

// ResetAccounting clears utilization and PMU state, restarting the
// measurement window at the current time (used after warmup).
func (p *Proc) ResetAccounting() {
	p.flushBackground()
	p.cpuTime, p.bgTime = 0, 0
	p.started = p.cpu.k.Now()
	p.pmu = PMU{}
}
