package cpu

import (
	"math"
	"testing"

	"pictor/internal/hw/mem"
	"pictor/internal/sim"
)

func newCPU(k *sim.Kernel, cores int) *CPU {
	return New(k, cores, sim.NewRNG(1))
}

func TestRunUncontendedTakesNominalTime(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 8)
	p := c.NewProc("app", nil, 0)
	var end sim.Time
	p.Run(10*sim.Millisecond, func() { end = k.Now() })
	k.Run()
	if end != sim.Time(10*sim.Millisecond) {
		t.Fatalf("uncontended work ended at %v, want 10ms", end)
	}
}

func TestOversubscriptionDilatesWork(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 2)
	var ends []sim.Time
	// 4 concurrent jobs on 2 cores: later-granted jobs see load 3/2, 4/2.
	for i := 0; i < 4; i++ {
		p := c.NewProc("p", nil, 0)
		p.Run(10*sim.Millisecond, func() { ends = append(ends, k.Now()) })
	}
	k.Run()
	var maxEnd sim.Time
	for _, e := range ends {
		if e > maxEnd {
			maxEnd = e
		}
	}
	if maxEnd <= sim.Time(10*sim.Millisecond) {
		t.Fatalf("oversubscribed work finished at %v, want > 10ms", maxEnd)
	}
}

func TestBackgroundLoadContributesToDilation(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 2)
	bg := c.NewProc("bg", nil, 4) // 4 cores of background on a 2-core CPU
	bg.Start()
	if d := c.Dilation(); math.Abs(d-2.5) > 1e-9 {
		t.Fatalf("dilation with 4 bg cores on 2 = %v, want 2.5", d)
	}
	bg.Stop()
	if d := c.Dilation(); d != 1 {
		t.Fatalf("dilation after stop = %v, want 1", d)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 8)
	p := c.NewProc("app", nil, 0)
	// 30ms of work over a 100ms window = 30%.
	p.Run(10*sim.Millisecond, nil)
	k.After(40*sim.Millisecond, func() { p.Run(20*sim.Millisecond, nil) })
	k.Run()
	k.RunUntil(sim.Time(100 * sim.Millisecond))
	if got := p.Utilization(); math.Abs(got-30) > 0.5 {
		t.Fatalf("utilization = %v%%, want ~30%%", got)
	}
}

func TestBackgroundUtilization(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 8)
	p := c.NewProc("engine", nil, 1.5)
	p.Start()
	k.RunUntil(sim.Time(sim.Second))
	if got := p.Utilization(); math.Abs(got-150) > 1 {
		t.Fatalf("background utilization = %v%%, want ~150%%", got)
	}
}

func TestMemContentionInflatesWork(t *testing.T) {
	k := sim.NewKernel()
	ms := mem.NewSystem()
	prof := mem.Profile{BaseMissRate: 0.7, Intensity: 1, Sensitivity: 1, AccessesPerMs: 100}
	ma := ms.Register("a", prof)
	mb := ms.Register("b", prof)
	ma.SetActive(true)
	mb.SetActive(true)
	c := newCPU(k, 16) // plenty of cores: isolate the memory effect
	p := c.NewProc("a", ma, 0)
	var end sim.Time
	p.Run(10*sim.Millisecond, func() { end = k.Now() })
	k.Run()
	if end <= sim.Time(10*sim.Millisecond) {
		t.Fatalf("mem-contended work ended at %v, want > 10ms", end)
	}
}

func TestPMUBackendGrowsWithContention(t *testing.T) {
	k := sim.NewKernel()
	ms := mem.NewSystem()
	prof := mem.Profile{BaseMissRate: 0.7, Intensity: 1, Sensitivity: 1, AccessesPerMs: 100}
	solo := ms.Register("solo", prof)
	solo.SetActive(true)
	c := newCPU(k, 16)
	p1 := c.NewProc("solo", solo, 0)
	p1.Run(50*sim.Millisecond, nil)
	k.Run()
	_, _, _, beSolo := p1.PMU().Fractions()

	// Same work with three contenders active.
	k2 := sim.NewKernel()
	ms2 := mem.NewSystem()
	m1 := ms2.Register("m1", prof)
	m1.SetActive(true)
	for i := 0; i < 3; i++ {
		o := ms2.Register("o", prof)
		o.SetActive(true)
	}
	c2 := New(k2, 16, sim.NewRNG(1))
	p2 := c2.NewProc("m1", m1, 0)
	p2.Run(50*sim.Millisecond, nil)
	k2.Run()
	_, _, _, beLoaded := p2.PMU().Fractions()

	if beLoaded <= beSolo {
		t.Fatalf("backend fraction did not grow: solo %v, loaded %v", beSolo, beLoaded)
	}
	if ipc := p2.PMU().IPC(); ipc <= 0 || ipc >= 2 {
		t.Fatalf("IPC out of plausible range: %v", ipc)
	}
}

func TestPMUFractionsSumToOne(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 8)
	p := c.NewProc("app", nil, 0)
	p.Run(25*sim.Millisecond, nil)
	k.Run()
	r, f, b, be := p.PMU().Fractions()
	if s := r + f + b + be; math.Abs(s-1) > 1e-9 {
		t.Fatalf("top-down fractions sum to %v, want 1", s)
	}
}

func TestResetAccounting(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 8)
	p := c.NewProc("app", nil, 1)
	p.Start()
	k.RunUntil(sim.Time(100 * sim.Millisecond))
	if p.Utilization() < 90 {
		t.Fatalf("warmup utilization = %v, want ~100", p.Utilization())
	}
	p.ResetAccounting()
	if got := p.CPUTime(); got != 0 {
		t.Fatalf("CPUTime after reset = %v, want 0", got)
	}
	k.RunUntil(sim.Time(200 * sim.Millisecond))
	if got := p.Utilization(); math.Abs(got-100) > 1 {
		t.Fatalf("post-reset utilization = %v, want ~100", got)
	}
}

func TestNegativeWorkClamped(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 8)
	p := c.NewProc("app", nil, 0)
	ran := false
	p.Run(-sim.Millisecond, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("negative work never completed")
	}
	if k.Now() != 0 {
		t.Fatalf("negative work advanced clock to %v", k.Now())
	}
}

func TestDilationAtExactCapacity(t *testing.T) {
	k := sim.NewKernel()
	c := newCPU(k, 4)
	bg := c.NewProc("bg", nil, 3)
	bg.Start()
	// load = 3 background + 1 asking = 4 = cores → no dilation.
	if d := c.Dilation(); d != 1 {
		t.Fatalf("dilation at exact capacity = %v, want 1", d)
	}
}
