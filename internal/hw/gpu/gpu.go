// Package gpu models the server's graphics card: a render engine shared
// by all co-located instances, a shared L2 cache whose miss rate climbs
// under co-location (Figure 16, left bars), private per-context texture
// caches (flat under co-location, Figure 16 right bars), GPU timestamps
// for OpenGL time queries, and per-context memory/utilization accounting.
package gpu

import (
	"pictor/internal/sim"
)

// Profile describes a rendering context's GPU behaviour.
type Profile struct {
	// BaseRenderMs is the time to render one frame when running alone.
	BaseRenderMs float64
	// RenderJitter is the lognormal sigma applied per frame.
	RenderJitter float64
	// BaseL2Miss is the shared-L2 miss ratio running alone.
	BaseL2Miss float64
	// TexMiss is the (private) texture cache miss ratio.
	TexMiss float64
	// L2Sensitivity in [0,1] scales contention-driven L2 miss growth.
	L2Sensitivity float64
	// MemoryMB is GPU memory resident for this context (< 800 MB in
	// the paper's suite).
	MemoryMB float64
	// SupportsPMU is false for contexts using ancient GL versions the
	// vendor tools cannot read (0 A.D. uses OpenGL 1.3 → no Figure 16
	// data, marked N/A).
	SupportsPMU bool
}

// GPU is the render device.
type GPU struct {
	k      *sim.Kernel
	rng    *sim.RNG
	engine *sim.FIFO

	// MissSlope converts co-runner count into added shared-L2 miss rate.
	MissSlope float64
	// MissPenalty converts added L2 miss rate into render-time inflation.
	MissPenalty float64
	// VirtTax multiplies render time when a context is containerized
	// (GPU virtualization overhead, §5.4); zero means bare metal.
	contexts []*Context
}

// New creates a GPU model.
func New(k *sim.Kernel, rng *sim.RNG) *GPU {
	return &GPU{
		k:           k,
		rng:         rng.Fork("gpu"),
		engine:      sim.NewFIFO(k, "gpu-engine", 1),
		MissSlope:   0.06,
		MissPenalty: 2.6,
	}
}

// Context is one application's rendering context (a vGPU slice).
type Context struct {
	gpu     *GPU
	name    string
	prof    Profile
	active  bool
	virtTax float64 // multiplicative render-time overhead (containers)

	busy       sim.Duration
	frames     int64
	started    sim.Time
	l2Acc      float64
	l2Miss     float64
	texAcc     float64
	texMiss    float64
	lastRender sim.Duration
}

// NewContext registers a rendering context.
func (g *GPU) NewContext(name string, p Profile) *Context {
	c := &Context{gpu: g, name: name, prof: p, started: g.k.Now()}
	g.contexts = append(g.contexts, c)
	return c
}

// SetActive marks the context as live (contending for the shared L2).
func (c *Context) SetActive(a bool) { c.active = a }

// SetVirtTax sets the container GPU-virtualization overhead fraction
// (e.g. 0.03 for +3% render time).
func (c *Context) SetVirtTax(tax float64) { c.virtTax = tax }

// Name reports the context label.
func (c *Context) Name() string { return c.name }

// Profile reports the context's GPU profile.
func (c *Context) Profile() Profile { return c.prof }

// coRunners counts other active contexts.
func (c *Context) coRunners() float64 {
	n := 0.0
	for _, o := range c.gpu.contexts {
		if o != c && o.active {
			n += o.prof.L2Sensitivity*0.5 + 0.5
		}
	}
	return n
}

// L2MissRate reports the current shared-L2 miss ratio under co-location.
func (c *Context) L2MissRate() float64 {
	mr := c.prof.BaseL2Miss + c.gpu.MissSlope*c.coRunners()*(0.5+c.prof.L2Sensitivity)
	if mr > 0.95 {
		mr = 0.95
	}
	return mr
}

// TexMissRate reports the (private, therefore contention-flat) texture
// cache miss ratio.
func (c *Context) TexMissRate() float64 { return c.prof.TexMiss }

// Render submits one frame; done fires when the GPU finishes it.
// complexity scales draw cost around 1.0 (scene-dependent).
// The render time inflates with shared-L2 contention; queueing behind
// other instances' frames is emergent from the engine FIFO.
func (c *Context) Render(complexity float64, done func()) {
	if complexity <= 0 {
		complexity = 1
	}
	c.gpu.engine.Use(func() sim.Duration {
		extraMiss := c.L2MissRate() - c.prof.BaseL2Miss
		inflate := 1 + c.gpu.MissPenalty*extraMiss
		ms := c.prof.BaseRenderMs * complexity * inflate * (1 + c.virtTax)
		d := c.gpu.rng.Jitter(sim.DurationOfSeconds(ms/1e3), c.prof.RenderJitter)
		c.lastRender = d
		return d
	}, func() {
		c.busy += c.lastRender
		c.frames++
		// Synthetic PMU traffic: accesses scale with render time.
		accesses := float64(c.lastRender) / float64(sim.Millisecond) * 5e4
		l2mr := c.L2MissRate()
		c.l2Acc += accesses
		c.l2Miss += accesses * l2mr
		c.texAcc += accesses * 2.5
		c.texMiss += accesses * 2.5 * c.prof.TexMiss
		done()
	})
}

// Timestamp reports the GPU's current time (for GL time queries).
func (c *Context) Timestamp() sim.Time { return c.gpu.k.Now() }

// Frames reports the number of frames this context has rendered.
func (c *Context) Frames() int64 { return c.frames }

// BusyTime reports this context's cumulative render time.
func (c *Context) BusyTime() sim.Duration { return c.busy }

// Utilization reports the fraction (%) of wall time this context kept
// the GPU busy since accounting started.
func (c *Context) Utilization() float64 {
	elapsed := c.gpu.k.Now().Sub(c.started)
	if elapsed <= 0 {
		return 0
	}
	return float64(c.busy) / float64(elapsed) * 100
}

// ObservedL2MissRate reports the PMU-accumulated shared-L2 miss ratio.
// Contexts without PMU support report -1 (the paper's "N/A" for 0 A.D.).
func (c *Context) ObservedL2MissRate() float64 {
	if !c.prof.SupportsPMU {
		return -1
	}
	if c.l2Acc == 0 {
		return c.L2MissRate()
	}
	return c.l2Miss / c.l2Acc
}

// ObservedTexMissRate reports the PMU-accumulated texture miss ratio,
// or -1 without PMU support.
func (c *Context) ObservedTexMissRate() float64 {
	if !c.prof.SupportsPMU {
		return -1
	}
	if c.texAcc == 0 {
		return c.prof.TexMiss
	}
	return c.texMiss / c.texAcc
}

// ResetAccounting clears utilization/PMU accumulation (post-warmup).
func (c *Context) ResetAccounting() {
	c.busy = 0
	c.frames = 0
	c.started = c.gpu.k.Now()
	c.l2Acc, c.l2Miss, c.texAcc, c.texMiss = 0, 0, 0, 0
}

// QueueLen reports frames waiting for the render engine.
func (g *GPU) QueueLen() int { return g.engine.QueueLen() }
