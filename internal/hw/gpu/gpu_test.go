package gpu

import (
	"testing"

	"pictor/internal/sim"
)

func testProfile() Profile {
	return Profile{
		BaseRenderMs:  8,
		RenderJitter:  0, // deterministic for tests
		BaseL2Miss:    0.30,
		TexMiss:       0.22,
		L2Sensitivity: 0.7,
		MemoryMB:      500,
		SupportsPMU:   true,
	}
}

func TestSoloRenderTakesBaseTime(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	c := g.NewContext("app", testProfile())
	c.SetActive(true)
	var end sim.Time
	c.Render(1.0, func() { end = k.Now() })
	k.Run()
	if end != sim.Time(8*sim.Millisecond) {
		t.Fatalf("solo render ended at %v, want 8ms", end)
	}
	if c.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1", c.Frames())
	}
}

func TestComplexityScalesRenderTime(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	c := g.NewContext("app", testProfile())
	c.SetActive(true)
	var end sim.Time
	c.Render(2.0, func() { end = k.Now() })
	k.Run()
	if end != sim.Time(16*sim.Millisecond) {
		t.Fatalf("2x-complexity render ended at %v, want 16ms", end)
	}
}

func TestEngineSerializesAcrossContexts(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	a := g.NewContext("a", testProfile())
	b := g.NewContext("b", testProfile())
	a.SetActive(true)
	b.SetActive(true)
	var aEnd, bEnd sim.Time
	a.Render(1, func() { aEnd = k.Now() })
	b.Render(1, func() { bEnd = k.Now() })
	k.Run()
	if bEnd <= aEnd {
		t.Fatalf("second context's frame finished at %v, not after first (%v)", bEnd, aEnd)
	}
	// With contention the L2 miss rate rises, so each render exceeds 8ms.
	if aEnd <= sim.Time(8*sim.Millisecond) {
		t.Fatalf("contended render ended at %v, want > 8ms", aEnd)
	}
}

func TestL2MissGrowsWithCoRunnersTexFlat(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	c := g.NewContext("c", testProfile())
	c.SetActive(true)
	solo := c.L2MissRate()
	soloTex := c.TexMissRate()
	for i := 0; i < 3; i++ {
		o := g.NewContext("o", testProfile())
		o.SetActive(true)
	}
	loaded := c.L2MissRate()
	if loaded <= solo {
		t.Fatalf("shared L2 miss did not grow: %v -> %v", solo, loaded)
	}
	if c.TexMissRate() != soloTex {
		t.Fatalf("private texture miss changed under co-location: %v -> %v", soloTex, c.TexMissRate())
	}
}

func TestPMUUnsupportedReportsNA(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	p := testProfile()
	p.SupportsPMU = false // 0 A.D.: OpenGL 1.3
	c := g.NewContext("0ad", p)
	c.SetActive(true)
	if got := c.ObservedL2MissRate(); got != -1 {
		t.Fatalf("ObservedL2MissRate without PMU = %v, want -1", got)
	}
	if got := c.ObservedTexMissRate(); got != -1 {
		t.Fatalf("ObservedTexMissRate without PMU = %v, want -1", got)
	}
}

func TestObservedMissRatesAfterTraffic(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	c := g.NewContext("c", testProfile())
	c.SetActive(true)
	for i := 0; i < 5; i++ {
		c.Render(1, func() {})
	}
	k.Run()
	if got := c.ObservedL2MissRate(); got < 0.25 || got > 0.4 {
		t.Fatalf("observed L2 miss = %v, want near base 0.30", got)
	}
	if got := c.ObservedTexMissRate(); got < 0.21 || got > 0.23 {
		t.Fatalf("observed tex miss = %v, want near 0.22", got)
	}
}

func TestUtilization(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	c := g.NewContext("c", testProfile())
	c.SetActive(true)
	c.Render(1, func() {})
	k.Run()
	k.RunUntil(sim.Time(100 * sim.Millisecond))
	// 8ms busy over 100ms = 8%.
	if got := c.Utilization(); got < 7.5 || got > 8.5 {
		t.Fatalf("utilization = %v%%, want ~8%%", got)
	}
}

func TestVirtTaxInflatesRender(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	c := g.NewContext("c", testProfile())
	c.SetActive(true)
	c.SetVirtTax(0.25)
	var end sim.Time
	c.Render(1, func() { end = k.Now() })
	k.Run()
	if end != sim.Time(10*sim.Millisecond) {
		t.Fatalf("virtualized render ended at %v, want 10ms (8ms × 1.25)", end)
	}
}

func TestResetAccounting(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	c := g.NewContext("c", testProfile())
	c.SetActive(true)
	c.Render(1, func() {})
	k.Run()
	c.ResetAccounting()
	if c.Frames() != 0 || c.BusyTime() != 0 {
		t.Fatal("accounting not cleared")
	}
	if got := c.ObservedL2MissRate(); got < 0.29 || got > 0.31 {
		t.Fatalf("post-reset observed miss should fall back to instantaneous: %v", got)
	}
}

func TestZeroComplexityClamped(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, sim.NewRNG(1))
	c := g.NewContext("c", testProfile())
	c.SetActive(true)
	var end sim.Time
	c.Render(0, func() { end = k.Now() })
	k.Run()
	if end != sim.Time(8*sim.Millisecond) {
		t.Fatalf("zero-complexity render ended at %v, want clamped to 8ms", end)
	}
}
