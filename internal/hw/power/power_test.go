package power

import (
	"math"
	"testing"
)

func TestIdleFloor(t *testing.T) {
	m := Default()
	if got := m.TotalWatts(0, 0, 0); got != m.IdleWatts {
		t.Fatalf("idle power = %v, want %v", got, m.IdleWatts)
	}
}

func TestActivityAddsPower(t *testing.T) {
	m := Default()
	idle := m.TotalWatts(0, 0, 0)
	busy := m.TotalWatts(400, 50, 1)
	if busy <= idle {
		t.Fatalf("busy power %v not above idle %v", busy, idle)
	}
	want := m.IdleWatts + 4*m.CPUWattsPerCore + 0.5*m.GPUMaxWatts + m.PerInstanceWatts
	if math.Abs(busy-want) > 1e-9 {
		t.Fatalf("busy power = %v, want %v", busy, want)
	}
}

func TestGPUUtilClamped(t *testing.T) {
	m := Default()
	if m.TotalWatts(0, 150, 0) != m.TotalWatts(0, 100, 0) {
		t.Fatal("GPU util above 100% should clamp")
	}
	if m.TotalWatts(-10, -10, 0) != m.IdleWatts {
		t.Fatal("negative utils should clamp to idle")
	}
}

func TestPerInstanceEconomics(t *testing.T) {
	// The paper's Figure 17: per-instance power falls steeply with
	// consolidation because the idle floor is shared. Check the shape:
	// going 1→2 instances with less-than-double activity must cut
	// per-instance power by ≥ 25%.
	m := Default()
	one := m.PerInstanceWattsAt(450, 35, 1)
	two := m.PerInstanceWattsAt(700, 55, 2)
	reduction := (one - two) / one * 100
	if reduction < 25 {
		t.Fatalf("2-instance per-instance reduction = %.1f%%, want ≥ 25%%", reduction)
	}
	four := m.PerInstanceWattsAt(900, 80, 4)
	reduction4 := (one - four) / one * 100
	if reduction4 <= reduction {
		t.Fatalf("4-instance reduction (%.1f%%) should beat 2-instance (%.1f%%)", reduction4, reduction)
	}
}

func TestPerInstanceZeroInstances(t *testing.T) {
	if got := Default().PerInstanceWattsAt(100, 10, 0); got != 0 {
		t.Fatalf("per-instance power with 0 instances = %v, want 0", got)
	}
}
