// Package power models server power draw the way the paper measures it
// (a wall meter): a large idle floor plus dynamic power proportional to
// CPU and GPU activity. Because the idle floor dominates, consolidating
// instances onto one server cuts per-instance power sharply — the
// Figure 17 result (−33%, −50%, −61% for 2–4 instances).
package power

// Model converts utilization into watts.
type Model struct {
	// IdleWatts is the wall draw of the powered-on but idle server.
	IdleWatts float64
	// CPUWattsPerCore is dynamic power per fully-busy core.
	CPUWattsPerCore float64
	// GPUMaxWatts is dynamic power at 100% GPU utilization.
	GPUMaxWatts float64
	// PerInstanceWatts is fixed overhead per running instance (extra
	// NIC activity, DRAM, fans).
	PerInstanceWatts float64
}

// Default returns the calibration used for the Figure 17 reproduction:
// idle-dominated, matching a workstation-class server with a GTX1080Ti.
func Default() Model {
	return Model{
		IdleWatts:        120,
		CPUWattsPerCore:  6,
		GPUMaxWatts:      160,
		PerInstanceWatts: 6,
	}
}

// TotalWatts reports wall power for the given activity. cpuUtilPercent
// is top-style (100 = one core); gpuUtilPercent is 0–100 for the device.
func (m Model) TotalWatts(cpuUtilPercent, gpuUtilPercent float64, instances int) float64 {
	if cpuUtilPercent < 0 {
		cpuUtilPercent = 0
	}
	if gpuUtilPercent < 0 {
		gpuUtilPercent = 0
	}
	if gpuUtilPercent > 100 {
		gpuUtilPercent = 100
	}
	return m.IdleWatts +
		m.CPUWattsPerCore*cpuUtilPercent/100 +
		m.GPUMaxWatts*gpuUtilPercent/100 +
		m.PerInstanceWatts*float64(instances)
}

// PerInstanceWattsAt reports watts per instance at the given activity.
func (m Model) PerInstanceWattsAt(cpuUtilPercent, gpuUtilPercent float64, instances int) float64 {
	if instances <= 0 {
		return 0
	}
	return m.TotalWatts(cpuUtilPercent, gpuUtilPercent, instances) / float64(instances)
}
