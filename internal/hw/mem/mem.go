// Package mem models the server's shared memory hierarchy: the last-level
// (L3) cache and DRAM. Its job in Pictor is to turn co-location into the
// contention signals the paper measures — L3 miss rates that climb as more
// 3D instances share the machine (Figure 15) and the memory component of
// CPU backend stalls (Figure 14).
//
// Cloud 3D workloads are unusual here: even a single instance shows >70% L3
// miss rates because CPU→GPU communication uses uncached/write-combining
// memory (paper §5.1.3), so the model's per-client base miss rates start
// high and contention pushes them toward saturation.
package mem

import "math"

// Profile describes a client's memory behaviour.
type Profile struct {
	// BaseMissRate is the L3 miss ratio (misses/accesses) when running
	// alone. 3D apps are typically > 0.70.
	BaseMissRate float64
	// Intensity in [0,1] scales how much traffic the client pushes into
	// the shared cache/DRAM, i.e. how much it hurts (and is hurt by)
	// co-runners.
	Intensity float64
	// Sensitivity in [0,1] scales how strongly the client's CPI degrades
	// per unit of contention it experiences.
	Sensitivity float64
	// AccessesPerMs is the synthetic L3 access rate used for PMU
	// counter reporting.
	AccessesPerMs float64
	// FootprintMB is resident CPU memory, reported for Figure 8's
	// discussion (600 MB – 4 GB across the suite).
	FootprintMB float64
}

// System is the machine-wide shared memory hierarchy.
type System struct {
	// MissSlope converts aggregate co-runner intensity into added miss
	// rate. Calibrated so four instances land in the high-80s/90s
	// percent region of Figure 15.
	MissSlope float64
	// PenaltyScale converts (missRate × sensitivity × contention) into a
	// CPI multiplier for CPU work.
	PenaltyScale float64

	clients []*Client
}

// NewSystem returns a memory system with the default calibration.
func NewSystem() *System {
	return &System{MissSlope: 0.055, PenaltyScale: 1.05}
}

// Client is one process's view of the memory system.
type Client struct {
	sys     *System
	name    string
	prof    Profile
	active  bool
	hits    float64
	misses  float64
	lastObs float64 // last observed miss rate (for PMU reads)
}

// Register adds a client. Clients start inactive; activate them when
// their instance starts so idle instances don't contend.
func (s *System) Register(name string, p Profile) *Client {
	c := &Client{sys: s, name: name, prof: p}
	s.clients = append(s.clients, c)
	return c
}

// SetActive marks the client as running (contending) or not.
func (c *Client) SetActive(a bool) { c.active = a }

// Name reports the client label.
func (c *Client) Name() string { return c.name }

// Profile reports the client's memory profile.
func (c *Client) Profile() Profile { return c.prof }

// contentionIndex is the total intensity of *other* active clients —
// the pressure this client experiences.
func (c *Client) contentionIndex() float64 {
	var idx float64
	for _, o := range c.sys.clients {
		if o != c && o.active {
			idx += o.prof.Intensity
		}
	}
	return idx
}

// MissRate reports the client's current L3 miss ratio given present
// co-location. It grows with co-runner intensity and saturates below 1.
func (c *Client) MissRate() float64 {
	idx := c.contentionIndex()
	mr := c.prof.BaseMissRate + c.sys.MissSlope*idx*(0.5+c.prof.Sensitivity)
	c.lastObs = math.Min(mr, 0.985)
	return c.lastObs
}

// CPIFactor reports the multiplicative CPU-time penalty for the client's
// compute under current contention. Running alone it is exactly 1 (the
// baseline profiles already include the solo memory behaviour).
func (c *Client) CPIFactor() float64 {
	idx := c.contentionIndex()
	if idx <= 0 {
		return 1
	}
	extraMiss := c.MissRate() - c.prof.BaseMissRate
	return 1 + c.sys.PenaltyScale*extraMiss*(0.5+1.5*c.prof.Sensitivity)*math.Sqrt(idx)
}

// Account records PMU-visible cache traffic for work that consumed
// cpuMs milliseconds of CPU time.
func (c *Client) Account(cpuMs float64) {
	accesses := c.prof.AccessesPerMs * cpuMs
	mr := c.MissRate()
	c.misses += accesses * mr
	c.hits += accesses * (1 - mr)
}

// Counters reports accumulated L3 accesses and misses.
func (c *Client) Counters() (accesses, misses float64) {
	return c.hits + c.misses, c.misses
}

// ObservedMissRate reports misses/accesses over everything accounted so
// far (the number Figure 15 plots).
func (c *Client) ObservedMissRate() float64 {
	a, m := c.Counters()
	if a == 0 {
		return c.MissRate()
	}
	return m / a
}

// ActiveClients reports how many clients are currently active.
func (s *System) ActiveClients() int {
	n := 0
	for _, c := range s.clients {
		if c.active {
			n++
		}
	}
	return n
}
