package mem

import (
	"testing"
	"testing/quick"
)

func testProfile() Profile {
	return Profile{
		BaseMissRate:  0.72,
		Intensity:     0.8,
		Sensitivity:   0.6,
		AccessesPerMs: 1000,
		FootprintMB:   1200,
	}
}

func TestSoloClientSeesBaseBehaviour(t *testing.T) {
	s := NewSystem()
	c := s.Register("solo", testProfile())
	c.SetActive(true)
	if got := c.MissRate(); got != 0.72 {
		t.Fatalf("solo miss rate = %v, want base 0.72", got)
	}
	if got := c.CPIFactor(); got != 1 {
		t.Fatalf("solo CPI factor = %v, want 1", got)
	}
}

func TestContentionRaisesMissRateAndCPI(t *testing.T) {
	s := NewSystem()
	a := s.Register("a", testProfile())
	b := s.Register("b", testProfile())
	a.SetActive(true)
	soloMiss := a.MissRate()
	b.SetActive(true)
	dualMiss := a.MissRate()
	if dualMiss <= soloMiss {
		t.Fatalf("miss rate did not grow under contention: %v -> %v", soloMiss, dualMiss)
	}
	if cpi := a.CPIFactor(); cpi <= 1 {
		t.Fatalf("CPI factor under contention = %v, want > 1", cpi)
	}
}

func TestMissRateMonotoneInCoRunners(t *testing.T) {
	s := NewSystem()
	target := s.Register("target", testProfile())
	target.SetActive(true)
	var others []*Client
	prev := target.MissRate()
	for i := 0; i < 3; i++ {
		o := s.Register("other", testProfile())
		o.SetActive(true)
		others = append(others, o)
		cur := target.MissRate()
		if cur <= prev {
			t.Fatalf("miss rate not monotone: %v after %d co-runners", cur, i+1)
		}
		prev = cur
	}
	// Deactivating co-runners restores the solo rate.
	for _, o := range others {
		o.SetActive(false)
	}
	if got := target.MissRate(); got != 0.72 {
		t.Fatalf("miss rate after co-runners left = %v, want 0.72", got)
	}
}

func TestMissRateSaturates(t *testing.T) {
	s := NewSystem()
	target := s.Register("target", testProfile())
	target.SetActive(true)
	for i := 0; i < 100; i++ {
		o := s.Register("noise", testProfile())
		o.SetActive(true)
	}
	if got := target.MissRate(); got > 0.985 {
		t.Fatalf("miss rate exceeded cap: %v", got)
	}
}

func TestAccountingObservedMissRate(t *testing.T) {
	s := NewSystem()
	c := s.Register("c", testProfile())
	c.SetActive(true)
	c.Account(10) // 10 ms of CPU time
	acc, miss := c.Counters()
	if acc != 10000 {
		t.Fatalf("accesses = %v, want 10000", acc)
	}
	if miss != 7200 {
		t.Fatalf("misses = %v, want 7200", miss)
	}
	if got := c.ObservedMissRate(); got != 0.72 {
		t.Fatalf("observed miss rate = %v, want 0.72", got)
	}
}

func TestObservedMissRateWithoutTraffic(t *testing.T) {
	s := NewSystem()
	c := s.Register("c", testProfile())
	c.SetActive(true)
	if got := c.ObservedMissRate(); got != 0.72 {
		t.Fatalf("observed (no traffic) = %v, want instantaneous 0.72", got)
	}
}

func TestActiveClients(t *testing.T) {
	s := NewSystem()
	a := s.Register("a", testProfile())
	b := s.Register("b", testProfile())
	if s.ActiveClients() != 0 {
		t.Fatal("fresh system should have 0 active clients")
	}
	a.SetActive(true)
	b.SetActive(true)
	if s.ActiveClients() != 2 {
		t.Fatalf("ActiveClients = %d, want 2", s.ActiveClients())
	}
	b.SetActive(false)
	if s.ActiveClients() != 1 {
		t.Fatalf("ActiveClients = %d, want 1", s.ActiveClients())
	}
}

// Property: CPI factor is always >= 1 and miss rate stays in (0, 1).
func TestBoundsProperty(t *testing.T) {
	f := func(nOthers uint8, intensity, sensitivity uint8) bool {
		s := NewSystem()
		p := testProfile()
		p.Intensity = float64(intensity%100) / 100
		p.Sensitivity = float64(sensitivity%100) / 100
		c := s.Register("c", p)
		c.SetActive(true)
		for i := 0; i < int(nOthers%16); i++ {
			o := s.Register("o", p)
			o.SetActive(true)
		}
		mr := c.MissRate()
		return c.CPIFactor() >= 1 && mr > 0 && mr < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
