// Package pcie models the PCIe interconnect between CPU and GPU as two
// directional shared-bandwidth links. Frame copies (the FC stage, the
// paper's surprise bottleneck) ride the GPU→CPU link; texture/vertex
// uploads ride the CPU→GPU link. Per-client byte accounting feeds
// Figure 9.
package pcie

import "pictor/internal/sim"

// Direction selects a PCIe link direction.
type Direction int

const (
	// ToGPU is CPU→GPU (uploads: textures, vertex data).
	ToGPU Direction = iota
	// FromGPU is GPU→CPU (readback: frame copies).
	FromGPU
)

func (d Direction) String() string {
	if d == ToGPU {
		return "to-gpu"
	}
	return "from-gpu"
}

// Bus is the PCIe interconnect.
type Bus struct {
	k    *sim.Kernel
	up   *sim.SharedLink // CPU→GPU
	down *sim.SharedLink // GPU→CPU
	// DMASetup is the fixed per-transfer initiation cost (driver ioctl,
	// doorbell, completion interrupt).
	DMASetup sim.Duration

	clients []*Client
}

// New creates a PCIe bus. capacity is per-direction, in bytes/second
// (PCIe 3.0 x16 ≈ 15.75 GB/s per direction; the paper quotes the 31.5
// GB/s bidirectional aggregate).
func New(k *sim.Kernel, capacityBytesPerSec float64) *Bus {
	return &Bus{
		k:        k,
		up:       sim.NewSharedLink(k, "pcie-up", capacityBytesPerSec),
		down:     sim.NewSharedLink(k, "pcie-down", capacityBytesPerSec),
		DMASetup: 200 * sim.Microsecond,
	}
}

// Client accounts one instance's PCIe traffic.
type Client struct {
	bus       *Bus
	name      string
	started   sim.Time
	upBytes   float64
	downBytes float64
}

// NewClient registers a traffic account.
func (b *Bus) NewClient(name string) *Client {
	c := &Client{bus: b, name: name, started: b.k.Now()}
	b.clients = append(b.clients, c)
	return c
}

// Name reports the client label.
func (c *Client) Name() string { return c.name }

// Transfer moves size bytes in the given direction; done fires when the
// DMA completes. Bandwidth is shared with all concurrent transfers in
// the same direction.
func (c *Client) Transfer(dir Direction, size float64, done func()) {
	if size < 0 {
		size = 0
	}
	link := c.bus.down
	if dir == ToGPU {
		link = c.bus.up
		c.upBytes += size
	} else {
		c.downBytes += size
	}
	c.bus.k.After(c.bus.DMASetup, func() {
		link.Transfer(size, done)
	})
}

// Bytes reports cumulative traffic in each direction.
func (c *Client) Bytes() (toGPU, fromGPU float64) { return c.upBytes, c.downBytes }

// BandwidthMBs reports average bandwidth use (MB/s) in each direction
// since accounting started.
func (c *Client) BandwidthMBs() (toGPU, fromGPU float64) {
	elapsed := c.bus.k.Now().Sub(c.started).Seconds()
	if elapsed <= 0 {
		return 0, 0
	}
	return c.upBytes / 1e6 / elapsed, c.downBytes / 1e6 / elapsed
}

// ResetAccounting restarts the byte counters (post-warmup).
func (c *Client) ResetAccounting() {
	c.upBytes, c.downBytes = 0, 0
	c.started = c.bus.k.Now()
}

// ActiveTransfers reports in-flight DMAs per direction.
func (b *Bus) ActiveTransfers() (toGPU, fromGPU int) {
	return b.up.ActiveTransfers(), b.down.ActiveTransfers()
}
