package pcie

import (
	"math"
	"testing"

	"pictor/internal/sim"
)

func TestTransferTime(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, 1e9) // 1 GB/s for easy math
	c := b.NewClient("app")
	var end sim.Time
	c.Transfer(FromGPU, 1e6, func() { end = k.Now() }) // 1 MB
	k.Run()
	want := 1e-3 + b.DMASetup.Seconds() // 1ms wire + setup
	if math.Abs(end.Seconds()-want) > 1e-6 {
		t.Fatalf("1MB at 1GB/s took %vs, want %vs", end.Seconds(), want)
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, 1e9)
	c := b.NewClient("app")
	var upEnd, downEnd sim.Time
	c.Transfer(ToGPU, 1e6, func() { upEnd = k.Now() })
	c.Transfer(FromGPU, 1e6, func() { downEnd = k.Now() })
	k.Run()
	// Equal-size transfers in opposite directions don't share bandwidth.
	if upEnd != downEnd {
		t.Fatalf("opposite directions interfered: up %v, down %v", upEnd, downEnd)
	}
}

func TestSameDirectionShares(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, 1e9)
	c1 := b.NewClient("a")
	c2 := b.NewClient("b")
	var end1 sim.Time
	c1.Transfer(FromGPU, 1e6, func() { end1 = k.Now() })
	c2.Transfer(FromGPU, 1e6, nil)
	k.Run()
	soloTime := 1e-3 + b.DMASetup.Seconds()
	if end1.Seconds() <= soloTime {
		t.Fatalf("shared-direction transfer finished at %v, want > solo %v", end1.Seconds(), soloTime)
	}
}

func TestByteAccounting(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, 1e9)
	c := b.NewClient("app")
	c.Transfer(ToGPU, 1000, nil)
	c.Transfer(FromGPU, 2000, nil)
	c.Transfer(FromGPU, 3000, nil)
	k.Run()
	up, down := c.Bytes()
	if up != 1000 || down != 5000 {
		t.Fatalf("Bytes = (%v, %v), want (1000, 5000)", up, down)
	}
}

func TestBandwidthMBs(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, 1e9)
	c := b.NewClient("app")
	c.Transfer(FromGPU, 10e6, nil)
	k.Run()
	k.RunUntil(sim.Time(sim.Second))
	_, down := c.BandwidthMBs()
	if math.Abs(down-10) > 0.1 {
		t.Fatalf("down bandwidth = %v MB/s, want ~10", down)
	}
}

func TestResetAccounting(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, 1e9)
	c := b.NewClient("app")
	c.Transfer(FromGPU, 10e6, nil)
	k.Run()
	c.ResetAccounting()
	up, down := c.Bytes()
	if up != 0 || down != 0 {
		t.Fatalf("Bytes after reset = (%v, %v), want zeros", up, down)
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, 1e9)
	c := b.NewClient("app")
	done := false
	c.Transfer(FromGPU, -5, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("negative-size transfer never completed")
	}
}

func TestDirectionString(t *testing.T) {
	if ToGPU.String() != "to-gpu" || FromGPU.String() != "from-gpu" {
		t.Fatal("direction strings wrong")
	}
}
