package proto

import (
	"testing"

	"pictor/internal/scene"
)

func TestInputZeroValueIsUntagged(t *testing.T) {
	var in Input
	if in.Tag != 0 {
		t.Fatal("zero input must be untagged")
	}
	if in.Action != scene.ActNone {
		t.Fatal("zero input must carry no action")
	}
}

func TestInputBytesPlausible(t *testing.T) {
	// The paper measures ~1.5 Mbps of aggregate input traffic: a few
	// hundred bytes per event at human input rates.
	if InputBytes < 32 || InputBytes > 1500 {
		t.Fatalf("InputBytes = %d, implausible for a key/motion event", InputBytes)
	}
}
