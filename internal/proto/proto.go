// Package proto defines the messages exchanged between the client proxy,
// server proxy and application — the wire/IPC vocabulary of the cloud
// rendering system in Figure 1 of the paper.
package proto

import (
	"pictor/internal/scene"
	"pictor/internal/sim"
)

// InputBytes is the network size of one input message (key/mouse/motion
// event plus protocol framing). The paper measures input traffic at
// about 1.5 Mbps total, i.e. a few hundred bytes per event.
const InputBytes = 120

// Input is one user input travelling client → server → application.
type Input struct {
	// Tag is the unique tracking tag assigned at hook1 by the client
	// proxy. Zero means untagged (tracing disabled).
	Tag uint64
	// Action is the semantic input.
	Action scene.Action
	// Issued is the client-proxy send time.
	Issued sim.Time
}
