// Package gl models the OpenGL surface the cloud rendering stack
// drives: buffer swaps that submit GPU work (hook5), synchronous and
// asynchronous (PBO-style) pixel readback over PCIe (hook6 — the FC
// stage), and GPU time queries with the single- vs double-buffered
// behaviour whose overhead the paper measures.
package gl

import (
	"pictor/internal/hw/gpu"
	"pictor/internal/hw/pcie"
	"pictor/internal/scene"
	"pictor/internal/sim"
)

// Context is one application's GL context.
type Context struct {
	k    *sim.Kernel
	gctx *gpu.Context
	bus  *pcie.Client
}

// NewContext binds a GL context to a GPU rendering context and a PCIe
// traffic account.
func NewContext(k *sim.Kernel, gctx *gpu.Context, bus *pcie.Client) *Context {
	return &Context{k: k, gctx: gctx, bus: bus}
}

// RenderHandle tracks one in-flight frame through render and readback.
type RenderHandle struct {
	ctx   *Context
	Frame *scene.Frame

	submitted    sim.Time
	finished     sim.Time
	renderDone   bool
	renderWaiter []func()

	readStarted bool
	readDone    bool
	readWaiter  []func()
}

// SwapBuffers submits the frame for rendering (hook5) and returns a
// handle. Upload traffic for the frame's changed scene data is charged
// to the CPU→GPU PCIe direction (uploadBytes; STK's drastically changing
// frames make this large).
func (c *Context) SwapBuffers(f *scene.Frame, uploadBytes float64) *RenderHandle {
	h := &RenderHandle{ctx: c, Frame: f, submitted: c.k.Now()}
	if uploadBytes > 0 {
		c.bus.Transfer(pcie.ToGPU, uploadBytes, func() {})
	}
	c.gctx.Render(f.Complexity, func() {
		h.renderDone = true
		h.finished = c.k.Now()
		for _, fn := range h.renderWaiter {
			c.k.After(0, fn)
		}
		h.renderWaiter = nil
	})
	return h
}

// OnRenderDone invokes fn when the GPU finishes the frame (immediately,
// as a fresh event, if already done).
func (h *RenderHandle) OnRenderDone(fn func()) {
	if h.renderDone {
		h.ctx.k.After(0, fn)
		return
	}
	h.renderWaiter = append(h.renderWaiter, fn)
}

// RenderDone reports whether the GPU has finished the frame.
func (h *RenderHandle) RenderDone() bool { return h.renderDone }

// RenderLatency reports submit→finish time (the interval a hook5→hook6
// GPU time query measures). Zero until the render completes.
func (h *RenderHandle) RenderLatency() sim.Duration {
	if !h.renderDone {
		return 0
	}
	return h.finished.Sub(h.submitted)
}

// ReadPixels performs a synchronous glReadPixels: wait for the render,
// DMA the framebuffer over PCIe (GPU→CPU), then done. This is the
// baseline (halting) frame-copy path.
func (h *RenderHandle) ReadPixels(done func()) {
	h.OnRenderDone(func() {
		h.ctx.bus.Transfer(pcie.FromGPU, h.Frame.RawBytes(), func() {
			h.readDone = true
			done()
		})
	})
}

// StartAsyncRead begins a PBO-style asynchronous readback: the DMA is
// queued behind the render and proceeds without CPU involvement. This
// is the first half of §6's two-step copy optimization (FCStart).
func (h *RenderHandle) StartAsyncRead() {
	if h.readStarted {
		return
	}
	h.readStarted = true
	h.OnRenderDone(func() {
		h.ctx.bus.Transfer(pcie.FromGPU, h.Frame.RawBytes(), func() {
			h.readDone = true
			for _, fn := range h.readWaiter {
				h.ctx.k.After(0, fn)
			}
			h.readWaiter = nil
		})
	})
}

// FinishAsyncRead waits (usually not at all) for the asynchronous
// readback to land, then calls done — the second half (FCEnd) of the
// two-step copy. Calling it without StartAsyncRead starts the read.
func (h *RenderHandle) FinishAsyncRead(done func()) {
	if !h.readStarted {
		h.StartAsyncRead()
	}
	if h.readDone {
		h.ctx.k.After(0, done)
		return
	}
	h.readWaiter = append(h.readWaiter, done)
}

// ReadDone reports whether the framebuffer has landed in host memory.
func (h *RenderHandle) ReadDone() bool { return h.readDone }

// QueryStall reports the CPU stall incurred by reading this frame's GPU
// time query. With double buffering the application reads the previous
// frame's (ready) result and pays only a sync cost; single-buffered it
// blocks until this frame's render completes — the behaviour behind the
// paper's up-to-10% overhead without double buffers.
func (h *RenderHandle) QueryStall(doubleBuffered bool) sim.Duration {
	if doubleBuffered {
		return 60 * sim.Microsecond
	}
	if h.renderDone {
		return 250 * sim.Microsecond
	}
	// Remaining render time must be waited out. Estimate with the
	// frame's nominal cost; the caller charges this as wall stall.
	return sim.DurationOfSeconds(h.ctx.gctx.Profile().BaseRenderMs * 0.6 / 1e3)
}
