package gl

import (
	"testing"

	"pictor/internal/hw/gpu"
	"pictor/internal/hw/pcie"
	"pictor/internal/scene"
	"pictor/internal/sim"
)

func testEnv() (*sim.Kernel, *Context, *pcie.Client) {
	k := sim.NewKernel()
	g := gpu.New(k, sim.NewRNG(1))
	ctx := g.NewContext("app", gpu.Profile{
		BaseRenderMs: 8, BaseL2Miss: 0.3, TexMiss: 0.2, SupportsPMU: true,
	})
	ctx.SetActive(true)
	bus := pcie.New(k, 1e9)
	cl := bus.NewClient("app")
	return k, NewContext(k, ctx, cl), cl
}

func testFrame() *scene.Frame {
	return &scene.Frame{Width: 1920, Height: 1080, Complexity: 1, Pixels: make([]float64, 16)}
}

func TestSwapBuffersRenders(t *testing.T) {
	k, ctx, _ := testEnv()
	h := ctx.SwapBuffers(testFrame(), 0)
	if h.RenderDone() {
		t.Fatal("render done before any time passed")
	}
	k.Run()
	if !h.RenderDone() {
		t.Fatal("render never completed")
	}
	if lat := h.RenderLatency(); lat != 8*sim.Millisecond {
		t.Fatalf("render latency = %v, want 8ms", lat)
	}
}

func TestOnRenderDoneAfterCompletion(t *testing.T) {
	k, ctx, _ := testEnv()
	h := ctx.SwapBuffers(testFrame(), 0)
	k.Run()
	fired := false
	h.OnRenderDone(func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("late OnRenderDone never fired")
	}
}

func TestReadPixelsWaitsForRenderThenDMA(t *testing.T) {
	k, ctx, cl := testEnv()
	h := ctx.SwapBuffers(testFrame(), 0)
	var done sim.Time
	h.ReadPixels(func() { done = k.Now() })
	k.Run()
	// 8ms render + DMA setup + 8.29MB over 1GB/s ≈ 8.3ms.
	if ms := done.Millis(); ms < 16 || ms > 18 {
		t.Fatalf("readback finished at %vms, want ~16.5ms", ms)
	}
	_, down := cl.Bytes()
	if down != testFrame().RawBytes() {
		t.Fatalf("PCIe moved %v bytes, want the framebuffer (%v)", down, testFrame().RawBytes())
	}
}

func TestAsyncReadOverlapsRender(t *testing.T) {
	k, ctx, _ := testEnv()
	h := ctx.SwapBuffers(testFrame(), 0)
	h.StartAsyncRead()
	k.Run()
	if !h.ReadDone() {
		t.Fatal("async read never landed")
	}
	// FinishAsyncRead after landing is (nearly) free.
	start := k.Now()
	var fin sim.Time
	h.FinishAsyncRead(func() { fin = k.Now() })
	k.Run()
	if fin.Sub(start) > sim.Millisecond {
		t.Fatalf("finish of landed read took %v", fin.Sub(start))
	}
}

func TestFinishWithoutStartStartsRead(t *testing.T) {
	k, ctx, _ := testEnv()
	h := ctx.SwapBuffers(testFrame(), 0)
	done := false
	h.FinishAsyncRead(func() { done = true })
	k.Run()
	if !done {
		t.Fatal("FinishAsyncRead without StartAsyncRead never completed")
	}
}

func TestUploadChargesPCIe(t *testing.T) {
	k, ctx, cl := testEnv()
	ctx.SwapBuffers(testFrame(), 2e6)
	k.Run()
	up, _ := cl.Bytes()
	if up != 2e6 {
		t.Fatalf("upload bytes = %v, want 2e6", up)
	}
}

func TestQueryStallBehaviour(t *testing.T) {
	k, ctx, _ := testEnv()
	h := ctx.SwapBuffers(testFrame(), 0)
	// Double-buffered: tiny fixed cost even mid-render.
	if s := h.QueryStall(true); s > sim.Millisecond {
		t.Fatalf("double-buffered query stall = %v", s)
	}
	// Single-buffered mid-render: a real stall.
	mid := h.QueryStall(false)
	if mid < sim.Millisecond {
		t.Fatalf("single-buffered mid-render stall = %v, want milliseconds", mid)
	}
	k.Run()
	// Single-buffered after completion: cheap.
	if s := h.QueryStall(false); s >= mid {
		t.Fatalf("post-render stall (%v) should undercut mid-render (%v)", s, mid)
	}
}
