package agent

import (
	"fmt"
	"math"
	"testing"

	"pictor/internal/app"
	"pictor/internal/scene"
	"pictor/internal/sim"
)

// The batched inference contract: for every registered workload profile
// (the paper's six plus the later scenario families) and across batch
// sizes spanning sub-chunk, chunk-boundary and multi-chunk flushes,
// BatchModels must produce byte-for-byte the results of the per-client
// clone-per-session architecture it replaced — detection, recurrent
// state and action logits alike.
func TestBatchMatchesPerClientAllProfiles(t *testing.T) {
	profiles := app.Suite()
	if len(profiles) < 9 {
		t.Fatalf("registry holds %d profiles, want the paper six plus CAD/VV/CZ", len(profiles))
	}
	const rounds = 4
	for pi, prof := range profiles {
		for _, batch := range []int{1, flushChunk, flushChunk*2 + 3} {
			t.Run(fmt.Sprintf("%s/B%d", prof.Name, batch), func(t *testing.T) {
				src := NewModels(101 + int64(pi))
				bm := NewBatchModels(src)
				sessions := make([]*BatchSession, batch)
				solo := make([]*Models, batch)
				for i := range sessions {
					sessions[i] = bm.NewSession()
					solo[i] = src.Clone()
				}
				// Each session watches its own evolving scene, so the
				// batch mixes genuinely different rasters.
				scenes := make([]*scene.Scene, batch)
				for i := range scenes {
					scenes[i] = scene.New(prof.Dynamics, sim.NewRNG(int64(1000*pi+i)))
				}
				for round := 0; round < rounds; round++ {
					frames := make([]*scene.Frame, batch)
					for i, sc := range scenes {
						sc.Step(scene.Action(round % int(scene.NumActions)))
						frames[i] = sc.Render(int64(round), prof.Width, prof.Height)
					}
					for i, s := range sessions {
						s.SubmitFrame(frames[i].Pixels)
					}
					// The first demand flushes the whole queue, like the
					// earliest cv-latency continuation in the simulator.
					for i, s := range sessions {
						got := s.Detected()
						want := solo[i].Detect(frames[i].Pixels)
						for cell := range want {
							if got[cell] != want[cell] {
								t.Fatalf("round %d session %d cell %d: batch detected %v, per-client %v",
									round, i, cell, got[cell], want[cell])
							}
						}
						gotL := s.NextActionLogits(got)
						wantL := solo[i].NextActionLogits(want)
						if len(gotL) != len(wantL) {
							t.Fatalf("logit lengths %d vs %d", len(gotL), len(wantL))
						}
						for j := range wantL {
							if math.Float64bits(gotL[j]) != math.Float64bits(wantL[j]) {
								t.Fatalf("round %d session %d logit %d: batch %x (%g), per-client %x (%g)",
									round, i, j, math.Float64bits(gotL[j]), gotL[j],
									math.Float64bits(wantL[j]), wantL[j])
							}
						}
					}
				}
			})
		}
	}
}

// NextActionLogitsAll must equal row-by-row calls — same recurrent
// update, head run as one batched matmul.
func TestNextActionLogitsAllMatchesPerSession(t *testing.T) {
	prof := app.Suite()[0]
	src := NewModels(7)
	const batch = 5
	bmAll, bmOne := NewBatchModels(src), NewBatchModels(src)
	all := make([]*BatchSession, batch)
	one := make([]*BatchSession, batch)
	detecteds := make([][]scene.Type, batch)
	sc := scene.New(prof.Dynamics, sim.NewRNG(3))
	for i := range all {
		all[i] = bmAll.NewSession()
		one[i] = bmOne.NewSession()
		sc.Step(scene.ActForward)
		f := sc.Render(int64(i), prof.Width, prof.Height)
		all[i].SubmitFrame(f.Pixels)
		one[i].SubmitFrame(f.Pixels)
		detecteds[i] = append([]scene.Type(nil), all[i].Detected()...)
	}
	for round := 0; round < 3; round++ {
		got := bmAll.NextActionLogitsAll(all, detecteds)
		for i, s := range one {
			want := s.NextActionLogits(detecteds[i])
			for j := range want {
				gv := got.Data[i*got.Shape[1]+j]
				if math.Float64bits(gv) != math.Float64bits(want[j]) {
					t.Fatalf("round %d session %d logit %d: all-pass %g, per-session %g", round, i, j, gv, want[j])
				}
			}
		}
	}
}
