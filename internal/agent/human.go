package agent

import (
	"pictor/internal/app"
	"pictor/internal/scene"
	"pictor/internal/sim"
)

// MinActionGap is the floor on time between two human inputs
// (≈ 300 actions/minute at sustained pace, per the paper's comparison
// with professional players).
const MinActionGap = 140 * sim.Millisecond

// Human is the reference player: it perceives the frame's objects
// directly (Frame.Cells), decides with the genre policy, and acts after
// a human reaction delay at a human action rate.
type Human struct {
	k    *sim.Kernel
	rng  *sim.RNG
	prof app.Profile
	send func(scene.Action)

	// Observer, when set, sees every displayed frame with the action
	// the human chose for it (ActNone when the human did not act) —
	// the recording tap.
	Observer func(f *scene.Frame, act scene.Action)

	nextAllowed sim.Time
	actions     int64
}

// NewHuman creates the reference player for a benchmark.
func NewHuman(k *sim.Kernel, rng *sim.RNG, prof app.Profile) *Human {
	return &Human{k: k, rng: rng.Fork("human-" + prof.Name), prof: prof}
}

// Attach implements vnc.Driver.
func (h *Human) Attach(send func(scene.Action)) { h.send = send }

// Actions reports how many inputs the human has issued.
func (h *Human) Actions() int64 { return h.actions }

// OnFrame implements vnc.Driver: maybe act on what is displayed. The
// human perceives the frame synchronously, so it is released before
// returning (observers copy what they keep).
func (h *Human) OnFrame(f *scene.Frame) {
	act := scene.ActNone
	if h.k.Now() >= h.nextAllowed && h.rng.Bool(h.prof.HumanActProb) {
		act = PolicyAction(h.prof, f.Cells, h.rng)
	}
	if h.Observer != nil {
		h.Observer(f, act)
	}
	f.Release()
	if act == scene.ActNone {
		return
	}
	reaction := h.rng.Jitter(sim.DurationOfSeconds(h.prof.HumanReactionMs/1e3), 0.25)
	h.nextAllowed = h.k.Now().Add(reaction + MinActionGap)
	h.actions++
	h.k.After(reaction, func() { h.send(act) })
}

// Sample is one recorded (frame, action) pair of a human session.
type Sample struct {
	Pixels []float64
	Cells  []scene.Cell
	Action scene.Action
}

// Recording is a captured human session: the training input for the
// intelligent client's CNN (labels from Cells) and LSTM (actions).
type Recording struct {
	Benchmark string
	Samples   []Sample
}

// NewRecorder taps a Human so every displayed frame and chosen action
// lands in the returned Recording.
func NewRecorder(h *Human, benchmark string) *Recording {
	rec := &Recording{Benchmark: benchmark}
	h.Observer = func(f *scene.Frame, act scene.Action) {
		px := make([]float64, len(f.Pixels))
		copy(px, f.Pixels)
		cs := make([]scene.Cell, len(f.Cells))
		copy(cs, f.Cells)
		rec.Samples = append(rec.Samples, Sample{Pixels: px, Cells: cs, Action: act})
	}
	return rec
}
