package agent

import (
	"pictor/internal/nn"
	"pictor/internal/scene"
	"pictor/internal/tensor"
)

// BatchModels runs inference for many concurrent sessions against one
// shared set of weights, row-per-session, replacing clone-per-client.
// All sessions on a machine share the layer weights and batch scratch;
// each session owns only its LSTM state rows and small I/O buffers.
//
// Detection is batched lazily: sessions submit frames as they arrive
// (SubmitFrame copies the pixels and queues the session), and the CNN
// runs when the first session demands its result (Detected), sweeping
// every queued session into one (B·cells) im2col + matmul pass. Because
// the simulated CV latency is far longer than the inter-arrival gap of
// frames across sessions, the queue holds most of the machine's
// sessions by the time the earliest demand fires, so the batch
// converges to machine occupancy — with no new simulator events and no
// timing changes. Per-row math is bit-identical to the per-clone
// Models path (same summation order per output element), so simulation
// results are byte-for-byte unchanged.
//
// BatchModels is not goroutine-safe; one instance serves one
// deterministic simulation (e.g. one cluster).
type BatchModels struct {
	m     *Models // private clone: weights + single-frame scratch
	conv  *nn.Conv2D
	pool  *nn.MaxPool2
	dense *nn.Dense // CNN classifier head
	lstm  *nn.LSTM
	head  *nn.Dense

	queue   []*BatchSession // sessions with a pending frame
	batchIn *tensor.Tensor  // (B·cells, CellPx, CellPx, 1) patch batch
	featBuf []float64
	hBatch  *tensor.Tensor // (B, hidden) for one-pass action logits
}

// BatchSession is one client's handle into a BatchModels: its LSTM
// state rows plus frame/result buffers.
type BatchSession struct {
	bm       *BatchModels
	pixels   []float64 // latest submitted frame raster
	detected []scene.Type
	pending  bool
	h, c     []float64 // LSTM recurrent state rows
}

// NewBatchModels builds a batch runner from trained models. The source
// is cloned once — the caller's networks are never mutated — and every
// session created afterwards shares that one copy's weights.
func NewBatchModels(src *Models) *BatchModels {
	m := src.Clone()
	bm := &BatchModels{
		m:    m,
		conv: m.conv,
		pool: m.pool,
		lstm: m.lstm,
		head: m.head,
	}
	// The CNN stack is [conv, relu, pool, dense]; the batched path
	// drives conv (with the ReLU fused into its store), pool and dense
	// directly.
	bm.dense = m.cnn.Layers[3].(*nn.Dense)
	return bm
}

// NewSession adds a session (one simulated client) and returns its
// handle. Sessions may be added mid-run; they start with cleared
// recurrent state.
func (bm *BatchModels) NewSession() *BatchSession {
	return &BatchSession{
		bm:       bm,
		pixels:   make([]float64, scene.FrameW*scene.FrameH),
		detected: make([]scene.Type, scene.GridW*scene.GridH),
		h:        make([]float64, lstmHidden),
		c:        make([]float64, lstmHidden),
	}
}

// ResetState clears the session's LSTM recurrent state.
func (s *BatchSession) ResetState() {
	for i := range s.h {
		s.h[i] = 0
		s.c[i] = 0
	}
}

// SubmitFrame copies the frame raster and queues the session for the
// next batched detection pass. Submitting again before the pass runs
// replaces the pending frame (the client always works on the most
// recent state).
func (s *BatchSession) SubmitFrame(pixels []float64) {
	copy(s.pixels, pixels)
	if !s.pending {
		s.pending = true
		s.bm.queue = append(s.bm.queue, s)
	}
}

// Detected returns the session's per-cell recognitions, running the
// batched CNN over every queued session first if this session's result
// is still pending. The returned slice is session-owned scratch,
// overwritten by the session's next detection; copy it to retain it.
func (s *BatchSession) Detected() []scene.Type {
	if s.pending {
		s.bm.flush()
	}
	return s.detected
}

// cells is the number of CNN invocations per frame.
const cells = scene.GridW * scene.GridH

// flushChunk caps how many sessions one CNN pass spans. Chunking keeps
// the pass's im2col/activation buffers cache-resident between layers:
// one unbounded pass over a large fleet streams multi-megabyte arrays
// through every layer and goes DRAM-bound (measured ~60% slower per
// session at 32 sessions than at 8). Each row's math is independent,
// so chunking changes nothing but locality.
const flushChunk = 8

// flush runs the batched CNN over all queued sessions in chunks of up
// to flushChunk: one im2col and one matmul per layer per chunk, then
// per-cell argmax into each session's detected buffer.
func (bm *BatchModels) flush() {
	patchLen := scene.CellPx * scene.CellPx
	nc := bm.dense.Out
	for start := 0; start < len(bm.queue); start += flushChunk {
		chunk := bm.queue[start:min(start+flushChunk, len(bm.queue))]
		bm.batchIn = ensureTensor(bm.batchIn, len(chunk)*cells, scene.CellPx, scene.CellPx, 1)
		for i, s := range chunk {
			base := i * cells * patchLen
			for gy := 0; gy < scene.GridH; gy++ {
				for gx := 0; gx < scene.GridW; gx++ {
					off := base + (gy*scene.GridW+gx)*patchLen
					patch(s.pixels, gx, gy, bm.batchIn.Data[off:off+patchLen])
				}
			}
		}
		x := bm.conv.ForwardBatchReLU(bm.batchIn)
		x = bm.pool.ForwardBatch(x)
		logits := bm.dense.ForwardBatch(x) // (chunk·cells, NumCoreTypes)
		for i, s := range chunk {
			for cell := 0; cell < cells; cell++ {
				row := logits.Data[(i*cells+cell)*nc : (i*cells+cell+1)*nc]
				s.detected[cell] = scene.Type(tensor.ArgMax(row))
			}
			s.pending = false
		}
	}
	bm.queue = bm.queue[:0]
}

// NextActionLogits advances this session's LSTM one frame and returns
// action logits (shared head scratch, overwritten by any session's next
// call — sample before touching another session). Sessions step at
// their own simulated times, so the recurrent update is per-row; only
// the frame-recognition CNN is cross-session batched.
func (s *BatchSession) NextActionLogits(detected []scene.Type) []float64 {
	bm := s.bm
	bm.featBuf = grow(bm.featBuf, FeatureSize)
	bm.lstm.StepState(s.h, s.c, featuresInto(bm.featBuf, detected))
	return bm.head.Forward(s.h)
}

// NextActionLogitsAll advances every given session one LSTM step and
// returns their action logits as a (B, actions) tensor (owned scratch),
// row i for sessions[i]. The recurrent gate math per row is the exact
// Step code and the head runs as one batched matmul, so row i is
// bit-identical to sessions[i].NextActionLogits. This is the one-pass
// entry point for tick-synchronized workloads and benchmarks.
func (bm *BatchModels) NextActionLogitsAll(sessions []*BatchSession, detecteds [][]scene.Type) *tensor.Tensor {
	b := len(sessions)
	if len(detecteds) != b {
		panic("agent: NextActionLogitsAll length mismatch")
	}
	bm.featBuf = grow(bm.featBuf, FeatureSize)
	bm.hBatch = ensureTensor(bm.hBatch, b, lstmHidden)
	for i, s := range sessions {
		bm.lstm.StepState(s.h, s.c, featuresInto(bm.featBuf, detecteds[i]))
		copy(bm.hBatch.Data[i*lstmHidden:(i+1)*lstmHidden], s.h)
	}
	return bm.head.ForwardBatch(bm.hBatch)
}

// grow mirrors nn's scratch-buffer helper.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ensureTensor mirrors nn's batch-scratch helper: reshape reusing
// capacity (batch sizes fluctuate as sessions come and go).
func ensureTensor(t *tensor.Tensor, shape ...int) *tensor.Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if t == nil || cap(t.Data) < n {
		return tensor.New(shape...)
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}
