package agent

import (
	"fmt"
	"testing"

	"pictor/internal/scene"
	"pictor/internal/sim"
)

// The intelligent client's per-frame inference: the CNN over all 24
// grid cells (Detect) plus one LSTM step and the action head. These run
// on every displayed frame of every IC-driven trial.

func benchFrame() *scene.Frame {
	d := scene.Dynamics{
		Kinds:          []scene.Type{scene.Vehicle, scene.Item, scene.Enemy},
		SpawnProb:      0.05,
		DespawnProb:    0.04,
		MoveProb:       0.2,
		PoseDrift:      0.08,
		InputStir:      0.4,
		BaseComplexity: 1.0,
		ComplexityVar:  0.5,
		MotionFloor:    0.15,
	}
	s := scene.New(d, sim.NewRNG(1))
	s.Step(scene.ActForward)
	return s.Render(1, 1920, 1080)
}

func BenchmarkDetect(b *testing.B) {
	m := NewModels(1)
	f := benchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Detect(f.Pixels)
	}
}

func BenchmarkNextActionLogits(b *testing.B) {
	m := NewModels(1)
	f := benchFrame()
	detected := append([]scene.Type(nil), m.Detect(f.Pixels)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NextActionLogits(detected)
	}
}

// BenchmarkBatchDetect measures cross-session batched detection at
// machine occupancies 1, 8 and 32. The reported ns/op is per FRAME
// BATCH (all B sessions recognized in one pass); divide by B for the
// amortized per-session cost — batching drops it superlinearly versus
// B separate Detect calls because the im2col/matmul fixed overheads
// are paid once per pass instead of once per session.
func BenchmarkBatchDetect(b *testing.B) {
	for _, size := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("B%d", size), func(b *testing.B) {
			bm := NewBatchModels(NewModels(1))
			sessions := make([]*BatchSession, size)
			frames := make([]*scene.Frame, size)
			for i := range sessions {
				sessions[i] = bm.NewSession()
				frames[i] = benchFrame()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, s := range sessions {
					s.SubmitFrame(frames[j].Pixels)
				}
				sessions[0].Detected() // flushes the whole batch
			}
		})
	}
}

// BenchmarkInferenceFrame is the full per-frame client path: detect,
// features, LSTM, head, softmax sample.
func BenchmarkInferenceFrame(b *testing.B) {
	m := NewModels(1)
	f := benchFrame()
	rng := sim.NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detected := m.Detect(f.Pixels)
		logits := m.NextActionLogits(detected)
		SampleAction(logits, rng)
	}
}
