package agent

import (
	"math"
	"math/rand"

	"pictor/internal/nn"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/tensor"
)

// Models bundles the intelligent client's two networks: the CNN that
// recognizes the object in each grid cell of a frame (the paper's
// MobileNets role) and the LSTM+head that maps recognized objects to
// the next human-like action.
type Models struct {
	conv *nn.Conv2D
	pool *nn.MaxPool2
	cnn  *nn.Sequential

	lstm *nn.LSTM
	head *nn.Dense

	// Per-frame inference scratch, owned by this clone (never shared:
	// Clone starts clones with empty scratch). Reused across frames so
	// steady-state inference does not allocate.
	detOut   []scene.Type
	patchBuf []float64
	featBuf  []float64
}

// FeatureSize is the LSTM input width: per-type object counts plus a
// bias term. Following §3.1, the features are the objects recognized in
// the frame; the labels are the corresponding human actions. The
// vocabulary is pinned to the core (Table-2) types: like the paper's
// fixed-class MobileNets, the CNN meets extended entity kinds (Cloth,
// PointCloud) as novel content and recognizes them as the nearest core
// class — sizing the networks by the open-ended full vocabulary would
// reshape every trained model whenever a scenario family is added.
const FeatureSize = int(scene.NumCoreTypes) + 1

// lstmHidden is the LSTM width.
const lstmHidden = 14

// NewModels builds untrained networks.
func NewModels(seed int64) *Models {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(scene.CellPx, scene.CellPx, 1, 6, 3, rng)
	pool := nn.NewMaxPool2(conv.OutH(), conv.OutW(), 6)
	m := &Models{
		conv: conv,
		pool: pool,
		lstm: nn.NewLSTM(FeatureSize, lstmHidden, rng),
		head: nn.NewDense(lstmHidden, int(scene.NumActions), rng),
	}
	m.cnn = &nn.Sequential{Layers: []nn.Layer{
		conv,
		&nn.ReLU{},
		pool,
		nn.NewDense(pool.OutLen(), int(scene.NumCoreTypes), rng),
	}}
	return m
}

// patch extracts cell (gx, gy)'s CellPx×CellPx pixels from a frame
// raster into dst.
func patch(pixels []float64, gx, gy int, dst []float64) {
	for y := 0; y < scene.CellPx; y++ {
		src := (gy*scene.CellPx+y)*scene.FrameW + gx*scene.CellPx
		copy(dst[y*scene.CellPx:(y+1)*scene.CellPx], pixels[src:src+scene.CellPx])
	}
}

// Detect classifies every grid cell of the frame raster, returning the
// recognized object types in row-major cell order. This is the real
// inference path — the CNN actually runs on the pixels.
//
// The returned slice is scratch owned by the model and is overwritten
// by the next Detect on the same clone; copy it to retain it.
func (m *Models) Detect(pixels []float64) []scene.Type {
	if cap(m.detOut) < scene.GridW*scene.GridH {
		m.detOut = make([]scene.Type, scene.GridW*scene.GridH)
		m.patchBuf = make([]float64, scene.CellPx*scene.CellPx)
	}
	out := m.detOut[:scene.GridW*scene.GridH]
	buf := m.patchBuf
	for gy := 0; gy < scene.GridH; gy++ {
		for gx := 0; gx < scene.GridW; gx++ {
			patch(pixels, gx, gy, buf)
			logits := m.cnn.Forward(buf)
			out[gy*scene.GridW+gx] = scene.Type(tensor.ArgMax(logits))
		}
	}
	return out
}

// Features builds the LSTM input from the recognized objects.
func Features(detected []scene.Type) []float64 {
	return featuresInto(make([]float64, FeatureSize), detected)
}

// featuresInto fills a FeatureSize-long buffer with the LSTM features.
func featuresInto(f []float64, detected []scene.Type) []float64 {
	for i := range f {
		f[i] = 0
	}
	for _, t := range detected {
		if t != scene.Empty && int(t) < int(scene.NumCoreTypes) {
			f[t] += 1.0 / float64(len(detected)) * 4 // scaled count
		}
	}
	f[FeatureSize-1] = 1 // bias input
	return f
}

// NextActionLogits advances the LSTM one frame and returns action
// logits (model-owned scratch, overwritten by the next call). The
// caller samples or argmaxes.
func (m *Models) NextActionLogits(detected []scene.Type) []float64 {
	if cap(m.featBuf) < FeatureSize {
		m.featBuf = make([]float64, FeatureSize)
	}
	h := m.lstm.Step(featuresInto(m.featBuf[:FeatureSize], detected))
	return m.head.Forward(h)
}

// ResetState clears the LSTM's recurrent state (new session).
func (m *Models) ResetState() { m.lstm.Reset() }

// SampleAction draws from the softmax over logits. The softmax lands in
// a stack buffer: this runs once per displayed frame and must not
// allocate.
func SampleAction(logits []float64, rng *sim.RNG) scene.Action {
	var buf [scene.NumActions]float64
	if len(logits) > len(buf) {
		panic("agent: SampleAction logits wider than the action vocabulary")
	}
	p := buf[:len(logits)]
	tensor.SoftmaxInto(p, logits)
	r := rng.Float64()
	var cum float64
	for i, v := range p {
		cum += v
		if r < cum {
			return scene.Action(i)
		}
	}
	return scene.Action(len(p) - 1)
}

// TrainConfig bounds training cost.
type TrainConfig struct {
	CNNEpochs    int
	CNNMaxPatch  int // cap on patches per epoch (subsampled)
	LSTMEpochs   int
	SeqLen       int // BPTT window
	LearningRate float64
}

// DefaultTrainConfig balances accuracy against test runtime.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{CNNEpochs: 3, CNNMaxPatch: 6000, LSTMEpochs: 14, SeqLen: 24, LearningRate: 0.01}
}

// Train fits both models from a recorded human session: the CNN on
// (cell pixels → labeled type), the LSTM on (recognized objects →
// recorded action) sequences, as §3.1 prescribes (the RNN's training
// features come from the CNN's own recognitions, not the ground truth).
func Train(rec *Recording, cfg TrainConfig, seed int64) *Models {
	m := NewModels(seed)
	rng := rand.New(rand.NewSource(seed + 1))
	m.trainCNN(rec, cfg, rng)
	m.trainLSTM(rec, cfg, rng)
	return m
}

func (m *Models) trainCNN(rec *Recording, cfg TrainConfig, rng *rand.Rand) {
	type example struct {
		px    []float64
		label int
	}
	var pool []example
	buf := make([]float64, scene.CellPx*scene.CellPx)
	for _, s := range rec.Samples {
		for gy := 0; gy < scene.GridH; gy++ {
			for gx := 0; gx < scene.GridW; gx++ {
				label := int(s.Cells[gy*scene.GridW+gx].T)
				// Extended kinds sit outside the CNN's fixed class
				// vocabulary; their patches carry no usable label.
				if label >= int(scene.NumCoreTypes) {
					continue
				}
				patch(s.Pixels, gx, gy, buf)
				px := make([]float64, len(buf))
				copy(px, buf)
				pool = append(pool, example{px: px, label: label})
			}
		}
	}
	if len(pool) == 0 {
		return
	}
	opt := nn.NewAdam(m.cnn.Params(), cfg.LearningRate)
	for epoch := 0; epoch < cfg.CNNEpochs; epoch++ {
		n := cfg.CNNMaxPatch
		if n > len(pool) {
			n = len(pool)
		}
		for i := 0; i < n; i++ {
			ex := pool[rng.Intn(len(pool))]
			logits := m.cnn.Forward(ex.px)
			_, g := nn.SoftmaxCrossEntropy(logits, ex.label)
			m.cnn.Backward(g)
			if i%4 == 3 {
				opt.Step()
			}
		}
		opt.Step()
	}
}

func (m *Models) trainLSTM(rec *Recording, cfg TrainConfig, rng *rand.Rand) {
	if len(rec.Samples) < 2 {
		return
	}
	// Pre-compute the CNN's recognitions once (they are the features).
	// Detect returns model-owned scratch, so each result is copied out.
	detections := make([][]scene.Type, len(rec.Samples))
	for i, s := range rec.Samples {
		detections[i] = append([]scene.Type(nil), m.Detect(s.Pixels)...)
	}
	params := append(m.lstm.Params(), m.head.Params()...)
	opt := nn.NewAdam(params, cfg.LearningRate)
	// Class weights: acting frames are rarer than idle ones; balance.
	var acted, idle float64
	for _, s := range rec.Samples {
		if s.Action == scene.ActNone {
			idle++
		} else {
			acted++
		}
	}
	// A mild reweighting keeps rare acting frames from being drowned
	// out early in training; heavy weights would make the client act
	// far more often than the human it mimics.
	actWeight := 1.0
	if acted > 0 {
		actWeight = math.Sqrt(idle / acted)
		if actWeight > 5 {
			actWeight = 5
		}
		if actWeight < 1 {
			actWeight = 1
		}
	}
	for epoch := 0; epoch < cfg.LSTMEpochs; epoch++ {
		for start := 0; start+1 < len(rec.Samples); start += cfg.SeqLen {
			end := start + cfg.SeqLen
			if end > len(rec.Samples) {
				end = len(rec.Samples)
			}
			m.lstm.Reset()
			m.lstm.SetTraining(true)
			var dHs [][]float64
			for i := start; i < end; i++ {
				h := m.lstm.Step(Features(detections[i]))
				logits := m.head.Forward(h)
				label := int(rec.Samples[i].Action)
				_, g := nn.SoftmaxCrossEntropy(logits, label)
				if rec.Samples[i].Action != scene.ActNone {
					for j := range g {
						g[j] *= actWeight
					}
				}
				// Backward returns head-owned scratch; BPTT retains one
				// gradient per timestep, so copy.
				dHs = append(dHs, append([]float64(nil), m.head.Backward(g)...))
			}
			m.lstm.Backward(dHs)
			opt.Step()
		}
		_ = rng
	}
	m.lstm.SetTraining(false)
	m.lstm.Reset()
}

// CNNAccuracy evaluates per-cell recognition accuracy on a recording.
func (m *Models) CNNAccuracy(rec *Recording) float64 {
	correct, total := 0, 0
	for _, s := range rec.Samples {
		det := m.Detect(s.Pixels)
		for i, d := range det {
			if d == s.Cells[i].T {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
