package agent

import (
	"pictor/internal/app"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/stats"
)

// IntelligentClient is Pictor's AI player (Figure 3): each displayed
// frame is decompressed (the proxy already charged that), recognized by
// the CNN, fed to the LSTM, and the sampled action — if any — is sent
// back through the client proxy. While a frame is being analyzed, newer
// frames replace the waiting one (the client always works on the most
// recent state, like a human).
type IntelligentClient struct {
	k    *sim.Kernel
	rng  *sim.RNG
	prof app.Profile
	sess *BatchSession
	send func(scene.Action)

	busy    bool
	latest  *scene.Frame
	actions int64

	// CVTimes and RNNTimes are the measured inference latencies
	// (Figure 7), in milliseconds.
	CVTimes  stats.Sample
	RNNTimes stats.Sample
}

// NewIntelligentClient creates a standalone driver around trained
// models (a private single-session batch). Clients that share a machine
// should share a BatchModels instead, via NewIntelligentClientInBatch,
// so their per-frame CNN passes coalesce.
func NewIntelligentClient(k *sim.Kernel, rng *sim.RNG, prof app.Profile, models *Models) *IntelligentClient {
	return NewIntelligentClientInBatch(k, rng, prof, NewBatchModels(models).NewSession())
}

// NewIntelligentClientInBatch creates the driver around a session of a
// (possibly shared) BatchModels.
func NewIntelligentClientInBatch(k *sim.Kernel, rng *sim.RNG, prof app.Profile, sess *BatchSession) *IntelligentClient {
	sess.ResetState()
	return &IntelligentClient{
		k:    k,
		rng:  rng.Fork("ic-" + prof.Name),
		prof: prof,
		sess: sess,
	}
}

// Attach implements vnc.Driver.
func (ic *IntelligentClient) Attach(send func(scene.Action)) { ic.send = send }

// Actions reports how many inputs the client has issued.
func (ic *IntelligentClient) Actions() int64 { return ic.actions }

// APM reports achieved actions-per-minute over the elapsed sim time.
func (ic *IntelligentClient) APM() float64 {
	secs := ic.k.Now().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(ic.actions) / secs * 60
}

// OnFrame implements vnc.Driver. A frame superseded before analysis
// goes straight back to the scene's free list — the client always works
// on the most recent state, so the waiting frame is dead.
func (ic *IntelligentClient) OnFrame(f *scene.Frame) {
	if ic.latest != nil && ic.latest != f {
		ic.latest.Release()
	}
	ic.latest = f
	ic.maybeProcess()
}

func (ic *IntelligentClient) maybeProcess() {
	if ic.busy || ic.latest == nil {
		return
	}
	f := ic.latest
	ic.latest = nil
	ic.busy = true

	// The CNN genuinely runs on the frame's pixels; the simulated
	// latency models the client machine executing a MobileNets-class
	// network (the real network here is far smaller than its wall-time
	// budget, so the budget comes from the profile). The pixels are
	// copied into the session's submit buffer, so the frame can be
	// recycled immediately; the CNN itself runs batched with the other
	// sessions on this machine when the first result is demanded,
	// within this client's simulated CV latency window.
	ic.sess.SubmitFrame(f.Pixels)
	f.Release()
	cv := ic.rng.Jitter(sim.DurationOfSeconds(ic.prof.CVLatencyMs/1e3), 0.10)
	ic.CVTimes.Add(float64(cv) / float64(sim.Millisecond))
	ic.k.After(cv, func() {
		logits := ic.sess.NextActionLogits(ic.sess.Detected())
		act := SampleAction(logits, ic.rng)
		rnn := ic.rng.Jitter(sim.DurationOfSeconds(ic.prof.RNNLatencyMs/1e3), 0.15)
		ic.RNNTimes.Add(float64(rnn) / float64(sim.Millisecond))
		ic.k.After(rnn, func() {
			if act != scene.ActNone && act.Valid() {
				ic.actions++
				if ic.send != nil {
					ic.send(act)
				}
			}
			ic.busy = false
			ic.maybeProcess()
		})
	})
}
