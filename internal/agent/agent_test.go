package agent

import (
	"testing"

	"pictor/internal/app"
	"pictor/internal/scene"
	"pictor/internal/sim"
)

// makeRecording synthesizes a human session directly from a scene (no
// full cluster needed): frames render, the policy acts at the profile's
// rate, everything is recorded.
func makeRecording(prof app.Profile, frames int, seed int64) *Recording {
	rng := sim.NewRNG(seed)
	sc := scene.New(prof.Dynamics, rng)
	rec := &Recording{Benchmark: prof.Name}
	for i := 0; i < frames; i++ {
		act := scene.ActNone
		if rng.Bool(prof.HumanActProb) {
			act = PolicyAction(prof, sc.Cells(), rng)
		}
		sc.Step(act)
		f := sc.Render(int64(i), prof.Width, prof.Height)
		rec.Samples = append(rec.Samples, Sample{Pixels: f.Pixels, Cells: f.Cells, Action: act})
	}
	return rec
}

func fastTrainConfig() TrainConfig {
	return TrainConfig{CNNEpochs: 2, CNNMaxPatch: 2500, LSTMEpochs: 8, SeqLen: 20, LearningRate: 0.012}
}

func TestPolicyCoversAllGenres(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, prof := range app.Suite() {
		sc := scene.New(prof.Dynamics, rng)
		for i := 0; i < 20; i++ {
			sc.Step(scene.ActNone)
			a := PolicyAction(prof, sc.Cells(), rng)
			if !a.Valid() {
				t.Fatalf("%s policy produced invalid action", prof.Name)
			}
		}
	}
}

func TestPolicyRespondsToObjects(t *testing.T) {
	rng := sim.NewRNG(2)
	prof := app.RE() // FPS: enemies → fire
	cells := make([]scene.Cell, scene.GridW*scene.GridH)
	cells[0] = scene.Cell{T: scene.Enemy}
	if got := PolicyAction(prof, cells, rng); got != scene.ActPrimary {
		t.Fatalf("FPS policy with enemy on screen = %v, want primary", got)
	}
}

func TestHumanActsAtProfileRate(t *testing.T) {
	k := sim.NewKernel()
	rng := sim.NewRNG(3)
	prof := app.STK()
	h := NewHuman(k, rng, prof)
	var sent []scene.Action
	h.Attach(func(a scene.Action) { sent = append(sent, a) })
	sc := scene.New(prof.Dynamics, rng)
	// 300 frames at ~33ms spacing ≈ 10 seconds of play.
	for i := 0; i < 300; i++ {
		k.At(sim.Time(i)*sim.Time(33*sim.Millisecond), func() {
			sc.Step(scene.ActNone)
			h.OnFrame(sc.Render(int64(i), 1920, 1080))
		})
	}
	k.Run()
	// ~0.22 act prob × 30fps, throttled by MinActionGap+reaction → a
	// couple of actions per second.
	perSec := float64(len(sent)) / 10
	if perSec < 0.5 || perSec > 8 {
		t.Fatalf("human action rate = %.1f/s, implausible", perSec)
	}
	if h.Actions() != int64(len(sent)) {
		t.Fatalf("Actions() = %d, sent %d", h.Actions(), len(sent))
	}
}

func TestHumanReactionDelays(t *testing.T) {
	k := sim.NewKernel()
	prof := app.RE()
	prof.HumanActProb = 1 // always act
	h := NewHuman(k, sim.NewRNG(4), prof)
	var sentAt []sim.Time
	h.Attach(func(a scene.Action) { sentAt = append(sentAt, k.Now()) })
	sc := scene.New(prof.Dynamics, sim.NewRNG(5))
	f := sc.Render(1, 1920, 1080)
	h.OnFrame(f)
	k.Run()
	if len(sentAt) != 1 {
		t.Fatalf("sent %d actions, want 1", len(sentAt))
	}
	// Reaction ~190ms with 25% lognormal jitter.
	if ms := sentAt[0].Millis(); ms < 60 || ms > 600 {
		t.Fatalf("reaction latency = %vms, want human-scale", ms)
	}
}

func TestRecorderCapturesFramesAndActions(t *testing.T) {
	k := sim.NewKernel()
	prof := app.IM()
	h := NewHuman(k, sim.NewRNG(6), prof)
	rec := NewRecorder(h, prof.Name)
	h.Attach(func(a scene.Action) {})
	sc := scene.New(prof.Dynamics, sim.NewRNG(7))
	for i := 0; i < 50; i++ {
		sc.Step(scene.ActNone)
		h.OnFrame(sc.Render(int64(i), 1920, 1080))
	}
	k.Run()
	if len(rec.Samples) != 50 {
		t.Fatalf("recorded %d samples, want 50", len(rec.Samples))
	}
	acted := 0
	for _, s := range rec.Samples {
		if len(s.Pixels) != scene.FrameW*scene.FrameH || len(s.Cells) != scene.GridW*scene.GridH {
			t.Fatal("sample missing pixels or cells")
		}
		if s.Action != scene.ActNone {
			acted++
		}
	}
	if acted == 0 {
		t.Fatal("recording captured no actions (VR profile should act often)")
	}
}

func TestCNNLearnsToRecognizeObjects(t *testing.T) {
	prof := app.STK()
	rec := makeRecording(prof, 150, 8)
	m := Train(rec, fastTrainConfig(), 9)
	acc := m.CNNAccuracy(rec)
	if acc < 0.8 {
		t.Fatalf("CNN cell accuracy = %.2f, want ≥ 0.8", acc)
	}
}

func TestDetectOutputShape(t *testing.T) {
	m := NewModels(10)
	px := make([]float64, scene.FrameW*scene.FrameH)
	det := m.Detect(px)
	if len(det) != scene.GridW*scene.GridH {
		t.Fatalf("Detect returned %d cells, want %d", len(det), scene.GridW*scene.GridH)
	}
}

func TestLSTMMimicsActionRate(t *testing.T) {
	prof := app.IM()
	rec := makeRecording(prof, 400, 11)
	m := Train(rec, fastTrainConfig(), 12)

	// Replay the recording's frames through the trained models and
	// compare act rates: the IC should behave like the human.
	rng := sim.NewRNG(13)
	var humanActs, icActs float64
	m.ResetState()
	for _, s := range rec.Samples {
		if s.Action != scene.ActNone {
			humanActs++
		}
		det := m.Detect(s.Pixels)
		a := SampleAction(m.NextActionLogits(det), rng)
		if a != scene.ActNone {
			icActs++
		}
	}
	if humanActs == 0 {
		t.Fatal("recording has no actions")
	}
	ratio := icActs / humanActs
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("IC act rate is %.1f× the human's — not mimicking", ratio)
	}
}

func TestFeaturesShape(t *testing.T) {
	det := make([]scene.Type, scene.GridW*scene.GridH)
	det[0] = scene.Enemy
	f := Features(det)
	if len(f) != FeatureSize {
		t.Fatalf("feature length = %d, want %d", len(f), FeatureSize)
	}
	if f[int(scene.Enemy)] == 0 {
		t.Fatal("enemy count feature empty")
	}
	if f[FeatureSize-1] != 1 {
		t.Fatal("bias input not set")
	}
}

func TestSampleActionDistribution(t *testing.T) {
	rng := sim.NewRNG(14)
	logits := make([]float64, int(scene.NumActions))
	logits[int(scene.ActForward)] = 10 // overwhelming mass
	for i := 0; i < 50; i++ {
		if a := SampleAction(logits, rng); a != scene.ActForward {
			t.Fatalf("peaked distribution sampled %v", a)
		}
	}
}

func TestICDriverProcessesFramesWithLatency(t *testing.T) {
	k := sim.NewKernel()
	prof := app.RE()
	rec := makeRecording(prof, 120, 15)
	m := Train(rec, fastTrainConfig(), 16)
	ic := NewIntelligentClient(k, sim.NewRNG(17), prof, m)
	sent := 0
	ic.Attach(func(a scene.Action) { sent++ })
	sc := scene.New(prof.Dynamics, sim.NewRNG(18))
	for i := 0; i < 150; i++ {
		k.At(sim.Time(i)*sim.Time(33*sim.Millisecond), func() {
			sc.Step(scene.ActNone)
			ic.OnFrame(sc.Render(int64(i), 1920, 1080))
		})
	}
	k.Run()
	if ic.CVTimes.N() == 0 {
		t.Fatal("no CV inferences ran")
	}
	// CV latency ≈ profile's 66ms.
	if mean := ic.CVTimes.Mean(); mean < 40 || mean > 100 {
		t.Fatalf("CV latency = %vms, want ≈ 66ms", mean)
	}
	if mean := ic.RNNTimes.Mean(); mean <= 0 || mean > 10 {
		t.Fatalf("RNN latency = %vms, want ≈ 2ms", mean)
	}
	// With CV ≈ 66ms, the IC can process at most ~15 frames/sec: it
	// must have skipped some of the 150 frames.
	if int(ic.CVTimes.N()) >= 150 {
		t.Fatal("IC processed every frame despite CV latency — no coalescing")
	}
}
