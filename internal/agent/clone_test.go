package agent

import (
	"math/rand"
	"testing"

	"pictor/internal/scene"
)

func TestModelsCloneMatchesAndIsolates(t *testing.T) {
	m := NewModels(11)
	c := m.Clone()

	rng := rand.New(rand.NewSource(3))
	pixels := make([]float64, scene.FrameW*scene.FrameH)
	for i := range pixels {
		pixels[i] = rng.Float64()
	}

	// Same weights → same detections.
	da := m.Detect(pixels)
	db := c.Detect(pixels)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("clone detection diverges at cell %d: %v vs %v", i, da[i], db[i])
		}
	}

	// Same LSTM trajectory from reset state.
	m.ResetState()
	c.ResetState()
	for step := 0; step < 4; step++ {
		la := m.NextActionLogits(da)
		lb := c.NextActionLogits(db)
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("clone logits diverge at step %d", step)
			}
		}
	}

	// Advancing the clone's recurrent state must not leak into the
	// original: a fresh client resetting one model must not be able to
	// perturb another client's session.
	m.ResetState()
	c.ResetState()
	// NextActionLogits returns model-owned scratch; copy before the next
	// call on m overwrites it.
	refFirst := append([]float64(nil), m.NextActionLogits(da)...)
	c.NextActionLogits(db)
	c.NextActionLogits(db)
	m.ResetState()
	again := m.NextActionLogits(da)
	for i := range refFirst {
		if refFirst[i] != again[i] {
			t.Fatal("original's state was perturbed by the clone")
		}
	}
}
