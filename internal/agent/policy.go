// Package agent implements the input-generation side of Pictor: the
// "real human" reference policy (the ground truth the paper compares
// against), session recording, and the intelligent client — a CNN
// object recognizer feeding an LSTM action generator, trained from
// recorded human sessions exactly as §3.1 describes.
package agent

import (
	"pictor/internal/app"
	"pictor/internal/scene"
	"pictor/internal/sim"
)

// PolicyAction is the genre-appropriate reaction to the objects on
// screen. It is near-deterministic given the objects — that is what
// makes it learnable by the LSTM — with small stochastic tie-breaking.
func PolicyAction(p app.Profile, cells []scene.Cell, rng *sim.RNG) scene.Action {
	var count [scene.NumTypes]int
	for _, c := range cells {
		count[c.T]++
	}
	switch p.Genre {
	case "Racing":
		// Chase pickups, dodge rivals, otherwise steer along the track.
		switch {
		case count[scene.Item] > 0:
			return scene.ActForward
		case count[scene.Vehicle] > 1:
			return scene.ActLeft
		case count[scene.Track] > 2:
			return scene.ActRight
		default:
			return scene.ActForward
		}
	case "Real-time Strategy":
		// Fight what's visible, otherwise expand.
		switch {
		case count[scene.Enemy] > 0:
			return scene.ActPrimary
		case count[scene.Building] < 2:
			return scene.ActSecondary
		case count[scene.Item] > 0:
			return scene.ActForward // gather
		default:
			return scene.ActCamera // scout
		}
	case "First-person Shooter":
		switch {
		case count[scene.Enemy] > 0:
			return scene.ActPrimary
		case count[scene.Item] > 0:
			return scene.ActForward
		default:
			if rng.Bool(0.5) {
				return scene.ActLeft
			}
			return scene.ActRight
		}
	case "Online Battle Arena":
		switch {
		case count[scene.Enemy] > count[scene.Vehicle]:
			return scene.ActBack // retreat when outnumbered
		case count[scene.Enemy] > 0:
			return scene.ActPrimary
		case count[scene.Building] > 1:
			return scene.ActSecondary // push structures
		default:
			return scene.ActForward
		}
	case "CAD Viewer":
		// Orbit the model, open property panels, otherwise pan.
		switch {
		case count[scene.PointCloud] > 0:
			return scene.ActCamera
		case count[scene.Panel] > 0:
			return scene.ActSecondary
		default:
			return scene.ActForward
		}
	case "Volumetric Video":
		// Playback is mostly viewpoint motion; interact with markers.
		switch {
		case count[scene.Target] > 0:
			return scene.ActPrimary
		default:
			return scene.ActCamera
		}
	case "Casual 2D/UI":
		// Tap what is offered, open menus, otherwise scroll.
		switch {
		case count[scene.Item] > 0:
			return scene.ActPrimary
		case count[scene.Panel] > 2:
			return scene.ActSecondary
		default:
			return scene.ActCamera
		}
	default:
		// VR titles: look around, interact with highlighted targets.
		switch {
		case count[scene.Target] > 0:
			return scene.ActPrimary
		case count[scene.Panel] > 0:
			return scene.ActSecondary
		default:
			return scene.ActCamera
		}
	}
}
