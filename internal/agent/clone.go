package agent

import "pictor/internal/nn"

// Clone returns an independent copy of the trained networks: same
// weights, fresh inference state. The experiment runner executes many
// trials concurrently against one per-benchmark trained model, and
// inference mutates the networks (the LSTM carries recurrent state,
// feed-forward layers cache activations), so every simulated client
// must own its own copy for runs to be race-free and byte-identical at
// any parallelism level.
func (m *Models) Clone() *Models {
	conv := m.conv.Clone()
	pool := m.pool.Clone()
	c := &Models{
		conv: conv,
		pool: pool,
		lstm: m.lstm.Clone(),
		head: m.head.Clone(),
	}
	layers := make([]nn.Layer, len(m.cnn.Layers))
	for i, l := range m.cnn.Layers {
		switch {
		case l == nn.Layer(m.conv):
			layers[i] = conv
		case l == nn.Layer(m.pool):
			layers[i] = pool
		default:
			layers[i] = nn.CloneLayer(l)
		}
	}
	c.cnn = &nn.Sequential{Layers: layers}
	return c
}
