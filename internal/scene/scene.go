// Package scene provides the synthetic 3D application content model:
// scenes of typed, randomly placed/generated objects that evolve with
// gameplay, and a rasterizer that turns a scene into a pixel frame.
//
// This substitutes for the real games in the paper's suite. The crucial
// properties are preserved: objects appear at random positions, the same
// object renders to different pixels depending on its pose (viewing
// angle), scene activity responds to player inputs, and frame content
// determines rendering complexity and compressibility. These are exactly
// the properties that make recorded-replay input generation (VNCPlay /
// DeskBench) fail on 3D content while Pictor's CNN+RNN client works.
package scene

import (
	"math"

	"pictor/internal/sim"
)

// Action is one user input in the shared vocabulary used across the
// benchmark suite (each benchmark interprets it in its own terms:
// steering for a racer, unit commands for an RTS, head motion for VR).
type Action uint8

// The action vocabulary.
const (
	ActNone Action = iota
	ActLeft
	ActRight
	ActForward
	ActBack
	ActPrimary   // fire / select / interact
	ActSecondary // alt fire / build / menu
	ActCamera    // camera or head motion
	NumActions   // count sentinel
)

var actionNames = [NumActions]string{
	"none", "left", "right", "forward", "back", "primary", "secondary", "camera",
}

func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "invalid"
}

// Valid reports whether a is a real action (including ActNone).
func (a Action) Valid() bool { return a < NumActions }

// Type classifies an on-screen object.
type Type uint8

// Object types drawn by the suite's scenes. The first block is the
// paper suite's vocabulary; NumCoreTypes bounds it because the
// intelligent client's CNN is sized to exactly these classes (see
// agent.FeatureSize) — growing the core vocabulary would change every
// trained model's shape and therefore every pinned fixture.
const (
	Empty    Type = iota
	Track         // road/terrain marker
	Vehicle       // kart, hero, unit
	Item          // pickup, resource
	Enemy         // opponent, creep
	Building      // structure
	Panel         // UI/HUD element
	Target        // objective, anatomy highlight (VR)
	// NumCoreTypes bounds the original Table-2 vocabulary — the
	// intelligent client's recognition classes. New entity kinds go
	// below it: the CNN recognizes them as the nearest core class
	// (a fixed-vocabulary recognizer meeting novel content), while the
	// human reference policy perceives them exactly (Frame.Cells).
	NumCoreTypes
)

// Extended object types for scenario families beyond the paper's six.
const (
	// Cloth is a deforming captured surface (volumetric-video subjects:
	// people, garments) — relentless pose change, codec-hostile pixels.
	Cloth Type = NumCoreTypes + iota
	// PointCloud is dense static geometry (CAD assemblies, volumetric
	// capture backdrops) — extreme render complexity, near-zero motion.
	PointCloud
	// NumTypes counts every object type, extended kinds included.
	NumTypes
)

var typeNames = [NumTypes]string{
	"empty", "track", "vehicle", "item", "enemy", "building", "panel", "target",
	"cloth", "pointcloud",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "invalid"
}

// Cell is one grid position of the scene.
type Cell struct {
	T Type
	// Pose in [0,1) is the object's viewing-angle/variant parameter.
	// The rasterizer draws the same Type very differently for different
	// poses — the "same object, different pixels" property of 3D.
	Pose float64
}

// Dynamics parameterizes how a benchmark's scene behaves.
type Dynamics struct {
	// Kinds lists the object types this benchmark spawns (besides Empty).
	Kinds []Type
	// SpawnProb is the per-tick probability an empty cell spawns.
	SpawnProb float64
	// DespawnProb is the per-tick probability an object disappears.
	DespawnProb float64
	// MoveProb is the per-tick probability an object shifts cells.
	MoveProb float64
	// PoseDrift is how much poses change per tick (3D view randomness;
	// VR titles with smooth head-tracking use small values).
	PoseDrift float64
	// InputStir is how strongly a non-idle player action agitates the
	// scene (spawns, motion). RTS games are highly input-driven.
	InputStir float64
	// BaseComplexity is the nominal render-complexity level (≈1.0).
	BaseComplexity float64
	// ComplexityVar is how much complexity swings with object density.
	ComplexityVar float64
	// MotionFloor is the minimum motion level (racing games never sit
	// still; menus do).
	MotionFloor float64
}

// Grid geometry shared by the suite: scenes are GridW×GridH cells and
// rasterize at CellPx pixels per cell.
const (
	GridW  = 6
	GridH  = 4
	CellPx = 8
	// FrameW and FrameH are the raster dimensions.
	FrameW = GridW * CellPx
	FrameH = GridH * CellPx
)

// Scene is the evolving content of one application instance.
type Scene struct {
	dyn   Dynamics
	rng   *sim.RNG
	cells [GridW * GridH]Cell
	tick  int64

	stir       float64 // recent input agitation, decays per tick
	motion     float64 // fraction of cells changed last tick
	complexity float64

	// free is the frame free list: frames released by the pipeline
	// (Frame.Release) are recycled by the next Render.
	free []*Frame

	// Per-cell pose-envelope memoization (see drawGlyph).
	envCache [GridW * GridH][CellPx]float64
	envPose  [GridW * GridH]float64
	envValid [GridW * GridH]bool
}

// New creates a scene and populates it to steady-state density.
func New(d Dynamics, rng *sim.RNG) *Scene {
	if len(d.Kinds) == 0 {
		d.Kinds = []Type{Vehicle, Item, Enemy}
	}
	if d.BaseComplexity <= 0 {
		d.BaseComplexity = 1
	}
	s := &Scene{dyn: d, rng: rng.Fork("scene")}
	// Warm the scene so the first frames are representative.
	for i := 0; i < 30; i++ {
		s.Step(ActNone)
	}
	s.tick = 0
	return s
}

// Step advances the scene one application-logic tick under the given
// player action.
func (s *Scene) Step(a Action) {
	s.tick++
	if a != ActNone {
		s.stir += s.dyn.InputStir
		if s.stir > 3 {
			s.stir = 3
		}
	}
	// Player activity spawns and moves things (fights start, units
	// deploy); it does not make them vanish faster — so busy play
	// raises scene density and complexity, and idle sessions decay to
	// calm scenes. This asymmetry is what record-replay tools distort
	// when their replay stalls.
	agitation := 1 + s.stir
	changed := 0
	for i := range s.cells {
		c := &s.cells[i]
		if c.T == Empty {
			if s.rng.Bool(clampProb(s.dyn.SpawnProb * agitation)) {
				c.T = s.dyn.Kinds[s.rng.Intn(len(s.dyn.Kinds))]
				c.Pose = s.rng.Float64()
				changed++
			}
			continue
		}
		if s.rng.Bool(clampProb(s.dyn.DespawnProb)) {
			c.T = Empty
			changed++
			continue
		}
		if s.rng.Bool(clampProb(s.dyn.MoveProb * agitation)) {
			j := s.rng.Intn(len(s.cells))
			if s.cells[j].T == Empty {
				s.cells[j] = *c
				c.T = Empty
				changed += 2
			}
		}
		if s.dyn.PoseDrift > 0 {
			c.Pose += s.rng.Normal(0, s.dyn.PoseDrift)
			c.Pose -= math.Floor(c.Pose) // wrap into [0,1)
			changed++
		}
	}
	s.stir *= 0.85
	m := float64(changed)/float64(len(s.cells))*0.7 + s.dyn.MotionFloor
	if m > 1 {
		m = 1
	}
	// Exponential smoothing keeps motion from flickering frame to frame.
	s.motion = 0.6*s.motion + 0.4*m
	density := float64(s.ObjectCount()) / float64(len(s.cells))
	s.complexity = s.dyn.BaseComplexity * (1 + s.dyn.ComplexityVar*(density-0.4))
	if s.complexity < 0.2 {
		s.complexity = 0.2
	}
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.95 {
		return 0.95
	}
	return p
}

// Tick reports how many steps the scene has taken.
func (s *Scene) Tick() int64 { return s.tick }

// Motion reports the smoothed fraction of recent content change, in
// [0,1]. It drives compressibility: high-motion frames compress poorly.
func (s *Scene) Motion() float64 { return s.motion }

// Complexity reports the current render-complexity multiplier (~1.0).
func (s *Scene) Complexity() float64 { return s.complexity }

// ObjectCount reports the number of non-empty cells.
func (s *Scene) ObjectCount() int {
	n := 0
	for _, c := range s.cells {
		if c.T != Empty {
			n++
		}
	}
	return n
}

// Cells returns a copy of the grid (row-major, GridW×GridH).
func (s *Scene) Cells() []Cell {
	out := make([]Cell, len(s.cells))
	copy(out, s.cells[:])
	return out
}

// CellAt reports the cell at grid position (x, y).
func (s *Scene) CellAt(x, y int) Cell { return s.cells[y*GridW+x] }
