package scene

import "math"

// glyphs are the 8×8 base intensity patterns for each object type.
// The rasterizer distorts them by pose, so the same object type produces
// substantially different pixels from different viewing angles.
var glyphs [NumTypes][CellPx * CellPx]float64

// ditherTab maps a dither byte to its pixel offset, precomputed with
// exactly the arithmetic the render loop used inline so table lookups
// are bit-identical to the original computation.
var ditherTab [256]float64

func init() {
	for b := 0; b < 256; b++ {
		ditherTab[b] = (float64(b)/255 - 0.5) * 0.06
	}
}

// The dither LCG: n' = n·K + C (mod 2⁶⁴). The render loop is tiled
// 4-wide, so it needs the 1..4-step stride constants: advancing i steps
// is n·Kᵢ + Cᵢ with Kᵢ = Kⁱ and Cᵢ = C·(Kⁱ⁻¹+…+1), exact in uint64
// wrap-around arithmetic — the generated sequence is bit-identical to
// stepping one pixel at a time. (vars, not consts: the products
// overflow Go's arbitrary-precision constant arithmetic.)
var (
	ditherK1 = uint64(6364136223846793005)
	ditherC1 = uint64(1442695040888963407)
	ditherK2 = ditherK1 * ditherK1
	ditherC2 = ditherC1*ditherK1 + ditherC1
	ditherK3 = ditherK2 * ditherK1
	ditherC3 = ditherC2*ditherK1 + ditherC1
	ditherK4 = ditherK3 * ditherK1
	ditherC4 = ditherC3*ditherK1 + ditherC1
)

func init() {
	set := func(t Type, rows [CellPx]string) {
		for y, row := range rows {
			for x := 0; x < CellPx; x++ {
				v := 0.0
				switch row[x] {
				case '#':
					v = 1.0
				case '+':
					v = 0.6
				case '.':
					v = 0.25
				}
				glyphs[t][y*CellPx+x] = v
			}
		}
	}
	set(Track, [CellPx]string{
		"..#..#..",
		"..#..#..",
		".#....#.",
		".#....#.",
		".#....#.",
		"#......#",
		"#......#",
		"#......#",
	})
	set(Vehicle, [CellPx]string{
		"...##...",
		"..####..",
		".######.",
		"########",
		".#.##.#.",
		".######.",
		"..#..#..",
		".##..##.",
	})
	set(Item, [CellPx]string{
		"........",
		"...++...",
		"..+##+..",
		".+####+.",
		".+####+.",
		"..+##+..",
		"...++...",
		"........",
	})
	set(Enemy, [CellPx]string{
		"#......#",
		".#....#.",
		"..####..",
		".##..##.",
		".######.",
		"..####..",
		".#....#.",
		"#......#",
	})
	set(Building, [CellPx]string{
		"..####..",
		".######.",
		".#.##.#.",
		".######.",
		".#.##.#.",
		".######.",
		".#.##.#.",
		"########",
	})
	set(Panel, [CellPx]string{
		"########",
		"#......#",
		"#.++++.#",
		"#......#",
		"#.++++.#",
		"#......#",
		"#......#",
		"########",
	})
	set(Target, [CellPx]string{
		"...##...",
		"..+..+..",
		".+.##.+.",
		"#.####.#",
		"#.####.#",
		".+.##.+.",
		"..+..+..",
		"...##...",
	})
	set(Cloth, [CellPx]string{
		"#+.##.+#",
		"+#+..+#+",
		".+#++#+.",
		"..+##+..",
		"..+##+..",
		".+#++#+.",
		"+#+..+#+",
		"#+.##.+#",
	})
	set(PointCloud, [CellPx]string{
		"#.+.#.+.",
		".+.#.+.#",
		"#.#.+.#.",
		".+.+.#.+",
		"+.#.#.+.",
		".#.+.+.#",
		"#.+.#.#.",
		".+.#.+.+",
	})
}

// Frame is a rendered frame flowing through the cloud rendering system.
// Pixels is the low-resolution raster the intelligent client analyzes;
// the nominal application resolution (1920×1080×4B) determines the data
// volumes moved over PCIe and the network.
type Frame struct {
	// Seq is the server-side frame number.
	Seq int64
	// Width and Height are the nominal application resolution.
	Width, Height int
	// Pixels is the FrameW×FrameH grayscale raster in [0,1], row-major.
	Pixels []float64
	// Complexity and Motion snapshot the scene state that produced the
	// frame (drives render cost and compressibility).
	Complexity float64
	Motion     float64
	// Tags lists the input tags this frame responds to. In the real
	// system the tags are carried inside the pixels between hook6 and
	// hook8; package trace implements that embedding on Pixels.
	Tags []uint64
	// CompressedBytes is set by the codec at the CP stage.
	CompressedBytes float64
	// Cells snapshots the scene grid that produced the frame. It is the
	// ground truth used to label CNN training data and by the "real
	// human" reference policy (a human perceives the objects directly;
	// the intelligent client must recognize them from Pixels).
	Cells []Cell
	// PixelBackup holds the original values of the pixels hook6
	// overwrote when embedding tags; hook8 restores them. It models the
	// paper's "old pixels are stored in shared memory".
	PixelBackup []float64

	// owner is the scene whose free list recycles this frame; nil for
	// hand-built or cloned frames. pooled guards double releases.
	owner  *Scene
	pooled bool
}

// RawBytes reports the uncompressed framebuffer size (RGBA).
func (f *Frame) RawBytes() float64 { return float64(f.Width) * float64(f.Height) * 4 }

// Clone deep-copies the frame (pixels and tags). The clone is detached
// from any frame pool: releasing it is a no-op.
func (f *Frame) Clone() *Frame {
	g := *f
	g.owner = nil
	g.pooled = false
	g.Pixels = make([]float64, len(f.Pixels))
	copy(g.Pixels, f.Pixels)
	g.Tags = append([]uint64(nil), f.Tags...)
	g.Cells = append([]Cell(nil), f.Cells...)
	g.PixelBackup = append([]float64(nil), f.PixelBackup...)
	return &g
}

// Release returns the frame to its scene's free list once it has left
// the pipeline (coalesced away at the proxy, or fully consumed by the
// client driver). The consumer that takes ownership of a delivered
// frame calls it; a frame not produced by Scene.Render (tests build
// them by hand, Clone detaches) ignores the call. Double releases are
// no-ops. After Release the frame's buffers belong to the scene again
// and must not be touched.
func (f *Frame) Release() {
	if f.owner == nil || f.pooled {
		return
	}
	f.pooled = true
	f.owner.free = append(f.owner.free, f)
}

// Render rasterizes the scene into a frame at the given nominal
// resolution. Pose distorts each glyph: rows shift laterally and the
// intensity envelope rotates, so pixel-exact comparison across frames of
// the "same" scene content fails — the property that breaks DeskBench on
// 3D applications.
//
// Frames come from a per-scene free list: a steady-state pipeline that
// releases frames as they leave (vnc coalescing, the client drivers)
// renders without allocating. The pixel, cell, tag and backup buffers
// of a recycled frame are reused in place.
func (s *Scene) Render(seq int64, width, height int) *Frame {
	f := s.takeFrame()
	px := f.Pixels
	for i := range px {
		px[i] = 0
	}
	for gy := 0; gy < GridH; gy++ {
		for gx := 0; gx < GridW; gx++ {
			i := gy*GridW + gx
			if s.cells[i].T == Empty {
				continue
			}
			s.drawGlyph(px, gx, gy, i)
		}
	}
	// Pseudo-random dither keyed by scene tick: models temporal noise
	// (anti-aliasing, animation sub-frames) without an RNG dependency,
	// keeping Render const with respect to the scene's random stream.
	// The 256 possible dither offsets come from a precomputed table
	// (bit-identical to computing them inline); this loop runs for every
	// pixel of every frame and dominated the render profile.
	// The clamp uses the builtin float min/max (branch predictors lose
	// on random dither signs). v is never NaN and never −0 (a float sum
	// that cancels rounds to +0), so this is exactly the old
	// if-v<0/else-if-v>1 clamp.
	// The loop is tiled 4 pixels wide: the LCG's loop-carried multiply
	// chain is the bottleneck, and the stride constants let all four
	// lane states derive from one base value in parallel (exact modular
	// arithmetic — see the constants above), quartering the chain.
	n := uint64(s.tick)*2654435761 + 12345
	i := 0
	for ; i+4 <= len(px); i += 4 {
		n1 := n*ditherK1 + ditherC1
		n2 := n*ditherK2 + ditherC2
		n3 := n*ditherK3 + ditherC3
		n4 := n*ditherK4 + ditherC4
		px[i] = min(1, max(0, px[i]+ditherTab[n1>>40&0xFF]))
		px[i+1] = min(1, max(0, px[i+1]+ditherTab[n2>>40&0xFF]))
		px[i+2] = min(1, max(0, px[i+2]+ditherTab[n3>>40&0xFF]))
		px[i+3] = min(1, max(0, px[i+3]+ditherTab[n4>>40&0xFF]))
		n = n4
	}
	for ; i < len(px); i++ {
		n = n*ditherK1 + ditherC1
		px[i] = min(1, max(0, px[i]+ditherTab[n>>40&0xFF]))
	}
	f.Seq = seq
	f.Width = width
	f.Height = height
	f.Complexity = s.Complexity()
	f.Motion = s.Motion()
	f.Cells = append(f.Cells[:0], s.cells[:]...)
	return f
}

// takeFrame pops a recycled frame from the free list or allocates a
// fresh one. Reused frames keep their buffer capacity; all metadata is
// reset.
func (s *Scene) takeFrame() *Frame {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		f.pooled = false
		f.Tags = f.Tags[:0]
		f.PixelBackup = f.PixelBackup[:0]
		f.CompressedBytes = 0
		return f
	}
	return &Frame{owner: s, Pixels: make([]float64, FrameW*FrameH)}
}

// drawGlyph rasterizes cell i (at grid position gx, gy) into px. The
// pose-dependent intensity envelope — eight math.Sin evaluations per
// glyph — is memoized per cell keyed on the exact pose bits, so static
// poses (PoseDrift 0, e.g. menu-heavy or fixed-camera workloads) cost
// no trigonometry after the first frame. Cache hits return the exact
// previously computed values: results are bit-identical either way.
func (s *Scene) drawGlyph(px []float64, gx, gy, i int) {
	c := s.cells[i]
	g := &glyphs[c.T]
	shift := int(math.Round(c.Pose*6)) - 3 // lateral shift −3..+3
	env := &s.envCache[i]
	if !s.envValid[i] || s.envPose[i] != c.Pose {
		phase := c.Pose * 2 * math.Pi
		for y := 0; y < CellPx; y++ {
			// Intensity envelope varies down the glyph with pose
			// ("lighting").
			env[y] = 0.65 + 0.35*math.Sin(phase+float64(y)*0.7)
		}
		s.envPose[i] = c.Pose
		s.envValid[i] = true
	}
	for y := 0; y < CellPx; y++ {
		envelope := env[y]
		grow := g[y*CellPx : (y+1)*CellPx]
		rowBase := (gy*CellPx+y)*FrameW + gx*CellPx
		for x := 0; x < CellPx; x++ {
			sx := x + shift
			if sx < 0 || sx >= CellPx {
				continue
			}
			v := grow[x] * envelope
			idx := rowBase + sx
			if v > px[idx] {
				px[idx] = v
			}
		}
	}
}

// Similarity reports mean per-pixel agreement between two rasters in
// [0,1] (1 = identical). DeskBench's replay gate uses this.
func Similarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var diff float64
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	return 1 - diff/float64(len(a))
}
