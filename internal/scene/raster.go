package scene

import "math"

// glyphs are the 8×8 base intensity patterns for each object type.
// The rasterizer distorts them by pose, so the same object type produces
// substantially different pixels from different viewing angles.
var glyphs [NumTypes][CellPx * CellPx]float64

func init() {
	set := func(t Type, rows [CellPx]string) {
		for y, row := range rows {
			for x := 0; x < CellPx; x++ {
				v := 0.0
				switch row[x] {
				case '#':
					v = 1.0
				case '+':
					v = 0.6
				case '.':
					v = 0.25
				}
				glyphs[t][y*CellPx+x] = v
			}
		}
	}
	set(Track, [CellPx]string{
		"..#..#..",
		"..#..#..",
		".#....#.",
		".#....#.",
		".#....#.",
		"#......#",
		"#......#",
		"#......#",
	})
	set(Vehicle, [CellPx]string{
		"...##...",
		"..####..",
		".######.",
		"########",
		".#.##.#.",
		".######.",
		"..#..#..",
		".##..##.",
	})
	set(Item, [CellPx]string{
		"........",
		"...++...",
		"..+##+..",
		".+####+.",
		".+####+.",
		"..+##+..",
		"...++...",
		"........",
	})
	set(Enemy, [CellPx]string{
		"#......#",
		".#....#.",
		"..####..",
		".##..##.",
		".######.",
		"..####..",
		".#....#.",
		"#......#",
	})
	set(Building, [CellPx]string{
		"..####..",
		".######.",
		".#.##.#.",
		".######.",
		".#.##.#.",
		".######.",
		".#.##.#.",
		"########",
	})
	set(Panel, [CellPx]string{
		"########",
		"#......#",
		"#.++++.#",
		"#......#",
		"#.++++.#",
		"#......#",
		"#......#",
		"########",
	})
	set(Target, [CellPx]string{
		"...##...",
		"..+..+..",
		".+.##.+.",
		"#.####.#",
		"#.####.#",
		".+.##.+.",
		"..+..+..",
		"...##...",
	})
}

// Frame is a rendered frame flowing through the cloud rendering system.
// Pixels is the low-resolution raster the intelligent client analyzes;
// the nominal application resolution (1920×1080×4B) determines the data
// volumes moved over PCIe and the network.
type Frame struct {
	// Seq is the server-side frame number.
	Seq int64
	// Width and Height are the nominal application resolution.
	Width, Height int
	// Pixels is the FrameW×FrameH grayscale raster in [0,1], row-major.
	Pixels []float64
	// Complexity and Motion snapshot the scene state that produced the
	// frame (drives render cost and compressibility).
	Complexity float64
	Motion     float64
	// Tags lists the input tags this frame responds to. In the real
	// system the tags are carried inside the pixels between hook6 and
	// hook8; package trace implements that embedding on Pixels.
	Tags []uint64
	// CompressedBytes is set by the codec at the CP stage.
	CompressedBytes float64
	// Cells snapshots the scene grid that produced the frame. It is the
	// ground truth used to label CNN training data and by the "real
	// human" reference policy (a human perceives the objects directly;
	// the intelligent client must recognize them from Pixels).
	Cells []Cell
	// PixelBackup holds the original values of the pixels hook6
	// overwrote when embedding tags; hook8 restores them. It models the
	// paper's "old pixels are stored in shared memory".
	PixelBackup []float64
}

// RawBytes reports the uncompressed framebuffer size (RGBA).
func (f *Frame) RawBytes() float64 { return float64(f.Width) * float64(f.Height) * 4 }

// Clone deep-copies the frame (pixels and tags).
func (f *Frame) Clone() *Frame {
	g := *f
	g.Pixels = make([]float64, len(f.Pixels))
	copy(g.Pixels, f.Pixels)
	g.Tags = append([]uint64(nil), f.Tags...)
	g.Cells = append([]Cell(nil), f.Cells...)
	return &g
}

// Render rasterizes the scene into a new frame at the given nominal
// resolution. Pose distorts each glyph: rows shift laterally and the
// intensity envelope rotates, so pixel-exact comparison across frames of
// the "same" scene content fails — the property that breaks DeskBench on
// 3D applications.
func (s *Scene) Render(seq int64, width, height int) *Frame {
	px := make([]float64, FrameW*FrameH)
	for gy := 0; gy < GridH; gy++ {
		for gx := 0; gx < GridW; gx++ {
			c := s.cells[gy*GridW+gx]
			if c.T == Empty {
				continue
			}
			drawGlyph(px, gx, gy, c)
		}
	}
	// Pseudo-random dither keyed by scene tick: models temporal noise
	// (anti-aliasing, animation sub-frames) without an RNG dependency,
	// keeping Render const with respect to the scene's random stream.
	n := uint64(s.tick)*2654435761 + 12345
	for i := range px {
		n = n*6364136223846793005 + 1442695040888963407
		px[i] += (float64(n>>40&0xFF)/255 - 0.5) * 0.06
		if px[i] < 0 {
			px[i] = 0
		}
		if px[i] > 1 {
			px[i] = 1
		}
	}
	return &Frame{
		Seq:        seq,
		Width:      width,
		Height:     height,
		Pixels:     px,
		Complexity: s.Complexity(),
		Motion:     s.Motion(),
		Cells:      s.Cells(),
	}
}

func drawGlyph(px []float64, gx, gy int, c Cell) {
	g := &glyphs[c.T]
	shift := int(math.Round(c.Pose*6)) - 3 // lateral shift −3..+3
	phase := c.Pose * 2 * math.Pi
	for y := 0; y < CellPx; y++ {
		// Intensity envelope varies down the glyph with pose ("lighting").
		envelope := 0.65 + 0.35*math.Sin(phase+float64(y)*0.7)
		for x := 0; x < CellPx; x++ {
			sx := x + shift
			if sx < 0 || sx >= CellPx {
				continue
			}
			v := g[y*CellPx+x] * envelope
			tx := gx*CellPx + sx
			ty := gy*CellPx + y
			idx := ty*FrameW + tx
			if v > px[idx] {
				px[idx] = v
			}
		}
	}
}

// Similarity reports mean per-pixel agreement between two rasters in
// [0,1] (1 = identical). DeskBench's replay gate uses this.
func Similarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var diff float64
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	return 1 - diff/float64(len(a))
}
