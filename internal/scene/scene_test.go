package scene

import (
	"testing"
	"testing/quick"

	"pictor/internal/sim"
)

func gameDynamics() Dynamics {
	return Dynamics{
		Kinds:          []Type{Vehicle, Item, Enemy},
		SpawnProb:      0.05,
		DespawnProb:    0.04,
		MoveProb:       0.2,
		PoseDrift:      0.08,
		InputStir:      0.4,
		BaseComplexity: 1.0,
		ComplexityVar:  0.5,
		MotionFloor:    0.15,
	}
}

func TestNewSceneReachesSteadyState(t *testing.T) {
	s := New(gameDynamics(), sim.NewRNG(1))
	if s.ObjectCount() == 0 {
		t.Fatal("warmed scene has no objects")
	}
	if s.Tick() != 0 {
		t.Fatalf("fresh scene tick = %d, want 0", s.Tick())
	}
}

func TestStepAdvancesAndBoundsState(t *testing.T) {
	s := New(gameDynamics(), sim.NewRNG(2))
	for i := 0; i < 200; i++ {
		s.Step(Action(i % int(NumActions)))
		if m := s.Motion(); m < 0 || m > 1 {
			t.Fatalf("motion out of range: %v", m)
		}
		if c := s.Complexity(); c < 0.2 || c > 3 {
			t.Fatalf("complexity out of range: %v", c)
		}
		for _, cell := range s.Cells() {
			if cell.T >= NumTypes {
				t.Fatalf("invalid cell type %d", cell.T)
			}
			if cell.T != Empty && (cell.Pose < 0 || cell.Pose >= 1) {
				t.Fatalf("pose out of range: %v", cell.Pose)
			}
		}
	}
	if s.Tick() != 200 {
		t.Fatalf("tick = %d, want 200", s.Tick())
	}
}

func TestInputsAgitateScene(t *testing.T) {
	// Averaged over many seeds, an active player produces more motion
	// than an idle one (the input-sensitivity DeskBench distortion
	// depends on).
	var idle, busy float64
	for seed := int64(0); seed < 20; seed++ {
		si := New(gameDynamics(), sim.NewRNG(seed))
		sb := New(gameDynamics(), sim.NewRNG(seed))
		for i := 0; i < 100; i++ {
			si.Step(ActNone)
			sb.Step(ActPrimary)
			idle += si.Motion()
			busy += sb.Motion()
		}
	}
	if busy <= idle {
		t.Fatalf("active play (%.1f) should exceed idle motion (%.1f)", busy, idle)
	}
}

func TestMotionFloorRespected(t *testing.T) {
	d := gameDynamics()
	d.SpawnProb, d.DespawnProb, d.MoveProb, d.PoseDrift = 0, 0, 0, 0
	d.MotionFloor = 0.3
	s := New(d, sim.NewRNG(3))
	for i := 0; i < 50; i++ {
		s.Step(ActNone)
	}
	if m := s.Motion(); m < 0.29 {
		t.Fatalf("motion = %v, want ≥ floor 0.3", m)
	}
}

func TestRenderDimensionsAndRange(t *testing.T) {
	s := New(gameDynamics(), sim.NewRNG(4))
	f := s.Render(7, 1920, 1080)
	if f.Seq != 7 || f.Width != 1920 || f.Height != 1080 {
		t.Fatalf("frame header wrong: %+v", f)
	}
	if len(f.Pixels) != FrameW*FrameH {
		t.Fatalf("pixel count = %d, want %d", len(f.Pixels), FrameW*FrameH)
	}
	for _, p := range f.Pixels {
		if p < 0 || p > 1 {
			t.Fatalf("pixel out of range: %v", p)
		}
	}
	if f.RawBytes() != 1920*1080*4 {
		t.Fatalf("RawBytes = %v, want 8294400", f.RawBytes())
	}
}

func TestPoseChangesPixels(t *testing.T) {
	// The same object type at the same position with different poses
	// must produce different pixels — the 3D property that breaks
	// pixel-replay tools.
	d := Dynamics{Kinds: []Type{Vehicle}, BaseComplexity: 1}
	a := New(d, sim.NewRNG(5))
	b := New(d, sim.NewRNG(5))
	a.cells, b.cells = [GridW * GridH]Cell{}, [GridW * GridH]Cell{}
	a.cells[0] = Cell{T: Vehicle, Pose: 0.1}
	b.cells[0] = Cell{T: Vehicle, Pose: 0.7}
	fa := a.Render(1, 1920, 1080)
	fb := b.Render(1, 1920, 1080)
	// Compare just the occupied cell's 8×8 block: the rest of the frame
	// is empty background and would dilute the difference.
	block := func(px []float64) []float64 {
		out := make([]float64, 0, CellPx*CellPx)
		for y := 0; y < CellPx; y++ {
			out = append(out, px[y*FrameW:y*FrameW+CellPx]...)
		}
		return out
	}
	if sim := Similarity(block(fa.Pixels), block(fb.Pixels)); sim > 0.9 {
		t.Fatalf("pose change left object pixels nearly identical (similarity %v)", sim)
	}
}

func TestSimilarityProperties(t *testing.T) {
	s := New(gameDynamics(), sim.NewRNG(6))
	f := s.Render(1, 1920, 1080)
	if got := Similarity(f.Pixels, f.Pixels); got != 1 {
		t.Fatalf("self-similarity = %v, want 1", got)
	}
	if got := Similarity(f.Pixels, nil); got != 0 {
		t.Fatalf("mismatched-length similarity = %v, want 0", got)
	}
	zeros := make([]float64, len(f.Pixels))
	ones := make([]float64, len(f.Pixels))
	for i := range ones {
		ones[i] = 1
	}
	if got := Similarity(zeros, ones); got != 0 {
		t.Fatalf("opposite-frame similarity = %v, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New(gameDynamics(), sim.NewRNG(7))
	f := s.Render(1, 1920, 1080)
	f.Tags = []uint64{42}
	g := f.Clone()
	g.Pixels[0] = 0.1234
	g.Tags[0] = 99
	if f.Pixels[0] == 0.1234 || f.Tags[0] == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestActionAndTypeStrings(t *testing.T) {
	if ActPrimary.String() != "primary" || ActNone.String() != "none" {
		t.Fatal("action names wrong")
	}
	if Action(200).String() != "invalid" {
		t.Fatal("invalid action should say so")
	}
	if Vehicle.String() != "vehicle" || Type(200).String() != "invalid" {
		t.Fatal("type names wrong")
	}
	if !ActCamera.Valid() || Action(NumActions).Valid() {
		t.Fatal("Valid() wrong")
	}
}

// Property: scenes with identical dynamics and seed evolve identically.
func TestSceneDeterminismProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		a := New(gameDynamics(), sim.NewRNG(seed))
		b := New(gameDynamics(), sim.NewRNG(seed))
		for i := 0; i < int(steps); i++ {
			act := Action(uint8(i) % uint8(NumActions))
			a.Step(act)
			b.Step(act)
		}
		fa, fb := a.Render(1, 100, 100), b.Render(1, 100, 100)
		return Similarity(fa.Pixels, fb.Pixels) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: rendered pixels are always finite and in [0,1] regardless of
// dynamics extremes.
func TestRenderBoundsProperty(t *testing.T) {
	f := func(seed int64, spawn, move, drift uint8) bool {
		d := gameDynamics()
		d.SpawnProb = float64(spawn) / 255
		d.MoveProb = float64(move) / 255
		d.PoseDrift = float64(drift) / 255
		s := New(d, sim.NewRNG(seed))
		for i := 0; i < 20; i++ {
			s.Step(ActPrimary)
		}
		fr := s.Render(1, 640, 480)
		for _, p := range fr.Pixels {
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
