package scene

import (
	"testing"

	"pictor/internal/sim"
)

// Per-frame hot leaves. Run with -benchmem: the allocation counts here
// are the layer-level regression signal for the single-trial hot path
// (see BENCH_single_trial.json at the repo root).

func BenchmarkSceneStep(b *testing.B) {
	s := New(gameDynamics(), sim.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(Action(i % int(NumActions)))
	}
}

func BenchmarkSceneRender(b *testing.B) {
	s := New(gameDynamics(), sim.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(ActForward)
		f := s.Render(int64(i), 1920, 1080)
		f.Release()
	}
}

// BenchmarkSceneRenderNoReuse measures the render path with the frame
// free-list defeated (every frame leaks from the pool's point of view),
// quantifying what the recycling is worth.
func BenchmarkSceneRenderNoReuse(b *testing.B) {
	s := New(gameDynamics(), sim.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(ActForward)
		_ = s.Render(int64(i), 1920, 1080)
	}
}

func BenchmarkSimilarity(b *testing.B) {
	s := New(gameDynamics(), sim.NewRNG(1))
	fa := s.Render(1, 1920, 1080)
	s.Step(ActForward)
	fb := s.Render(2, 1920, 1080)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Similarity(fa.Pixels, fb.Pixels)
	}
}
