package baselines

import (
	"testing"

	"pictor/internal/agent"
	"pictor/internal/app"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/stats"
	"pictor/internal/trace"
)

// replayRecording builds a small recording with a few acted frames.
func replayRecording(prof app.Profile, frames int, seed int64) *agent.Recording {
	rng := sim.NewRNG(seed)
	sc := scene.New(prof.Dynamics, rng)
	rec := &agent.Recording{Benchmark: prof.Name}
	for i := 0; i < frames; i++ {
		act := scene.ActNone
		if i%5 == 4 {
			act = agent.PolicyAction(prof, sc.Cells(), rng)
		}
		sc.Step(act)
		f := sc.Render(int64(i), prof.Width, prof.Height)
		rec.Samples = append(rec.Samples, agent.Sample{Pixels: f.Pixels, Cells: f.Cells, Action: act})
	}
	return rec
}

func TestDeskBenchReplaysOnExactMatch(t *testing.T) {
	prof := app.IM()
	rec := replayRecording(prof, 60, 1)
	k := sim.NewKernel()
	db := NewDeskBench(k, sim.NewRNG(2), rec, 33*sim.Millisecond)
	var sent []scene.Action
	db.Attach(func(a scene.Action) { sent = append(sent, a) })
	// Feed the recording's own frames back: similarity is exact, so
	// every recorded action replays.
	for i, s := range rec.Samples {
		px := s.Pixels
		k.At(sim.Time(i)*sim.Time(33*sim.Millisecond)*40, func() {
			db.OnFrame(&scene.Frame{Pixels: px})
		})
	}
	k.Run()
	if len(sent) == 0 {
		t.Fatal("perfect replay issued no actions")
	}
	if db.Matched() == 0 {
		t.Fatal("no similarity matches on identical frames")
	}
}

func TestDeskBenchTimesOutOnForeignFrames(t *testing.T) {
	prof := app.STK()
	rec := replayRecording(prof, 60, 3)
	k := sim.NewKernel()
	db := NewDeskBench(k, sim.NewRNG(4), rec, 33*sim.Millisecond)
	sent := 0
	db.Attach(func(a scene.Action) { sent++ })
	// Feed frames from a completely different session: the similarity
	// gate must fail and the timeout path must carry the replay.
	other := scene.New(prof.Dynamics, sim.NewRNG(99))
	for i := 0; i < 400; i++ {
		other.Step(scene.ActPrimary)
		f := other.Render(int64(i), prof.Width, prof.Height)
		k.At(sim.Time(i)*sim.Time(33*sim.Millisecond), func() { db.OnFrame(f) })
	}
	k.Run()
	if sent == 0 {
		t.Fatal("timeout path never issued actions")
	}
	if db.TimedOut() == 0 {
		t.Fatal("expected timeouts against foreign frames")
	}
	if db.Matched() > db.TimedOut() {
		t.Fatalf("random 3D frames matched more than they timed out (%d vs %d)",
			db.Matched(), db.TimedOut())
	}
}

func TestDeskBenchEmptyRecordingSafe(t *testing.T) {
	k := sim.NewKernel()
	db := NewDeskBench(k, sim.NewRNG(5), &agent.Recording{}, 33*sim.Millisecond)
	db.Attach(func(a scene.Action) { t.Fatal("empty recording sent an action") })
	db.OnFrame(&scene.Frame{Pixels: make([]float64, 4)})
	k.Run()
}

func TestChenEstimateUnderestimates(t *testing.T) {
	k := sim.NewKernel()
	tr := trace.New(k)
	prof := app.STK()
	// Synthesize tracked inputs whose true RTT is 110ms but whose
	// visible stages sum to much less (the pipeline waits are hidden).
	for i := 0; i < 50; i++ {
		tag := tr.NextTag()
		tr.AddStage(trace.StageCS, 2*sim.Millisecond, tag)
		tr.AddStage(trace.StageSP, 400*sim.Microsecond, tag)
		tr.AddStage(trace.StageCP, 10*sim.Millisecond, tag)
		tr.AddStage(trace.StageSS, 25*sim.Millisecond, tag)
	}
	est := ChenEstimate(tr, prof, sim.NewRNG(6))
	if est.N() != 50 {
		t.Fatalf("estimated %d RTTs, want 50", est.N())
	}
	trueRTT := 110.0
	if est.Mean() >= trueRTT {
		t.Fatalf("Chen estimate %.1fms should underestimate the true %.1fms", est.Mean(), trueRTT)
	}
	if err := stats.PercentError(est.Mean(), trueRTT); err < 10 || err > 60 {
		t.Fatalf("Chen error %.1f%% out of the plausible band", err)
	}
}

func TestChenEstimateSkipsIncompleteRecords(t *testing.T) {
	k := sim.NewKernel()
	tr := trace.New(k)
	tag := tr.NextTag()
	tr.AddStage(trace.StageCS, 2*sim.Millisecond, tag) // missing SP/CP/SS
	est := ChenEstimate(tr, app.RE(), sim.NewRNG(7))
	if est.N() != 0 {
		t.Fatalf("incomplete record produced an estimate")
	}
}

type scriptedDriver struct {
	send  func(scene.Action)
	seen  int
	every int
}

func (d *scriptedDriver) Attach(send func(scene.Action)) { d.send = send }
func (d *scriptedDriver) OnFrame(f *scene.Frame) {
	d.seen++
	if d.every > 0 && d.seen%d.every == 0 {
		d.send(scene.ActPrimary)
	}
}

func TestSlowMotionPacerOneOutstanding(t *testing.T) {
	k := sim.NewKernel()
	inner := &scriptedDriver{every: 1}
	p := NewSlowMotionPacer(k, inner)
	var outstanding, maxOutstanding int
	p.Attach(func(a scene.Action) {
		outstanding++
		if outstanding > maxOutstanding {
			maxOutstanding = outstanding
		}
		// Echo a response frame after 20ms, as the serialized system
		// would.
		k.After(20*sim.Millisecond, func() {
			outstanding--
			p.OnFrame(&scene.Frame{Pixels: make([]float64, 4)})
		})
	})
	k.RunUntil(sim.Time(2 * sim.Second))
	if maxOutstanding > 1 {
		t.Fatalf("pacer let %d inputs fly at once", maxOutstanding)
	}
	if inner.seen == 0 {
		t.Fatal("inner driver never saw frames")
	}
}

func TestSlowMotionWatchdogKeepsFeeding(t *testing.T) {
	k := sim.NewKernel()
	inner := &scriptedDriver{every: 0} // inner never acts
	p := NewSlowMotionPacer(k, inner)
	sent := 0
	p.Attach(func(a scene.Action) {
		sent++
		k.After(15*sim.Millisecond, func() {
			p.OnFrame(&scene.Frame{Pixels: make([]float64, 4)})
		})
	})
	k.RunUntil(sim.Time(3 * sim.Second))
	if sent < 5 {
		t.Fatalf("watchdog sent only %d probes over 3s", sent)
	}
}
