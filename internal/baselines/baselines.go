// Package baselines implements the three prior measurement
// methodologies the paper compares Pictor against in §4:
//
//   - DeskBench (Rhee et al. / VNCPlay): replays a recorded human
//     session, gating each replayed action on pixel similarity between
//     the current and the recorded frame. Random 3D content defeats the
//     gate, distorting input timing and thus the measured RTTs.
//   - Chen et al.: human inputs, but no input tracking — RTT is
//     reconstructed by summing stages (CS + SP + AL + CP + SS), with AL
//     measured offline and the IPC stages (PS, FC, AS) invisible. The
//     reconstruction systematically underestimates.
//   - Slow-Motion (Nieh et al.): injects delays so exactly one
//     input/frame is in flight, making association trivial — but the
//     serialization removes the pipeline contention a loaded system
//     actually has, again underestimating RTT.
package baselines

import (
	"pictor/internal/agent"
	"pictor/internal/app"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/stats"
	"pictor/internal/trace"
)

// DeskBench replays a recorded session with frame-similarity gating.
type DeskBench struct {
	k   *sim.Kernel
	rng *sim.RNG

	// Threshold is the pixel-similarity gate (the paper tunes it per
	// benchmark and reports the best; Calibrate does the same).
	Threshold float64
	// Timeout bounds how long a replayed action waits for its frame.
	Timeout sim.Duration

	send     func(scene.Action)
	acts     []agent.Sample // acted frames only, in order
	gaps     []sim.Duration // recorded gap before each action
	idx      int
	armedAt  sim.Time
	armed    bool
	matched  int64
	timedOut int64
}

// NewDeskBench builds a replayer from a recorded human session.
// frameGap is the recording's mean frame spacing, used to reconstruct
// the recorded action timing.
func NewDeskBench(k *sim.Kernel, rng *sim.RNG, rec *agent.Recording, frameGap sim.Duration) *DeskBench {
	d := &DeskBench{
		k:         k,
		rng:       rng.Fork("deskbench"),
		Threshold: 0.93,
		Timeout:   1200 * sim.Millisecond,
	}
	lastIdx := 0
	for i, s := range rec.Samples {
		if s.Action == scene.ActNone {
			continue
		}
		d.acts = append(d.acts, s)
		d.gaps = append(d.gaps, sim.Duration(i-lastIdx)*frameGap)
		lastIdx = i
	}
	return d
}

// Attach implements vnc.Driver.
func (d *DeskBench) Attach(send func(scene.Action)) { d.send = send }

// Matched and TimedOut report how often the similarity gate passed vs
// expired — the diagnostic for why DeskBench misbehaves on 3D content.
func (d *DeskBench) Matched() int64  { return d.matched }
func (d *DeskBench) TimedOut() int64 { return d.timedOut }

// OnFrame implements vnc.Driver: replay the next recorded action once
// the display matches the recording (or the wait times out). The frame
// is compared synchronously and released before returning.
func (d *DeskBench) OnFrame(f *scene.Frame) {
	defer f.Release()
	if len(d.acts) == 0 || d.send == nil {
		return
	}
	i := d.idx % len(d.acts)
	if !d.armed {
		// Respect the recorded pacing before arming the next action.
		d.armed = true
		d.armedAt = d.k.Now().Add(d.gaps[i])
		return
	}
	if d.k.Now() < d.armedAt {
		return
	}
	similar := scene.Similarity(f.Pixels, d.acts[i].Pixels) >= d.Threshold
	expired := d.k.Now().Sub(d.armedAt) > d.Timeout
	if !similar && !expired {
		return
	}
	if similar {
		d.matched++
	} else {
		d.timedOut++
	}
	d.send(d.acts[i].Action)
	d.idx++
	d.armed = false
}

// ChenEstimate reconstructs the RTT distribution the Chen et al.
// methodology would report from a finished (human-driven) run: for each
// tracked input, CS + SP + AL_offline + CP + SS, using the run's
// measured network/proxy stages but an offline application latency and
// no IPC stages — precisely the two flaws §4 identifies.
func ChenEstimate(tr *trace.Tracer, prof app.Profile, rng *sim.RNG) *stats.Sample {
	out := &stats.Sample{}
	// The offline "application latency" a stage-sum methodology
	// measures: input-to-displayed-frame on an idle machine — about two
	// uncontended frame periods of logic+render (input waits for the
	// next tick, renders, and is picked up a pass later) — with none of
	// the online run's proxy contention, copy stages, or queueing.
	offlineAL := 2.4 * (prof.ALBaseMs + prof.GPU.BaseRenderMs)
	for _, rec := range tr.Records() {
		cs, ok1 := rec.Stage(trace.StageCS)
		sp, ok2 := rec.Stage(trace.StageSP)
		cp, ok3 := rec.Stage(trace.StageCP)
		ss, ok4 := rec.Stage(trace.StageSS)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			continue
		}
		al := rng.LogNormalAround(offlineAL, 0.12)
		ms := (cs+sp+cp+ss).Seconds()*1e3 + al
		out.Add(ms)
	}
	return out
}

// SlowMotionPacer wraps an input-generating driver (the paper uses
// Pictor's IC) so at most one input is outstanding: the next input goes
// out only after the previous input's frame came back. Together with
// app.ModeSlowMotion this is the Slow-Motion methodology.
type SlowMotionPacer struct {
	k     *sim.Kernel
	inner interface {
		Attach(func(scene.Action))
		OnFrame(*scene.Frame)
	}

	send        func(scene.Action)
	outstanding bool
	pending     *scene.Action
}

// NewSlowMotionPacer wraps a driver. Kick starts the first input (the
// serialized system is idle until one arrives).
func NewSlowMotionPacer(k *sim.Kernel, inner interface {
	Attach(func(scene.Action))
	OnFrame(*scene.Frame)
}) *SlowMotionPacer {
	return &SlowMotionPacer{k: k, inner: inner}
}

// Attach implements vnc.Driver.
func (p *SlowMotionPacer) Attach(send func(scene.Action)) {
	p.send = send
	p.inner.Attach(p.trySend)
	// Bootstrap: the serialized app renders nothing until the first
	// input, and the IC acts on frames — break the deadlock.
	p.k.After(30*sim.Millisecond, func() { p.trySend(scene.ActCamera) })
	p.k.After(300*sim.Millisecond, p.watchdog)
}

// watchdog keeps the serialized system fed: Slow-Motion injects each
// probe input itself, so an idle inner driver (the IC often chooses not
// to act) must not stall the experiment.
func (p *SlowMotionPacer) watchdog() {
	if !p.outstanding && p.pending == nil {
		p.trySend(scene.ActCamera)
	}
	p.k.After(300*sim.Millisecond, p.watchdog)
}

func (p *SlowMotionPacer) trySend(a scene.Action) {
	if p.send == nil {
		return
	}
	if p.outstanding {
		p.pending = &a
		return
	}
	p.outstanding = true
	p.send(a)
}

// OnFrame implements vnc.Driver.
func (p *SlowMotionPacer) OnFrame(f *scene.Frame) {
	p.outstanding = false
	if p.pending != nil {
		a := *p.pending
		p.pending = nil
		p.outstanding = true
		p.send(a)
	}
	p.inner.OnFrame(f)
}
