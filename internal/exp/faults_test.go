package exp

import (
	"reflect"
	"strings"
	"testing"

	"pictor/internal/app"
)

// TestFleetShapeFaultKeyStability: the fault-injection fields join the
// key only when set, so every pre-fault shape keeps its exact
// historical key — and therefore its derived seeds, streams and golden
// fixtures.
func TestFleetShapeFaultKeyStability(t *testing.T) {
	shape := FleetShape{Machines: 3, Policy: "leastdemand", Mix: "heavy",
		Epochs: 4, ArrivalRate: 2, MeanSessionEpochs: 3}
	tr := FleetTrial(shape)
	tr.Warmup, tr.Measure = 1, 5
	base := tr.Key()
	if strings.Contains(base, "faults") || strings.Contains(base, "retry") || strings.Contains(base, "degrade") {
		t.Fatalf("fault-free key must not mention faults: %q", base)
	}

	faulty := shape
	faulty.MTBFEpochs, faulty.MTTREpochs = 5, 1
	ft := tr
	ft.Fleet = &faulty
	if got := ft.Key(); got != base+":faults=mtbf5:mttr1" {
		t.Fatalf("faulty key = %q, want the base key plus :faults=mtbf5:mttr1", got)
	}

	resilient := faulty
	resilient.RetryAttempts, resilient.RetryBackoffEpochs = 3, 1
	resilient.Degrade = true
	rt := tr
	rt.Fleet = &resilient
	if got := rt.Key(); got != base+":faults=mtbf5:mttr1:retry=3:backoff=1:degrade=true" {
		t.Fatalf("resilient key = %q", got)
	}
	if !resilient.Faulty() || faulty.Faulty() == false || shape.Faulty() {
		t.Fatal("Faulty() must track MTBFEpochs > 0")
	}
}

// TestRunCheckedIsolatesPanics: a panicking unit fails only its own
// (trial, rep) slot; every other result lands intact, and the failure
// carries the trial's key, rep and stack — deterministically across
// parallelism.
func TestRunCheckedIsolatesPanics(t *testing.T) {
	trials := []Trial{
		Single(app.STK(), DriverHuman),
		Single(app.RE(), DriverHuman),
		Pair(app.STK(), app.RE()),
	}
	trials[1].ID = "poisoned"
	exec := func(tr Trial, u Unit) int {
		if u.TrialIndex == 1 && u.Rep == 2 {
			panic("injected fault")
		}
		return u.TrialIndex*100 + u.Rep
	}
	run := func(parallel int) ([][]int, []*PanicError) {
		return RunChecked(trials, exec, RunOptions{Parallel: parallel, Reps: 3, BaseSeed: 9})
	}
	out, errs := run(1)
	if len(errs) != 1 {
		t.Fatalf("got %d failures, want 1", len(errs))
	}
	pe := errs[0]
	if pe.TrialIndex != 1 || pe.Rep != 2 || pe.Value != "injected fault" {
		t.Fatalf("failure misattributed: %+v", pe)
	}
	if pe.TrialKey != trials[1].Key() {
		t.Fatalf("failure key %q != trial key %q", pe.TrialKey, trials[1].Key())
	}
	msg := pe.Error()
	if !strings.Contains(msg, trials[1].Key()) || !strings.Contains(msg, "poisoned") || !strings.Contains(msg, "rep 2") {
		t.Fatalf("error message must name the trial, key and rep:\n%s", msg)
	}
	if pe.Stack == "" {
		t.Fatal("failure must carry the panic stack")
	}
	// Every healthy unit still produced its result; the failed slot
	// holds the zero value.
	for ti := range trials {
		for rep := 0; rep < 3; rep++ {
			want := ti*100 + rep
			if ti == 1 && rep == 2 {
				want = 0
			}
			if out[ti][rep] != want {
				t.Fatalf("out[%d][%d] = %d, want %d", ti, rep, out[ti][rep], want)
			}
		}
	}
	outPar, errsPar := run(8)
	if !reflect.DeepEqual(out, outPar) {
		t.Fatal("RunChecked results diverged across parallelism")
	}
	if len(errsPar) != 1 || errsPar[0].TrialIndex != 1 || errsPar[0].Rep != 2 {
		t.Fatalf("parallel failure list diverged: %+v", errsPar)
	}
}

// TestRunCheckedSortsFailures: multiple failures report in (trial, rep)
// grid order regardless of worker scheduling.
func TestRunCheckedSortsFailures(t *testing.T) {
	trials := []Trial{
		Single(app.STK(), DriverHuman),
		Single(app.RE(), DriverHuman),
	}
	exec := func(tr Trial, u Unit) int { panic(u.Rep) }
	_, errs := RunChecked(trials, exec, RunOptions{Parallel: 4, Reps: 2, BaseSeed: 1})
	if len(errs) != 4 {
		t.Fatalf("got %d failures, want 4", len(errs))
	}
	for i, pe := range errs {
		if pe.TrialIndex != i/2 || pe.Rep != i%2 {
			t.Fatalf("failure %d out of grid order: trial %d rep %d", i, pe.TrialIndex, pe.Rep)
		}
	}
}
