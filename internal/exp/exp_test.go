package exp

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"pictor/internal/app"
	"pictor/internal/stats"
	"pictor/internal/vgl"
)

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(1, "trial-key", 0)
	for i := 0; i < 100; i++ {
		if got := DeriveSeed(1, "trial-key", 0); got != a {
			t.Fatalf("DeriveSeed not stable: %d vs %d", got, a)
		}
	}
	if DeriveSeed(2, "trial-key", 0) == a {
		t.Fatal("base seed does not influence derived seed")
	}
	if DeriveSeed(1, "other-key", 0) == a {
		t.Fatal("trial key does not influence derived seed")
	}
	if DeriveSeed(1, "trial-key", 1) == a {
		t.Fatal("repetition does not influence derived seed")
	}
}

// TestDeriveSeedCollisionFree derives a seed for every (trial, rep)
// unit of a full-suite grid — every benchmark × driver × instance
// count × rep — and requires them all distinct.
func TestDeriveSeedCollisionFree(t *testing.T) {
	seen := map[int64]string{}
	checked := 0
	suite := app.Suite() // the full registry: new families' keys count too
	for _, prof := range suite {
		for _, d := range []DriverKind{DriverHuman, DriverIC, DriverDeskBench, DriverSlowMotion} {
			for n := 1; n <= 4; n++ {
				tr := Homogeneous(prof, d, n)
				tr.Warmup, tr.Measure = 3, 60
				for rep := 0; rep < 5; rep++ {
					s := DeriveSeed(1, tr.Key(), rep)
					id := fmt.Sprintf("%s/%s/n=%d/rep=%d", prof.Name, d, n, rep)
					if prev, dup := seen[s]; dup {
						t.Fatalf("seed collision: %s and %s both derive %d", prev, id, s)
					}
					seen[s] = id
					checked++
				}
			}
		}
	}
	if checked != len(suite)*4*4*5 {
		t.Fatalf("grid expansion wrong: checked %d units", checked)
	}
}

// fullSuiteGrid assembles a trial set shaped like the complete
// evaluation: every benchmark × driver × co-location count, the
// unordered pairs, the container/tracing/interposer variants and the
// fleet shapes — the key space a real grid exercises.
func fullSuiteGrid() []Trial {
	var trials []Trial
	add := func(t Trial) {
		t.Warmup, t.Measure = 3, 60
		trials = append(trials, t)
	}
	suite := app.Suite()
	for _, prof := range suite {
		for _, d := range []DriverKind{DriverHuman, DriverIC, DriverDeskBench, DriverSlowMotion} {
			for n := 1; n <= 4; n++ {
				add(Homogeneous(prof, d, n))
			}
		}
		containerized := Single(prof, DriverHuman)
		containerized.Instances[0].Containerized = true
		add(containerized)
		tracingOff := Single(prof, DriverHuman)
		tracingOff.Instances[0].TracingOff = true
		add(tracingOff)
		optimized := Single(prof, DriverHuman)
		optimized.Instances[0].Interposer = vgl.Optimized()
		add(optimized)
	}
	for i := 0; i < len(suite); i++ {
		for j := i + 1; j < len(suite); j++ {
			add(Pair(suite[i], suite[j]))
		}
	}
	for _, pol := range []string{"roundrobin", "leastcount", "leastdemand", "binpack"} {
		add(FleetTrial(FleetShape{Machines: 4, Policy: pol, Mix: "shuffled", Requests: 12}))
	}
	return trials
}

// TestSeedDerivationPropertyFullGrid is the property test for the
// runner's seed derivation: over the full suite grid × 32 repetitions,
// (1) distinct (trial key, rep) pairs never derive colliding seeds, and
// (2) a trial's per-rep seeds are a function of its key alone —
// permuting the grid order leaves every trial's seeds unchanged.
func TestSeedDerivationPropertyFullGrid(t *testing.T) {
	const reps = 32
	trials := fullSuiteGrid()

	keys := map[string]bool{}
	for _, tr := range trials {
		keys[tr.Key()] = true
	}
	if len(keys) != len(trials) {
		t.Fatalf("grid keys collide: %d trials, %d distinct keys", len(trials), len(keys))
	}

	seen := map[int64]string{}
	seedsOf := func(tr Trial) [reps]int64 {
		var out [reps]int64
		for r := 0; r < reps; r++ {
			out[r] = UnitSeed(tr, r, 1)
		}
		return out
	}
	forward := map[string][reps]int64{}
	for _, tr := range trials {
		ss := seedsOf(tr)
		forward[tr.Key()] = ss
		for r, s := range ss {
			id := fmt.Sprintf("%s rep=%d", tr.Key(), r)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision over %d units:\n  %s\n  %s\nboth derive %d",
					len(trials)*reps, prev, id, s)
			}
			seen[s] = id
		}
	}

	// Reverse the grid and re-derive through the runner itself: every
	// trial must get exactly the seeds it got in forward order.
	reversed := make([]Trial, len(trials))
	for i, tr := range trials {
		reversed[len(trials)-1-i] = tr
	}
	out := Run(reversed, func(tr Trial, u Unit) int64 { return u.Seed }, RunOptions{Parallel: 4, Reps: reps, BaseSeed: 1})
	for i, tr := range reversed {
		want := forward[tr.Key()]
		for r := 0; r < reps; r++ {
			if out[i][r] != want[r] {
				t.Fatalf("trial %q rep %d: seed %d after permutation, %d before",
					tr.ID, r, out[i][r], want[r])
			}
		}
	}
}

func TestUnitSeedPinsFirstRep(t *testing.T) {
	tr := Single(app.STK(), DriverHuman)
	tr.Seed = 42
	if got := UnitSeed(tr, 0, 1); got != 42 {
		t.Fatalf("rep 0 of a pinned trial must use the pinned seed, got %d", got)
	}
	if got := UnitSeed(tr, 1, 1); got == 42 {
		t.Fatal("rep 1 must derive a fresh seed")
	}
	// Derivation for later reps keys off the trial's own seed, not the
	// grid base, so a pinned trial is self-contained.
	if UnitSeed(tr, 1, 1) != UnitSeed(tr, 1, 99) {
		t.Fatal("pinned trial's later reps must not depend on the grid base seed")
	}
}

func TestTrialKeyDistinguishesSpecs(t *testing.T) {
	base := Single(app.STK(), DriverHuman)
	variants := []Trial{
		Single(app.STK(), DriverIC),
		Single(app.RE(), DriverHuman),
		Homogeneous(app.STK(), DriverHuman, 2),
		Pair(app.STK(), app.RE()),
	}
	tracingOff := Single(app.STK(), DriverHuman)
	tracingOff.Instances[0].TracingOff = true
	variants = append(variants, tracingOff)
	containerized := Single(app.STK(), DriverHuman)
	containerized.Instances[0].Containerized = true
	variants = append(variants, containerized)
	longer := Single(app.STK(), DriverHuman)
	longer.Measure = 120
	variants = append(variants, longer)

	keys := map[string]bool{base.Key(): true}
	for i, v := range variants {
		k := v.Key()
		if keys[k] {
			t.Fatalf("variant %d has a non-unique key %q", i, k)
		}
		keys[k] = true
	}
	if base.Key() != Single(app.STK(), DriverHuman).Key() {
		t.Fatal("identical specs must have identical keys")
	}
}

// TestFleetShapeProfilesKeyStability: the workload subset serializes
// into the key only when set, so every pre-registry fleet shape keeps
// its exact historical key — and therefore its derived seeds, streams
// and golden fixtures.
func TestFleetShapeProfilesKeyStability(t *testing.T) {
	tr := FleetTrial(FleetShape{Machines: 3, Policy: "binpack", Mix: "shuffled", Requests: 8})
	tr.Warmup, tr.Measure = 1, 5
	const legacy = "w=1;m=5;s=0|fleet:n=3:pol=binpack:mix=shuffled:req=8:cores=0"
	if got := tr.Key(); got != legacy {
		t.Fatalf("pre-registry fleet key changed:\n got %q\nwant %q", got, legacy)
	}
	withProfiles := tr
	shape := *tr.Fleet
	shape.Profiles = "STK,CAD,VV"
	withProfiles.Fleet = &shape
	if got := withProfiles.Key(); got != legacy+":profiles=STK,CAD,VV" {
		t.Fatalf("subset key = %q, want the legacy key plus :profiles=...", got)
	}
	// Churn shapes order profiles before the churn block consistently.
	churn := shape
	churn.Epochs, churn.ArrivalRate, churn.MeanSessionEpochs = 4, 2, 3
	churnTrial := withProfiles
	churnTrial.Fleet = &churn
	if got := churnTrial.Key(); got == withProfiles.Key() {
		t.Fatalf("churn fields must still distinguish keys, got %q", got)
	}
}

// TestRunOrderedAndComplete runs a grid on several workers and checks
// every unit executed exactly once, with results landing at the right
// [trial][rep] index and with the documented seeds.
func TestRunOrderedAndComplete(t *testing.T) {
	trials := make([]Trial, 7)
	for i := range trials {
		trials[i] = Single(app.STK(), DriverHuman)
		trials[i].Measure = float64(i + 1) // distinct keys
	}
	opts := RunOptions{Parallel: 4, Reps: 3, BaseSeed: 9}
	var calls atomic.Int64
	type res struct {
		TrialIndex, Rep int
		Seed            int64
	}
	out := Run(trials, func(tr Trial, u Unit) res {
		calls.Add(1)
		return res{u.TrialIndex, u.Rep, u.Seed}
	}, opts)
	if got := calls.Load(); got != int64(len(trials)*3) {
		t.Fatalf("executed %d units, want %d", got, len(trials)*3)
	}
	for ti := range trials {
		for rep := 0; rep < 3; rep++ {
			got := out[ti][rep]
			want := res{ti, rep, UnitSeed(trials[ti], rep, 9)}
			if got != want {
				t.Fatalf("out[%d][%d] = %+v, want %+v", ti, rep, got, want)
			}
		}
	}
}

// TestRunParallelismInvariant: the collected result grid must be
// identical at parallel 1 and parallel 8.
func TestRunParallelismInvariant(t *testing.T) {
	trials := []Trial{
		Single(app.STK(), DriverHuman),
		Homogeneous(app.RE(), DriverHuman, 3),
		Pair(app.STK(), app.RE()),
	}
	exec := func(tr Trial, u Unit) string {
		return fmt.Sprintf("%s@%d", tr.Key(), u.Seed)
	}
	seq := Run(trials, exec, RunOptions{Parallel: 1, Reps: 4, BaseSeed: 3})
	par := Run(trials, exec, RunOptions{Parallel: 8, Reps: 4, BaseSeed: 3})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel run diverged:\nseq: %v\npar: %v", seq, par)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	trials := []Trial{Single(app.STK(), DriverHuman), Single(app.RE(), DriverHuman)}
	Run(trials, func(tr Trial, u Unit) int { panic("boom") },
		RunOptions{Parallel: 2})
}

func TestAggregateOf(t *testing.T) {
	reps := []float64{10, 12, 14}
	a := AggregateOf(reps, func(x float64) float64 { return x })
	if a.N != 3 || a.Mean != 12 {
		t.Fatalf("aggregate = %+v", a)
	}
	if a.CI95 <= 0 {
		t.Fatal("repetitions must yield a confidence interval")
	}
	one := AggregateOf(reps[:1], func(x float64) float64 { return x })
	if one.CI95 != 0 {
		t.Fatal("single repetition cannot have a confidence interval")
	}
}

func TestPoolSummaries(t *testing.T) {
	a := stats.Summary{N: 10, Mean: 5, P1: 1, P25: 2, P75: 8, P99: 9}
	b := stats.Summary{N: 30, Mean: 7, P1: 3, P25: 4, P75: 10, P99: 11}
	got := PoolSummaries([]stats.Summary{a, b})
	if got.N != 40 || got.Mean != 6 || got.P1 != 2 || got.P99 != 10 {
		t.Fatalf("pooled = %+v", got)
	}
	if one := PoolSummaries([]stats.Summary{a}); one != a {
		t.Fatal("pooling one summary must be the identity")
	}
}

func TestCanonicalInterposer(t *testing.T) {
	if got := CanonicalInterposer(vgl.Options{}); got != vgl.DefaultOptions() {
		t.Fatalf("zero options must resolve to the baseline default, got %+v", got)
	}
	// Partially-set options (flags without cost parameters) must
	// inherit the baseline's copy costs, not run with free copies.
	partial := CanonicalInterposer(vgl.Options{MemoizeAttributes: true})
	def := vgl.DefaultOptions()
	if partial.MemcpyMsPerMB != def.MemcpyMsPerMB || partial.ReadDriverMs != def.ReadDriverMs {
		t.Fatalf("partial options lost the cost model: %+v", partial)
	}
	if !partial.MemoizeAttributes || partial.AsyncCopy {
		t.Fatalf("partial options lost their flags: %+v", partial)
	}
	// QueryDoubleBuffer is taken literally on nonzero input.
	if partial.QueryDoubleBuffer {
		t.Fatal("bool fields must not be defaulted on a nonzero struct")
	}
	// Explicitly-set costs pass through untouched.
	custom := vgl.DefaultOptions()
	custom.MemcpyMsPerMB = 0.9
	if got := CanonicalInterposer(custom); got != custom {
		t.Fatalf("explicit options were rewritten: %+v", got)
	}
}
