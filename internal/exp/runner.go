package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
)

// RunOptions configures how a grid of trials is executed.
type RunOptions struct {
	// Parallel is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	Parallel int
	// Reps is how many repetitions (independent seeds) to run per
	// trial; <= 0 means 1.
	Reps int
	// BaseSeed is the grid's base seed, mixed into every derived seed.
	BaseSeed int64
}

// EffectiveParallel resolves a worker-count setting the way Run does:
// <= 0 means every available core. Exported so CLIs and examples can
// report what the runner will actually do from one source of truth.
func EffectiveParallel(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// EffectiveReps resolves a repetition setting the way Run does.
func EffectiveReps(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

func (o RunOptions) normalize() RunOptions {
	o.Parallel = EffectiveParallel(o.Parallel)
	o.Reps = EffectiveReps(o.Reps)
	return o
}

// Unit identifies one execution of one trial: the repetition index and
// the seed the executor must build its cluster with. Base echoes the
// grid's base seed (RunOptions.BaseSeed): unlike Seed it is independent
// of the trial's key, so executors that must derive *matched* streams
// across related trials (fleet comparisons share one arrival stream
// across policies) can fall back to it when no trial seed is pinned.
type Unit struct {
	TrialIndex int
	Rep        int
	Seed       int64
	Base       int64
}

// UnitSeed resolves the seed for repetition rep of trial t: a pinned
// Trial.Seed wins for the first repetition (legacy single-run
// compatibility); everything else derives deterministically.
func UnitSeed(t Trial, rep int, base int64) int64 {
	if rep == 0 && t.Seed != 0 {
		return t.Seed
	}
	if t.Seed != 0 {
		base = t.Seed
	}
	return DeriveSeed(base, t.Key(), rep)
}

// PanicError is a panic recovered from one (trial, repetition)
// execution unit, carrying enough identity — the trial's ID, its full
// Key() and the repetition index — to re-run the poisoned unit in
// isolation. RunChecked returns these; Run re-raises the original
// panic value for legacy callers.
type PanicError struct {
	// TrialIndex is the trial's position in the submitted grid.
	TrialIndex int
	// TrialID is the trial's human label (may be empty).
	TrialID string
	// TrialKey is the trial's Key(): the complete serialized spec, so
	// the failing unit can be reconstructed without the original grid.
	TrialKey string
	// Rep is the repetition index that panicked.
	Rep int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack string
}

// Error implements error with the trial identity first — the point is
// that a sweep failure names the poisoned unit, not just the panic.
func (e *PanicError) Error() string {
	id := e.TrialID
	if id == "" {
		id = "(unnamed trial)"
	}
	return fmt.Sprintf("exp: trial %q rep %d panicked: %v\n  key: %s\n%s",
		id, e.Rep, e.Value, e.TrialKey, e.Stack)
}

// Run executes every (trial, repetition) unit of the grid on a worker
// pool and returns results indexed [trial][rep], in input order
// regardless of scheduling. Each unit gets a deterministic seed via
// UnitSeed, so results are byte-identical at any parallelism level as
// long as exec is a pure function of (Trial, Unit).
//
// exec runs concurrently from multiple goroutines; a panicking exec
// fails the run and the first unit's original panic value (grid order)
// is re-raised on the caller's goroutine. Callers that want a poisoned
// trial to fail *actionably* — as an error naming the unit, with every
// other unit's result intact — should use RunChecked instead.
func Run[T any](trials []Trial, exec func(Trial, Unit) T, opts RunOptions) [][]T {
	out, errs := RunChecked(trials, exec, opts)
	if len(errs) > 0 {
		// Re-raise the original value so callers can still inspect a
		// typed panic (stringifying it here would discard the type).
		panic(errs[0].Value)
	}
	return out
}

// RunChecked is Run with per-unit panic isolation: a panicking exec
// fails only its own (trial, repetition) unit — recovered into a
// PanicError carrying the trial's ID, Key() and repetition — while
// every other unit runs to completion and keeps its result. The zero
// value of T is left in the failed unit's result slot. Errors are
// returned sorted by (trial, rep), deterministic at any parallelism.
func RunChecked[T any](trials []Trial, exec func(Trial, Unit) T, opts RunOptions) ([][]T, []*PanicError) {
	opts = opts.normalize()

	type unitRef struct {
		trial, rep int
	}
	units := make([]unitRef, 0, len(trials)*opts.Reps)
	for ti := range trials {
		for r := 0; r < opts.Reps; r++ {
			units = append(units, unitRef{ti, r})
		}
	}

	out := make([][]T, len(trials))
	for i := range out {
		out[i] = make([]T, opts.Reps)
	}
	if len(units) == 0 {
		return out, nil
	}

	workers := opts.Parallel
	if workers > len(units) {
		workers = len(units)
	}

	var mu sync.Mutex
	var failures []*PanicError
	runOne := func(i int) {
		u := units[i]
		t := trials[u.trial]
		defer func() {
			if r := recover(); r != nil {
				pe := &PanicError{
					TrialIndex: u.trial,
					TrialID:    t.ID,
					TrialKey:   t.Key(),
					Rep:        u.rep,
					Value:      r,
					Stack:      string(debug.Stack()),
				}
				mu.Lock()
				failures = append(failures, pe)
				mu.Unlock()
			}
		}()
		out[u.trial][u.rep] = exec(t, Unit{
			TrialIndex: u.trial,
			Rep:        u.rep,
			Seed:       UnitSeed(t, u.rep, opts.BaseSeed),
			Base:       opts.BaseSeed,
		})
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				runOne(i)
			}
		}()
	}
	for i := range units {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	// Scheduling decides discovery order; report in grid order so a
	// failing sweep prints identically at any parallelism level.
	sort.Slice(failures, func(a, b int) bool {
		fa, fb := failures[a], failures[b]
		if fa.TrialIndex != fb.TrialIndex {
			return fa.TrialIndex < fb.TrialIndex
		}
		return fa.Rep < fb.Rep
	})
	return out, failures
}
