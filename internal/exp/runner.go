package exp

import (
	"runtime"
	"sync"
)

// RunOptions configures how a grid of trials is executed.
type RunOptions struct {
	// Parallel is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	Parallel int
	// Reps is how many repetitions (independent seeds) to run per
	// trial; <= 0 means 1.
	Reps int
	// BaseSeed is the grid's base seed, mixed into every derived seed.
	BaseSeed int64
}

// EffectiveParallel resolves a worker-count setting the way Run does:
// <= 0 means every available core. Exported so CLIs and examples can
// report what the runner will actually do from one source of truth.
func EffectiveParallel(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// EffectiveReps resolves a repetition setting the way Run does.
func EffectiveReps(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

func (o RunOptions) normalize() RunOptions {
	o.Parallel = EffectiveParallel(o.Parallel)
	o.Reps = EffectiveReps(o.Reps)
	return o
}

// Unit identifies one execution of one trial: the repetition index and
// the seed the executor must build its cluster with. Base echoes the
// grid's base seed (RunOptions.BaseSeed): unlike Seed it is independent
// of the trial's key, so executors that must derive *matched* streams
// across related trials (fleet comparisons share one arrival stream
// across policies) can fall back to it when no trial seed is pinned.
type Unit struct {
	TrialIndex int
	Rep        int
	Seed       int64
	Base       int64
}

// UnitSeed resolves the seed for repetition rep of trial t: a pinned
// Trial.Seed wins for the first repetition (legacy single-run
// compatibility); everything else derives deterministically.
func UnitSeed(t Trial, rep int, base int64) int64 {
	if rep == 0 && t.Seed != 0 {
		return t.Seed
	}
	if t.Seed != 0 {
		base = t.Seed
	}
	return DeriveSeed(base, t.Key(), rep)
}

// Run executes every (trial, repetition) unit of the grid on a worker
// pool and returns results indexed [trial][rep], in input order
// regardless of scheduling. Each unit gets a deterministic seed via
// UnitSeed, so results are byte-identical at any parallelism level as
// long as exec is a pure function of (Trial, Unit).
//
// exec runs concurrently from multiple goroutines; a panicking exec
// stops the run and the panic is re-raised on the caller's goroutine.
func Run[T any](trials []Trial, exec func(Trial, Unit) T, opts RunOptions) [][]T {
	opts = opts.normalize()

	type unitRef struct {
		trial, rep int
	}
	units := make([]unitRef, 0, len(trials)*opts.Reps)
	for ti := range trials {
		for r := 0; r < opts.Reps; r++ {
			units = append(units, unitRef{ti, r})
		}
	}

	out := make([][]T, len(trials))
	for i := range out {
		out[i] = make([]T, opts.Reps)
	}
	if len(units) == 0 {
		return out
	}

	workers := opts.Parallel
	if workers > len(units) {
		workers = len(units)
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					// Drain remaining work so the feeder can finish.
					for range idxCh {
					}
				}
			}()
			for i := range idxCh {
				u := units[i]
				t := trials[u.trial]
				out[u.trial][u.rep] = exec(t, Unit{
					TrialIndex: u.trial,
					Rep:        u.rep,
					Seed:       UnitSeed(t, u.rep, opts.BaseSeed),
					Base:       opts.BaseSeed,
				})
			}
		}()
	}
	for i := range units {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if panicked != nil {
		// Re-raise the original value so callers can still inspect a
		// typed panic (stringifying it here would discard the type).
		panic(panicked)
	}
	return out
}
