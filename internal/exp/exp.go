// Package exp is Pictor's experiment engine: a declarative trial
// specification plus a parallel runner.
//
// The paper's evaluation is a large grid of independent benchmark
// sessions — every figure and table is some slice of {benchmark ×
// driver × instance count × interposer × container × tracing} — and
// each session owns a private simulation kernel and seeded RNG, so the
// grid is embarrassingly parallel. This package turns "an experiment"
// into data: a Trial says *what* to run, the Runner decides *how* —
// sharding trials across a worker pool, deriving a deterministic seed
// for every (trial, repetition) unit, and collecting results in input
// order so output is byte-identical at any parallelism level.
//
// The package deliberately does not know how to build a cluster: the
// executor is injected (see internal/core.ExecuteTrial), which keeps
// exp a leaf that the assembly layer can depend on.
package exp

import (
	"fmt"

	"pictor/internal/app"
	"pictor/internal/fleet"
	"pictor/internal/vgl"
)

// DriverKind names a client driver declaratively, so a Trial can be
// pure data. The executor maps kinds onto concrete drivers (and trains
// the intelligent client's models on first use).
type DriverKind int

const (
	// DriverNone leaves the instance undriven (no inputs).
	DriverNone DriverKind = iota
	// DriverHuman is the reference human policy.
	DriverHuman
	// DriverIC is Pictor's CNN+LSTM intelligent client.
	DriverIC
	// DriverDeskBench replays a recorded human session (record-replay
	// baseline).
	DriverDeskBench
	// DriverSlowMotion paces the intelligent client one input at a time
	// (use with app.ModeSlowMotion).
	DriverSlowMotion
)

// String implements fmt.Stringer for labels and trial keys.
func (d DriverKind) String() string {
	switch d {
	case DriverNone:
		return "none"
	case DriverHuman:
		return "human"
	case DriverIC:
		return "ic"
	case DriverDeskBench:
		return "deskbench"
	case DriverSlowMotion:
		return "slowmotion"
	}
	return fmt.Sprintf("driver(%d)", int(d))
}

// InstanceSpec describes one benchmark instance of a trial.
type InstanceSpec struct {
	Profile app.Profile
	Driver  DriverKind
	// Mode selects the pipeline discipline (normal vs slow-motion).
	Mode app.Mode
	// TracingOff disables the analysis framework (the zero value keeps
	// it on, matching the standard setup).
	TracingOff bool
	// Interposer selects frame-copy behaviour. The zero value means
	// "the baseline default" (vgl.DefaultOptions), so specs stay
	// terse; a partially-set value (e.g. only optimization flags)
	// inherits the baseline's cost parameters — see
	// CanonicalInterposer. Note QueryDoubleBuffer is taken literally
	// on any nonzero value: set it explicitly when customizing.
	Interposer vgl.Options
	// Containerized wraps the instance in the Docker-like overhead
	// model.
	Containerized bool
}

// FleetShape turns a trial into a multi-server consolidation scenario:
// Requests instance requests drawn from the named arrival Mix are
// placed across Machines servers by the named placement Policy, and
// every machine runs as its own cluster inside the one execution unit.
// Names (not concrete policies) keep the shape pure data, so fleet
// sweeps run on the same deterministic parallel runner as everything
// else; internal/fleet owns the vocabulary and internal/core lowers the
// shape onto real clusters.
type FleetShape struct {
	// Machines is the server count (< 1 executes as 1).
	Machines int
	// Policy is the placement policy name (see fleet.PolicyNames); ""
	// means round-robin.
	Policy string
	// Mix is the arrival-mix name (see fleet.Mixes); "" means the
	// suite cycled in paper order.
	Mix string
	// Profiles selects the workload set the arrival mix draws from: a
	// comma-separated list of registered profile names ("STK,CAD,VV"),
	// "all" for every registered profile, or "" for the paper's six
	// (see app.Resolve). It serializes into Key() only when set, so
	// every pre-registry shape keeps its exact historical key, seeds
	// and fixtures.
	Profiles string
	// Requests is the one-shot instance-request stream length. It must
	// be >= 1 for non-churn shapes (the executor rejects non-positive
	// streams rather than silently running one request) and is ignored
	// when the shape churns — arrivals come from the Poisson process.
	Requests int
	// MachineCores is each server's core count; <= 0 means the paper
	// testbed's 8. CoreClasses, when set, wins.
	MachineCores int
	// CoreClasses makes the fleet heterogeneous: a comma-separated
	// per-machine core-class list (e.g. "8,4"), cycled across machines
	// (see fleet.ParseCoreClasses). "" keeps every machine at
	// MachineCores.
	CoreClasses string

	// Churn fields: a shape with Epochs > 0 runs as an epoch-based
	// churn simulation (Poisson arrivals, exponential sessions,
	// optional RTT-driven migration) instead of one-shot admission.

	// Epochs is the churn horizon (number of place→execute→measure→
	// migrate rounds); 0 selects the one-shot admission path.
	Epochs int
	// ArrivalRate is the mean Poisson arrival count per epoch.
	ArrivalRate float64
	// MeanSessionEpochs is the mean exponential session length, in
	// epochs (rounded up; every session runs at least one epoch).
	MeanSessionEpochs float64
	// Migrate enables the migration controller: machines whose
	// measured mean RTT from the previous epoch exceeds
	// fleet.QoSMaxRTTMs shed their heaviest session to a feasible
	// machine chosen by the placement policy.
	Migrate bool
	// RateSchedule shapes the arrival rate over the horizon (see
	// fleet.Schedules): "" and "constant" are the historical flat
	// Poisson rate — byte-identical draws — while "diurnal" sweeps a
	// sinusoidal day curve from the ArrivalRate trough to PeakRate and
	// back every PeriodEpochs, and "flash" holds the ArrivalRate
	// baseline except for a PeakRate spike window of PeriodEpochs
	// epochs starting at epoch PeriodEpochs. Non-constant schedules
	// serialize into Key() only when set, so every pre-schedule shape
	// keeps its exact historical key, seeds and fixtures.
	RateSchedule string
	// PeakRate is the diurnal peak / flash spike arrival rate; ignored
	// — normalized away — for constant schedules.
	PeakRate float64
	// PeriodEpochs is the diurnal period / flash spike width in
	// epochs; ignored for constant schedules.
	PeriodEpochs int

	// Fault-injection fields: a churn shape with MTBFEpochs > 0 runs a
	// deterministic per-machine crash/repair process (materialized up
	// front like the arrival schedule, see fleet.FaultStream). All of
	// these serialize into Key() only when set, so fault-free shapes
	// keep their exact historical keys, seeds and fixtures.

	// MTBFEpochs is each machine's mean time between failures, in
	// epochs (exponential); 0 disables fault injection.
	MTBFEpochs float64
	// MTTREpochs is the mean repair time, in epochs (exponential,
	// rounded up — every outage lasts at least one epoch, then
	// fleet.ColdStartEpochs of cold start before placements resume).
	// Required (> 0) whenever MTBFEpochs > 0.
	MTTREpochs float64
	// RetryAttempts bounds session failover: evicted and
	// admission-rejected sessions re-enter admission up to this many
	// times with exponential epoch-granularity backoff; 0 keeps the
	// historical drop-on-failure behaviour.
	RetryAttempts int
	// RetryBackoffEpochs is the base failover backoff (attempt k
	// matures RetryBackoffEpochs × 2^(k-1) epochs after the failure);
	// <= 0 executes as 1.
	RetryBackoffEpochs int
	// Degrade enables brown-out quality tiers: machines over the QoS
	// ceiling downgrade their heaviest resident's served resolution
	// (see fleet.DegradedProfile) before the migration controller — or
	// an eviction — runs, and upgrade back once measured RTT clears
	// fleet.QoSClearRTTMs.
	Degrade bool

	// Fidelity-tier fields: a churn shape with SurrogateTail set runs
	// full per-frame simulation only on a sampled machine cohort and a
	// trained per-profile surrogate everywhere else, trading per-session
	// measurement fidelity for orders of magnitude in sweep size. Both
	// serialize into Key() only when set, so every full-fidelity shape
	// keeps its exact historical key, seeds and fixtures.

	// FidelitySampled is the size of the full-fidelity machine cohort
	// (machines [0, FidelitySampled) run the per-frame simulator) when
	// SurrogateTail is set; it is clamped to [0, Machines] and ignored
	// — normalized away — without SurrogateTail.
	FidelitySampled int
	// SurrogateTail runs every machine outside the sampled cohort on
	// the calibrated surrogate engine instead of full simulation. With
	// FidelitySampled == 0 the whole fleet is surrogate-driven.
	SurrogateTail bool
	// OccupancyDetail records per-(machine, epoch) occupancy rows in
	// the churn result (state, residents, demand, pooled RTT, power) —
	// opt-in because the payload grows with machines × epochs.
	OccupancyDetail bool
	// RollupOnly streams every epoch through the aggregate-only result
	// sink: the churn result carries exact fleet-wide rollup counters
	// and a pooled-per-epoch RTT summary, but no per-epoch rows and no
	// occupancy detail, holding O(machines) memory instead of
	// O(machines × epochs). The simulation itself is unchanged — the
	// knob only bounds what the result retains — but it serializes into
	// Key() when set so a rollup-only result can never answer a cache
	// lookup that expects full rows.
	RollupOnly bool
}

// Churn reports whether the shape runs the epoch-based churn simulation
// rather than one-shot admission.
func (f FleetShape) Churn() bool { return f.Epochs > 0 }

// Faulty reports whether the shape injects machine crashes.
func (f FleetShape) Faulty() bool { return f.MTBFEpochs > 0 }

// Scheduled reports whether the shape's arrival rate varies over the
// horizon — a non-constant RateSchedule. Constant schedules (including
// an explicit "constant") execute, key and seed exactly like the
// historical flat-rate path.
func (f FleetShape) Scheduled() bool {
	return f.RateSchedule != "" && f.RateSchedule != fleet.ScheduleConstant
}

// Trial is one independent benchmark session: some instances co-located
// on one simulated server, run for Warmup+Measure seconds.
type Trial struct {
	// ID is a human label for reports; Key() identifies the spec.
	ID        string
	Instances []InstanceSpec
	// Fleet, when non-nil, makes this a multi-server trial: Instances
	// is ignored and the executor expands the shape's request stream
	// across Machines placed clusters instead.
	Fleet *FleetShape
	// Warmup and Measure are simulated seconds (warmup is discarded).
	Warmup  float64
	Measure float64
	// Seed, when nonzero, pins the first repetition's cluster seed
	// (legacy single-run experiments do this so numbers match the
	// sequential implementation exactly). Further repetitions, and
	// trials with Seed == 0, use DeriveSeed — note 0 therefore means
	// "derive", not "cluster seed zero".
	Seed int64
	// KeepSystem asks the executor to retain the executed system in
	// the trial's result (for estimators that re-read raw traces).
	// Off by default so a large grid only holds measurement snapshots,
	// not every simulated machine. Not part of Key(): retention does
	// not affect the trial's outcome.
	KeepSystem bool
	// Sink, when non-nil, is an executor-defined streaming observer
	// for this trial's per-epoch results (the assembly layer asserts
	// it to its sink interface — see core.ChurnSink). Like KeepSystem
	// it is not part of Key(): observation does not affect the trial's
	// outcome, only where the rows land.
	Sink any
}

// Single is a one-instance trial with the standard setup.
func Single(prof app.Profile, d DriverKind) Trial {
	return Trial{Instances: []InstanceSpec{{Profile: prof, Driver: d}}}
}

// Homogeneous co-locates n identical instances (the §5.2 sweeps).
func Homogeneous(prof app.Profile, d DriverKind, n int) Trial {
	t := Trial{Instances: make([]InstanceSpec, n)}
	for i := range t.Instances {
		t.Instances[i] = InstanceSpec{Profile: prof, Driver: d}
	}
	return t
}

// Pair co-locates two (possibly different) human-driven benchmarks
// (the §5.3 co-location matrix).
func Pair(a, b app.Profile) Trial {
	return Trial{Instances: []InstanceSpec{
		{Profile: a, Driver: DriverHuman},
		{Profile: b, Driver: DriverHuman},
	}}
}

// CanonicalInterposer resolves a spec's interposer options to what the
// executor actually runs: the zero value is the baseline default, and
// a partially-set value (optimization flags without cost parameters)
// inherits the baseline's nonzero copy costs — zero costs would
// silently make frame copies free and inflate every FPS/RTT result.
func CanonicalInterposer(o vgl.Options) vgl.Options {
	if o == (vgl.Options{}) {
		return vgl.DefaultOptions()
	}
	def := vgl.DefaultOptions()
	if o.MemcpyMsPerMB <= 0 {
		o.MemcpyMsPerMB = def.MemcpyMsPerMB
	}
	if o.ReadDriverMs <= 0 {
		o.ReadDriverMs = def.ReadDriverMs
	}
	return o
}

// Key serializes everything that affects a trial's outcome into a
// stable string. Equal keys mean equal trials: grid builders use keys
// to deduplicate shared baselines, and the runner hashes the key into
// the per-repetition seed, so a trial's seeds do not change when
// unrelated trials are added to or removed from a grid. Interposer
// options are serialized in canonical (as-executed) form, so a terse
// spec and an explicit-default spec share a key.
func (t Trial) Key() string {
	key := fmt.Sprintf("w=%g;m=%g;s=%d", t.Warmup, t.Measure, t.Seed)
	if t.Fleet != nil {
		f := *t.Fleet
		key += fmt.Sprintf("|fleet:n=%d:pol=%s:mix=%s:req=%d:cores=%d",
			f.Machines, f.Policy, f.Mix, f.Requests, f.MachineCores)
		// Heterogeneity, workload subset and churn serialize only when
		// set, so every pre-churn, pre-registry shape keeps its exact
		// historical key (and therefore its derived per-rep seeds and
		// golden fixtures).
		if f.CoreClasses != "" {
			key += fmt.Sprintf(":classes=%s", f.CoreClasses)
		}
		if f.Profiles != "" {
			key += fmt.Sprintf(":profiles=%s", f.Profiles)
		}
		if f.Churn() {
			key += fmt.Sprintf(":churn=e%d:rate=%g:dur=%g:mig=%t",
				f.Epochs, f.ArrivalRate, f.MeanSessionEpochs, f.Migrate)
		}
		// A non-constant rate schedule serializes only when set — a
		// constant schedule (implicit or explicit) is the historical
		// flat-rate trial, same key, same seeds, same fixtures.
		if f.Scheduled() {
			key += fmt.Sprintf(":sched=%s:peak=%g:period=%d",
				f.RateSchedule, f.PeakRate, f.PeriodEpochs)
		}
		// Fault injection, failover and degradation likewise serialize
		// only when enabled, keeping every fault-free key historical.
		if f.Faulty() {
			key += fmt.Sprintf(":faults=mtbf%g:mttr%g", f.MTBFEpochs, f.MTTREpochs)
		}
		if f.RetryAttempts > 0 {
			key += fmt.Sprintf(":retry=%d:backoff=%d", f.RetryAttempts, f.RetryBackoffEpochs)
		}
		if f.Degrade {
			key += ":degrade=true"
		}
		// Fidelity tiers and occupancy detail serialize only when set:
		// a full-fidelity, rollup-only shape keeps its historical key.
		if f.SurrogateTail {
			key += fmt.Sprintf(":fidelity=%d:surrogate=true", f.FidelitySampled)
		}
		if f.OccupancyDetail {
			key += ":occupancy=true"
		}
		// RollupOnly changes what the result retains (rollups, no rows),
		// so it must key distinctly — a cache hit across the two modes
		// would hand a rows-expecting caller a rowless result.
		if f.RollupOnly {
			key += ":rollup=true"
		}
		return key
	}
	for _, is := range t.Instances {
		key += fmt.Sprintf("|%s:%s:mode=%d:troff=%t:ip=%+v:ct=%t",
			is.Profile.Name, is.Driver, int(is.Mode), is.TracingOff,
			CanonicalInterposer(is.Interposer), is.Containerized)
	}
	return key
}

// FleetTrial is a multi-server trial with the given shape.
func FleetTrial(shape FleetShape) Trial {
	s := shape
	return Trial{Fleet: &s}
}
