package exp

import "testing"

// TestCanonicalKeyCollidesAsExecutedShapes: each pair spells the same
// as-executed fleet differently; raw keys split them (historical byte
// stability) while canonical keys — the cache/dedup identity — collide.
func TestCanonicalKeyCollidesAsExecutedShapes(t *testing.T) {
	churn := FleetShape{Machines: 4, Policy: "binpack", Epochs: 6, ArrivalRate: 1.6, MeanSessionEpochs: 5}
	withBackoff := func(f FleetShape, backoff int) FleetShape {
		f.MTBFEpochs, f.MTTREpochs = 5, 1
		f.RetryAttempts, f.RetryBackoffEpochs = 2, backoff
		return f
	}
	withRequests := func(f FleetShape, req int) FleetShape {
		f.Requests = req
		return f
	}
	pairs := []struct {
		name string
		a, b FleetShape
	}{
		{"retry backoff 0 executes as 1",
			withBackoff(churn, 0), withBackoff(churn, 1)},
		{"machine cores 0 executes as the testbed default",
			FleetShape{Machines: 3, Policy: "binpack", Mix: "shuffled", Requests: 8, MachineCores: 0},
			FleetShape{Machines: 3, Policy: "binpack", Mix: "shuffled", Requests: 8, MachineCores: 8}},
		{"churn shapes ignore the one-shot request stream length",
			withRequests(churn, 7), withRequests(churn, 0)},
		{"empty policy executes as round-robin",
			FleetShape{Machines: 2, Requests: 4},
			FleetShape{Machines: 2, Policy: "roundrobin", Requests: 4}},
		{"empty mix executes as the suite mix",
			FleetShape{Machines: 2, Requests: 4},
			FleetShape{Machines: 2, Mix: "suite", Requests: 4}},
		{"core classes win over machine cores",
			FleetShape{Machines: 2, Requests: 4, CoreClasses: "8,4", MachineCores: 0},
			FleetShape{Machines: 2, Requests: 4, CoreClasses: "8,4", MachineCores: 16}},
	}
	for _, p := range pairs {
		ta, tb := FleetTrial(p.a), FleetTrial(p.b)
		ta.Warmup, ta.Measure = 1, 5
		tb.Warmup, tb.Measure = 1, 5
		if ta.CanonicalKey() != tb.CanonicalKey() {
			t.Errorf("%s: canonical keys differ:\n a %q\n b %q",
				p.name, ta.CanonicalKey(), tb.CanonicalKey())
		}
		if ta.Key() == tb.Key() {
			t.Errorf("%s: raw keys must stay distinct (byte stability), both %q",
				p.name, ta.Key())
		}
	}
}

// TestCanonicalKeySeparatesDistinctShapes: normalization must not
// over-collapse — genuinely different executions keep distinct keys.
func TestCanonicalKeySeparatesDistinctShapes(t *testing.T) {
	base := FleetShape{Machines: 4, Policy: "binpack", Epochs: 6, ArrivalRate: 1.6, MeanSessionEpochs: 5,
		MTBFEpochs: 5, MTTREpochs: 1, RetryAttempts: 2, RetryBackoffEpochs: 1}
	variants := []func(FleetShape) FleetShape{
		func(f FleetShape) FleetShape { f.RetryBackoffEpochs = 2; return f },
		func(f FleetShape) FleetShape { f.MachineCores = 4; return f },
		func(f FleetShape) FleetShape { f.Machines = 5; return f },
		func(f FleetShape) FleetShape { f.Migrate = true; return f },
		func(f FleetShape) FleetShape { f.MTTREpochs = 2; return f },
		func(f FleetShape) FleetShape { f.Degrade = true; return f },
	}
	bt := FleetTrial(base)
	bt.Warmup, bt.Measure = 1, 5
	seen := map[string]bool{bt.CanonicalKey(): true}
	for i, v := range variants {
		vt := FleetTrial(v(base))
		vt.Warmup, vt.Measure = 1, 5
		k := vt.CanonicalKey()
		if seen[k] {
			t.Errorf("variant %d collapsed onto an existing canonical key %q", i, k)
		}
		seen[k] = true
	}
}

// TestCanonicalKeyLeavesRawKeyByteStable: CanonicalKey is a parallel
// identity — calling it must not perturb Key(), and the legacy raw key
// literal (the one every historical seed derives from) must not move.
func TestCanonicalKeyLeavesRawKeyByteStable(t *testing.T) {
	tr := FleetTrial(FleetShape{Machines: 3, Policy: "binpack", Mix: "shuffled", Requests: 8})
	tr.Warmup, tr.Measure = 1, 5
	const legacy = "w=1;m=5;s=0|fleet:n=3:pol=binpack:mix=shuffled:req=8:cores=0"
	if got := tr.CanonicalKey(); got != "w=1;m=5;s=0|fleet:n=3:pol=binpack:mix=shuffled:req=8:cores=8" {
		t.Fatalf("canonical key = %q", got)
	}
	if got := tr.Key(); got != legacy {
		t.Fatalf("raw key moved after CanonicalKey():\n got %q\nwant %q", got, legacy)
	}
	if tr.Fleet.MachineCores != 0 || tr.Fleet.Policy != "binpack" {
		t.Fatal("CanonicalKey must not mutate the trial's shape in place")
	}
	// Non-fleet trials already serialize canonically.
	single := Trial{Instances: []InstanceSpec{{}}, Warmup: 1, Measure: 5}
	if single.CanonicalKey() != single.Key() {
		t.Fatalf("non-fleet canonical key diverged: %q vs %q", single.CanonicalKey(), single.Key())
	}
}
