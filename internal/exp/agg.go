package exp

import (
	"pictor/internal/stats"
)

// Aggregate is one metric summarized across a trial's repetitions.
type Aggregate struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval of the
	// mean (Student's t for small repetition counts).
	CI95 float64
}

// AggregateOf extracts metric from each repetition's result and
// summarizes it with a confidence interval.
func AggregateOf[T any](reps []T, metric func(T) float64) Aggregate {
	var s stats.Sample
	for _, r := range reps {
		s.Add(metric(r))
	}
	mean, half := s.MeanCI95()
	return Aggregate{N: s.N(), Mean: mean, StdDev: s.StdDev(), CI95: half}
}

// MeanOf is AggregateOf when only the mean matters.
func MeanOf[T any](reps []T, metric func(T) float64) float64 {
	if len(reps) == 0 {
		return 0
	}
	var sum float64
	for _, r := range reps {
		sum += metric(r)
	}
	return sum / float64(len(reps))
}

// PoolSummaries merges per-repetition distribution summaries into one:
// observation counts add, while the mean and each reported quantile are
// averaged across repetitions (the standard quantile-averaging
// estimator for repeated independent runs).
func PoolSummaries(ss []stats.Summary) stats.Summary {
	if len(ss) == 0 {
		return stats.Summary{}
	}
	if len(ss) == 1 {
		return ss[0]
	}
	var out stats.Summary
	inv := 1 / float64(len(ss))
	for _, s := range ss {
		out.N += s.N
		out.Mean += s.Mean * inv
		out.P1 += s.P1 * inv
		out.P25 += s.P25 * inv
		out.P75 += s.P75 * inv
		out.P99 += s.P99 * inv
	}
	return out
}
