package exp

// Deterministic per-unit seed derivation. Every (trial, repetition)
// execution unit needs its own RNG seed that is (a) stable — the same
// base seed, trial spec and repetition always derive the same seed, no
// matter how many workers run the grid or in what order — and (b) well
// mixed, so adjacent repetitions or near-identical trials do not get
// correlated random streams.

// fnv64a hashes a string with FNV-1a (stdlib hash/fnv allocates; this
// is the same function inlined for the hot grid-expansion path).
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014) —
// a bijective avalanche mix, so distinct inputs stay distinct.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed derives the RNG seed for one execution unit from the
// runner's base seed, the trial's Key() and the repetition index.
//
// Repetitions of one trial can never collide: splitmix64 is a
// bijection and hash(key) + rep is distinct for each rep of the same
// key. Across distinct keys uniqueness is probabilistic — two units
// collide only if hash(keyA) + repA == hash(keyB) + repB, i.e. the
// keys' 64-bit FNV hashes land within a small-integer offset of each
// other (~n²/2⁶⁴ for an n-unit grid; negligible at any real grid
// size, and verified collision-free over the full suite grid by
// TestDeriveSeedCollisionFree).
func DeriveSeed(base int64, key string, rep int) int64 {
	h := fnv64a(key)
	x := splitmix64(uint64(base))
	x ^= splitmix64(h + uint64(rep))
	return int64(splitmix64(x))
}
