package exp

import "pictor/internal/fleet"

// Key canonicalization. Trial.Key() is byte-stable by contract — every
// historical derived seed, stream and golden fixture hangs off it — but
// it serializes the shape as *written*, not as *executed*: several
// distinct spellings of a FleetShape run identically (the executor
// defaults them at lowering time). A result cache keyed by the raw key
// would silently miss on those spellings; Normalize and CanonicalKey
// exist so caches and dedup key the as-executed shape while raw keys
// (and therefore seeds) never move.

// Normalize returns the shape as the executor actually runs it, mapping
// every as-executed-equivalent spelling onto one representative:
//
//   - Machines < 1 executes as 1 (buildFleet clamps).
//   - An empty Policy executes as round-robin, an empty Mix as the
//     suite mix (fleet.NewPolicy / the stream generators default them).
//   - When CoreClasses is set it wins and MachineCores is never read;
//     otherwise MachineCores <= 0 executes as the paper testbed's
//     fleet.DefaultMachineCores.
//   - Churn shapes ignore Requests (arrivals come from the Poisson
//     process); one-shot shapes ignore every churn knob.
//   - With failover enabled, RetryBackoffEpochs < 1 executes as 1
//     (fleet's retry queue clamps); with RetryAttempts <= 0 the backoff
//     is never read.
//   - With MTBFEpochs <= 0 fault injection is off and MTTREpochs is
//     never read.
//   - A constant RateSchedule (implicit "" or explicit "constant")
//     never reads PeakRate or PeriodEpochs; "" is the representative.
//     One-shot shapes ignore the schedule knobs and RollupOnly
//     entirely.
//   - Without SurrogateTail, FidelitySampled is never read; with it,
//     the executor clamps the sampled cohort to [0, Machines]. A
//     surrogate tail with the cohort covering every machine still keys
//     distinctly — the tier machinery is enabled even when no machine
//     lands on the surrogate.
//
// Normalize does not validate: shapes the executor would reject (an
// unknown policy name, a one-shot shape with Requests < 1) pass through
// for the validators to report.
func (f FleetShape) Normalize() FleetShape {
	if f.Machines < 1 {
		f.Machines = 1
	}
	if f.Policy == "" {
		f.Policy = fleet.PolicyRoundRobin
	}
	if f.Mix == "" {
		f.Mix = string(fleet.MixSuite)
	}
	if f.CoreClasses != "" {
		f.MachineCores = 0
	} else if f.MachineCores <= 0 {
		f.MachineCores = fleet.DefaultMachineCores
	}
	if f.Churn() {
		f.Requests = 0
	} else {
		f.Migrate = false
		f.ArrivalRate = 0
		f.MeanSessionEpochs = 0
		f.RateSchedule = ""
		f.PeakRate = 0
		f.PeriodEpochs = 0
		f.RollupOnly = false
	}
	// A constant schedule — implicit "" or explicit "constant" — never
	// reads the peak or period; the empty string is the representative.
	if !f.Scheduled() {
		f.RateSchedule = ""
		f.PeakRate = 0
		f.PeriodEpochs = 0
	}
	if f.RetryAttempts <= 0 {
		f.RetryAttempts = 0
		f.RetryBackoffEpochs = 0
	} else if f.RetryBackoffEpochs < 1 {
		f.RetryBackoffEpochs = 1
	}
	if f.MTBFEpochs <= 0 {
		f.MTBFEpochs, f.MTTREpochs = 0, 0
	}
	if !f.SurrogateTail {
		f.FidelitySampled = 0
	} else {
		if f.FidelitySampled < 0 {
			f.FidelitySampled = 0
		}
		if f.FidelitySampled > f.Machines {
			f.FidelitySampled = f.Machines
		}
	}
	return f
}

// CanonicalKey is Key() over the normalized (as-executed) fleet shape:
// two trials that the executor runs identically share a canonical key
// even when their raw keys differ (e.g. MachineCores 0 vs 8, or retry
// backoff 0 vs 1). Result stores and grid dedup key on this; seed
// derivation stays on the raw Key() so every historical seed and golden
// fixture is untouched. For non-fleet trials the canonical key equals
// the raw key (instance specs already serialize canonically).
func (t Trial) CanonicalKey() string {
	if t.Fleet != nil {
		f := t.Fleet.Normalize()
		t.Fleet = &f
	}
	return t.Key()
}
