package container

import (
	"testing"

	"pictor/internal/sim"
)

func TestDockerDefaults(t *testing.T) {
	d := Docker()
	if d.IPCTaxMean <= 0 || d.GPUVirtTax <= 0 {
		t.Fatal("Docker overheads must tax IPC and GPU")
	}
	if d.MemIsolation <= 0 || d.MemIsolation >= 1 {
		t.Fatalf("MemIsolation = %v, want in (0,1)", d.MemIsolation)
	}
}

func TestSampleIPCTaxSpread(t *testing.T) {
	d := Docker()
	rng := sim.NewRNG(1)
	lo, hi := 1e9, -1e9
	for i := 0; i < 200; i++ {
		tax := d.SampleIPCTax(rng)
		if tax < 0 {
			t.Fatalf("negative tax: %v", tax)
		}
		if tax < lo {
			lo = tax
		}
		if tax > hi {
			hi = tax
		}
	}
	if hi-lo < 0.05 {
		t.Fatalf("tax spread too narrow: [%v, %v]", lo, hi)
	}
	mid := d.IPCTaxMean
	if lo > mid || hi < mid {
		t.Fatalf("samples [%v,%v] don't bracket the mean %v", lo, hi, mid)
	}
}

func TestZeroOverheadsSampleZero(t *testing.T) {
	var o Overheads
	if got := o.SampleIPCTax(sim.NewRNG(2)); got != 0 {
		t.Fatalf("zero overheads sampled %v", got)
	}
}
