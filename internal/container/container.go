// Package container models Docker-style containerization of one
// instance (the benchmark plus its VNC server in one container, as
// §5.4 deploys with nvidia-docker). Containers tax the IPC stages and
// GPU virtualization, but their cgroup isolation also dampens the
// memory-system crosstalk between co-located processes — which is why
// the paper occasionally measures *negative* container overhead.
package container

import "pictor/internal/sim"

// Overheads describes containerization's performance effects.
type Overheads struct {
	// IPCTaxMean multiplies IPC-stage work (PS, AS): namespace-crossing
	// syscalls and bridged sockets.
	IPCTaxMean float64
	// IPCTaxSpread is the ± relative spread sampled per instance.
	IPCTaxSpread float64
	// GPUVirtTax multiplies GPU render time (vGPU mediation).
	GPUVirtTax float64
	// MemIsolation scales the instance's memory-contention intensity
	// as seen by others (< 1: cgroups confine its cache/bandwidth
	// footprint).
	MemIsolation float64
}

// Docker returns the overheads calibrated to §5.4: ~1.3% average RTT
// overhead with occasional 8%+ spikes (IPC-heavy moments) and ~2.9%
// average GPU render inflation.
func Docker() Overheads {
	return Overheads{
		IPCTaxMean:   0.30,
		IPCTaxSpread: 0.55,
		GPUVirtTax:   0.029,
		MemIsolation: 0.86,
	}
}

// SampleIPCTax draws this instance's IPC tax.
func (o Overheads) SampleIPCTax(rng *sim.RNG) float64 {
	if o.IPCTaxMean <= 0 {
		return 0
	}
	tax := o.IPCTaxMean * (1 + o.IPCTaxSpread*(2*rng.Float64()-1))
	if tax < 0 {
		tax = 0
	}
	return tax
}
