// Command pictor-bench regenerates any table or figure from the
// paper's evaluation.
//
// Usage:
//
//	pictor-bench -exp fig10 [-seconds 60] [-seed 1] [-parallel 8] [-reps 3]
//	pictor-bench -exp grid [-profiles STK,CAD,VV]
//	pictor-bench -exp fleet -machines 4 -policy binpack [-mix heavy] [-requests 16] [-profiles all]
//	pictor-bench -exp churn -machines 4 -rate 1.6 -duration 5 -epochs 10 [-migrate] [-cores 8,4]
//	pictor-bench -exp faults -machines 5 -cores 8,8,4 -mtbf 5 -mttr 1 -retries 3 -backoff 1 -degrade
//	pictor-bench -exp churn -machines 1000 -rate 5000 -epochs 20 -fidelity 8 [-occupancy]
//	pictor-bench -exp churn -machines 10000 -rate 10000 -schedule diurnal -peak 20000 -period 70 -epochs 70 -duration 1 -fidelity 0 -stream
//	pictor-bench -exp all
//
// Experiment ids: tab2 tab3 tab4 fig6 fig7 overhead fig8 fig9 fig10
// fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21
// fig22 grid fleet churn faults. "grid" runs the complete evaluation as
// one flat trial grid on the parallel experiment runner; "fleet" goes
// beyond the paper's single server and consolidates an instance-request
// stream across a multi-machine fleet under every placement policy;
// "churn" replaces the one-shot stream with a Poisson arrival process
// (exponential session lengths, departures) over an optionally
// heterogeneous fleet and compares static placement against RTT-driven
// migration; "faults" injects deterministic machine crashes into the
// churn simulation (-mtbf/-mttr, defaulting to 5/1) and compares
// drop-on-failure against session failover with retry/backoff
// (-retries/-backoff) and brown-out QoS tiers (-degrade). See the
// generated EXPERIMENTS.md for the full mode table.
//
// -fidelity N keeps machines [0, N) on full per-frame simulation and
// runs the rest of the fleet on the calibrated surrogate engine (churn
// and faults; -1 = full fidelity everywhere), scaling churn sweeps to
// hundreds of thousands of sessions; -occupancy records per-(machine,
// epoch) occupancy rows in the detailed table.
//
// -schedule bends the churn arrival rate over the horizon: "diurnal"
// sweeps a sinusoidal day curve from -rate (the trough) to -peak and
// back every -period epochs; "flash" holds -rate everywhere except a
// -period-wide spike window at -peak. -stream switches churn results
// to the aggregate-only streaming sink — per-epoch rows are observed
// and dropped as epochs close, so a million-session diurnal sweep
// reports its horizon rollups in O(machines) memory.
//
// -profiles selects the workload set every experiment sweeps: "" keeps
// the paper's Table-2 six, "all" selects every registered profile
// (including the extended CAD, VV and CZ scenario families), and a
// comma-separated name list picks a subset.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pictor/internal/agent"
	"pictor/internal/app"
	"pictor/internal/core"
	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/sim"
	"pictor/internal/trace"
)

func main() {
	seconds := flag.Float64("seconds", 45, "measurement window (simulated seconds)")
	seed := flag.Int64("seed", 1, "simulation seed (0 switches to per-trial derived seeds)")
	instances := flag.Int("max-instances", 4, "sweep upper bound for figs 10–17")
	parallel := flag.Int("parallel", 0, "experiment-runner workers (0 = all cores); applies to batched experiments (grid, sweeps, multi-trial figures) and across -reps")
	reps := flag.Int("reps", 1, "repetitions per trial with derived seeds")
	machines := flag.Int("machines", 4, "fleet/churn experiments: server machine count")
	policy := flag.String("policy", fleet.PolicyBinPack, fmt.Sprintf("fleet experiment: placement policy to detail %v", fleet.PolicyNames()))
	mix := flag.String("mix", string(fleet.MixSuite), fmt.Sprintf("fleet/churn experiments: arrival mix %v", fleet.Mixes()))
	requests := flag.Int("requests", 0, "fleet experiment: instance-request stream length (0 = 3 per machine)")
	cores := flag.String("cores", "", "fleet/churn experiments: per-machine core classes, comma-separated and cycled (e.g. 8,4); empty = all 8")
	rate := flag.Float64("rate", 1.6, "churn experiment: mean Poisson arrivals per epoch")
	duration := flag.Float64("duration", 5, "churn experiment: mean session length in epochs (exponential)")
	epochs := flag.Int("epochs", 10, "churn experiment: epoch count")
	migrate := flag.Bool("migrate", true, "churn experiment: enable the RTT-driven migration controller in the detailed run")
	schedule := flag.String("schedule", "", fmt.Sprintf("churn/faults experiments: arrival-rate schedule %v (empty = constant)", fleet.Schedules()))
	peak := flag.Float64("peak", 0, "churn/faults experiments: diurnal peak / flash spike arrival rate (sessions/epoch; requires a non-constant -schedule)")
	period := flag.Int("period", 0, "churn/faults experiments: diurnal period / flash spike width in epochs (requires a non-constant -schedule)")
	stream := flag.Bool("stream", false, "churn/faults experiments: stream per-epoch rows through the aggregate-only sink (rollups only, O(machines) memory — for million-session sweeps)")
	mtbf := flag.Float64("mtbf", 0, "churn/faults experiments: mean epochs between machine crashes (0 = no faults for churn, 5 for faults)")
	mttr := flag.Float64("mttr", 0, "churn/faults experiments: mean epochs to repair a crashed machine (0 = 1 for faults; requires -mtbf)")
	retries := flag.Int("retries", 0, "churn/faults experiments: failover retry attempts per evicted/rejected session (0 = drop on failure)")
	backoff := flag.Int("backoff", 1, "churn/faults experiments: base retry backoff in epochs (doubles per attempt)")
	degrade := flag.Bool("degrade", false, "churn/faults experiments: enable brown-out QoS tiers (degrade resolution before evicting)")
	fidelity := flag.Int("fidelity", -1, "churn/faults experiments: full-simulation machine cohort size; machines beyond it run the calibrated surrogate engine (-1 = full fidelity everywhere, 0 = all-surrogate)")
	occupancy := flag.Bool("occupancy", false, "churn/faults experiments: record and print per-(machine, epoch) occupancy rows (placement heatmap feed)")
	profiles := flag.String("profiles", "", fmt.Sprintf("workload set: comma-separated profile names, \"all\" for every registered profile, empty for the paper's six (registered: %s)", strings.Join(app.Names(), ",")))

	// The dispatch registry is built before -exp so its usage string —
	// and the generated EXPERIMENTS.md table — are derived from the
	// registry itself and cannot drift from the vocabulary (the closures
	// dereference flag pointers only when invoked, after flag.Parse
	// below).
	all := experimentRegistry(
		func(cfg core.ExperimentConfig) {
			fleetExp(cfg, *machines, *policy, *mix, *requests, *cores, *profiles)
		},
		func(cfg core.ExperimentConfig) {
			churnExp(cfg, *machines, *policy, *mix, *cores, *profiles, *rate, *duration, *epochs, *migrate,
				*mtbf, *mttr, *retries, *backoff, *degrade, *fidelity, *occupancy,
				*schedule, *peak, *period, *stream)
		},
		func(cfg core.ExperimentConfig) {
			faultsExp(cfg, *machines, *policy, *mix, *cores, *profiles, *rate, *duration, *epochs, *migrate,
				*mtbf, *mttr, *retries, *backoff, *degrade, *fidelity, *occupancy,
				*schedule, *peak, *period, *stream)
		},
	)
	order := []string{"tab2", "tab4", "fig6", "tab3", "fig7", "overhead",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22"}

	expID := flag.String("exp", "all", fmt.Sprintf("experiment id (%s) or 'all'", strings.Join(experimentIDs(all), ", ")))
	flag.Parse()

	if _, err := app.Resolve(*profiles); err != nil {
		fatalf("-profiles: %v", err)
	}

	cfg := core.DefaultExperimentConfig()
	cfg.Seconds = *seconds
	cfg.Seed = *seed
	cfg.MaxInstances = *instances
	if cfg.MaxInstances < 1 {
		cfg.MaxInstances = 1
	}
	cfg.Parallel = *parallel
	cfg.Reps = *reps
	cfg.Profiles = *profiles

	id := strings.ToLower(*expID)
	if id == "all" {
		for _, e := range order {
			banner(e)
			all[e].run(cfg)
		}
		return
	}
	run, ok := all[id]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
		os.Exit(2)
	}
	banner(id)
	run.run(cfg)
}

func banner(id string) { fmt.Printf("\n========== %s ==========\n", id) }

// experiment is one dispatchable -exp mode: its runner plus the
// one-line description the usage string and the generated
// EXPERIMENTS.md table share.
type experiment struct {
	desc string
	run  func(core.ExperimentConfig)
}

// experimentRegistry builds the -exp dispatch registry. The fleet-shape
// experiments take their flag closures as parameters so the registry —
// and everything generated from it — lives in one place.
func experimentRegistry(fleetRun, churnRun, faultsRun func(core.ExperimentConfig)) map[string]experiment {
	return map[string]experiment{
		"tab2":     {"Table 2: the benchmark suite (application areas, sources)", tab2},
		"tab3":     {"Table 3: mean-RTT error of each driving methodology vs the human baseline", tab3},
		"tab4":     {"Table 4: feature matrix vs prior benchmarking frameworks", tab4},
		"fig6":     {"Figure 6: RTT distributions per benchmark under each methodology", fig6},
		"fig7":     {"Figure 7: intelligent-client inference cost (CV, RNN, APM)", fig7},
		"overhead": {"Tracing overhead: native vs traced vs single-buffered FPS", overhead},
		"fig8":     {"Figure 8: CPU/GPU utilization and memory footprints", fig8},
		"fig9":     {"Figure 9: network and PCIe bandwidth per benchmark", fig9},
		"fig10":    {"Figure 10: server/client FPS under co-location (1..max instances)", fig10},
		"fig11":    {"Figure 11: client-side stage times under co-location", fig11},
		"fig12":    {"Figure 12: server pipeline stage times under co-location", fig12},
		"fig13":    {"Figure 13: interposer stage times under co-location", fig13},
		"fig14":    {"Figure 14: top-down cycle breakdown and IPC under co-location", fig14},
		"fig15":    {"Figure 15: L3 miss rate under co-location", fig15},
		"fig16":    {"Figure 16: GPU L2/texture miss rates under co-location", fig16},
		"fig17":    {"Figure 17: per-instance power draw under consolidation", fig17},
		"fig18":    {"Figure 18: pairwise co-location QoS (which pairs hold 25 FPS)", fig18},
		"fig19":    {"Figure 19: D2 interference detail (FPS loss, cache pressure)", fig19},
		"fig20":    {"Figure 20: containerization overhead (FPS, RTT, readback)", fig20},
		"fig21":    {"Figure 21: frame-copy optimization (FC stage time)", fig21},
		"fig22":    {"Figure 22: optimization gains (server/client FPS, RTT)", fig22},
		"grid":     {"The complete evaluation as one flat trial grid on the parallel runner", grid},
		"fleet":    {"Multi-machine consolidation: one request stream under every placement policy", fleetRun},
		"churn":    {"Epoch-based churn (Poisson arrivals, departures): static vs RTT-driven migration; supports rate schedules, fidelity tiers, occupancy detail and streaming rollups", churnRun},
		"faults":   {"Machine crash injection: healthy vs drop-on-failure vs retry+degrade failover; supports rate schedules, fidelity tiers, occupancy detail and streaming rollups", faultsRun},
	}
}

// experimentIDs lists the -exp vocabulary in natural order (fig6 before
// fig10), derived from the dispatch registry itself so the usage string
// can never omit an experiment the binary actually accepts.
func experimentIDs(all map[string]experiment) []string {
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return naturalLess(ids[i], ids[j]) })
	return ids
}

// naturalLess orders strings comparing embedded digit runs numerically.
func naturalLess(a, b string) bool {
	for a != "" && b != "" {
		ha, ta := chunk(a)
		hb, tb := chunk(b)
		if ha != hb {
			na, errA := strconv.Atoi(ha)
			nb, errB := strconv.Atoi(hb)
			if errA == nil && errB == nil {
				return na < nb
			}
			return ha < hb
		}
		a, b = ta, tb
	}
	return a < b
}

// chunk splits off the leading run of digits or of non-digits.
func chunk(s string) (head, tail string) {
	digit := func(c byte) bool { return c >= '0' && c <= '9' }
	isDigit := digit(s[0])
	i := 1
	for i < len(s) && digit(s[i]) == isDigit {
		i++
	}
	return s[:i], s[i:]
}

func tab2(cfg core.ExperimentConfig) {
	var rows [][]string
	for _, p := range suiteOf(cfg) {
		src := "open-source"
		if p.ClosedSource {
			src = "closed-source"
		}
		rows = append(rows, []string{p.Genre, p.FullName + " (" + p.Name + ")", src})
	}
	fmt.Print(core.FormatTable([]string{"Application Area", "Benchmark", "Source"}, rows))
}

func tab4(core.ExperimentConfig) { fmt.Print(core.FeatureMatrix()) }

func fig6(cfg core.ExperimentConfig) {
	for _, prof := range suiteOf(cfg) {
		for _, r := range core.RunMethodologyComparison(prof, cfg) {
			fmt.Printf("%-4s %-10s mean %6.1f  p1 %6.1f  p25 %6.1f  p75 %6.1f  p99 %6.1f ms\n",
				prof.Name, r.Method, r.RTT.Mean, r.RTT.P1, r.RTT.P25, r.RTT.P75, r.RTT.P99)
		}
	}
}

func tab3(cfg core.ExperimentConfig) {
	var rows [][]string
	avg := map[string]float64{}
	for _, prof := range suiteOf(cfg) {
		rs := core.RunMethodologyComparison(prof, cfg)
		row := []string{prof.Name}
		for _, r := range rs[1:] {
			row = append(row, fmt.Sprintf("%.1f%%", r.ErrVsHuman))
			avg[r.Method] += r.ErrVsHuman / float64(len(suiteOf(cfg)))
		}
		rows = append(rows, row)
	}
	fmt.Print(core.FormatTable([]string{"bench", "Pictor-IC", "DeskBench", "Chen", "SlowMotion"}, rows))
	fmt.Printf("avg: IC %.1f%%  DB %.1f%%  CH %.1f%%  SM %.1f%%  (paper: 1.6 / 11.6 / 30.0 / 27.9)\n",
		avg["Pictor-IC"], avg["DeskBench"], avg["Chen"], avg["SlowMotion"])
}

func fig7(cfg core.ExperimentConfig) {
	for _, prof := range suiteOf(cfg) {
		models, _, _ := core.TrainedModels(prof)
		cl := core.NewCluster(core.Options{Seed: cfg.Seed})
		cl.AddInstance(core.NewInstanceConfig(prof, core.ICDriver(models)))
		cl.Run(sim.DurationOfSeconds(cfg.WarmupSeconds), sim.DurationOfSeconds(cfg.Seconds))
		ic := cl.Instances[0].Driver.(*agent.IntelligentClient)
		fmt.Printf("%-4s CV %6.1f ms   RNN %5.2f ms   APM %5.0f\n",
			prof.Name, ic.CVTimes.Mean(), ic.RNNTimes.Mean(), ic.APM())
	}
}

func overhead(cfg core.ExperimentConfig) {
	for _, prof := range suiteOf(cfg) {
		r := core.RunOverhead(prof, cfg)
		fmt.Printf("%-4s native %5.1f fps  traced %5.1f (%+.1f%%)  single-buffered %5.1f (%+.1f%%)\n",
			r.Benchmark, r.FPSNoTrace, r.FPSTraced, r.OverheadPct, r.FPSTracedSB, r.OverheadSBPct)
	}
}

func fig8(cfg core.ExperimentConfig) {
	for _, prof := range suiteOf(cfg) {
		r := core.RunCharacterization(prof, 1, exp.DriverHuman, cfg)[0]
		fmt.Printf("%-4s app CPU %5.0f%%  VNC CPU %5.0f%%  GPU %4.1f%%  mem %4.0fMB  gpuMem %3.0fMB\n",
			r.Benchmark, r.AppCPUUtil, r.VNCCPUUtil, r.GPUUtil, r.FootprintMB, r.GPUMemoryMB)
	}
}

func fig9(cfg core.ExperimentConfig) {
	for _, prof := range suiteOf(cfg) {
		r := core.RunCharacterization(prof, 1, exp.DriverHuman, cfg)[0]
		fmt.Printf("%-4s net %4.0f Mbps down / %4.1f up   PCIe %6.1f MB/s from-GPU / %6.1f to-GPU\n",
			r.Benchmark, r.NetDownMbps, r.NetUpMbps, r.PCIeFromGPU, r.PCIeToGPU)
	}
}

func sweepPrint(cfg core.ExperimentConfig, format func(r core.InstanceResult) string) {
	for _, prof := range suiteOf(cfg) {
		fmt.Printf("%-4s", prof.Name)
		rs, _ := core.RunCharacterizationSweep(prof, cfg.MaxInstances, exp.DriverHuman, cfg)
		for n, r := range rs {
			fmt.Printf("  [%d] %s", n+1, format(r[0]))
		}
		fmt.Println()
	}
}

func fig10(cfg core.ExperimentConfig) {
	sweepPrint(cfg, func(r core.InstanceResult) string {
		return fmt.Sprintf("srv %5.1f cli %5.1f", r.ServerFPS, r.ClientFPS)
	})
}

func fig11(cfg core.ExperimentConfig) {
	sweepPrint(cfg, func(r core.InstanceResult) string {
		return fmt.Sprintf("CS %4.1f srv %5.1f SS %5.1f",
			r.Stages[trace.StageCS].Mean, r.ServerTimeMs(), r.Stages[trace.StageSS].Mean)
	})
}

func fig12(cfg core.ExperimentConfig) {
	sweepPrint(cfg, func(r core.InstanceResult) string {
		return fmt.Sprintf("PS %4.1f app %5.1f AS %4.1f CP %5.1f",
			r.Stages[trace.StagePS].Mean, r.AppTimeMs(),
			r.Stages[trace.StageAS].Mean, r.Stages[trace.StageCP].Mean)
	})
}

func fig13(cfg core.ExperimentConfig) {
	sweepPrint(cfg, func(r core.InstanceResult) string {
		return fmt.Sprintf("AL %5.1f FC %5.1f RD %5.1f",
			r.Stages[trace.StageAL].Mean, r.Stages[trace.StageFC].Mean, r.Stages[trace.StageRD].Mean)
	})
}

func fig14(cfg core.ExperimentConfig) {
	sweepPrint(cfg, func(r core.InstanceResult) string {
		return fmt.Sprintf("BE %4.1f%% IPC %.2f", r.CPUTopDown.BackEnd*100, r.CPUTopDown.IPC)
	})
}

func fig15(cfg core.ExperimentConfig) {
	sweepPrint(cfg, func(r core.InstanceResult) string {
		return fmt.Sprintf("%4.1f%%", r.L3MissRate*100)
	})
}

func fig16(cfg core.ExperimentConfig) {
	sweepPrint(cfg, func(r core.InstanceResult) string {
		if r.GPUL2Miss < 0 {
			return "N/A"
		}
		return fmt.Sprintf("L2 %4.1f%% tex %4.1f%%", r.GPUL2Miss*100, r.GPUTexMiss*100)
	})
}

func fig17(cfg core.ExperimentConfig) {
	for _, prof := range suiteOf(cfg) {
		fmt.Printf("%-4s", prof.Name)
		var first float64
		_, watts := core.RunCharacterizationSweep(prof, cfg.MaxInstances, exp.DriverHuman, cfg)
		for i, w := range watts {
			per := w / float64(i+1)
			if i == 0 {
				first = per
			}
			fmt.Printf("  [%d] %5.1fW (%+5.1f%%)", i+1, per, (per-first)/first*100)
		}
		fmt.Println()
	}
}

func fig18(cfg core.ExperimentConfig) {
	ok := 0
	pairs := core.SortedPairNamesOf(suiteOf(cfg))
	for _, pair := range pairs {
		a, _ := app.ByName(pair[0])
		b, _ := app.ByName(pair[1])
		ra, rb := core.RunPair(a, b, cfg)
		if ra.ClientFPS >= 25 && rb.ClientFPS >= 25 {
			ok++
		}
		fmt.Printf("%-4s+%-4s  %5.1f / %5.1f fps\n", pair[0], pair[1], ra.ClientFPS, rb.ClientFPS)
	}
	fmt.Printf("%d of %d pairs ≥ 25 fps for both (paper: 11 of 15)\n", ok, len(pairs))
}

func fig19(cfg core.ExperimentConfig) {
	d2 := app.D2()
	solo := core.RunCharacterization(d2, 1, exp.DriverHuman, cfg)[0]
	for _, prof := range suiteOf(cfg) {
		if prof.Name == d2.Name {
			continue
		}
		rd2, _ := core.RunPair(d2, prof, cfg)
		fmt.Printf("D2 + %-4s  fps loss %5.1f%%   L3 +%4.1fpt   GPU L2 +%4.1fpt\n",
			prof.Name,
			(solo.ServerFPS-rd2.ServerFPS)/solo.ServerFPS*100,
			(rd2.L3MissRate-solo.L3MissRate)*100,
			(rd2.GPUL2Miss-solo.GPUL2Miss)*100)
	}
}

func fig20(cfg core.ExperimentConfig) {
	for _, prof := range suiteOf(cfg) {
		r := core.RunContainerOverhead(prof, cfg)
		fmt.Printf("%-4s FPS %+5.1f%%   RTT %+5.1f%%   RD %+5.1f%%\n",
			r.Benchmark, r.FPSOverheadPct, r.RTTOverheadPct, r.RDOverheadPct)
	}
}

func fig21(cfg core.ExperimentConfig) {
	for _, prof := range suiteOf(cfg) {
		r := core.RunOptimization(prof, cfg)
		fmt.Printf("%-4s FC %5.1f ms → %4.1f ms (halt removed: %4.1f ms)\n",
			r.Benchmark, r.BaseFCMs, r.OptFCMs, r.BaseFCMs-r.OptFCMs)
	}
}

func fig22(cfg core.ExperimentConfig) {
	var sGain, cGain, rttRed float64
	for _, prof := range suiteOf(cfg) {
		r := core.RunOptimization(prof, cfg)
		sGain += r.ServerFPSGain / float64(len(suiteOf(cfg)))
		cGain += r.ClientFPSGain / float64(len(suiteOf(cfg)))
		rttRed += r.RTTReduction / float64(len(suiteOf(cfg)))
		fmt.Printf("%-4s server %+6.1f%%   client %+6.1f%%   RTT %+6.1f%%\n",
			r.Benchmark, r.ServerFPSGain, r.ClientFPSGain, -r.RTTReduction)
	}
	fmt.Printf("avg: server %+.1f%% (paper +57.7%%), client %+.1f%% (paper +7.4%%), RTT %+.1f%% (paper −8.5%%)\n",
		sGain, cGain, -rttRed)
}

// grid runs the paper's complete evaluation as one flat trial grid on
// the parallel experiment runner and prints a compact summary of every
// experiment family.
func grid(cfg core.ExperimentConfig) {
	fmt.Printf("running the full suite grid: %d workers, %d rep(s), %gs windows\n",
		exp.EffectiveParallel(cfg.Parallel), exp.EffectiveReps(cfg.Reps), cfg.Seconds)
	start := time.Now()
	g := core.RunSuiteGrid(cfg)
	elapsed := time.Since(start)

	fmt.Printf("\nmethodology (mean-RTT error vs human):\n")
	for _, prof := range suiteOf(cfg) {
		rows := g.Methodology[prof.Name]
		fmt.Printf("  %-4s", prof.Name)
		for _, r := range rows[1:] {
			fmt.Printf("  %s %5.1f%%", r.Method, r.ErrVsHuman)
		}
		fmt.Println()
	}

	fmt.Printf("\ncharacterization (client FPS by co-location count):\n")
	for _, prof := range suiteOf(cfg) {
		fmt.Printf("  %-4s", prof.Name)
		for n, rs := range g.Characterization[prof.Name] {
			fmt.Printf("  [%d] %5.1f", n+1, rs[0].ClientFPS)
		}
		fmt.Printf("   power/inst [%d]: %.1fW\n", cfg.MaxInstances,
			g.PowerWatts[prof.Name][cfg.MaxInstances-1]/float64(cfg.MaxInstances))
	}

	okPairs := 0
	for _, rs := range g.Pairs {
		if rs[0].ClientFPS >= 25 && rs[1].ClientFPS >= 25 {
			okPairs++
		}
	}
	fmt.Printf("\npairs: %d of %d meet 25-FPS QoS for both\n", okPairs, len(g.Pairs))

	fmt.Printf("\nper-benchmark rollups:\n")
	for _, prof := range suiteOf(cfg) {
		c := g.Container[prof.Name]
		o := g.Optimization[prof.Name]
		v := g.Overhead[prof.Name]
		fmt.Printf("  %-4s container FPS %+5.1f%%   opt server FPS %+6.1f%%   tracing overhead %4.1f%%\n",
			prof.Name, c.FPSOverheadPct, o.ServerFPSGain, v.OverheadPct)
	}
	fmt.Printf("\ngrid complete in %s (wall)\n", elapsed.Round(time.Millisecond))
}

// fatalf prints an actionable flag-validation error and exits 2 (the
// same exit the unknown-experiment path uses).
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// suiteOf resolves the validated -profiles selection (main exits on an
// invalid spec before any experiment runs).
func suiteOf(cfg core.ExperimentConfig) []app.Profile {
	ps, err := app.Resolve(cfg.Profiles)
	if err != nil {
		fatalf("-profiles: %v", err)
	}
	return ps
}

// coreDesc describes a fleet's machine sizing for banners.
func coreDesc(cores string) string {
	if cores != "" {
		return "cores " + cores
	}
	return fmt.Sprintf("%d cores", fleet.DefaultMachineCores)
}

// profilesDesc describes a workload selection for banners.
func profilesDesc(profiles string) string {
	switch strings.ToLower(strings.TrimSpace(profiles)) {
	case "":
		return "the paper suite"
	case "all":
		return fmt.Sprintf("all %d registered profiles", len(app.Names()))
	}
	return "profiles " + profiles
}

// fleetExp consolidates an instance-request stream across a
// multi-machine fleet: a detailed per-machine breakdown under the
// selected policy, then the same shape under every placement policy as
// one batch on the parallel runner. The -profiles selection picks the
// workload set the arrival mix draws from (e.g. "all" sweeps every
// registered scenario family through the fleet).
func fleetExp(cfg core.ExperimentConfig, machines int, policy, mix string, requests int, cores, profiles string) {
	norm, err := core.ExperimentSpec{
		Kind: core.SpecFleet, Profiles: profiles,
		Seconds: cfg.Seconds, Warmup: cfg.WarmupSeconds, Seed: &cfg.Seed, Reps: cfg.Reps,
		Machines: machines, Policy: policy, Mix: mix, Requests: requests, CoreClasses: cores,
	}.Normalize()
	if err != nil {
		fatalf("%v", err)
	}
	shape := norm.Shape()

	fmt.Printf("fleet: %d machines × %s, %d requests (%s mix over %s), %d workers, %d rep(s)\n\n",
		norm.Machines, coreDesc(norm.CoreClasses), norm.Requests, norm.Mix, profilesDesc(profiles),
		exp.EffectiveParallel(cfg.Parallel), exp.EffectiveReps(cfg.Reps))

	r := core.RunFleetConsolidation(shape, cfg)
	fmt.Printf("policy %s: placed %d, rejected %d, QoS violations %d, fleet power %.1f W\n",
		r.Policy, r.Placed, r.Rejected, r.QoSViolations, r.TotalPowerWatts)
	for _, m := range r.Machines {
		fmt.Printf("  machine %d  (predicted %.1f cores, %.1f W)", m.Machine, m.PredictedDemand, m.PowerWatts)
		if len(m.Results) == 0 {
			fmt.Printf("  idle\n")
			continue
		}
		fmt.Printf("  RTT %.1f ms (p99 %.1f)\n", m.RTT.Mean, m.RTT.P99)
		for _, ir := range m.Results {
			qos := ""
			if ir.ClientFPS < fleet.QoSMinFPS {
				qos = "  [QoS violation]"
			}
			fmt.Printf("    %-8s srv %5.1f fps  cli %5.1f fps  RTT %6.1f ms%s\n",
				ir.Benchmark, ir.ServerFPS, ir.ClientFPS, ir.RTT.Mean, qos)
		}
	}

	fmt.Printf("\npolicy comparison (same fleet, same stream):\n")
	start := time.Now()
	rs := core.RunFleetComparison(shape, cfg)
	fmt.Print(core.FleetComparisonTable(rs))
	fmt.Printf("comparison complete in %s (wall)\n", time.Since(start).Round(time.Millisecond))
}

// churnExp drives the fleet through an epoch-based churn simulation —
// Poisson arrivals, exponential session lengths, departures — printing
// the detailed per-epoch table for the selected migration setting, then
// the static-vs-migrate comparison over the identical tenant
// population.
func churnExp(cfg core.ExperimentConfig, machines int, policy, mix, cores, profiles string, rate, duration float64, epochs int, migrate bool, mtbf, mttr float64, retries, backoff int, degrade bool, fidelity int, occupancy bool, schedule string, peak float64, period int, stream bool) {
	norm := churnSpec(core.SpecChurn, cfg, machines, policy, mix, cores, profiles, rate, duration, epochs, migrate,
		mtbf, mttr, retries, backoff, degrade, fidelity, occupancy, schedule, peak, period, stream)
	shape := norm.Shape()

	mode := "static"
	if migrate {
		mode = "RTT-driven migration"
	}
	if shape.Scheduled() {
		mode += fmt.Sprintf(", %s schedule (peak %g, period %d)", norm.Schedule, norm.Peak, norm.Period)
	}
	if shape.Faulty() {
		mode += fmt.Sprintf(", faults mtbf=%g mttr=%g", norm.MTBF, norm.MTTR)
	}
	if shape.SurrogateTail {
		mode += fmt.Sprintf(", surrogate tail (full-sim cohort %d)", shape.FidelitySampled)
	}
	if stream {
		mode += ", streaming rollups"
	}
	fmt.Printf("churn: %d machines × %s, %s policy, %s mix over %s, rate %g/epoch, mean session %g epochs, %d epochs, %s\n\n",
		norm.Machines, coreDesc(norm.CoreClasses), norm.Policy, norm.Mix, profilesDesc(profiles),
		norm.Rate, norm.Duration, norm.Epochs, mode)

	// One comparison batch covers both displays: the detailed per-epoch
	// view picks the -migrate side out of it (re-running RunFleetChurn
	// first would simulate the identical trial twice).
	start := time.Now()
	rs := core.RunChurnComparison(shape, cfg)
	r := rs[0]
	if migrate {
		r = rs[1]
	}
	fmt.Printf("policy %s: %d arrivals, %d departures, %d migrations, %d rejected, %d QoS violations\n",
		r.Policy, r.Arrivals, r.Departures, r.Migrations, r.Rejected, r.QoSViolations)
	fmt.Print(core.ChurnTable(r))
	if occupancy && !stream {
		// Streamed runs drop the rows as epochs close; only the rollup
		// line above survives.
		fmt.Printf("\noccupancy (machine × epoch):\n")
		fmt.Print(core.OccupancyTable(r))
	}

	fmt.Printf("\nstatic vs migrate (same tenant population):\n")
	fmt.Print(core.ChurnComparisonTable(rs))
	fmt.Printf("complete in %s (wall)\n", time.Since(start).Round(time.Millisecond))
}

// churnSpec assembles and normalizes the shared churn/faults flag
// vocabulary through core.ExperimentSpec — the exact validation the
// pictor-server control plane applies — so a typo fails before anything
// runs and the two frontends cannot drift.
func churnSpec(kind string, cfg core.ExperimentConfig, machines int, policy, mix, cores, profiles string, rate, duration float64, epochs int, migrate bool, mtbf, mttr float64, retries, backoff int, degrade bool, fidelity int, occupancy bool, schedule string, peak float64, period int, stream bool) core.ExperimentSpec {
	spec := core.ExperimentSpec{
		Kind: kind, Profiles: profiles,
		Seconds: cfg.Seconds, Warmup: cfg.WarmupSeconds, Seed: &cfg.Seed, Reps: cfg.Reps,
		Machines: machines, Policy: policy, Mix: mix, CoreClasses: cores,
		Rate: rate, Duration: duration, Epochs: epochs, Migrate: &migrate,
		MTBF: mtbf, MTTR: mttr, Retries: retries, Backoff: backoff, Degrade: degrade,
		Occupancy: occupancy,
		Schedule:  schedule, Peak: peak, Period: period, Stream: stream,
	}
	// -fidelity -1 is the CLI's "unset": full per-frame simulation
	// everywhere, the historical default. Any value >= 0 enables the
	// surrogate tail with that full-simulation cohort size.
	if fidelity >= 0 {
		spec.Fidelity = &fidelity
	}
	norm, err := spec.Normalize()
	if err != nil {
		fatalf("%v", err)
	}
	return norm
}

// faultsExp injects machine crashes into the churn simulation and
// compares three recovery postures over the identical tenant
// population and failure schedule: no faults, drop-on-failure, and
// session failover with retry/backoff plus brown-out degradation.
func faultsExp(cfg core.ExperimentConfig, machines int, policy, mix, cores, profiles string, rate, duration float64, epochs int, migrate bool, mtbf, mttr float64, retries, backoff int, degrade bool, fidelity int, occupancy bool, schedule string, peak float64, period int, stream bool) {
	// Normalize defaults the fault knobs independently (mtbf 5, mttr 1
	// when unset), so an explicit -mttr survives an unset -mtbf default
	// instead of being clobbered to the pair.
	norm := churnSpec(core.SpecFaults, cfg, machines, policy, mix, cores, profiles, rate, duration, epochs, migrate,
		mtbf, mttr, retries, backoff, degrade, fidelity, occupancy, schedule, peak, period, stream)
	shape := norm.Shape()

	fmt.Printf("faults: %d machines × %s, %s policy, %s mix over %s, rate %g/epoch, mean session %g epochs, %d epochs, MTBF %g MTTR %g\n\n",
		norm.Machines, coreDesc(norm.CoreClasses), norm.Policy, norm.Mix, profilesDesc(profiles),
		norm.Rate, norm.Duration, norm.Epochs, norm.MTBF, norm.MTTR)

	start := time.Now()
	rs := core.RunFaultComparison(shape, cfg)
	resilient := rs[2]
	fmt.Printf("resilient run: %d crashes, %d evicted, %d retried, %d recovered, %d lost, availability %.1f%%\n",
		resilient.Crashes, resilient.Evicted, resilient.Retried, resilient.Recovered, resilient.Lost,
		100*resilient.Availability)
	fmt.Print(core.ChurnTable(resilient))
	if occupancy && !stream {
		fmt.Printf("\noccupancy (machine × epoch, resilient run):\n")
		fmt.Print(core.OccupancyTable(resilient))
	}

	fmt.Printf("\nhealthy vs drop-on-failure vs retry+degrade (same tenants, same failure schedule):\n")
	fmt.Print(core.ChurnComparisonTable(rs))
	fmt.Printf("complete in %s (wall)\n", time.Since(start).Round(time.Millisecond))
}
