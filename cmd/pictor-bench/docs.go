package main

import (
	"fmt"
	"strings"
)

// experimentsMarkdown renders the repository's EXPERIMENTS.md from the
// dispatch registry, one row per -exp mode in natural order. The table
// is generated, not hand-written: a registry entry without a doc row
// (or a doc row without a registry entry) is impossible by
// construction, and the committed file is pinned against this output
// by a test so it cannot drift silently.
func experimentsMarkdown(all map[string]experiment) string {
	var b strings.Builder
	b.WriteString("# Experiments\n\n")
	b.WriteString("Every mode the `pictor-bench -exp` flag accepts. ")
	b.WriteString("This file is generated from the CLI's dispatch registry ")
	b.WriteString("(`go test ./cmd/pictor-bench/ -run TestExperimentsDoc -update-experiments` regenerates it); ")
	b.WriteString("edit the registry descriptions in `main.go`, not this table.\n\n")
	b.WriteString("| `-exp` | description |\n")
	b.WriteString("|--------|-------------|\n")
	for _, id := range experimentIDs(all) {
		fmt.Fprintf(&b, "| `%s` | %s |\n", id, all[id].desc)
	}
	b.WriteString("\n`-exp all` runs the paper-figure modes in presentation order. ")
	b.WriteString("The `fleet`, `churn` and `faults` modes take the fleet-shape flags ")
	b.WriteString("(`-machines`, `-policy`, `-mix`, `-cores`, `-profiles`); `churn` and `faults` ")
	b.WriteString("additionally take the churn (`-rate`, `-duration`, `-epochs`, `-migrate`), ")
	b.WriteString("robustness (`-mtbf`, `-mttr`, `-retries`, `-backoff`, `-degrade`), ")
	b.WriteString("traffic-schedule (`-schedule`, `-peak`, `-period`) and ")
	b.WriteString("scaling (`-fidelity`, `-occupancy`, `-stream`) flags. ")
	b.WriteString("See the README's \"Scaling & fidelity tiers\" section for how `-fidelity` ")
	b.WriteString("trades per-session simulation fidelity for sweep size, and ")
	b.WriteString("\"Diurnal & flash-crowd traffic\" for the rate schedules and the ")
	b.WriteString("streaming rollup mode behind million-session sweeps.\n")
	return b.String()
}
