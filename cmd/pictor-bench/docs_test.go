package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateExperiments = flag.Bool("update-experiments", false, "rewrite the repository EXPERIMENTS.md from the dispatch registry")

// TestExperimentsDoc pins the committed EXPERIMENTS.md to the dispatch
// registry: adding, removing or re-describing an -exp mode without
// regenerating the table fails here, so the doc cannot drift from the
// vocabulary the binary actually accepts.
func TestExperimentsDoc(t *testing.T) {
	// Descriptions only — the run closures are never invoked.
	all := experimentRegistry(nil, nil, nil)
	want := experimentsMarkdown(all)
	path := filepath.Join("..", "..", "EXPERIMENTS.md")
	if *updateExperiments {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatalf("rewrite %s: %v", path, err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing EXPERIMENTS.md (run with -update-experiments to generate): %v", err)
	}
	if string(got) != want {
		t.Fatalf("EXPERIMENTS.md is stale: regenerate with\n  go test ./cmd/pictor-bench/ -run TestExperimentsDoc -update-experiments")
	}
}

// TestExperimentRegistryComplete pins the registry's shape: every id
// resolves, every entry has a description, and the natural order puts
// fig6 before fig10 (string sort would not).
func TestExperimentRegistryComplete(t *testing.T) {
	all := experimentRegistry(nil, nil, nil)
	ids := experimentIDs(all)
	if len(ids) != len(all) {
		t.Fatalf("experimentIDs lists %d of %d registry entries", len(ids), len(all))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		e, ok := all[id]
		if !ok {
			t.Fatalf("experimentIDs lists unknown id %q", id)
		}
		if e.desc == "" {
			t.Fatalf("experiment %q has no description", id)
		}
		if seen[id] {
			t.Fatalf("experiment %q listed twice", id)
		}
		seen[id] = true
	}
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if pos["fig6"] > pos["fig10"] {
		t.Fatalf("natural order broken: fig6 at %d, fig10 at %d", pos["fig6"], pos["fig10"])
	}
}
