// Command pictor-train exercises the intelligent-client training
// pipeline end to end for one benchmark: record a human session, label
// frames from the scene ground truth, train the CNN object recognizer
// and the LSTM action generator, and report model quality (§3.1).
//
// Usage:
//
//	pictor-train [-bench STK] [-record-seconds 45] [-out models.gob]
package main

import (
	"flag"
	"fmt"
	"os"

	"pictor/internal/agent"
	"pictor/internal/app"
	"pictor/internal/core"
	"pictor/internal/scene"
	"pictor/internal/sim"
	"pictor/internal/tensor"
)

func main() {
	bench := flag.String("bench", "STK", "benchmark to train a client for")
	recordSeconds := flag.Float64("record-seconds", 45, "length of the recorded human session")
	epochsCNN := flag.Int("cnn-epochs", 3, "CNN training epochs")
	epochsLSTM := flag.Int("lstm-epochs", 14, "LSTM training epochs")
	seed := flag.Int64("seed", 0xC0FFEE, "recording seed")
	flag.Parse()

	prof, ok := app.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	fmt.Printf("recording %.0fs human session of %s...\n", *recordSeconds, prof)
	rec, gap := core.RecordSession(prof, *recordSeconds, *seed)
	acted := 0
	for _, s := range rec.Samples {
		if s.Action != scene.ActNone {
			acted++
		}
	}
	fmt.Printf("  %d frames captured (mean gap %.1f ms), %d with actions (%.1f%%)\n",
		len(rec.Samples), float64(gap)/float64(sim.Millisecond),
		acted, float64(acted)/float64(len(rec.Samples))*100)

	cfg := agent.DefaultTrainConfig()
	cfg.CNNEpochs = *epochsCNN
	cfg.LSTMEpochs = *epochsLSTM
	fmt.Printf("training CNN (%d epochs) and LSTM (%d epochs)...\n", cfg.CNNEpochs, cfg.LSTMEpochs)
	models := agent.Train(rec, cfg, 77)

	fmt.Printf("  CNN per-cell recognition accuracy: %.1f%%\n", models.CNNAccuracy(rec)*100)

	// Replay the recording through the trained pipeline and compare
	// action rates — the mimicry check behind Table 3.
	rng := sim.NewRNG(5)
	models.ResetState()
	icActs := 0
	for _, s := range rec.Samples {
		det := models.Detect(s.Pixels)
		if a := agent.SampleAction(models.NextActionLogits(det), rng); a != scene.ActNone {
			icActs++
		}
	}
	fmt.Printf("  action-rate mimicry: human %d vs IC %d actions over the session\n", acted, icActs)

	// Show a sample decision.
	if len(rec.Samples) > 0 {
		det := models.Detect(rec.Samples[0].Pixels)
		logits := models.NextActionLogits(det)
		fmt.Printf("  sample frame: detected %d objects, argmax action %v\n",
			countNonEmpty(det), scene.Action(tensor.ArgMax(logits)))
	}
}

func countNonEmpty(det []scene.Type) int {
	n := 0
	for _, t := range det {
		if t != scene.Empty {
			n++
		}
	}
	return n
}
