// Command pictor-server is the benchmark-as-a-service control plane: a
// long-running HTTP/JSON API over the same experiment vocabulary the
// pictor-bench CLI runs in batch. See internal/serve for the endpoint
// and spec documentation.
//
// Usage:
//
//	pictor-server [-addr :8080] [-parallel 0] [-jobs 1] [-queue 64]
//
// Submit work with e.g.
//
//	curl -s localhost:8080/jobs -d '{"kind":"fleet","machines":4}'
//	curl -N localhost:8080/jobs/j1/events
//	curl -s localhost:8080/jobs/j1/results.csv
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pictor/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", 0, "experiment-runner workers per job (0 = all cores)")
	jobs := flag.Int("jobs", 1, "concurrently running jobs (further submissions queue)")
	queueDepth := flag.Int("queue", 64, "pending-job queue depth (submissions beyond it get 503)")
	flag.Parse()

	srv := serve.New(serve.Config{Parallel: *parallel, Jobs: *jobs, QueueDepth: *queueDepth})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	go func() {
		log.Printf("pictor-server listening on %s (POST /jobs, GET /jobs/{id}/events)", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("listen: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down: cancelling jobs, draining connections")

	// Stop accepting connections first, then cancel the job queue —
	// running jobs stop at their next trial-unit boundary.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
}
