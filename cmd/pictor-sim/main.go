// Command pictor-sim runs one benchmark (or the whole suite) on the
// simulated cloud rendering system and prints the single-instance
// characterization: FPS, RTT, stage breakdown, utilization, bandwidth,
// and PMU readings.
//
// Usage:
//
//	pictor-sim [-bench STK] [-n 2] [-seconds 60] [-optimized] [-container] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pictor/internal/app"
	"pictor/internal/container"
	"pictor/internal/core"
	"pictor/internal/sim"
	"pictor/internal/trace"
	"pictor/internal/vgl"
)

func main() {
	bench := flag.String("bench", "", fmt.Sprintf("benchmark to run (%s); empty = every registered profile", strings.Join(app.Names(), ", ")))
	n := flag.Int("n", 1, "co-located instances of the benchmark")
	seconds := flag.Float64("seconds", 60, "measured session length (simulated seconds)")
	optimized := flag.Bool("optimized", false, "enable the §6 frame-copy optimizations")
	containerized := flag.Bool("container", false, "run inside a Docker-like container")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	profiles := app.Suite()
	if *bench != "" {
		p, ok := app.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (registered: %s)\n", *bench, strings.Join(app.Names(), ", "))
			os.Exit(2)
		}
		profiles = []app.Profile{p}
	}

	for _, prof := range profiles {
		runOne(prof, *n, *seconds, *optimized, *containerized, *seed)
	}
}

func runOne(prof app.Profile, n int, seconds float64, optimized, containerized bool, seed int64) {
	cl := core.NewCluster(core.Options{Seed: seed})
	for i := 0; i < n; i++ {
		cfg := core.NewInstanceConfig(prof, core.HumanDriver())
		if optimized {
			cfg.Interposer = vgl.Optimized()
		}
		if containerized {
			cfg.Containerized = true
			cfg.Container = container.Docker()
		}
		cl.AddInstance(cfg)
	}
	cl.Run(sim.DurationOfSeconds(3), sim.DurationOfSeconds(seconds))

	r := cl.Instances[0].Result()
	fmt.Printf("=== %s ×%d  (%.0fs session, optimized=%v, container=%v)\n",
		prof, n, seconds, optimized, containerized)
	fmt.Printf("  server FPS %6.1f   client FPS %6.1f   dropped %d\n",
		r.ServerFPS, r.ClientFPS, r.Dropped)
	fmt.Printf("  RTT mean %6.1fms  [p1 %.1f  p25 %.1f  p75 %.1f  p99 %.1f]  (n=%d)\n",
		r.RTT.Mean, r.RTT.P1, r.RTT.P25, r.RTT.P75, r.RTT.P99, r.RTT.N)
	fmt.Printf("  server time %.1fms   network time %.1fms\n", r.ServerTimeMs(), r.NetworkTimeMs())
	fmt.Printf("  stages (ms): ")
	for _, s := range trace.Stages {
		fmt.Printf("%s %.1f  ", s, r.Stages[s].Mean)
	}
	fmt.Println()
	fmt.Printf("  app CPU %5.0f%%   VNC CPU %5.0f%%   GPU %4.1f%%   mem %4.0fMB   gpuMem %3.0fMB\n",
		r.AppCPUUtil, r.VNCCPUUtil, r.GPUUtil, r.FootprintMB, r.GPUMemoryMB)
	fmt.Printf("  L3 miss %.0f%%   GPU L2 %s   tex %s   topdown BE %.0f%% (IPC %.2f)\n",
		r.L3MissRate*100, pct(r.GPUL2Miss), pct(r.GPUTexMiss),
		r.CPUTopDown.BackEnd*100, r.CPUTopDown.IPC)
	fmt.Printf("  net %4.0f Mbps down / %4.1f Mbps up    PCIe %6.1f MB/s from-GPU / %6.1f MB/s to-GPU\n",
		r.NetDownMbps, r.NetUpMbps, r.PCIeFromGPU, r.PCIeToGPU)
	fmt.Printf("  power %.0fW total (%.0fW per instance)\n",
		cl.TotalPowerWatts(), cl.TotalPowerWatts()/float64(n))
	fmt.Println()
}

func pct(v float64) string {
	if v < 0 {
		return "N/A"
	}
	return fmt.Sprintf("%.0f%%", v*100)
}
