#!/usr/bin/env python3
"""Fail when a pinned hot benchmark regresses against the committed
numbers.

Usage: benchguard.py BENCH_OUTPUT_FILE JSON_PATH [SECTION]

Compares the fresh `go test -bench` output against the given section of
BENCH_single_trial.json (default "current") and exits non-zero if any
pinned benchmark's ns/op regressed by more than the tolerance
(BENCH_GUARD_TOLERANCE, default 0.20 = 20%).

Only the pinned set below is enforced: these are the per-frame hot
leaves whose cost the evaluation's wall-clock floor is built on (plus
the fault-churn bookkeeping loop, the per-epoch overhead every fault
trial pays, and the global-kernel and diurnal-million sweeps, the scale
contracts of the fidelity tiers and the streaming arrival API: ~100k
sessions over 1000 machines and ~1M sessions over 10k machines must
stay in whole-seconds territory), and they are stable enough (no allocation
churn, no I/O) that a >20% move is a code regression, not noise.

A pinned benchmark with no recorded entry in the JSON fails the guard:
a silently missing pin is indistinguishable from an unguarded
regression. A pinned benchmark absent from the *fresh run* is only
reported — the CI bench regex and the pin set can evolve independently
— but a missing recorded number means someone pinned a benchmark
without recording it (or renamed one without updating the JSON), and
the fix is to add its numbers to the JSON section.
"""
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from benchjson import parse  # noqa: E402  (shared bench-line parser)

PINNED = [
    "BenchmarkSceneRender",
    "BenchmarkDetect",
    "BenchmarkBatchDetect/B8",
    "BenchmarkMatMulTransB",
    "BenchmarkLSTMStep",
    "BenchmarkDenseForward",
    "BenchmarkTracerFramePath",
    "BenchmarkFaultChurnBookkeeping",
    "BenchmarkGlobalKernelSweep",
    "BenchmarkDiurnalMillionSweep",
]


def main():
    bench_out, json_path = sys.argv[1], sys.argv[2]
    section = sys.argv[3] if len(sys.argv) > 3 else "current"
    tolerance = float(os.environ.get("BENCH_GUARD_TOLERANCE", "0.20"))
    fresh = parse(bench_out)
    with open(json_path) as fh:
        doc = json.load(fh)
    if section not in doc or "benchmarks" not in doc.get(section, {}):
        print(f"benchguard: FAIL: {json_path} has no [{section}][benchmarks] "
              f"section (sections present: {', '.join(sorted(doc))}) — "
              f"pass an existing section name or record one")
        return 1
    recorded = doc[section]["benchmarks"]

    failures = []
    for name in PINNED:
        if name not in recorded:
            print(f"benchguard: FAIL: {name} is pinned but has no recorded "
                  f"entry in [{section}] of {json_path} — record its "
                  f"ns_op there (run `go test -bench '{name}$' -benchtime "
                  f"500ms` and add the result) or unpin it")
            failures.append(name)
            continue
        if name not in fresh:
            print(f"benchguard: {name}: not present in this run — skipped")
            continue
        got, want = fresh[name]["ns_op"], recorded[name]["ns_op"]
        ratio = got / want if want else float("inf")
        verdict = "ok"
        if ratio > 1 + tolerance:
            verdict = "REGRESSED"
            failures.append(name)
        print(f"benchguard: {name}: {want:.1f} -> {got:.1f} ns/op "
              f"({(ratio - 1) * 100:+.1f}%, tolerance {tolerance:.0%}) {verdict}")

    if failures:
        print(f"benchguard: FAIL: {len(failures)} pinned benchmark(s) regressed "
              f">{tolerance:.0%} or went unrecorded vs [{section}] of "
              f"{json_path}: {', '.join(failures)}")
        return 1
    print(f"benchguard: all pinned benchmarks within {tolerance:.0%} of [{section}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
