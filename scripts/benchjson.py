#!/usr/bin/env python3
"""Parse `go test -bench` output into BENCH_single_trial.json.

Usage: benchjson.py BENCH_OUTPUT_FILE JSON_PATH [SECTION]

Records ns/op, B/op and allocs/op per benchmark under the given section
(default "current"). Other sections already in the JSON file — notably
the pinned "baseline" section recording the pre-optimization numbers —
are preserved, so the perf trajectory accumulates instead of resetting.
"""
import json
import re
import subprocess
import sys

LINE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?"
)


def parse(path):
    out = {}
    with open(path) as fh:
        for line in fh:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, iters, ns, bop, allocs = m.groups()
            rec = {"iterations": int(iters), "ns_op": float(ns)}
            if bop is not None:
                rec["b_op"] = float(bop)
                rec["allocs_op"] = float(allocs)
            out[name] = rec
    return out


def main():
    bench_out, json_path = sys.argv[1], sys.argv[2]
    section = sys.argv[3] if len(sys.argv) > 3 else "current"
    try:
        with open(json_path) as fh:
            doc = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        doc = {}
    doc.setdefault("units", {"time": "ns/op", "mem": "B/op", "allocs": "allocs/op"})
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
    ).stdout.strip() or "unknown"
    doc[section] = {"commit": commit, "benchmarks": parse(bench_out)}
    with open(json_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(doc[section]['benchmarks'])} benchmarks to {json_path} [{section}]")


if __name__ == "__main__":
    main()
