#!/usr/bin/env python3
"""Parse `go test -bench` output into BENCH_single_trial.json.

Usage: benchjson.py BENCH_OUTPUT_FILE JSON_PATH [SECTION]

Records ns/op, B/op and allocs/op per benchmark under the given section
(default "current"). Other sections already in the JSON file — notably
the pinned "baseline" section recording the pre-optimization numbers —
are preserved, so the perf trajectory accumulates instead of resetting.

The section is stamped with the commit the numbers were measured at
(`git rev-parse --short HEAD`, "+dirty" appended when the working tree
has uncommitted changes), and a per-benchmark delta summary against the
"baseline" section is printed after writing.
"""
import json
import re
import subprocess
import sys

LINE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?"
)


def parse(path):
    out = {}
    with open(path) as fh:
        for line in fh:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, iters, ns, bop, allocs = m.groups()
            rec = {"iterations": int(iters), "ns_op": float(ns)}
            if bop is not None:
                rec["b_op"] = float(bop)
                rec["allocs_op"] = float(allocs)
            out[name] = rec
    return out


def commit_stamp():
    """The measured-at commit: short HEAD, marked when the tree is dirty."""
    head = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
    ).stdout.strip()
    if not head:
        return "unknown"
    dirty = subprocess.run(
        ["git", "status", "--porcelain"], capture_output=True, text=True
    ).stdout.strip()
    return head + "+dirty" if dirty else head


def print_deltas(doc, section, against="baseline"):
    """Per-benchmark ns/op delta of `section` vs `against`."""
    if against not in doc or against == section:
        return
    cur = doc[section]["benchmarks"]
    base = doc[against]["benchmarks"]
    shared = sorted(set(cur) & set(base))
    if not shared:
        return
    width = max(len(n) for n in shared)
    print(f"\n{section} ({doc[section]['commit']}) vs "
          f"{against} ({doc[against]['commit']}), ns/op:")
    for name in shared:
        c, b = cur[name]["ns_op"], base[name]["ns_op"]
        delta = (c - b) / b * 100 if b else float("nan")
        print(f"  {name:<{width}}  {b:>14.1f} -> {c:>14.1f}  {delta:+7.1f}%")
    only = sorted(set(cur) - set(base))
    if only:
        print(f"  (no {against} entry: {', '.join(only)})")


def main():
    bench_out, json_path = sys.argv[1], sys.argv[2]
    section = sys.argv[3] if len(sys.argv) > 3 else "current"
    try:
        with open(json_path) as fh:
            doc = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        doc = {}
    doc.setdefault("units", {"time": "ns/op", "mem": "B/op", "allocs": "allocs/op"})
    doc[section] = {"commit": commit_stamp(), "benchmarks": parse(bench_out)}
    with open(json_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(doc[section]['benchmarks'])} benchmarks to {json_path} [{section}]")
    print_deltas(doc, section)


if __name__ == "__main__":
    main()
