#!/usr/bin/env bash
# Runs the per-frame microbenchmarks and the headline suite-grid
# benchmark, and records ns/op, B/op and allocs/op per benchmark into
# BENCH_single_trial.json (section "current"; the pinned "baseline"
# section holding the pre-optimization numbers is preserved).
#
#   scripts/bench.sh              # full run, updates BENCH_single_trial.json
#   GRID_BENCHTIME=1x scripts/bench.sh   # quicker smoke
#   SECTION=mybranch scripts/bench.sh    # record under another section
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_single_trial.json}
SECTION=${SECTION:-current}
GRID_BENCHTIME=${GRID_BENCHTIME:-5x}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

# Per-package hot-leaf microbenchmarks (scene raster, nn/tensor layers,
# codec, tracer frame path, client inference, kernel event churn).
go test -run '^$' -bench . -benchmem \
    ./internal/scene/ ./internal/nn/ ./internal/tensor/ ./internal/codec/ \
    ./internal/trace/ ./internal/agent/ ./internal/sim/ | tee "$TMP"

# Headline single-worker grid (the floor under the whole evaluation).
go test -run '^$' -bench 'BenchmarkSuiteGridSequential' \
    -benchtime "$GRID_BENCHTIME" . | tee -a "$TMP"

# Fleet-scale sweeps pinned by benchguard: the per-epoch fault
# bookkeeping loop and the kernel/streaming scale contracts (one
# iteration each — they assert their own scale internally).
go test -run '^$' -bench 'BenchmarkFaultChurnBookkeeping$' \
    -benchmem ./internal/fleet/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkGlobalKernelSweep$|BenchmarkDiurnalMillionSweep$' \
    -benchtime 1x -benchmem . | tee -a "$TMP"

python3 scripts/benchjson.py "$TMP" "$OUT" "$SECTION"
