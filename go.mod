module pictor

go 1.22
