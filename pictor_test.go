package pictor_test

import (
	"testing"

	"pictor"
)

func TestSuiteComposition(t *testing.T) {
	suite := pictor.Suite()
	if len(suite) != 6 {
		t.Fatalf("suite has %d benchmarks, want 6 (Table 2)", len(suite))
	}
	vr, closed := 0, 0
	for _, p := range suite {
		if p.IsVR {
			vr++
		}
		if p.ClosedSource {
			closed++
		}
	}
	if vr != 2 {
		t.Fatalf("suite has %d VR titles, want 2", vr)
	}
	if closed != 2 {
		t.Fatalf("suite has %d closed-source titles, want 2 (Dota2, InMind)", closed)
	}
}

func TestSuiteByName(t *testing.T) {
	if got := pictor.SuiteByName("D2").FullName; got != "Dota2" {
		t.Fatalf("SuiteByName(D2) = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark should panic")
		}
	}()
	pictor.SuiteByName("NOPE")
}

func TestPublicQuickstartFlow(t *testing.T) {
	cluster := pictor.NewCluster(pictor.Options{Seed: 3})
	cluster.AddInstance(pictor.NewInstanceConfig(pictor.SuiteByName("RE"), pictor.HumanDriver()))
	cluster.RunSeconds(2, 8)
	rs := cluster.Results()
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	r := rs[0]
	if r.ServerFPS <= 0 || r.ClientFPS <= 0 {
		t.Fatalf("no frames flowed: server %v, client %v", r.ServerFPS, r.ClientFPS)
	}
	if r.RTT.N == 0 || r.RTT.Mean <= 0 {
		t.Fatal("no round trips measured")
	}
	if cluster.TotalPowerWatts() <= 0 {
		t.Fatal("no power modelled")
	}
}

func TestPublicOptimizationExperiment(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = 10
	r := pictor.RunOptimization(pictor.SuiteByName("STK"), cfg)
	if r.OptServerFPS <= r.BaseServerFPS {
		t.Fatalf("optimizations did not help: %.1f → %.1f fps", r.BaseServerFPS, r.OptServerFPS)
	}
}

func TestPublicContainerExperiment(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = 10
	r := pictor.RunContainerOverhead(pictor.SuiteByName("IM"), cfg)
	if r.BareServerFPS <= 0 || r.ContServerFPS <= 0 {
		t.Fatal("container experiment produced no frames")
	}
	// Container overhead is small either way (paper: ~1.5% average,
	// occasionally negative).
	if r.FPSOverheadPct > 25 || r.FPSOverheadPct < -25 {
		t.Fatalf("container FPS overhead implausible: %.1f%%", r.FPSOverheadPct)
	}
}

func TestInterposerPresets(t *testing.T) {
	base := pictor.BaselineInterposer()
	opt := pictor.OptimizedInterposer()
	if base.MemoizeAttributes || base.AsyncCopy {
		t.Fatal("baseline interposer should have optimizations off")
	}
	if !opt.MemoizeAttributes || !opt.AsyncCopy {
		t.Fatal("optimized interposer should have both optimizations on")
	}
}
