package pictor_test

import (
	"testing"

	"pictor"
)

func TestSuiteComposition(t *testing.T) {
	paper := pictor.PaperSuite()
	if len(paper) != 6 {
		t.Fatalf("paper suite has %d benchmarks, want 6 (Table 2)", len(paper))
	}
	vr, closed := 0, 0
	for _, p := range paper {
		if p.IsVR {
			vr++
		}
		if p.ClosedSource {
			closed++
		}
	}
	if vr != 2 {
		t.Fatalf("paper suite has %d VR titles, want 2", vr)
	}
	if closed != 2 {
		t.Fatalf("paper suite has %d closed-source titles, want 2 (Dota2, InMind)", closed)
	}
	if got := len(pictor.Suite()); got < 9 {
		t.Fatalf("registry has %d profiles, want >= 9 (paper six + CAD, VV, CZ)", got)
	}
	if got := len(pictor.ProfileNames()); got != len(pictor.Suite()) {
		t.Fatalf("ProfileNames (%d) and Suite (%d) disagree", got, len(pictor.Suite()))
	}
	if _, err := pictor.ResolveProfiles("STK,CAD,VV"); err != nil {
		t.Fatalf("ResolveProfiles rejected a valid subset: %v", err)
	}
	if _, err := pictor.ResolveProfiles("NOPE"); err == nil {
		t.Fatal("ResolveProfiles accepted an unknown name")
	}
}

func TestSuiteByName(t *testing.T) {
	if got := pictor.SuiteByName("D2").FullName; got != "Dota2" {
		t.Fatalf("SuiteByName(D2) = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark should panic")
		}
	}()
	pictor.SuiteByName("NOPE")
}

func TestPublicQuickstartFlow(t *testing.T) {
	cluster := pictor.NewCluster(pictor.Options{Seed: 3})
	cluster.AddInstance(pictor.NewInstanceConfig(pictor.SuiteByName("RE"), pictor.HumanDriver()))
	cluster.RunSeconds(2, 8)
	rs := cluster.Results()
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	r := rs[0]
	if r.ServerFPS <= 0 || r.ClientFPS <= 0 {
		t.Fatalf("no frames flowed: server %v, client %v", r.ServerFPS, r.ClientFPS)
	}
	if r.RTT.N == 0 || r.RTT.Mean <= 0 {
		t.Fatal("no round trips measured")
	}
	if cluster.TotalPowerWatts() <= 0 {
		t.Fatal("no power modelled")
	}
}

func TestPublicOptimizationExperiment(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = 10
	r := pictor.RunOptimization(pictor.SuiteByName("STK"), cfg)
	if r.OptServerFPS <= r.BaseServerFPS {
		t.Fatalf("optimizations did not help: %.1f → %.1f fps", r.BaseServerFPS, r.OptServerFPS)
	}
}

func TestPublicContainerExperiment(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = 10
	r := pictor.RunContainerOverhead(pictor.SuiteByName("IM"), cfg)
	if r.BareServerFPS <= 0 || r.ContServerFPS <= 0 {
		t.Fatal("container experiment produced no frames")
	}
	// Container overhead is small either way (paper: ~1.5% average,
	// occasionally negative).
	if r.FPSOverheadPct > 25 || r.FPSOverheadPct < -25 {
		t.Fatalf("container FPS overhead implausible: %.1f%%", r.FPSOverheadPct)
	}
}

func TestInterposerPresets(t *testing.T) {
	base := pictor.BaselineInterposer()
	opt := pictor.OptimizedInterposer()
	if base.MemoizeAttributes || base.AsyncCopy {
		t.Fatal("baseline interposer should have optimizations off")
	}
	if !opt.MemoizeAttributes || !opt.AsyncCopy {
		t.Fatal("optimized interposer should have both optimizations on")
	}
}

func TestPublicTrialRunner(t *testing.T) {
	trials := []pictor.Trial{
		pictor.SingleTrial(pictor.SuiteByName("STK"), pictor.Human),
		pictor.HomogeneousTrial(pictor.SuiteByName("RE"), pictor.Human, 2),
		pictor.PairTrial(pictor.SuiteByName("STK"), pictor.SuiteByName("RE")),
	}
	// Set windows on all but the first: a trial left at zero Measure
	// must inherit the config's windows instead of silently measuring
	// nothing.
	for i := 1; i < len(trials); i++ {
		trials[i].Warmup, trials[i].Measure = 1, 5
	}
	cfg := pictor.DefaultExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	cfg.Parallel = 4
	cfg.Reps = 2
	out := pictor.RunTrials(trials, cfg)
	if len(out) != 3 {
		t.Fatalf("got %d trial results, want 3", len(out))
	}
	if trials[0].Measure != 0 {
		t.Fatal("RunTrials mutated the caller's trial slice")
	}
	for ti, reps := range out {
		if len(reps) != 2 {
			t.Fatalf("trial %d: got %d reps, want 2", ti, len(reps))
		}
		for _, r := range reps {
			if len(r.Results) != len(trials[ti].Instances) {
				t.Fatalf("trial %d: %d instance results for %d instances",
					ti, len(r.Results), len(trials[ti].Instances))
			}
			for _, ir := range r.Results {
				if ir.ServerFPS <= 0 {
					t.Fatalf("trial %d produced no frames", ti)
				}
			}
		}
		if reps[0].Seed == reps[1].Seed {
			t.Fatalf("trial %d: repetitions share a seed", ti)
		}
	}
}

func TestPublicCharacterizationDriverKinds(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = 6
	rs := pictor.RunCharacterization(pictor.SuiteByName("0AD"), 2, pictor.Human, cfg)
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	if rs[0].ClientFPS <= 0 || rs[1].ClientFPS <= 0 {
		t.Fatal("characterization produced no client frames")
	}
}

func TestPublicFleetExperiment(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	shape := pictor.FleetShape{
		Machines: 2,
		Policy:   pictor.PolicyLeastDemand,
		Mix:      pictor.MixSuite,
		Requests: 4,
	}
	r := pictor.RunFleetConsolidation(shape, cfg)
	if len(r.Machines) != 2 {
		t.Fatalf("got %d machines, want 2", len(r.Machines))
	}
	if r.Placed+r.Rejected != 4 {
		t.Fatalf("placed %d + rejected %d must account for 4 requests", r.Placed, r.Rejected)
	}
	if r.TotalPowerWatts <= 0 || r.RTT.N == 0 {
		t.Fatalf("fleet rollups missing: watts=%v rtt=%+v", r.TotalPowerWatts, r.RTT)
	}
	// A fleet-shaped trial runs through the generic trial runner too.
	out := pictor.RunTrials([]pictor.Trial{pictor.FleetTrialOf(shape)}, cfg)
	if out[0][0].Fleet == nil {
		t.Fatal("fleet trial result missing Fleet payload")
	}
	if len(pictor.FleetPolicyNames()) != 4 {
		t.Fatalf("want 4 policies, got %v", pictor.FleetPolicyNames())
	}
}

func TestPublicChurnExperiment(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	shape := pictor.FleetShape{
		Machines:          2,
		Policy:            pictor.PolicyLeastCount,
		Mix:               pictor.MixHeavy,
		CoreClasses:       "8,4",
		Epochs:            3,
		ArrivalRate:       2,
		MeanSessionEpochs: 2,
		Migrate:           true,
	}
	r := pictor.RunFleetChurn(shape, cfg)
	if len(r.Epochs) != 3 {
		t.Fatalf("got %d epoch rows, want 3", len(r.Epochs))
	}
	if r.MeanPowerWatts <= 0 {
		t.Fatalf("churn rollups missing: %+v", r)
	}
	rs := pictor.RunChurnComparison(shape, cfg)
	if len(rs) != 2 || rs[0].Migrate || !rs[1].Migrate {
		t.Fatalf("comparison must return {static, migrated}, got %+v", rs)
	}
	if rs[0].Arrivals != rs[1].Arrivals {
		t.Fatal("static and migrated runs must churn the identical tenant population")
	}
	for _, table := range []string{pictor.ChurnTable(r), pictor.ChurnComparisonTable(rs)} {
		if len(table) == 0 {
			t.Fatal("churn tables must render")
		}
	}
	// A churn-shaped trial runs through the generic trial runner too.
	out := pictor.RunTrials([]pictor.Trial{pictor.FleetTrialOf(shape)}, cfg)
	if out[0][0].Churn == nil {
		t.Fatal("churn trial result missing Churn payload")
	}
}

func TestPublicFaultExperiment(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	shape := pictor.FleetShape{
		Machines:           3,
		Policy:             pictor.PolicyLeastDemand,
		Mix:                pictor.MixHeavy,
		CoreClasses:        "8,8,4",
		Epochs:             4,
		ArrivalRate:        2,
		MeanSessionEpochs:  3,
		MTBFEpochs:         3,
		MTTREpochs:         1,
		RetryAttempts:      3,
		RetryBackoffEpochs: 1,
		Degrade:            true,
	}
	rs := pictor.RunFaultComparison(shape, cfg)
	if len(rs) != 3 {
		t.Fatalf("fault comparison must return {healthy, drop, resilient}, got %d rows", len(rs))
	}
	healthy, drop, resilient := rs[0], rs[1], rs[2]
	if healthy.Faulty || !drop.Faulty || !resilient.Faulty {
		t.Fatalf("fault echoes wrong: %t %t %t", healthy.Faulty, drop.Faulty, resilient.Faulty)
	}
	if healthy.Arrivals != drop.Arrivals || drop.Arrivals != resilient.Arrivals {
		t.Fatal("all three runs must churn the identical tenant population")
	}
	if healthy.Crashes != 0 || drop.Crashes == 0 || drop.Crashes != resilient.Crashes {
		t.Fatalf("drop and resilient must see the identical failure schedule: %d vs %d (healthy %d)",
			drop.Crashes, resilient.Crashes, healthy.Crashes)
	}
	if healthy.Availability <= 0 || drop.Availability <= 0 || resilient.Availability <= 0 {
		t.Fatalf("availability must be reported: %+v", []float64{healthy.Availability, drop.Availability, resilient.Availability})
	}
	if s := pictor.ChurnComparisonTable(rs); len(s) == 0 {
		t.Fatal("fault comparison table must render")
	}
}

// TestPublicCheckedTrialIsolation: a deliberately poisoned trial (fault
// parameters on a non-churn shape panic during execution) fails only
// its own repetitions, names itself by Key() in the error, and leaves
// every healthy trial's results intact.
func TestPublicCheckedTrialIsolation(t *testing.T) {
	cfg := pictor.DefaultExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5
	cfg.Reps = 2
	healthy := pictor.SingleTrial(pictor.SuiteByName("RE"), pictor.Human)
	poisoned := pictor.FleetTrialOf(pictor.FleetShape{
		Machines: 2, Policy: pictor.PolicyLeastCount, Mix: pictor.MixHeavy,
		MTBFEpochs: 5, MTTREpochs: 1, // faults without churn: invalid by construction
	})
	poisoned.ID = "poisoned"
	// Pin the windows so the reported Key() matches this handle's
	// (unset windows inherit the config's at run time).
	poisoned.Warmup, poisoned.Measure = cfg.WarmupSeconds, cfg.Seconds
	out, errs := pictor.RunTrialsChecked([]pictor.Trial{healthy, poisoned}, cfg)
	if len(errs) != cfg.Reps {
		t.Fatalf("got %d failures, want one per poisoned rep (%d)", len(errs), cfg.Reps)
	}
	for i, pe := range errs {
		if pe.TrialIndex != 1 || pe.Rep != i {
			t.Fatalf("failure %d misattributed: trial %d rep %d", i, pe.TrialIndex, pe.Rep)
		}
		if pe.TrialKey != poisoned.Key() {
			t.Fatalf("failure key %q must be the poisoned trial's Key() %q", pe.TrialKey, poisoned.Key())
		}
	}
	for rep := 0; rep < cfg.Reps; rep++ {
		if len(out[0][rep].Results) == 0 || out[0][rep].PowerWatts <= 0 {
			t.Fatalf("healthy trial rep %d lost its results to the poisoned trial", rep)
		}
	}
}
